package math3

import "math"

// Jacobi eigendecomposition and a small 3×3 SVD built on it. The SVD is
// needed by the Umeyama trajectory alignment (ATE computation) and by the
// rotation re-projection used in tests.

// EigenSym3 computes the eigenvalues and eigenvectors of a symmetric 3×3
// matrix using cyclic Jacobi rotations. Eigenvalues are returned in
// descending order; eigenvectors are the corresponding columns of V.
func EigenSym3(a Mat3) (vals Vec3, V Mat3) {
	// Work on a copy; accumulate rotations in V.
	m := a
	V = Identity3()
	for sweep := 0; sweep < 64; sweep++ {
		off := math.Abs(m.M[0][1]) + math.Abs(m.M[0][2]) + math.Abs(m.M[1][2])
		if off < 1e-15 {
			break
		}
		for p := 0; p < 2; p++ {
			for q := p + 1; q < 3; q++ {
				if math.Abs(m.M[p][q]) < 1e-18 {
					continue
				}
				theta := (m.M[q][q] - m.M[p][p]) / (2 * m.M[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				// Apply Givens rotation G(p,q,θ) on both sides: m = GᵀmG.
				var g Mat3
				g = Identity3()
				g.M[p][p], g.M[q][q] = c, c
				g.M[p][q], g.M[q][p] = s, -s
				m = g.Transpose().Mul(m).Mul(g)
				V = V.Mul(g)
			}
		}
	}
	// Sort eigenpairs by descending eigenvalue.
	type pair struct {
		val float64
		vec Vec3
	}
	ps := []pair{
		{m.M[0][0], V.Col(0)},
		{m.M[1][1], V.Col(1)},
		{m.M[2][2], V.Col(2)},
	}
	for i := 0; i < 2; i++ {
		for j := i + 1; j < 3; j++ {
			if ps[j].val > ps[i].val {
				ps[i], ps[j] = ps[j], ps[i]
			}
		}
	}
	vals = Vec3{ps[0].val, ps[1].val, ps[2].val}
	V = Mat3FromCols(ps[0].vec, ps[1].vec, ps[2].vec)
	return vals, V
}

// SVD3 computes the singular value decomposition A = U·diag(s)·Vᵀ of a 3×3
// matrix. Singular values are non-negative and descending. U and V are
// orthogonal (not necessarily proper rotations).
func SVD3(a Mat3) (U Mat3, s Vec3, V Mat3) {
	// Eigendecompose AᵀA = V·diag(s²)·Vᵀ.
	ata := a.Transpose().Mul(a)
	vals, v := EigenSym3(ata)
	s = Vec3{
		math.Sqrt(math.Max(vals.X, 0)),
		math.Sqrt(math.Max(vals.Y, 0)),
		math.Sqrt(math.Max(vals.Z, 0)),
	}
	V = v

	// U columns: A·vᵢ / sᵢ; rebuild degenerate columns orthogonally.
	var ucols [3]Vec3
	for i := 0; i < 3; i++ {
		col := a.MulVec(V.Col(i))
		var si float64
		switch i {
		case 0:
			si = s.X
		case 1:
			si = s.Y
		default:
			si = s.Z
		}
		if si > 1e-12 {
			ucols[i] = col.Scale(1 / si)
		} else {
			ucols[i] = Vec3{} // fixed up below
		}
	}
	// Orthonormal completion for zero singular values.
	if ucols[0].Norm() < 0.5 {
		ucols[0] = V3(1, 0, 0)
	}
	ucols[0] = ucols[0].Normalized()
	if ucols[1].Norm() < 0.5 {
		ucols[1] = orthogonalTo(ucols[0])
	}
	ucols[1] = ucols[1].Sub(ucols[0].Scale(ucols[0].Dot(ucols[1]))).Normalized()
	c2 := ucols[0].Cross(ucols[1])
	if ucols[2].Norm() < 0.5 || ucols[2].Dot(c2) < 0.999 {
		// Preserve sign when the computed column is valid but flipped.
		if ucols[2].Norm() >= 0.5 && ucols[2].Dot(c2) < 0 {
			ucols[2] = c2.Neg()
		} else if ucols[2].Norm() < 0.5 {
			ucols[2] = c2
		}
	}
	ucols[2] = ucols[2].Normalized()
	U = Mat3FromCols(ucols[0], ucols[1], ucols[2])
	return U, s, V
}

// orthogonalTo returns any unit vector orthogonal to v.
func orthogonalTo(v Vec3) Vec3 {
	if math.Abs(v.X) < math.Abs(v.Y) && math.Abs(v.X) < math.Abs(v.Z) {
		return v.Cross(V3(1, 0, 0)).Normalized()
	}
	if math.Abs(v.Y) < math.Abs(v.Z) {
		return v.Cross(V3(0, 1, 0)).Normalized()
	}
	return v.Cross(V3(0, 0, 1)).Normalized()
}

// NearestRotation projects an arbitrary 3×3 matrix onto SO(3): the closest
// proper rotation in Frobenius norm (Kabsch/Procrustes projection).
func NearestRotation(a Mat3) Mat3 {
	U, _, V := SVD3(a)
	R := U.Mul(V.Transpose())
	if R.Det() < 0 {
		// Flip the axis of the smallest singular value (third column).
		f := Identity3()
		f.M[2][2] = -1
		R = U.Mul(f).Mul(V.Transpose())
	}
	return R
}
