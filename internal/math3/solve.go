package math3

import (
	"errors"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution
// within numerical tolerance.
var ErrSingular = errors.New("math3: singular system")

// Sym6 is a symmetric 6×6 system accumulated from point-to-plane ICP
// residuals: the normal equations JᵀJ·x = Jᵀr. Only the upper triangle of
// A is stored logically; Add fills both halves for simplicity.
type Sym6 struct {
	A [6][6]float64
	B [6]float64
	// Count and Error track how many residuals were accumulated and their
	// summed squared error, used for convergence and quality checks.
	Count int
	Error float64
}

// AddRow accumulates one residual row: A += J·Jᵀ, B += J·e.
func (s *Sym6) AddRow(j [6]float64, e float64) {
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			s.A[r][c] += j[r] * j[c]
		}
		s.B[r] += j[r] * e
	}
	s.Count++
	s.Error += e * e
}

// Merge adds another accumulator into s (used by parallel reductions).
func (s *Sym6) Merge(o *Sym6) {
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			s.A[r][c] += o.A[r][c]
		}
		s.B[r] += o.B[r]
	}
	s.Count += o.Count
	s.Error += o.Error
}

// Reset zeroes the accumulator for reuse.
func (s *Sym6) Reset() {
	*s = Sym6{}
}

// Solve computes x with A·x = B via LDLᵀ decomposition with diagonal
// damping lambda (Levenberg style; pass 0 for plain Gauss-Newton).
func (s *Sym6) Solve(lambda float64) ([6]float64, error) {
	var a [6][6]float64
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			a[r][c] = s.A[r][c]
		}
		a[r][r] += lambda
	}
	return solveLDLT6(a, s.B)
}

// solveLDLT6 solves a symmetric positive semi-definite 6×6 system using
// LDLᵀ factorisation with partial tolerance checks.
func solveLDLT6(a [6][6]float64, b [6]float64) ([6]float64, error) {
	const n = 6
	var L [n][n]float64
	var D [n]float64

	scale := 0.0
	for i := 0; i < n; i++ {
		if v := math.Abs(a[i][i]); v > scale {
			scale = v
		}
	}
	if scale == 0 {
		return [6]float64{}, ErrSingular
	}
	tol := scale * 1e-13

	for j := 0; j < n; j++ {
		d := a[j][j]
		for k := 0; k < j; k++ {
			d -= L[j][k] * L[j][k] * D[k]
		}
		if math.Abs(d) < tol {
			return [6]float64{}, ErrSingular
		}
		D[j] = d
		L[j][j] = 1
		for i := j + 1; i < n; i++ {
			v := a[i][j]
			for k := 0; k < j; k++ {
				v -= L[i][k] * L[j][k] * D[k]
			}
			L[i][j] = v / d
		}
	}

	// Forward solve L·y = b.
	var y [n]float64
	for i := 0; i < n; i++ {
		y[i] = b[i]
		for k := 0; k < i; k++ {
			y[i] -= L[i][k] * y[k]
		}
	}
	// Diagonal solve D·z = y.
	for i := 0; i < n; i++ {
		y[i] /= D[i]
	}
	// Back solve Lᵀ·x = z.
	var x [n]float64
	for i := n - 1; i >= 0; i-- {
		x[i] = y[i]
		for k := i + 1; k < n; k++ {
			x[i] -= L[k][i] * x[k]
		}
	}
	for i := 0; i < n; i++ {
		if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
			return [6]float64{}, ErrSingular
		}
	}
	return x, nil
}

// SolveSym3 solves a symmetric 3×3 system A·x = b (used by the Umeyama
// alignment and small fitting problems). Returns ErrSingular when A is
// rank-deficient.
func SolveSym3(a Mat3, b Vec3) (Vec3, error) {
	inv, ok := a.Inverse()
	if !ok {
		return Vec3{}, ErrSingular
	}
	return inv.MulVec(b), nil
}
