package math3

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMat3(r *rand.Rand) Mat3 {
	var m Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			m.M[i][j] = r.Float64()*4 - 2
		}
	}
	return m
}

func randomRotation(r *rand.Rand) Mat3 {
	axis := V3(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
	return QuatFromAxisAngle(axis, r.Float64()*2*math.Pi).Mat3()
}

func TestMat3Identity(t *testing.T) {
	id := Identity3()
	v := V3(1, 2, 3)
	if got := id.MulVec(v); got != v {
		t.Fatalf("I·v = %v", got)
	}
	if !id.Mul(id).ApproxEq(id, 0) {
		t.Fatal("I·I ≠ I")
	}
	almostEq(t, id.Det(), 1, 0, "det(I)")
	almostEq(t, id.Trace(), 3, 0, "tr(I)")
}

func TestMat3RowColConstruction(t *testing.T) {
	m := Mat3FromRows(V3(1, 2, 3), V3(4, 5, 6), V3(7, 8, 9))
	if m.Row(1) != V3(4, 5, 6) {
		t.Fatalf("Row: %v", m.Row(1))
	}
	if m.Col(2) != V3(3, 6, 9) {
		t.Fatalf("Col: %v", m.Col(2))
	}
	n := Mat3FromCols(m.Col(0), m.Col(1), m.Col(2))
	if !m.ApproxEq(n, 0) {
		t.Fatal("FromCols(Col i) ≠ m")
	}
}

func TestMat3InverseRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		m := randomMat3(r)
		inv, ok := m.Inverse()
		if !ok {
			continue // singular draw, fine
		}
		if !m.Mul(inv).ApproxEq(Identity3(), 1e-8) {
			t.Fatalf("m·m⁻¹ ≠ I for %v", m)
		}
	}
}

func TestMat3InverseSingular(t *testing.T) {
	var z Mat3
	if _, ok := z.Inverse(); ok {
		t.Fatal("zero matrix reported invertible")
	}
	// Rank-1 matrix.
	m := Outer(V3(1, 2, 3), V3(4, 5, 6))
	if _, ok := m.Inverse(); ok {
		t.Fatal("rank-1 matrix reported invertible")
	}
}

func TestMat3TransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMat3(r)
		return m.Transpose().Transpose().ApproxEq(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMat3DetProduct(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := randomMat3(r), randomMat3(r)
		lhs := m.Mul(n).Det()
		rhs := m.Det() * n.Det()
		return math.Abs(lhs-rhs) < 1e-6*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSkewMatchesCross(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v, w := smallVec(r), smallVec(r)
		return Skew(v).MulVec(w).ApproxEq(v.Cross(w), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRotationIsRotation(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		R := randomRotation(r)
		if !R.IsRotation(1e-9) {
			t.Fatalf("random rotation fails IsRotation: %v", R)
		}
	}
	if Identity3().Scale(2).IsRotation(1e-9) {
		t.Fatal("2I accepted as rotation")
	}
}

func TestMat4Basics(t *testing.T) {
	id := Identity4()
	p := V3(1, 2, 3)
	if got := id.TransformPoint(p); got != p {
		t.Fatalf("I·p = %v", got)
	}
	// Translation-only transform.
	tr := Identity4()
	tr.M[0][3], tr.M[1][3], tr.M[2][3] = 10, 20, 30
	if got := tr.TransformPoint(p); got != V3(11, 22, 33) {
		t.Fatalf("translate: %v", got)
	}
	if got := tr.TransformDir(p); got != p {
		t.Fatalf("dir ignores translation: %v", got)
	}
	if !tr.Mul(id).ApproxEq(tr, 0) {
		t.Fatal("T·I ≠ T")
	}
	if !tr.Transpose().Transpose().ApproxEq(tr, 0) {
		t.Fatal("Mat4 transpose involution")
	}
	v := id.MulVec(V4(1, 2, 3, 4))
	if v != V4(1, 2, 3, 4) {
		t.Fatalf("I·v4 = %v", v)
	}
}

func TestMat3AddScale(t *testing.T) {
	m := Identity3()
	got := m.Add(m).Scale(0.5)
	if !got.ApproxEq(m, 1e-15) {
		t.Fatalf("(I+I)/2 = %v", got)
	}
}
