// Package math3 provides the small fixed-size linear-algebra kernel used
// throughout slamgo: 2/3/4-component vectors, 3×3 and 4×4 matrices,
// quaternions, rigid-body SE(3) transforms and a 6×6 symmetric solver.
//
// Everything is value-typed and allocation-free: these types sit on the
// innermost loops of the KinectFusion pipeline (per-pixel, per-voxel), so
// the API is designed to keep values in registers rather than on the heap.
package math3

import "math"

// Epsilon is the default tolerance used by approximate comparisons in this
// package. It is deliberately loose enough for float64 chains of a few
// hundred operations.
const Epsilon = 1e-9

// Vec2 is a 2-component vector, used for pixel coordinates.
type Vec2 struct {
	X, Y float64
}

// V2 constructs a Vec2.
func V2(x, y float64) Vec2 { return Vec2{x, y} }

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns s·v.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the inner product v·w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Vec3 is a 3-component vector: points, directions, normals, RGB colours.
type Vec3 struct {
	X, Y, Z float64
}

// V3 constructs a Vec3.
func V3(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Splat3 returns the vector (s, s, s).
func Splat3(s float64) Vec3 { return Vec3{s, s, s} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Mul returns the component-wise (Hadamard) product of v and w.
func (v Vec3) Mul(w Vec3) Vec3 { return Vec3{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Div returns the component-wise quotient v / w.
func (v Vec3) Div(w Vec3) Vec3 { return Vec3{v.X / w.X, v.Y / w.Y, v.Z / w.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Dot returns the inner product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Normalized returns v scaled to unit length. The zero vector is returned
// unchanged so callers never divide by zero on degenerate normals.
func (v Vec3) Normalized() Vec3 {
	n := v.Norm()
	if n < Epsilon {
		return v
	}
	return v.Scale(1 / n)
}

// Abs returns the component-wise absolute value.
func (v Vec3) Abs() Vec3 { return Vec3{math.Abs(v.X), math.Abs(v.Y), math.Abs(v.Z)} }

// Max returns the component-wise maximum of v and w.
func (v Vec3) Max(w Vec3) Vec3 {
	return Vec3{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}

// Min returns the component-wise minimum of v and w.
func (v Vec3) Min(w Vec3) Vec3 {
	return Vec3{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// MaxComponent returns the largest component of v.
func (v Vec3) MaxComponent() float64 { return math.Max(v.X, math.Max(v.Y, v.Z)) }

// MinComponent returns the smallest component of v.
func (v Vec3) MinComponent() float64 { return math.Min(v.X, math.Min(v.Y, v.Z)) }

// Lerp linearly interpolates from v to w by t (t=0 → v, t=1 → w).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 { return v.Add(w.Sub(v).Scale(t)) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// IsFinite reports whether all components are finite numbers.
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// ApproxEq reports whether v and w differ by at most tol in every component.
func (v Vec3) ApproxEq(w Vec3, tol float64) bool {
	return math.Abs(v.X-w.X) <= tol && math.Abs(v.Y-w.Y) <= tol && math.Abs(v.Z-w.Z) <= tol
}

// Vec4 is a 4-component vector (homogeneous coordinates).
type Vec4 struct {
	X, Y, Z, W float64
}

// V4 constructs a Vec4.
func V4(x, y, z, w float64) Vec4 { return Vec4{x, y, z, w} }

// XYZ drops the homogeneous coordinate.
func (v Vec4) XYZ() Vec3 { return Vec3{v.X, v.Y, v.Z} }

// Add returns v + w.
func (v Vec4) Add(w Vec4) Vec4 { return Vec4{v.X + w.X, v.Y + w.Y, v.Z + w.Z, v.W + w.W} }

// Sub returns v - w.
func (v Vec4) Sub(w Vec4) Vec4 { return Vec4{v.X - w.X, v.Y - w.Y, v.Z - w.Z, v.W - w.W} }

// Scale returns s·v.
func (v Vec4) Scale(s float64) Vec4 { return Vec4{v.X * s, v.Y * s, v.Z * s, v.W * s} }

// Dot returns the inner product v·w.
func (v Vec4) Dot(w Vec4) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z + v.W*w.W }

// Homogeneous lifts a Vec3 point to homogeneous coordinates with w=1.
func Homogeneous(v Vec3) Vec4 { return Vec4{v.X, v.Y, v.Z, 1} }

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
