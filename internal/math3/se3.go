package math3

import (
	"fmt"
	"math"
)

// SE3 is a rigid-body transform (rotation + translation). By slamgo
// convention it maps points from the local (camera) frame into the parent
// (world) frame: p_world = R·p_local + T.
type SE3 struct {
	R Mat3
	T Vec3
}

// SE3Identity returns the identity transform.
func SE3Identity() SE3 { return SE3{R: Identity3()} }

// SE3From builds an SE(3) from a quaternion rotation and translation.
func SE3From(q Quat, t Vec3) SE3 { return SE3{R: q.Mat3(), T: t} }

// Apply maps a point through the transform: R·p + T.
func (s SE3) Apply(p Vec3) Vec3 { return s.R.MulVec(p).Add(s.T) }

// ApplyDir maps a direction (rotation only): R·d.
func (s SE3) ApplyDir(d Vec3) Vec3 { return s.R.MulVec(d) }

// Mul composes transforms: (s·o).Apply(p) == s.Apply(o.Apply(p)).
func (s SE3) Mul(o SE3) SE3 {
	return SE3{R: s.R.Mul(o.R), T: s.R.MulVec(o.T).Add(s.T)}
}

// Inverse returns the inverse transform.
func (s SE3) Inverse() SE3 {
	rt := s.R.Transpose()
	return SE3{R: rt, T: rt.MulVec(s.T).Neg()}
}

// Mat4 returns the homogeneous 4×4 form of the transform.
func (s SE3) Mat4() Mat4 {
	m := Identity4()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			m.M[i][j] = s.R.M[i][j]
		}
	}
	m.M[0][3], m.M[1][3], m.M[2][3] = s.T.X, s.T.Y, s.T.Z
	return m
}

// Quat returns the rotation part as a quaternion.
func (s SE3) Quat() Quat { return QuatFromMat3(s.R) }

// TranslationNorm returns |T|, the translation magnitude.
func (s SE3) TranslationNorm() float64 { return s.T.Norm() }

// RotationAngle returns the absolute rotation angle of R in radians.
func (s SE3) RotationAngle() float64 {
	c := Clamp((s.R.Trace()-1)/2, -1, 1)
	return math.Acos(c)
}

// ApproxEq reports whether both transforms agree entry-wise within tol.
func (s SE3) ApproxEq(o SE3, tol float64) bool {
	return s.R.ApproxEq(o.R, tol) && s.T.ApproxEq(o.T, tol)
}

// Orthonormalized re-projects R onto SO(3) via Gram-Schmidt, guarding
// against drift after long chains of composed estimates.
func (s SE3) Orthonormalized() SE3 {
	x := s.R.Col(0).Normalized()
	y := s.R.Col(1)
	y = y.Sub(x.Scale(x.Dot(y))).Normalized()
	z := x.Cross(y)
	return SE3{R: Mat3FromCols(x, y, z), T: s.T}
}

// String implements fmt.Stringer.
func (s SE3) String() string {
	q := s.Quat()
	return fmt.Sprintf("SE3{t=(%.4f %.4f %.4f) q=(%.4f %.4f %.4f %.4f)}",
		s.T.X, s.T.Y, s.T.Z, q.W, q.X, q.Y, q.Z)
}

// ExpSE3 is the exponential map from a 6-vector twist ξ = (v, ω) — the
// translational then rotational generator coefficients — to an SE(3)
// transform. This is the standard parametrisation used by the ICP solver:
// small pose updates live in the Lie algebra se(3).
func ExpSE3(xi [6]float64) SE3 {
	v := Vec3{xi[0], xi[1], xi[2]}
	w := Vec3{xi[3], xi[4], xi[5]}
	theta := w.Norm()

	wx := Skew(w)
	wx2 := wx.Mul(wx)

	var R, V Mat3
	if theta < 1e-9 {
		// Second-order Taylor expansion around theta=0.
		R = Identity3().Add(wx).Add(wx2.Scale(0.5))
		V = Identity3().Add(wx.Scale(0.5)).Add(wx2.Scale(1.0 / 6.0))
	} else {
		t2 := theta * theta
		a := math.Sin(theta) / theta
		b := (1 - math.Cos(theta)) / t2
		c := (theta - math.Sin(theta)) / (t2 * theta)
		R = Identity3().Add(wx.Scale(a)).Add(wx2.Scale(b))
		V = Identity3().Add(wx.Scale(b)).Add(wx2.Scale(c))
	}
	return SE3{R: R, T: V.MulVec(v)}.Orthonormalized()
}

// LogSE3 is the logarithmic map from SE(3) to its twist coordinates,
// inverse of ExpSE3 for rotations below π.
func LogSE3(s SE3) [6]float64 {
	theta := s.RotationAngle()
	var w Vec3
	if theta < 1e-9 {
		w = Vec3{
			(s.R.M[2][1] - s.R.M[1][2]) / 2,
			(s.R.M[0][2] - s.R.M[2][0]) / 2,
			(s.R.M[1][0] - s.R.M[0][1]) / 2,
		}
	} else {
		k := theta / (2 * math.Sin(theta))
		w = Vec3{
			(s.R.M[2][1] - s.R.M[1][2]) * k,
			(s.R.M[0][2] - s.R.M[2][0]) * k,
			(s.R.M[1][0] - s.R.M[0][1]) * k,
		}
	}

	wx := Skew(w)
	wx2 := wx.Mul(wx)
	var Vinv Mat3
	if theta < 1e-9 {
		Vinv = Identity3().Add(wx.Scale(-0.5)).Add(wx2.Scale(1.0 / 12.0))
	} else {
		t2 := theta * theta
		b := (1 - math.Cos(theta)) / t2
		a := math.Sin(theta) / theta
		coef := (1 - a/(2*b)) / t2
		Vinv = Identity3().Add(wx.Scale(-0.5)).Add(wx2.Scale(coef))
	}
	v := Vinv.MulVec(s.T)
	return [6]float64{v.X, v.Y, v.Z, w.X, w.Y, w.Z}
}
