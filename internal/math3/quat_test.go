package math3

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomQuat(r *rand.Rand) Quat {
	axis := V3(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
	return QuatFromAxisAngle(axis, r.Float64()*2*math.Pi)
}

func TestQuatIdentityRotation(t *testing.T) {
	q := QuatIdentity()
	v := V3(1, 2, 3)
	if got := q.Rotate(v); !got.ApproxEq(v, 1e-12) {
		t.Fatalf("identity rotate: %v", got)
	}
	if !q.Mat3().ApproxEq(Identity3(), 1e-12) {
		t.Fatal("identity Mat3")
	}
}

func TestQuatAxisAngle90(t *testing.T) {
	// 90° about Z maps X to Y.
	q := QuatFromAxisAngle(V3(0, 0, 1), math.Pi/2)
	got := q.Rotate(V3(1, 0, 0))
	if !got.ApproxEq(V3(0, 1, 0), 1e-12) {
		t.Fatalf("Rz(90)·x = %v", got)
	}
	// Zero axis yields identity.
	if QuatFromAxisAngle(Vec3{}, 1) != QuatIdentity() {
		t.Fatal("zero axis not identity")
	}
}

func TestQuatMat3Roundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		q := randomQuat(r)
		q2 := QuatFromMat3(q.Mat3())
		// q and -q represent the same rotation.
		d := math.Min(
			math.Abs(q.W-q2.W)+math.Abs(q.X-q2.X)+math.Abs(q.Y-q2.Y)+math.Abs(q.Z-q2.Z),
			math.Abs(q.W+q2.W)+math.Abs(q.X+q2.X)+math.Abs(q.Y+q2.Y)+math.Abs(q.Z+q2.Z),
		)
		if d > 1e-9 {
			t.Fatalf("roundtrip mismatch %v vs %v (d=%g)", q, q2, d)
		}
	}
}

func TestQuatMat3RoundtripEdgeRotations(t *testing.T) {
	// 180° rotations exercise every branch of Shepperd's method.
	for _, axis := range []Vec3{V3(1, 0, 0), V3(0, 1, 0), V3(0, 0, 1), V3(1, 1, 1)} {
		q := QuatFromAxisAngle(axis, math.Pi)
		R := q.Mat3()
		q2 := QuatFromMat3(R)
		if !q2.Mat3().ApproxEq(R, 1e-9) {
			t.Fatalf("180° about %v: matrices disagree", axis)
		}
	}
}

func TestQuatMulComposition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q1, q2 := randomQuat(r), randomQuat(r)
		v := smallVec(r)
		lhs := q1.Mul(q2).Rotate(v)
		rhs := q1.Rotate(q2.Rotate(v))
		return lhs.ApproxEq(rhs, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuatConjugateInverse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomQuat(r)
		v := smallVec(r)
		return q.Conjugate().Rotate(q.Rotate(v)).ApproxEq(v, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuatRotatePreservesNorm(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomQuat(r)
		v := smallVec(r)
		return math.Abs(q.Rotate(v).Norm()-v.Norm()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuatSlerpEndpoints(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		q1, q2 := randomQuat(r), randomQuat(r)
		s0 := q1.Slerp(q2, 0)
		s1 := q1.Slerp(q2, 1)
		v := smallVec(r)
		if !s0.Rotate(v).ApproxEq(q1.Rotate(v), 1e-9) {
			t.Fatal("slerp(0) ≠ q1")
		}
		if !s1.Rotate(v).ApproxEq(q2.Rotate(v), 1e-9) {
			t.Fatal("slerp(1) ≠ q2")
		}
	}
}

func TestQuatSlerpHalfAngle(t *testing.T) {
	q0 := QuatIdentity()
	q1 := QuatFromAxisAngle(V3(0, 0, 1), math.Pi/2)
	mid := q0.Slerp(q1, 0.5)
	want := QuatFromAxisAngle(V3(0, 0, 1), math.Pi/4)
	v := V3(1, 0, 0)
	if !mid.Rotate(v).ApproxEq(want.Rotate(v), 1e-9) {
		t.Fatalf("slerp midpoint: %v", mid.Rotate(v))
	}
}

func TestQuatSlerpNearIdentical(t *testing.T) {
	q := QuatFromAxisAngle(V3(1, 0, 0), 0.3)
	q2 := QuatFromAxisAngle(V3(1, 0, 0), 0.3+1e-12)
	s := q.Slerp(q2, 0.5)
	almostEq(t, s.Norm(), 1, 1e-12, "slerp stays unit near-identical")
}

func TestQuatAngleTo(t *testing.T) {
	q0 := QuatIdentity()
	q1 := QuatFromAxisAngle(V3(0, 1, 0), 0.75)
	almostEq(t, q0.AngleTo(q1), 0.75, 1e-9, "AngleTo")
	almostEq(t, q1.AngleTo(q1), 0, 1e-6, "AngleTo self")
	// Antipodal representation gives the same angle.
	q1n := Quat{-q1.W, -q1.X, -q1.Y, -q1.Z}
	almostEq(t, q0.AngleTo(q1n), 0.75, 1e-9, "AngleTo antipodal")
}

func TestQuatNormalizedDegenerate(t *testing.T) {
	if got := (Quat{}).Normalized(); got != QuatIdentity() {
		t.Fatalf("zero quat normalises to %v", got)
	}
}
