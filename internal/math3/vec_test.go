package math3

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v want %v (tol %v)", msg, got, want, tol)
	}
}

func TestVec3Basics(t *testing.T) {
	v := V3(1, 2, 3)
	w := V3(4, -5, 6)
	if got := v.Add(w); got != V3(5, -3, 9) {
		t.Fatalf("Add: %v", got)
	}
	if got := v.Sub(w); got != V3(-3, 7, -3) {
		t.Fatalf("Sub: %v", got)
	}
	if got := v.Scale(2); got != V3(2, 4, 6) {
		t.Fatalf("Scale: %v", got)
	}
	if got := v.Mul(w); got != V3(4, -10, 18) {
		t.Fatalf("Mul: %v", got)
	}
	almostEq(t, v.Dot(w), 4-10+18, 1e-12, "Dot")
	almostEq(t, V3(3, 4, 0).Norm(), 5, 1e-12, "Norm")
	if got := v.Neg(); got != V3(-1, -2, -3) {
		t.Fatalf("Neg: %v", got)
	}
}

func TestVec3CrossOrthogonal(t *testing.T) {
	v := V3(1, 2, 3)
	w := V3(-2, 0.5, 4)
	c := v.Cross(w)
	almostEq(t, c.Dot(v), 0, 1e-12, "cross ⟂ v")
	almostEq(t, c.Dot(w), 0, 1e-12, "cross ⟂ w")
	// Right-handedness of the basis.
	if got := V3(1, 0, 0).Cross(V3(0, 1, 0)); !got.ApproxEq(V3(0, 0, 1), 1e-15) {
		t.Fatalf("x × y = %v, want z", got)
	}
}

func TestVec3NormalizedZeroSafe(t *testing.T) {
	z := Vec3{}
	if got := z.Normalized(); got != z {
		t.Fatalf("Normalized(0) = %v, want 0", got)
	}
	v := V3(0, 0, 10).Normalized()
	almostEq(t, v.Norm(), 1, 1e-12, "unit norm")
}

func TestVec3MinMaxLerp(t *testing.T) {
	v, w := V3(1, 5, -2), V3(3, 2, 0)
	if got := v.Min(w); got != V3(1, 2, -2) {
		t.Fatalf("Min: %v", got)
	}
	if got := v.Max(w); got != V3(3, 5, 0) {
		t.Fatalf("Max: %v", got)
	}
	almostEq(t, v.MaxComponent(), 5, 0, "MaxComponent")
	almostEq(t, v.MinComponent(), -2, 0, "MinComponent")
	if got := v.Lerp(w, 0); got != v {
		t.Fatalf("Lerp 0: %v", got)
	}
	if got := v.Lerp(w, 1); !got.ApproxEq(w, 1e-12) {
		t.Fatalf("Lerp 1: %v", got)
	}
	mid := v.Lerp(w, 0.5)
	if !mid.ApproxEq(V3(2, 3.5, -1), 1e-12) {
		t.Fatalf("Lerp 0.5: %v", mid)
	}
}

func TestVec3IsFinite(t *testing.T) {
	if !V3(1, 2, 3).IsFinite() {
		t.Fatal("finite vector reported non-finite")
	}
	if V3(math.NaN(), 0, 0).IsFinite() {
		t.Fatal("NaN vector reported finite")
	}
	if V3(0, math.Inf(1), 0).IsFinite() {
		t.Fatal("Inf vector reported finite")
	}
}

func TestVec2AndVec4(t *testing.T) {
	a := V2(3, 4)
	almostEq(t, a.Norm(), 5, 1e-12, "Vec2 norm")
	almostEq(t, a.Dot(V2(1, 1)), 7, 1e-12, "Vec2 dot")
	if got := a.Add(V2(1, 1)).Sub(V2(1, 1)); got != a {
		t.Fatalf("Vec2 add/sub roundtrip: %v", got)
	}
	if got := a.Scale(2); got != V2(6, 8) {
		t.Fatalf("Vec2 scale: %v", got)
	}

	h := Homogeneous(V3(1, 2, 3))
	if h.W != 1 || h.XYZ() != V3(1, 2, 3) {
		t.Fatalf("homogeneous roundtrip: %v", h)
	}
	almostEq(t, V4(1, 2, 3, 4).Dot(V4(4, 3, 2, 1)), 20, 1e-12, "Vec4 dot")
	if got := V4(1, 2, 3, 4).Add(V4(1, 1, 1, 1)).Sub(V4(1, 1, 1, 1)); got != V4(1, 2, 3, 4) {
		t.Fatalf("Vec4 add/sub roundtrip: %v", got)
	}
	if got := V4(1, 2, 3, 4).Scale(0.5); got != V4(0.5, 1, 1.5, 2) {
		t.Fatalf("Vec4 scale: %v", got)
	}
}

func TestClamp(t *testing.T) {
	almostEq(t, Clamp(5, 0, 1), 1, 0, "upper")
	almostEq(t, Clamp(-5, 0, 1), 0, 0, "lower")
	almostEq(t, Clamp(0.5, 0, 1), 0.5, 0, "inside")
}

// smallVec draws vectors with bounded components so quick-check properties
// avoid catastrophic cancellation artefacts.
func smallVec(r *rand.Rand) Vec3 {
	return V3(r.Float64()*20-10, r.Float64()*20-10, r.Float64()*20-10)
}

func TestQuickCrossAnticommutes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v, w := smallVec(r), smallVec(r)
		return v.Cross(w).ApproxEq(w.Cross(v).Neg(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v, w := smallVec(r), smallVec(r)
		return v.Add(w).Norm() <= v.Norm()+w.Norm()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDotCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v, w := smallVec(r), smallVec(r)
		return math.Abs(v.Dot(w)) <= v.Norm()*w.Norm()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLagrangeIdentity(t *testing.T) {
	// |v×w|² + (v·w)² == |v|²|w|²
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v, w := smallVec(r), smallVec(r)
		lhs := v.Cross(w).Norm2() + v.Dot(w)*v.Dot(w)
		rhs := v.Norm2() * w.Norm2()
		return math.Abs(lhs-rhs) <= 1e-6*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
