package math3

import (
	"math"
	"math/rand"
	"testing"
)

func TestSym6SolveKnownSystem(t *testing.T) {
	// Build A = JᵀJ, B = Jᵀ(J·x*) from random rows so x* is recoverable.
	r := rand.New(rand.NewSource(2))
	want := [6]float64{0.5, -1, 2, 0.25, -0.75, 1.5}
	var s Sym6
	for i := 0; i < 100; i++ {
		var j [6]float64
		for k := range j {
			j[k] = r.NormFloat64()
		}
		e := 0.0
		for k := range j {
			e += j[k] * want[k]
		}
		s.AddRow(j, e)
	}
	got, err := s.Solve(0)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if math.Abs(got[k]-want[k]) > 1e-9 {
			t.Fatalf("x[%d] = %v, want %v", k, got[k], want[k])
		}
	}
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
}

func TestSym6SolveSingular(t *testing.T) {
	var s Sym6
	// Only one residual direction: rank-1 system.
	s.AddRow([6]float64{1, 0, 0, 0, 0, 0}, 1)
	if _, err := s.Solve(0); err == nil {
		t.Fatal("rank-1 system solved without error")
	}
	// Damping regularises it.
	if _, err := s.Solve(1e-3); err != nil {
		t.Fatalf("damped solve failed: %v", err)
	}
}

func TestSym6SolveEmpty(t *testing.T) {
	var s Sym6
	if _, err := s.Solve(0); err == nil {
		t.Fatal("empty system solved without error")
	}
}

func TestSym6Merge(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	rows := make([][6]float64, 60)
	errs := make([]float64, 60)
	for i := range rows {
		for k := range rows[i] {
			rows[i][k] = r.NormFloat64()
		}
		errs[i] = r.NormFloat64()
	}
	var whole Sym6
	for i := range rows {
		whole.AddRow(rows[i], errs[i])
	}
	var a, b Sym6
	for i := 0; i < 30; i++ {
		a.AddRow(rows[i], errs[i])
	}
	for i := 30; i < 60; i++ {
		b.AddRow(rows[i], errs[i])
	}
	a.Merge(&b)
	if a.Count != whole.Count {
		t.Fatalf("merged count %d vs %d", a.Count, whole.Count)
	}
	if math.Abs(a.Error-whole.Error) > 1e-9 {
		t.Fatalf("merged error %v vs %v", a.Error, whole.Error)
	}
	xa, err1 := a.Solve(0)
	xw, err2 := whole.Solve(0)
	if err1 != nil || err2 != nil {
		t.Fatalf("solve: %v %v", err1, err2)
	}
	for k := range xa {
		if math.Abs(xa[k]-xw[k]) > 1e-9 {
			t.Fatal("merged solution differs")
		}
	}
}

func TestSym6Reset(t *testing.T) {
	var s Sym6
	s.AddRow([6]float64{1, 1, 1, 1, 1, 1}, 2)
	s.Reset()
	if s.Count != 0 || s.Error != 0 || s.A[0][0] != 0 || s.B[0] != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestSolveSym3(t *testing.T) {
	a := Mat3FromRows(V3(4, 1, 0), V3(1, 3, 1), V3(0, 1, 2))
	want := V3(1, -2, 0.5)
	b := a.MulVec(want)
	got, err := SolveSym3(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEq(want, 1e-9) {
		t.Fatalf("got %v want %v", got, want)
	}
	var zero Mat3
	if _, err := SolveSym3(zero, b); err == nil {
		t.Fatal("singular 3×3 solved")
	}
}
