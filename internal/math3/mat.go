package math3

import (
	"fmt"
	"math"
)

// Mat3 is a row-major 3×3 matrix.
type Mat3 struct {
	M [3][3]float64
}

// Identity3 returns the 3×3 identity matrix.
func Identity3() Mat3 {
	var m Mat3
	m.M[0][0], m.M[1][1], m.M[2][2] = 1, 1, 1
	return m
}

// Mat3FromRows builds a matrix whose rows are r0, r1, r2.
func Mat3FromRows(r0, r1, r2 Vec3) Mat3 {
	return Mat3{M: [3][3]float64{
		{r0.X, r0.Y, r0.Z},
		{r1.X, r1.Y, r1.Z},
		{r2.X, r2.Y, r2.Z},
	}}
}

// Mat3FromCols builds a matrix whose columns are c0, c1, c2.
func Mat3FromCols(c0, c1, c2 Vec3) Mat3 {
	return Mat3{M: [3][3]float64{
		{c0.X, c1.X, c2.X},
		{c0.Y, c1.Y, c2.Y},
		{c0.Z, c1.Z, c2.Z},
	}}
}

// Row returns row i as a vector.
func (m Mat3) Row(i int) Vec3 { return Vec3{m.M[i][0], m.M[i][1], m.M[i][2]} }

// Col returns column j as a vector.
func (m Mat3) Col(j int) Vec3 { return Vec3{m.M[0][j], m.M[1][j], m.M[2][j]} }

// MulVec returns m·v.
func (m Mat3) MulVec(v Vec3) Vec3 {
	return Vec3{
		m.M[0][0]*v.X + m.M[0][1]*v.Y + m.M[0][2]*v.Z,
		m.M[1][0]*v.X + m.M[1][1]*v.Y + m.M[1][2]*v.Z,
		m.M[2][0]*v.X + m.M[2][1]*v.Y + m.M[2][2]*v.Z,
	}
}

// Mul returns the matrix product m·n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += m.M[i][k] * n.M[k][j]
			}
			out.M[i][j] = s
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m Mat3) Transpose() Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out.M[i][j] = m.M[j][i]
		}
	}
	return out
}

// Scale returns s·m.
func (m Mat3) Scale(s float64) Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out.M[i][j] = m.M[i][j] * s
		}
	}
	return out
}

// Add returns m + n.
func (m Mat3) Add(n Mat3) Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out.M[i][j] = m.M[i][j] + n.M[i][j]
		}
	}
	return out
}

// Det returns the determinant of m.
func (m Mat3) Det() float64 {
	return m.M[0][0]*(m.M[1][1]*m.M[2][2]-m.M[1][2]*m.M[2][1]) -
		m.M[0][1]*(m.M[1][0]*m.M[2][2]-m.M[1][2]*m.M[2][0]) +
		m.M[0][2]*(m.M[1][0]*m.M[2][1]-m.M[1][1]*m.M[2][0])
}

// Inverse returns m⁻¹ and whether m was invertible. A singular matrix
// returns (Identity3, false).
func (m Mat3) Inverse() (Mat3, bool) {
	d := m.Det()
	if math.Abs(d) < 1e-15 {
		return Identity3(), false
	}
	inv := 1 / d
	var out Mat3
	out.M[0][0] = (m.M[1][1]*m.M[2][2] - m.M[1][2]*m.M[2][1]) * inv
	out.M[0][1] = (m.M[0][2]*m.M[2][1] - m.M[0][1]*m.M[2][2]) * inv
	out.M[0][2] = (m.M[0][1]*m.M[1][2] - m.M[0][2]*m.M[1][1]) * inv
	out.M[1][0] = (m.M[1][2]*m.M[2][0] - m.M[1][0]*m.M[2][2]) * inv
	out.M[1][1] = (m.M[0][0]*m.M[2][2] - m.M[0][2]*m.M[2][0]) * inv
	out.M[1][2] = (m.M[0][2]*m.M[1][0] - m.M[0][0]*m.M[1][2]) * inv
	out.M[2][0] = (m.M[1][0]*m.M[2][1] - m.M[1][1]*m.M[2][0]) * inv
	out.M[2][1] = (m.M[0][1]*m.M[2][0] - m.M[0][0]*m.M[2][1]) * inv
	out.M[2][2] = (m.M[0][0]*m.M[1][1] - m.M[0][1]*m.M[1][0]) * inv
	return out, true
}

// Trace returns the sum of the diagonal entries.
func (m Mat3) Trace() float64 { return m.M[0][0] + m.M[1][1] + m.M[2][2] }

// ApproxEq reports whether every entry of m and n differs by at most tol.
func (m Mat3) ApproxEq(n Mat3, tol float64) bool {
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(m.M[i][j]-n.M[i][j]) > tol {
				return false
			}
		}
	}
	return true
}

// IsRotation reports whether m is (approximately) a proper rotation:
// orthonormal with determinant +1.
func (m Mat3) IsRotation(tol float64) bool {
	if math.Abs(m.Det()-1) > tol {
		return false
	}
	return m.Mul(m.Transpose()).ApproxEq(Identity3(), tol)
}

// Skew returns the skew-symmetric cross-product matrix [v]ₓ such that
// Skew(v).MulVec(w) == v.Cross(w).
func Skew(v Vec3) Mat3 {
	return Mat3{M: [3][3]float64{
		{0, -v.Z, v.Y},
		{v.Z, 0, -v.X},
		{-v.Y, v.X, 0},
	}}
}

// Outer returns the outer product v·wᵀ.
func Outer(v, w Vec3) Mat3 {
	return Mat3{M: [3][3]float64{
		{v.X * w.X, v.X * w.Y, v.X * w.Z},
		{v.Y * w.X, v.Y * w.Y, v.Y * w.Z},
		{v.Z * w.X, v.Z * w.Y, v.Z * w.Z},
	}}
}

// String implements fmt.Stringer.
func (m Mat3) String() string {
	return fmt.Sprintf("[%g %g %g; %g %g %g; %g %g %g]",
		m.M[0][0], m.M[0][1], m.M[0][2],
		m.M[1][0], m.M[1][1], m.M[1][2],
		m.M[2][0], m.M[2][1], m.M[2][2])
}

// Mat4 is a row-major 4×4 matrix (homogeneous transforms and projections).
type Mat4 struct {
	M [4][4]float64
}

// Identity4 returns the 4×4 identity matrix.
func Identity4() Mat4 {
	var m Mat4
	m.M[0][0], m.M[1][1], m.M[2][2], m.M[3][3] = 1, 1, 1, 1
	return m
}

// Mul returns the matrix product m·n.
func (m Mat4) Mul(n Mat4) Mat4 {
	var out Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			s := 0.0
			for k := 0; k < 4; k++ {
				s += m.M[i][k] * n.M[k][j]
			}
			out.M[i][j] = s
		}
	}
	return out
}

// MulVec returns m·v.
func (m Mat4) MulVec(v Vec4) Vec4 {
	return Vec4{
		m.M[0][0]*v.X + m.M[0][1]*v.Y + m.M[0][2]*v.Z + m.M[0][3]*v.W,
		m.M[1][0]*v.X + m.M[1][1]*v.Y + m.M[1][2]*v.Z + m.M[1][3]*v.W,
		m.M[2][0]*v.X + m.M[2][1]*v.Y + m.M[2][2]*v.Z + m.M[2][3]*v.W,
		m.M[3][0]*v.X + m.M[3][1]*v.Y + m.M[3][2]*v.Z + m.M[3][3]*v.W,
	}
}

// TransformPoint applies the homogeneous transform to a 3D point (w=1).
func (m Mat4) TransformPoint(p Vec3) Vec3 {
	return Vec3{
		m.M[0][0]*p.X + m.M[0][1]*p.Y + m.M[0][2]*p.Z + m.M[0][3],
		m.M[1][0]*p.X + m.M[1][1]*p.Y + m.M[1][2]*p.Z + m.M[1][3],
		m.M[2][0]*p.X + m.M[2][1]*p.Y + m.M[2][2]*p.Z + m.M[2][3],
	}
}

// TransformDir applies only the rotational part of the transform (w=0).
func (m Mat4) TransformDir(d Vec3) Vec3 {
	return Vec3{
		m.M[0][0]*d.X + m.M[0][1]*d.Y + m.M[0][2]*d.Z,
		m.M[1][0]*d.X + m.M[1][1]*d.Y + m.M[1][2]*d.Z,
		m.M[2][0]*d.X + m.M[2][1]*d.Y + m.M[2][2]*d.Z,
	}
}

// Transpose returns mᵀ.
func (m Mat4) Transpose() Mat4 {
	var out Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			out.M[i][j] = m.M[j][i]
		}
	}
	return out
}

// ApproxEq reports whether every entry of m and n differs by at most tol.
func (m Mat4) ApproxEq(n Mat4, tol float64) bool {
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(m.M[i][j]-n.M[i][j]) > tol {
				return false
			}
		}
	}
	return true
}
