package math3

import (
	"math"
	"math/rand"
	"testing"
)

func TestEigenSym3Diagonal(t *testing.T) {
	d := Mat3{M: [3][3]float64{{3, 0, 0}, {0, 7, 0}, {0, 0, 1}}}
	vals, V := EigenSym3(d)
	if !vals.ApproxEq(V3(7, 3, 1), 1e-10) {
		t.Fatalf("eigenvalues %v", vals)
	}
	// Eigenvectors are signed unit axes.
	for i := 0; i < 3; i++ {
		v := V.Col(i)
		almostEq(t, v.Norm(), 1, 1e-9, "unit eigenvector")
	}
}

func TestEigenSym3Reconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		m := randomMat3(r)
		sym := m.Add(m.Transpose()).Scale(0.5)
		vals, V := EigenSym3(sym)
		D := Mat3{M: [3][3]float64{{vals.X, 0, 0}, {0, vals.Y, 0}, {0, 0, vals.Z}}}
		rec := V.Mul(D).Mul(V.Transpose())
		if !rec.ApproxEq(sym, 1e-8) {
			t.Fatalf("V·D·Vᵀ ≠ A:\n%v\nvs\n%v", rec, sym)
		}
		if vals.X < vals.Y || vals.Y < vals.Z {
			t.Fatalf("eigenvalues not sorted: %v", vals)
		}
	}
}

func TestSVD3Reconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		a := randomMat3(r)
		U, s, V := SVD3(a)
		S := Mat3{M: [3][3]float64{{s.X, 0, 0}, {0, s.Y, 0}, {0, 0, s.Z}}}
		rec := U.Mul(S).Mul(V.Transpose())
		if !rec.ApproxEq(a, 1e-7) {
			t.Fatalf("U·S·Vᵀ ≠ A (iter %d)\n%v\nvs\n%v", i, rec, a)
		}
		if s.X < s.Y || s.Y < s.Z || s.Z < -1e-12 {
			t.Fatalf("singular values invalid: %v", s)
		}
		if !U.Mul(U.Transpose()).ApproxEq(Identity3(), 1e-7) {
			t.Fatal("U not orthogonal")
		}
		if !V.Mul(V.Transpose()).ApproxEq(Identity3(), 1e-7) {
			t.Fatal("V not orthogonal")
		}
	}
}

func TestSVD3RankDeficient(t *testing.T) {
	// Rank-1 matrix must still reconstruct.
	a := Outer(V3(1, 2, 3), V3(4, 5, 6))
	U, s, V := SVD3(a)
	S := Mat3{M: [3][3]float64{{s.X, 0, 0}, {0, s.Y, 0}, {0, 0, s.Z}}}
	rec := U.Mul(S).Mul(V.Transpose())
	if !rec.ApproxEq(a, 1e-6) {
		t.Fatalf("rank-1 reconstruction failed:\n%v\nvs\n%v", rec, a)
	}
	if s.Y > 1e-5 || s.Z > 1e-5 {
		t.Fatalf("rank-1 should have one nonzero singular value: %v", s)
	}
}

func TestNearestRotation(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 100; i++ {
		R := randomRotation(r)
		// Perturb.
		p := R
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				p.M[a][b] += (r.Float64() - 0.5) * 0.05
			}
		}
		proj := NearestRotation(p)
		if !proj.IsRotation(1e-8) {
			t.Fatal("projection is not a rotation")
		}
		if !proj.ApproxEq(R, 0.1) {
			t.Fatal("projection strayed from original rotation")
		}
	}
}

func TestNearestRotationReflection(t *testing.T) {
	// A reflection must be projected to a proper rotation (det +1).
	refl := Identity3()
	refl.M[2][2] = -1
	proj := NearestRotation(refl)
	if math.Abs(proj.Det()-1) > 1e-9 {
		t.Fatalf("det = %v", proj.Det())
	}
}

func TestOrthogonalTo(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 100; i++ {
		v := smallVec(r).Normalized()
		if v.Norm() < 0.5 {
			continue
		}
		o := orthogonalTo(v)
		almostEq(t, o.Dot(v), 0, 1e-9, "orthogonal")
		almostEq(t, o.Norm(), 1, 1e-9, "unit")
	}
}
