package math3

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSE3(r *rand.Rand) SE3 {
	return SE3{
		R: randomRotation(r),
		T: smallVec(r),
	}
}

func TestSE3IdentityApply(t *testing.T) {
	id := SE3Identity()
	p := V3(4, 5, 6)
	if got := id.Apply(p); got != p {
		t.Fatalf("I·p = %v", got)
	}
}

func TestSE3InverseRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSE3(r)
		p := smallVec(r)
		return s.Inverse().Apply(s.Apply(p)).ApproxEq(p, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSE3MulAssociativeAction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSE3(r), randomSE3(r)
		p := smallVec(r)
		return a.Mul(b).Apply(p).ApproxEq(a.Apply(b.Apply(p)), 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSE3InverseComposesToIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		s := randomSE3(r)
		if !s.Mul(s.Inverse()).ApproxEq(SE3Identity(), 1e-9) {
			t.Fatal("s·s⁻¹ ≠ I")
		}
		if !s.Inverse().Mul(s).ApproxEq(SE3Identity(), 1e-9) {
			t.Fatal("s⁻¹·s ≠ I")
		}
	}
}

func TestSE3Mat4Agrees(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		s := randomSE3(r)
		p := smallVec(r)
		if !s.Mat4().TransformPoint(p).ApproxEq(s.Apply(p), 1e-9) {
			t.Fatal("Mat4 path disagrees with Apply")
		}
		if !s.Mat4().TransformDir(p).ApproxEq(s.ApplyDir(p), 1e-9) {
			t.Fatal("Mat4 dir disagrees with ApplyDir")
		}
	}
}

func TestSE3RotationAngle(t *testing.T) {
	s := SE3From(QuatFromAxisAngle(V3(1, 0, 0), 0.6), V3(1, 2, 3))
	almostEq(t, s.RotationAngle(), 0.6, 1e-9, "rotation angle")
	almostEq(t, s.TranslationNorm(), math.Sqrt(14), 1e-12, "translation norm")
}

func TestSE3Orthonormalized(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	s := randomSE3(r)
	// Perturb the rotation slightly.
	s.R.M[0][0] += 1e-4
	s.R.M[1][2] -= 1e-4
	o := s.Orthonormalized()
	if !o.R.IsRotation(1e-9) {
		t.Fatal("orthonormalised matrix is not a rotation")
	}
	if !o.R.ApproxEq(s.R, 1e-2) {
		t.Fatal("orthonormalisation moved the rotation too far")
	}
}

func TestExpLogRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 300; i++ {
		var xi [6]float64
		for j := range xi {
			xi[j] = r.Float64()*2 - 1
		}
		s := ExpSE3(xi)
		back := LogSE3(s)
		for j := range xi {
			if math.Abs(back[j]-xi[j]) > 1e-6 {
				t.Fatalf("exp/log roundtrip: xi=%v back=%v", xi, back)
			}
		}
	}
}

func TestExpSE3SmallAngle(t *testing.T) {
	// Tiny twist: exp ≈ I + ξ^.
	xi := [6]float64{1e-8, -2e-8, 3e-8, 1e-9, -1e-9, 2e-9}
	s := ExpSE3(xi)
	if !s.R.ApproxEq(Identity3(), 1e-7) {
		t.Fatal("small-angle rotation not near identity")
	}
	if !s.T.ApproxEq(V3(1e-8, -2e-8, 3e-8), 1e-12) {
		t.Fatalf("small-angle translation: %v", s.T)
	}
}

func TestExpSE3PureTranslation(t *testing.T) {
	s := ExpSE3([6]float64{1, 2, 3, 0, 0, 0})
	if !s.R.ApproxEq(Identity3(), 1e-12) {
		t.Fatal("pure translation rotated")
	}
	if !s.T.ApproxEq(V3(1, 2, 3), 1e-12) {
		t.Fatalf("pure translation T=%v", s.T)
	}
}

func TestExpSE3PureRotation(t *testing.T) {
	s := ExpSE3([6]float64{0, 0, 0, 0, 0, math.Pi / 2})
	want := QuatFromAxisAngle(V3(0, 0, 1), math.Pi/2).Mat3()
	if !s.R.ApproxEq(want, 1e-9) {
		t.Fatalf("pure rotation R=%v", s.R)
	}
	if s.T.Norm() > 1e-12 {
		t.Fatalf("pure rotation translated: %v", s.T)
	}
}

func TestSE3ExpPreservesRotationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var xi [6]float64
		for j := range xi {
			xi[j] = r.Float64()*4 - 2
		}
		return ExpSE3(xi).R.IsRotation(1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
