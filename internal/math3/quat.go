package math3

import "math"

// Quat is a unit quaternion (w + xi + yj + zk) representing a 3D rotation.
type Quat struct {
	W, X, Y, Z float64
}

// QuatIdentity returns the identity rotation.
func QuatIdentity() Quat { return Quat{W: 1} }

// QuatFromAxisAngle builds the quaternion rotating by angle (radians)
// around axis. A zero axis yields the identity.
func QuatFromAxisAngle(axis Vec3, angle float64) Quat {
	n := axis.Norm()
	if n < Epsilon {
		return QuatIdentity()
	}
	s := math.Sin(angle/2) / n
	return Quat{
		W: math.Cos(angle / 2),
		X: axis.X * s,
		Y: axis.Y * s,
		Z: axis.Z * s,
	}
}

// QuatFromMat3 converts a rotation matrix to a quaternion (Shepperd's
// method, numerically stable for all rotations).
func QuatFromMat3(m Mat3) Quat {
	t := m.Trace()
	var q Quat
	switch {
	case t > 0:
		s := math.Sqrt(t+1) * 2
		q.W = 0.25 * s
		q.X = (m.M[2][1] - m.M[1][2]) / s
		q.Y = (m.M[0][2] - m.M[2][0]) / s
		q.Z = (m.M[1][0] - m.M[0][1]) / s
	case m.M[0][0] > m.M[1][1] && m.M[0][0] > m.M[2][2]:
		s := math.Sqrt(1+m.M[0][0]-m.M[1][1]-m.M[2][2]) * 2
		q.W = (m.M[2][1] - m.M[1][2]) / s
		q.X = 0.25 * s
		q.Y = (m.M[0][1] + m.M[1][0]) / s
		q.Z = (m.M[0][2] + m.M[2][0]) / s
	case m.M[1][1] > m.M[2][2]:
		s := math.Sqrt(1+m.M[1][1]-m.M[0][0]-m.M[2][2]) * 2
		q.W = (m.M[0][2] - m.M[2][0]) / s
		q.X = (m.M[0][1] + m.M[1][0]) / s
		q.Y = 0.25 * s
		q.Z = (m.M[1][2] + m.M[2][1]) / s
	default:
		s := math.Sqrt(1+m.M[2][2]-m.M[0][0]-m.M[1][1]) * 2
		q.W = (m.M[1][0] - m.M[0][1]) / s
		q.X = (m.M[0][2] + m.M[2][0]) / s
		q.Y = (m.M[1][2] + m.M[2][1]) / s
		q.Z = 0.25 * s
	}
	return q.Normalized()
}

// Mat3 converts the quaternion to a rotation matrix.
func (q Quat) Mat3() Mat3 {
	x2, y2, z2 := q.X+q.X, q.Y+q.Y, q.Z+q.Z
	xx, yy, zz := q.X*x2, q.Y*y2, q.Z*z2
	xy, xz, yz := q.X*y2, q.X*z2, q.Y*z2
	wx, wy, wz := q.W*x2, q.W*y2, q.W*z2
	return Mat3{M: [3][3]float64{
		{1 - (yy + zz), xy - wz, xz + wy},
		{xy + wz, 1 - (xx + zz), yz - wx},
		{xz - wy, yz + wx, 1 - (xx + yy)},
	}}
}

// Mul returns the Hamilton product q·r (apply r first, then q).
func (q Quat) Mul(r Quat) Quat {
	return Quat{
		W: q.W*r.W - q.X*r.X - q.Y*r.Y - q.Z*r.Z,
		X: q.W*r.X + q.X*r.W + q.Y*r.Z - q.Z*r.Y,
		Y: q.W*r.Y - q.X*r.Z + q.Y*r.W + q.Z*r.X,
		Z: q.W*r.Z + q.X*r.Y - q.Y*r.X + q.Z*r.W,
	}
}

// Conjugate returns the quaternion conjugate (the inverse for unit
// quaternions).
func (q Quat) Conjugate() Quat { return Quat{q.W, -q.X, -q.Y, -q.Z} }

// Norm returns the quaternion magnitude.
func (q Quat) Norm() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Normalized returns q scaled to unit norm. A degenerate (near-zero)
// quaternion becomes the identity.
func (q Quat) Normalized() Quat {
	n := q.Norm()
	if n < Epsilon {
		return QuatIdentity()
	}
	return Quat{q.W / n, q.X / n, q.Y / n, q.Z / n}
}

// Rotate applies the rotation to vector v.
func (q Quat) Rotate(v Vec3) Vec3 {
	// v' = v + 2·u×(u×v + w·v), u = (x,y,z)
	u := Vec3{q.X, q.Y, q.Z}
	t := u.Cross(v).Scale(2)
	return v.Add(t.Scale(q.W)).Add(u.Cross(t))
}

// Slerp spherically interpolates from q to r by t ∈ [0,1].
func (q Quat) Slerp(r Quat, t float64) Quat {
	cosTheta := q.W*r.W + q.X*r.X + q.Y*r.Y + q.Z*r.Z
	// Take the short arc.
	if cosTheta < 0 {
		r = Quat{-r.W, -r.X, -r.Y, -r.Z}
		cosTheta = -cosTheta
	}
	if cosTheta > 1-1e-10 {
		// Nearly identical: fall back to normalised lerp.
		return Quat{
			q.W + t*(r.W-q.W),
			q.X + t*(r.X-q.X),
			q.Y + t*(r.Y-q.Y),
			q.Z + t*(r.Z-q.Z),
		}.Normalized()
	}
	theta := math.Acos(Clamp(cosTheta, -1, 1))
	sinTheta := math.Sin(theta)
	a := math.Sin((1-t)*theta) / sinTheta
	b := math.Sin(t*theta) / sinTheta
	return Quat{
		a*q.W + b*r.W,
		a*q.X + b*r.X,
		a*q.Y + b*r.Y,
		a*q.Z + b*r.Z,
	}.Normalized()
}

// AngleTo returns the absolute rotation angle (radians) between q and r.
func (q Quat) AngleTo(r Quat) float64 {
	d := q.Conjugate().Mul(r).Normalized()
	w := Clamp(math.Abs(d.W), 0, 1)
	return 2 * math.Acos(w)
}
