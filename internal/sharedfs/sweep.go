package sharedfs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// A SIGKILLed process leaves two kinds of debris in a shared directory:
// ".tmp-*" files from writes that never reached their rename, and
// ".lease" files whose holder will never release them. Neither can
// corrupt anything — temp files are invisible to loads and expired
// leases are taken over — but both accumulate forever in a long-lived
// directory, so openers sweep them.
//
// The sweep is deliberately conservative: a temp file is removed only
// when its mtime is older than maxAge (a live writer's temp file is
// seconds old; deleting it would fail the writer's rename), and a lease
// file only when its embedded heartbeat is older than maxAge (live
// holders renew at TTL/3, so any heartbeat that old belongs to a
// process long dead — even with generous TTLs). Valid artifacts are
// never touched: the sweep looks exclusively at ".tmp-*" and "*.lease"
// names.

// DefaultDebrisAge is the sweep threshold openers use: old enough that
// no live writer or heartbeating lease holder can be mistaken for
// debris under any sane TTL, young enough that a crashed campaign's
// litter is gone by the next morning's run.
const DefaultDebrisAge = 15 * time.Minute

// SweepDebris removes stale temp files and orphaned lease files from
// dir, returning the names it removed (sorted by directory order). A
// missing directory is not an error (nothing to sweep); individual
// removal failures are skipped — the sweep is best-effort hygiene, a
// failure means another process raced us to the file or will sweep it
// next open. now nil means time.Now.
func SweepDebris(dir string, maxAge time.Duration, now func() time.Time) ([]string, error) {
	if now == nil {
		now = time.Now
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	cutoff := now().Add(-maxAge)
	var removed []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		path := filepath.Join(dir, name)
		switch {
		case IsTempFile(name):
			info, err := e.Info()
			if err != nil || info.ModTime().After(cutoff) {
				continue // young enough to be a live writer's file
			}
		case strings.HasSuffix(name, ".lease"):
			data, err := os.ReadFile(path)
			if err != nil {
				continue
			}
			var rec leaseRecord
			json.Unmarshal(data, &rec)
			if time.Unix(0, rec.HeartbeatNS).After(cutoff) {
				continue // heartbeat recent enough: holder may be alive
			}
		default:
			continue // artifacts and anything unrecognised are never touched
		}
		if os.Remove(path) == nil {
			removed = append(removed, name)
		}
	}
	return removed, nil
}
