package sharedfs

import (
	"fmt"
	"time"
)

// Transient I/O faults — a full disk that a log rotation clears, an NFS
// server blinking, an object-store 5xx behind a FUSE mount — should
// cost milliseconds, not a crash or a re-computation. RetryPolicy
// bounds a retry loop with a fixed deterministic backoff ladder (no
// jitter, no wall-clock dependence), so retrying changes *when* bytes
// land, never *which* bytes.

// RetryPolicy bounds a retry loop: at most Attempts tries, sleeping
// BaseDelay << attempt between them, capped at MaxDelay.
type RetryPolicy struct {
	Attempts  int
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// DefaultRetryPolicy is the store policy shared directories run with:
// 5 attempts over ~150ms. Transient blips are absorbed; a genuinely
// broken disk still fails fast enough to be diagnosable.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
}

// Delay is the deterministic backoff before retry attempt (1-based;
// attempt already failed): BaseDelay doubled per attempt, capped.
func (p RetryPolicy) Delay(attempt int) time.Duration {
	d := p.BaseDelay << (attempt - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	return d
}

// Retry runs op up to p.Attempts times, sleeping the ladder's delay
// between tries; sleep nil means time.Sleep. The what label names the
// operation in the exhaustion error.
func (p RetryPolicy) Retry(what string, sleep func(time.Duration), op func() error) error {
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	var err error
	for attempt := 1; ; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if attempt >= p.Attempts {
			return fmt.Errorf("%s failed after %d attempts: %w", what, attempt, err)
		}
		sleep(p.Delay(attempt))
	}
}
