package sharedfs

import (
	"os"
	"strings"
)

// WriteFileAtomic publishes data at path (which must live in dir) via a
// uniquely named temp file, fsync and rename, so concurrent writers —
// other goroutines or other processes sharing the directory — cannot
// clobber each other's half-written bytes and a machine crash cannot
// leave a complete-looking partial file: whichever rename lands last
// wins whole. Failed writes remove their temp file instead of leaking
// it. The temp prefix keeps in-flight files recognisable (and
// sweepable, see SweepDebris): ".tmp-<label>-<random>".
func WriteFileAtomic(dir, path, label string, data []byte) (err error) {
	f, err := os.CreateTemp(dir, ".tmp-"+label+"-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(data); err != nil {
		f.Close()
		return err
	}
	// Flush to stable storage before the rename publishes the file, so
	// a machine crash cannot leave a complete-looking empty artifact.
	if err = f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// IsTempFile reports whether a directory entry name looks like one of
// WriteFileAtomic's (or the lease protocol's) in-flight temp files.
func IsTempFile(name string) bool {
	return strings.HasPrefix(name, ".tmp-")
}
