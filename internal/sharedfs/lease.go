// Package sharedfs holds the crash-safety primitives for directories
// shared by cooperating processes: atomic file publication (temp file +
// fsync + rename), a bounded deterministic retry ladder for transient
// I/O faults, the worker-lease protocol that distributes work across
// processes sharing a directory, and a debris sweeper that
// garbage-collects the temp and lease files SIGKILLed processes leave
// behind. The campaign checkpoint store and the rendered-sequence cache
// are both built on these primitives, so their fault semantics are
// identical by construction.
package sharedfs

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// The worker-lease protocol turns a shared directory into a
// coordination substrate: N cooperating processes (or machines over a
// shared filesystem) split a set of named work items, and any of them
// can die at any instant without losing the overall job.
//
// A worker claims an item by atomically creating `<name>.lease`
// (O_CREATE|O_EXCL) carrying its worker id and a heartbeat timestamp.
// While the item runs the holder renews the heartbeat; a lease whose
// heartbeat is older than the TTL is expired and may be taken over by
// any other worker. On completion the holder publishes the result
// (atomic rename) and releases the lease.
//
// Leases are a work-distribution optimisation, not a correctness
// mechanism. Correctness rests entirely on the published artifacts:
// names are content hashes of everything that determines their bytes,
// every writer of a name produces identical bytes, and writes are
// atomic — so if a takeover races a slow-but-alive holder, both compute
// the item, both write, the last complete rename wins, and the result
// is indistinguishable from either writer finishing alone. The lease
// protocol therefore tolerates benign races (two workers both believing
// they hold an expired lease) instead of paying for distributed
// consensus the problem does not need.
//
// Liveness: a worker that wants an item either holds the lease (and
// computes), sees the artifact appear (another worker finished), or
// watches the lease's heartbeat go stale (the holder died) and takes
// over. Heartbeat timestamps are wall-clock but exist only in .lease
// files, never in artifacts or reports — determinism is untouched.

// ErrLeaseLost reports that a renew found the lease held by another
// worker: an expired lease was taken over. The holder keeps computing —
// the write is still safe — but learns its effort may be duplicated.
var ErrLeaseLost = errors.New("sharedfs: lease lost to another worker")

// leaseRecord is the JSON body of a .lease file.
type leaseRecord struct {
	// Worker identifies the holder.
	Worker string `json:"worker"`
	// HeartbeatNS is the holder's last renewal, Unix nanoseconds.
	HeartbeatNS int64 `json:"heartbeat_ns"`
}

// LeaseManager claims, renews and releases item leases in a shared
// directory on behalf of one worker.
type LeaseManager struct {
	dir    string
	worker string
	ttl    time.Duration
	now    func() time.Time
}

// NewLeaseManager creates a manager for worker over the shared
// directory dir. A lease is expired once its heartbeat is older than
// ttl; now nil means time.Now (tests inject clocks to simulate dead
// workers).
func NewLeaseManager(dir, worker string, ttl time.Duration, now func() time.Time) *LeaseManager {
	if now == nil {
		now = time.Now
	}
	return &LeaseManager{dir: dir, worker: worker, ttl: ttl, now: now}
}

// Lease is a held claim on one item name.
type Lease struct {
	m    *LeaseManager
	name string
	path string
}

// Name returns the item name the lease claims (for log messages).
func (l *Lease) Name() string { return l.name }

func (m *LeaseManager) leasePath(name string) string {
	return filepath.Join(m.dir, name+".lease")
}

// record marshals a fresh heartbeat for this worker.
func (m *LeaseManager) record() []byte {
	data, _ := json.Marshal(leaseRecord{Worker: m.worker, HeartbeatNS: m.now().UnixNano()})
	return data
}

// read parses a lease file; ok is false when the file is absent.
// Unparsable lease bytes decode to a zero record, whose ancient
// heartbeat makes the lease immediately expired — a corrupt lease must
// never wedge an item.
func (m *LeaseManager) read(name string) (rec leaseRecord, ok bool) {
	data, err := os.ReadFile(m.leasePath(name))
	if err != nil {
		return leaseRecord{}, false
	}
	json.Unmarshal(data, &rec)
	return rec, true
}

// expired reports whether a heartbeat is older than the TTL.
func (m *LeaseManager) expired(rec leaseRecord) bool {
	return m.now().Sub(time.Unix(0, rec.HeartbeatNS)) > m.ttl
}

// TryAcquire attempts to claim name. It returns (lease, true) when this
// worker now holds the claim — either by creating the lease file
// atomically or by taking over an expired one — and (nil, false) when a
// live worker holds it. Errors are real I/O faults; callers in a poll
// loop may treat them like contention and retry.
func (m *LeaseManager) TryAcquire(name string) (*Lease, bool, error) {
	path := m.leasePath(name)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err == nil {
		_, werr := f.Write(m.record())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			os.Remove(path)
			return nil, false, fmt.Errorf("sharedfs: lease %s: %w", name, werr)
		}
		return &Lease{m: m, name: name, path: path}, true, nil
	}
	if !errors.Is(err, os.ErrExist) {
		return nil, false, fmt.Errorf("sharedfs: lease %s: %w", name, err)
	}
	rec, ok := m.read(name)
	if !ok {
		// The holder released between our create attempt and the read;
		// let the caller's poll loop re-try (the artifact is probably
		// about to appear).
		return nil, false, nil
	}
	if !m.expired(rec) {
		return nil, false, nil
	}
	// Expired: take over by atomically replacing the lease file. Two
	// workers racing this rename both think they won — that is a benign
	// race (see the package comment): both compute, identical bytes,
	// last complete artifact rename wins.
	if err := m.overwrite(name); err != nil {
		return nil, false, err
	}
	return &Lease{m: m, name: name, path: path}, true, nil
}

// overwrite atomically replaces name's lease file with a fresh record
// for this worker.
func (m *LeaseManager) overwrite(name string) error {
	f, err := os.CreateTemp(m.dir, ".tmp-lease-*")
	if err != nil {
		return fmt.Errorf("sharedfs: lease %s: %w", name, err)
	}
	tmp := f.Name()
	_, werr := f.Write(m.record())
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, m.leasePath(name))
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("sharedfs: lease %s: %w", name, werr)
	}
	return nil
}

// Renew refreshes the heartbeat. It returns ErrLeaseLost when the lease
// file now names another worker (an expired lease was taken over) or
// vanished; the holder should keep computing — artifact writes stay
// safe — but stop renewing.
func (l *Lease) Renew() error {
	rec, ok := l.m.read(l.name)
	if !ok || rec.Worker != l.m.worker {
		return ErrLeaseLost
	}
	return l.m.overwrite(l.name)
}

// Release drops the claim after the artifact is saved. Only a lease
// still held by this worker is removed; a lease lost to takeover is
// left to its new holder.
func (l *Lease) Release() error {
	rec, ok := l.m.read(l.name)
	if !ok || rec.Worker != l.m.worker {
		return nil
	}
	if err := os.Remove(l.path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("sharedfs: lease %s: %w", l.name, err)
	}
	return nil
}

// Holder reports the worker currently named in name's lease file, with
// ok false when no lease exists. Diagnostic / test surface.
func (m *LeaseManager) Holder(name string) (worker string, expired, ok bool) {
	rec, ok := m.read(name)
	if !ok {
		return "", false, false
	}
	return rec.Worker, m.expired(rec), true
}

// Heartbeat renews lease until the returned stop function is called,
// then releases it. Renewal runs at a third of the TTL so one missed
// beat (GC pause, NFS hiccup) does not forfeit the lease; logf (may be
// nil) receives renewal failures.
func Heartbeat(lease *Lease, ttl time.Duration, logf func(format string, args ...any)) (stop func()) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	interval := ttl / 3
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-quit:
				return
			case <-t.C:
				if err := lease.Renew(); err != nil {
					logf("lease %s: %v (continuing; artifact writes stay safe)", lease.name, err)
					if errors.Is(err, ErrLeaseLost) {
						return
					}
				}
			}
		}
	}()
	return func() {
		close(quit)
		<-done
		if err := lease.Release(); err != nil {
			logf("lease %s: release: %v", lease.name, err)
		}
	}
}
