package sharedfs

import "time"

// PollBackoff is the deterministic wait ladder used while another
// worker holds a lease: 10ms doubling to a 200ms cap. Wall-clock enters
// scheduling only; results never depend on it.
type PollBackoff struct{ d time.Duration }

// NewPollBackoff starts a fresh ladder at 10ms.
func NewPollBackoff() *PollBackoff { return &PollBackoff{d: 10 * time.Millisecond} }

// Next returns the current delay and doubles the ladder (capped).
func (b *PollBackoff) Next() time.Duration {
	d := b.d
	if b.d < 200*time.Millisecond {
		b.d *= 2
	}
	return d
}
