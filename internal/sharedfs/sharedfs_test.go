package sharedfs

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRetryPolicyDelayCaps(t *testing.T) {
	p := DefaultRetryPolicy()
	if d := p.Delay(10); d != p.MaxDelay {
		t.Fatalf("Delay(10) = %v, want cap %v", d, p.MaxDelay)
	}
	if d := p.Delay(63); d != p.MaxDelay { // shift overflow must not go negative
		t.Fatalf("Delay(63) = %v, want cap %v", d, p.MaxDelay)
	}
	if d := p.Delay(1); d != p.BaseDelay {
		t.Fatalf("Delay(1) = %v, want base %v", d, p.BaseDelay)
	}
}

func TestRetryRecoversAndExhausts(t *testing.T) {
	var slept []time.Duration
	sleep := func(d time.Duration) { slept = append(slept, d) }
	fails := 2
	err := DefaultRetryPolicy().Retry("op", sleep, func() error {
		if fails > 0 {
			fails--
			return os.ErrPermission
		}
		return nil
	})
	if err != nil {
		t.Fatalf("transient fault not absorbed: %v", err)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}

	slept = nil
	err = DefaultRetryPolicy().Retry("op", sleep, func() error { return os.ErrPermission })
	if err == nil {
		t.Fatal("permanent fault not reported")
	}
	if want := DefaultRetryPolicy().Attempts - 1; len(slept) != want {
		t.Fatalf("slept %d times, want %d", len(slept), want)
	}
}

func TestWriteFileAtomicPublishesWhole(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	data := []byte("hello, crash safety")
	if err := WriteFileAtomic(dir, path, "out", data); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("read back %q, want %q", got, data)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if IsTempFile(e.Name()) {
			t.Fatalf("temp file leaked: %s", e.Name())
		}
	}
}

// TestSweepDebris seeds a shared directory with every kind of crash
// litter next to valid artifacts and proves the sweep removes exactly
// the debris: old temp files and dead leases go, fresh temp files
// (a live writer), fresh leases (a live holder) and artifacts stay.
func TestSweepDebris(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	old := now.Add(-time.Hour)

	write := func(name string, data []byte) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	age := func(path string) {
		t.Helper()
		if err := os.Chtimes(path, old, old); err != nil {
			t.Fatal(err)
		}
	}

	write("artifact.json", []byte(`{"version":1}`))
	age(write("old-artifact.json", []byte(`{"version":1}`))) // old but valid: kept
	age(write(".tmp-dead-writer-123", []byte("partial")))
	write(".tmp-live-writer-456", []byte("in flight"))
	write("cell.lease", leaseBytes(t, "dead", now.Add(-time.Hour)))
	write("live.lease", leaseBytes(t, "alive", now))
	age(write("corrupt.lease", []byte("not json"))) // zero heartbeat: dead

	removed, err := SweepDebris(dir, DefaultDebrisAge, func() time.Time { return now })
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, n := range removed {
		got[n] = true
	}
	for _, want := range []string{".tmp-dead-writer-123", "cell.lease", "corrupt.lease"} {
		if !got[want] {
			t.Errorf("debris %s not swept (removed: %v)", want, removed)
		}
	}
	for _, keep := range []string{"artifact.json", "old-artifact.json", ".tmp-live-writer-456", "live.lease"} {
		if _, err := os.Stat(filepath.Join(dir, keep)); err != nil {
			t.Errorf("%s should have survived the sweep: %v", keep, err)
		}
	}

	// A missing directory sweeps to nothing, not an error.
	if _, err := SweepDebris(filepath.Join(dir, "nope"), DefaultDebrisAge, nil); err != nil {
		t.Fatalf("missing dir: %v", err)
	}
}

func leaseBytes(t *testing.T, worker string, heartbeat time.Time) []byte {
	t.Helper()
	m := NewLeaseManager(t.TempDir(), worker, time.Minute, func() time.Time { return heartbeat })
	return m.record()
}

// TestLeaseRoundtrip exercises the acquire → renew → release cycle and
// takeover of an expired holder at the sharedfs level (the campaign
// suite covers the protocol end-to-end through its aliases).
func TestLeaseRoundtrip(t *testing.T) {
	dir := t.TempDir()
	a := NewLeaseManager(dir, "a", time.Minute, nil)
	b := NewLeaseManager(dir, "b", time.Minute, nil)

	la, ok, err := a.TryAcquire("item")
	if err != nil || !ok {
		t.Fatalf("first acquire: ok=%v err=%v", ok, err)
	}
	if la.Name() != "item" {
		t.Fatalf("lease name %q", la.Name())
	}
	if _, ok, _ := b.TryAcquire("item"); ok {
		t.Fatal("second worker stole a live lease")
	}
	if err := la.Renew(); err != nil {
		t.Fatalf("renew: %v", err)
	}
	if err := la.Release(); err != nil {
		t.Fatalf("release: %v", err)
	}
	if _, ok, err := b.TryAcquire("item"); err != nil || !ok {
		t.Fatalf("acquire after release: ok=%v err=%v", ok, err)
	}

	// Expired holder: a manager whose clock is an hour behind wrote the
	// lease, so a live worker takes it over.
	past := func() time.Time { return time.Now().Add(-time.Hour) }
	dead := NewLeaseManager(dir, "dead", time.Second, past)
	if _, ok, err := dead.TryAcquire("stale"); err != nil || !ok {
		t.Fatalf("staging dead lease: ok=%v err=%v", ok, err)
	}
	live := NewLeaseManager(dir, "live", time.Second, nil)
	ll, ok, err := live.TryAcquire("stale")
	if err != nil || !ok {
		t.Fatalf("takeover: ok=%v err=%v", ok, err)
	}
	if w, _, _ := live.Holder("stale"); w != "live" {
		t.Fatalf("holder after takeover = %q", w)
	}
	if err := ll.Release(); err != nil {
		t.Fatal(err)
	}
}
