package hypermapper

import (
	"errors"
	"math/rand"

	"slamgo/internal/rf"
)

// Labeler assigns a class index to a configuration's metrics; classes are
// named by the parallel class list (e.g. "fast+accurate" / "other").
type Labeler func(Metrics) int

// PaperClasses builds the three-way labelling of Figure 2 (right):
// configurations are graded by which of the paper's three targets they
// meet — accurate (max ATE < ateLimit), fast (≥ fpsLimit), power
// efficient (< powerLimit). The class is the count-coded combination.
func PaperClasses(ateLimit, fpsLimit, powerLimit float64) (Labeler, []string) {
	names := []string{
		"none",
		"accurate",
		"fast",
		"accurate+fast",
		"efficient",
		"accurate+efficient",
		"fast+efficient",
		"accurate+fast+efficient",
	}
	label := func(m Metrics) int {
		if m.Failed {
			return 0
		}
		idx := 0
		if m.MaxATE < ateLimit {
			idx |= 1
		}
		if m.Runtime > 0 && 1/m.Runtime >= fpsLimit {
			idx |= 2
		}
		if m.Power < powerLimit {
			idx |= 4
		}
		return idx
	}
	return label, names
}

// Knowledge fits a shallow decision tree over evaluated configurations,
// returning the tree and its extracted rules — the paper's "knowledge"
// output that tells a system designer which parameter regions meet which
// targets.
func Knowledge(space *Space, obs []Observation, label Labeler, classNames []string, maxDepth int) (*rf.ClassificationTree, []rf.Rule, error) {
	if len(obs) == 0 {
		return nil, nil, errors.New("hypermapper: no observations for knowledge extraction")
	}
	if maxDepth < 1 {
		maxDepth = 3
	}
	var X [][]float64
	var y []int
	for _, o := range obs {
		X = append(X, o.X)
		y = append(y, label(o.M))
	}
	tree, err := rf.FitClassification(X, y, classNames,
		rf.TreeConfig{MaxDepth: maxDepth, MinLeaf: 2}, rand.New(rand.NewSource(5)))
	if err != nil {
		return nil, nil, err
	}
	return tree, tree.Rules(space.Names()), nil
}
