package hypermapper

import (
	"reflect"
	"testing"
)

func TestPromoteTopFraction(t *testing.T) {
	cases := []struct {
		name     string
		scores   []float64
		fraction float64
		want     []int
	}{
		{"empty", nil, 0.5, nil},
		{"single", []float64{3}, 0.25, []int{0}},
		{"half", []float64{4, 1, 3, 2}, 0.5, []int{1, 3}},
		{"ceil rounds up", []float64{4, 1, 3}, 0.5, []int{1, 2}},
		{"at least one", []float64{4, 1, 3, 2}, 0.01, []int{1}},
		{"all", []float64{4, 1, 3, 2}, 1, []int{1, 3, 2, 0}},
		{"ties break by index", []float64{2, 2, 2, 2}, 0.5, []int{0, 1}},
		{"ties after distinct", []float64{1, 5, 5, 0}, 0.75, []int{3, 0, 1}},
	}
	for _, c := range cases {
		got := PromoteTopFraction(c.scores, c.fraction)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: PromoteTopFraction(%v, %g) = %v, want %v",
				c.name, c.scores, c.fraction, got, c.want)
		}
	}
}

// TestMultiFidelityMatchesSharedPromotion pins the refactored ladder to
// the shared helper: the promoted set of a batch equals
// PromoteTopFraction over the same ranks.
func TestMultiFidelityMatchesSharedPromotion(t *testing.T) {
	runtimes := []float64{0.4, 0.1, 0.3, 0.2, 0.1, 0.5}
	var highCalls []int
	mf := &MultiFidelity{
		Low: func(pt Point) Metrics { return Metrics{Runtime: runtimes[int(pt[0])]} },
		High: func(pt Point) Metrics {
			highCalls = append(highCalls, int(pt[0]))
			return Metrics{Runtime: runtimes[int(pt[0])] / 2}
		},
		PromoteFraction: 0.5,
		Workers:         1,
	}
	pts := make([]Point, len(runtimes))
	for i := range pts {
		pts[i] = Point{float64(i)}
	}
	out := mf.EvalAll(pts)
	want := PromoteTopFraction(runtimes, 0.5)
	if !reflect.DeepEqual(highCalls, want) {
		t.Fatalf("promoted %v, want PromoteTopFraction order %v", highCalls, want)
	}
	for i, m := range out {
		promoted := false
		for _, idx := range want {
			if idx == i {
				promoted = true
			}
		}
		if promoted == m.LowFidelity {
			t.Fatalf("candidate %d: promoted=%v but LowFidelity=%v", i, promoted, m.LowFidelity)
		}
	}
}

func TestFrontHypervolumes(t *testing.T) {
	obs := func(rt, ate float64) Observation {
		return Observation{M: Metrics{Runtime: rt, MaxATE: ate}}
	}
	fronts := [][]Observation{
		{obs(0.1, 0.01), obs(0.05, 0.02)}, // strong front
		{obs(0.4, 0.04)},                  // weak front
		nil,                               // empty (no feasible configs)
	}
	hv := FrontHypervolumes(fronts, RuntimeAccuracy)
	if len(hv) != 3 {
		t.Fatalf("got %d scores, want 3", len(hv))
	}
	if hv[2] != 0 {
		t.Fatalf("empty front scored %g, want 0", hv[2])
	}
	if !(hv[0] > hv[1] && hv[1] > 0) {
		t.Fatalf("competitiveness ordering wrong: %v", hv)
	}
	// Deterministic: same input, same scores.
	hv2 := FrontHypervolumes(fronts, RuntimeAccuracy)
	if !reflect.DeepEqual(hv, hv2) {
		t.Fatalf("scores not deterministic: %v vs %v", hv, hv2)
	}
	// All-empty input must not panic and scores all zero.
	for _, v := range FrontHypervolumes([][]Observation{nil, {}}, RuntimeAccuracy) {
		if v != 0 {
			t.Fatalf("all-empty fronts scored %g, want 0", v)
		}
	}
}

func TestMemoPreload(t *testing.T) {
	calls := 0
	memo := NewMemoEvaluator(func(pt Point) Metrics {
		calls++
		return Metrics{Runtime: pt[0] * 2}
	})
	memo.Preload([]Observation{
		{X: Point{1}, M: Metrics{Runtime: 2}},
		{X: Point{3}, M: Metrics{Runtime: 6}},
		{X: Point{4}, M: Metrics{Runtime: 999, LowFidelity: true}},
	})
	if got := memo.Evaluate(Point{1}); got.Runtime != 2 || calls != 0 {
		t.Fatalf("preloaded point re-evaluated: %+v, calls=%d", got, calls)
	}
	if got := memo.Evaluate(Point{3}); got.Runtime != 6 || calls != 0 {
		t.Fatalf("preloaded point re-evaluated: %+v, calls=%d", got, calls)
	}
	if got := memo.Evaluate(Point{2}); got.Runtime != 4 || calls != 1 {
		t.Fatalf("unknown point not evaluated: %+v, calls=%d", got, calls)
	}
	// The LowFidelity observation must NOT have been preloaded: probing
	// that point runs the real evaluator instead of replaying the
	// subsampled run's fake metrics.
	if got := memo.Evaluate(Point{4}); got.Runtime != 8 || calls != 2 {
		t.Fatalf("low-fidelity preload answered a full-fidelity probe: %+v, calls=%d", got, calls)
	}
	// First write wins: preloading an already-cached key changes nothing.
	memo.Preload([]Observation{{X: Point{2}, M: Metrics{Runtime: 99}}})
	if got := memo.Evaluate(Point{2}); got.Runtime != 4 {
		t.Fatalf("preload overwrote a cached entry: %+v", got)
	}
	if memo.Len() != 4 {
		t.Fatalf("cache has %d entries, want 4", memo.Len())
	}
}
