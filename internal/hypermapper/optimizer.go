package hypermapper

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"slamgo/internal/rf"
)

// Evaluator measures one configuration (runs the SLAM pipeline on the
// modelled device). It is the expensive black box the DSE minimises calls
// to. Optimize invokes it from multiple goroutines unless
// OptimizerConfig.Workers is 1, so it must be safe for concurrent calls
// (a pure function, or one whose shared state is read-only).
type Evaluator func(Point) Metrics

// OptimizerConfig controls the two-phase exploration of Figure 2:
// random sampling to seed the model, then active learning.
type OptimizerConfig struct {
	// RandomSamples seeds the surrogate (paper: "random sampling of the
	// space"). Latin hypercube is used for coverage.
	RandomSamples int
	// ActiveIterations is the number of model-guided rounds.
	ActiveIterations int
	// BatchPerIteration evaluates the top-B acquisition candidates per
	// round.
	BatchPerIteration int
	// CandidatePool is how many unevaluated candidates are scored by the
	// surrogate per round.
	CandidatePool int
	// Objectives defines the dominance space (default RuntimeAccuracy).
	Objectives Objectives
	// Forest configures the per-objective surrogate models.
	Forest rf.ForestConfig
	// ExplorationWeight trades predicted-dominance exploitation against
	// ensemble-uncertainty exploration in the acquisition score.
	ExplorationWeight float64
	// ConstraintObjective, together with ConstraintLimit, switches the
	// acquisition into the paper's constrained mode: minimise
	// objective 0 subject to objective[ConstraintObjective] ≤ limit
	// (e.g. runtime s.t. max ATE ≤ 0.05 m). Leave both at their zero
	// values for the unconstrained hypervolume mode. Setting
	// ConstraintLimit > 0 requires ConstraintObjective ≥ 1: objective 0
	// is always the minimisation target, so constraining it is
	// contradictory and Optimize rejects the combination rather than
	// silently falling back to hypervolume mode.
	ConstraintObjective int
	// ConstraintLimit is the feasibility bound for the constrained mode.
	ConstraintLimit float64
	// Seeder, when non-nil, replaces the default Latin-hypercube
	// seeding of the random phase (LHSSeeder — the nil value and an
	// explicit LHSSeeder{} are byte-identical). WarmStartSeeder
	// concentrates the budget around donor winners for transfer-learned
	// runs. Seeders must consume the shared rng stream
	// deterministically; see Seeder.
	Seeder Seeder
	// Prior, when non-nil, blends cross-run surrogate knowledge into
	// the acquisition scores: the prior's normalised predictions are
	// rescaled onto the local run's observed objective range and mixed
	// into the surrogate means with a weight that decays as local
	// observations accumulate. The prior shapes *where the optimizer
	// samples* only — observations, fronts and Best selection never see
	// donor data.
	Prior Prior
	// BatchEval, when non-nil, replaces the default ParallelEvaluator
	// around eval for every batch of real measurements — the hook the
	// multi-fidelity ladder plugs into. It must return metrics in input
	// order and be deterministic for any internal parallelism. When set,
	// the eval argument of Optimize may be nil.
	BatchEval BatchEvaluator
	// Workers bounds the parallelism of candidate evaluation, surrogate
	// fitting and pool scoring; 0 means GOMAXPROCS, 1 is fully serial.
	// The exploration is deterministic for any value: a fixed Seed yields
	// an identical Result whatever the worker count.
	Workers int
	// Seed drives every stochastic choice.
	Seed int64
	// Log, when non-nil, receives progress lines.
	Log func(string)
}

// constrained reports whether the constrained acquisition is active.
func (c OptimizerConfig) constrained() bool {
	return c.ConstraintLimit > 0 && c.ConstraintObjective > 0
}

// DefaultOptimizerConfig returns the configuration used by the bundled
// experiments.
func DefaultOptimizerConfig() OptimizerConfig {
	return OptimizerConfig{
		RandomSamples:     20,
		ActiveIterations:  6,
		BatchPerIteration: 5,
		CandidatePool:     2000,
		Objectives:        RuntimeAccuracy,
		Forest:            rf.DefaultForestConfig(),
		ExplorationWeight: 0.1,
		Seed:              1,
	}
}

// Result is the outcome of one DSE run.
type Result struct {
	// Observations holds every evaluated configuration in order.
	Observations []Observation
	// RandomPhase is the count of observations from the random phase
	// (Observations[:RandomPhase] were random, the rest active).
	RandomPhase int
	// Front is the final Pareto front.
	Front []Observation
}

// Optimize runs the full random + active-learning exploration.
//
// The candidate-scoring hot path is flat: each round's pool is sampled
// directly into a reused row-major matrix, deduplicated against the
// evaluated set via binary keys (no per-candidate strings), and scored
// through the surrogates' rf.FlatForest compilation with PredictBatch —
// so a round allocates a handful of buffers instead of tens of
// thousands of tree-walk temporaries.
func Optimize(space *Space, eval Evaluator, cfg OptimizerConfig) (*Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if eval == nil && cfg.BatchEval == nil {
		return nil, errors.New("hypermapper: nil evaluator")
	}
	if cfg.Objectives == nil {
		cfg.Objectives = RuntimeAccuracy
	}
	if cfg.RandomSamples < 2 {
		return nil, errors.New("hypermapper: need ≥2 random samples")
	}
	if cfg.ConstraintLimit > 0 && cfg.ConstraintObjective <= 0 {
		return nil, errors.New("hypermapper: ConstraintLimit is set but ConstraintObjective is 0 (the primary objective); constrained mode minimises objective 0 subject to a bound on another objective, so set ConstraintObjective ≥ 1")
	}
	objDims := len(cfg.Objectives(Metrics{}))
	if cfg.ConstraintLimit > 0 && cfg.ConstraintObjective >= objDims {
		return nil, fmt.Errorf("hypermapper: ConstraintObjective %d out of range for %d objectives", cfg.ConstraintObjective, objDims)
	}
	if cfg.BatchPerIteration < 1 {
		cfg.BatchPerIteration = 1
	}
	if cfg.CandidatePool < cfg.BatchPerIteration {
		cfg.CandidatePool = cfg.BatchPerIteration * 10
	}
	if cfg.Forest.Tree.MTry <= 0 {
		// DSE spaces are low-dimensional; full-feature splits make the
		// surrogate far stronger than the d/3 regression default.
		cfg.Forest.Tree.MTry = len(space.Params)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			cfg.Log(fmt.Sprintf(format, args...))
		}
	}

	res := &Result{}
	seen := map[string]bool{}
	var keyBuf []byte
	batch := cfg.BatchEval
	if batch == nil {
		batch = ParallelEvaluator{Eval: eval, Workers: cfg.Workers}
	}

	// --- Phase 1: seeded sampling (stratified random by default,
	// donor-concentrated for warm-started runs), evaluated concurrently.
	// Deduplication and observation order are fixed before any evaluation
	// starts, so the result is independent of the worker count.
	seeder := cfg.Seeder
	if seeder == nil {
		seeder = LHSSeeder{}
	}
	var seedPts []Point
	for _, pt := range seeder.SeedPoints(space, cfg.RandomSamples, rng) {
		keyBuf = AppendKey(keyBuf[:0], pt)
		if seen[string(keyBuf)] {
			continue
		}
		seen[string(keyBuf)] = true
		seedPts = append(seedPts, pt)
	}
	for i, m := range batch.EvalAll(seedPts) {
		res.Observations = append(res.Observations, Observation{X: seedPts[i], M: m})
	}
	res.RandomPhase = len(res.Observations)
	logf("random phase: %d evaluations", res.RandomPhase)

	// --- Phase 2: active learning over the flat scoring pipeline.
	d := len(space.Params)
	var (
		poolX  = make([]float64, cfg.CandidatePool*d)       // candidate matrix, reused
		meanB  = make([]float64, cfg.CandidatePool)         // per-objective batch means
		stdB   = make([]float64, cfg.CandidatePool)         // per-objective batch stds
		optBuf = make([]float64, cfg.CandidatePool*objDims) // optimistic estimates
		uncB   = make([]float64, cfg.CandidatePool)         // summed uncertainty
		used   = make([]bool, cfg.CandidatePool)
		scorer hv2DScorer

		priorB []float64 // prior predictions, reused (nil without a Prior)
	)
	if cfg.Prior != nil {
		priorB = make([]float64, cfg.CandidatePool)
	}
	for iter := 0; iter < cfg.ActiveIterations; iter++ {
		models, ok := fitSurrogates(res.Observations, cfg)
		if !ok {
			logf("iteration %d: not enough successful runs to fit surrogates", iter)
			break
		}
		front := ParetoFront(res.Observations, cfg.Objectives)
		ref := referencePoint(res.Observations, cfg.Objectives)

		// Candidate pool: half random, half mutations of front members
		// (HyperMapper similarly mixes global and local proposals), drawn
		// straight into rows of the reused matrix. Already-evaluated
		// configurations are dropped on the spot — the binary-key probe
		// against the seen set allocates nothing — and their row is
		// overwritten by the next draw.
		rows := 0
		tryRow := func() bool {
			row := poolX[rows*d : (rows+1)*d]
			keyBuf = AppendKey(keyBuf[:0], row)
			if seen[string(keyBuf)] {
				return false
			}
			rows++
			return true
		}
		for i := 0; i < cfg.CandidatePool/2; i++ {
			space.SampleInto(poolX[rows*d:(rows+1)*d], rng)
			tryRow()
		}
		if len(front) > 0 {
			for i := 0; i < cfg.CandidatePool-cfg.CandidatePool/2; i++ {
				row := poolX[rows*d : (rows+1)*d]
				copy(row, front[rng.Intn(len(front))].X)
				space.MutateInPlace(row, 1+rng.Intn(2), rng)
				tryRow()
			}
		}
		if rows == 0 {
			break
		}

		// Score the whole pool through the flat surrogates: one batched
		// prediction per objective over the matrix, fanned across the
		// worker pool. Rows are independent, so the scored pool is
		// identical for any worker count.
		mean, std, unc := meanB[:rows], stdB[:rows], uncB[:rows]
		priorW := 0.0
		if cfg.Prior != nil {
			priorW = cfg.Prior.Weight(len(res.Observations))
		}
		for j, ff := range models.flat {
			ff.PredictBatch(poolX[:rows*d], mean, std, cfg.Workers)
			if priorW > 0 {
				// The prior predicts on its own normalised [0,1] scale;
				// rescale onto the local run's observed range for this
				// objective before mixing, so it steers the landscape
				// without importing foreign magnitudes. Row-independent,
				// so determinism across worker counts is untouched.
				if lo, hi, ok := observedRange(res.Observations, cfg.Objectives, j); ok {
					cfg.Prior.PredictInto(j, poolX[:rows*d], priorB[:rows], cfg.Workers)
					for i := 0; i < rows; i++ {
						mean[i] = (1-priorW)*mean[i] + priorW*(lo+priorB[i]*(hi-lo))
					}
				}
			}
			for i := 0; i < rows; i++ {
				optBuf[i*objDims+j] = mean[i] - cfg.ExplorationWeight*std[i]
				if j == 0 {
					unc[i] = std[i]
				} else {
					unc[i] += std[i]
				}
			}
		}

		// Greedy hypervolume-conditioned batch: each pick is scored
		// against the front *plus the batch's previous optimistic picks*,
		// so one iteration spreads across the front instead of piling
		// into a single predicted-good corner. The whole batch is
		// selected first — on the surrogate's optimistic estimates and
		// the observations frozen at the start of the iteration — and
		// only then evaluated concurrently, which keeps the selection
		// (and therefore the full exploration trace) byte-identical for
		// any worker count.
		predFront := make([][]float64, 0, len(front)+cfg.BatchPerIteration)
		for _, fo := range front {
			predFront = append(predFront, cfg.Objectives(fo.M))
		}
		bestFeasible := math.Inf(1)
		if cfg.constrained() {
			bestFeasible = bestFeasibleObjective(res.Observations, cfg)
		}
		clear(used[:rows])
		var picks []Point
		for b := 0; b < cfg.BatchPerIteration; b++ {
			// Alternate exploitation (predicted hypervolume gain) with
			// pure exploration (maximum surrogate disagreement): the
			// surrogate is only trustworthy near evaluated points, so a
			// batch must also buy information in unexplored regions.
			explore := b%2 == 1
			useHV := !explore && !cfg.constrained() && objDims == 2 &&
				len(predFront) > 0 && ref != nil
			if useHV {
				scorer.Reset(predFront, ref)
			}
			bi := -1
			bestScore := math.Inf(-1)
			for i := 0; i < rows; i++ {
				if used[i] {
					continue
				}
				opt := optBuf[i*objDims : (i+1)*objDims]
				var s float64
				switch {
				case explore:
					s = unc[i]
				case cfg.constrained():
					s = constrainedAcquisition(opt, unc[i], bestFeasible, cfg)
				case useHV:
					s = scorer.Gain(opt[0], opt[1]) + 0.01*unc[i]
				default:
					s = acquisition(opt, unc[i], predFront, ref)
				}
				if s > bestScore {
					bestScore = s
					bi = i
				}
			}
			if bi < 0 {
				break
			}
			used[bi] = true
			pt := Point(poolX[bi*d : (bi+1)*d])
			keyBuf = AppendKey(keyBuf[:0], pt)
			if seen[string(keyBuf)] {
				continue
			}
			seen[string(keyBuf)] = true
			picks = append(picks, pt.Clone())
			predFront = append(predFront, optBuf[bi*objDims:(bi+1)*objDims])
		}
		for i, m := range batch.EvalAll(picks) {
			res.Observations = append(res.Observations, Observation{X: picks[i], M: m})
		}
		logf("active iteration %d: %d total evaluations", iter, len(res.Observations))
	}

	res.Front = ParetoFront(res.Observations, cfg.Objectives)
	return res, nil
}

// surrogate bundles one forest per objective dimension, both in pointer
// form (kept for training/introspection) and as the flat inference
// engine the candidate scorer runs on.
type surrogate struct {
	forests []*rf.Forest
	flat    []*rf.FlatForest
}

func fitSurrogates(obs []Observation, cfg OptimizerConfig) (*surrogate, bool) {
	var X [][]float64
	var ys [][]float64
	for _, o := range obs {
		if o.M.Failed {
			continue
		}
		objs := cfg.Objectives(o.M)
		if ys == nil {
			ys = make([][]float64, len(objs))
		}
		X = append(X, o.X)
		for i, v := range objs {
			ys[i] = append(ys[i], v)
		}
	}
	// Five successful observations is the floor below which a lone
	// surrogate is noise. A prior-backed run keeps going on as few as
	// two: the acquisition blends in the pooled donor landscape at a
	// weight that grows exactly as local evidence thins (Prior.Weight),
	// so a warm-started cell whose reduced seeding budget was eaten by
	// failures still gets its active-learning rounds instead of
	// silently returning a seeds-only front.
	minObs := 5
	if cfg.Prior != nil {
		minObs = 2
	}
	if len(X) < minObs {
		return nil, false
	}
	s := &surrogate{}
	for _, y := range ys {
		fcfg := cfg.Forest
		fcfg.Seed = cfg.Seed + int64(len(s.forests)) + 17
		fcfg.Workers = cfg.Workers
		f, err := rf.FitForest(X, y, fcfg)
		if err != nil {
			return nil, false
		}
		s.forests = append(s.forests, f)
		s.flat = append(s.flat, f.Flatten())
	}
	return s, true
}

// observedRange returns the span of objective dimension j over the
// non-failed observations (the same population the surrogates train
// on) — the local scale prior predictions are mapped onto. ok is false
// when the range is empty or degenerate, in which case the prior is
// skipped for the dimension this iteration.
func observedRange(obs []Observation, objectives Objectives, j int) (lo, hi float64, ok bool) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, o := range obs {
		if o.M.Failed {
			continue
		}
		v := objectives(o.M)[j]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, hi > lo
}

// referencePoint derives the hypervolume reference from the worst
// observed value per objective (scaled out slightly).
func referencePoint(obs []Observation, objectives Objectives) []float64 {
	var ref []float64
	for _, o := range obs {
		if o.M.Failed {
			continue
		}
		v := objectives(o.M)
		if ref == nil {
			ref = append([]float64(nil), v...)
			continue
		}
		for i := range v {
			if v[i] > ref[i] {
				ref[i] = v[i]
			}
		}
	}
	for i := range ref {
		ref[i] *= 1.1
	}
	return ref
}

// bestFeasibleObjective returns the best (lowest) primary objective
// among full-fidelity observations meeting the constraint — the
// improvement baseline of the constrained acquisition, computed once
// per iteration. Low-fidelity measurements are skipped: a subsampled
// run's fake-good runtime must not raise the bar real candidates are
// scored against.
func bestFeasibleObjective(obs []Observation, cfg OptimizerConfig) float64 {
	limit := cfg.ConstraintLimit
	ci := cfg.ConstraintObjective
	best := math.Inf(1)
	for _, o := range obs {
		if o.M.Failed || o.M.LowFidelity {
			continue
		}
		v := cfg.Objectives(o.M)
		if v[ci] <= limit && v[0] < best {
			best = v[0]
		}
	}
	return best
}

// constrainedAcquisition implements the paper's feasibility-constrained
// search: predicted improvement of the primary objective over the best
// currently feasible observation, for candidates predicted feasible;
// infeasible predictions are scored by how close they come to the bound.
func constrainedAcquisition(opt []float64, unc, bestFeasible float64, cfg OptimizerConfig) float64 {
	limit := cfg.ConstraintLimit
	ci := cfg.ConstraintObjective
	if opt[ci] <= limit {
		if math.IsInf(bestFeasible, 1) {
			// Nothing feasible yet: any predicted-feasible point is gold.
			return 1000 - opt[0] + 0.05*unc
		}
		return (bestFeasible - opt[0]) + 0.05*unc
	}
	// Predicted infeasible: mildly reward near-boundary exploration.
	return -(opt[ci] - limit) + 0.02*unc
}

// acquisition scores an optimistic objective estimate against the
// (predicted) front for ≥3 objectives by dominance counting, with a
// small uncertainty bonus. The 2-objective hypervolume-gain criterion
// lives in hv2DScorer, which the pick loop drives directly so the
// front is sorted once per pick instead of once per candidate.
func acquisition(opt []float64, unc float64, frontPts [][]float64, ref []float64) float64 {
	if len(frontPts) == 0 || ref == nil {
		return unc
	}
	if len(opt) == 2 {
		var s hv2DScorer
		s.Reset(frontPts, ref)
		return s.Gain(opt[0], opt[1]) + 0.01*unc
	}
	score := 0.0
	dominatedByAny := false
	for _, fv := range frontPts {
		if Dominates(opt, fv) {
			score += 1
		}
		if Dominates(fv, opt) {
			dominatedByAny = true
		}
	}
	if !dominatedByAny {
		score += 0.5
	}
	return score + 0.05*unc
}
