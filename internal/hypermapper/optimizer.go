package hypermapper

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"slamgo/internal/parallel"
	"slamgo/internal/rf"
)

// Evaluator measures one configuration (runs the SLAM pipeline on the
// modelled device). It is the expensive black box the DSE minimises calls
// to. Optimize invokes it from multiple goroutines unless
// OptimizerConfig.Workers is 1, so it must be safe for concurrent calls
// (a pure function, or one whose shared state is read-only).
type Evaluator func(Point) Metrics

// OptimizerConfig controls the two-phase exploration of Figure 2:
// random sampling to seed the model, then active learning.
type OptimizerConfig struct {
	// RandomSamples seeds the surrogate (paper: "random sampling of the
	// space"). Latin hypercube is used for coverage.
	RandomSamples int
	// ActiveIterations is the number of model-guided rounds.
	ActiveIterations int
	// BatchPerIteration evaluates the top-B acquisition candidates per
	// round.
	BatchPerIteration int
	// CandidatePool is how many unevaluated candidates are scored by the
	// surrogate per round.
	CandidatePool int
	// Objectives defines the dominance space (default RuntimeAccuracy).
	Objectives Objectives
	// Forest configures the per-objective surrogate models.
	Forest rf.ForestConfig
	// ExplorationWeight trades predicted-dominance exploitation against
	// ensemble-uncertainty exploration in the acquisition score.
	ExplorationWeight float64
	// ConstraintObjective, together with ConstraintLimit, switches the
	// acquisition into the paper's constrained mode: minimise
	// objective 0 subject to objective[ConstraintObjective] ≤ limit
	// (e.g. runtime s.t. max ATE ≤ 0.05 m). Leave both at their zero
	// values for the unconstrained hypervolume mode. Setting
	// ConstraintLimit > 0 requires ConstraintObjective ≥ 1: objective 0
	// is always the minimisation target, so constraining it is
	// contradictory and Optimize rejects the combination rather than
	// silently falling back to hypervolume mode.
	ConstraintObjective int
	// ConstraintLimit is the feasibility bound for the constrained mode.
	ConstraintLimit float64
	// Workers bounds the parallelism of candidate evaluation, surrogate
	// fitting and pool scoring; 0 means GOMAXPROCS, 1 is fully serial.
	// The exploration is deterministic for any value: a fixed Seed yields
	// an identical Result whatever the worker count.
	Workers int
	// Seed drives every stochastic choice.
	Seed int64
	// Log, when non-nil, receives progress lines.
	Log func(string)
}

// constrained reports whether the constrained acquisition is active.
func (c OptimizerConfig) constrained() bool {
	return c.ConstraintLimit > 0 && c.ConstraintObjective > 0
}

// DefaultOptimizerConfig returns the configuration used by the bundled
// experiments.
func DefaultOptimizerConfig() OptimizerConfig {
	return OptimizerConfig{
		RandomSamples:     20,
		ActiveIterations:  6,
		BatchPerIteration: 5,
		CandidatePool:     2000,
		Objectives:        RuntimeAccuracy,
		Forest:            rf.DefaultForestConfig(),
		ExplorationWeight: 0.1,
		Seed:              1,
	}
}

// Result is the outcome of one DSE run.
type Result struct {
	// Observations holds every evaluated configuration in order.
	Observations []Observation
	// RandomPhase is the count of observations from the random phase
	// (Observations[:RandomPhase] were random, the rest active).
	RandomPhase int
	// Front is the final Pareto front.
	Front []Observation
}

// Optimize runs the full random + active-learning exploration.
func Optimize(space *Space, eval Evaluator, cfg OptimizerConfig) (*Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if eval == nil {
		return nil, errors.New("hypermapper: nil evaluator")
	}
	if cfg.Objectives == nil {
		cfg.Objectives = RuntimeAccuracy
	}
	if cfg.RandomSamples < 2 {
		return nil, errors.New("hypermapper: need ≥2 random samples")
	}
	if cfg.ConstraintLimit > 0 && cfg.ConstraintObjective <= 0 {
		return nil, errors.New("hypermapper: ConstraintLimit is set but ConstraintObjective is 0 (the primary objective); constrained mode minimises objective 0 subject to a bound on another objective, so set ConstraintObjective ≥ 1")
	}
	if cfg.ConstraintLimit > 0 {
		if dims := len(cfg.Objectives(Metrics{})); cfg.ConstraintObjective >= dims {
			return nil, fmt.Errorf("hypermapper: ConstraintObjective %d out of range for %d objectives", cfg.ConstraintObjective, dims)
		}
	}
	if cfg.BatchPerIteration < 1 {
		cfg.BatchPerIteration = 1
	}
	if cfg.CandidatePool < cfg.BatchPerIteration {
		cfg.CandidatePool = cfg.BatchPerIteration * 10
	}
	if cfg.Forest.Tree.MTry <= 0 {
		// DSE spaces are low-dimensional; full-feature splits make the
		// surrogate far stronger than the d/3 regression default.
		cfg.Forest.Tree.MTry = len(space.Params)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			cfg.Log(fmt.Sprintf(format, args...))
		}
	}

	res := &Result{}
	seen := map[string]bool{}
	pe := ParallelEvaluator{Eval: eval, Workers: cfg.Workers}

	// --- Phase 1: stratified random sampling, evaluated concurrently.
	// Deduplication and observation order are fixed before any evaluation
	// starts, so the result is independent of the worker count.
	var seedPts []Point
	for _, pt := range space.LatinHypercube(cfg.RandomSamples, rng) {
		k := space.Key(pt)
		if seen[k] {
			continue
		}
		seen[k] = true
		seedPts = append(seedPts, pt)
	}
	for i, m := range pe.EvalAll(seedPts) {
		res.Observations = append(res.Observations, Observation{X: seedPts[i], M: m})
	}
	res.RandomPhase = len(res.Observations)
	logf("random phase: %d evaluations", res.RandomPhase)

	// --- Phase 2: active learning.
	for iter := 0; iter < cfg.ActiveIterations; iter++ {
		models, ok := fitSurrogates(res.Observations, cfg)
		if !ok {
			logf("iteration %d: not enough successful runs to fit surrogates", iter)
			break
		}
		front := ParetoFront(res.Observations, cfg.Objectives)
		ref := referencePoint(res.Observations, cfg.Objectives)

		// Candidate pool: half random, half mutations of front members
		// (HyperMapper similarly mixes global and local proposals).
		var candidates []Point
		for i := 0; i < cfg.CandidatePool/2; i++ {
			candidates = append(candidates, space.Sample(rng))
		}
		if len(front) > 0 {
			for i := 0; i < cfg.CandidatePool-cfg.CandidatePool/2; i++ {
				base := front[rng.Intn(len(front))].X
				candidates = append(candidates, space.Mutate(base, 1+rng.Intn(2), rng))
			}
		}

		// Predict every unseen candidate once, scoring the pool in
		// parallel chunks: predictions are pure forest lookups, so the
		// scored pool is identical for any worker count.
		var unseen []Point
		for _, c := range candidates {
			if seen[space.Key(c)] {
				continue
			}
			unseen = append(unseen, c)
		}
		type cand struct {
			pt   Point
			opt  []float64 // optimistic objective estimate
			unc  float64
			used bool
		}
		pool := parallel.MapOrdered(cfg.Workers, unseen, func(_ int, c Point) cand {
			opt, unc := predictOptimistic(c, models, cfg)
			return cand{pt: c, opt: opt, unc: unc}
		})
		if len(pool) == 0 {
			break
		}

		// Greedy hypervolume-conditioned batch: each pick is scored
		// against the front *plus the batch's previous optimistic picks*,
		// so one iteration spreads across the front instead of piling
		// into a single predicted-good corner. The whole batch is
		// selected first — on the surrogate's optimistic estimates and
		// the observations frozen at the start of the iteration — and
		// only then evaluated concurrently, which keeps the selection
		// (and therefore the full exploration trace) byte-identical for
		// any worker count.
		predFront := make([][]float64, 0, len(front)+cfg.BatchPerIteration)
		for _, fo := range front {
			predFront = append(predFront, cfg.Objectives(fo.M))
		}
		var picks []Point
		for b := 0; b < cfg.BatchPerIteration; b++ {
			bi := -1
			bestScore := math.Inf(-1)
			// Alternate exploitation (predicted hypervolume gain) with
			// pure exploration (maximum surrogate disagreement): the
			// surrogate is only trustworthy near evaluated points, so a
			// batch must also buy information in unexplored regions.
			explore := b%2 == 1
			for i := range pool {
				if pool[i].used {
					continue
				}
				var s float64
				switch {
				case explore:
					s = pool[i].unc
				case cfg.constrained():
					s = constrainedAcquisition(pool[i].opt, pool[i].unc, res.Observations, cfg)
				default:
					s = acquisition(pool[i].opt, pool[i].unc, predFront, ref)
				}
				if s > bestScore {
					bestScore = s
					bi = i
				}
			}
			if bi < 0 {
				break
			}
			pool[bi].used = true
			pt := pool[bi].pt
			k := space.Key(pt)
			if seen[k] {
				continue
			}
			seen[k] = true
			picks = append(picks, pt)
			predFront = append(predFront, pool[bi].opt)
		}
		for i, m := range pe.EvalAll(picks) {
			res.Observations = append(res.Observations, Observation{X: picks[i], M: m})
		}
		logf("active iteration %d: %d total evaluations", iter, len(res.Observations))
	}

	res.Front = ParetoFront(res.Observations, cfg.Objectives)
	return res, nil
}

// surrogate bundles one forest per objective dimension.
type surrogate struct {
	forests []*rf.Forest
}

func fitSurrogates(obs []Observation, cfg OptimizerConfig) (*surrogate, bool) {
	var X [][]float64
	var ys [][]float64
	for _, o := range obs {
		if o.M.Failed {
			continue
		}
		objs := cfg.Objectives(o.M)
		if ys == nil {
			ys = make([][]float64, len(objs))
		}
		X = append(X, o.X)
		for i, v := range objs {
			ys[i] = append(ys[i], v)
		}
	}
	if len(X) < 5 {
		return nil, false
	}
	s := &surrogate{}
	for _, y := range ys {
		fcfg := cfg.Forest
		fcfg.Seed = cfg.Seed + int64(len(s.forests)) + 17
		fcfg.Workers = cfg.Workers
		f, err := rf.FitForest(X, y, fcfg)
		if err != nil {
			return nil, false
		}
		s.forests = append(s.forests, f)
	}
	return s, true
}

// referencePoint derives the hypervolume reference from the worst
// observed value per objective (scaled out slightly).
func referencePoint(obs []Observation, objectives Objectives) []float64 {
	var ref []float64
	for _, o := range obs {
		if o.M.Failed {
			continue
		}
		v := objectives(o.M)
		if ref == nil {
			ref = append([]float64(nil), v...)
			continue
		}
		for i := range v {
			if v[i] > ref[i] {
				ref[i] = v[i]
			}
		}
	}
	for i := range ref {
		ref[i] *= 1.1
	}
	return ref
}

// constrainedAcquisition implements the paper's feasibility-constrained
// search: predicted improvement of the primary objective over the best
// currently feasible observation, for candidates predicted feasible;
// infeasible predictions are scored by how close they come to the bound.
func constrainedAcquisition(opt []float64, unc float64, obs []Observation, cfg OptimizerConfig) float64 {
	limit := cfg.ConstraintLimit
	ci := cfg.ConstraintObjective
	bestFeasible := math.Inf(1)
	for _, o := range obs {
		if o.M.Failed {
			continue
		}
		v := cfg.Objectives(o.M)
		if v[ci] <= limit && v[0] < bestFeasible {
			bestFeasible = v[0]
		}
	}
	if opt[ci] <= limit {
		if math.IsInf(bestFeasible, 1) {
			// Nothing feasible yet: any predicted-feasible point is gold.
			return 1000 - opt[0] + 0.05*unc
		}
		return (bestFeasible - opt[0]) + 0.05*unc
	}
	// Predicted infeasible: mildly reward near-boundary exploration.
	return -(opt[ci] - limit) + 0.02*unc
}

// predictOptimistic returns the surrogate's optimistic objective vector
// (mean − w·std per objective) and the summed uncertainty.
func predictOptimistic(pt Point, s *surrogate, cfg OptimizerConfig) ([]float64, float64) {
	opt := make([]float64, len(s.forests))
	var unc float64
	for i, f := range s.forests {
		m, std := f.PredictWithStd(pt)
		opt[i] = m - cfg.ExplorationWeight*std
		unc += std
	}
	return opt, unc
}

// acquisition scores an optimistic objective estimate by the hypervolume
// it would add to the (predicted) front — an EHVI-style criterion — with
// a small uncertainty bonus. For >2 objectives it falls back to
// dominance counting.
func acquisition(opt []float64, unc float64, frontPts [][]float64, ref []float64) float64 {
	if len(frontPts) == 0 || ref == nil {
		return unc
	}
	if len(opt) == 2 {
		base := hv2D(frontPts, ref)
		with := hv2D(append(frontPts, opt), ref)
		gain := with - base
		// Normalise against the reference box so the uncertainty bonus
		// stays on a comparable scale.
		box := ref[0] * ref[1]
		if box > 0 {
			gain /= box
		}
		return gain + 0.01*unc
	}
	score := 0.0
	dominatedByAny := false
	for _, fv := range frontPts {
		if Dominates(opt, fv) {
			score += 1
		}
		if Dominates(fv, opt) {
			dominatedByAny = true
		}
	}
	if !dominatedByAny {
		score += 0.5
	}
	return score + 0.05*unc
}
