package hypermapper

import "testing"

func rt(v float64) Metrics { return Metrics{Runtime: v, MaxATE: 0.01} }

func TestRobustBestPrefersWorstCaseRank(t *testing.T) {
	// Candidate 0 wins cell 0 outright but collapses in cell 1;
	// candidate 1 is second everywhere. Best-worst-case picks 1.
	perCandidate := [][]Metrics{
		{rt(0.10), rt(0.90)},
		{rt(0.20), rt(0.30)},
		{rt(0.30), rt(0.20)},
	}
	pick, ok := RobustBest(perCandidate, nil, func(m Metrics) float64 { return m.Runtime })
	if !ok {
		t.Fatal("no pick")
	}
	if pick.Index == 0 {
		t.Fatalf("per-cell winner chosen over robust candidate: %+v", pick)
	}
	if pick.WorstRank != 2 || !pick.FeasibleEverywhere {
		t.Fatalf("pick %+v, want worst rank 2 and feasible everywhere", pick)
	}
	// Candidates 1 and 2 tie on worst rank (2) and rank sum (3): the
	// lower index wins deterministically.
	if pick.Index != 1 {
		t.Fatalf("tie not broken by candidate index: %+v", pick)
	}
}

func TestRobustBestFeasibilityDominates(t *testing.T) {
	limit := AccuracyLimit(0.05)
	// Candidate 0 is fastest everywhere but infeasible in cell 1;
	// candidate 1 is slower yet feasible in both.
	perCandidate := [][]Metrics{
		{rt(0.10), {Runtime: 0.10, MaxATE: 0.50}},
		{rt(0.40), rt(0.40)},
	}
	pick, ok := RobustBest(perCandidate, limit, func(m Metrics) float64 { return m.Runtime })
	if !ok || pick.Index != 1 || !pick.FeasibleEverywhere {
		t.Fatalf("feasible-everywhere candidate lost: %+v ok=%v", pick, ok)
	}

	// Failed and low-fidelity measurements are infeasible even with a
	// nil constraint.
	perCandidate = [][]Metrics{
		{rt(0.10), {Runtime: 0.05, Failed: true}},
		{rt(0.40), {Runtime: 0.30, LowFidelity: true}},
		{rt(0.50), rt(0.50)},
	}
	pick, ok = RobustBest(perCandidate, nil, func(m Metrics) float64 { return m.Runtime })
	if !ok || pick.Index != 2 {
		t.Fatalf("only all-full-fidelity candidate should win: %+v", pick)
	}
}

func TestRobustBestNoFeasibleCandidate(t *testing.T) {
	limit := AccuracyLimit(0.05)
	// Nobody is feasible in cell 1; the pick minimises infeasible cells
	// and reports the shortfall.
	perCandidate := [][]Metrics{
		{{Runtime: 0.1, MaxATE: 0.9}, {Runtime: 0.1, MaxATE: 0.9}},
		{rt(0.2), {Runtime: 0.2, MaxATE: 0.9}},
	}
	pick, ok := RobustBest(perCandidate, limit, func(m Metrics) float64 { return m.Runtime })
	if !ok {
		t.Fatal("no pick returned")
	}
	if pick.Index != 1 || pick.FeasibleEverywhere {
		t.Fatalf("want least-infeasible candidate 1 with flag false: %+v", pick)
	}
}

func TestRobustBestTiesShareRank(t *testing.T) {
	// Equal runtimes share the lower rank, so candidate order cannot
	// leak into the ranks themselves.
	perCandidate := [][]Metrics{
		{rt(0.2)},
		{rt(0.2)},
		{rt(0.5)},
	}
	pick, ok := RobustBest(perCandidate, nil, func(m Metrics) float64 { return m.Runtime })
	if !ok || pick.Index != 0 || pick.WorstRank != 1 {
		t.Fatalf("tied candidates: %+v", pick)
	}
}

func TestRobustBestEmpty(t *testing.T) {
	if pick, ok := RobustBest(nil, nil, nil); ok || pick.Index != -1 {
		t.Fatalf("empty matrix: %+v ok=%v", pick, ok)
	}
}
