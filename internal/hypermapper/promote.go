package hypermapper

import (
	"math"
	"sort"
)

// This file is the shared promotion machinery of the two fidelity
// ladders: the batch-level ladder (MultiFidelity promotes candidates
// within one cell's exploration) and the campaign's cell-level ladder
// (whole scenario × device cells are promoted from a cheap screening
// exploration to a full-fidelity one). Both rank with PromoteTopFraction
// so they share a single deterministic tie-breaking rule.

// PromoteTopFraction selects the indices of the most promising entries
// of a scored batch: the ceil(fraction·len(scores)) entries with the
// lowest score (lower is better), ties broken by index so the selection
// is identical however the scoring pass was parallelised. At least one
// entry is always selected from a non-empty batch, and fraction values
// outside (0, 1] are treated as 1 of n / all of n respectively only
// through the ceil-and-clamp — callers apply their own defaults first.
// The returned indices are ordered best first.
func PromoteTopFraction(scores []float64, fraction float64) []int {
	n := len(scores)
	if n == 0 {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := scores[order[a]], scores[order[b]]
		if ra != rb {
			return ra < rb
		}
		return order[a] < order[b]
	})
	promote := int(math.Ceil(fraction * float64(n)))
	if promote < 1 {
		promote = 1
	}
	if promote > n {
		promote = n
	}
	return order[:promote]
}

// FrontHypervolumes scores a set of 2-objective Pareto fronts against
// one shared reference point: the componentwise maximum over every
// member of every front, inflated by 5% so boundary points still
// dominate area. The result is each front's dominated hypervolume
// (higher = more competitive); an empty front scores 0. This is the
// campaign engine's cell-competitiveness measure — cells whose screened
// fronts carve out the most area against the grid-wide reference are
// the ones worth full-fidelity exploration. The reference depends only
// on the front contents, so the scores are deterministic for any
// worker count.
func FrontHypervolumes(fronts [][]Observation, objectives Objectives) []float64 {
	out := make([]float64, len(fronts))
	var ref []float64
	for _, front := range fronts {
		for _, o := range front {
			v := objectives(o.M)
			if ref == nil {
				ref = append([]float64{}, v...)
				continue
			}
			for i := range v {
				if v[i] > ref[i] {
					ref[i] = v[i]
				}
			}
		}
	}
	if ref == nil {
		return out
	}
	for i := range ref {
		ref[i] = ref[i]*1.05 + 1e-12
	}
	for i, front := range fronts {
		out[i] = HypervolumeProxy(front, objectives, ref)
	}
	return out
}
