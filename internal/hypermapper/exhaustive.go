package hypermapper

import "fmt"

// Exhaustive enumerates every point of a fully discrete space (all
// parameters Ordinal or small Integer ranges). It exists to validate the
// optimizer against ground truth on toy spaces and to run brute-force
// sweeps when the space is small enough. An error is returned when the
// space is continuous or larger than maxPoints.
func Exhaustive(space *Space, maxPoints int) ([]Point, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if maxPoints <= 0 {
		maxPoints = 100000
	}
	domains := make([][]float64, len(space.Params))
	total := 1
	for i, p := range space.Params {
		switch p.Kind {
		case Ordinal:
			domains[i] = p.Choices
		case Integer:
			n := int(p.Max-p.Min) + 1
			vals := make([]float64, n)
			for k := 0; k < n; k++ {
				vals[k] = p.Min + float64(k)
			}
			domains[i] = vals
		default:
			return nil, fmt.Errorf("hypermapper: parameter %q is continuous; cannot enumerate", p.Name)
		}
		total *= len(domains[i])
		if total > maxPoints {
			return nil, fmt.Errorf("hypermapper: space has >%d points", maxPoints)
		}
	}
	out := make([]Point, 0, total)
	idx := make([]int, len(domains))
	for {
		pt := make(Point, len(domains))
		for d, k := range idx {
			pt[d] = domains[d][k]
		}
		out = append(out, pt)
		// Odometer increment.
		d := 0
		for d < len(idx) {
			idx[d]++
			if idx[d] < len(domains[d]) {
				break
			}
			idx[d] = 0
			d++
		}
		if d == len(idx) {
			break
		}
	}
	return out, nil
}
