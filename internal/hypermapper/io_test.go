package hypermapper

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestObservationsRoundtrip(t *testing.T) {
	s := testSpace()
	eval := syntheticEvaluator(s)
	rng := rand.New(rand.NewSource(2))
	var obs []Observation
	for _, pt := range s.SampleN(25, rng) {
		obs = append(obs, Observation{X: pt, M: eval(pt)})
	}
	obs[3].M.Failed = true

	var buf bytes.Buffer
	if err := WriteObservations(&buf, s, obs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadObservations(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(obs) {
		t.Fatalf("count %d vs %d", len(got), len(obs))
	}
	for i := range obs {
		for d := range obs[i].X {
			if got[i].X[d] != obs[i].X[d] {
				t.Fatalf("obs %d param %d: %v vs %v", i, d, got[i].X[d], obs[i].X[d])
			}
		}
		if got[i].M != obs[i].M {
			t.Fatalf("obs %d metrics: %+v vs %+v", i, got[i].M, obs[i].M)
		}
	}
}

func TestReadObservationsValidatesHeader(t *testing.T) {
	s := testSpace()
	bad := "a,b,c\n1,2,3\n"
	if _, err := ReadObservations(strings.NewReader(bad), s); err == nil {
		t.Fatal("bad header accepted")
	}
	// Right width, wrong names.
	cols := make([]string, len(s.Params)+5)
	for i := range cols {
		cols[i] = "x"
	}
	if _, err := ReadObservations(strings.NewReader(strings.Join(cols, ",")+"\n"), s); err == nil {
		t.Fatal("wrong names accepted")
	}
}

func TestReadObservationsRejectsGarbageValues(t *testing.T) {
	s := testSpace()
	var buf bytes.Buffer
	if err := WriteObservations(&buf, s, nil); err != nil {
		t.Fatal(err)
	}
	data := buf.String() + "1,2,0.1,5,not_a_number,0,0,0,0\n"
	if _, err := ReadObservations(strings.NewReader(data), s); err == nil {
		t.Fatal("garbage value accepted")
	}
}

func TestWriteObservationsValidatesWidth(t *testing.T) {
	s := testSpace()
	var buf bytes.Buffer
	bad := []Observation{{X: Point{1}}}
	if err := WriteObservations(&buf, s, bad); err == nil {
		t.Fatal("short point accepted")
	}
}
