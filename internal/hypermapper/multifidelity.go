package hypermapper

import (
	"math"
	"sync"

	"slamgo/internal/parallel"
)

// MultiFidelity is the evaluation ladder of the DSE engine: every
// candidate in a batch first runs on the cheap Low evaluator (typically
// the SLAM pipeline over a frame-subsampled sequence), and only the
// most promising fraction of the batch — ranked by Rank over the
// low-fidelity metrics — is promoted to the expensive High evaluator.
// Unpromoted candidates keep their low-fidelity metrics — marked
// Metrics.LowFidelity, so Pareto fronts, Best queries and the
// constrained-acquisition baseline exclude them — which is still
// enough signal for the surrogate to steer away from them; promoted
// ones get the full measurement the Pareto front is built from.
//
// EvalAll is deterministic for any Workers value: both fidelity passes
// run through parallel.MapOrdered, and the promotion ranking breaks
// ties by batch position.
type MultiFidelity struct {
	// Low is the cheap evaluator every candidate runs on.
	Low Evaluator
	// High is the full-fidelity evaluator promoted candidates run on.
	High Evaluator
	// PromoteFraction is the share of each batch promoted to High
	// (clamped to (0,1]; default 0.25). At least one candidate per
	// non-empty batch is always promoted.
	PromoteFraction float64
	// Rank scores low-fidelity metrics; lower is more promising. Nil
	// ranks by Runtime with failed runs last — override for
	// constraint-aware ladders.
	Rank func(Metrics) float64
	// Workers bounds the parallelism of both passes (0 = GOMAXPROCS).
	Workers int

	mu       sync.Mutex
	lowRuns  int
	highRuns int
}

// rankOf applies Rank or its default.
func (m *MultiFidelity) rankOf(mt Metrics) float64 {
	if m.Rank != nil {
		return m.Rank(mt)
	}
	if mt.Failed {
		return math.Inf(1)
	}
	return mt.Runtime
}

// EvalAll implements BatchEvaluator.
func (m *MultiFidelity) EvalAll(pts []Point) []Metrics {
	n := len(pts)
	if n == 0 {
		return nil
	}
	out := parallel.MapOrdered(m.Workers, pts, func(_ int, pt Point) Metrics {
		return m.Low(pt)
	})
	// Every rung-one measurement is marked low-fidelity; promotion
	// below overwrites the winners with full runs. The mark is what
	// keeps subsampled metrics out of Pareto fronts and best-config
	// queries while still feeding the surrogate.
	for i := range out {
		out[i].LowFidelity = true
	}

	// Rank the batch (each candidate scored once); PromoteTopFraction
	// resolves ties by batch position so the promoted set is identical
	// for any worker count.
	ranks := make([]float64, n)
	for i, mt := range out {
		ranks[i] = m.rankOf(mt)
	}
	f := m.PromoteFraction
	if f <= 0 || f > 1 {
		f = 0.25
	}
	chosen := PromoteTopFraction(ranks, f)
	promote := len(chosen)
	highPts := make([]Point, len(chosen))
	for i, idx := range chosen {
		highPts[i] = pts[idx]
	}
	highMs := parallel.MapOrdered(m.Workers, highPts, func(_ int, pt Point) Metrics {
		return m.High(pt)
	})
	for i, idx := range chosen {
		out[idx] = highMs[i]
	}

	m.mu.Lock()
	m.lowRuns += n
	m.highRuns += promote
	m.mu.Unlock()
	return out
}

// Stats reports how many low- and high-fidelity evaluations ran.
func (m *MultiFidelity) Stats() (low, high int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lowRuns, m.highRuns
}
