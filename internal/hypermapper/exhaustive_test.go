package hypermapper

import (
	"math"
	"testing"
)

func discreteSpace() *Space {
	return &Space{Params: []Parameter{
		{Name: "a", Kind: Ordinal, Choices: []float64{1, 2, 3}},
		{Name: "b", Kind: Integer, Min: 0, Max: 4},
		{Name: "c", Kind: Ordinal, Choices: []float64{10, 20}},
	}}
}

func TestExhaustiveEnumeratesAll(t *testing.T) {
	s := discreteSpace()
	pts, err := Exhaustive(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3*5*2 {
		t.Fatalf("points %d want 30", len(pts))
	}
	seen := map[string]bool{}
	for _, pt := range pts {
		k := s.Key(pt)
		if seen[k] {
			t.Fatalf("duplicate point %s", k)
		}
		seen[k] = true
	}
}

func TestExhaustiveRejectsContinuous(t *testing.T) {
	s := &Space{Params: []Parameter{{Name: "x", Kind: Real, Min: 0, Max: 1}}}
	if _, err := Exhaustive(s, 0); err == nil {
		t.Fatal("continuous space enumerated")
	}
}

func TestExhaustiveRespectsCap(t *testing.T) {
	if _, err := Exhaustive(discreteSpace(), 10); err == nil {
		t.Fatal("cap ignored")
	}
}

func TestOptimizerFindsNearExhaustiveOptimum(t *testing.T) {
	// Validation against brute force: on a fully discrete space, the
	// constrained optimizer's best feasible point must be within 25% of
	// the true optimum runtime.
	s := &Space{Params: []Parameter{
		{Name: "volume_resolution", Kind: Ordinal, Choices: []float64{64, 96, 128, 192, 256}},
		{Name: "compute_size_ratio", Kind: Ordinal, Choices: []float64{1, 2, 4, 8}},
		{Name: "icp_iters", Kind: Integer, Min: 1, Max: 10},
	}}
	eval := func(pt Point) Metrics {
		vr, csr, it := pt[0], pt[1], pt[2]
		return Metrics{
			Runtime: 1e-9*vr*vr*vr + 0.004*it/csr + 0.02/csr,
			MaxATE:  0.012 + 4.0/vr + 0.012*csr + 0.08/it,
			Power:   1,
		}
	}
	const limit = 0.09

	all, err := Exhaustive(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	trueBest := math.Inf(1)
	for _, pt := range all {
		m := eval(pt)
		if m.MaxATE <= limit && m.Runtime < trueBest {
			trueBest = m.Runtime
		}
	}

	cfg := DefaultOptimizerConfig()
	cfg.RandomSamples = 12
	cfg.ActiveIterations = 6
	cfg.BatchPerIteration = 4
	cfg.CandidatePool = 500
	cfg.ConstraintObjective = 1
	cfg.ConstraintLimit = limit
	cfg.Seed = 5
	res, err := Optimize(s, eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := math.Inf(1)
	for _, o := range res.Observations {
		if o.M.MaxATE <= limit && o.M.Runtime < found {
			found = o.M.Runtime
		}
	}
	if found > trueBest*1.25 {
		t.Fatalf("optimizer best %v vs exhaustive optimum %v", found, trueBest)
	}
}
