package hypermapper

import (
	"math"
	"math/rand"

	"slamgo/internal/rf"
)

// This file is the pluggable seeding/prior layer of the optimizer: how
// the random phase places its configurations (Seeder) and how knowledge
// from outside the run — donor observations of a correlated exploration,
// e.g. a neighbouring campaign cell — shapes the acquisition scores
// (Prior). Both are strictly advisory: donor knowledge informs *where to
// sample*, it never enters the run's Observations, Pareto front or Best
// selection, because metrics are workload- and device-specific.
//
// Determinism contract: a Seeder must be a pure function of (space, n,
// the rng stream) and a Prior's predictions a pure function of the
// donor observations it was built from, so an Optimize run stays
// bit-identical for any worker count and across processes that derive
// the same donors.

// Seeder generates the random-phase seed configurations of Optimize.
// Implementations must consume rng deterministically (same inputs, same
// stream, same points) and may return fewer distinct points than n —
// Optimize deduplicates before evaluating.
type Seeder interface {
	SeedPoints(space *Space, n int, rng *rand.Rand) []Point
}

// LHSSeeder is the default seeder: plain stratified Latin-hypercube
// coverage of the space, exactly the seeding Optimize always used —
// OptimizerConfig.Seeder == nil and LHSSeeder{} are byte-identical
// (golden-tested), so installing it explicitly is never a behaviour
// change.
type LHSSeeder struct{}

// SeedPoints implements Seeder.
func (LHSSeeder) SeedPoints(space *Space, n int, rng *rand.Rand) []Point {
	return space.LatinHypercube(n, rng)
}

// WarmStartSeeder concentrates part of the seeding budget around donor
// configurations — winners of correlated explorations (same scene on a
// different device, same device on a different scene) whose response
// surfaces overlap this run's. A Fraction of the budget is drawn from
// clamped neighbourhoods of the donors (cycling through them in order),
// the rest from a plain Latin hypercube so global coverage — and with
// it the ability to discover that the donors were wrong here — is never
// zero. With no donors it degrades to exactly LHSSeeder.
type WarmStartSeeder struct {
	// Donors are the borrowed configurations, most promising first
	// (fronts and best-feasible picks of donor runs). Order matters for
	// determinism: donors are cycled in slice order.
	Donors []Point
	// Fraction of the budget drawn near donors (default 0.5, clamped to
	// (0, 1]).
	Fraction float64
	// Radius is the neighbourhood width passed to
	// Space.SampleNeighborhoodInto (default 0.1).
	Radius float64
}

// SeedPoints implements Seeder: the ceil-rounded Fraction·n warm budget
// starts with the donor configurations themselves (snapped onto the
// space, in donor order — a donor's Pareto winner is the single
// strongest transfer hypothesis, so it is evaluated exactly, not just
// near), continues with clamped neighbourhood draws cycling through the
// donors, and the remaining budget is a global Latin hypercube. Exact
// copies are capped at half the warm budget even when more donors are
// available: a donor's front is measured on *its* cell, so past the
// top few entries a verbatim replay buys less than a perturbed draw
// that probes how the donor's region deforms on this cell.
func (s WarmStartSeeder) SeedPoints(space *Space, n int, rng *rand.Rand) []Point {
	if n <= 0 {
		return nil
	}
	if len(s.Donors) == 0 {
		return space.LatinHypercube(n, rng)
	}
	f := s.Fraction
	if f <= 0 || f > 1 {
		f = 0.5
	}
	r := s.Radius
	if r <= 0 {
		r = 0.1
	}
	k := int(math.Ceil(f * float64(n)))
	if k > n {
		k = n
	}
	exact := (k + 1) / 2
	if exact > len(s.Donors) {
		exact = len(s.Donors)
	}
	out := make([]Point, 0, n)
	for i := 0; i < k; i++ {
		pt := make(Point, len(space.Params))
		if i < exact {
			// Radius 0 snaps the donor onto the space exactly (off-grid
			// ordinals land on their nearest choice) while consuming the
			// same rng draws as a sampled point, so the donor count never
			// shifts the stream of the remaining draws.
			space.SampleNeighborhoodInto(pt, s.Donors[i], 0, rng)
		} else {
			space.SampleNeighborhoodInto(pt, s.Donors[i%len(s.Donors)], r, rng)
		}
		out = append(out, pt)
	}
	return append(out, space.LatinHypercube(n-k, rng)...)
}

// Prior supplies cross-run surrogate knowledge to the acquisition
// scorer. Predictions are normalised to the donor runs' own objective
// ranges ([0, 1] per dimension) because absolute metrics do not
// transfer across workloads or devices; Optimize rescales them onto the
// local run's observed range before blending, so the prior contributes
// landscape shape, never foreign magnitudes.
type Prior interface {
	// PredictInto fills out[:rows] with the prior's normalised mean
	// prediction for objective dimension obj over the row-major matrix
	// X (rows = len(out)). Must be deterministic for any workers value.
	PredictInto(obj int, X []float64, out []float64, workers int)
	// Weight returns the blend weight in [0, 1] given how many
	// observations the local run has accumulated; implementations
	// should decay it so local evidence overrides the prior.
	Weight(localObs int) float64
}

// PriorConfig parameterises NewForestPrior.
type PriorConfig struct {
	// Forest configures the pooled surrogate (zero value: DefaultForestConfig).
	Forest rf.ForestConfig
	// Seed drives the forest fits (one derived seed per objective).
	Seed int64
	// Workers bounds fit parallelism (predictions are deterministic for
	// any value).
	Workers int
	// MaxWeight caps the blend weight (default 0.4): even a
	// donor-saturated prior never outvotes the local surrogate.
	MaxWeight float64
}

// ForestPrior pools donor observations into one rf.FlatForest per
// objective dimension, normalising each donor set's objectives to
// [0, 1] before pooling so cells with different absolute scales (a
// phone and a desktop GPU) contribute comparable landscapes. Failed and
// LowFidelity donor observations are excluded at construction — a
// subsampled run's fake-good metrics must never shape a prior (see the
// fullDonorObservations regression tests).
type ForestPrior struct {
	flat      []*rf.FlatForest
	strength  float64 // pooled donor observation count
	maxWeight float64
	scratch   []float64 // std buffer PredictBatch requires; serial use only
}

// NewForestPrior fits the pooled prior. donorSets holds one slice of
// observations per donor run (normalisation is per set). ok is false
// when fewer than 5 usable full-fidelity observations survive filtering
// — too few to fit a forest worth blending.
func NewForestPrior(donorSets [][]Observation, objectives Objectives, cfg PriorConfig) (*ForestPrior, bool) {
	if cfg.Forest.Trees == 0 {
		cfg.Forest = rf.DefaultForestConfig()
	}
	if cfg.MaxWeight <= 0 || cfg.MaxWeight > 1 {
		cfg.MaxWeight = 0.4
	}
	dims := len(objectives(Metrics{}))
	var X [][]float64
	ys := make([][]float64, dims)
	for _, set := range donorSets {
		usable := FullObservations(set)
		if len(usable) == 0 {
			continue
		}
		// Per-set min-max normalisation of every objective dimension.
		lo := make([]float64, dims)
		hi := make([]float64, dims)
		for j := range lo {
			lo[j], hi[j] = math.Inf(1), math.Inf(-1)
		}
		for _, o := range usable {
			for j, v := range objectives(o.M) {
				if v < lo[j] {
					lo[j] = v
				}
				if v > hi[j] {
					hi[j] = v
				}
			}
		}
		for _, o := range usable {
			X = append(X, o.X)
			for j, v := range objectives(o.M) {
				if hi[j] > lo[j] {
					v = (v - lo[j]) / (hi[j] - lo[j])
				} else {
					v = 0.5 // a flat donor set carries no gradient
				}
				ys[j] = append(ys[j], v)
			}
		}
	}
	if len(X) < 5 {
		return nil, false
	}
	p := &ForestPrior{strength: float64(len(X)), maxWeight: cfg.MaxWeight}
	for j, y := range ys {
		fc := cfg.Forest
		fc.Seed = cfg.Seed + int64(j) + 43
		fc.Workers = cfg.Workers
		if fc.Tree.MTry <= 0 {
			fc.Tree.MTry = len(X[0])
		}
		f, err := rf.FitForest(X, y, fc)
		if err != nil {
			return nil, false
		}
		p.flat = append(p.flat, f.Flatten())
	}
	return p, true
}

// PredictInto implements Prior.
func (p *ForestPrior) PredictInto(obj int, X []float64, out []float64, workers int) {
	if cap(p.scratch) < len(out) {
		p.scratch = make([]float64, len(out))
	}
	p.flat[obj].PredictBatch(X, out, p.scratch[:len(out)], workers)
}

// Weight implements Prior: MaxWeight · strength/(strength + n), so the
// prior dominates early (when the local surrogate has almost nothing to
// stand on) and fades as local observations accumulate.
func (p *ForestPrior) Weight(localObs int) float64 {
	if localObs < 0 {
		localObs = 0
	}
	return p.maxWeight * p.strength / (p.strength + float64(localObs))
}

// FullObservations filters observations down to the full-fidelity,
// non-failed ones — the only observations allowed to seed a prior, act
// as warm-start donors, or preload a full-fidelity memo. Centralised so
// every borrower path applies the same rule (the promote path's
// cross-measure preload included).
func FullObservations(obs []Observation) []Observation {
	out := make([]Observation, 0, len(obs))
	for _, o := range obs {
		if !o.M.Failed && !o.M.LowFidelity {
			out = append(out, o)
		}
	}
	return out
}
