package hypermapper

import (
	"bytes"
	"math"
	"testing"
)

// AppendKey is now an on-disk cache key (internal/evalstore persists
// records across processes and campaigns under it), so its encoding is
// a compatibility surface: it must never collide for distinct
// configurations and never drift for equal ones.

func TestAppendKeyNegativeZeroCanonical(t *testing.T) {
	// -0 == +0, and an evaluator cannot distinguish them, so the two
	// bit patterns must share one persistent key.
	pos := AppendKey(nil, Point{0.0, 1.5})
	neg := AppendKey(nil, Point{math.Copysign(0, -1), 1.5})
	if !bytes.Equal(pos, neg) {
		t.Fatalf("+0 and -0 encode differently: %x vs %x", pos, neg)
	}
	// But -0 stays distinct from everything that is not zero.
	if bytes.Equal(pos, AppendKey(nil, Point{math.SmallestNonzeroFloat64, 1.5})) {
		t.Fatalf("zero collided with a denormal")
	}
}

func TestAppendKeyDistinguishesNearbyValues(t *testing.T) {
	// One-ulp neighbours, ordinal choice values that round-trip through
	// float64 literals, and sign flips must all stay distinct.
	a, b := 0.1, 0.2 // runtime addition: 0.30000000000000004, one ulp off 0.3
	pairs := [][2]Point{
		{{0.3}, {a + b}},
		{{1e-6}, {math.Nextafter(1e-6, 1)}},
		{{0.025}, {0.05}},
		{{2}, {-2}},
	}
	for _, p := range pairs {
		if bytes.Equal(AppendKey(nil, p[0]), AppendKey(nil, p[1])) {
			t.Fatalf("%v and %v collided", p[0], p[1])
		}
	}
}

func TestAppendKeyOrdinalChoicesRoundTrip(t *testing.T) {
	// The DSE space's ordinal choice values (volume resolutions, mu
	// distances, ICP thresholds, ...) must each map to one stable key:
	// encoding the same choice twice — or after a copy through a
	// Point slice, as the optimizer does — yields identical bytes.
	choices := []float64{64, 96, 128, 192, 256, 1, 2, 4, 8,
		0.025, 0.05, 0.1, 0.2, 0.3, 1e-6, 1e-5, 1e-4, 1e-3}
	seen := map[string]float64{}
	for _, c := range choices {
		k := string(AppendKey(nil, Point{c}))
		if prev, dup := seen[k]; dup && prev != c {
			t.Fatalf("choices %v and %v share a key", prev, c)
		}
		seen[k] = c
		copied := append(Point(nil), Point{c}...)
		if k != string(AppendKey(nil, copied)) {
			t.Fatalf("choice %v drifted through a copy", c)
		}
	}
}

func TestAppendKeyPrefixFreeAcrossLengths(t *testing.T) {
	// The encoding is exactly 8 bytes per coordinate, so a shorter
	// point's key is a strict prefix of — but never equal to — an
	// extension's key: points of different lengths cannot collide, and
	// a store that hashes the whole buffer keeps them distinct.
	short := AppendKey(nil, Point{1, 2})
	long := AppendKey(nil, Point{1, 2, 0})
	if bytes.Equal(short, long) {
		t.Fatalf("points of different lengths encoded identically")
	}
	if !bytes.Equal(short, long[:len(short)]) {
		t.Fatalf("encoding is not positional (prefix mismatch)")
	}
	if len(short) != 16 || len(long) != 24 {
		t.Fatalf("encoding width drifted: %d/%d bytes", len(short), len(long))
	}
}

func TestKeyablePointRejectsNaN(t *testing.T) {
	if KeyablePoint(Point{1, math.NaN(), 3}) {
		t.Fatalf("NaN coordinate accepted as persistable key material")
	}
	if !KeyablePoint(Point{1, math.Inf(1), math.Copysign(0, -1)}) {
		t.Fatalf("non-NaN specials rejected (Inf and -0 have canonical encodings)")
	}
	if !KeyablePoint(Point{}) {
		t.Fatalf("empty point rejected")
	}
}

// fakeTier records delegations and serves a fixed answer without
// calling the simulator — standing in for the persistent store.
type fakeTier struct {
	calls int
	serve *Metrics // nil: run the simulator
}

func (f *fakeTier) Evaluate(pt Point, simulate Evaluator) Metrics {
	f.calls++
	if f.serve != nil {
		return *f.serve
	}
	return simulate(pt)
}

func TestTieredMemoDelegatesOnlyOnMemoryMiss(t *testing.T) {
	tier := &fakeTier{serve: &Metrics{Runtime: 7}}
	sims := 0
	memo := NewTieredMemoEvaluator(func(Point) Metrics {
		sims++
		return Metrics{Runtime: 1}
	}, tier)
	pt := Point{1, 2}
	if m := memo.Evaluate(pt); m.Runtime != 7 {
		t.Fatalf("tier's answer not used: %+v", m)
	}
	memo.Evaluate(pt)
	memo.Evaluate(pt)
	if tier.calls != 1 {
		t.Fatalf("tier consulted %d times, want 1 (memory layer should absorb repeats)", tier.calls)
	}
	if sims != 0 {
		t.Fatalf("simulator ran %d times behind a serving tier", sims)
	}
	if h, m := memo.Stats(); h != 2 || m != 1 {
		t.Fatalf("stats = %d/%d", h, m)
	}
}

func TestTieredMemoNilTierBehavesLikePlainMemo(t *testing.T) {
	sims := 0
	memo := NewTieredMemoEvaluator(func(Point) Metrics {
		sims++
		return Metrics{Runtime: 1}
	}, nil)
	memo.Evaluate(Point{1})
	memo.Evaluate(Point{1})
	if sims != 1 {
		t.Fatalf("sims = %d", sims)
	}
}
