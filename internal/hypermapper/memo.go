package hypermapper

import "sync"

// MemoEvaluator wraps an Evaluator with a content-addressed result
// cache: the key is the exact binary encoding of the point (AppendKey),
// so a configuration that was already simulated — in an earlier
// optimizer phase, the random-only baseline, a headline re-measurement,
// or a previous batch — returns its Metrics without touching the
// pipeline again. The wrapped evaluator must be pure (same point, same
// metrics); under that contract memoisation never changes results, only
// removes repeated work.
//
// MemoEvaluator is safe for concurrent use, and concurrent misses on
// the same key are coalesced: the first goroutine runs the wrapped
// evaluator while later arrivals block on the in-flight call and share
// its result, so a full pipeline simulation is never duplicated even
// when a ParallelEvaluator fans the same configuration out twice.
type MemoEvaluator struct {
	eval Evaluator
	tier ResultTier

	mu       sync.Mutex
	cache    map[string]Metrics
	inflight map[string]*memoCall
	hits     int
	misses   int
}

// ResultTier is an optional persistent layer behind a MemoEvaluator: on
// an in-memory miss the memo delegates to the tier, which may answer
// from durable storage or run the supplied evaluator (publishing the
// result for other processes) — either way the memo caches what comes
// back. The tier inherits the memo's purity contract: for a given point
// it must return exactly what simulate would. internal/evalstore
// implements this with a content-addressed fault-tolerant disk store.
type ResultTier interface {
	Evaluate(pt Point, simulate Evaluator) Metrics
}

// memoCall is one in-flight evaluation; done closes once m is valid.
type memoCall struct {
	done chan struct{}
	m    Metrics
}

// NewMemoEvaluator wraps eval with an empty cache.
func NewMemoEvaluator(eval Evaluator) *MemoEvaluator {
	return &MemoEvaluator{
		eval:     eval,
		cache:    map[string]Metrics{},
		inflight: map[string]*memoCall{},
	}
}

// NewTieredMemoEvaluator wraps eval with an empty cache backed by a
// persistent tier: in-memory misses go through tier instead of calling
// eval directly, so results computed by earlier runs or cooperating
// processes are reused instead of re-simulated. A nil tier behaves
// exactly like NewMemoEvaluator.
func NewTieredMemoEvaluator(eval Evaluator, tier ResultTier) *MemoEvaluator {
	m := NewMemoEvaluator(eval)
	m.tier = tier
	return m
}

// Evaluate is an Evaluator (use the method value m.Evaluate): it returns
// the cached metrics for pt, running the wrapped evaluator only on the
// first sighting of a configuration. Goroutines that arrive while that
// first run is still in flight wait for it instead of re-running it.
func (m *MemoEvaluator) Evaluate(pt Point) Metrics {
	key := AppendKey(make([]byte, 0, 8*len(pt)), pt)
	m.mu.Lock()
	if v, ok := m.cache[string(key)]; ok {
		m.hits++
		m.mu.Unlock()
		return v
	}
	if c, ok := m.inflight[string(key)]; ok {
		// Coalesce onto the in-flight run: no new evaluator invocation,
		// so this counts as a hit.
		m.hits++
		m.mu.Unlock()
		<-c.done
		return c.m
	}
	c := &memoCall{done: make(chan struct{})}
	ks := string(key)
	m.inflight[ks] = c
	m.misses++
	m.mu.Unlock()

	if m.tier != nil {
		c.m = m.tier.Evaluate(pt, m.eval)
	} else {
		c.m = m.eval(pt)
	}

	m.mu.Lock()
	m.cache[ks] = c.m
	delete(m.inflight, ks)
	m.mu.Unlock()
	close(c.done)
	return c.m
}

// Preload seeds the cache from prior observations — the resume path of
// checkpointed campaigns: a cell whose exploration artifact was loaded
// from disk hands its observations to the cross-measurement memo, so
// re-measuring one of those configurations costs a map probe instead of
// a pipeline simulation. Entries already cached win over preloaded ones
// (first write wins, matching Evaluate), and preloading counts as
// neither hit nor miss. The purity contract extends to preloaded
// metrics: they must be exactly what the wrapped evaluator would return
// for that point, which holds for artifacts of a deterministic
// exploration reloaded under the same options.
//
// LowFidelity observations are skipped unconditionally: the memo's
// callers treat cached metrics as full-fidelity answers, and a
// subsampled run's fake-good metrics answering a full-fidelity probe
// would silently corrupt cross-measurements. The filter lives here —
// not only on the (audited) callers — so no future preload path can
// reintroduce the leak.
func (m *MemoEvaluator) Preload(obs []Observation) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, o := range obs {
		if o.M.LowFidelity {
			continue
		}
		key := string(AppendKey(make([]byte, 0, 8*len(o.X)), o.X))
		if _, ok := m.cache[key]; !ok {
			m.cache[key] = o.M
		}
	}
}

// Stats reports cache hits (including calls coalesced onto an in-flight
// evaluation) and true misses — the number of times the memo had to go
// below its memory layer. Without a persistent tier a miss is exactly
// one run of the wrapped evaluator; with one, the tier's own stats
// split misses into disk hits and actual simulations.
func (m *MemoEvaluator) Stats() (hits, misses int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}

// Len returns the number of distinct configurations cached.
func (m *MemoEvaluator) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.cache)
}
