package hypermapper

import "sync"

// MemoEvaluator wraps an Evaluator with a content-addressed result
// cache: the key is the exact binary encoding of the point (AppendKey),
// so a configuration that was already simulated — in an earlier
// optimizer phase, the random-only baseline, a headline re-measurement,
// or a previous batch — returns its Metrics without touching the
// pipeline again. The wrapped evaluator must be pure (same point, same
// metrics); under that contract memoisation never changes results, only
// removes repeated work.
//
// MemoEvaluator is safe for concurrent use. Two goroutines that miss on
// the same key simultaneously may both run the evaluator; purity makes
// the duplicate harmless and the first result wins the cache slot.
type MemoEvaluator struct {
	eval Evaluator

	mu     sync.Mutex
	cache  map[string]Metrics
	hits   int
	misses int
}

// NewMemoEvaluator wraps eval with an empty cache.
func NewMemoEvaluator(eval Evaluator) *MemoEvaluator {
	return &MemoEvaluator{eval: eval, cache: map[string]Metrics{}}
}

// Evaluate is an Evaluator (use the method value m.Evaluate): it returns
// the cached metrics for pt, running the wrapped evaluator only on the
// first sighting of a configuration.
func (m *MemoEvaluator) Evaluate(pt Point) Metrics {
	key := AppendKey(make([]byte, 0, 8*len(pt)), pt)
	m.mu.Lock()
	if v, ok := m.cache[string(key)]; ok {
		m.hits++
		m.mu.Unlock()
		return v
	}
	m.mu.Unlock()

	v := m.eval(pt)

	m.mu.Lock()
	if _, ok := m.cache[string(key)]; !ok {
		m.cache[string(key)] = v
	}
	m.misses++
	m.mu.Unlock()
	return v
}

// Stats reports cache hits and evaluator invocations so far.
func (m *MemoEvaluator) Stats() (hits, misses int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}

// Len returns the number of distinct configurations cached.
func (m *MemoEvaluator) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.cache)
}
