package hypermapper

import (
	"math"
	"math/rand"
	"testing"
)

func testSpace() *Space {
	return &Space{Params: []Parameter{
		{Name: "volume_resolution", Kind: Ordinal, Choices: []float64{64, 96, 128, 192, 256}},
		{Name: "compute_size_ratio", Kind: Ordinal, Choices: []float64{1, 2, 4, 8}},
		{Name: "mu", Kind: Real, Min: 0.01, Max: 0.3},
		{Name: "icp_iters", Kind: Integer, Min: 1, Max: 20},
	}}
}

// TestSampleNeighborhoodEdgeCases covers the degenerate domains the
// warm-start seeder can hand to concentrated sampling: 1-point spaces
// (a single ordinal choice, collapsed integer and real ranges), centres
// sitting on domain boundaries, and ordinal axes, whose samples must
// round-trip to exact choice-list members.
func TestSampleNeighborhoodEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))

	// 1-point domains: every draw is the single member.
	one := &Space{Params: []Parameter{
		{Name: "o", Kind: Ordinal, Choices: []float64{128}},
		{Name: "i", Kind: Integer, Min: 3, Max: 3},
		{Name: "r", Kind: Real, Min: 0.5, Max: 0.5},
	}}
	if err := one.Validate(); err != nil {
		t.Fatal(err)
	}
	dst := make(Point, 3)
	for k := 0; k < 50; k++ {
		one.SampleNeighborhoodInto(dst, Point{128, 3, 0.5}, 0.5, rng)
		if dst[0] != 128 || dst[1] != 3 || dst[2] != 0.5 {
			t.Fatalf("1-point space sampled %v", dst)
		}
	}

	// Boundary centres with a huge radius: draws clamp into the domain.
	s := testSpace()
	lo := make(Point, len(s.Params))
	hi := make(Point, len(s.Params))
	for d, p := range s.Params {
		if p.Kind == Ordinal {
			lo[d], hi[d] = p.Choices[0], p.Choices[len(p.Choices)-1]
		} else {
			lo[d], hi[d] = p.Min, p.Max
		}
	}
	dst = make(Point, len(s.Params))
	for _, center := range []Point{lo, hi} {
		for k := 0; k < 200; k++ {
			s.SampleNeighborhoodInto(dst, center, 2.0, rng)
			for d, p := range s.Params {
				switch p.Kind {
				case Ordinal:
					found := false
					for _, c := range p.Choices {
						if dst[d] == c {
							found = true
						}
					}
					if !found {
						t.Fatalf("ordinal %s sampled %g, not a choice member", p.Name, dst[d])
					}
				default:
					if dst[d] < p.Min || dst[d] > p.Max {
						t.Fatalf("%s sampled %g outside [%g, %g]", p.Name, dst[d], p.Min, p.Max)
					}
				}
				if p.Kind == Integer && dst[d] != math.Round(dst[d]) {
					t.Fatalf("integer %s sampled non-integer %g", p.Name, dst[d])
				}
			}
		}
	}

	// An off-grid ordinal centre (e.g. a donor recorded before a choice
	// list changed) snaps to its nearest member rather than escaping
	// the domain.
	dst = make(Point, len(s.Params))
	for k := 0; k < 50; k++ {
		s.SampleNeighborhoodInto(dst, Point{100, 3, 0.15, 10.4}, 0.0, rng)
		if dst[0] != 96 {
			t.Fatalf("off-grid ordinal centre 100 sampled %g at radius 0, want nearest choice 96", dst[0])
		}
	}

	// The rng stream advances exactly one draw per parameter whatever
	// the kind: two spaces with different kinds but equal length stay
	// stream-aligned.
	a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	s.SampleNeighborhoodInto(dst, lo, 0.1, a)
	for i := 0; i < len(s.Params); i++ {
		b.NormFloat64()
	}
	if a.Int63() != b.Int63() {
		t.Fatal("SampleNeighborhoodInto consumed a non-uniform rng stream")
	}
}

func TestSpaceValidate(t *testing.T) {
	if err := testSpace().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Space{}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty space accepted")
	}
	dup := testSpace()
	dup.Params = append(dup.Params, dup.Params[0])
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate names accepted")
	}
	unsorted := &Space{Params: []Parameter{
		{Name: "x", Kind: Ordinal, Choices: []float64{2, 1}},
	}}
	if err := unsorted.Validate(); err == nil {
		t.Fatal("unsorted ordinal accepted")
	}
	empty := &Space{Params: []Parameter{{Name: "x", Kind: Ordinal}}}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty ordinal accepted")
	}
	inv := &Space{Params: []Parameter{{Name: "x", Kind: Real, Min: 2, Max: 1}}}
	if err := inv.Validate(); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestSampleInDomain(t *testing.T) {
	s := testSpace()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		pt := s.Sample(rng)
		checkInDomain(t, s, pt)
	}
}

func checkInDomain(t *testing.T, s *Space, pt Point) {
	t.Helper()
	if len(pt) != len(s.Params) {
		t.Fatalf("point dims %d", len(pt))
	}
	for d, p := range s.Params {
		v := pt[d]
		switch p.Kind {
		case Ordinal:
			found := false
			for _, c := range p.Choices {
				if c == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s=%v not a choice", p.Name, v)
			}
		case Integer:
			if v != float64(int(v)) || v < p.Min || v > p.Max {
				t.Fatalf("%s=%v not integer in range", p.Name, v)
			}
		default:
			if v < p.Min || v > p.Max {
				t.Fatalf("%s=%v out of range", p.Name, v)
			}
		}
	}
}

func TestLatinHypercubeCoverage(t *testing.T) {
	s := testSpace()
	rng := rand.New(rand.NewSource(2))
	pts := s.LatinHypercube(40, rng)
	if len(pts) != 40 {
		t.Fatalf("n = %d", len(pts))
	}
	for _, pt := range pts {
		checkInDomain(t, s, pt)
	}
	// Every ordinal choice of the first parameter must appear at least
	// once in 40 stratified samples over 5 choices.
	seen := map[float64]bool{}
	for _, pt := range pts {
		seen[pt[0]] = true
	}
	if len(seen) != 5 {
		t.Fatalf("LHS covered %d/5 volume resolutions", len(seen))
	}
	if s.LatinHypercube(0, rng) != nil {
		t.Fatal("n=0 should be nil")
	}
}

func TestNearestAndMutate(t *testing.T) {
	s := testSpace()
	p0 := s.Params[0]
	if got := p0.Nearest(100); got != 96 {
		t.Fatalf("nearest(100) = %v", got)
	}
	if got := p0.Nearest(1000); got != 256 {
		t.Fatalf("nearest(1000) = %v", got)
	}
	pr := s.Params[2]
	if got := pr.Nearest(-5); got != 0.01 {
		t.Fatalf("real clamp %v", got)
	}
	pi := s.Params[3]
	if got := pi.Nearest(7.6); got != 8 {
		t.Fatalf("integer round %v", got)
	}

	rng := rand.New(rand.NewSource(3))
	pt := s.Sample(rng)
	for i := 0; i < 200; i++ {
		m := s.Mutate(pt, 2, rng)
		checkInDomain(t, s, m)
	}
	// Ordinal mutation moves at most one position.
	for i := 0; i < 100; i++ {
		v := p0.Mutate(128, rng)
		if v != 96 && v != 128 && v != 192 {
			t.Fatalf("ordinal mutate jumped to %v", v)
		}
	}
}

func TestIndexAndNames(t *testing.T) {
	s := testSpace()
	if s.Index("mu") != 2 {
		t.Fatalf("Index(mu) = %d", s.Index("mu"))
	}
	if s.Index("nope") != -1 {
		t.Fatal("missing name found")
	}
	names := s.Names()
	if len(names) != 4 || names[0] != "volume_resolution" {
		t.Fatalf("names %v", names)
	}
}

func TestKeyDistinguishesPoints(t *testing.T) {
	s := testSpace()
	rng := rand.New(rand.NewSource(4))
	a := s.Sample(rng)
	b := s.Sample(rng)
	if s.Key(a) == s.Key(b) && s.Key(a) != "" {
		// Extremely unlikely collision for different points.
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
			}
		}
		if !same {
			t.Fatal("distinct points share a key")
		}
	}
	if s.Key(a) != s.Key(a.Clone()) {
		t.Fatal("clone changed key")
	}
}
