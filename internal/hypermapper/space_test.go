package hypermapper

import (
	"math/rand"
	"testing"
)

func testSpace() *Space {
	return &Space{Params: []Parameter{
		{Name: "volume_resolution", Kind: Ordinal, Choices: []float64{64, 96, 128, 192, 256}},
		{Name: "compute_size_ratio", Kind: Ordinal, Choices: []float64{1, 2, 4, 8}},
		{Name: "mu", Kind: Real, Min: 0.01, Max: 0.3},
		{Name: "icp_iters", Kind: Integer, Min: 1, Max: 20},
	}}
}

func TestSpaceValidate(t *testing.T) {
	if err := testSpace().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Space{}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty space accepted")
	}
	dup := testSpace()
	dup.Params = append(dup.Params, dup.Params[0])
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate names accepted")
	}
	unsorted := &Space{Params: []Parameter{
		{Name: "x", Kind: Ordinal, Choices: []float64{2, 1}},
	}}
	if err := unsorted.Validate(); err == nil {
		t.Fatal("unsorted ordinal accepted")
	}
	empty := &Space{Params: []Parameter{{Name: "x", Kind: Ordinal}}}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty ordinal accepted")
	}
	inv := &Space{Params: []Parameter{{Name: "x", Kind: Real, Min: 2, Max: 1}}}
	if err := inv.Validate(); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestSampleInDomain(t *testing.T) {
	s := testSpace()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		pt := s.Sample(rng)
		checkInDomain(t, s, pt)
	}
}

func checkInDomain(t *testing.T, s *Space, pt Point) {
	t.Helper()
	if len(pt) != len(s.Params) {
		t.Fatalf("point dims %d", len(pt))
	}
	for d, p := range s.Params {
		v := pt[d]
		switch p.Kind {
		case Ordinal:
			found := false
			for _, c := range p.Choices {
				if c == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s=%v not a choice", p.Name, v)
			}
		case Integer:
			if v != float64(int(v)) || v < p.Min || v > p.Max {
				t.Fatalf("%s=%v not integer in range", p.Name, v)
			}
		default:
			if v < p.Min || v > p.Max {
				t.Fatalf("%s=%v out of range", p.Name, v)
			}
		}
	}
}

func TestLatinHypercubeCoverage(t *testing.T) {
	s := testSpace()
	rng := rand.New(rand.NewSource(2))
	pts := s.LatinHypercube(40, rng)
	if len(pts) != 40 {
		t.Fatalf("n = %d", len(pts))
	}
	for _, pt := range pts {
		checkInDomain(t, s, pt)
	}
	// Every ordinal choice of the first parameter must appear at least
	// once in 40 stratified samples over 5 choices.
	seen := map[float64]bool{}
	for _, pt := range pts {
		seen[pt[0]] = true
	}
	if len(seen) != 5 {
		t.Fatalf("LHS covered %d/5 volume resolutions", len(seen))
	}
	if s.LatinHypercube(0, rng) != nil {
		t.Fatal("n=0 should be nil")
	}
}

func TestNearestAndMutate(t *testing.T) {
	s := testSpace()
	p0 := s.Params[0]
	if got := p0.Nearest(100); got != 96 {
		t.Fatalf("nearest(100) = %v", got)
	}
	if got := p0.Nearest(1000); got != 256 {
		t.Fatalf("nearest(1000) = %v", got)
	}
	pr := s.Params[2]
	if got := pr.Nearest(-5); got != 0.01 {
		t.Fatalf("real clamp %v", got)
	}
	pi := s.Params[3]
	if got := pi.Nearest(7.6); got != 8 {
		t.Fatalf("integer round %v", got)
	}

	rng := rand.New(rand.NewSource(3))
	pt := s.Sample(rng)
	for i := 0; i < 200; i++ {
		m := s.Mutate(pt, 2, rng)
		checkInDomain(t, s, m)
	}
	// Ordinal mutation moves at most one position.
	for i := 0; i < 100; i++ {
		v := p0.Mutate(128, rng)
		if v != 96 && v != 128 && v != 192 {
			t.Fatalf("ordinal mutate jumped to %v", v)
		}
	}
}

func TestIndexAndNames(t *testing.T) {
	s := testSpace()
	if s.Index("mu") != 2 {
		t.Fatalf("Index(mu) = %d", s.Index("mu"))
	}
	if s.Index("nope") != -1 {
		t.Fatal("missing name found")
	}
	names := s.Names()
	if len(names) != 4 || names[0] != "volume_resolution" {
		t.Fatalf("names %v", names)
	}
}

func TestKeyDistinguishesPoints(t *testing.T) {
	s := testSpace()
	rng := rand.New(rand.NewSource(4))
	a := s.Sample(rng)
	b := s.Sample(rng)
	if s.Key(a) == s.Key(b) && s.Key(a) != "" {
		// Extremely unlikely collision for different points.
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
			}
		}
		if !same {
			t.Fatal("distinct points share a key")
		}
	}
	if s.Key(a) != s.Key(a.Clone()) {
		t.Fatal("clone changed key")
	}
}
