package hypermapper

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// The HyperMapper tool persists every evaluated configuration as a CSV
// row so runs can be analysed, resumed or merged. This file provides the
// same capability: one column per parameter, then the metric columns.

// metricColumns is the fixed metric header suffix.
var metricColumns = []string{"runtime_s", "max_ate_m", "power_w", "energy_j", "failed"}

// WriteObservations serialises observations as CSV with named parameter
// columns.
func WriteObservations(w io.Writer, space *Space, obs []Observation) error {
	cw := csv.NewWriter(w)
	header := append(append([]string{}, space.Names()...), metricColumns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, o := range obs {
		if len(o.X) != len(space.Params) {
			return fmt.Errorf("hypermapper: observation %d has %d values, space has %d",
				i, len(o.X), len(space.Params))
		}
		row := make([]string, 0, len(header))
		for _, v := range o.X {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		failed := "0"
		if o.M.Failed {
			failed = "1"
		}
		row = append(row,
			strconv.FormatFloat(o.M.Runtime, 'g', -1, 64),
			strconv.FormatFloat(o.M.MaxATE, 'g', -1, 64),
			strconv.FormatFloat(o.M.Power, 'g', -1, 64),
			strconv.FormatFloat(o.M.Energy, 'g', -1, 64),
			failed,
		)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadObservations parses a CSV produced by WriteObservations, validating
// the header against the space.
func ReadObservations(r io.Reader, space *Space) ([]Observation, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("hypermapper: reading header: %w", err)
	}
	want := append(append([]string{}, space.Names()...), metricColumns...)
	if len(header) != len(want) {
		return nil, fmt.Errorf("hypermapper: header has %d columns, want %d", len(header), len(want))
	}
	for i := range want {
		if header[i] != want[i] {
			return nil, fmt.Errorf("hypermapper: column %d is %q, want %q", i, header[i], want[i])
		}
	}
	np := len(space.Params)
	var out []Observation
	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		line++
		vals := make([]float64, len(row))
		for i, s := range row {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("hypermapper: line %d column %d: %w", line, i, err)
			}
			vals[i] = v
		}
		out = append(out, Observation{
			X: Point(vals[:np]),
			M: Metrics{
				Runtime: vals[np],
				MaxATE:  vals[np+1],
				Power:   vals[np+2],
				Energy:  vals[np+3],
				Failed:  vals[np+4] != 0,
			},
		})
	}
	return out, nil
}
