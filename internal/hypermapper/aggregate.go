package hypermapper

// Cross-scenario aggregation for campaign runs: given the same
// candidate configurations measured in several scenario cells, pick the
// configuration that is *robust* — feasible in every cell and with the
// best worst-case standing. This is the quantitative form of the
// paper's "one configuration does not fit all scenes" observation: the
// per-cell winners usually differ, and the robust pick is the
// configuration you would actually ship when the scene is not known in
// advance.

// RobustPick describes the outcome of a RobustBest aggregation.
type RobustPick struct {
	// Index is the winning candidate's row in the perCandidate matrix.
	Index int
	// Ranks is the winner's per-cell rank (1 = fastest feasible
	// candidate in that cell; len(candidates)+1 marks an infeasible
	// cell).
	Ranks []int
	// WorstRank is the maximum of Ranks — the best-worst-case criterion
	// the winner minimises.
	WorstRank int
	// RankSum is the sum of Ranks (the rank-aggregation tie-breaker).
	RankSum int
	// FeasibleEverywhere reports whether the winner met the feasibility
	// constraint in every cell. When no candidate does, RobustBest still
	// returns the least-bad candidate (fewest infeasible cells first)
	// with this flag false.
	FeasibleEverywhere bool
}

// RobustBest rank-aggregates candidates across scenario cells.
// perCandidate[i][j] holds candidate i's full-fidelity metrics in cell
// j; every row must have the same number of cells. feasible gates
// per-cell feasibility (nil admits everything not Failed/LowFidelity);
// key is the per-cell performance objective being ranked (lower is
// better, e.g. Metrics.Runtime).
//
// Within each cell, feasible candidates are ranked by key — ties share
// the lower rank, so equal measurements cannot make the aggregation
// depend on candidate order — and infeasible ones sit at rank
// len(candidates)+1. The winner minimises, in order: number of
// infeasible cells, worst-case rank, rank sum, candidate index. The
// whole procedure is deterministic for a fixed candidate order.
func RobustBest(perCandidate [][]Metrics, feasible Constraint, key func(Metrics) float64) (RobustPick, bool) {
	n := len(perCandidate)
	if n == 0 || len(perCandidate[0]) == 0 {
		return RobustPick{Index: -1}, false
	}
	cells := len(perCandidate[0])
	ok := func(m Metrics) bool {
		if m.Failed || m.LowFidelity {
			return false
		}
		return feasible == nil || feasible(m)
	}

	infeasibleRank := n + 1
	ranks := make([][]int, n)
	for i := range ranks {
		ranks[i] = make([]int, cells)
	}
	for j := 0; j < cells; j++ {
		for i := 0; i < n; i++ {
			if !ok(perCandidate[i][j]) {
				ranks[i][j] = infeasibleRank
				continue
			}
			r := 1
			ki := key(perCandidate[i][j])
			for k := 0; k < n; k++ {
				if k == i || !ok(perCandidate[k][j]) {
					continue
				}
				if key(perCandidate[k][j]) < ki {
					r++
				}
			}
			ranks[i][j] = r
		}
	}

	best := -1
	var bestInfeasible, bestWorst, bestSum int
	for i := 0; i < n; i++ {
		infeasible, worst, sum := 0, 0, 0
		for _, r := range ranks[i] {
			if r == infeasibleRank {
				infeasible++
			}
			if r > worst {
				worst = r
			}
			sum += r
		}
		if best < 0 ||
			infeasible < bestInfeasible ||
			(infeasible == bestInfeasible && worst < bestWorst) ||
			(infeasible == bestInfeasible && worst == bestWorst && sum < bestSum) {
			best, bestInfeasible, bestWorst, bestSum = i, infeasible, worst, sum
		}
	}
	return RobustPick{
		Index:              best,
		Ranks:              ranks[best],
		WorstRank:          bestWorst,
		RankSum:            bestSum,
		FeasibleEverywhere: bestInfeasible == 0,
	}, true
}
