// Package hypermapper reproduces the paper's design-space-exploration
// engine: multi-objective optimisation of algorithmic parameters via
// random sampling followed by active learning over random-forest
// surrogates, with Pareto-front extraction, feasibility constraints and
// decision-tree knowledge extraction (Figure 2).
package hypermapper

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Kind classifies a parameter's domain.
type Kind int

// Parameter domains.
const (
	// Ordinal parameters take one of an explicit ordered value list
	// (e.g. volume resolution ∈ {64, 96, 128, 192, 256}).
	Ordinal Kind = iota
	// Integer parameters span [Min, Max] at integer steps.
	Integer
	// Real parameters span [Min, Max] continuously.
	Real
)

// Parameter is one tunable dimension of the design space.
type Parameter struct {
	Name     string
	Kind     Kind
	Min, Max float64   // Integer, Real
	Choices  []float64 // Ordinal
}

// Validate reports malformed domains.
func (p Parameter) Validate() error {
	switch p.Kind {
	case Ordinal:
		if len(p.Choices) == 0 {
			return fmt.Errorf("hypermapper: ordinal %q has no choices", p.Name)
		}
		for i := 1; i < len(p.Choices); i++ {
			if p.Choices[i] <= p.Choices[i-1] {
				return fmt.Errorf("hypermapper: ordinal %q choices not strictly increasing", p.Name)
			}
		}
	case Integer, Real:
		if p.Max < p.Min {
			return fmt.Errorf("hypermapper: %q has Max < Min", p.Name)
		}
	default:
		return fmt.Errorf("hypermapper: %q has unknown kind %d", p.Name, p.Kind)
	}
	return nil
}

// Sample draws a uniform value from the domain.
func (p Parameter) Sample(rng *rand.Rand) float64 {
	switch p.Kind {
	case Ordinal:
		return p.Choices[rng.Intn(len(p.Choices))]
	case Integer:
		lo, hi := int(p.Min), int(p.Max)
		return float64(lo + rng.Intn(hi-lo+1))
	default:
		return p.Min + rng.Float64()*(p.Max-p.Min)
	}
}

// Nearest snaps an arbitrary value onto the domain.
func (p Parameter) Nearest(v float64) float64 {
	switch p.Kind {
	case Ordinal:
		best := p.Choices[0]
		bd := math.Abs(v - best)
		for _, c := range p.Choices[1:] {
			if d := math.Abs(v - c); d < bd {
				best, bd = c, d
			}
		}
		return best
	case Integer:
		r := math.Round(v)
		if r < p.Min {
			r = p.Min
		}
		if r > p.Max {
			r = p.Max
		}
		return r
	default:
		if v < p.Min {
			return p.Min
		}
		if v > p.Max {
			return p.Max
		}
		return v
	}
}

// Mutate perturbs a value to a neighbouring one (local-search move).
func (p Parameter) Mutate(v float64, rng *rand.Rand) float64 {
	switch p.Kind {
	case Ordinal:
		// Step one position up or down in the choice list.
		idx := 0
		for i, c := range p.Choices {
			if c == p.Nearest(v) {
				idx = i
				break
			}
		}
		if rng.Intn(2) == 0 {
			idx--
		} else {
			idx++
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(p.Choices) {
			idx = len(p.Choices) - 1
		}
		return p.Choices[idx]
	case Integer:
		step := math.Max(1, math.Round((p.Max-p.Min)/10))
		return p.Nearest(v + step*float64(rng.Intn(3)-1))
	default:
		span := (p.Max - p.Min) * 0.1
		return p.Nearest(v + rng.NormFloat64()*span)
	}
}

// Point is one configuration: a value per parameter, in space order.
type Point []float64

// Clone copies a point.
func (pt Point) Clone() Point { return append(Point(nil), pt...) }

// Space is the full design space.
type Space struct {
	Params []Parameter
}

// Validate checks every parameter and name uniqueness.
func (s *Space) Validate() error {
	if len(s.Params) == 0 {
		return errors.New("hypermapper: empty space")
	}
	seen := map[string]bool{}
	for _, p := range s.Params {
		if err := p.Validate(); err != nil {
			return err
		}
		if seen[p.Name] {
			return fmt.Errorf("hypermapper: duplicate parameter %q", p.Name)
		}
		seen[p.Name] = true
	}
	return nil
}

// Names returns the parameter names in order.
func (s *Space) Names() []string {
	out := make([]string, len(s.Params))
	for i, p := range s.Params {
		out[i] = p.Name
	}
	return out
}

// Index returns the position of a named parameter, or -1.
func (s *Space) Index(name string) int {
	for i, p := range s.Params {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// Sample draws one uniform random point.
func (s *Space) Sample(rng *rand.Rand) Point {
	pt := make(Point, len(s.Params))
	s.SampleInto(pt, rng)
	return pt
}

// SampleInto fills dst (len(Params) values) with one uniform draw. It
// consumes the same rng stream as Sample without allocating, so callers
// can sample straight into rows of a reused candidate matrix.
func (s *Space) SampleInto(dst Point, rng *rand.Rand) {
	for i, p := range s.Params {
		dst[i] = p.Sample(rng)
	}
}

// SampleN draws n uniform points.
func (s *Space) SampleN(n int, rng *rand.Rand) []Point {
	out := make([]Point, n)
	for i := range out {
		out[i] = s.Sample(rng)
	}
	return out
}

// LatinHypercube draws n stratified points: each dimension is split into
// n strata sampled exactly once, giving better coverage than uniform
// sampling for the initial DSE phase.
func (s *Space) LatinHypercube(n int, rng *rand.Rand) []Point {
	if n <= 0 {
		return nil
	}
	out := make([]Point, n)
	for i := range out {
		out[i] = make(Point, len(s.Params))
	}
	for d, p := range s.Params {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			u := (float64(perm[i]) + rng.Float64()) / float64(n)
			var v float64
			switch p.Kind {
			case Ordinal:
				idx := int(u * float64(len(p.Choices)))
				if idx >= len(p.Choices) {
					idx = len(p.Choices) - 1
				}
				v = p.Choices[idx]
			case Integer:
				v = p.Nearest(p.Min + u*(p.Max-p.Min))
			default:
				v = p.Min + u*(p.Max-p.Min)
			}
			out[i][d] = v
		}
	}
	return out
}

// SampleNeighborhoodInto fills dst with one draw from a clamped
// neighbourhood of center — the concentrated counterpart of SampleInto
// that warm-start seeding uses to place configurations near donor
// winners. radius scales the neighbourhood width as a fraction of each
// parameter's span (ordinals use index distance so unevenly spaced
// choice lists keep a uniform notion of "near"); draws landing outside
// a domain are clamped onto it, and every value is snapped onto the
// domain via Nearest, so ordinal axes always round-trip to exact
// choice-list members. Exactly one rng draw is consumed per parameter
// whatever its kind, so the stream stays aligned across spaces.
func (s *Space) SampleNeighborhoodInto(dst, center Point, radius float64, rng *rand.Rand) {
	for i, p := range s.Params {
		g := rng.NormFloat64()
		switch p.Kind {
		case Ordinal:
			// Step in index space around the nearest choice to center.
			idx := 0
			c := p.Nearest(center[i])
			for j, v := range p.Choices {
				if v == c {
					idx = j
					break
				}
			}
			idx += int(math.Round(g * radius * float64(len(p.Choices))))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(p.Choices) {
				idx = len(p.Choices) - 1
			}
			dst[i] = p.Choices[idx]
		default:
			dst[i] = p.Nearest(center[i] + g*radius*(p.Max-p.Min))
		}
	}
}

// Mutate returns a copy of pt with k parameters locally perturbed.
func (s *Space) Mutate(pt Point, k int, rng *rand.Rand) Point {
	out := pt.Clone()
	s.MutateInPlace(out, k, rng)
	return out
}

// MutateInPlace perturbs k parameters of pt in place (same rng stream
// as Mutate, no allocation).
func (s *Space) MutateInPlace(pt Point, k int, rng *rand.Rand) {
	if k < 1 {
		k = 1
	}
	for i := 0; i < k; i++ {
		d := rng.Intn(len(s.Params))
		pt[d] = s.Params[d].Mutate(pt[d], rng)
	}
}

// Key renders a point as a human-readable deduplication key.
func (s *Space) Key(pt Point) string {
	out := ""
	for i, v := range pt {
		out += fmt.Sprintf("%s=%.6g;", s.Params[i].Name, v)
	}
	return out
}

// AppendKey appends pt's exact binary identity — the raw IEEE-754 bits
// of every value in order — to buf and returns the extended slice. It
// is the content address the optimizer's dedup set, the evaluation memo
// and the persistent evaluation store share: used as
// m[string(AppendKey(buf[:0], pt))], the compiler elides the string
// copy on lookup, so probing costs no allocation.
//
// The encoding is persistence-grade canonical: negative zero is
// normalised to +0 so the two bit patterns of a value that compares
// equal (and therefore evaluates identically) share one key, and two
// points of different lengths can never encode to equal bytes (the
// encoding is exactly 8 bytes per coordinate, so equal keys imply equal
// lengths). NaN has no canonical encoding — a NaN coordinate never
// equals itself, so callers that persist keys across processes must
// reject such points first (see KeyablePoint).
func AppendKey(buf []byte, pt Point) []byte {
	for _, v := range pt {
		if v == 0 {
			v = 0 // collapse -0 onto +0: one key per ==-equal value
		}
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// KeyablePoint reports whether pt can serve as a persistent cache key.
// A NaN coordinate disqualifies it: NaN never compares equal to itself,
// so no canonical byte encoding can exist and a persisted record under
// such a key could never be correctly matched. In-memory memoisation
// tolerates NaN (the exact bit pattern is the key for the lifetime of
// one process); anything written to disk must check this first.
func KeyablePoint(pt Point) bool {
	for _, v := range pt {
		if math.IsNaN(v) {
			return false
		}
	}
	return true
}
