package hypermapper

import "sort"

// Metrics are the objectives SLAMBench measures per configuration. All
// are minimised except where a constraint says otherwise.
type Metrics struct {
	// Runtime is mean seconds per frame on the modelled device.
	Runtime float64
	// MaxATE is the accuracy objective (metres, the paper's "Max ATE").
	MaxATE float64
	// Power is mean watts on the modelled device.
	Power float64
	// Energy is total joules for the sequence.
	Energy float64
	// Failed marks configurations whose run lost tracking or errored;
	// they are excluded from fronts and best-config selection.
	Failed bool
}

// Observation pairs a configuration with its measured metrics.
type Observation struct {
	X Point
	M Metrics
}

// Objectives maps metrics to the minimisation vector used for dominance.
type Objectives func(Metrics) []float64

// RuntimeAccuracy is the Figure 2 objective pair.
func RuntimeAccuracy(m Metrics) []float64 { return []float64{m.Runtime, m.MaxATE} }

// RuntimeAccuracyPower is the full tri-objective space.
func RuntimeAccuracyPower(m Metrics) []float64 { return []float64{m.Runtime, m.MaxATE, m.Power} }

// Dominates reports whether a Pareto-dominates b (all objectives ≤, at
// least one strictly <).
func Dominates(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// ParetoFront extracts the non-dominated subset of obs under the given
// objectives, sorted by the first objective. Failed observations are
// skipped.
func ParetoFront(obs []Observation, objectives Objectives) []Observation {
	var valid []Observation
	for _, o := range obs {
		if !o.M.Failed {
			valid = append(valid, o)
		}
	}
	var front []Observation
	for i, a := range valid {
		dominated := false
		oa := objectives(a.M)
		for j, b := range valid {
			if i == j {
				continue
			}
			if Dominates(objectives(b.M), oa) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, a)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		return objectives(front[i].M)[0] < objectives(front[j].M)[0]
	})
	return front
}

// Constraint filters observations for best-configuration queries.
type Constraint func(Metrics) bool

// AccuracyLimit builds the paper's feasibility constraint: max ATE below
// the limit (0.05 m in Figure 2).
func AccuracyLimit(limit float64) Constraint {
	return func(m Metrics) bool { return !m.Failed && m.MaxATE <= limit }
}

// And conjoins constraints.
func And(cs ...Constraint) Constraint {
	return func(m Metrics) bool {
		for _, c := range cs {
			if !c(m) {
				return false
			}
		}
		return true
	}
}

// Best returns the feasible observation minimising key, and whether any
// feasible observation exists.
func Best(obs []Observation, feasible Constraint, key func(Metrics) float64) (Observation, bool) {
	found := false
	var best Observation
	for _, o := range obs {
		if o.M.Failed || (feasible != nil && !feasible(o.M)) {
			continue
		}
		if !found || key(o.M) < key(best.M) {
			best = o
			found = true
		}
	}
	return best, found
}

// HypervolumeProxy computes a simple quality indicator of a 2-objective
// front: the area dominated below a reference point. Used in tests and
// logs to show active learning beats random sampling.
func HypervolumeProxy(front []Observation, objectives Objectives, ref []float64) float64 {
	var pts [][]float64
	for _, o := range front {
		pts = append(pts, objectives(o.M))
	}
	return hv2D(pts, ref)
}

// hv2D computes the dominated area of 2-objective minimisation points
// below reference ref.
func hv2D(points [][]float64, ref []float64) float64 {
	type p2 struct{ x, y float64 }
	var pts []p2
	for _, v := range points {
		if v[0] >= ref[0] || v[1] >= ref[1] {
			continue
		}
		pts = append(pts, p2{v[0], v[1]})
	}
	if len(pts) == 0 {
		return 0
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	area := 0.0
	prevX := pts[0].x
	bestY := pts[0].y
	for _, p := range pts[1:] {
		area += (p.x - prevX) * (ref[1] - bestY)
		if p.y < bestY {
			bestY = p.y
		}
		prevX = p.x
	}
	area += (ref[0] - prevX) * (ref[1] - bestY)
	return area
}
