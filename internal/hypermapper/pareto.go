package hypermapper

import "sort"

// Metrics are the objectives SLAMBench measures per configuration. All
// are minimised except where a constraint says otherwise. The JSON form
// is the checkpoint wire format of campaign artifacts; Go's float64
// encoding round-trips bit-exactly, so serialised metrics reload
// byte-identical to the measured ones.
type Metrics struct {
	// Runtime is mean seconds per frame on the modelled device.
	Runtime float64 `json:"runtime"`
	// MaxATE is the accuracy objective (metres, the paper's "Max ATE").
	MaxATE float64 `json:"max_ate"`
	// Power is mean watts on the modelled device.
	Power float64 `json:"power"`
	// Energy is total joules for the sequence.
	Energy float64 `json:"energy"`
	// Failed marks configurations whose run lost tracking or errored;
	// they are excluded from fronts and best-config selection.
	Failed bool `json:"failed,omitempty"`
	// LowFidelity marks measurements taken on a reduced workload (the
	// unpromoted rung of the multi-fidelity ladder). They carry enough
	// signal to train surrogates but are not comparable to full runs,
	// so fronts and best-config selection exclude them like Failed.
	LowFidelity bool `json:"low_fidelity,omitempty"`
}

// Observation pairs a configuration with its measured metrics. Like
// Metrics it is JSON-serialisable for checkpoint artifacts.
type Observation struct {
	X Point   `json:"x"`
	M Metrics `json:"m"`
}

// Objectives maps metrics to the minimisation vector used for dominance.
type Objectives func(Metrics) []float64

// RuntimeAccuracy is the Figure 2 objective pair.
func RuntimeAccuracy(m Metrics) []float64 { return []float64{m.Runtime, m.MaxATE} }

// RuntimeAccuracyPower is the full tri-objective space.
func RuntimeAccuracyPower(m Metrics) []float64 { return []float64{m.Runtime, m.MaxATE, m.Power} }

// Dominates reports whether a Pareto-dominates b (all objectives ≤, at
// least one strictly <).
func Dominates(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// ParetoFront extracts the non-dominated subset of obs under the given
// objectives, sorted by the first objective. Failed and low-fidelity
// observations are skipped — the front is built only from full
// measurements.
func ParetoFront(obs []Observation, objectives Objectives) []Observation {
	var valid []Observation
	for _, o := range obs {
		if !o.M.Failed && !o.M.LowFidelity {
			valid = append(valid, o)
		}
	}
	var front []Observation
	for i, a := range valid {
		dominated := false
		oa := objectives(a.M)
		for j, b := range valid {
			if i == j {
				continue
			}
			if Dominates(objectives(b.M), oa) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, a)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		return objectives(front[i].M)[0] < objectives(front[j].M)[0]
	})
	return front
}

// Constraint filters observations for best-configuration queries.
type Constraint func(Metrics) bool

// AccuracyLimit builds the paper's feasibility constraint: max ATE below
// the limit (0.05 m in Figure 2). The constraint is fidelity-aware: a
// low-fidelity measurement never passes, even when composed directly
// (outside Best's own filter) — a subsampled run's optimistic ATE must
// not certify a configuration as feasible.
func AccuracyLimit(limit float64) Constraint {
	return func(m Metrics) bool { return !m.Failed && !m.LowFidelity && m.MaxATE <= limit }
}

// And conjoins constraints.
func And(cs ...Constraint) Constraint {
	return func(m Metrics) bool {
		for _, c := range cs {
			if !c(m) {
				return false
			}
		}
		return true
	}
}

// Best returns the feasible observation minimising key, and whether any
// feasible observation exists. Failed and low-fidelity observations
// never qualify.
func Best(obs []Observation, feasible Constraint, key func(Metrics) float64) (Observation, bool) {
	found := false
	var best Observation
	for _, o := range obs {
		if o.M.Failed || o.M.LowFidelity || (feasible != nil && !feasible(o.M)) {
			continue
		}
		if !found || key(o.M) < key(best.M) {
			best = o
			found = true
		}
	}
	return best, found
}

// HypervolumeProxy computes a simple quality indicator of a 2-objective
// front: the area dominated below a reference point. Used in tests and
// logs to show active learning beats random sampling.
func HypervolumeProxy(front []Observation, objectives Objectives, ref []float64) float64 {
	var pts [][]float64
	for _, o := range front {
		pts = append(pts, objectives(o.M))
	}
	return hv2D(pts, ref)
}

// hv2D computes the dominated area of 2-objective minimisation points
// below reference ref.
func hv2D(points [][]float64, ref []float64) float64 {
	var s hv2DScorer
	s.Reset(points, ref)
	return s.Base()
}

// p2 is one 2-objective point of the hypervolume scorer.
type p2 struct{ x, y float64 }

// hv2DScorer scores the hypervolume gain of single candidate points
// against a fixed 2-objective front. Reset sorts the front once; every
// Gain call then merges one extra point into the sorted sweep in O(front)
// with zero allocations — the shape the optimizer's pick loop needs,
// where one frozen front is probed by a thousand candidates.
type hv2DScorer struct {
	pts  []p2 // in-reference front points, sorted by x; reused across Resets
	ref  [2]float64
	base float64
	box  float64 // normalisation area ref[0]*ref[1] (0 disables)
}

// Reset installs a new front and reference point.
func (h *hv2DScorer) Reset(front [][]float64, ref []float64) {
	h.pts = h.pts[:0]
	h.ref = [2]float64{ref[0], ref[1]}
	for _, v := range front {
		if v[0] >= ref[0] || v[1] >= ref[1] {
			continue
		}
		h.pts = append(h.pts, p2{v[0], v[1]})
	}
	sort.Sort(byX(h.pts))
	h.base = h.area(p2{}, false)
	h.box = ref[0] * ref[1]
}

// byX sorts scorer points by the first objective.
type byX []p2

func (s byX) Len() int           { return len(s) }
func (s byX) Less(a, b int) bool { return s[a].x < s[b].x }
func (s byX) Swap(a, b int)      { s[a], s[b] = s[b], s[a] }

// Base returns the front's own dominated area.
func (h *hv2DScorer) Base() float64 { return h.base }

// Gain returns the normalised hypervolume a candidate at (x, y) would
// add to the front (the EHVI-style acquisition term).
func (h *hv2DScorer) Gain(x, y float64) float64 {
	g := h.area(p2{x, y}, true) - h.base
	if h.box > 0 {
		g /= h.box
	}
	return g
}

// area sweeps the sorted front left to right, injecting the extra point
// at its x position, and accumulates the dominated area below ref.
func (h *hv2DScorer) area(extra p2, hasExtra bool) float64 {
	if hasExtra && (extra.x >= h.ref[0] || extra.y >= h.ref[1]) {
		hasExtra = false
	}
	if len(h.pts) == 0 && !hasExtra {
		return 0
	}
	var prevX, bestY, area float64
	first := true
	step := func(p p2) {
		if first {
			prevX, bestY, first = p.x, p.y, false
			return
		}
		area += (p.x - prevX) * (h.ref[1] - bestY)
		if p.y < bestY {
			bestY = p.y
		}
		prevX = p.x
	}
	for _, p := range h.pts {
		if hasExtra && extra.x < p.x {
			step(extra)
			hasExtra = false
		}
		step(p)
	}
	if hasExtra {
		step(extra)
	}
	area += (h.ref[0] - prevX) * (h.ref[1] - bestY)
	return area
}
