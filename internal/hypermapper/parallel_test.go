package hypermapper

import (
	"reflect"
	"testing"
)

// TestOptimizeDeterministicAcrossWorkers is the contract the parallel
// DSE engine must honour: a seeded exploration produces a byte-identical
// Result — every observation, in order, and the final Pareto front — for
// any worker count.
func TestOptimizeDeterministicAcrossWorkers(t *testing.T) {
	s := testSpace()
	eval := syntheticEvaluator(s)

	run := func(workers int) *Result {
		cfg := DefaultOptimizerConfig()
		cfg.RandomSamples = 12
		cfg.ActiveIterations = 3
		cfg.BatchPerIteration = 4
		cfg.CandidatePool = 400
		cfg.Seed = 7
		cfg.Workers = workers
		res, err := Optimize(s, eval, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}

	ref := run(1)
	if len(ref.Front) == 0 {
		t.Fatal("reference run produced an empty front")
	}
	for _, workers := range []int{4, 8} {
		got := run(workers)
		if !reflect.DeepEqual(got.Observations, ref.Observations) {
			t.Fatalf("workers=%d: observations diverge from serial run", workers)
		}
		if got.RandomPhase != ref.RandomPhase {
			t.Fatalf("workers=%d: random phase %d != %d", workers, got.RandomPhase, ref.RandomPhase)
		}
		if !reflect.DeepEqual(got.Front, ref.Front) {
			t.Fatalf("workers=%d: Pareto front diverges from serial run", workers)
		}
	}
}

// TestOptimizeDeterministicConstrained covers the same contract in the
// paper's constrained-acquisition mode.
func TestOptimizeDeterministicConstrained(t *testing.T) {
	s := testSpace()
	eval := syntheticEvaluator(s)

	run := func(workers int) *Result {
		cfg := DefaultOptimizerConfig()
		cfg.RandomSamples = 10
		cfg.ActiveIterations = 3
		cfg.BatchPerIteration = 3
		cfg.CandidatePool = 300
		cfg.Seed = 3
		cfg.Workers = workers
		cfg.ConstraintObjective = 1
		cfg.ConstraintLimit = 0.1
		res, err := Optimize(s, eval, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}

	ref := run(1)
	for _, workers := range []int{4, 8} {
		if got := run(workers); !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: constrained result diverges from serial run", workers)
		}
	}
}

func TestConstrainedConfigValidation(t *testing.T) {
	s := testSpace()
	eval := syntheticEvaluator(s)

	cfg := DefaultOptimizerConfig()
	cfg.ConstraintLimit = 0.05
	cfg.ConstraintObjective = 0
	if _, err := Optimize(s, eval, cfg); err == nil {
		t.Fatal("ConstraintLimit with ConstraintObjective=0 accepted")
	}

	cfg.ConstraintObjective = 5 // RuntimeAccuracy has 2 objectives
	if _, err := Optimize(s, eval, cfg); err == nil {
		t.Fatal("out-of-range ConstraintObjective accepted")
	}

	// The valid constrained combination still works.
	cfg.ConstraintObjective = 1
	cfg.RandomSamples = 8
	cfg.ActiveIterations = 1
	if _, err := Optimize(s, eval, cfg); err != nil {
		t.Fatalf("valid constrained config rejected: %v", err)
	}
}

// TestOptimizeMemoMultiFidelityDeterministic extends the determinism
// contract to the full evaluation ladder: a seeded Optimize whose
// batches run through memoized low/high evaluators under the
// multi-fidelity promoter yields an identical Result — observations and
// Pareto front — for workers ∈ {1, 4, 8} (run under -race via
// make race).
func TestOptimizeMemoMultiFidelityDeterministic(t *testing.T) {
	s := testSpace()
	full := syntheticEvaluator(s)
	// The low-fidelity surface is a cheap distortion of the full one —
	// same shape, noisier values — like a frame-subsampled SLAM run.
	cheap := func(pt Point) Metrics {
		m := full(pt)
		m.Runtime *= 0.25
		m.MaxATE *= 1.3
		return m
	}

	run := func(workers int) *Result {
		low := NewMemoEvaluator(cheap)
		high := NewMemoEvaluator(full)
		cfg := DefaultOptimizerConfig()
		cfg.RandomSamples = 12
		cfg.ActiveIterations = 3
		cfg.BatchPerIteration = 4
		cfg.CandidatePool = 400
		cfg.Seed = 13
		cfg.Workers = workers
		cfg.BatchEval = &MultiFidelity{
			Low:             low.Evaluate,
			High:            high.Evaluate,
			PromoteFraction: 0.5,
			Workers:         workers,
		}
		res, err := Optimize(s, high.Evaluate, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if _, misses := high.Stats(); misses > len(res.Observations) {
			t.Fatalf("workers=%d: memoized evaluator ran %d times for %d observations",
				workers, misses, len(res.Observations))
		}
		return res
	}

	ref := run(1)
	if len(ref.Front) == 0 {
		t.Fatal("reference run produced an empty front")
	}
	for _, workers := range []int{4, 8} {
		got := run(workers)
		if !reflect.DeepEqual(got.Observations, ref.Observations) {
			t.Fatalf("workers=%d: observations diverge from serial run", workers)
		}
		if !reflect.DeepEqual(got.Front, ref.Front) {
			t.Fatalf("workers=%d: Pareto front diverges from serial run", workers)
		}
	}
}

func TestParallelEvaluatorOrder(t *testing.T) {
	eval := func(pt Point) Metrics { return Metrics{Runtime: pt[0]} }
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = Point{float64(i)}
	}
	for _, workers := range []int{1, 8} {
		ms := ParallelEvaluator{Eval: eval, Workers: workers}.EvalAll(pts)
		if len(ms) != len(pts) {
			t.Fatalf("workers=%d: %d results for %d points", workers, len(ms), len(pts))
		}
		for i, m := range ms {
			if m.Runtime != float64(i) {
				t.Fatalf("workers=%d: result %d out of order", workers, i)
			}
		}
	}
}
