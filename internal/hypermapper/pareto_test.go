package hypermapper

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestAccuracyLimitFidelityAware(t *testing.T) {
	c := AccuracyLimit(0.05)
	cases := []struct {
		name string
		m    Metrics
		want bool
	}{
		{"in-limit full run", Metrics{MaxATE: 0.03}, true},
		{"over-limit full run", Metrics{MaxATE: 0.06}, false},
		{"failed run", Metrics{MaxATE: 0.01, Failed: true}, false},
		// The bug this pins: a subsampled measurement with an optimistic
		// ATE must not pass feasibility when the constraint is composed
		// directly (outside Best's own filter).
		{"in-limit low-fidelity run", Metrics{MaxATE: 0.01, LowFidelity: true}, false},
		{"exactly at limit", Metrics{MaxATE: 0.05}, true},
	}
	for _, tc := range cases {
		if got := c(tc.m); got != tc.want {
			t.Errorf("%s: feasible=%v, want %v", tc.name, got, tc.want)
		}
	}
	// And composed: And must not resurrect a low-fidelity pass.
	composed := And(AccuracyLimit(0.05), func(Metrics) bool { return true })
	if composed(Metrics{MaxATE: 0.01, LowFidelity: true}) {
		t.Error("composed constraint accepted a low-fidelity measurement")
	}
}

// TestEmptyFrontPaths: all-low-fidelity and all-failed observation sets
// must flow through front extraction, best-config queries and the
// hypervolume indicator as empty inputs, not as results.
func TestEmptyFrontPaths(t *testing.T) {
	allLow := []Observation{
		{X: Point{1}, M: Metrics{Runtime: 0.1, MaxATE: 0.01, LowFidelity: true}},
		{X: Point{2}, M: Metrics{Runtime: 0.2, MaxATE: 0.02, LowFidelity: true}},
	}
	allFailed := []Observation{
		{X: Point{1}, M: Metrics{Failed: true}},
		{X: Point{2}, M: Metrics{Failed: true}},
	}
	for name, obs := range map[string][]Observation{
		"all-low-fidelity": allLow,
		"all-failed":       allFailed,
		"nil":              nil,
	} {
		if front := ParetoFront(obs, RuntimeAccuracy); len(front) != 0 {
			t.Errorf("%s: front has %d members, want 0", name, len(front))
		}
		if _, ok := Best(obs, nil, func(m Metrics) float64 { return m.Runtime }); ok {
			t.Errorf("%s: Best found an observation", name)
		}
		if hv := HypervolumeProxy(ParetoFront(obs, RuntimeAccuracy), RuntimeAccuracy,
			[]float64{1, 1}); hv != 0 {
			t.Errorf("%s: hypervolume %v, want 0", name, hv)
		}
	}
}

// bruteHV is an independent reference for the dominated area of a set of
// 2-objective minimisation points below ref: sort by x, sweep right,
// each point extends the region at the running best (lowest) y.
func bruteHV(pts [][2]float64, ref [2]float64) float64 {
	var in [][2]float64
	for _, p := range pts {
		if p[0] < ref[0] && p[1] < ref[1] {
			in = append(in, p)
		}
	}
	if len(in) == 0 {
		return 0
	}
	sort.Slice(in, func(i, j int) bool {
		if in[i][0] != in[j][0] {
			return in[i][0] < in[j][0]
		}
		return in[i][1] < in[j][1]
	})
	area, bestY := 0.0, math.Inf(1)
	for i := range in {
		if in[i][1] < bestY {
			bestY = in[i][1]
		}
		xNext := ref[0]
		if i+1 < len(in) {
			xNext = in[i+1][0]
		}
		area += (xNext - in[i][0]) * (ref[1] - bestY)
	}
	return area
}

// TestHv2DScorerGainDuplicateX: a candidate sharing an x coordinate with
// a front member must score exactly the area it adds below that member
// (zero-width segments must not corrupt the sweep).
func TestHv2DScorerGainDuplicateX(t *testing.T) {
	front := [][]float64{{1, 1}, {2, 0.5}}
	ref := []float64{4, 2}
	var s hv2DScorer
	s.Reset(front, ref)
	box := ref[0] * ref[1]

	// Candidate at x=1 (duplicate of front[0]) with a better y: adds
	// (2-1)*(1-0.25) over [1,2] and (4-2)*(0.5-0.25) over [2,4].
	want := (2-1)*(1-0.25) + (4-2)*(0.5-0.25)
	if got := s.Gain(1, 0.25) * box; math.Abs(got-want) > 1e-12 {
		t.Errorf("duplicate-x gain %v, want %v", got, want)
	}
	// A duplicate-x candidate with a worse y adds nothing.
	if got := s.Gain(1, 1.5) * box; got != 0 {
		t.Errorf("dominated duplicate-x candidate gained %v, want 0", got)
	}
	// An exact duplicate of a front point adds nothing.
	if got := s.Gain(2, 0.5) * box; got != 0 {
		t.Errorf("exact duplicate gained %v, want 0", got)
	}
}

// TestHv2DScorerGainOutsideBox: candidates at or beyond the reference
// point dominate no area inside the box and must gain exactly zero.
func TestHv2DScorerGainOutsideBox(t *testing.T) {
	front := [][]float64{{1, 1}}
	ref := []float64{4, 2}
	var s hv2DScorer
	s.Reset(front, ref)
	for _, c := range [][2]float64{
		{4, 0.5}, // x exactly at ref
		{5, 0.5}, // x beyond ref
		{0.5, 2}, // y exactly at ref
		{0.5, 3}, // y beyond ref
		{9, 9},   // both beyond
		{4, 2},   // exactly the reference point
	} {
		if got := s.Gain(c[0], c[1]); got != 0 {
			t.Errorf("candidate %v outside the box gained %v, want 0", c, got)
		}
	}
	// Front points outside the box are dropped by Reset: the remaining
	// base area must come only from in-box members.
	s.Reset([][]float64{{1, 1}, {5, 0.1}, {0.1, 7}}, ref)
	if want := (4.0 - 1) * (2.0 - 1); math.Abs(s.Base()-want) > 1e-12 {
		t.Errorf("base %v with out-of-box front members, want %v", s.Base(), want)
	}
}

// TestHv2DScorerGainMatchesBruteForce cross-checks the incremental
// sweep against the independent reference over random fronts and
// candidates, duplicated x values and out-of-box points included.
func TestHv2DScorerGainMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ref := []float64{1, 1}
	box := ref[0] * ref[1]
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		front := make([][]float64, n)
		fpts := make([][2]float64, n)
		for i := range front {
			// Snap to a coarse grid so duplicate coordinates are common.
			x := float64(rng.Intn(8)) / 6
			y := float64(rng.Intn(8)) / 6
			front[i] = []float64{x, y}
			fpts[i] = [2]float64{x, y}
		}
		var s hv2DScorer
		s.Reset(front, ref)
		base := bruteHV(fpts, [2]float64{ref[0], ref[1]})
		if math.Abs(s.Base()-base) > 1e-12 {
			t.Fatalf("trial %d: base %v, brute force %v (front %v)", trial, s.Base(), base, front)
		}
		for c := 0; c < 10; c++ {
			cx := float64(rng.Intn(8)) / 6
			cy := float64(rng.Intn(8)) / 6
			got := s.Gain(cx, cy) * box
			want := bruteHV(append(append([][2]float64(nil), fpts...), [2]float64{cx, cy}),
				[2]float64{ref[0], ref[1]}) - base
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d: candidate (%v,%v) gain %v, brute force %v (front %v)",
					trial, cx, cy, got, want, front)
			}
		}
	}
}
