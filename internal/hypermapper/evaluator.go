package hypermapper

import "slamgo/internal/parallel"

// BatchEvaluator measures a whole batch of configurations at once.
// Implementations see the full batch, which enables strategies a
// point-at-a-time Evaluator cannot express — the multi-fidelity ladder
// promotes only the batch's most promising members to full-fidelity
// runs. EvalAll must return metrics in input order and be deterministic
// for any internal parallelism. ParallelEvaluator and MultiFidelity
// both satisfy it; plug one into OptimizerConfig.BatchEval.
type BatchEvaluator interface {
	EvalAll(pts []Point) []Metrics
}

// ParallelEvaluator fans an Evaluator out over a bounded worker pool.
// Results come back in input order, so callers that append observations
// sequentially stay deterministic for any worker count. The wrapped
// Evaluator must be safe for concurrent calls (the bundled SLAM
// evaluator is: each call builds its own pipeline over a shared
// read-only sequence).
type ParallelEvaluator struct {
	// Eval is the underlying black box.
	Eval Evaluator
	// Workers bounds concurrency; 0 means GOMAXPROCS, 1 restores fully
	// serial evaluation.
	Workers int
}

// EvalAll measures every point and returns metrics in input order.
func (p ParallelEvaluator) EvalAll(pts []Point) []Metrics {
	return parallel.MapOrdered(p.Workers, pts, func(_ int, pt Point) Metrics {
		return p.Eval(pt)
	})
}
