package hypermapper

import "slamgo/internal/parallel"

// ParallelEvaluator fans an Evaluator out over a bounded worker pool.
// Results come back in input order, so callers that append observations
// sequentially stay deterministic for any worker count. The wrapped
// Evaluator must be safe for concurrent calls (the bundled SLAM
// evaluator is: each call builds its own pipeline over a shared
// read-only sequence).
type ParallelEvaluator struct {
	// Eval is the underlying black box.
	Eval Evaluator
	// Workers bounds concurrency; 0 means GOMAXPROCS, 1 restores fully
	// serial evaluation.
	Workers int
}

// EvalAll measures every point and returns metrics in input order.
func (p ParallelEvaluator) EvalAll(pts []Point) []Metrics {
	return parallel.MapOrdered(p.Workers, pts, func(_ int, pt Point) Metrics {
		return p.Eval(pt)
	})
}
