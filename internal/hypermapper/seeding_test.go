package hypermapper

import (
	"math/rand"
	"reflect"
	"testing"

	"slamgo/internal/rf"
)

// TestDefaultSeederGolden is the refactor's golden contract: Optimize
// with a nil Seeder and with an explicit LHSSeeder produce identical
// results — the pluggable seeding layer changed nothing about the
// default exploration.
func TestDefaultSeederGolden(t *testing.T) {
	s := testSpace()
	eval := syntheticEvaluator(s)
	cfg := DefaultOptimizerConfig()
	cfg.RandomSamples = 12
	cfg.ActiveIterations = 3
	cfg.BatchPerIteration = 3
	cfg.CandidatePool = 300
	cfg.Seed = 11

	base, err := Optimize(s, eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seeder = LHSSeeder{}
	explicit, err := Optimize(s, eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, explicit) {
		t.Fatal("explicit LHSSeeder diverges from nil default")
	}
	// A warm-start seeder with no donors must also be exactly LHS: a
	// borrower whose anchors were all quarantined degrades to the
	// default exploration, not to something new.
	cfg.Seeder = WarmStartSeeder{}
	empty, err := Optimize(s, eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, empty) {
		t.Fatal("donor-less WarmStartSeeder diverges from LHS default")
	}
}

// TestWarmStartSeederConcentrates checks the concentrated fraction
// lands near its donors (ordinals snap to choice members, numerics stay
// in-domain) while the rest still covers the space.
func TestWarmStartSeederConcentrates(t *testing.T) {
	s := testSpace()
	donor := Point{128, 2, 0.1, 10}
	seeder := WarmStartSeeder{Donors: []Point{donor}, Fraction: 0.5, Radius: 0.05}
	pts := seeder.SeedPoints(s, 20, rand.New(rand.NewSource(3)))
	if len(pts) != 20 {
		t.Fatalf("got %d seed points, want 20", len(pts))
	}
	for i, pt := range pts {
		for d, p := range s.Params {
			if p.Kind == Ordinal {
				found := false
				for _, c := range p.Choices {
					if pt[d] == c {
						found = true
					}
				}
				if !found {
					t.Fatalf("point %d dim %s = %g not a choice member", i, p.Name, pt[d])
				}
			} else if pt[d] < p.Min || pt[d] > p.Max {
				t.Fatalf("point %d dim %s = %g outside [%g, %g]", i, p.Name, pt[d], p.Min, p.Max)
			}
		}
	}
	// The concentrated half (first 10) must hug the donor on the real
	// axis far more tightly than the global half.
	iMu := s.Index("mu")
	maxConc := 0.0
	for _, pt := range pts[:10] {
		if d := abs(pt[iMu] - donor[iMu]); d > maxConc {
			maxConc = d
		}
	}
	span := s.Params[iMu].Max - s.Params[iMu].Min
	if maxConc > 0.3*span {
		t.Fatalf("concentrated draws wander: max |mu-donor| = %g of span %g", maxConc, span)
	}
}

// TestWarmStartSeederDeterministic pins that two identical rng streams
// yield identical seed sets (the campaign's cross-process invariance
// rests on this).
func TestWarmStartSeederDeterministic(t *testing.T) {
	s := testSpace()
	seeder := WarmStartSeeder{Donors: []Point{{64, 1, 0.05, 3}, {256, 8, 0.2, 18}}}
	a := seeder.SeedPoints(s, 15, rand.New(rand.NewSource(9)))
	b := seeder.SeedPoints(s, 15, rand.New(rand.NewSource(9)))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same stream, different seed points")
	}
}

// donorSet fabricates one donor run's observations over the synthetic
// surface.
func donorSet(s *Space, n int, seed int64) []Observation {
	eval := syntheticEvaluator(s)
	rng := rand.New(rand.NewSource(seed))
	out := make([]Observation, 0, n)
	for _, pt := range s.SampleN(n, rng) {
		out = append(out, Observation{X: pt, M: eval(pt)})
	}
	return out
}

// TestForestPriorExcludesUnusableDonors is the satellite regression:
// Failed and LowFidelity donor observations must never shape a prior.
func TestForestPriorExcludesUnusableDonors(t *testing.T) {
	s := testSpace()
	full := donorSet(s, 20, 1)

	// All-low-fidelity (or failed) donors: no prior at all.
	poisoned := make([]Observation, len(full))
	for i, o := range full {
		poisoned[i] = o
		if i%2 == 0 {
			poisoned[i].M.LowFidelity = true
		} else {
			poisoned[i].M.Failed = true
		}
	}
	if _, ok := NewForestPrior([][]Observation{poisoned}, RuntimeAccuracy, PriorConfig{Seed: 1}); ok {
		t.Fatal("prior fitted from failed/low-fidelity donors only")
	}

	// Mixing unusable observations into a usable set must not change
	// the fitted prior: predictions equal the clean-set prior's.
	mixed := append(append([]Observation{}, full...), poisoned...)
	clean, ok := NewForestPrior([][]Observation{full}, RuntimeAccuracy, PriorConfig{Seed: 1})
	if !ok {
		t.Fatal("clean prior did not fit")
	}
	dirty, ok := NewForestPrior([][]Observation{mixed}, RuntimeAccuracy, PriorConfig{Seed: 1})
	if !ok {
		t.Fatal("mixed prior did not fit")
	}
	probe := s.SampleN(30, rand.New(rand.NewSource(7)))
	X := make([]float64, 0, len(probe)*len(s.Params))
	for _, pt := range probe {
		X = append(X, pt...)
	}
	co, do := make([]float64, len(probe)), make([]float64, len(probe))
	for j := 0; j < 2; j++ {
		clean.PredictInto(j, X, co, 1)
		dirty.PredictInto(j, X, do, 1)
		if !reflect.DeepEqual(co, do) {
			t.Fatalf("objective %d: low-fidelity/failed donors leaked into the prior", j)
		}
	}
	if clean.Weight(0) != dirty.Weight(0) {
		t.Fatal("unusable donors inflated the prior's strength")
	}
}

// TestForestPriorWeightDecays checks the blend weight starts at its cap
// and fades with local evidence.
func TestForestPriorWeightDecays(t *testing.T) {
	s := testSpace()
	p, ok := NewForestPrior([][]Observation{donorSet(s, 20, 2)}, RuntimeAccuracy,
		PriorConfig{Seed: 2, MaxWeight: 0.4})
	if !ok {
		t.Fatal("prior did not fit")
	}
	if w := p.Weight(0); w != 0.4 {
		t.Fatalf("Weight(0) = %g, want the 0.4 cap", w)
	}
	if !(p.Weight(10) > p.Weight(100)) {
		t.Fatal("weight does not decay with local observations")
	}
	if w := p.Weight(100000); w > 0.01 {
		t.Fatalf("weight %g barely decays", w)
	}
}

// TestOptimizeWithPriorDeterministic: a prior-guided exploration stays
// bit-identical across worker counts (the blend is row-independent).
func TestOptimizeWithPriorDeterministic(t *testing.T) {
	s := testSpace()
	eval := syntheticEvaluator(s)
	prior, ok := NewForestPrior([][]Observation{donorSet(s, 25, 3)}, RuntimeAccuracy,
		PriorConfig{Seed: 3, Forest: rf.ForestConfig{Trees: 10, Tree: rf.TreeConfig{MaxDepth: 6, MinLeaf: 2}}})
	if !ok {
		t.Fatal("prior did not fit")
	}
	var base *Result
	for _, workers := range []int{1, 4, 8} {
		cfg := DefaultOptimizerConfig()
		cfg.RandomSamples = 8
		cfg.ActiveIterations = 3
		cfg.BatchPerIteration = 3
		cfg.CandidatePool = 200
		cfg.Seed = 5
		cfg.Workers = workers
		cfg.Seeder = WarmStartSeeder{Donors: []Point{{96, 2, 0.1, 8}}}
		cfg.Prior = prior
		res, err := Optimize(s, eval, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
		} else if !reflect.DeepEqual(base, res) {
			t.Fatalf("workers=%d diverges from workers=1 under a prior", workers)
		}
	}
	if len(base.Front) == 0 {
		t.Fatal("prior-guided run produced no front")
	}
}

// TestPriorLowersSurrogateFloor pins the failure-rescue rule: a lone
// surrogate needs 5 successful observations, but a prior-backed run
// keeps its active-learning rounds on as few as 2 — a warm-started cell
// whose slashed seeding budget was eaten by failures must not silently
// return a seeds-only front.
func TestPriorLowersSurrogateFloor(t *testing.T) {
	s := testSpace()
	eval := syntheticEvaluator(s)
	obs := make([]Observation, 0, 4)
	for i, pt := range s.SampleN(4, rand.New(rand.NewSource(21))) {
		o := Observation{X: pt, M: eval(pt)}
		if i >= 3 {
			o.M.Failed = true // only 3 successes survive
		}
		obs = append(obs, o)
	}
	cfg := DefaultOptimizerConfig()
	cfg.Seed = 21
	if _, ok := fitSurrogates(obs, cfg); ok {
		t.Fatal("prior-less surrogate fitted below the 5-observation floor")
	}
	prior, ok := NewForestPrior([][]Observation{donorSet(s, 20, 22)}, RuntimeAccuracy, PriorConfig{Seed: 22})
	if !ok {
		t.Fatal("prior did not fit")
	}
	cfg.Prior = prior
	if _, ok := fitSurrogates(obs, cfg); !ok {
		t.Fatal("prior-backed surrogate refused 3 successful observations")
	}
	// One success is still too few even with a prior.
	if _, ok := fitSurrogates(obs[:1], cfg); ok {
		t.Fatal("prior-backed surrogate fitted on a single observation")
	}
}

// TestFullObservations pins the shared donor/preload filter.
func TestFullObservations(t *testing.T) {
	obs := []Observation{
		{M: Metrics{Runtime: 1}},
		{M: Metrics{Runtime: 2, LowFidelity: true}},
		{M: Metrics{Runtime: 3, Failed: true}},
		{M: Metrics{Runtime: 4}},
	}
	got := FullObservations(obs)
	if len(got) != 2 || got[0].M.Runtime != 1 || got[1].M.Runtime != 4 {
		t.Fatalf("FullObservations = %+v", got)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
