package hypermapper

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMemoEvaluatorCaches(t *testing.T) {
	var calls atomic.Int64
	memo := NewMemoEvaluator(func(pt Point) Metrics {
		calls.Add(1)
		return Metrics{Runtime: pt[0] * 2}
	})

	a := Point{1.5, 2}
	b := Point{1.5, 3}
	if m := memo.Evaluate(a); m.Runtime != 3 {
		t.Fatalf("first eval: %v", m.Runtime)
	}
	if m := memo.Evaluate(a); m.Runtime != 3 {
		t.Fatalf("cached eval: %v", m.Runtime)
	}
	if m := memo.Evaluate(b); m.Runtime != 3 {
		t.Fatalf("distinct point: %v", m.Runtime)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("evaluator ran %d times, want 2", got)
	}
	hits, misses := memo.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats hits=%d misses=%d, want 1/2", hits, misses)
	}
	if memo.Len() != 2 {
		t.Fatalf("cache size %d, want 2", memo.Len())
	}
}

// TestMemoEvaluatorDistinguishesBitPatterns: the content address is the
// exact binary encoding, so points that merely print alike stay apart.
func TestMemoEvaluatorDistinguishesBitPatterns(t *testing.T) {
	var calls atomic.Int64
	memo := NewMemoEvaluator(func(pt Point) Metrics {
		calls.Add(1)
		return Metrics{}
	})
	a, b := 0.1, 0.2
	memo.Evaluate(Point{a + b}) // 0.30000000000000004
	memo.Evaluate(Point{0.3})
	if got := calls.Load(); got != 2 {
		t.Fatalf("0.1+0.2 and 0.3 collided (%d calls)", got)
	}
}

// TestMemoEvaluatorConcurrent hammers one memo from many goroutines
// (run under -race via make race).
func TestMemoEvaluatorConcurrent(t *testing.T) {
	memo := NewMemoEvaluator(func(pt Point) Metrics {
		return Metrics{Runtime: pt[0]}
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pt := Point{float64(i % 17)}
				if m := memo.Evaluate(pt); m.Runtime != pt[0] {
					t.Errorf("goroutine %d: wrong cached value", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if memo.Len() != 17 {
		t.Fatalf("cache size %d, want 17", memo.Len())
	}
}

// TestMemoEvaluatorCoalescesConcurrentMisses: two workers that miss on
// the same key at the same time must not both run the wrapped evaluator
// (under ParallelEvaluator that would be a duplicated full pipeline
// simulation). The first arrival runs; the rest block on the in-flight
// call and share its result, and Stats counts exactly one miss.
func TestMemoEvaluatorCoalescesConcurrentMisses(t *testing.T) {
	const goroutines = 8
	var calls atomic.Int64
	release := make(chan struct{})
	memo := NewMemoEvaluator(func(pt Point) Metrics {
		calls.Add(1)
		<-release // hold the evaluation in flight until every goroutine has arrived
		return Metrics{Runtime: pt[0] * 3}
	})

	pt := Point{7}
	var wg sync.WaitGroup
	results := make([]Metrics, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = memo.Evaluate(pt)
		}(g)
	}
	// Every goroutine registers (one miss, the rest coalesced hits)
	// before any can finish: wait for that state, then let the single
	// evaluation complete.
	for {
		hits, misses := memo.Stats()
		if hits+misses == goroutines {
			if misses != 1 {
				t.Fatalf("misses=%d before release, want 1", misses)
			}
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("evaluator ran %d times for one key, want 1", got)
	}
	hits, misses := memo.Stats()
	if hits != goroutines-1 || misses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want %d/1", hits, misses, goroutines-1)
	}
	for g, m := range results {
		if m.Runtime != 21 {
			t.Fatalf("goroutine %d got %v, want 21", g, m.Runtime)
		}
	}
	if memo.Len() != 1 {
		t.Fatalf("cache size %d, want 1", memo.Len())
	}
}

func TestMultiFidelityPromotes(t *testing.T) {
	var lowCalls, highCalls atomic.Int64
	mf := &MultiFidelity{
		Low: func(pt Point) Metrics {
			lowCalls.Add(1)
			return Metrics{Runtime: pt[0]}
		},
		High: func(pt Point) Metrics {
			highCalls.Add(1)
			return Metrics{Runtime: pt[0], Power: 42}
		},
		PromoteFraction: 0.5,
	}
	pts := []Point{{4}, {1}, {3}, {2}}
	out := mf.EvalAll(pts)
	if len(out) != 4 {
		t.Fatalf("got %d metrics", len(out))
	}
	// The two fastest low-fidelity candidates ({1} and {2}) are promoted:
	// only they carry the high evaluator's Power marker.
	for i, m := range out {
		promoted := m.Power == 42
		wantPromoted := pts[i][0] <= 2
		if promoted != wantPromoted {
			t.Fatalf("point %v promoted=%v", pts[i], promoted)
		}
		if m.Runtime != pts[i][0] {
			t.Fatalf("point %v metrics out of order", pts[i])
		}
	}
	if lowCalls.Load() != 4 || highCalls.Load() != 2 {
		t.Fatalf("low=%d high=%d, want 4/2", lowCalls.Load(), highCalls.Load())
	}
	low, high := mf.Stats()
	if low != 4 || high != 2 {
		t.Fatalf("stats low=%d high=%d", low, high)
	}
}

// TestLowFidelityExcludedFromFrontAndBest: subsampled measurements are
// surrogate fuel, not results — they must never win a front slot or a
// best-config query, however good they look.
func TestLowFidelityExcludedFromFrontAndBest(t *testing.T) {
	obs := []Observation{
		{M: Metrics{Runtime: 0.5, MaxATE: 0.5}},
		// Dominates everything, but measured on a reduced workload.
		{M: Metrics{Runtime: 0.01, MaxATE: 0.01, LowFidelity: true}},
	}
	front := ParetoFront(obs, RuntimeAccuracy)
	if len(front) != 1 || front[0].M.LowFidelity {
		t.Fatalf("low-fidelity observation entered the front: %+v", front)
	}
	best, ok := Best(obs, nil, func(m Metrics) float64 { return m.Runtime })
	if !ok || best.M.LowFidelity {
		t.Fatalf("low-fidelity observation won Best: %+v ok=%v", best.M, ok)
	}
}

// TestMultiFidelityMarksUnpromoted: every rung-one metric carries the
// LowFidelity mark; promoted ones are full measurements.
func TestMultiFidelityMarksUnpromoted(t *testing.T) {
	mf := &MultiFidelity{
		Low:             func(pt Point) Metrics { return Metrics{Runtime: pt[0]} },
		High:            func(pt Point) Metrics { return Metrics{Runtime: pt[0]} },
		PromoteFraction: 0.25,
	}
	out := mf.EvalAll([]Point{{3}, {1}, {2}, {4}})
	for i, m := range out {
		wantLow := i != 1 // {1} is the single promoted candidate
		if m.LowFidelity != wantLow {
			t.Fatalf("point %d LowFidelity=%v, want %v", i, m.LowFidelity, wantLow)
		}
	}
}

func TestMultiFidelityFailedRanksLast(t *testing.T) {
	mf := &MultiFidelity{
		Low: func(pt Point) Metrics {
			if pt[0] == 0 {
				return Metrics{Failed: true}
			}
			return Metrics{Runtime: pt[0]}
		},
		High:            func(pt Point) Metrics { return Metrics{Runtime: pt[0], Power: 1} },
		PromoteFraction: 0.34,
	}
	out := mf.EvalAll([]Point{{0}, {5}, {9}})
	if out[0].Power == 1 {
		t.Fatal("failed low-fidelity run was promoted")
	}
	if out[1].Power != 1 {
		t.Fatal("best non-failed candidate not promoted")
	}
}

// TestMultiFidelityDeterministicAcrossWorkers: the promoted set and the
// returned metrics are identical for any worker count, including rank
// ties (broken by batch position).
func TestMultiFidelityDeterministicAcrossWorkers(t *testing.T) {
	pts := make([]Point, 40)
	for i := range pts {
		pts[i] = Point{float64(i % 5), float64(i)} // many rank ties
	}
	run := func(workers int) []Metrics {
		mf := &MultiFidelity{
			Low:             func(pt Point) Metrics { return Metrics{Runtime: pt[0]} },
			High:            func(pt Point) Metrics { return Metrics{Runtime: pt[0], Power: pt[1]} },
			PromoteFraction: 0.2,
			Workers:         workers,
		}
		return mf.EvalAll(pts)
	}
	ref := run(1)
	for _, workers := range []int{4, 8} {
		got := run(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: metrics %d diverge", workers, i)
			}
		}
	}
}
