package hypermapper

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"slamgo/internal/rf"
)

// syntheticEvaluator mimics the SLAM trade-off surface cheaply:
// runtime grows with volume resolution³ and icp iterations, shrinks with
// compute ratio; accuracy (maxATE) improves with resolution and
// iterations, degrades with compute ratio and extreme mu.
func syntheticEvaluator(s *Space) Evaluator {
	iVR := s.Index("volume_resolution")
	iCSR := s.Index("compute_size_ratio")
	iMu := s.Index("mu")
	iIt := s.Index("icp_iters")
	return func(pt Point) Metrics {
		vr := pt[iVR]
		csr := pt[iCSR]
		mu := pt[iMu]
		it := pt[iIt]
		runtime := 1e-9*vr*vr*vr + 0.004*it/csr + 0.02/csr
		ate := 0.012 + 4.0/vr + 0.012*csr + 0.3*math.Abs(mu-0.1) + 0.08/it
		power := 0.5 + 40*runtime
		return Metrics{
			Runtime: runtime,
			MaxATE:  ate,
			Power:   power,
			Energy:  power * runtime,
		}
	}
}

func TestOptimizeFindsFront(t *testing.T) {
	s := testSpace()
	eval := syntheticEvaluator(s)
	cfg := DefaultOptimizerConfig()
	cfg.RandomSamples = 15
	cfg.ActiveIterations = 4
	cfg.BatchPerIteration = 4
	cfg.CandidatePool = 500
	var logs []string
	cfg.Log = func(s string) { logs = append(logs, s) }

	res, err := Optimize(s, eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RandomPhase < 10 {
		t.Fatalf("random phase %d", res.RandomPhase)
	}
	if len(res.Observations) <= res.RandomPhase {
		t.Fatal("no active-learning evaluations")
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	if len(logs) == 0 {
		t.Fatal("no progress logs")
	}
	// Every front member must be non-dominated.
	for i, a := range res.Front {
		for j, b := range res.Front {
			if i != j && Dominates(RuntimeAccuracy(b.M), RuntimeAccuracy(a.M)) {
				t.Fatal("front member dominated")
			}
		}
	}
}

func bestFeasibleRuntime(obs []Observation, limit float64) float64 {
	best := math.Inf(1)
	for _, o := range obs {
		if !o.M.Failed && o.M.MaxATE <= limit && o.M.Runtime < best {
			best = o.M.Runtime
		}
	}
	return best
}

func TestActiveLearningBeatsRandomSampling(t *testing.T) {
	// The core claim of Figure 2: under the accuracy limit, active
	// learning finds faster feasible configurations than random sampling
	// with the same evaluation budget.
	s := testSpace()
	eval := syntheticEvaluator(s)
	const limit = 0.1

	winsActive, winsRandom := 0, 0
	for seed := int64(1); seed <= 3; seed++ {
		cfg := DefaultOptimizerConfig()
		cfg.RandomSamples = 15
		cfg.ActiveIterations = 6
		cfg.BatchPerIteration = 5
		cfg.CandidatePool = 800
		cfg.Seed = seed
		cfg.ConstraintObjective = 1
		cfg.ConstraintLimit = limit
		res, err := Optimize(s, eval, cfg)
		if err != nil {
			t.Fatal(err)
		}
		budget := len(res.Observations)
		bActive := bestFeasibleRuntime(res.Observations, limit)

		// Average random-only baseline over several draws for stability.
		var bRandom float64
		const trials = 5
		for tr := int64(0); tr < trials; tr++ {
			rng := rand.New(rand.NewSource(100*seed + tr))
			var obs []Observation
			for _, pt := range s.SampleN(budget, rng) {
				obs = append(obs, Observation{X: pt, M: eval(pt)})
			}
			bRandom += bestFeasibleRuntime(obs, limit)
		}
		bRandom /= trials
		if bActive <= bRandom {
			winsActive++
		} else {
			winsRandom++
		}
	}
	if winsActive <= winsRandom {
		t.Fatalf("active learning won %d/%d constrained searches against random sampling",
			winsActive, winsActive+winsRandom)
	}
}

func TestOptimizeValidation(t *testing.T) {
	s := testSpace()
	if _, err := Optimize(s, nil, DefaultOptimizerConfig()); err == nil {
		t.Fatal("nil evaluator accepted")
	}
	cfg := DefaultOptimizerConfig()
	cfg.RandomSamples = 1
	if _, err := Optimize(s, syntheticEvaluator(s), cfg); err == nil {
		t.Fatal("1 random sample accepted")
	}
	bad := &Space{}
	if _, err := Optimize(bad, syntheticEvaluator(s), DefaultOptimizerConfig()); err == nil {
		t.Fatal("invalid space accepted")
	}
}

func TestOptimizeAllFailedRuns(t *testing.T) {
	s := testSpace()
	eval := func(Point) Metrics { return Metrics{Failed: true} }
	cfg := DefaultOptimizerConfig()
	cfg.RandomSamples = 8
	cfg.ActiveIterations = 2
	res, err := Optimize(s, eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) != 0 {
		t.Fatal("failed runs formed a front")
	}
}

func TestParetoFrontBasics(t *testing.T) {
	obs := []Observation{
		{M: Metrics{Runtime: 1, MaxATE: 1}},
		{M: Metrics{Runtime: 2, MaxATE: 2}},                   // dominated
		{M: Metrics{Runtime: 0.5, MaxATE: 3}},                 // trade-off
		{M: Metrics{Runtime: 3, MaxATE: 0.5}},                 // trade-off
		{M: Metrics{Runtime: 0.1, MaxATE: 0.1, Failed: true}}, // excluded
	}
	front := ParetoFront(obs, RuntimeAccuracy)
	if len(front) != 3 {
		t.Fatalf("front size %d", len(front))
	}
	// Sorted by runtime.
	for i := 1; i < len(front); i++ {
		if front[i].M.Runtime < front[i-1].M.Runtime {
			t.Fatal("front not sorted")
		}
	}
}

func TestDominates(t *testing.T) {
	if !Dominates([]float64{1, 1}, []float64{2, 2}) {
		t.Fatal("clear dominance missed")
	}
	if Dominates([]float64{1, 3}, []float64{2, 2}) {
		t.Fatal("trade-off dominated")
	}
	if Dominates([]float64{1, 1}, []float64{1, 1}) {
		t.Fatal("equal dominated")
	}
	if !Dominates([]float64{1, 1}, []float64{1, 2}) {
		t.Fatal("weak dominance missed")
	}
}

func TestBestAndConstraints(t *testing.T) {
	obs := []Observation{
		{M: Metrics{Runtime: 0.01, MaxATE: 0.2}}, // fast, inaccurate
		{M: Metrics{Runtime: 0.04, MaxATE: 0.04}},
		{M: Metrics{Runtime: 0.09, MaxATE: 0.01}},
		{M: Metrics{Runtime: 0.001, MaxATE: 0.001, Failed: true}},
	}
	best, ok := Best(obs, AccuracyLimit(0.05), func(m Metrics) float64 { return m.Runtime })
	if !ok {
		t.Fatal("no feasible found")
	}
	if best.M.Runtime != 0.04 {
		t.Fatalf("best runtime %v", best.M.Runtime)
	}
	// Conjunction.
	c := And(AccuracyLimit(0.05), func(m Metrics) bool { return m.Runtime < 0.05 })
	best, ok = Best(obs, c, func(m Metrics) float64 { return m.MaxATE })
	if !ok || best.M.Runtime != 0.04 {
		t.Fatalf("conjunction best %+v ok=%v", best.M, ok)
	}
	// Infeasible.
	if _, ok := Best(obs, AccuracyLimit(1e-6), func(m Metrics) float64 { return m.Runtime }); ok {
		t.Fatal("infeasible constraint satisfied")
	}
}

func TestHypervolumeProxy(t *testing.T) {
	obs := []Observation{
		{M: Metrics{Runtime: 0.5, MaxATE: 0.5}},
	}
	hv := HypervolumeProxy(obs, RuntimeAccuracy, []float64{1, 1})
	if math.Abs(hv-0.25) > 1e-12 {
		t.Fatalf("hv %v want 0.25", hv)
	}
	if HypervolumeProxy(nil, RuntimeAccuracy, []float64{1, 1}) != 0 {
		t.Fatal("empty front hv ≠ 0")
	}
	// Points beyond the reference contribute nothing.
	far := []Observation{{M: Metrics{Runtime: 2, MaxATE: 2}}}
	if HypervolumeProxy(far, RuntimeAccuracy, []float64{1, 1}) != 0 {
		t.Fatal("out-of-reference point counted")
	}
}

func TestKnowledgeExtraction(t *testing.T) {
	s := testSpace()
	eval := syntheticEvaluator(s)
	rng := rand.New(rand.NewSource(21))
	var obs []Observation
	for _, pt := range s.SampleN(300, rng) {
		obs = append(obs, Observation{X: pt, M: eval(pt)})
	}
	label, names := PaperClasses(0.08, 20, 2.0)
	tree, rules, err := Knowledge(s, obs, label, names, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules extracted")
	}
	// Rules must reference real parameter names.
	joined := ""
	for _, r := range rules {
		joined += r.String() + "\n"
	}
	referenced := false
	for _, n := range s.Names() {
		if strings.Contains(joined, n) {
			referenced = true
		}
	}
	if !referenced {
		t.Fatalf("no parameter named in rules:\n%s", joined)
	}
	// The tree should be decent on its own training data.
	var X [][]float64
	var y []int
	for _, o := range obs {
		X = append(X, o.X)
		y = append(y, label(o.M))
	}
	if acc := tree.Accuracy(X, y); acc < 0.6 {
		t.Fatalf("knowledge tree accuracy %v", acc)
	}
	if _, _, err := Knowledge(s, nil, label, names, 3); err == nil {
		t.Fatal("empty observations accepted")
	}
}

func TestPaperClassesLabeling(t *testing.T) {
	label, names := PaperClasses(0.05, 30, 3)
	if len(names) != 8 {
		t.Fatalf("classes %d", len(names))
	}
	all := label(Metrics{MaxATE: 0.01, Runtime: 1.0 / 60, Power: 1})
	if names[all] != "accurate+fast+efficient" {
		t.Fatalf("all-goals class %q", names[all])
	}
	none := label(Metrics{MaxATE: 0.5, Runtime: 1, Power: 9})
	if names[none] != "none" {
		t.Fatalf("no-goals class %q", names[none])
	}
	if label(Metrics{Failed: true}) != 0 {
		t.Fatal("failed run not class 0")
	}
	fast := label(Metrics{MaxATE: 0.5, Runtime: 0.01, Power: 9})
	if names[fast] != "fast" {
		t.Fatalf("fast class %q", names[fast])
	}
}

var _ = rf.DefaultForestConfig // keep import for documentation parity
