package evalstore

import (
	"fmt"
	"os"
	"sync"
	"syscall"
)

// Fault injection for the store's crash-safety suite, mirroring
// seqcache's and campaign.FaultStore's: faults fire on a deterministic
// schedule keyed by operation index, and faults that damage data damage
// the real files on disk — the store's own defect handling (miss on
// corrupt, atomic replace on rewrite, inline degradation on a dead
// store) is what is under test, not a simulation of it.

// FaultKind selects what an injected fault does.
type FaultKind int

const (
	// FaultWriteError fails the save with ENOSPC before anything is
	// written — the classic full disk.
	FaultWriteError FaultKind = iota
	// FaultShortWrite lets the save publish, then truncates the
	// published record to half its bytes and reports ENOSPC — a torn
	// write on a filesystem without atomic-rename guarantees (or a crash
	// straddling the flush). Later loads must see the damage as a miss.
	FaultShortWrite
	// FaultCorruptRead flips bytes of the on-disk record before the
	// read — bit rot / a half-synced page. The store must treat the
	// damaged record as a miss and silently re-simulate.
	FaultCorruptRead
	// FaultReadError fails the load with EIO without touching the file.
	FaultReadError
)

// FaultPlan schedules faults by zero-based operation index. Every save
// attempt counts one save op and every load attempt one load op —
// retried attempts advance the counters too, so a transient fault is
// one that schedules no fault at the retried index.
type FaultPlan struct {
	Save map[int]FaultKind
	Load map[int]FaultKind
}

// faultInjector applies a plan to a store's save/load paths. Safe for
// concurrent use; with concurrent evaluators the op order (and so the
// fault placement) depends on scheduling, so deterministic tests drive
// the store single-threaded.
type faultInjector struct {
	plan FaultPlan

	mu       sync.Mutex
	saveOps  int
	loadOps  int
	injected int
}

func (f *faultInjector) nextSave() (FaultKind, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	k, ok := f.plan.Save[f.saveOps]
	f.saveOps++
	if ok {
		f.injected++
	}
	return k, ok
}

func (f *faultInjector) nextLoad() (FaultKind, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	k, ok := f.plan.Load[f.loadOps]
	f.loadOps++
	if ok {
		f.injected++
	}
	return k, ok
}

// saveFault applies an injected save fault for path; fired reports
// whether the op schedules one (when true the caller must return err
// instead of writing).
func (f *faultInjector) saveFault(path string, write func() error) (fired bool, err error) {
	kind, ok := f.nextSave()
	if !ok {
		return false, nil
	}
	switch kind {
	case FaultShortWrite:
		// Let the real write land, then tear the published file: the
		// bytes that survive a short write are a prefix.
		if werr := write(); werr != nil {
			return true, werr
		}
		if info, serr := os.Stat(path); serr == nil {
			os.Truncate(path, info.Size()/2)
		}
		return true, fmt.Errorf("evalstore: fault injection: short write of %s: %w", path, syscall.ENOSPC)
	default: // FaultWriteError
		return true, fmt.Errorf("evalstore: fault injection: writing %s: %w", path, syscall.ENOSPC)
	}
}

// loadFault applies an injected load fault for path. A corrupt-read
// fault damages the real file in place and lets the real load proceed
// (err nil); a read-error fault makes the load fail with EIO.
func (f *faultInjector) loadFault(path string) error {
	kind, ok := f.nextLoad()
	if !ok {
		return nil
	}
	switch kind {
	case FaultCorruptRead:
		if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
			for i := range data {
				data[i] ^= 0x5a
			}
			os.WriteFile(path, data, 0o644)
		}
		return nil
	default: // FaultReadError
		return fmt.Errorf("evalstore: fault injection: reading %s: %w", path, syscall.EIO)
	}
}
