package evalstore

import (
	"bytes"
	"crypto/sha256"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"slamgo/internal/hypermapper"
	"slamgo/internal/sharedfs"
)

// open builds a store over dir with fast test plumbing.
func open(t *testing.T, dir string, mut func(*Options)) *Store {
	t.Helper()
	opts := Options{
		Dir:      dir,
		Worker:   "tester",
		LeaseTTL: time.Minute,
		Sleep:    func(time.Duration) {},
		Log:      t.Logf,
	}
	if mut != nil {
		mut(&opts)
	}
	return Open(opts)
}

// simulator returns an Evaluator serving fixed metrics per point and
// counting invocations.
func simulator(calls *int) hypermapper.Evaluator {
	return func(pt hypermapper.Point) hypermapper.Metrics {
		*calls++
		m := hypermapper.Metrics{Runtime: 1, MaxATE: 0.01, Power: 2, Energy: 3}
		for i, v := range pt {
			m.Runtime += v * float64(i+1)
			m.Energy += v
		}
		return m
	}
}

// noDebris fails the test if the store directory (or a shard) leaked
// temp files.
func noDebris(t *testing.T, dir string) {
	t.Helper()
	walk := func(d string) {
		ents, err := os.ReadDir(d)
		if err != nil {
			return
		}
		for _, e := range ents {
			if sharedfs.IsTempFile(e.Name()) {
				t.Fatalf("leaked temp file %s in %s", e.Name(), d)
			}
			if e.IsDir() {
				sub, _ := os.ReadDir(filepath.Join(d, e.Name()))
				for _, se := range sub {
					if sharedfs.IsTempFile(se.Name()) {
						t.Fatalf("leaked temp file %s in shard %s", se.Name(), e.Name())
					}
				}
			}
		}
	}
	walk(dir)
}

func TestEncodeDecodeRoundtripBitExact(t *testing.T) {
	cases := []hypermapper.Metrics{
		{Runtime: 0.0123, MaxATE: 0.456, Power: 2.5, Energy: 7.875},
		{Failed: true},
		{Runtime: 1e-300, MaxATE: 1e300, Power: -0.0, Energy: 0},
	}
	for _, m := range cases {
		data := Encode("ev-roundtrip", m)
		key, got, err := Decode(data)
		if err != nil {
			t.Fatalf("Decode(%+v): %v", m, err)
		}
		if key != "ev-roundtrip" || got != m {
			t.Fatalf("roundtrip %+v -> %q %+v", m, key, got)
		}
		// Encoding is a pure function: two encodes are byte-identical
		// (this is what makes concurrent store writers benign).
		if !bytes.Equal(data, Encode("ev-roundtrip", m)) {
			t.Fatalf("Encode is not deterministic")
		}
	}
}

func TestDecodeRejectsEveryDefect(t *testing.T) {
	good := Encode("k", hypermapper.Metrics{Runtime: 1})
	damage := map[string][]byte{
		"empty":     {},
		"truncated": good[:len(good)/2],
		"bit flip":  append(append([]byte{}, good[:10]...), append([]byte{good[10] ^ 0x01}, good[11:]...)...),
		"trailing":  append(append([]byte{}, good...), 0),
	}
	for name, data := range damage {
		if _, _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted damaged record", name)
		}
	}
	// A version bump orphans old records (checksum re-stamped so only
	// the version check can reject it).
	restamp := func(mut func(body []byte)) []byte {
		body := append([]byte{}, good[:len(good)-checksumSize]...)
		mut(body)
		sum := sha256.Sum256(body)
		return append(body, sum[:]...)
	}
	if _, _, err := Decode(restamp(func(b []byte) { b[len(formatMagic)]++ })); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version mismatch not rejected: %v", err)
	}
	// Unknown flag bits are future semantics this version cannot trust.
	if _, _, err := Decode(restamp(func(b []byte) { b[len(b)-1] |= 0x80 })); err == nil || !strings.Contains(err.Error(), "flags") {
		t.Errorf("unknown flags not rejected: %v", err)
	}
}

func TestSimulateOncePerStoreAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	pt := hypermapper.Point{1, 2, 3}
	calls := 0

	s1 := open(t, dir, nil)
	sc1 := s1.Scope("seq-x", "odroid", 1)
	m1 := sc1.Evaluate(pt, simulator(&calls))

	// A second store instance (a new process) loads the record.
	s2 := open(t, dir, nil)
	sc2 := s2.Scope("seq-x", "odroid", 1)
	m2 := sc2.Evaluate(pt, simulator(&calls))
	if calls != 1 {
		t.Fatalf("simulator called %d times, want 1 (simulate once per shared store)", calls)
	}
	if m1 != m2 {
		t.Fatalf("disk hit %+v differs from fresh simulation %+v", m2, m1)
	}
	st1, st2 := s1.Stats(), s2.Stats()
	if st1.Simulations != 1 || st1.Published != 1 || st2.DiskHits != 1 || st1.Degradations+st2.Degradations != 0 {
		t.Fatalf("stats = %+v / %+v", st1, st2)
	}
	noDebris(t, dir)
}

func TestScopeSeparationNoCrossTalk(t *testing.T) {
	dir := t.TempDir()
	pt := hypermapper.Point{1, 2, 3}
	s := open(t, dir, nil)
	base := s.Scope("seq-x", "odroid", 1)
	scopes := []*Scope{
		s.Scope("seq-y", "odroid", 1), // different sequence
		s.Scope("seq-x", "pixel", 1),  // different device
		s.Scope("seq-x", "odroid", 4), // different fidelity stride
	}
	seen := map[string]bool{base.Key(pt): true}
	for _, sc := range scopes {
		k := sc.Key(pt)
		if seen[k] {
			t.Fatalf("scope key collision: %s", k)
		}
		seen[k] = true
	}
	// Each scope simulates independently: 4 distinct keys, 4 runs.
	calls := 0
	base.Evaluate(pt, simulator(&calls))
	for _, sc := range scopes {
		sc.Evaluate(pt, simulator(&calls))
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4 (no cross-scope reuse)", calls)
	}
}

func TestFailedMetricsRoundTripAsFailed(t *testing.T) {
	// A deterministic evaluator failure (lost tracking) is an ordinary
	// result: cached, and answered as Failed — never laundered into a
	// feasible metric, never re-simulated.
	dir := t.TempDir()
	pt := hypermapper.Point{9}
	calls := 0
	fail := func(hypermapper.Point) hypermapper.Metrics {
		calls++
		return hypermapper.Metrics{Failed: true}
	}
	open(t, dir, nil).Scope("seq-x", "d", 1).Evaluate(pt, fail)
	m := open(t, dir, nil).Scope("seq-x", "d", 1).Evaluate(pt, fail)
	if calls != 1 {
		t.Fatalf("failed config re-simulated (calls=%d)", calls)
	}
	if !m.Failed {
		t.Fatalf("cached failure lost its Failed flag: %+v", m)
	}
	// And it never certifies feasibility: the feasible-observation
	// filter excludes it exactly as for an uncached run.
	obs := hypermapper.FullObservations([]hypermapper.Observation{{X: pt, M: m}})
	for _, o := range obs {
		if o.M.Failed {
			t.Fatalf("Failed observation passed the full-observation filter")
		}
	}
}

func TestLowFidelityNeverStoredAndNeverServed(t *testing.T) {
	dir := t.TempDir()
	pt := hypermapper.Point{5}
	calls := 0
	low := func(hypermapper.Point) hypermapper.Metrics {
		calls++
		return hypermapper.Metrics{Runtime: 1, LowFidelity: true}
	}
	s := open(t, dir, nil)
	sc := s.Scope("seq-x", "d", 1)
	sc.Evaluate(pt, low)
	if _, err := os.Stat(s.Path(sc.Key(pt))); !os.IsNotExist(err) {
		t.Fatalf("LowFidelity metrics were persisted")
	}
	// Defence in depth: a hand-planted LowFidelity record is a defect
	// the load rejects, so the lookup re-simulates and repairs.
	data := Encode(sc.Key(pt), hypermapper.Metrics{Runtime: 1, LowFidelity: true})
	os.MkdirAll(filepath.Dir(s.Path(sc.Key(pt))), 0o755)
	os.WriteFile(s.Path(sc.Key(pt)), data, 0o644)
	calls = 0
	m := open(t, dir, nil).Scope("seq-x", "d", 1).Evaluate(pt, simulator(&calls))
	if calls != 1 || m.LowFidelity {
		t.Fatalf("planted LowFidelity record served (calls=%d, m=%+v)", calls, m)
	}
}

func TestCorruptRecordSilentlyReSimulatedAndRepaired(t *testing.T) {
	dir := t.TempDir()
	pt := hypermapper.Point{1, 2}
	calls := 0
	s0 := open(t, dir, nil)
	s0.Scope("seq-x", "d", 1).Evaluate(pt, simulator(&calls))

	// Bit-rot the record in place.
	path := s0.Path(s0.Scope("seq-x", "d", 1).Key(pt))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	data[len(data)/2] ^= 0x5a
	os.WriteFile(path, data, 0o644)

	s := open(t, dir, nil)
	s.Scope("seq-x", "d", 1).Evaluate(pt, simulator(&calls))
	if calls != 2 {
		t.Fatalf("corrupt record not re-simulated (calls=%d)", calls)
	}
	if st := s.Stats(); st.Degradations != 0 {
		t.Fatalf("corruption counted as degradation: %+v (it is a plain miss)", st)
	}
	// The re-simulation repaired the record: a third instance disk-hits.
	s3 := open(t, dir, nil)
	s3.Scope("seq-x", "d", 1).Evaluate(pt, simulator(&calls))
	if st := s3.Stats(); st.DiskHits != 1 || calls != 2 {
		t.Fatalf("repair did not stick (stats=%+v calls=%d)", st, calls)
	}
	noDebris(t, dir)
}

func TestMisfiledRecordIsAMiss(t *testing.T) {
	dir := t.TempDir()
	calls := 0
	s := open(t, dir, nil)
	sc := s.Scope("seq-x", "d", 1)
	sc.Evaluate(hypermapper.Point{1}, simulator(&calls))
	src := s.Path(sc.Key(hypermapper.Point{1}))
	dst := s.Path(sc.Key(hypermapper.Point{2}))
	data, _ := os.ReadFile(src)
	os.MkdirAll(filepath.Dir(dst), 0o755)
	os.WriteFile(dst, data, 0o644)

	open(t, dir, nil).Scope("seq-x", "d", 1).Evaluate(hypermapper.Point{2}, simulator(&calls))
	if calls != 2 {
		t.Fatalf("misfiled record served as a hit (calls=%d)", calls)
	}
}

func TestSaveENOSPCDegradesInline(t *testing.T) {
	dir := t.TempDir()
	calls := 0
	s := open(t, dir, nil)
	plan := FaultPlan{Save: map[int]FaultKind{}}
	for i := 0; i < 8; i++ {
		plan.Save[i] = FaultWriteError
	}
	s.InjectFaults(plan)
	s.Scope("seq-x", "d", 1).Evaluate(hypermapper.Point{1}, simulator(&calls))
	st := s.Stats()
	if calls != 1 || st.Simulations != 1 || st.Degradations != 1 || st.Published != 0 {
		t.Fatalf("ENOSPC path wrong (calls=%d stats=%+v)", calls, st)
	}
	if s.Injected() == 0 {
		t.Fatalf("fault plan never fired")
	}
	noDebris(t, dir)
}

func TestTransientShortWriteRetriesToSuccess(t *testing.T) {
	dir := t.TempDir()
	pt := hypermapper.Point{1}
	calls := 0
	s := open(t, dir, nil)
	s.InjectFaults(FaultPlan{Save: map[int]FaultKind{0: FaultShortWrite}})
	s.Scope("seq-x", "d", 1).Evaluate(pt, simulator(&calls))
	// The retried save replaced the torn file whole.
	s2 := open(t, dir, nil)
	s2.Scope("seq-x", "d", 1).Evaluate(pt, simulator(&calls))
	if calls != 1 {
		t.Fatalf("torn write not healed by retry (calls=%d)", calls)
	}
	if st := s2.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	noDebris(t, dir)
}

func TestReadErrorDegradesInline(t *testing.T) {
	dir := t.TempDir()
	pt := hypermapper.Point{1}
	calls := 0
	open(t, dir, nil).Scope("seq-x", "d", 1).Evaluate(pt, simulator(&calls))

	s := open(t, dir, nil)
	plan := FaultPlan{Load: map[int]FaultKind{}}
	for i := 0; i < 8; i++ {
		plan.Load[i] = FaultReadError
	}
	s.InjectFaults(plan)
	s.Scope("seq-x", "d", 1).Evaluate(pt, simulator(&calls))
	if calls != 2 {
		t.Fatalf("EIO path did not simulate inline (calls=%d)", calls)
	}
	if st := s.Stats(); st.Degradations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeadSimulatorLeaseTakeover(t *testing.T) {
	dir := t.TempDir()
	pt := hypermapper.Point{1}
	calls := 0

	// A simulator that died an hour ago still holds the key's lease.
	s := open(t, dir, func(o *Options) { o.LeaseTTL = 50 * time.Millisecond })
	key := s.Scope("seq-x", "d", 1).Key(pt)
	past := func() time.Time { return time.Now().Add(-time.Hour) }
	dead := sharedfs.NewLeaseManager(dir, "dead-simulator", time.Minute, past)
	if _, ok, err := dead.TryAcquire(key); !ok || err != nil {
		t.Fatalf("planting stale lease: %v", err)
	}

	s.Scope("seq-x", "d", 1).Evaluate(pt, simulator(&calls))
	if calls != 1 {
		t.Fatalf("takeover did not simulate (calls=%d)", calls)
	}
	if st := s.Stats(); st.Simulations != 1 || st.Published != 1 || st.Degradations != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The takeover released the lease after publishing.
	if _, err := os.Stat(filepath.Join(dir, key+".lease")); !os.IsNotExist(err) {
		t.Fatalf("lease not released after takeover")
	}
	noDebris(t, dir)
}

func TestLiveHolderPublicationArrivesDuringPoll(t *testing.T) {
	dir := t.TempDir()
	pt := hypermapper.Point{1}
	calls := 0
	want := hypermapper.Metrics{Runtime: 42, MaxATE: 0.01, Power: 1, Energy: 2}

	var s *Store
	published := false
	s = open(t, dir, func(o *Options) {
		o.LeaseTTL = time.Hour
		o.Sleep = func(time.Duration) {
			if !published {
				published = true
				key := s.Scope("seq-x", "d", 1).Key(pt)
				os.MkdirAll(filepath.Dir(s.Path(key)), 0o755)
				os.WriteFile(s.Path(key), Encode(key, want), 0o644)
			}
		}
	})
	peer := sharedfs.NewLeaseManager(dir, "peer", time.Hour, nil)
	if _, ok, err := peer.TryAcquire(s.Scope("seq-x", "d", 1).Key(pt)); !ok || err != nil {
		t.Fatalf("planting live lease: %v", err)
	}
	m := s.Scope("seq-x", "d", 1).Evaluate(pt, simulator(&calls))
	if calls != 0 || m != want {
		t.Fatalf("peer's record not used (calls=%d, m=%+v)", calls, m)
	}
	if st := s.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWedgedHolderBoundedThenInline(t *testing.T) {
	dir := t.TempDir()
	pt := hypermapper.Point{1}
	calls := 0

	// A holder that heartbeats forever but never publishes: TTL never
	// expires, nothing to load. The poll budget must bound the wait.
	s := open(t, dir, func(o *Options) { o.LeaseTTL = time.Hour })
	peer := sharedfs.NewLeaseManager(dir, "wedged", time.Hour, nil)
	if _, ok, err := peer.TryAcquire(s.Scope("seq-x", "d", 1).Key(pt)); !ok || err != nil {
		t.Fatalf("planting wedged lease: %v", err)
	}
	s.Scope("seq-x", "d", 1).Evaluate(pt, simulator(&calls))
	if calls != 1 {
		t.Fatalf("wedged holder did not degrade to inline (calls=%d)", calls)
	}
	if st := s.Stats(); st.Degradations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPanickingSimulationReleasesLease(t *testing.T) {
	dir := t.TempDir()
	pt := hypermapper.Point{1}
	s := open(t, dir, nil)
	key := s.Scope("seq-x", "d", 1).Key(pt)
	func() {
		defer func() { recover() }()
		s.Scope("seq-x", "d", 1).Evaluate(pt, func(hypermapper.Point) hypermapper.Metrics {
			panic("simulated cell panic")
		})
		t.Fatalf("panic swallowed")
	}()
	if _, err := os.Stat(filepath.Join(dir, key+".lease")); !os.IsNotExist(err) {
		t.Fatalf("panicking simulation leaked its lease (would wedge cooperating workers)")
	}
	// The key still works afterwards.
	calls := 0
	s.Scope("seq-x", "d", 1).Evaluate(pt, simulator(&calls))
	if calls != 1 {
		t.Fatalf("key wedged after panic (calls=%d)", calls)
	}
}

func TestEvictionIsDeterministicAndSparesNewestWrite(t *testing.T) {
	dir := t.TempDir()
	calls := 0
	pts := []hypermapper.Point{{1}, {2}, {3}}
	one := int64(len(Encode("ev-0123456789012345678901234567890123456789", hypermapper.Metrics{})))
	// Budget for about two records: publishing the third must evict
	// exactly one, the lexicographically smallest key with the fresh
	// write exempt.
	s := open(t, dir, func(o *Options) { o.MaxBytes = 2*one + one/2 })
	sc := s.Scope("seq-x", "d", 1)
	var keys []string
	for _, pt := range pts {
		keys = append(keys, sc.Key(pt))
		sc.Evaluate(pt, simulator(&calls))
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (stats %+v)", st.Evictions, st)
	}
	sorted := append([]string{}, keys...)
	sort.Strings(sorted)
	victim := sorted[0]
	if victim == keys[2] {
		victim = sorted[1] // newest write exempt
	}
	if _, err := os.Stat(s.Path(victim)); !os.IsNotExist(err) {
		t.Fatalf("victim %s should have been evicted", victim)
	}
	survivors := 0
	for _, k := range keys {
		if _, err := os.Stat(s.Path(k)); err == nil {
			survivors++
		}
	}
	if survivors != 2 {
		t.Fatalf("survivors = %d, want 2", survivors)
	}
	// An evicted record is a plain miss for the next process.
	before := calls
	s2 := open(t, dir, func(o *Options) { o.MaxBytes = 1 << 20 })
	for _, pt := range pts {
		s2.Scope("seq-x", "d", 1).Evaluate(pt, simulator(&calls))
	}
	if calls != before+1 {
		t.Fatalf("re-run simulated %d, want exactly the evicted one", calls-before)
	}
}

func TestDebrisSweptOnOpen(t *testing.T) {
	dir := t.TempDir()
	os.MkdirAll(filepath.Join(dir, "ab"), 0o755)
	old := time.Now().Add(-time.Hour)
	tmpRoot := filepath.Join(dir, ".tmp-ev-zzz")
	tmpShard := filepath.Join(dir, "ab", ".tmp-ev-yyy")
	for _, p := range []string{tmpRoot, tmpShard} {
		os.WriteFile(p, []byte("half a record"), 0o644)
		os.Chtimes(p, old, old)
	}
	dead := sharedfs.NewLeaseManager(dir, "dead", time.Minute, func() time.Time { return old })
	dead.TryAcquire("ev-dead")

	open(t, dir, nil)
	for _, p := range []string{tmpRoot, tmpShard, filepath.Join(dir, "ev-dead.lease")} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("debris %s survived open", p)
		}
	}
}

func TestUnusableDirectoryDegradesEverything(t *testing.T) {
	parent := t.TempDir()
	blocked := filepath.Join(parent, "occupied")
	os.WriteFile(blocked, []byte("not a directory"), 0o644)
	calls := 0
	s := open(t, blocked, nil)
	s.Scope("seq-x", "d", 1).Evaluate(hypermapper.Point{1}, simulator(&calls))
	if calls != 1 {
		t.Fatalf("broken dir did not simulate inline (calls=%d)", calls)
	}
	if st := s.Stats(); st.Degradations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNaNPointSimulatesUncached(t *testing.T) {
	dir := t.TempDir()
	nan := hypermapper.Point{math.NaN(), 1}
	calls := 0
	s := open(t, dir, nil)
	s.Scope("seq-x", "d", 1).Evaluate(nan, simulator(&calls))
	s.Scope("seq-x", "d", 1).Evaluate(nan, simulator(&calls))
	if calls != 2 {
		t.Fatalf("NaN point was cached (calls=%d)", calls)
	}
	if st := s.Stats(); st.Published != 0 {
		t.Fatalf("NaN point was persisted: %+v", st)
	}
}

func TestTieredMemoIntegration(t *testing.T) {
	// The full stack as campaigns wire it: memo over scope over
	// simulator. Memory hits stay in the memo; disk hits and
	// simulations split in the store.
	dir := t.TempDir()
	pt := hypermapper.Point{1, 2}
	calls := 0
	s1 := open(t, dir, nil)
	memo1 := hypermapper.NewTieredMemoEvaluator(simulator(&calls), s1.Scope("seq-x", "d", 1))
	memo1.Evaluate(pt)
	memo1.Evaluate(pt)
	if h, m := memo1.Stats(); h != 1 || m != 1 {
		t.Fatalf("memo1 stats = %d/%d", h, m)
	}
	if st := s1.Stats(); st.Simulations != 1 || st.DiskHits != 0 {
		t.Fatalf("store1 stats = %+v", st)
	}

	s2 := open(t, dir, nil)
	memo2 := hypermapper.NewTieredMemoEvaluator(simulator(&calls), s2.Scope("seq-x", "d", 1))
	memo2.Evaluate(pt)
	if calls != 1 {
		t.Fatalf("cross-process tier did not reuse (calls=%d)", calls)
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.Simulations != 0 {
		t.Fatalf("store2 stats = %+v", st)
	}
}

func TestRecordsAreSharded(t *testing.T) {
	dir := t.TempDir()
	calls := 0
	s := open(t, dir, nil)
	sc := s.Scope("seq-x", "d", 1)
	for i := 0; i < 16; i++ {
		sc.Evaluate(hypermapper.Point{float64(i)}, simulator(&calls))
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if !e.IsDir() {
			t.Fatalf("record %s published flat in the root (want sharded)", e.Name())
		}
		if len(e.Name()) != 2 {
			t.Fatalf("unexpected root entry %s", e.Name())
		}
	}
	if len(ents) == 0 {
		t.Fatalf("no shards created")
	}
}
