package evalstore

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"math"

	"slamgo/internal/hypermapper"
)

// The evaluation-record format. A record is the full Metrics of one
// simulated configuration — four float64s and two flags — stored with
// nothing quantised and nothing derived: a store hit must be
// bit-identical to a fresh simulation, or cached and uncached campaigns
// diverge in their last floating-point bits and the reports stop
// matching.
//
// Layout (all little-endian):
//
//	magic "EVR1" | u32 version | u32 len(key) | key
//	f64 runtime | f64 maxATE | f64 power | f64 energy
//	u8 flags (1 Failed, 2 LowFidelity)
//	sha256 of everything above (32 bytes)
//
// The embedded key makes a record copied or renamed to the wrong slot
// unloadable as something it is not (same trick as the checkpoint
// store's envelope and the seqcache artifact); the trailing checksum
// catches truncation, torn writes and bit rot. Decode treats *every*
// defect as data damage — the caller maps that to a miss and
// re-simulates, because re-simulating is always safe while trusting a
// damaged record never is.

const (
	formatMagic   = "EVR1"
	formatVersion = 1

	flagFailed      = 1
	flagLowFidelity = 2

	checksumSize = 32

	// Sanity cap applied before any allocation during decode, so a
	// corrupt length field costs an error, not an OOM.
	maxKeyLen = 1 << 10
)

// Encode serialises one evaluation record keyed by key. Encoding is a
// pure function of its inputs — every process simulating the same key
// produces identical bytes (the evaluator purity contract), which is
// what makes concurrent store writers benign: the last atomic rename
// wins and the winner is indistinguishable from the loser.
func Encode(key string, m hypermapper.Metrics) []byte {
	buf := make([]byte, 0, len(formatMagic)+4+4+len(key)+4*8+1+checksumSize)
	buf = append(buf, formatMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, formatVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	for _, v := range [4]float64{m.Runtime, m.MaxATE, m.Power, m.Energy} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	var flags uint8
	if m.Failed {
		flags |= flagFailed
	}
	if m.LowFidelity {
		flags |= flagLowFidelity
	}
	buf = append(buf, flags)
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// Decode parses an evaluation record, verifying the checksum first and
// every structural invariant after. The returned key is the one the
// record was encoded under; callers must check it against the slot they
// loaded from. Any error means the bytes cannot be trusted — the caller
// should treat the file as a miss, never as an I/O fault.
func Decode(data []byte) (key string, m hypermapper.Metrics, err error) {
	if len(data) < len(formatMagic)+4+4+checksumSize {
		return "", m, fmt.Errorf("evalstore: record truncated (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-checksumSize], data[len(data)-checksumSize:]
	sum := sha256.Sum256(body)
	if subtle.ConstantTimeCompare(sum[:], tail) != 1 {
		return "", m, fmt.Errorf("evalstore: record checksum mismatch")
	}
	off := 0
	take := func(n int) ([]byte, error) {
		if off+n > len(body) {
			return nil, fmt.Errorf("evalstore: record truncated at offset %d", off)
		}
		b := body[off : off+n]
		off += n
		return b, nil
	}
	magic, err := take(len(formatMagic))
	if err != nil || string(magic) != formatMagic {
		return "", m, fmt.Errorf("evalstore: bad record magic")
	}
	vb, err := take(4)
	if err != nil {
		return "", m, err
	}
	if v := binary.LittleEndian.Uint32(vb); v != formatVersion {
		return "", m, fmt.Errorf("evalstore: record version %d, want %d", v, formatVersion)
	}
	kb, err := take(4)
	if err != nil {
		return "", m, err
	}
	klen := binary.LittleEndian.Uint32(kb)
	if klen > maxKeyLen {
		return "", m, fmt.Errorf("evalstore: implausible key length %d", klen)
	}
	kd, err := take(int(klen))
	if err != nil {
		return "", m, err
	}
	key = string(kd)
	var vals [4]float64
	for i := range vals {
		b, err := take(8)
		if err != nil {
			return "", m, err
		}
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(b))
	}
	fb, err := take(1)
	if err != nil {
		return "", m, err
	}
	if off != len(body) {
		return "", m, fmt.Errorf("evalstore: %d trailing bytes after record", len(body)-off)
	}
	flags := fb[0]
	if flags&^(flagFailed|flagLowFidelity) != 0 {
		return "", m, fmt.Errorf("evalstore: unknown record flags %#x", flags)
	}
	m = hypermapper.Metrics{
		Runtime: vals[0], MaxATE: vals[1], Power: vals[2], Energy: vals[3],
		Failed:      flags&flagFailed != 0,
		LowFidelity: flags&flagLowFidelity != 0,
	}
	return key, m, nil
}
