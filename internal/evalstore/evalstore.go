// Package evalstore is the persistent, content-addressed,
// fault-tolerant store of simulation results. A full-fidelity SLAM
// simulation dwarfs the cost of reading back its four metrics, and a
// campaign grid re-simulates the same configurations once per process,
// once per run, once per follow-up study: the in-memory
// hypermapper.MemoEvaluator forgets everything at process exit. This
// package is the disk tier behind those memos — every evaluation result
// is keyed by a canonical content hash of everything that determines it
// (the exact point encoding, the rendered sequence's content key, the
// device identity, the fidelity stride and a pipeline version), so
// resumed runs, cooperating worker processes and entirely separate
// campaigns sharing a store directory each simulate a distinct
// configuration exactly once, anywhere.
//
// The design inherits the rendered-sequence cache's crash-safety
// contract wholesale (both are built on internal/sharedfs):
//
//   - Writes are atomic (temp file + fsync + rename) and every writer
//     of a key produces identical bytes (the evaluator purity
//     contract), so concurrent writers — racing goroutines or racing
//     processes — are benign: the last complete rename wins and the
//     winner is indistinguishable from the loser.
//   - Every record embeds its key and a sha256 checksum; a load
//     verifies both. Any defect — absent, truncated, torn, bit-rotted,
//     version-mismatched, misfiled — is a miss that re-simulation
//     repairs in place, never an error and never bad metrics.
//   - Real I/O faults ride the bounded deterministic retry ladder.
//   - Concurrent misses on one key coalesce across processes via the
//     worker-lease protocol (heartbeat + TTL takeover, so a SIGKILLed
//     simulator's key is taken over instead of wedging the campaign).
//
// Every store failure mode degrades to inline simulation: an unwritable
// directory, an unreadable record after retries, an ENOSPC save, a
// wedged lease — each is logged, counted in Stats.Degradations, and
// answered by running the evaluator directly. The store can lose every
// byte it owns and the campaign still completes with an identical
// report, just slower. No store failure is ever fatal.
//
// Fidelity invariants: the fidelity stride is part of every key, so a
// subsampled screening result can never answer a full-fidelity lookup
// (different key) — and as defence in depth, metrics flagged
// LowFidelity are never published and a record carrying the flag is
// rejected on load as a defect. Metrics flagged Failed are ordinary
// deterministic evaluator outcomes (lost tracking, invalid
// configuration) and round-trip exactly: a Failed record answers a
// lookup as Failed, which callers treat identically to a fresh failed
// simulation — it never certifies feasibility and never enters
// fronts/Best (hypermapper.FullObservations excludes it, exactly as for
// an uncached run). Quarantine-synthesised Failed metrics (a panicking
// cell) never reach the store: the panic unwinds past the publish.
package evalstore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"slamgo/internal/hypermapper"
	"slamgo/internal/sharedfs"
)

// Stats counts store activity since Open. Simulations counts evaluator
// invocations issued by the store (cache misses); DiskHits counts
// verified record loads; Degradations counts inline fallbacks — the
// acceptance number for "each distinct configuration simulated exactly
// once per shared store" is the sum of Simulations over every
// cooperating process.
type Stats struct {
	Simulations  int `json:"simulations"`
	DiskHits     int `json:"disk_hits"`
	Published    int `json:"published"`
	Degradations int `json:"degradations"`
	Evictions    int `json:"evictions"`
}

// Options configures a store.
type Options struct {
	// Dir is the shared store directory; empty means disabled (every
	// Evaluate simulates inline, nothing touches disk — callers that
	// want "off" should not construct a store at all, but an empty Dir
	// is safe).
	Dir string
	// Worker identifies this process in lease files. Defaults to
	// "pid<pid>" — lease contents never influence results, so a
	// non-deterministic default is safe.
	Worker string
	// LeaseTTL bounds how long a dead simulator can block a key before
	// takeover. Default 10s.
	LeaseTTL time.Duration
	// MaxBytes bounds the on-disk size; 0 means unbounded. Enforced
	// after saves by deterministic eviction (lexicographic key order,
	// newest write exempt), so cooperating processes evict identically.
	MaxBytes int64
	// Retry is the transient-fault ladder; zero value means
	// sharedfs.DefaultRetryPolicy.
	Retry sharedfs.RetryPolicy
	// Log (may be nil) receives degradation and hygiene messages.
	Log func(format string, args ...any)
	// Sleep (nil = time.Sleep) paces retries and lease polls; tests
	// inject a no-op to stay fast.
	Sleep func(time.Duration)
	// Now (nil = time.Now) is the lease clock; tests inject it to
	// simulate dead workers.
	Now func() time.Time
}

// maxLeasePolls bounds how long an Evaluate call waits on another
// worker's live lease before degrading to inline simulation: a holder
// that heartbeats forever without ever publishing (wedged, not dead —
// TTL takeover never triggers) must not wedge this process too. At the
// poll ladder's 200ms cap this is ~2 minutes of real waiting.
const maxLeasePolls = 600

// Store is a content-addressed simulation-result store. Safe for
// concurrent use by any number of goroutines; any number of processes
// may share its directory. Records are sharded across 256
// two-hex-character subdirectories by key prefix so a long-lived store
// holding every configuration a team ever simulated stays
// filesystem-friendly; lease files live flat in the root where the
// debris sweeper finds them.
type Store struct {
	dir      string
	maxBytes int64
	ttl      time.Duration
	retry    sharedfs.RetryPolicy
	logf     func(format string, args ...any)
	sleep    func(time.Duration)
	leases   *sharedfs.LeaseManager
	faults   faultInjector

	mu        sync.Mutex
	broken    bool  // directory unusable: every Evaluate degrades to inline
	diskBytes int64 // running on-disk estimate; authoritative rescan on evict
	stats     Stats
}

// Open opens (creating if needed) a store over opts.Dir, sweeping the
// debris dead simulators leave behind (stale temp files, orphaned
// leases). Open never fails: an unusable directory is a degraded store,
// not a broken campaign — every subsequent Evaluate simulates inline.
func Open(opts Options) *Store {
	if opts.Worker == "" {
		opts.Worker = fmt.Sprintf("pid%d", os.Getpid())
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 10 * time.Second
	}
	if opts.Retry == (sharedfs.RetryPolicy{}) {
		opts.Retry = sharedfs.DefaultRetryPolicy()
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Store{
		dir:      opts.Dir,
		maxBytes: opts.MaxBytes,
		ttl:      opts.LeaseTTL,
		retry:    opts.Retry,
		logf:     logf,
		sleep:    opts.Sleep,
	}
	if s.dir != "" {
		if err := os.MkdirAll(s.dir, 0o755); err != nil {
			s.logf("evalstore: %v (store disabled, simulating inline)", err)
			s.broken = true
			return s
		}
		sharedfs.SweepDebris(s.dir, sharedfs.DefaultDebrisAge, opts.Now)
		for _, shard := range s.shardDirs() {
			sharedfs.SweepDebris(shard, sharedfs.DefaultDebrisAge, opts.Now)
		}
		s.leases = sharedfs.NewLeaseManager(s.dir, opts.Worker, opts.LeaseTTL, opts.Now)
		if s.maxBytes > 0 {
			s.diskBytes = s.scanBytes()
		}
	}
	return s
}

// Dir returns the store directory ("" when disabled).
func (s *Store) Dir() string { return s.dir }

// Path returns where key's record lives (test and tooling surface —
// the fault suite and the smoke test damage files in place).
func (s *Store) Path(key string) string {
	return filepath.Join(s.dir, shardOf(key), key+".evr")
}

// shardOf maps a key onto its two-hex-character shard directory.
func shardOf(key string) string {
	h := strings.TrimPrefix(key, "ev-")
	if len(h) < 2 {
		return "xx"
	}
	return h[:2]
}

// shardDirs lists the store's existing shard subdirectories in
// lexicographic order.
func (s *Store) shardDirs() []string {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range ents {
		if e.IsDir() && len(e.Name()) == 2 {
			out = append(out, filepath.Join(s.dir, e.Name()))
		}
	}
	return out
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// InjectFaults arms the fault plan (crash-safety tests only).
func (s *Store) InjectFaults(plan FaultPlan) { s.faults.plan = plan }

// Injected reports how many injected faults have fired — tests assert
// it to prove the schedule actually exercised the recovery paths.
func (s *Store) Injected() int {
	s.faults.mu.Lock()
	defer s.faults.mu.Unlock()
	return s.faults.injected
}

// bump mutates the stats under the store lock.
func (s *Store) bump(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// Scope binds the store to one evaluation context: the sequence content
// key (core.Scale.CacheKey — hashes every render input), the device
// identity, and the fidelity stride. Every record key is a sha256 over
// this context plus the point's canonical encoding, so results can
// never leak between scenarios, devices or fidelities — distinct
// contexts are distinct key spaces in one shared directory. A Scope is
// a hypermapper.ResultTier: plug it into NewTieredMemoEvaluator.
func (s *Store) Scope(seqKey, device string, stride int) *Scope {
	if stride < 1 {
		stride = 1
	}
	prefix := fmt.Sprintf("evalstore-v%d|seq=%s|dev=%s|stride=%d|",
		formatVersion, seqKey, device, stride)
	return &Scope{store: s, prefix: []byte(prefix)}
}

// Scope is one evaluation context's view of a Store. Safe for
// concurrent use.
type Scope struct {
	store  *Store
	prefix []byte
}

// Key returns the record key for pt in this scope (test and tooling
// surface). Keys are "ev-" plus 40 hex characters of the sha256 over
// the scope prefix and the point's canonical encoding; the encoding is
// prefix-free per scope (fixed 8 bytes per coordinate after a
// delimiter-terminated header), so distinct points, scenarios, devices
// and strides can never share a key.
func (sc *Scope) Key(pt hypermapper.Point) string {
	h := sha256.New()
	h.Write(sc.prefix)
	h.Write(hypermapper.AppendKey(make([]byte, 0, 8*len(pt)), pt))
	return "ev-" + hex.EncodeToString(h.Sum(nil))[:40]
}

// Evaluate returns pt's metrics, simulating via simulate only when no
// cooperating process has published them. The degradation ladder, in
// order: verified disk hit → lease-coordinated simulate-and-publish →
// inline simulation (store failed; logged and counted, never fatal).
// The in-memory layer lives in the MemoEvaluator wrapping this scope,
// so repeated lookups of one point within a process never reach here.
func (sc *Scope) Evaluate(pt hypermapper.Point, simulate hypermapper.Evaluator) hypermapper.Metrics {
	s := sc.store
	if !hypermapper.KeyablePoint(pt) {
		// No canonical key exists for a NaN coordinate; simulate
		// uncached. Spaces are finite ordinal/integer grids so this is
		// unreachable in practice — guarded so a future space change
		// degrades instead of corrupting the store.
		s.logf("evalstore: point has NaN coordinate (no canonical key); simulating inline")
		s.bump(func(st *Stats) { st.Simulations++; st.Degradations++ })
		return simulate(pt)
	}
	key := sc.Key(pt)
	s.mu.Lock()
	broken := s.broken
	s.mu.Unlock()
	if s.dir == "" {
		// Disabled store: simulating here is the store working as
		// configured, not a degradation.
		s.bump(func(st *Stats) { st.Simulations++ })
		return simulate(pt)
	}
	if broken {
		return s.inline(key, pt, simulate, "store directory unusable")
	}
	if m, hit, err := s.load(key); hit {
		s.bump(func(st *Stats) { st.DiskHits++ })
		return m
	} else if err != nil {
		return s.inline(key, pt, simulate, fmt.Sprintf("load failed: %v", err))
	}
	// Cross-process single-flight: claim the key's lease and simulate,
	// or watch a live holder until its record appears / its lease
	// expires (TTL takeover of dead simulators). A holder that never
	// publishes and never dies is bounded by maxLeasePolls → inline
	// degradation.
	backoff := sharedfs.NewPollBackoff()
	for polls := 0; ; polls++ {
		lease, acquired, err := s.leases.TryAcquire(key)
		if err != nil {
			return s.inline(key, pt, simulate, fmt.Sprintf("lease failed: %v", err))
		}
		if acquired {
			var m hypermapper.Metrics
			func() {
				// deferred so a panicking simulation (campaign cells
				// quarantine those) still releases the lease instead of
				// heartbeating a key that will never be published.
				stop := sharedfs.Heartbeat(lease, s.ttl, s.logf)
				defer stop()
				m = s.simulateAndPublish(key, pt, simulate)
			}()
			return m
		}
		if polls >= maxLeasePolls {
			return s.inline(key, pt, simulate, "simulator holding the lease never published")
		}
		s.sleep(backoff.Next())
		if m, hit, err := s.load(key); hit {
			s.bump(func(st *Stats) { st.DiskHits++ })
			return m
		} else if err != nil {
			return s.inline(key, pt, simulate, fmt.Sprintf("load failed: %v", err))
		}
	}
}

// inline is the bottom of the degradation ladder: simulate without the
// store, log why, count it. Never fatal.
func (s *Store) inline(key string, pt hypermapper.Point, simulate hypermapper.Evaluator, why string) hypermapper.Metrics {
	s.logf("evalstore: %s: %s; degrading to inline simulation", key, why)
	m := simulate(pt)
	s.bump(func(st *Stats) { st.Simulations++; st.Degradations++ })
	return m
}

// simulateAndPublish runs the evaluator for key and publishes the
// record. A failed publish degrades (the freshly computed metrics are
// still returned — only the *store* failed) rather than failing the
// caller.
func (s *Store) simulateAndPublish(key string, pt hypermapper.Point, simulate hypermapper.Evaluator) hypermapper.Metrics {
	m := simulate(pt)
	s.bump(func(st *Stats) { st.Simulations++ })
	if m.LowFidelity {
		// Never persisted: cached metrics answer future probes as
		// full-fidelity truths for their stride, and the LowFidelity
		// marker exists precisely to say "this is not that". In the
		// current pipeline the flag is applied above the memo layer
		// (MultiFidelity marks unpromoted batch entries after EvalAll),
		// so evaluator output reaching here never carries it — this is
		// the same defence-in-depth as Preload's filter.
		return m
	}
	if err := s.save(key, m); err != nil {
		s.logf("evalstore: %s: save failed: %v; metrics served inline", key, err)
		s.bump(func(st *Stats) { st.Degradations++ })
		return m
	}
	s.bump(func(st *Stats) { st.Published++ })
	s.noteWritten(key, int64(len(Encode(key, m))))
	return m
}

// save publishes key's record atomically, riding the retry ladder over
// transient faults. Each attempt is one fault-plan op.
func (s *Store) save(key string, m hypermapper.Metrics) error {
	data := Encode(key, m)
	path := s.Path(key)
	shard := filepath.Dir(path)
	return s.retry.Retry("evalstore: saving "+key, s.sleep, func() error {
		write := func() error {
			if err := os.MkdirAll(shard, 0o755); err != nil {
				return err
			}
			return sharedfs.WriteFileAtomic(shard, path, key, data)
		}
		if fired, ferr := s.faults.saveFault(path, write); fired {
			return ferr
		}
		return write()
	})
}

// load reads and verifies key's record. hit=false with nil error is a
// clean miss (absent or damaged — damage is logged and re-simulation
// repairs it); a non-nil error is a real I/O fault that survived the
// retry ladder, which callers answer with inline degradation. Each
// attempt is one fault-plan op; misses are never retried.
func (s *Store) load(key string) (m hypermapper.Metrics, hit bool, err error) {
	path := s.Path(key)
	err = s.retry.Retry("evalstore: loading "+key, s.sleep, func() error {
		m, hit = hypermapper.Metrics{}, false
		if ferr := s.faults.loadFault(path); ferr != nil {
			return ferr
		}
		data, rerr := os.ReadFile(path)
		if errors.Is(rerr, os.ErrNotExist) {
			return nil
		}
		if rerr != nil {
			return rerr
		}
		gotKey, got, derr := Decode(data)
		if derr != nil {
			s.logf("evalstore: %s: %v; treating as miss, will re-simulate", key, derr)
			return nil
		}
		if gotKey != key {
			s.logf("evalstore: %s: record is keyed %s (misfiled); treating as miss", key, gotKey)
			return nil
		}
		if got.LowFidelity {
			// Defence in depth: such a record is a defect (the store
			// never publishes one) and must never answer a lookup.
			s.logf("evalstore: %s: record flagged LowFidelity (defect); treating as miss", key)
			return nil
		}
		m, hit = got, true
		return nil
	})
	if err != nil {
		return hypermapper.Metrics{}, false, err
	}
	return m, hit, nil
}

// noteWritten advances the running size estimate after a publish and
// triggers eviction when the budget is crossed. The estimate drifts
// only when another process publishes (their writes are invisible until
// the next authoritative rescan inside evict), so a lone process
// enforces its budget exactly and cooperating processes enforce it
// within one rescan of each other.
func (s *Store) noteWritten(key string, size int64) {
	if s.maxBytes <= 0 {
		return
	}
	s.mu.Lock()
	s.diskBytes += size
	over := s.diskBytes > s.maxBytes
	s.mu.Unlock()
	if over {
		s.evict(key)
	}
}

// scanBytes sums the sizes of every record in the store (best-effort:
// unreadable entries count as absent).
func (s *Store) scanBytes() int64 {
	var total int64
	for _, shard := range s.shardDirs() {
		ents, err := os.ReadDir(shard)
		if err != nil {
			continue
		}
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".evr") {
				continue
			}
			if info, ierr := e.Info(); ierr == nil {
				total += info.Size()
			}
		}
	}
	return total
}

// evict enforces MaxBytes after a save: rescan the shards (the
// authoritative size — the running estimate cannot see other
// processes' writes), then walk the records in lexicographic key order
// — a pure function of the directory contents, so every cooperating
// process evicts identically — removing until under budget. The
// just-published key is exempt (evicting what the caller is about to
// use would thrash). Best-effort: eviction I/O faults are logged, never
// propagated, and an evicted record another process still wanted is
// just a future miss.
func (s *Store) evict(just string) {
	type rec struct {
		key  string
		size int64
	}
	var recs []rec
	var total int64
	for _, shard := range s.shardDirs() {
		ents, err := os.ReadDir(shard)
		if err != nil {
			s.logf("evalstore: evict: %v", err)
			continue
		}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".evr") {
				continue
			}
			info, ierr := e.Info()
			if ierr != nil {
				continue
			}
			recs = append(recs, rec{key: strings.TrimSuffix(name, ".evr"), size: info.Size()})
			total += info.Size()
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].key < recs[j].key })
	for _, r := range recs {
		if total <= s.maxBytes {
			break
		}
		if r.key == just {
			continue
		}
		if rerr := os.Remove(s.Path(r.key)); rerr != nil {
			s.logf("evalstore: evict %s: %v", r.key, rerr)
			continue
		}
		total -= r.size
		s.bump(func(st *Stats) { st.Evictions++ })
		s.logf("evalstore: evicted %s (%d bytes) to stay under %d", r.key, r.size, s.maxBytes)
	}
	s.mu.Lock()
	s.diskBytes = total
	s.mu.Unlock()
}
