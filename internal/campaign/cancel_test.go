package campaign

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

// TestCancelBeforeAnyWork: a cancel signal that fired before Run is
// honoured at the first cell boundary — the campaign returns
// ErrCanceled without a single pipeline simulation.
func TestCancelBeforeAnyWork(t *testing.T) {
	done := make(chan struct{})
	close(done)
	var sims simCounter
	opts := resumeOptions(4, t.TempDir())
	opts.Cancel = done
	opts.observeSimulation = sims.hook
	if _, err := Run(opts); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run returned %v, want ErrCanceled", err)
	}
	if n := sims.total(); n != 0 {
		t.Fatalf("pre-canceled campaign ran %d simulations, want 0", n)
	}
}

// TestCancelMidRunCheckpointsAndResumes is the cancellation acceptance
// check: a campaign canceled mid-explore stops at a cell boundary with
// its in-flight work checkpointed, and a subsequent Resume run renders
// a report byte-identical to an uninterrupted campaign while provably
// reusing the canceled run's artifacts (strictly fewer simulations than
// a cold run).
func TestCancelMidRunCheckpointsAndResumes(t *testing.T) {
	var refSims simCounter
	refOpts := resumeOptions(1, "")
	refOpts.observeSimulation = refSims.hook
	ref, err := Run(refOpts)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := renderReport(t, ref)

	// Cancel after the third simulation: mid-explore for this grid, so
	// some cells are checkpointed, others never start.
	dir := t.TempDir()
	cancel := make(chan struct{})
	var once sync.Once
	var midSims simCounter
	opts := resumeOptions(2, dir)
	opts.observeSimulation = func(i int, class string) {
		midSims.hook(i, class)
		if midSims.total() >= 3 {
			once.Do(func() { close(cancel) })
		}
	}
	opts.Cancel = cancel
	if _, err := Run(opts); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled Run returned %v, want ErrCanceled", err)
	}
	if midSims.total() >= refSims.total() {
		t.Fatalf("cancel did not stop the campaign early: %d simulations of %d",
			midSims.total(), refSims.total())
	}

	var resSims simCounter
	resumed := resumeOptions(4, dir)
	resumed.Resume = true
	resumed.observeSimulation = resSims.hook
	got, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderReport(t, got), refBytes) {
		t.Fatal("resumed-after-cancel report diverges from uninterrupted run")
	}
	if resSims.total() >= refSims.total() {
		t.Fatalf("resume after cancel re-simulated everything: %d simulations of %d",
			resSims.total(), refSims.total())
	}
}

// TestCancelAfterCompletionIsHarmless: a cancel signal that fires only
// after the last stage completed does not disturb the result.
func TestCancelAfterCompletionIsHarmless(t *testing.T) {
	ref, err := Run(resumeOptions(1, ""))
	if err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	opts := resumeOptions(1, "")
	opts.Cancel = cancel // never fires during the run
	got, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	close(cancel)
	if !bytes.Equal(renderReport(t, got), renderReport(t, ref)) {
		t.Fatal("campaign with idle cancel channel diverges")
	}
}
