package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"slamgo/internal/core"
	"slamgo/internal/dataset"
	"slamgo/internal/device"
	"slamgo/internal/evalstore"
	"slamgo/internal/hypermapper"
	"slamgo/internal/parallel"
	"slamgo/internal/seqcache"
	"slamgo/internal/sharedfs"
	"slamgo/internal/slambench"
)

// Stage names one phase of the staged campaign job model. A campaign is
// Plan → Explore → Promote → CrossMeasure → Aggregate; every stage
// consumes and emits serialisable per-cell artifacts, so a campaign
// interrupted at any stage boundary resumes from the persisted
// artifacts instead of re-simulating.
type Stage string

const (
	// StagePlan validates options and enumerates the cell grid.
	StagePlan Stage = "plan"
	// StageExplore runs every cell's exploration — at the cheap
	// CellStride screening fidelity when the cell-level ladder is on,
	// at full fidelity otherwise — and persists one artifact per cell.
	StageExplore Stage = "explore"
	// StagePromote scores the screened fronts (hypervolume against a
	// shared reference) and re-explores only the competitive cells at
	// full fidelity; unpromoted cells keep their screening artifacts.
	StagePromote Stage = "promote"
	// StageCrossMeasure measures the union of per-cell winners in every
	// cell at full fidelity, one persisted metrics vector per cell.
	StageCrossMeasure Stage = "crossmeasure"
	// StageAggregate rank-aggregates the cross-measurements into the
	// robust configuration (hypermapper.RobustBest). It is the final
	// stage, so it is not a valid Options.StopAfter value — "stop after
	// aggregate" is just a completed run (StopAfter's zero value).
	StageAggregate Stage = "aggregate"
)

// ParseStage validates a -campaign-stop-after value; the empty string
// (run to completion) is valid and parses to "". StageAggregate is
// rejected here on purpose: stopping after the last stage is the same
// as not stopping, and accepting both spellings would make
// Result.StoppedAfter ambiguous.
func ParseStage(s string) (Stage, error) {
	switch Stage(s) {
	case "", StagePlan, StageExplore, StagePromote, StageCrossMeasure:
		return Stage(s), nil
	}
	return "", fmt.Errorf("campaign: unknown stage %q (want plan, explore, promote or crossmeasure)", s)
}

// Fidelity labels for CellResult.Fidelity / the report's fid column.
const (
	// FidelityFull marks a cell whose reported exploration ran on the
	// full sequence.
	FidelityFull = "full"
	// FidelityScreen marks a cell reported at screening fidelity: its
	// exploration ran on the CellStride-subsampled sequence and the
	// cell was not promoted.
	FidelityScreen = "screen"
)

// Simulation classes passed to the test instrumentation hook.
const (
	simScreen    = "screen"     // cell-ladder screening exploration
	simFull      = "full"       // full-fidelity exploration
	simLadderLow = "ladder-low" // intra-cell ladder screening rung
	simCross     = "cross"      // cross-measurement of robust candidates
)

// cellArtifact is the persisted outcome of one cell's exploration — the
// unit of checkpoint/resume. Everything the later stages and the report
// need is here, so a resumed campaign renders byte-identically to an
// uninterrupted one without touching the pipeline.
type cellArtifact struct {
	Scenario string `json:"scenario"`
	Device   string `json:"device"`
	// Fidelity is FidelityFull or FidelityScreen.
	Fidelity string `json:"fidelity"`
	// Observations is every configuration the exploration measured, in
	// order; Front / BestFeasible are derived views stored alongside so
	// reloading needs no recomputation.
	Observations    []hypermapper.Observation `json:"observations"`
	Front           []hypermapper.Observation `json:"front"`
	BestFeasible    hypermapper.Observation   `json:"best_feasible"`
	HasBestFeasible bool                      `json:"has_best_feasible"`
	// Evaluation spend of this exploration only (a promoted cell's
	// screening spend lives in its screening artifact).
	Evaluations       int `json:"evaluations"`
	FullFidelityEvals int `json:"full_fidelity_evals"`
	LowFidelityEvals  int `json:"low_fidelity_evals"`
	// TransferBorrower marks a cell the transfer schedule assigned to
	// wave 2; TransferDonors names the donor cells ("scenario/device")
	// it drew usable knowledge from and TransferSeeds counts the
	// distinct donor configurations handed to its seeder (a borrower
	// with donors but zero seeds degraded to exploring from scratch).
	// All absent from the JSON for anchors and transfer-off campaigns.
	TransferBorrower bool     `json:"transfer_borrower,omitempty"`
	TransferDonors   []string `json:"transfer_donors,omitempty"`
	TransferSeeds    int      `json:"transfer_seeds,omitempty"`
	// Failed quarantines a cell whose exploration panicked: the panic
	// value is recorded, the artifact persists (so peers and resumed
	// runs do not re-detonate the cell), and the campaign aggregates
	// the surviving cells. Deterministic for a given seed/options, so
	// failed artifacts are byte-identical across writers like any
	// other.
	Failed        bool   `json:"failed,omitempty"`
	FailureReason string `json:"failure_reason,omitempty"`
}

// failedArtifact quarantines a panicking cell exploration. Only the
// root panic value is recorded (stacks go to the log): the value is
// deterministic for a given seed and options, stacks are not, and
// artifacts must be byte-identical across writers.
func failedArtifact(cell Cell, fidelity string, p any) *cellArtifact {
	return &cellArtifact{
		Scenario:      cell.Scenario.Name,
		Device:        cell.Target.Name,
		Fidelity:      fidelity,
		Failed:        true,
		FailureReason: fmt.Sprint(panicRoot(p)),
	}
}

// panicRoot unwraps parallel.TaskPanic chains (one wrapper per nested
// parallel region the panic crossed) to the original panic value.
func panicRoot(p any) any {
	if tp, ok := p.(*parallel.TaskPanic); ok {
		return tp.Unwrap()
	}
	return p
}

// crossArtifact is one cell's persisted cross-measurement: the robust
// candidate set measured at full fidelity, in candidate order.
type crossArtifact struct {
	Metrics []hypermapper.Metrics `json:"metrics"`
}

// cellOutcome is one cell stage's in-memory result.
type cellOutcome struct {
	art     *cellArtifact
	resumed bool
	owner   string // who produced the artifact: worker id / "local" / "store"
	err     error
}

// runner holds the state a campaign threads through its stages.
type runner struct {
	opts   Options
	space  *hypermapper.Space
	cells  []Cell
	store  ArtifactStore // retry-wrapped (and fault-wrapped in tests)
	leases *LeaseManager // non-nil only in cooperative worker mode
	logf   func(format string, args ...any)

	anchors []int   // transfer mode: grid-diagonal anchor cells
	donors  [][]int // transfer mode: per-cell donor indices (nil = explores from scratch)

	screens  []*cellArtifact // screening artifacts (cell ladder only)
	arts     []*cellArtifact // final per-cell artifacts
	resumed  []bool          // any artifact of the cell loaded from the store
	promoted []bool          // cell promoted to full fidelity by the cell ladder
	owners   []string        // provenance: who produced the reported artifact
	cache    *seqcache.Cache // rendered-sequence cache (memory-only without SeqCacheDir)
	seqMu    sync.Mutex      // guards seqSrc
	seqSrc   []string        // provenance: where each cell's sequence came from

	evals  *evalstore.Store             // persistent evaluation store (nil without EvalCacheDir)
	memoMu sync.Mutex                   // guards memos
	memos  []*hypermapper.MemoEvaluator // every memo the run built, for stats aggregation

	progressMu sync.Mutex // serialises OnProgress callbacks (see emit)
}

// workerLabel is this process's provenance label for cells it computes.
func (r *runner) workerLabel() string {
	if r.opts.WorkerID != "" {
		return r.opts.WorkerID
	}
	return "local"
}

// newRunner is the Plan stage: validate, apply defaults, enumerate the
// grid and open the checkpoint store. Validation runs first so
// out-of-range values are rejected, not silently rewritten to defaults.
func newRunner(opts Options) (*runner, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts.applyDefaults()
	r := &runner{
		opts:  opts,
		space: core.DSESpace(),
		cells: Grid(opts.Scenarios, opts.Targets),
	}
	r.planTransfer()
	// Cells log from worker goroutines; serialise here so any callback
	// that is fine for the serial Fig2 hooks is fine for campaigns too.
	var logMu sync.Mutex
	r.logf = func(format string, args ...any) {
		if opts.Log != nil {
			logMu.Lock()
			opts.Log(fmt.Sprintf(format, args...))
			logMu.Unlock()
		}
	}
	if opts.CheckpointDir != "" {
		store, err := OpenStore(opts.CheckpointDir)
		if err != nil {
			return nil, err
		}
		var inner ArtifactStore = store
		if opts.wrapStore != nil {
			inner = opts.wrapStore(store)
		}
		// Bounded retry-with-backoff around every store operation:
		// transient I/O faults (full disk, blinking NFS) cost
		// milliseconds, not a crash or a re-simulation.
		r.store = NewRetryStore(inner, DefaultRetryPolicy(), opts.sleepFn)
		if opts.WorkerID != "" {
			r.leases = NewLeaseManager(store.Dir(), opts.WorkerID, opts.LeaseTTL, opts.nowFn)
		}
	}
	// The rendered-sequence cache. With SeqCacheDir it is the shared
	// content-addressed store (each distinct sequence rendered once per
	// store across all cells, stages and cooperating processes); without
	// it the cache still single-flights and memoises in-process. New
	// never fails — an unusable cache directory degrades every miss to
	// inline rendering instead of failing the campaign.
	r.cache = seqcache.New(seqcache.Options{
		Dir:      opts.SeqCacheDir,
		Worker:   r.workerLabel(),
		LeaseTTL: opts.LeaseTTL,
		MaxBytes: opts.SeqCacheMaxBytes,
		Log:      func(format string, args ...any) { r.logf(format, args...) },
		Sleep:    opts.sleepFn,
		Now:      opts.nowFn,
	})
	if opts.cacheFaults != nil {
		r.cache.InjectFaults(*opts.cacheFaults)
	}
	// The persistent evaluation store. With EvalCacheDir every simulation
	// result is published to (and looked up from) the shared
	// content-addressed store, so each distinct (configuration, sequence,
	// device, fidelity stride) is simulated once per store — across
	// cells, stages, cooperating workers, resumed runs and separate
	// campaigns. Open never fails: an unusable directory degrades every
	// lookup to inline simulation instead of failing the campaign.
	if opts.EvalCacheDir != "" {
		r.evals = evalstore.Open(evalstore.Options{
			Dir:      opts.EvalCacheDir,
			Worker:   r.workerLabel(),
			LeaseTTL: opts.LeaseTTL,
			MaxBytes: opts.EvalCacheMaxBytes,
			Log:      func(format string, args ...any) { r.logf(format, args...) },
			Sleep:    opts.sleepFn,
			Now:      opts.nowFn,
		})
		if opts.evalFaults != nil {
			r.evals.InjectFaults(*opts.evalFaults)
		}
	}
	n := len(r.cells)
	r.screens = make([]*cellArtifact, n)
	r.arts = make([]*cellArtifact, n)
	r.resumed = make([]bool, n)
	r.promoted = make([]bool, n)
	r.owners = make([]string, n)
	r.seqSrc = make([]string, n)
	return r, nil
}

// cellSeed derives a cell's exploration seed as a fixed function of the
// campaign seed and the grid index, so shard order cannot leak into any
// cell's exploration.
func cellSeed(campaignSeed int64, index int) int64 {
	return campaignSeed + int64(index+1)*9973
}

// sequence pulls the cell's rendered sequence through the cache, keyed
// by the content address of its render inputs — so cells sharing a
// scenario share one immutable in-memory sequence, stages reuse it, and
// with a shared cache directory cooperating processes render each
// distinct sequence exactly once between them. Resumed cells render (or
// load) lazily only if cross-measurement needs them. The first
// acquisition's source is recorded as the cell's provenance (later
// stages re-acquiring the same key are in-process memory hits).
func (r *runner) sequence(cell Cell) (dataset.Sequence, error) {
	seq, src, err := r.cache.Sequence(cell.Scenario.Scale.CacheKey(), cell.Scenario.Scale.Sequence)
	if err != nil {
		return nil, err
	}
	r.seqMu.Lock()
	if r.seqSrc[cell.Index] == "" {
		r.seqSrc[cell.Index] = string(src)
	}
	r.seqMu.Unlock()
	return seq, nil
}

// instrument wraps a base evaluator with the test hook counting actual
// pipeline simulations (applied under any memoisation, so cache hits
// and checkpoint loads are never counted).
func (r *runner) instrument(cell Cell, class string, eval hypermapper.Evaluator) hypermapper.Evaluator {
	hook := r.opts.observeSimulation
	if hook == nil {
		return eval
	}
	idx := cell.Index
	return func(pt hypermapper.Point) hypermapper.Metrics {
		hook(idx, class)
		return eval(pt)
	}
}

// memo builds a cell evaluator's memoization stack: the in-process
// memory layer, backed by the persistent evaluation store when one is
// configured. stride is the fidelity the evaluator actually runs at —
// 1 for full-sequence evaluation, the subsampling stride otherwise —
// and is part of every store key, so a subsampled result can never
// answer a full-fidelity lookup. Every memo is registered so the run's
// hit/miss counters can be aggregated into the result.
func (r *runner) memo(cell Cell, stride int, eval hypermapper.Evaluator) *hypermapper.MemoEvaluator {
	var tier hypermapper.ResultTier
	if r.evals != nil {
		tier = r.evals.Scope(cell.Scenario.Scale.CacheKey(), deviceKey(cell.Target), stride)
	}
	m := hypermapper.NewTieredMemoEvaluator(eval, tier)
	r.memoMu.Lock()
	r.memos = append(r.memos, m)
	r.memoMu.Unlock()
	return m
}

// deviceKey is the device identity in evaluation-store keys: the full
// rendered profile — the same `%+v` identity artifactName hashes — so
// two targets that share a name but differ in any modelled parameter
// never share records.
func deviceKey(p device.Profile) string {
	return fmt.Sprintf("%+v", p)
}

// artifactName keys a cell's exploration artifact: the fidelity kind,
// the grid index, and a content hash of everything that determines the
// artifact's bytes — the cell spec, the derived seed, and the
// exploration options of that fidelity. Workers and Log are
// deliberately excluded (results are bit-identical for any worker
// count, so a campaign interrupted under -workers 1 resumes under
// -workers 8), and so are the promotion-policy knobs
// (CellPromoteFraction, MaxFrontCandidates) that decide *whether* a
// cell's stage runs, never what it produces — changing the promoted
// share on resume reuses every overlapping artifact.
func (r *runner) artifactName(cell Cell, fidelity string) string {
	o := r.opts
	h := sha256.New()
	fmt.Fprintf(h, "v%d|%s|", storeVersion, fidelity)
	fmt.Fprintf(h, "scenario=%s|scale=%+v|target=%+v|", cell.Scenario.Name, cell.Scenario.Scale, cell.Target)
	fmt.Fprintf(h, "seed=%d|cellseed=%d|", o.Seed, cellSeed(o.Seed, cell.Index))
	fmt.Fprintf(h, "explore=%d/%d/%d|limit=%g|",
		o.RandomSamples, o.ActiveIterations, o.BatchPerIteration, o.AccuracyLimit)
	if fidelity == FidelityScreen {
		fmt.Fprintf(h, "cellstride=%d|", o.CellStride)
	} else {
		fmt.Fprintf(h, "mf=%d/%g|", o.FidelityStride, o.PromoteFraction)
	}
	// A warm-started borrower's artifact depends on its donor topology
	// and reduced seeding budget, so those enter its key — and only its:
	// anchors and transfer-off cells keep their pre-transfer names, so a
	// transfer-off campaign resumes a transfer-on store's anchors and
	// vice versa.
	if donors := r.transferDonors(cell, fidelity); donors != nil {
		fmt.Fprintf(h, "transfer=%v/%d|", donors, o.TransferSeeds)
	}
	return fmt.Sprintf("%s-c%03d-%s", fidelity, cell.Index, hex.EncodeToString(h.Sum(nil))[:16])
}

// crossName keys a cell's cross-measurement artifact on the cell spec
// and the candidate set (candHash); the metrics are seed-independent
// pure measurements, so the exploration seed is not part of the key.
func (r *runner) crossName(cell Cell, candHash string) string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d|cross|scenario=%s|scale=%+v|target=%+v|cands=%s|",
		storeVersion, cell.Scenario.Name, cell.Scenario.Scale, cell.Target, candHash)
	return fmt.Sprintf("cross-c%03d-%s", cell.Index, hex.EncodeToString(h.Sum(nil))[:16])
}

// explore is the Explore stage: every cell's exploration at screening
// fidelity when the cell ladder is on, at full fidelity otherwise.
// With Options.Transfer it runs as two waves — anchors from scratch,
// then borrowers warm-started from the anchors (see transfer.go); the
// wave boundary is a plain artifact dependency, so resume, takeover and
// quarantine behave exactly as in the flat schedule.
func (r *runner) explore() error {
	fidelity := r.exploreFidelity()
	if !r.opts.Transfer {
		return r.exploreWave(allIndices(len(r.cells)), fidelity)
	}
	if err := r.exploreWave(r.anchors, fidelity); err != nil {
		return err
	}
	if err := r.publishObsLogs(fidelity); err != nil {
		return err
	}
	var borrowers []int
	for i := range r.cells {
		if r.donors[i] != nil {
			borrowers = append(borrowers, i)
		}
	}
	return r.exploreWave(borrowers, fidelity)
}

// exploreWave runs one explore fan-out over the given cell indices.
func (r *runner) exploreWave(idxs []int, fidelity string) error {
	outs := parallel.MapOrdered(r.opts.Workers, idxs, func(_ int, idx int) *cellOutcome {
		return r.cellStage(StageExplore, r.cells[idx], fidelity)
	})
	for k, idx := range idxs {
		o := outs[k]
		if o.err != nil {
			return o.err
		}
		if fidelity == FidelityScreen {
			r.screens[idx] = o.art
		} else {
			r.arts[idx] = o.art
		}
		r.resumed[idx] = r.resumed[idx] || o.resumed
		r.owners[idx] = o.owner
	}
	return nil
}

// allIndices enumerates 0..n-1 (the flat explore schedule).
func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// cellStage produces one cell's exploration artifact at the given
// fidelity: loaded from the checkpoint store when a peer (or a prior
// run) completed it, computed here otherwise. In cooperative worker
// mode the computation is guarded by the cell's lease — the worker
// claims, computes under a heartbeat, and releases; when another live
// worker holds the claim, this one polls until the artifact appears or
// the holder's lease expires and is taken over. A cancellation request
// is honoured before any computation (and on every poll turn), so a
// canceled campaign stops at cell granularity: in-flight cells finish
// and checkpoint, waiting ones never start.
func (r *runner) cellStage(stage Stage, cell Cell, fidelity string) *cellOutcome {
	out := r.cellStageLocked(cell, fidelity)
	r.emitCell(stage, cell, out)
	return out
}

func (r *runner) cellStageLocked(cell Cell, fidelity string) *cellOutcome {
	if r.canceled() {
		return &cellOutcome{err: ErrCanceled}
	}
	name := r.artifactName(cell, fidelity)
	if out, done := r.tryLoadCell(cell, name, fidelity); done {
		return out
	}
	if r.leases == nil {
		return r.computeCell(cell, fidelity, name)
	}
	backoff := newPollBackoff()
	for {
		if r.canceled() {
			return &cellOutcome{err: ErrCanceled}
		}
		lease, acquired, err := r.leases.TryAcquire(name)
		if err != nil {
			// Lease-file I/O faults are contention-shaped: log and poll.
			r.logf("cell %d (%s on %s): %v", cell.Index, cell.Scenario.Name, cell.Target.Name, err)
		}
		if acquired {
			stop := r.heartbeat(lease)
			out := r.computeCell(cell, fidelity, name)
			stop()
			return out
		}
		r.opts.sleepFn(backoff.Next())
		if out, done := r.tryLoadCell(cell, name, fidelity); done {
			return out
		}
	}
}

// tryLoadCell loads a completed artifact if the store has one; done is
// false when the caller should compute (or keep waiting for) the cell.
func (r *runner) tryLoadCell(cell Cell, name, fidelity string) (*cellOutcome, bool) {
	if !r.opts.Resume || r.store == nil {
		return nil, false
	}
	art := &cellArtifact{}
	ok, err := r.store.Load(name, art)
	if err != nil {
		return &cellOutcome{err: fmt.Errorf("campaign: cell %s/%s: %w",
			cell.Scenario.Name, cell.Target.Name, err)}, true
	}
	if !ok || art.Fidelity != fidelity {
		return nil, false
	}
	r.logf("cell %d (%s on %s): resumed %s exploration from checkpoint",
		cell.Index, cell.Scenario.Name, cell.Target.Name, fidelity)
	return &cellOutcome{art: art, resumed: true, owner: "store"}, true
}

// computeCell explores the cell (quarantining panics), persists the
// artifact and reports the outcome.
func (r *runner) computeCell(cell Cell, fidelity, name string) *cellOutcome {
	art, err := r.exploreCellQuarantined(cell, fidelity)
	if err != nil {
		return &cellOutcome{err: err}
	}
	if r.store != nil {
		if err := r.store.Save(name, art); err != nil {
			return &cellOutcome{err: fmt.Errorf("campaign: checkpointing cell %s/%s: %w",
				cell.Scenario.Name, cell.Target.Name, err)}
		}
	}
	if art.Failed {
		r.logf("cell %d (%s on %s): %s exploration FAILED (quarantined): %s",
			cell.Index, cell.Scenario.Name, cell.Target.Name, fidelity, art.FailureReason)
	} else {
		r.logf("cell %d (%s on %s): %s exploration, %d evaluations, front %d",
			cell.Index, cell.Scenario.Name, cell.Target.Name, fidelity,
			art.Evaluations, len(art.Front))
	}
	return &cellOutcome{art: art, owner: r.workerLabel()}
}

// exploreCellQuarantined contains a panicking exploration: the panic —
// wherever in the pipeline, optimizer or surrogate it detonated — is
// recovered here on this cell's worker slot, recorded as a failed
// artifact, and the campaign carries on with the surviving cells.
// Non-panic errors (a sequence that cannot render, a store fault) still
// abort the campaign: they signal broken infrastructure, not one
// poisoned configuration.
func (r *runner) exploreCellQuarantined(cell Cell, fidelity string) (art *cellArtifact, err error) {
	defer func() {
		if p := recover(); p != nil {
			r.logf("cell %d (%s on %s): panic quarantined: %v",
				cell.Index, cell.Scenario.Name, cell.Target.Name, p)
			art, err = failedArtifact(cell, fidelity, p), nil
		}
	}()
	return r.exploreCell(cell, fidelity)
}

// heartbeat renews lease until the returned stop function is called,
// then releases it (sharedfs.Heartbeat: renewal at TTL/3 so one missed
// beat — GC pause, NFS hiccup — does not forfeit the lease).
func (r *runner) heartbeat(lease *Lease) (stop func()) {
	return sharedfs.Heartbeat(lease, r.opts.LeaseTTL, r.logf)
}

// newPollBackoff is the deterministic wait ladder used while another
// worker holds a cell (sharedfs.PollBackoff: 10ms doubling to a 200ms
// cap). Wall-clock enters scheduling only; results never depend on it.
func newPollBackoff() *sharedfs.PollBackoff { return sharedfs.NewPollBackoff() }

// exploreCell runs one cell's constrained Fig2-style exploration at the
// given fidelity and packages the outcome as an artifact.
func (r *runner) exploreCell(cell Cell, fidelity string) (*cellArtifact, error) {
	seq, err := r.sequence(cell)
	if err != nil {
		return nil, fmt.Errorf("campaign: cell %s/%s: %w", cell.Scenario.Name, cell.Target.Name, err)
	}
	model := device.NewModel(cell.Target)

	var eval hypermapper.Evaluator
	var ladder *hypermapper.MultiFidelity
	switch {
	case fidelity == FidelityScreen:
		// Screening rung of the cell ladder: the whole exploration runs
		// on the CellStride-subsampled sequence. No intra-cell ladder on
		// top — the workload is already cheap by the stride.
		view := slambench.Subsample(seq, r.opts.CellStride)
		eval = r.memo(cell, r.opts.CellStride,
			r.instrument(cell, simScreen, core.NewEvaluator(r.space, view, model))).Evaluate
	case r.opts.FidelityStride > 1:
		// Full fidelity with the intra-cell ladder; the WrapEval hook
		// threads the simulation instrumentation under the memos and the
		// Memo hook backs both rungs with the evaluation store, each at
		// its own stride.
		ladder, eval = core.NewMultiFidelityEvaluator(r.space, seq, model, core.FidelityOptions{
			Stride:          r.opts.FidelityStride,
			PromoteFraction: r.opts.PromoteFraction,
			AccuracyLimit:   r.opts.AccuracyLimit,
			Workers:         r.opts.Workers,
			WrapEval: func(fidelity string, e hypermapper.Evaluator) hypermapper.Evaluator {
				class := simFull
				if fidelity == "low" {
					class = simLadderLow
				}
				return r.instrument(cell, class, e)
			},
			Memo: func(fidelity string, e hypermapper.Evaluator) *hypermapper.MemoEvaluator {
				stride := 1
				if fidelity == "low" {
					stride = r.opts.FidelityStride
				}
				return r.memo(cell, stride, e)
			},
		})
	default:
		eval = r.memo(cell, 1,
			r.instrument(cell, simFull, core.NewEvaluator(r.space, seq, model))).Evaluate
	}

	cfg := hypermapper.DefaultOptimizerConfig()
	cfg.RandomSamples = r.opts.RandomSamples
	cfg.ActiveIterations = r.opts.ActiveIterations
	cfg.BatchPerIteration = r.opts.BatchPerIteration
	cfg.Seed = cellSeed(r.opts.Seed, cell.Index)
	cfg.Workers = r.opts.Workers
	cfg.ConstraintObjective = 1 // MaxATE
	cfg.ConstraintLimit = r.opts.AccuracyLimit
	if ladder != nil {
		cfg.BatchEval = ladder
	}
	// Warm-started borrower: concentrate a reduced seeding budget around
	// the donors' winners and bias acquisition with a prior pooled from
	// their observation logs. Donor knowledge only steers sampling — the
	// borrower's artifact holds its own measurements exclusively. When
	// every donor degraded (quarantined, or no usable full-fidelity
	// observations) the cell explores from scratch on the full budget.
	var transferDonors []string
	var transferSeeds int
	transferBorrower := false
	if donors := r.transferDonors(cell, fidelity); donors != nil {
		transferBorrower = true
		donorSets, donorPoints, labels := r.donorData(cell, fidelity, donors)
		if len(donorPoints) > 0 {
			transferDonors, transferSeeds = labels, len(donorPoints)
			cfg.RandomSamples = r.opts.TransferSeeds
			if r.opts.transferExtraRound() {
				// Reinvest part of the freed seeding budget in one extra
				// model-guided round — granted only when the total still
				// clears the savings bar (see transferExtraRound).
				cfg.ActiveIterations++
			}
			cfg.Seeder = hypermapper.WarmStartSeeder{Donors: donorPoints, Fraction: warmFraction}
			if prior, ok := hypermapper.NewForestPrior(donorSets, hypermapper.RuntimeAccuracy,
				hypermapper.PriorConfig{Seed: cfg.Seed, Workers: cfg.Workers}); ok {
				cfg.Prior = prior
			}
			r.logf("cell %d (%s on %s): warm start from %d donors, %d seed configurations",
				cell.Index, cell.Scenario.Name, cell.Target.Name, len(labels), transferSeeds)
		}
	}
	active, err := hypermapper.Optimize(r.space, eval, cfg)
	if err != nil {
		return nil, fmt.Errorf("campaign: cell %s/%s: %w", cell.Scenario.Name, cell.Target.Name, err)
	}

	art := &cellArtifact{
		Scenario:          cell.Scenario.Name,
		Device:            cell.Target.Name,
		Fidelity:          fidelity,
		Observations:      active.Observations,
		Front:             active.Front,
		Evaluations:       len(active.Observations),
		FullFidelityEvals: len(active.Observations),
		TransferBorrower:  transferBorrower,
		TransferDonors:    transferDonors,
		TransferSeeds:     transferSeeds,
	}
	if fidelity == FidelityScreen {
		// Screening runs cost a CellStride-th of a full simulation; they
		// are the cell's low-fidelity spend, not full-fidelity evals.
		art.FullFidelityEvals = 0
		art.LowFidelityEvals = len(active.Observations)
	}
	if ladder != nil {
		low, high := ladder.Stats()
		art.LowFidelityEvals = low
		art.FullFidelityEvals = high
	}
	art.BestFeasible, art.HasBestFeasible = hypermapper.Best(active.Observations,
		hypermapper.AccuracyLimit(r.opts.AccuracyLimit),
		func(m hypermapper.Metrics) float64 { return m.Runtime })
	return art, nil
}

// promote is the Promote stage of the cell-level ladder: score every
// screened front's hypervolume against a shared reference, promote the
// top CellPromoteFraction of cells (index-tie-broken, like the
// intra-cell ladder) and re-explore only those at full fidelity.
// Without the cell ladder every cell is already at full fidelity and
// the stage is a no-op. The decision is a pure function of the
// screening artifacts, so a resumed campaign re-derives the identical
// promoted set instead of persisting it.
func (r *runner) promote() error {
	if r.opts.CellStride <= 1 {
		return nil
	}
	fronts := make([][]hypermapper.Observation, len(r.cells))
	for i, s := range r.screens {
		fronts[i] = s.Front
	}
	hv := hypermapper.FrontHypervolumes(fronts, hypermapper.RuntimeAccuracy)
	// PromoteTopFraction takes lower-is-better scores; bigger dominated
	// hypervolume means a more competitive front.
	scores := make([]float64, len(hv))
	for i, v := range hv {
		scores[i] = -v
	}
	// A quarantined screen has no front to score; drop it from the
	// promoted set rather than re-detonating the cell at full fidelity.
	// Pure function of the (persisted) screening artifacts, so resumed
	// runs and every cooperating worker derive the same set.
	chosen := hypermapper.PromoteTopFraction(scores, r.opts.CellPromoteFraction)
	live := chosen[:0]
	for _, idx := range chosen {
		if !r.screens[idx].Failed {
			live = append(live, idx)
		}
	}
	chosen = live
	r.logf("promote: %d of %d cells promoted to full fidelity", len(chosen), len(r.cells))

	outs := parallel.MapOrdered(r.opts.Workers, chosen, func(_ int, idx int) *cellOutcome {
		return r.cellStage(StagePromote, r.cells[idx], FidelityFull)
	})
	for k, idx := range chosen {
		if outs[k].err != nil {
			return outs[k].err
		}
		r.arts[idx] = outs[k].art
		r.promoted[idx] = true
		r.resumed[idx] = r.resumed[idx] || outs[k].resumed
		r.owners[idx] = outs[k].owner
	}
	for i := range r.cells {
		if r.arts[i] == nil {
			r.arts[i] = r.screens[i]
		}
	}
	return nil
}

// crossMeasure is the CrossMeasure stage: build the robust candidate
// set (the default configuration plus every cell's best feasible and
// leading front members, deduplicated in grid order) and measure every
// candidate in every cell at full fidelity. Cells explored at full
// fidelity preload their cross-measurement memo from the explore
// artifact, so home-cell repeats cost a map probe; per-cell metric
// vectors are persisted so a completed stage is never re-run on
// resume. The cell is the unit of distribution: in cooperative worker
// mode each cell's vector is computed under its cross-artifact lease
// (candidates fan out over the pool inside the cell), and quarantined
// cells are skipped entirely — their vector stays nil and the robust
// aggregation ranks only the survivors.
func (r *runner) crossMeasure() ([]hypermapper.Point, [][]hypermapper.Metrics, error) {
	var candidates []hypermapper.Point
	seen := map[string]bool{}
	add := func(pt hypermapper.Point) {
		key := string(hypermapper.AppendKey(make([]byte, 0, 8*len(pt)), pt))
		if !seen[key] {
			seen[key] = true
			candidates = append(candidates, pt.Clone())
		}
	}
	add(core.DefaultPoint(r.space))
	for _, art := range r.arts {
		if art.Failed {
			continue // quarantined: no front, no best, nothing to offer
		}
		if art.HasBestFeasible {
			add(art.BestFeasible.X)
		}
		for i, o := range art.Front {
			if i >= r.opts.MaxFrontCandidates {
				break
			}
			add(o.X)
		}
	}

	ch := sha256.New()
	for _, pt := range candidates {
		ch.Write(hypermapper.AppendKey(nil, pt))
	}
	candHash := hex.EncodeToString(ch.Sum(nil))[:16]

	perCell := make([][]hypermapper.Metrics, len(r.cells))
	outs := parallel.MapOrdered(r.opts.Workers, r.cells, func(j int, cell Cell) error {
		if r.arts[j].Failed {
			return nil
		}
		metrics, err := r.crossCell(j, cell, candidates, candHash)
		if err != nil {
			return err
		}
		perCell[j] = metrics
		return nil
	})
	for _, err := range outs {
		if err != nil {
			return nil, nil, err
		}
	}
	return candidates, perCell, nil
}

// crossCell produces one cell's cross-measurement vector: loaded from
// the store when a peer (or prior run) measured it, measured here
// otherwise — under the cell's lease in cooperative worker mode.
func (r *runner) crossCell(j int, cell Cell, candidates []hypermapper.Point, candHash string) ([]hypermapper.Metrics, error) {
	metrics, resumed, err := r.crossCellLocked(j, cell, candidates, candHash)
	if err == nil {
		r.emit(ProgressEvent{
			Kind: ProgressCellDone, Stage: StageCrossMeasure, Cell: cell.Index,
			Scenario: cell.Scenario.Name, Device: cell.Target.Name, Resumed: resumed,
		})
	}
	return metrics, err
}

func (r *runner) crossCellLocked(j int, cell Cell, candidates []hypermapper.Point, candHash string) ([]hypermapper.Metrics, bool, error) {
	if r.canceled() {
		return nil, false, ErrCanceled
	}
	name := r.crossName(cell, candHash)
	load := func() ([]hypermapper.Metrics, bool, error) {
		if !r.opts.Resume || r.store == nil {
			return nil, false, nil
		}
		var ca crossArtifact
		ok, err := r.store.Load(name, &ca)
		if err != nil {
			return nil, false, fmt.Errorf("campaign: cell %s/%s: %w", cell.Scenario.Name, cell.Target.Name, err)
		}
		if !ok || len(ca.Metrics) != len(candidates) {
			return nil, false, nil
		}
		r.logf("cell %d (%s on %s): resumed cross-measurement from checkpoint",
			cell.Index, cell.Scenario.Name, cell.Target.Name)
		return ca.Metrics, true, nil
	}
	if metrics, ok, err := load(); ok || err != nil {
		return metrics, true, err
	}
	if r.leases == nil {
		metrics, err := r.measureCell(j, cell, candidates, name)
		return metrics, false, err
	}
	backoff := newPollBackoff()
	for {
		if r.canceled() {
			return nil, false, ErrCanceled
		}
		lease, acquired, err := r.leases.TryAcquire(name)
		if err != nil {
			r.logf("cell %d (%s on %s): %v", cell.Index, cell.Scenario.Name, cell.Target.Name, err)
		}
		if acquired {
			stop := r.heartbeat(lease)
			metrics, err := r.measureCell(j, cell, candidates, name)
			stop()
			return metrics, false, err
		}
		r.opts.sleepFn(backoff.Next())
		if metrics, ok, err := load(); ok || err != nil {
			return metrics, true, err
		}
	}
}

// measureCell measures every candidate in the cell at full fidelity and
// persists the vector. Individual measurements are quarantined: a
// candidate that detonates the pipeline in this cell yields Failed
// metrics (infeasible everywhere downstream) instead of killing the
// campaign.
func (r *runner) measureCell(j int, cell Cell, candidates []hypermapper.Point, name string) ([]hypermapper.Metrics, error) {
	seq, err := r.sequence(cell)
	if err != nil {
		return nil, fmt.Errorf("campaign: cell %s/%s: %w", cell.Scenario.Name, cell.Target.Name, err)
	}
	memo := r.memo(cell, 1,
		r.instrument(cell, simCross, core.NewEvaluator(r.space, seq, device.NewModel(cell.Target))))
	if art := r.arts[j]; art.Fidelity == FidelityFull {
		// The shared donor/preload filter (hypermapper.FullObservations)
		// drops LowFidelity and Failed observations; MemoEvaluator.Preload
		// re-applies the low-fidelity guard itself, so neither this call
		// site nor any future one can leak a subsampled metric into a
		// full-fidelity memo.
		memo.Preload(hypermapper.FullObservations(art.Observations))
	}
	metrics := parallel.MapOrdered(r.opts.Workers, candidates, func(_ int, pt hypermapper.Point) hypermapper.Metrics {
		return measureQuarantined(memo.Evaluate, pt)
	})
	if r.store != nil {
		if err := r.store.Save(name, crossArtifact{Metrics: metrics}); err != nil {
			return nil, fmt.Errorf("campaign: checkpointing cross-measurement of cell %s/%s: %w",
				cell.Scenario.Name, cell.Target.Name, err)
		}
	}
	return metrics, nil
}

// measureQuarantined contains a panicking cross-measurement: the
// candidate is reported as Failed in this cell (AccuracyLimit and
// RobustBest already treat Failed metrics as infeasible), deterministic
// for a given candidate/cell like any other measurement.
func measureQuarantined(eval hypermapper.Evaluator, pt hypermapper.Point) (m hypermapper.Metrics) {
	defer func() {
		if p := recover(); p != nil {
			m = hypermapper.Metrics{Failed: true}
		}
	}()
	return eval(pt)
}

// aggregate is the Aggregate stage: rank-aggregate the per-cell
// cross-measurements into the robust configuration. Quarantined cells
// have no cross-measurement vector; the aggregation ranks the
// surviving cells only, then remaps the winner's ranks and metrics
// back to grid length (rank 0 / Failed metrics in the quarantined
// slots) so the report keeps one row per cell.
func (r *runner) aggregate(candidates []hypermapper.Point, perCell [][]hypermapper.Metrics) (*Result, error) {
	res := r.result("")
	res.CandidateCount = len(candidates)
	var live []int
	for j := range r.cells {
		if perCell[j] != nil {
			live = append(live, j)
		}
	}
	if len(live) == 0 {
		return res, nil // every cell quarantined: no robust pick
	}
	perCandidate := make([][]hypermapper.Metrics, len(candidates))
	for i := range perCandidate {
		row := make([]hypermapper.Metrics, len(live))
		for k, j := range live {
			row[k] = perCell[j][i]
		}
		perCandidate[i] = row
	}
	pick, ok := hypermapper.RobustBest(perCandidate,
		hypermapper.AccuracyLimit(r.opts.AccuracyLimit),
		func(m hypermapper.Metrics) float64 { return m.Runtime })
	if !ok {
		return res, nil
	}
	cfg, err := core.ConfigFromPoint(r.space, candidates[pick.Index])
	if err != nil {
		return nil, fmt.Errorf("campaign: robust candidate invalid: %w", err)
	}
	gridRanks := make([]int, len(r.cells))
	gridMetrics := make([]hypermapper.Metrics, len(r.cells))
	for j := range gridMetrics {
		gridMetrics[j] = hypermapper.Metrics{Failed: true}
	}
	for k, j := range live {
		gridRanks[j] = pick.Ranks[k]
		gridMetrics[j] = perCandidate[pick.Index][k]
	}
	pick.Ranks = gridRanks
	res.Robust = RobustResult{
		Point:   candidates[pick.Index],
		Config:  cfg,
		Pick:    pick,
		PerCell: gridMetrics,
	}
	res.HasRobust = true
	r.logf("robust configuration: candidate %d of %d, worst rank %d, feasible everywhere %v",
		pick.Index, len(candidates), pick.WorstRank, pick.FeasibleEverywhere)
	return res, nil
}

// result materialises the per-cell results available so far (stopped
// runs included) from the stage artifacts.
func (r *runner) result(stopped Stage) *Result {
	res := &Result{AccuracyLimit: r.opts.AccuracyLimit, StoppedAfter: stopped,
		Transfer: r.opts.Transfer, SeqStats: r.cache.Stats(),
		CacheSummary: r.opts.CacheStats}
	if r.evals != nil {
		res.EvalStats = r.evals.Stats()
	}
	r.memoMu.Lock()
	for _, m := range r.memos {
		h, miss := m.Stats()
		res.MemoHits += h
		res.MemoMisses += miss
	}
	r.memoMu.Unlock()
	for i := range r.cells {
		art := r.arts[i]
		if art == nil {
			art = r.screens[i]
		}
		if art == nil {
			continue // stopped before any exploration artifact existed
		}
		c := CellResult{
			Cell:              r.cells[i],
			Front:             art.Front,
			BestFeasible:      art.BestFeasible,
			HasBestFeasible:   art.HasBestFeasible,
			Evaluations:       art.Evaluations,
			FullFidelityEvals: art.FullFidelityEvals,
			LowFidelityEvals:  art.LowFidelityEvals,
			Fidelity:          art.Fidelity,
			Promoted:          r.promoted[i],
			Resumed:           r.resumed[i],
			Owner:             r.owners[i],
			SeqSource:         r.seqSrc[i],
			TransferBorrower:  art.TransferBorrower,
			TransferDonors:    art.TransferDonors,
			TransferSeeds:     art.TransferSeeds,
			Failed:            art.Failed,
			FailureReason:     art.FailureReason,
		}
		// The exploration transfers across cells, the explanation stays
		// local: decision rules are extracted from this cell's own
		// full-fidelity observations only (screening metrics would
		// mislabel PaperClasses' absolute thresholds, so screened cells
		// report no rules). Opt-in because the rule strings enlarge the
		// JSON surface.
		if r.opts.Knowledge && !art.Failed && art.Fidelity == FidelityFull {
			label, names := hypermapper.PaperClasses(r.opts.AccuracyLimit, 30, 3.0)
			full := hypermapper.FullObservations(art.Observations)
			if _, rules, err := hypermapper.Knowledge(r.space, full, label, names, 3); err == nil {
				for _, rule := range rules {
					c.Knowledge = append(c.Knowledge, rule.String())
				}
			}
		}
		// A promoted cell spent its screening budget too; fold it into
		// the cell's totals (the full-explore artifact stays pure so it
		// is shared with campaigns that never screened).
		if r.promoted[i] && r.screens[i] != nil && art.Fidelity == FidelityFull {
			c.Evaluations += r.screens[i].Evaluations
			c.LowFidelityEvals += r.screens[i].LowFidelityEvals
		}
		res.Cells = append(res.Cells, c)
	}
	return res
}
