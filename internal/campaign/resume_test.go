package campaign

import (
	"bytes"
	"sync"
	"testing"

	"slamgo/internal/core"
)

// resumeOptions is the shared 2-scenario × 2-device cell-ladder
// campaign the checkpoint/resume tests run: small enough to re-run many
// times, screened at CellStride 2 with half the cells promoted.
func resumeOptions(workers int, dir string) Options {
	// Smaller even than campaignScale: the resume suite runs this
	// campaign a dozen times (under -race in CI), and checkpoint
	// semantics do not need many pixels.
	base := core.Scale{Width: 48, Height: 36, Frames: 5, Noisy: false, Seed: 42}
	scen, err := SelectScenarios(base, []string{"lr_kt0", "of_kt0"})
	if err != nil {
		panic(err)
	}
	targets, err := ResolveTargets(42, []string{"odroid-xu3", "pixel-adreno530"})
	if err != nil {
		panic(err)
	}
	return Options{
		Scenarios:           scen,
		Targets:             targets,
		RandomSamples:       4,
		ActiveIterations:    1,
		BatchPerIteration:   2,
		AccuracyLimit:       0.1,
		Seed:                11,
		Workers:             workers,
		CellStride:          2,
		CellPromoteFraction: 0.5,
		MaxFrontCandidates:  1,
		CheckpointDir:       dir,
	}
}

// simCounter counts actual pipeline simulations by class, safely from
// worker goroutines.
type simCounter struct {
	mu     sync.Mutex
	counts map[string]int
}

func (c *simCounter) hook(_ int, class string) {
	c.mu.Lock()
	if c.counts == nil {
		c.counts = map[string]int{}
	}
	c.counts[class]++
	c.mu.Unlock()
}

func (c *simCounter) get(class string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[class]
}

func (c *simCounter) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.counts {
		n += v
	}
	return n
}

// TestCellLadderScreensAndPromotes checks the cell-level multi-fidelity
// semantics on a fresh (uncheckpointed) run: every cell screens, only
// the competitive half explores at full fidelity, and unpromoted cells
// are reported at screening fidelity.
func TestCellLadderScreensAndPromotes(t *testing.T) {
	res, err := Run(resumeOptions(1, ""))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("grid has %d cells, want 4", len(res.Cells))
	}
	promoted := 0
	for _, c := range res.Cells {
		if c.Evaluations == 0 {
			t.Fatalf("cell %s/%s ran no evaluations", c.Cell.Scenario.Name, c.Cell.Target.Name)
		}
		switch c.Fidelity {
		case FidelityFull:
			if !c.Promoted {
				t.Fatalf("full-fidelity cell %s/%s not marked promoted", c.Cell.Scenario.Name, c.Cell.Target.Name)
			}
			promoted++
			// A promoted cell's totals include its screening spend.
			if c.LowFidelityEvals == 0 || c.Evaluations <= c.FullFidelityEvals {
				t.Fatalf("promoted cell %s/%s did not account screening spend: %+v",
					c.Cell.Scenario.Name, c.Cell.Target.Name, c)
			}
		case FidelityScreen:
			if c.Promoted {
				t.Fatalf("screen-fidelity cell %s/%s marked promoted", c.Cell.Scenario.Name, c.Cell.Target.Name)
			}
			if c.FullFidelityEvals != 0 || c.LowFidelityEvals != c.Evaluations {
				t.Fatalf("screen cell %s/%s has full-fidelity spend: %+v",
					c.Cell.Scenario.Name, c.Cell.Target.Name, c)
			}
		default:
			t.Fatalf("cell %s/%s has fidelity %q", c.Cell.Scenario.Name, c.Cell.Target.Name, c.Fidelity)
		}
		if c.Resumed {
			t.Fatalf("fresh run marked cell %s/%s resumed", c.Cell.Scenario.Name, c.Cell.Target.Name)
		}
	}
	if promoted != 2 { // ceil(0.5 × 4)
		t.Fatalf("%d cells promoted, want 2", promoted)
	}
	// The robust phase still cross-measures at full fidelity, so the
	// aggregation is comparable even with screened cells in the grid.
	if !res.HasRobust {
		t.Fatal("cell-ladder campaign produced no robust configuration")
	}
	for j, m := range res.Robust.PerCell {
		if m.LowFidelity {
			t.Fatalf("robust metrics in cell %d are low fidelity", j)
		}
	}
}

// TestInterruptedResumeByteIdentical is the acceptance check of the
// staged model: a campaign killed at a stage boundary and resumed —
// under any worker count — renders a byte-identical report to an
// uninterrupted run, with the checkpointed stages proven (by evaluator
// call counts) to never re-simulate.
func TestInterruptedResumeByteIdentical(t *testing.T) {
	ref, err := Run(resumeOptions(1, ""))
	if err != nil {
		t.Fatal(err)
	}
	refBytes := renderReport(t, ref)

	cases := []struct {
		stopAfter Stage
		workers   int
	}{
		{StageExplore, 1},
		{StageExplore, 4},
		{StageExplore, 8},
		{StagePromote, 4},
	}
	for _, c := range cases {
		dir := t.TempDir()
		intr := resumeOptions(1, dir)
		intr.StopAfter = c.stopAfter
		stopped, err := Run(intr)
		if err != nil {
			t.Fatal(err)
		}
		if stopped.StoppedAfter != c.stopAfter {
			t.Fatalf("interrupted run stopped after %q, want %q", stopped.StoppedAfter, c.stopAfter)
		}
		if stopped.HasRobust {
			t.Fatal("interrupted run aggregated a robust configuration")
		}

		var sims simCounter
		opts := resumeOptions(c.workers, dir)
		opts.Resume = true
		opts.observeSimulation = sims.hook
		got, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(renderReport(t, got), refBytes) {
			t.Fatalf("stop=%s workers=%d: resumed report diverges from uninterrupted run",
				c.stopAfter, c.workers)
		}
		// Screening explorations were checkpointed before the kill: the
		// resumed run must load them, never re-simulate them.
		if n := sims.get(simScreen); n != 0 {
			t.Fatalf("stop=%s workers=%d: %d screening simulations on resume, want 0",
				c.stopAfter, c.workers, n)
		}
		if c.stopAfter == StagePromote {
			// Full-fidelity explorations were checkpointed too; only the
			// cross-measurement may simulate.
			if n := sims.get(simFull) + sims.get(simLadderLow); n != 0 {
				t.Fatalf("stop=%s workers=%d: %d exploration simulations on resume, want 0",
					c.stopAfter, c.workers, n)
			}
		}
		for _, cell := range got.Cells {
			if !cell.Resumed {
				t.Fatalf("stop=%s workers=%d: cell %s/%s not marked resumed",
					c.stopAfter, c.workers, cell.Cell.Scenario.Name, cell.Cell.Target.Name)
			}
		}
	}
}

// TestCompletedCampaignResumesWithoutSimulation: restarting a campaign
// that already ran to completion re-renders the identical report from
// artifacts alone — zero pipeline simulations.
func TestCompletedCampaignResumesWithoutSimulation(t *testing.T) {
	dir := t.TempDir()
	first, err := Run(resumeOptions(1, dir))
	if err != nil {
		t.Fatal(err)
	}
	firstBytes := renderReport(t, first)

	var sims simCounter
	opts := resumeOptions(4, dir)
	opts.Resume = true
	opts.observeSimulation = sims.hook
	again, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if n := sims.total(); n != 0 {
		t.Fatalf("restarted completed campaign ran %d simulations, want 0", n)
	}
	if !bytes.Equal(renderReport(t, again), firstBytes) {
		t.Fatal("restarted completed campaign renders a different report")
	}
}

// TestChangedOptionInvalidatesArtifacts: the content-hashed keys mean a
// changed option misses the stale artifacts and recomputes, yielding
// the same result a fresh run of the new options produces.
func TestChangedOptionInvalidatesArtifacts(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run(resumeOptions(1, dir)); err != nil {
		t.Fatal(err)
	}

	changed := resumeOptions(1, "")
	changed.AccuracyLimit = 0.12
	fresh, err := Run(changed)
	if err != nil {
		t.Fatal(err)
	}

	var sims simCounter
	resumed := resumeOptions(1, dir)
	resumed.AccuracyLimit = 0.12
	resumed.Resume = true
	resumed.observeSimulation = sims.hook
	got, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if n := sims.get(simScreen); n == 0 {
		t.Fatal("changed accuracy limit still hit stale screening artifacts")
	}
	if !bytes.Equal(renderReport(t, got), renderReport(t, fresh)) {
		t.Fatal("resume with changed options diverges from a fresh run of those options")
	}
	for _, cell := range got.Cells {
		if cell.Resumed {
			t.Fatalf("cell %s/%s marked resumed despite invalidated artifacts",
				cell.Cell.Scenario.Name, cell.Cell.Target.Name)
		}
	}
}
