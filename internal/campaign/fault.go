package campaign

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
)

// FaultStore is the fault-injection harness of the crash-safety suite:
// it wraps a real *Store and injects I/O faults on a deterministic
// schedule keyed by operation index, so a test can script "the 3rd save
// hits ENOSPC, the 5th leaves a torn file, the 2nd read sees corrupt
// bytes" and prove the campaign still renders a byte-identical report.
// Faults that damage data do it to the real files on disk — the store's
// own defect handling (miss on corrupt, atomic replace on rewrite) is
// what is under test, not a simulation of it.

// FaultKind selects what an injected fault does.
type FaultKind int

const (
	// FaultWriteError fails the Save with ENOSPC before anything is
	// written — the classic full disk.
	FaultWriteError FaultKind = iota
	// FaultShortWrite truncates the just-written artifact to half its
	// bytes and reports ENOSPC — a torn write on a filesystem without
	// atomic-rename guarantees (or a crash straddling the flush).
	FaultShortWrite
	// FaultCorruptRead flips bytes of the on-disk artifact before the
	// read — bit rot / a half-synced page. The store must treat the
	// damaged artifact as a miss and the campaign must re-run the cell.
	FaultCorruptRead
	// FaultReadError fails the Load with EIO without touching the file.
	FaultReadError
)

// FaultPlan schedules faults by zero-based operation index. Every Save
// call counts one save op and every Load call one load op — retried
// operations advance the counters too, so a transient fault is one that
// schedules no fault at the retried index.
type FaultPlan struct {
	Save map[int]FaultKind
	Load map[int]FaultKind
}

// FaultStore injects the plan's faults into a wrapped *Store. Safe for
// concurrent use; with more than one worker the op order (and so the
// fault placement) depends on scheduling, so deterministic tests run
// single-worker.
type FaultStore struct {
	inner *Store
	plan  FaultPlan

	mu       sync.Mutex
	saveOps  int
	loadOps  int
	injected int
}

// NewFaultStore wraps store with plan.
func NewFaultStore(store *Store, plan FaultPlan) *FaultStore {
	return &FaultStore{inner: store, plan: plan}
}

// Injected reports how many faults have fired so far — tests assert it
// to prove the schedule actually exercised the recovery paths.
func (s *FaultStore) Injected() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected
}

func (s *FaultStore) nextSave() (FaultKind, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k, ok := s.plan.Save[s.saveOps]
	s.saveOps++
	if ok {
		s.injected++
	}
	return k, ok
}

func (s *FaultStore) nextLoad() (FaultKind, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k, ok := s.plan.Load[s.loadOps]
	s.loadOps++
	if ok {
		s.injected++
	}
	return k, ok
}

func (s *FaultStore) artifactPath(name string) string {
	return filepath.Join(s.inner.Dir(), name+".json")
}

func (s *FaultStore) Save(name string, payload any) error {
	kind, fault := s.nextSave()
	if !fault {
		return s.inner.Save(name, payload)
	}
	switch kind {
	case FaultShortWrite:
		// Let the real save land, then tear the published file: the
		// bytes that survive a short write are a prefix.
		if err := s.inner.Save(name, payload); err != nil {
			return err
		}
		if info, err := os.Stat(s.artifactPath(name)); err == nil {
			os.Truncate(s.artifactPath(name), info.Size()/2)
		}
		return fmt.Errorf("campaign: fault injection: short write of %s: %w", name, syscall.ENOSPC)
	default: // FaultWriteError
		return fmt.Errorf("campaign: fault injection: writing %s: %w", name, syscall.ENOSPC)
	}
}

func (s *FaultStore) Load(name string, out any) (bool, error) {
	kind, fault := s.nextLoad()
	if !fault {
		return s.inner.Load(name, out)
	}
	switch kind {
	case FaultCorruptRead:
		// Damage the real file in place, then let the real load see it:
		// the store must report a miss, never an error or bad data.
		path := s.artifactPath(name)
		if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
			for i := range data {
				data[i] ^= 0x5a
			}
			os.WriteFile(path, data, 0o644)
		}
		return s.inner.Load(name, out)
	default: // FaultReadError
		return false, fmt.Errorf("campaign: fault injection: reading %s: %w", name, syscall.EIO)
	}
}

func (s *FaultStore) List() ([]string, error) {
	return s.inner.List()
}
