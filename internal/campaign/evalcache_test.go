package campaign

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"slamgo/internal/evalstore"
	"slamgo/internal/sharedfs"
	"slamgo/internal/slambench"
)

// noEvalDebris fails the test if the evaluation store holds leftover
// temp or lease files after a completed campaign (root and shards).
func noEvalDebris(t *testing.T, dir string) {
	t.Helper()
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if sharedfs.IsTempFile(d.Name()) {
			t.Fatalf("store leaked temp file %s", path)
		}
		if filepath.Ext(d.Name()) == ".lease" {
			t.Fatalf("store leaked lease file %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// storeRecords lists the record keys currently on disk, sorted by the
// deterministic shard walk.
func storeRecords(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "??", "*.evr"))
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(paths))
	for _, p := range paths {
		keys = append(keys, strings.TrimSuffix(filepath.Base(p), ".evr"))
	}
	return keys
}

// TestEvalCacheWarmRerunZeroSimulations is the headline acceptance
// check: a campaign re-run against the store a previous run warmed
// performs zero pipeline simulations — every evaluation is answered
// from disk — and still renders the byte-identical report.
func TestEvalCacheWarmRerunZeroSimulations(t *testing.T) {
	dir := t.TempDir()
	var cold simCounter
	opts := resumeOptions(1, "")
	opts.EvalCacheDir = dir
	opts.observeSimulation = cold.hook
	ref, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := renderReport(t, ref)
	if cold.total() == 0 {
		t.Fatal("cold run simulated nothing")
	}
	if got := ref.EvalStats.Simulations; got != cold.total() {
		t.Fatalf("store counted %d simulations, hook counted %d", got, cold.total())
	}
	if ref.EvalStats.Published != ref.EvalStats.Simulations {
		t.Fatalf("cold run published %d of %d simulations (all results are persistable)",
			ref.EvalStats.Published, ref.EvalStats.Simulations)
	}
	if ref.EvalStats.Degradations != 0 {
		t.Fatalf("healthy store degraded: %+v", ref.EvalStats)
	}

	var warm simCounter
	opts = resumeOptions(1, "")
	opts.EvalCacheDir = dir
	opts.observeSimulation = warm.hook
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.total() != 0 {
		t.Fatalf("warm re-run performed %d simulations, want 0", warm.total())
	}
	if res.EvalStats.Simulations != 0 || res.EvalStats.DiskHits == 0 {
		t.Fatalf("warm re-run stats: %+v", res.EvalStats)
	}
	if !bytes.Equal(renderReport(t, res), refBytes) {
		t.Fatal("warm re-run report diverges from cold run")
	}
	noEvalDebris(t, dir)
}

// TestEvalCacheByteIdenticalAcrossWorkerCounts checks the determinism
// invariant under the store: for workers 1, 4 and 8 sharing one store,
// every cached run renders the byte-identical report of the uncached
// reference run (under -race via make race), the first run fills the
// store and the later runs simulate nothing.
func TestEvalCacheByteIdenticalAcrossWorkerCounts(t *testing.T) {
	refOpts := resumeOptions(1, "")
	refOpts.FidelityStride = 2 // exercise the intra-cell ladder's store-backed rungs
	refOpts.PromoteFraction = 0.5
	ref, err := Run(refOpts)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := renderReport(t, ref)
	if ref.EvalStats != (evalstore.Stats{}) {
		t.Fatalf("uncached run touched an evaluation store: %+v", ref.EvalStats)
	}
	if ref.MemoHits == 0 && ref.MemoMisses == 0 {
		t.Fatal("memo counters not aggregated")
	}

	dir := t.TempDir()
	first := 0
	for i, workers := range []int{1, 4, 8} {
		opts := resumeOptions(workers, "")
		opts.FidelityStride = 2
		opts.PromoteFraction = 0.5
		opts.EvalCacheDir = dir
		res, err := Run(opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(renderReport(t, res), refBytes) {
			t.Fatalf("workers=%d: cached report diverges from uncached run", workers)
		}
		st := res.EvalStats
		if st.Degradations != 0 {
			t.Fatalf("workers=%d: healthy store degraded: %+v", workers, st)
		}
		if i == 0 {
			first = st.Simulations
			if first == 0 {
				t.Fatal("first cached run simulated nothing")
			}
		} else if st.Simulations != 0 {
			t.Fatalf("run %d simulated %d against a warm store, want 0", i, st.Simulations)
		}
	}
	if got := len(storeRecords(t, dir)); got != first {
		t.Fatalf("store holds %d records after %d distinct simulations", got, first)
	}
	noEvalDebris(t, dir)
}

// TestEvalCacheCooperatingWorkersSimulateOnceEach runs three
// cooperating worker processes (in-process) sharing one checkpoint
// directory AND one evaluation store: every worker renders the
// reference report and the workers' summed simulation counters prove
// each distinct (configuration, sequence, device, fidelity) was
// simulated exactly once per shared store, not once per process.
func TestEvalCacheCooperatingWorkersSimulateOnceEach(t *testing.T) {
	// Ground truth: a solo cold run against its own store. Its
	// simulation count is the number of distinct keys the campaign
	// evaluates — the exactly-once bound for any cooperating fleet.
	soloDir := t.TempDir()
	soloOpts := resumeOptions(1, "")
	soloOpts.EvalCacheDir = soloDir
	solo, err := Run(soloOpts)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := renderReport(t, solo)
	distinct := solo.EvalStats.Simulations

	const workers = 3
	ckpt, dir := t.TempDir(), t.TempDir()
	results := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			opts := resumeOptions(2, ckpt)
			opts.WorkerID = fmt.Sprintf("w%d", w)
			opts.EvalCacheDir = dir
			results[w], errs[w] = Run(opts)
		}(w)
	}
	wg.Wait()

	sims, degradations := 0, 0
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if !bytes.Equal(renderReport(t, results[w]), refBytes) {
			t.Fatalf("worker %d report diverges from solo run", w)
		}
		sims += results[w].EvalStats.Simulations
		degradations += results[w].EvalStats.Degradations
	}
	if sims != distinct {
		t.Fatalf("workers simulated %d configurations between them, want %d (once per shared store)",
			sims, distinct)
	}
	if degradations != 0 {
		t.Fatalf("healthy shared store degraded %d times", degradations)
	}
	noEvalDebris(t, dir)
}

// TestEvalCacheFaultMatrix drives the campaign over the store's
// injected fault scenarios: every fault completes the campaign with an
// unchanged report — degradation observable in provenance counters,
// never fatal, no leaked files.
func TestEvalCacheFaultMatrix(t *testing.T) {
	ref, err := Run(resumeOptions(1, ""))
	if err != nil {
		t.Fatal(err)
	}
	refBytes := renderReport(t, ref)

	warmStore := func(t *testing.T) (string, int) {
		t.Helper()
		dir := t.TempDir()
		opts := resumeOptions(1, "")
		opts.EvalCacheDir = dir
		res, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		return dir, res.EvalStats.Simulations
	}

	t.Run("corrupt records on read are silently re-simulated and repaired", func(t *testing.T) {
		dir, _ := warmStore(t)
		opts := resumeOptions(1, "")
		opts.EvalCacheDir = dir
		// Single worker: the first two load ops are the first two
		// evaluations; damage both records in place.
		opts.evalFaults = &evalstore.FaultPlan{Load: map[int]evalstore.FaultKind{
			0: evalstore.FaultCorruptRead, 1: evalstore.FaultCorruptRead,
		}}
		res, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(renderReport(t, res), refBytes) {
			t.Fatal("corrupt-read run diverges from reference")
		}
		st := res.EvalStats
		if st.Simulations != 2 || st.Degradations != 0 {
			t.Fatalf("corruption is a miss repaired by re-simulation, not a degradation: %+v", st)
		}
		// The re-simulations repaired the store: a clean run hits everything.
		clean := resumeOptions(1, "")
		clean.EvalCacheDir = dir
		res, err = Run(clean)
		if err != nil {
			t.Fatal(err)
		}
		if res.EvalStats.Simulations != 0 {
			t.Fatalf("store not repaired after corrupt reads: %+v", res.EvalStats)
		}
		noEvalDebris(t, dir)
	})

	t.Run("ENOSPC on every save degrades to inline-served metrics", func(t *testing.T) {
		dir := t.TempDir()
		plan := &evalstore.FaultPlan{Save: map[int]evalstore.FaultKind{}}
		for i := 0; i < 4096; i++ { // every retry attempt of every save
			plan.Save[i] = evalstore.FaultWriteError
		}
		opts := resumeOptions(1, "")
		opts.EvalCacheDir = dir
		opts.evalFaults = plan
		opts.sleepFn = func(time.Duration) {} // don't serve out the retry ladder for real
		res, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(renderReport(t, res), refBytes) {
			t.Fatal("full-disk run diverges from reference")
		}
		st := res.EvalStats
		if st.Published != 0 {
			t.Fatalf("full disk published %d records", st.Published)
		}
		if st.Degradations != st.Simulations || st.Simulations == 0 {
			t.Fatalf("every failed publish should count one degradation: %+v", st)
		}
		if got := storeRecords(t, dir); len(got) != 0 {
			t.Fatalf("records survived a full disk: %v", got)
		}
	})

	t.Run("torn write is repaired by the next run", func(t *testing.T) {
		dir := t.TempDir()
		// Defeat the whole retry ladder of the first save (5 attempts):
		// the published-then-truncated bytes stay torn on disk.
		plan := &evalstore.FaultPlan{Save: map[int]evalstore.FaultKind{0: evalstore.FaultShortWrite}}
		for i := 1; i < sharedfs.DefaultRetryPolicy().Attempts; i++ {
			plan.Save[i] = evalstore.FaultWriteError
		}
		opts := resumeOptions(1, "")
		opts.EvalCacheDir = dir
		opts.evalFaults = plan
		opts.sleepFn = func(time.Duration) {}
		res, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(renderReport(t, res), refBytes) {
			t.Fatal("torn-write run diverges from reference")
		}
		if res.EvalStats.Degradations != 1 {
			t.Fatalf("the torn save should degrade exactly once: %+v", res.EvalStats)
		}
		// The warm run sees the torn record as a miss, re-simulates just
		// that configuration, and repairs the store in place.
		warm := resumeOptions(1, "")
		warm.EvalCacheDir = dir
		res, err = Run(warm)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(renderReport(t, res), refBytes) {
			t.Fatal("post-torn warm run diverges from reference")
		}
		if st := res.EvalStats; st.Simulations != 1 || st.Degradations != 0 {
			t.Fatalf("torn record should cost exactly one re-simulation: %+v", st)
		}
		noEvalDebris(t, dir)
	})

	t.Run("EIO on every read degrades to inline simulation", func(t *testing.T) {
		dir, distinct := warmStore(t)
		plan := &evalstore.FaultPlan{Load: map[int]evalstore.FaultKind{}}
		for i := 0; i < 4096; i++ {
			plan.Load[i] = evalstore.FaultReadError
		}
		opts := resumeOptions(1, "")
		opts.EvalCacheDir = dir
		opts.evalFaults = plan
		opts.sleepFn = func(time.Duration) {}
		res, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(renderReport(t, res), refBytes) {
			t.Fatal("unreadable-store run diverges from reference")
		}
		st := res.EvalStats
		if st.Simulations != distinct || st.DiskHits != 0 {
			t.Fatalf("every read failing should re-simulate everything inline: %+v (want %d simulations)",
				st, distinct)
		}
		if st.Degradations == 0 {
			t.Fatal("unreadable store never counted a degradation")
		}
	})

	t.Run("dead simulator's lease is taken over", func(t *testing.T) {
		// Learn one key the campaign will evaluate from a throwaway warm
		// store (keys are deterministic), then squat on it in a fresh
		// store with a lease whose heartbeat died an hour ago.
		warmDir, distinct := warmStore(t)
		keys := storeRecords(t, warmDir)
		if len(keys) == 0 {
			t.Fatal("warm store holds no records")
		}
		dir := t.TempDir()
		past := func() time.Time { return time.Now().Add(-time.Hour) }
		if _, ok, err := sharedfs.NewLeaseManager(dir, "dead", time.Second, past).TryAcquire(keys[0]); err != nil || !ok {
			t.Fatalf("staging dead simulator's lease: ok=%v err=%v", ok, err)
		}
		opts := resumeOptions(1, "")
		opts.EvalCacheDir = dir
		opts.LeaseTTL = 500 * time.Millisecond
		res, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(renderReport(t, res), refBytes) {
			t.Fatal("takeover run diverges from reference")
		}
		if st := res.EvalStats; st.Simulations != distinct || st.Degradations != 0 {
			t.Fatalf("takeover should simulate normally: %+v (want %d simulations)", st, distinct)
		}
		if _, err := os.Stat(filepath.Join(dir, keys[0]+".lease")); !os.IsNotExist(err) {
			t.Fatalf("reclaimed lease not released (stat err %v)", err)
		}
		noEvalDebris(t, dir)
	})

	t.Run("unusable store directory never fails the campaign", func(t *testing.T) {
		parent := t.TempDir()
		blocked := filepath.Join(parent, "occupied")
		if err := os.WriteFile(blocked, []byte("not a directory"), 0o644); err != nil {
			t.Fatal(err)
		}
		opts := resumeOptions(1, "")
		opts.EvalCacheDir = blocked
		res, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(renderReport(t, res), refBytes) {
			t.Fatal("broken-store run diverges from reference")
		}
		st := res.EvalStats
		if st.Degradations != st.Simulations || st.Simulations == 0 {
			t.Fatalf("broken store should degrade every evaluation: %+v", st)
		}
	})
}

// TestResolveEvalCacheDir covers the CLI flag resolution — defaults,
// opt-out, anchoring — and its fail-fast rejections (satellite of the
// flag-validation policy: contradictions die before any simulation).
func TestResolveEvalCacheDir(t *testing.T) {
	ok := []struct {
		flag, ckpt string
		maxMB      int64
		want       string
	}{
		{"", "", 0, ""},                          // no cache anywhere
		{"off", "", 0, ""},                       // explicit opt-out
		{"off", "/ckpt", 0, ""},                  // opt-out beats the checkpoint default
		{"", "/ckpt", 0, "/ckpt/evalcache"},      // defaults on alongside checkpointing
		{"", "/ckpt", 64, "/ckpt/evalcache"},     // bound applies to the default store
		{"store", "/ckpt", 0, "/ckpt/store"},     // relative path anchored under the checkpoint
		{"/abs/store", "", 128, "/abs/store"},    // absolute path stands alone
		{"/abs/store", "/ckpt", 0, "/abs/store"}, // absolute path ignores the checkpoint
	}
	for _, c := range ok {
		got, err := ResolveEvalCacheDir(c.flag, c.ckpt, c.maxMB)
		if err != nil || got != c.want {
			t.Fatalf("ResolveEvalCacheDir(%q, %q, %d) = %q, %v; want %q",
				c.flag, c.ckpt, c.maxMB, got, err, c.want)
		}
	}
	bad := []struct {
		name, flag, ckpt string
		maxMB            int64
	}{
		{"size bound on a disabled cache", "off", "", 64},
		{"size bound on a disabled cache with checkpoint", "off", "/ckpt", 64},
		{"size bound with no cache to bound", "", "", 64},
		{"relative path with nothing to anchor it", "store", "", 0},
		{"negative size bound", "/abs/store", "", -1},
	}
	for _, c := range bad {
		if _, err := ResolveEvalCacheDir(c.flag, c.ckpt, c.maxMB); err == nil {
			t.Fatalf("%s: ResolveEvalCacheDir(%q, %q, %d) accepted", c.name, c.flag, c.ckpt, c.maxMB)
		}
	}
}

// TestValidateEvalCacheOptions covers the engine-level rejections.
func TestValidateEvalCacheOptions(t *testing.T) {
	opts := resumeOptions(1, "")
	opts.EvalCacheMaxBytes = -1
	if err := opts.Validate(); err == nil {
		t.Fatal("negative EvalCacheMaxBytes accepted")
	}
	opts = resumeOptions(1, "")
	opts.EvalCacheMaxBytes = 1 << 20
	if err := opts.Validate(); err == nil {
		t.Fatal("EvalCacheMaxBytes without EvalCacheDir accepted")
	}
	opts.EvalCacheDir = t.TempDir()
	if err := opts.Validate(); err != nil {
		t.Fatalf("valid eval-cache options rejected: %v", err)
	}
}

// TestEvalCacheBounded checks the size bound end to end: a campaign
// over a store budget far below its record volume evicts
// deterministically and still renders the reference report.
func TestEvalCacheBounded(t *testing.T) {
	ref, err := Run(resumeOptions(1, ""))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := resumeOptions(1, "")
	opts.EvalCacheDir = dir
	opts.EvalCacheMaxBytes = 512 // a handful of ~150-byte records
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderReport(t, res), renderReport(t, ref)) {
		t.Fatal("bounded-store run diverges from reference")
	}
	if res.EvalStats.Evictions == 0 {
		t.Fatal("tiny budget never evicted")
	}
	var total int64
	for _, key := range storeRecords(t, dir) {
		if info, err := os.Stat(filepath.Join(dir, key[len("ev-"):len("ev-")+2], key+".evr")); err == nil {
			total += info.Size()
		}
	}
	if total > opts.EvalCacheMaxBytes {
		t.Fatalf("store holds %d bytes, budget %d", total, opts.EvalCacheMaxBytes)
	}
	noEvalDebris(t, dir)
}

// TestCacheStatsReportSurface pins the opt-in JSON summary and the
// always-on provenance lines: the default JSON surface has no cache
// counters (cold and warm runs must stay byte-comparable), CacheStats
// adds the "caches" block, and WriteCampaignProvenance renders the
// evalstore and memo counters for stderr.
func TestCacheStatsReportSurface(t *testing.T) {
	res := &Result{
		AccuracyLimit: 0.1,
		EvalStats:     evalstore.Stats{Simulations: 3, DiskHits: 7, Published: 3},
		MemoHits:      11,
		MemoMisses:    10,
	}
	var buf bytes.Buffer
	if err := slambench.WriteCampaignJSON(&buf, res.Report()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "caches") {
		t.Fatal("default JSON report leaks cache counters")
	}
	res.CacheSummary = true
	buf.Reset()
	if err := slambench.WriteCampaignJSON(&buf, res.Report()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"caches"`, `"eval_disk_hits": 7`, `"memo_hits": 11`, `"seq_renders": 0`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("opt-in JSON summary missing %s:\n%s", want, buf.String())
		}
	}
	buf.Reset()
	if err := slambench.WriteCampaignProvenance(&buf, res.Report()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"evalstore: simulations=3 disk-hits=7 published=3 degradations=0 evictions=0",
		"memo: hits=11 misses=10",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("provenance missing %q:\n%s", want, buf.String())
		}
	}
}
