package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"slamgo/internal/hypermapper"
)

// This file is the campaign's cross-cell transfer-learning schedule.
// With Options.Transfer the Explore stage runs as two waves instead of
// one flat fan-out:
//
//	wave 1  anchor cells — the grid diagonal — explore from scratch,
//	        exactly as a transfer-off campaign would, and publish their
//	        observation logs as obslog artifacts;
//	wave 2  every remaining cell (a borrower) warm-starts from a fixed
//	        donor set drawn from the anchors: its same-scenario anchor
//	        plus its same-device anchors. Donor winners concentrate the
//	        borrower's (reduced) seeding budget via a warm-start seeder,
//	        and the pooled donor observations fit a surrogate prior that
//	        biases acquisition while local evidence is thin.
//
// Donor knowledge informs *where the borrower samples*; donor
// observations never enter the borrower's observation log, front or
// best pick — metrics are workload- and device-specific. The wave split
// is a plain artifact dependency: anchors are ordinary cells with
// ordinary artifact names (a transfer-off campaign resumes them and
// vice versa), and in cooperative worker mode every process drives wave
// 1 for every anchor through the usual lease/poll protocol, so each
// process holds all donor artifacts before any borrower starts. The
// donor topology, budgets and donor content are all pure functions of
// the options and seed, so a transfer campaign keeps the determinism
// contract: bit-identical reports for any worker count and across
// cooperating processes.

// warmFraction is the share of a borrower's reduced seeding budget
// committed to donor knowledge (exact donor winners first, then clamped
// neighbourhood draws around them — see hypermapper.WarmStartSeeder).
// It is deliberately higher than the seeder's generic 0.5 default: a
// borrower's budget is already cut well below the from-scratch
// RandomSamples, so spending the remainder on a coarse Latin hypercube
// buys almost no coverage, while refining around donor winners reliably
// recovers the donor's Pareto region on the new cell. Global coverage
// is not lost — the active phase scores a half-random candidate pool
// every round, which is where from-scratch discovery happens anyway.
const warmFraction = 0.9

// transferExtraRound reports whether a warm-started borrower gets one
// extra active-learning round on top of the campaign's. A borrower's
// savings come from slashing the seeding budget (TransferSeeds vs
// RandomSamples); model-guided picks recover front quality per
// simulation far better than the random draws they replace, so the
// freed budget is reinvested in acquisition — but only when the total
// still clears the 20% savings bar against a from-scratch cell:
//
//	TransferSeeds + (A+1)·B ≤ 0.8 · (RandomSamples + A·B)
//
// evaluated in integers (×5) so the grant is an exact pure function of
// the options — it shifts the borrower's evaluation schedule, and the
// options already key the borrower's artifact hash, so determinism and
// resume compatibility hold without new hash inputs.
func (o Options) transferExtraRound() bool {
	a, b := o.ActiveIterations, o.BatchPerIteration
	return 5*(o.TransferSeeds+(a+1)*b) <= 4*(o.RandomSamples+a*b)
}

// anchorIndices returns the grid-diagonal anchor cells: scenario si
// anchors at target si mod nTargets, so every scenario and (for grids
// with at least as many scenarios as targets) every target has an
// anchor explored from scratch. One entry per scenario, ascending grid
// index — a pure function of the grid shape.
func anchorIndices(nScenarios, nTargets int) []int {
	out := make([]int, 0, nScenarios)
	for si := 0; si < nScenarios; si++ {
		out = append(out, si*nTargets+si%nTargets)
	}
	return out
}

// donorIndices returns the fixed donor set of borrower cell idx: its
// same-scenario anchor first (same workload, different device — the
// strongest signal for configuration transfer), then every same-device
// anchor in ascending grid index. Pure function of (idx, grid shape);
// never contains idx itself because borrowers are off-diagonal by
// definition.
func donorIndices(idx, nTargets int, anchors []int) []int {
	si, ti := idx/nTargets, idx%nTargets
	out := []int{anchors[si]}
	for sj, a := range anchors {
		if sj != si && a%nTargets == ti {
			out = append(out, a)
		}
	}
	return out
}

// planTransfer fills r.anchors and r.donors from the grid shape when
// transfer is on: donors[i] is nil for anchors, the fixed donor index
// list for borrowers.
func (r *runner) planTransfer() {
	if !r.opts.Transfer {
		return
	}
	nTargets := len(r.opts.Targets)
	r.anchors = anchorIndices(len(r.opts.Scenarios), nTargets)
	isAnchor := make(map[int]bool, len(r.anchors))
	for _, a := range r.anchors {
		isAnchor[a] = true
	}
	r.donors = make([][]int, len(r.cells))
	for i := range r.cells {
		if !isAnchor[i] {
			r.donors[i] = donorIndices(i, nTargets, r.anchors)
		}
	}
}

// transferDonors returns the borrower's donor indices, or nil when the
// cell explores from scratch (transfer off, anchor cell, or a stage
// other than the explore wave — the promote stage's full-fidelity
// re-exploration of a screened cell never warm-starts, its screening
// observations already cover the local landscape).
func (r *runner) transferDonors(cell Cell, fidelity string) []int {
	if r.donors == nil || fidelity != r.exploreFidelity() {
		return nil
	}
	return r.donors[cell.Index]
}

// exploreFidelity is the fidelity the Explore stage runs at.
func (r *runner) exploreFidelity() string {
	if r.opts.CellStride > 1 {
		return FidelityScreen
	}
	return FidelityFull
}

// obsLogArtifact is the persisted per-cell observation log — the
// content-addressed artifact kind borrowers read donor knowledge
// through. It duplicates the exploration artifact's observation slice
// under a donor-facing key so transfer consumers never couple to the
// exploration artifact schema, and records the fidelity so a
// full-fidelity borrower can never ingest a screening log.
type obsLogArtifact struct {
	Scenario     string                    `json:"scenario"`
	Device       string                    `json:"device"`
	Fidelity     string                    `json:"fidelity"`
	Observations []hypermapper.Observation `json:"observations"`
}

// obsLogName keys a cell's observation log on everything that
// determines its bytes: the cell spec, seed and exploration options —
// the same inputs as the exploration artifact, under the obslog kind.
func (r *runner) obsLogName(cell Cell, fidelity string) string {
	o := r.opts
	h := sha256.New()
	fmt.Fprintf(h, "v%d|obslog|%s|", storeVersion, fidelity)
	fmt.Fprintf(h, "scenario=%s|scale=%+v|target=%+v|", cell.Scenario.Name, cell.Scenario.Scale, cell.Target)
	fmt.Fprintf(h, "seed=%d|cellseed=%d|", o.Seed, cellSeed(o.Seed, cell.Index))
	fmt.Fprintf(h, "explore=%d/%d/%d|limit=%g|",
		o.RandomSamples, o.ActiveIterations, o.BatchPerIteration, o.AccuracyLimit)
	if fidelity == FidelityScreen {
		fmt.Fprintf(h, "cellstride=%d|", o.CellStride)
	} else {
		fmt.Fprintf(h, "mf=%d/%g|", o.FidelityStride, o.PromoteFraction)
	}
	return fmt.Sprintf("obslog-c%03d-%s", cell.Index, hex.EncodeToString(h.Sum(nil))[:16])
}

// publishObsLogs persists every anchor's observation log after wave 1.
// Logs are deterministic artifact content, so concurrent writers from
// cooperating processes produce identical bytes (the store's atomic
// rename makes the race harmless); a quarantined anchor publishes its
// (empty) log too, so resumed borrowers see the same degraded donor set
// everywhere. Store faults abort like any other checkpoint fault.
func (r *runner) publishObsLogs(fidelity string) error {
	if r.store == nil {
		return nil
	}
	for _, idx := range r.anchors {
		art := r.waveArtifact(idx, fidelity)
		cell := r.cells[idx]
		log := obsLogArtifact{
			Scenario:     art.Scenario,
			Device:       art.Device,
			Fidelity:     fidelity,
			Observations: art.Observations,
		}
		if err := r.store.Save(r.obsLogName(cell, fidelity), log); err != nil {
			return fmt.Errorf("campaign: publishing observation log of cell %s/%s: %w",
				cell.Scenario.Name, cell.Target.Name, err)
		}
	}
	return nil
}

// waveArtifact returns the cell's explore-wave artifact (screening
// slot when the cell ladder is on, final slot otherwise).
func (r *runner) waveArtifact(idx int, fidelity string) *cellArtifact {
	if fidelity == FidelityScreen {
		return r.screens[idx]
	}
	return r.arts[idx]
}

// donorData assembles a borrower's transfer inputs from its donor
// anchors: per-donor observation sets for the prior (one slice per
// donor, so normalisation stays per-cell), the borrowed seed points
// (each donor's best feasible configuration first, then its leading
// front members, deduplicated in donor order), and the labels of the
// donors that actually contributed. Donor logs are read from the store
// (the obslog artifact kind) when one is available, falling back to the
// wave-1 in-memory artifact — both carry the identical deterministic
// observation slice, so the source never shows in the results.
// Quarantined donors and donors with no usable full-fidelity
// observations contribute nothing; with every donor empty the borrower
// degrades to exploring from scratch.
func (r *runner) donorData(cell Cell, fidelity string, donors []int) (sets [][]hypermapper.Observation, points []hypermapper.Point, labels []string) {
	var perDonor [][]hypermapper.Point
	for _, idx := range donors {
		art := r.waveArtifact(idx, fidelity)
		if art == nil || art.Failed {
			continue
		}
		obs := art.Observations
		if r.opts.Resume && r.store != nil {
			var log obsLogArtifact
			ok, err := r.store.Load(r.obsLogName(r.cells[idx], fidelity), &log)
			if err == nil && ok && log.Fidelity == fidelity {
				obs = log.Observations
			}
			// A missing or faulted log is not an error: the in-memory
			// artifact carries the same observations.
		}
		usable := hypermapper.FullObservations(obs)
		if len(usable) == 0 {
			continue
		}
		sets = append(sets, usable)
		labels = append(labels, fmt.Sprintf("%s/%s", art.Scenario, art.Device))
		// Every front member is offered (unlike cross-measurement, which
		// caps candidates at MaxFrontCandidates because each one costs a
		// simulation per cell): seed points only steer sampling, so more
		// donor winners just means better coverage of the donor's
		// Pareto-optimal region.
		var pts []hypermapper.Point
		if art.HasBestFeasible {
			pts = append(pts, art.BestFeasible.X)
		}
		for _, o := range art.Front {
			pts = append(pts, o.X)
		}
		perDonor = append(perDonor, pts)
	}
	// Interleave round-robin across donors — every donor's leading
	// winner before any donor's runner-up — so a tight seeding budget
	// hears every transfer signal (the same-scenario donor AND the
	// same-device ones) instead of replaying the first donor's whole
	// front. Deduplication keeps the first (highest-priority) slot of a
	// configuration donated twice.
	seen := map[string]bool{}
	for rank := 0; ; rank++ {
		added := false
		for _, pts := range perDonor {
			if rank >= len(pts) {
				continue
			}
			added = true
			pt := pts[rank]
			key := string(hypermapper.AppendKey(make([]byte, 0, 8*len(pt)), pt))
			if !seen[key] {
				seen[key] = true
				points = append(points, pt.Clone())
			}
		}
		if !added {
			break
		}
	}
	return sets, points, labels
}
