// Package campaign is the cross-scene / cross-device DSE engine: it
// replays the paper's per-scene, per-device tuning methodology over a
// whole grid of scenario cells instead of one invocation per scene.
//
// A campaign enumerates a scenario registry — scene × trajectory ×
// resolution × noise, the analogues of ICL-NUIM living-room kt0–kt3 and
// office kt0–kt1 — crossed with a set of device targets (the ODROID-XU3
// plus named picks from the phone catalogue). Every cell runs a
// Fig2-style constrained exploration through a shared per-cell
// memoized evaluator, cells are sharded over internal/parallel, and the
// per-cell Pareto fronts are aggregated into one cross-scenario
// *robust* configuration: the candidate that stays feasible in every
// cell and minimises its worst-case per-cell rank
// (hypermapper.RobustBest). That makes the paper's "one configuration
// does not fit all scenes" point quantitative — the per-cell winners
// are reported next to the single configuration you would ship when
// the scene is not known in advance.
//
// Determinism: the cell grid is enumerated in fixed scenario-major
// order, each cell derives its seed from the campaign seed and its own
// grid index, and every layer below (optimizer batches, ladder
// promotion, parallel map) is already bit-deterministic for any worker
// count — so a seeded campaign produces an identical report for any
// Workers value.
package campaign

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"slamgo/internal/core"
	"slamgo/internal/device"
	"slamgo/internal/hypermapper"
	"slamgo/internal/kfusion"
	"slamgo/internal/parallel"
	"slamgo/internal/phones"
	"slamgo/internal/slambench"
)

// Scenario is one workload cell of the registry: a named scene,
// trajectory, resolution and noise combination.
type Scenario struct {
	// Name identifies the scenario in reports (e.g. "lr_kt2").
	Name string
	// Scale fixes the scene, trajectory, resolution, frame count and
	// noise of the cell's sequence.
	Scale core.Scale
}

// Scenarios derives the full scene × trajectory registry at a base
// scale: the four living-room trajectories and the two office ones,
// all at the base's resolution, frame count and noise setting.
func Scenarios(base core.Scale) []Scenario {
	out := make([]Scenario, 0, 6)
	for kt := 0; kt <= 3; kt++ {
		s := base
		s.KT, s.Office = kt, false
		out = append(out, Scenario{Name: fmt.Sprintf("lr_kt%d", kt), Scale: s})
	}
	for kt := 0; kt <= 1; kt++ {
		s := base
		s.KT, s.Office = kt, true
		out = append(out, Scenario{Name: fmt.Sprintf("of_kt%d", kt), Scale: s})
	}
	return out
}

// SelectScenarios picks named scenarios out of the base registry,
// preserving the requested order.
func SelectScenarios(base core.Scale, names []string) ([]Scenario, error) {
	all := Scenarios(base)
	byName := make(map[string]Scenario, len(all))
	for _, s := range all {
		byName[s.Name] = s
	}
	out := make([]Scenario, 0, len(names))
	for _, n := range names {
		s, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("campaign: unknown scenario %q (have lr_kt0..lr_kt3, of_kt0..of_kt1)", n)
		}
		out = append(out, s)
	}
	return out, nil
}

// ResolveTargets maps device names onto profiles: "odroid-xu3" and
// "desktop-gpu" resolve to the built-in boards, anything else is looked
// up in the seed's phone catalogue (one phones.ByName batch, so the
// catalogue is generated once however many phones are named).
func ResolveTargets(seed int64, names []string) ([]device.Profile, error) {
	var phoneNames []string
	for _, n := range names {
		if n != "odroid-xu3" && n != "desktop-gpu" {
			phoneNames = append(phoneNames, n)
		}
	}
	picks, err := phones.ByName(seed, phoneNames...)
	if err != nil {
		return nil, err
	}
	out := make([]device.Profile, 0, len(names))
	for _, n := range names {
		switch n {
		case "odroid-xu3":
			out = append(out, device.OdroidXU3())
		case "desktop-gpu":
			out = append(out, device.DesktopGPU())
		default:
			out = append(out, picks[0])
			picks = picks[1:]
		}
	}
	return out, nil
}

// Cell is one scenario × target combination of the campaign grid.
type Cell struct {
	// Index is the cell's position in the fixed grid enumeration; the
	// cell's exploration seed derives from it.
	Index    int
	Scenario Scenario
	Target   device.Profile
}

// Grid enumerates scenarios × targets in fixed scenario-major order.
func Grid(scenarios []Scenario, targets []device.Profile) []Cell {
	out := make([]Cell, 0, len(scenarios)*len(targets))
	for _, s := range scenarios {
		for _, t := range targets {
			out = append(out, Cell{Index: len(out), Scenario: s, Target: t})
		}
	}
	return out
}

// Options parameterise a campaign run.
type Options struct {
	// Scenarios and Targets span the cell grid (both must be non-empty).
	Scenarios []Scenario
	Targets   []device.Profile
	// RandomSamples / ActiveIterations / BatchPerIteration configure
	// each cell's exploration; zero values use the Fig2 defaults.
	RandomSamples     int
	ActiveIterations  int
	BatchPerIteration int
	// AccuracyLimit is the shared feasibility bound (default 0.05 m).
	AccuracyLimit float64
	// Seed drives the whole campaign; each cell's exploration seed is
	// derived from it and the cell's grid index.
	Seed int64
	// Workers bounds the parallelism at every level: cells fan out over
	// the worker pool, and each cell's exploration uses the same knob
	// (internal/parallel caps nested regions to idle cores). The
	// campaign result is identical for any value.
	Workers int
	// FidelityStride > 1 enables the multi-fidelity ladder inside every
	// cell (see core.Fig2Options).
	FidelityStride int
	// PromoteFraction is the ladder's promoted share per batch.
	PromoteFraction float64
	// MaxFrontCandidates caps how many Pareto-front members each cell
	// contributes to the robust candidate set, fastest first (the
	// cell's best feasible configuration is always included). Default 3.
	MaxFrontCandidates int
	// Log, when non-nil, receives progress lines (order follows
	// scheduling, not the grid; the report itself stays deterministic).
	Log func(string)
}

// CellResult is one cell's exploration outcome.
type CellResult struct {
	Cell Cell
	// Front is the cell's Pareto front (runtime vs max ATE).
	Front []hypermapper.Observation
	// BestFeasible is the fastest configuration meeting the accuracy
	// limit in this cell.
	BestFeasible    hypermapper.Observation
	HasBestFeasible bool
	// Evaluations counts every configuration the cell's *exploration*
	// observed (screening runs included); FullFidelityEvals and
	// LowFidelityEvals split that spend by ladder rung (LowFidelityEvals
	// is 0 without the ladder). The robust aggregation phase afterwards
	// cross-measures up to CandidateCount-1 foreign winners per cell at
	// full fidelity; that spend is shared campaign overhead and not part
	// of these per-cell exploration counters.
	Evaluations       int
	FullFidelityEvals int
	LowFidelityEvals  int
}

// RobustResult is the cross-scenario aggregation outcome.
type RobustResult struct {
	// Point and Config are the winning configuration.
	Point  hypermapper.Point
	Config kfusion.Config
	// Pick carries the winner's per-cell ranks and the aggregation
	// criteria it minimised.
	Pick hypermapper.RobustPick
	// PerCell holds the winner's full-fidelity metrics in every cell,
	// in grid order.
	PerCell []hypermapper.Metrics
}

// Result is a full campaign outcome.
type Result struct {
	// Cells are the per-cell results in grid order.
	Cells []CellResult
	// AccuracyLimit echoes the option used.
	AccuracyLimit float64
	// CandidateCount is the size of the deduplicated cross-cell
	// candidate set the robust configuration was selected from.
	CandidateCount int
	// Robust is the rank-aggregated cross-scenario configuration.
	Robust    RobustResult
	HasRobust bool
}

// cellRun pairs a cell's public result with the memoized full-fidelity
// evaluator the robust phase re-uses (candidates already measured in
// their home cell cost nothing there).
type cellRun struct {
	result CellResult
	full   hypermapper.Evaluator
	err    error
}

// Run executes the campaign: one constrained Fig2-style exploration per
// grid cell, sharded over the worker pool, then cross-scenario robust
// aggregation over the union of per-cell winners.
func Run(opts Options) (*Result, error) {
	if len(opts.Scenarios) == 0 || len(opts.Targets) == 0 {
		return nil, errors.New("campaign: need at least one scenario and one target")
	}
	if opts.AccuracyLimit <= 0 {
		opts.AccuracyLimit = 0.05
	}
	if opts.RandomSamples <= 0 {
		opts.RandomSamples = 20
	}
	if opts.ActiveIterations <= 0 {
		opts.ActiveIterations = 5
	}
	if opts.BatchPerIteration <= 0 {
		opts.BatchPerIteration = 4
	}
	if opts.MaxFrontCandidates <= 0 {
		opts.MaxFrontCandidates = 3
	}
	for _, t := range opts.Targets {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	space := core.DSESpace()
	cells := Grid(opts.Scenarios, opts.Targets)
	// Cells log from worker goroutines; serialise here so any callback
	// that is fine for the serial Fig2 hooks is fine for campaigns too.
	var logMu sync.Mutex
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			logMu.Lock()
			opts.Log(fmt.Sprintf(format, args...))
			logMu.Unlock()
		}
	}

	// Phase 1: every cell runs its own seeded exploration. MapOrdered
	// returns outcomes in grid order whatever the scheduling.
	runs := parallel.MapOrdered(opts.Workers, cells, func(i int, cell Cell) *cellRun {
		run := exploreCell(space, cell, opts)
		if run.err == nil {
			logf("cell %d (%s on %s): %d evaluations, front %d",
				i, cell.Scenario.Name, cell.Target.Name,
				run.result.Evaluations, len(run.result.Front))
		}
		return run
	})
	res := &Result{AccuracyLimit: opts.AccuracyLimit}
	for _, r := range runs {
		if r.err != nil {
			return nil, r.err
		}
		res.Cells = append(res.Cells, r.result)
	}

	// Phase 2: candidate set = the default configuration plus every
	// cell's best feasible and leading front members, deduplicated in
	// grid order so the set is identical for any worker count.
	var candidates []hypermapper.Point
	seen := map[string]bool{}
	add := func(pt hypermapper.Point) {
		key := string(hypermapper.AppendKey(make([]byte, 0, 8*len(pt)), pt))
		if !seen[key] {
			seen[key] = true
			candidates = append(candidates, pt.Clone())
		}
	}
	add(core.DefaultPoint(space))
	for _, c := range res.Cells {
		if c.HasBestFeasible {
			add(c.BestFeasible.X)
		}
		for i, o := range c.Front {
			if i >= opts.MaxFrontCandidates {
				break
			}
			add(o.X)
		}
	}
	res.CandidateCount = len(candidates)

	// Phase 3: measure every candidate in every cell at full fidelity
	// (per-cell memos absorb the home-cell repeats) and rank-aggregate.
	type pair struct{ cand, cell int }
	pairs := make([]pair, 0, len(candidates)*len(cells))
	for i := range candidates {
		for j := range cells {
			pairs = append(pairs, pair{i, j})
		}
	}
	metrics := parallel.MapOrdered(opts.Workers, pairs, func(_ int, p pair) hypermapper.Metrics {
		return runs[p.cell].full(candidates[p.cand])
	})
	perCandidate := make([][]hypermapper.Metrics, len(candidates))
	for i := range perCandidate {
		perCandidate[i] = metrics[i*len(cells) : (i+1)*len(cells)]
	}
	pick, ok := hypermapper.RobustBest(perCandidate,
		hypermapper.AccuracyLimit(opts.AccuracyLimit),
		func(m hypermapper.Metrics) float64 { return m.Runtime })
	if !ok {
		return res, nil
	}
	cfg, err := core.ConfigFromPoint(space, candidates[pick.Index])
	if err != nil {
		return nil, fmt.Errorf("campaign: robust candidate invalid: %w", err)
	}
	res.Robust = RobustResult{
		Point:   candidates[pick.Index],
		Config:  cfg,
		Pick:    pick,
		PerCell: perCandidate[pick.Index],
	}
	res.HasRobust = true
	logf("robust configuration: candidate %d of %d, worst rank %d, feasible everywhere %v",
		pick.Index, len(candidates), pick.WorstRank, pick.FeasibleEverywhere)
	return res, nil
}

// exploreCell runs one cell's constrained exploration.
func exploreCell(space *hypermapper.Space, cell Cell, opts Options) *cellRun {
	seq, err := cell.Scenario.Scale.Sequence()
	if err != nil {
		return &cellRun{err: fmt.Errorf("campaign: cell %s/%s: %w", cell.Scenario.Name, cell.Target.Name, err)}
	}
	model := device.NewModel(cell.Target)

	// Per-cell seed: fixed function of the campaign seed and the grid
	// index, so shard order cannot leak into any cell's exploration.
	seed := opts.Seed + int64(cell.Index+1)*9973

	var eval hypermapper.Evaluator
	var ladder *hypermapper.MultiFidelity
	if opts.FidelityStride > 1 {
		ladder, eval = core.NewMultiFidelityEvaluator(space, seq, model, core.FidelityOptions{
			Stride:          opts.FidelityStride,
			PromoteFraction: opts.PromoteFraction,
			AccuracyLimit:   opts.AccuracyLimit,
			Workers:         opts.Workers,
		})
	} else {
		eval = hypermapper.NewMemoEvaluator(core.NewEvaluator(space, seq, model)).Evaluate
	}

	cfg := hypermapper.DefaultOptimizerConfig()
	cfg.RandomSamples = opts.RandomSamples
	cfg.ActiveIterations = opts.ActiveIterations
	cfg.BatchPerIteration = opts.BatchPerIteration
	cfg.Seed = seed
	cfg.Workers = opts.Workers
	cfg.ConstraintObjective = 1 // MaxATE
	cfg.ConstraintLimit = opts.AccuracyLimit
	if ladder != nil {
		cfg.BatchEval = ladder
	}
	active, err := hypermapper.Optimize(space, eval, cfg)
	if err != nil {
		return &cellRun{err: fmt.Errorf("campaign: cell %s/%s: %w", cell.Scenario.Name, cell.Target.Name, err)}
	}

	result := CellResult{
		Cell:              cell,
		Front:             active.Front,
		Evaluations:       len(active.Observations),
		FullFidelityEvals: len(active.Observations),
	}
	if ladder != nil {
		low, high := ladder.Stats()
		result.LowFidelityEvals = low
		result.FullFidelityEvals = high
	}
	result.BestFeasible, result.HasBestFeasible = hypermapper.Best(active.Observations,
		hypermapper.AccuracyLimit(opts.AccuracyLimit),
		func(m hypermapper.Metrics) float64 { return m.Runtime })
	return &cellRun{result: result, full: eval}
}

// Report converts the result into the slambench campaign report.
func (r *Result) Report() *slambench.CampaignReport {
	rep := &slambench.CampaignReport{
		AccuracyLimit: r.AccuracyLimit,
		Candidates:    r.CandidateCount,
	}
	feasible := hypermapper.AccuracyLimit(r.AccuracyLimit)
	for j, c := range r.Cells {
		row := slambench.CampaignCell{
			Scenario:          c.Cell.Scenario.Name,
			Device:            c.Cell.Target.Name,
			Evaluations:       c.Evaluations,
			FullFidelityEvals: c.FullFidelityEvals,
			FrontSize:         len(c.Front),
			Feasible:          c.HasBestFeasible,
		}
		for _, o := range c.Front {
			row.Front = append(row.Front, slambench.CampaignFrontPoint{
				Runtime: o.M.Runtime, MaxATE: o.M.MaxATE, Power: o.M.Power,
			})
		}
		if c.HasBestFeasible {
			row.BestRuntime = c.BestFeasible.M.Runtime
			row.BestMaxATE = c.BestFeasible.M.MaxATE
			row.BestPower = c.BestFeasible.M.Power
		}
		if r.HasRobust {
			m := r.Robust.PerCell[j]
			row.RobustRuntime = m.Runtime
			row.RobustMaxATE = m.MaxATE
			row.RobustRank = r.Robust.Pick.Ranks[j]
			row.RobustFeasible = feasible(m)
		}
		rep.Cells = append(rep.Cells, row)
	}
	if r.HasRobust {
		rep.RobustConfig = FormatConfig(r.Robust.Config)
		rep.RobustWorstRank = r.Robust.Pick.WorstRank
		rep.RobustFeasibleEverywhere = r.Robust.Pick.FeasibleEverywhere
	} else {
		rep.RobustConfig = "none (no candidates)"
	}
	return rep
}

// FormatConfig renders a pipeline configuration compactly for reports.
func FormatConfig(cfg kfusion.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "vr=%d csr=%d mu=%.3g icp=%.1e pyr=%d/%d/%d ir=%d tr=%d",
		cfg.VolumeResolution, cfg.ComputeSizeRatio, cfg.Mu, cfg.ICPThreshold,
		cfg.PyramidIterations[0], cfg.PyramidIterations[1], cfg.PyramidIterations[2],
		cfg.IntegrationRate, cfg.TrackingRate)
	return b.String()
}
