// Package campaign is the cross-scene / cross-device DSE engine: it
// replays the paper's per-scene, per-device tuning methodology over a
// whole grid of scenario cells instead of one invocation per scene.
//
// A campaign enumerates a scenario registry — scene × trajectory ×
// resolution × noise, the analogues of ICL-NUIM living-room kt0–kt3 and
// office kt0–kt1 — crossed with a set of device targets (the ODROID-XU3
// plus named picks from the phone catalogue), and runs as a staged job
// model:
//
//	Plan → Explore → Promote → CrossMeasure → Aggregate
//
// Every stage consumes and emits serialisable per-cell artifacts. With
// Options.CheckpointDir set the artifacts are persisted — one versioned
// JSON file per cell, keyed by a content hash of the cell spec, seed
// and options (see Store) — and Options.Resume loads them back, so a
// campaign killed at any point restarts from its completed cells and a
// changed option automatically invalidates stale artifacts. The Explore
// stage runs each cell's constrained Fig2-style exploration; with
// Options.CellStride > 1 it first screens every cell on a
// stride-subsampled sequence and the Promote stage re-explores only the
// cells whose screened Pareto fronts are competitive (hypervolume
// against a shared reference, index-tie-broken like the intra-cell
// ladder) at full fidelity — the multi-fidelity ladder replayed at grid
// granularity. CrossMeasure then measures the union of per-cell winners
// in every cell, and Aggregate picks the cross-scenario *robust*
// configuration: feasible in every cell and minimal worst-case per-cell
// rank (hypermapper.RobustBest). That makes the paper's "one
// configuration does not fit all scenes" point quantitative — the
// per-cell winners are reported next to the single configuration you
// would ship when the scene is not known in advance.
//
// Determinism: the cell grid is enumerated in fixed scenario-major
// order, each cell derives its seed from the campaign seed and its own
// grid index, and every layer below (optimizer batches, ladder and cell
// promotion, parallel map) is bit-deterministic for any worker count —
// so a seeded campaign produces an identical report for any Workers
// value, and an interrupted-then-resumed campaign renders byte-identical
// to an uninterrupted one (artifacts round-trip float64 exactly).
package campaign

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"slamgo/internal/core"
	"slamgo/internal/device"
	"slamgo/internal/evalstore"
	"slamgo/internal/hypermapper"
	"slamgo/internal/kfusion"
	"slamgo/internal/phones"
	"slamgo/internal/seqcache"
	"slamgo/internal/slambench"
)

// Scenario is one workload cell of the registry: a named scene,
// trajectory, resolution and noise combination.
type Scenario struct {
	// Name identifies the scenario in reports (e.g. "lr_kt2").
	Name string
	// Scale fixes the scene, trajectory, resolution, frame count and
	// noise of the cell's sequence.
	Scale core.Scale
}

// Scenarios derives the full scene × trajectory registry at a base
// scale: the four living-room trajectories and the two office ones,
// all at the base's resolution, frame count and noise setting.
func Scenarios(base core.Scale) []Scenario {
	out := make([]Scenario, 0, 6)
	for kt := 0; kt <= 3; kt++ {
		s := base
		s.KT, s.Office = kt, false
		out = append(out, Scenario{Name: fmt.Sprintf("lr_kt%d", kt), Scale: s})
	}
	for kt := 0; kt <= 1; kt++ {
		s := base
		s.KT, s.Office = kt, true
		out = append(out, Scenario{Name: fmt.Sprintf("of_kt%d", kt), Scale: s})
	}
	return out
}

// SelectScenarios picks named scenarios out of the base registry,
// preserving the requested order. An empty or duplicated selection is
// rejected — both are configuration mistakes a long campaign should
// fail on immediately, not minutes in.
func SelectScenarios(base core.Scale, names []string) ([]Scenario, error) {
	if len(names) == 0 {
		return nil, errors.New("campaign: empty scenario selection")
	}
	all := Scenarios(base)
	byName := make(map[string]Scenario, len(all))
	for _, s := range all {
		byName[s.Name] = s
	}
	out := make([]Scenario, 0, len(names))
	picked := make(map[string]bool, len(names))
	for _, n := range names {
		s, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("campaign: unknown scenario %q (have lr_kt0..lr_kt3, of_kt0..of_kt1)", n)
		}
		if picked[n] {
			return nil, fmt.Errorf("campaign: scenario %q selected twice", n)
		}
		picked[n] = true
		out = append(out, s)
	}
	return out, nil
}

// ResolveTargets maps device names onto profiles: "odroid-xu3" and
// "desktop-gpu" resolve to the built-in boards, anything else is looked
// up in the seed's phone catalogue (one phones.ByName batch, so the
// catalogue is generated once however many phones are named). As with
// SelectScenarios, an empty or duplicated selection is an error.
func ResolveTargets(seed int64, names []string) ([]device.Profile, error) {
	if len(names) == 0 {
		return nil, errors.New("campaign: empty device selection")
	}
	picked := make(map[string]bool, len(names))
	var phoneNames []string
	for _, n := range names {
		if picked[n] {
			return nil, fmt.Errorf("campaign: device %q selected twice", n)
		}
		picked[n] = true
		if n != "odroid-xu3" && n != "desktop-gpu" {
			phoneNames = append(phoneNames, n)
		}
	}
	picks, err := phones.ByName(seed, phoneNames...)
	if err != nil {
		return nil, err
	}
	out := make([]device.Profile, 0, len(names))
	for _, n := range names {
		switch n {
		case "odroid-xu3":
			out = append(out, device.OdroidXU3())
		case "desktop-gpu":
			out = append(out, device.DesktopGPU())
		default:
			out = append(out, picks[0])
			picks = picks[1:]
		}
	}
	return out, nil
}

// Cell is one scenario × target combination of the campaign grid.
type Cell struct {
	// Index is the cell's position in the fixed grid enumeration; the
	// cell's exploration seed derives from it.
	Index    int
	Scenario Scenario
	Target   device.Profile
}

// Grid enumerates scenarios × targets in fixed scenario-major order.
func Grid(scenarios []Scenario, targets []device.Profile) []Cell {
	out := make([]Cell, 0, len(scenarios)*len(targets))
	for _, s := range scenarios {
		for _, t := range targets {
			out = append(out, Cell{Index: len(out), Scenario: s, Target: t})
		}
	}
	return out
}

// Options parameterise a campaign run.
type Options struct {
	// Scenarios and Targets span the cell grid (both must be non-empty).
	Scenarios []Scenario
	Targets   []device.Profile
	// RandomSamples / ActiveIterations / BatchPerIteration configure
	// each cell's exploration; zero values use the Fig2 defaults.
	RandomSamples     int
	ActiveIterations  int
	BatchPerIteration int
	// AccuracyLimit is the shared feasibility bound (default 0.05 m).
	AccuracyLimit float64
	// Seed drives the whole campaign; each cell's exploration seed is
	// derived from it and the cell's grid index.
	Seed int64
	// Workers bounds the parallelism at every level: cells fan out over
	// the worker pool, and each cell's exploration uses the same knob
	// (internal/parallel caps nested regions to idle cores). The
	// campaign result is identical for any value.
	Workers int
	// FidelityStride > 1 enables the multi-fidelity ladder inside every
	// full-fidelity cell exploration (see core.FidelityOptions).
	FidelityStride int
	// PromoteFraction is the intra-cell ladder's promoted share per
	// batch.
	PromoteFraction float64
	// CellStride > 1 enables cell-level multi-fidelity: the Explore
	// stage first runs every cell's exploration on a CellStride-
	// subsampled sequence (the screening rung), and the Promote stage
	// re-explores only the cells whose screened fronts are competitive
	// at full fidelity. Unpromoted cells keep — and are reported at —
	// screening fidelity.
	CellStride int
	// CellPromoteFraction is the share of grid cells promoted to
	// full-fidelity exploration (default 0.5; at least one cell is
	// always promoted).
	CellPromoteFraction float64
	// Transfer enables cross-cell transfer learning: the Explore stage
	// runs as two waves — grid-diagonal anchor cells explore from
	// scratch, every other cell warm-starts from its same-scenario and
	// same-device anchors (concentrated seeding around donor winners
	// plus a pooled surrogate prior; see transfer.go). Donor knowledge
	// only steers where a borrower samples — observations, fronts and
	// best picks stay strictly per-cell — and the whole schedule is
	// deterministic: reports are bit-identical for any Workers value and
	// across cooperating worker processes.
	Transfer bool
	// TransferSeeds is a warm-started borrower's random-phase budget,
	// replacing RandomSamples (default 3, minimum 3 — the donor-backed
	// prior lets the surrogate stand on far fewer local observations
	// than the from-scratch floor of 5). A borrower's freed budget
	// funds one extra active-learning round when the total still clears
	// the 20% savings bar against a from-scratch cell: model-guided
	// picks recover front quality per simulation far better than the
	// random draws they replace (see transfer.go). Ignored without
	// Transfer.
	TransferSeeds int
	// Knowledge adds per-cell decision rules (hypermapper.Knowledge over
	// the cell's full-fidelity observations) to the JSON report. Opt-in
	// so default reports keep their byte surface.
	Knowledge bool
	// CheckpointDir, when non-empty, persists every stage's per-cell
	// artifacts into this directory (created if needed) as versioned
	// JSON files keyed by content hashes of the cell spec + seed +
	// options, so completed work survives a kill.
	CheckpointDir string
	// Resume loads matching artifacts from CheckpointDir instead of
	// recomputing them; artifacts whose options hash differs are
	// ignored. Requires CheckpointDir.
	Resume bool
	// WorkerID, when non-empty, runs this process as one cooperating
	// worker of a multi-process campaign: cells are claimed through
	// .lease files in CheckpointDir (atomic create, heartbeat renewal,
	// TTL expiry — see lease.go), so N workers sharing the directory
	// split the grid dynamically and any worker can be SIGKILLed
	// without losing the campaign. Requires CheckpointDir; implies
	// Resume (a worker must load cells its peers completed). Every
	// worker that runs to completion renders the identical report.
	WorkerID string
	// LeaseTTL is the heartbeat deadline after which a dead or stalled
	// worker's cell lease may be reclaimed by its peers (default 10s).
	// Set it above the renewal jitter of the slowest shared filesystem
	// involved but well below the cost of a cell exploration; an
	// expired-but-alive holder only wastes duplicate work, never
	// corrupts the campaign.
	LeaseTTL time.Duration
	// SeqCacheDir, when non-empty, shares rendered synthetic sequences
	// across cells, stages and cooperating worker processes through the
	// content-addressed crash-safe cache of internal/seqcache: each
	// distinct sequence (keyed by core.Scale.CacheKey) is rendered once
	// per shared store and loaded everywhere else. Every cache failure
	// mode — corrupt or torn artifacts, a full disk, a dead renderer's
	// lease — degrades gracefully to inline rendering: logged, counted
	// in Result.SeqStats, never fatal, and the report is byte-identical
	// either way. Empty keeps the cache in-process only (sequences are
	// still rendered once per process and shared across cells).
	SeqCacheDir string
	// SeqCacheMaxBytes bounds the sequence cache's on-disk size (0 =
	// unbounded); over-budget artifacts are evicted deterministically in
	// lexicographic key order, newest write exempt.
	SeqCacheMaxBytes int64
	// EvalCacheDir, when non-empty, persists every simulation result
	// into the content-addressed evaluation store of internal/evalstore
	// shared across cells, stages, cooperating worker processes, resumed
	// runs and entirely separate campaigns: each distinct (configuration,
	// sequence, device, fidelity stride) is simulated once per shared
	// store, anywhere, and loaded everywhere else. Every store failure
	// mode — corrupt or torn records, a full disk, a dead simulator's
	// lease — degrades gracefully to inline simulation: logged, counted
	// in Result.EvalStats, never fatal, and the report is byte-identical
	// either way. Empty keeps evaluation memoization in-process only.
	EvalCacheDir string
	// EvalCacheMaxBytes bounds the evaluation store's on-disk size (0 =
	// unbounded); over-budget records are evicted deterministically in
	// lexicographic key order, newest write exempt. Requires EvalCacheDir.
	EvalCacheMaxBytes int64
	// CacheStats adds the cache-counter summary (memo, evaluation store,
	// sequence cache) to the JSON report under "caches". Off by default
	// because the counters are execution provenance — a warm store turns
	// simulations into disk hits — so the default report surface stays
	// byte-identical across cold, warm and multi-worker runs; the same
	// counters always reach stderr via WriteCampaignProvenance.
	CacheStats bool
	// StopAfter, when non-empty, ends the run cleanly after the named
	// stage (the checkpoint/resume analogue of a kill at a stage
	// boundary; Result.StoppedAfter echoes it). The zero value runs to
	// completion.
	StopAfter Stage
	// MaxFrontCandidates caps how many Pareto-front members each cell
	// contributes to the robust candidate set, fastest first (the
	// cell's best feasible configuration is always included). Default 3.
	MaxFrontCandidates int
	// Log, when non-nil, receives progress lines (order follows
	// scheduling, not the grid; the report itself stays deterministic).
	Log func(string)
	// Cancel, when non-nil, requests a cooperative early stop: the
	// runner checks it before starting any cell work and between
	// stages, lets cells already in flight finish and checkpoint (a
	// half-explored cell is lost work, a persisted one resumes for
	// free), and returns ErrCanceled once they drain. With a
	// CheckpointDir a canceled campaign is indistinguishable from one
	// killed at an artifact boundary — rerunning with Resume continues
	// it with zero re-simulation. The long-running campaign service
	// uses this for both user cancellation and graceful drain.
	Cancel <-chan struct{}
	// OnProgress, when non-nil, receives stage and cell transition
	// events (see ProgressEvent): every stage start and end, and one
	// event per cell as its stage artifact becomes available — computed
	// locally or observed in the checkpoint store. Calls are
	// serialised; cell-event order follows scheduling (execution
	// provenance, like Log), while the report stays deterministic.
	OnProgress func(ProgressEvent)

	// observeSimulation, when non-nil, is called once per actual
	// pipeline simulation with the cell's grid index and the simulation
	// class — the hook resume tests use to prove checkpointed cells are
	// never re-simulated. Memo hits and checkpoint loads never fire it.
	observeSimulation func(cell int, class string)
	// wrapStore, when non-nil, wraps the opened checkpoint store before
	// the retry layer — the seam the fault-injection tests use to put a
	// FaultStore under the campaign.
	wrapStore func(*Store) ArtifactStore
	// cacheFaults, when non-nil, arms the sequence cache's fault plan —
	// the seam the cache crash-safety tests use.
	cacheFaults *seqcache.FaultPlan
	// evalFaults, when non-nil, arms the evaluation store's fault plan —
	// the seam its crash-safety tests use.
	evalFaults *evalstore.FaultPlan
	// sleepFn and nowFn override time.Sleep / time.Now in the retry,
	// poll and lease layers (tests only; results never depend on them).
	sleepFn func(time.Duration)
	nowFn   func() time.Time
}

// applyDefaults fills zero-valued knobs in place.
func (o *Options) applyDefaults() {
	if o.AccuracyLimit <= 0 {
		o.AccuracyLimit = 0.05
	}
	if o.RandomSamples <= 0 {
		o.RandomSamples = 20
	}
	if o.ActiveIterations <= 0 {
		o.ActiveIterations = 5
	}
	if o.BatchPerIteration <= 0 {
		o.BatchPerIteration = 4
	}
	if o.MaxFrontCandidates <= 0 {
		o.MaxFrontCandidates = 3
	}
	if o.TransferSeeds <= 0 {
		// Three seeds: the donor-backed prior lets the surrogate stand on
		// as few as two successful local observations (the from-scratch
		// floor is five), and one spare absorbs a failed configuration.
		o.TransferSeeds = 3
	}
	if o.CellPromoteFraction <= 0 || o.CellPromoteFraction > 1 {
		o.CellPromoteFraction = 0.5
	}
	if o.WorkerID != "" {
		// A cooperating worker must consume what its peers completed;
		// worker mode is resume mode by definition.
		o.Resume = true
		if o.LeaseTTL <= 0 {
			o.LeaseTTL = 10 * time.Second
		}
	}
	if o.sleepFn == nil {
		o.sleepFn = time.Sleep
	}
	if o.nowFn == nil {
		o.nowFn = time.Now
	}
}

// Validate rejects unrunnable options. It is safe to call on options
// whose zero values still await applyDefaults, so CLIs can fail fast
// before any simulation starts.
func (o Options) Validate() error {
	if len(o.Scenarios) == 0 || len(o.Targets) == 0 {
		return errors.New("campaign: need at least one scenario and one target")
	}
	for _, t := range o.Targets {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	if o.AccuracyLimit < 0 {
		return fmt.Errorf("campaign: negative accuracy limit %g", o.AccuracyLimit)
	}
	if o.FidelityStride < 0 || o.CellStride < 0 {
		return fmt.Errorf("campaign: negative fidelity stride")
	}
	if o.PromoteFraction < 0 || o.PromoteFraction > 1 {
		return fmt.Errorf("campaign: promote fraction %g outside [0,1]", o.PromoteFraction)
	}
	if o.CellPromoteFraction < 0 || o.CellPromoteFraction > 1 {
		return fmt.Errorf("campaign: cell promote fraction %g outside [0,1]", o.CellPromoteFraction)
	}
	if o.TransferSeeds != 0 && o.TransferSeeds < 3 {
		return fmt.Errorf("campaign: transfer seeds %d below the prior-backed surrogate minimum of 3", o.TransferSeeds)
	}
	if _, err := ParseStage(string(o.StopAfter)); err != nil {
		return err
	}
	if o.StopAfter != "" && o.StopAfter != StagePlan && o.CheckpointDir == "" {
		return fmt.Errorf("campaign: StopAfter %s without CheckpointDir would discard the stage's work", o.StopAfter)
	}
	if o.Resume && o.CheckpointDir == "" {
		return errors.New("campaign: Resume requires CheckpointDir")
	}
	if o.WorkerID != "" && o.CheckpointDir == "" {
		return errors.New("campaign: WorkerID (cooperative worker mode) requires CheckpointDir")
	}
	if o.LeaseTTL < 0 {
		return fmt.Errorf("campaign: negative lease TTL %v", o.LeaseTTL)
	}
	if o.EvalCacheMaxBytes < 0 {
		return fmt.Errorf("campaign: negative eval cache size %d", o.EvalCacheMaxBytes)
	}
	if o.EvalCacheMaxBytes > 0 && o.EvalCacheDir == "" {
		return errors.New("campaign: EvalCacheMaxBytes without EvalCacheDir bounds nothing")
	}
	return nil
}

// ResolveEvalCacheDir maps the -campaign-eval-cache flag (and its size
// companion) onto Options.EvalCacheDir, failing fast — before any
// simulation — on contradictory combinations. The cache defaults on
// alongside checkpointing ("" with a checkpoint directory becomes
// <checkpoint>/evalcache), "off" disables it entirely, a relative path
// is anchored under the checkpoint directory (so cooperating workers
// sharing a checkpoint share the store without repeating an absolute
// path), and an absolute path stands alone.
func ResolveEvalCacheDir(flagVal, checkpointDir string, maxMB int64) (string, error) {
	if maxMB < 0 {
		return "", fmt.Errorf("campaign: negative eval cache bound %d MiB", maxMB)
	}
	switch {
	case flagVal == "off":
		if maxMB > 0 {
			return "", errors.New("campaign: -campaign-eval-cache-max-mb with -campaign-eval-cache=off bounds a cache that does not exist")
		}
		return "", nil
	case flagVal == "":
		if checkpointDir != "" {
			return filepath.Join(checkpointDir, "evalcache"), nil
		}
		if maxMB > 0 {
			return "", errors.New("campaign: -campaign-eval-cache-max-mb without an eval cache (set -campaign-eval-cache or -campaign-checkpoint)")
		}
		return "", nil
	case !filepath.IsAbs(flagVal):
		if checkpointDir == "" {
			return "", fmt.Errorf("campaign: relative -campaign-eval-cache %q needs -campaign-checkpoint to anchor it (or use an absolute path)", flagVal)
		}
		return filepath.Join(checkpointDir, flagVal), nil
	default:
		return flagVal, nil
	}
}

// CellResult is one cell's exploration outcome.
type CellResult struct {
	Cell Cell
	// Front is the cell's Pareto front (runtime vs max ATE) at the
	// cell's reported fidelity.
	Front []hypermapper.Observation
	// BestFeasible is the fastest configuration meeting the accuracy
	// limit in this cell.
	BestFeasible    hypermapper.Observation
	HasBestFeasible bool
	// Evaluations counts every configuration the cell's *exploration*
	// observed (screening runs included); FullFidelityEvals and
	// LowFidelityEvals split that spend by fidelity (cell-ladder
	// screening runs and intra-cell ladder screening runs both count as
	// low fidelity). The robust aggregation phase afterwards
	// cross-measures up to CandidateCount-1 foreign winners per cell at
	// full fidelity; that spend is shared campaign overhead and not part
	// of these per-cell exploration counters.
	Evaluations       int
	FullFidelityEvals int
	LowFidelityEvals  int
	// Fidelity is the fidelity the cell's reported results were explored
	// at: FidelityFull, or FidelityScreen for an unpromoted cell of the
	// cell-level ladder.
	Fidelity string
	// Promoted reports that the cell-level ladder promoted this cell
	// from screening to full-fidelity exploration.
	Promoted bool
	// Resumed reports that at least one of the cell's exploration
	// artifacts was loaded from the checkpoint store instead of being
	// recomputed. Execution provenance, not part of the deterministic
	// report surface.
	Resumed bool
	// Owner names who produced the cell's reported artifact this run:
	// the worker id (or "local" outside worker mode) when it was
	// computed here, "store" when it was loaded from a checkpoint.
	// Execution provenance, like Resumed.
	Owner string
	// SeqSource reports where the cell's rendered sequence came from —
	// a seqcache.Source string, or "" when the cell was resumed and
	// never needed its sequence. Execution provenance, like Resumed.
	SeqSource string
	// TransferBorrower marks a cell the transfer schedule warm-started
	// (wave 2); TransferDonors names the donor cells ("scenario/device")
	// it drew usable knowledge from and TransferSeeds counts the distinct
	// donor configurations its seeder borrowed (donors with zero seeds
	// mean the cell degraded to exploring from scratch). All empty for
	// anchors and transfer-off campaigns. Deterministic, part of the
	// report surface (rendered only when transfer is on).
	TransferBorrower bool
	TransferDonors   []string
	TransferSeeds    int
	// Knowledge holds the cell's extracted decision rules when
	// Options.Knowledge is set (full-fidelity cells only).
	Knowledge []string
	// Failed reports that the cell's exploration panicked and was
	// quarantined: the cell carries no front or best configuration, is
	// excluded from promotion, cross-measurement and the robust
	// aggregation, and appears in reports as a failed row. Deterministic
	// (a panic for a given seed/options either always or never happens),
	// so it is part of the report surface.
	Failed bool
	// FailureReason is the quarantined panic value, when Failed.
	FailureReason string
}

// RobustResult is the cross-scenario aggregation outcome.
type RobustResult struct {
	// Point and Config are the winning configuration.
	Point  hypermapper.Point
	Config kfusion.Config
	// Pick carries the winner's per-cell ranks and the aggregation
	// criteria it minimised.
	Pick hypermapper.RobustPick
	// PerCell holds the winner's full-fidelity metrics in every cell,
	// in grid order.
	PerCell []hypermapper.Metrics
}

// Result is a full campaign outcome.
type Result struct {
	// Cells are the per-cell results in grid order.
	Cells []CellResult
	// AccuracyLimit echoes the option used.
	AccuracyLimit float64
	// CandidateCount is the size of the deduplicated cross-cell
	// candidate set the robust configuration was selected from.
	CandidateCount int
	// Robust is the rank-aggregated cross-scenario configuration.
	Robust    RobustResult
	HasRobust bool
	// Transfer echoes Options.Transfer; the report writers render the
	// transfer provenance columns and efficiency summary only when set,
	// so transfer-off reports keep their byte surface.
	Transfer bool
	// StoppedAfter is the stage the run ended at when Options.StopAfter
	// cut it short; empty for a completed campaign. A stopped result
	// carries whatever per-cell results its completed stages produced
	// and no robust configuration.
	StoppedAfter Stage
	// SeqStats are this process's rendered-sequence cache counters:
	// summing Renders over every cooperating process proves each
	// distinct sequence was rendered exactly once per shared store.
	// Execution provenance (the render/hit split depends on scheduling),
	// never part of the deterministic report surface.
	SeqStats seqcache.Stats
	// EvalStats are this process's persistent evaluation-store counters:
	// summing Simulations over every cooperating process proves each
	// distinct (configuration, sequence, device, stride) was simulated
	// exactly once per shared store. Execution provenance like SeqStats
	// — a warm store turns simulations into disk hits.
	EvalStats evalstore.Stats
	// MemoHits and MemoMisses aggregate the in-memory memoization layer
	// over every evaluator the campaign built (cell explorations, ladder
	// rungs, cross-measurements). A miss means the memo went below its
	// memory layer — to the evaluation store when one is configured,
	// straight to simulation otherwise.
	MemoHits, MemoMisses int
	// CacheSummary echoes Options.CacheStats: when set, Report adds the
	// cache counters to the JSON surface under "caches".
	CacheSummary bool
}

// Run executes the staged campaign: Plan (validation + grid), Explore
// (per-cell exploration, screening fidelity when the cell ladder is
// on), Promote (full-fidelity re-exploration of competitive cells),
// CrossMeasure (robust candidates in every cell) and Aggregate
// (hypermapper.RobustBest). With a checkpoint store every stage's
// artifacts persist and resume; see Options.
func Run(opts Options) (*Result, error) {
	r, err := newRunner(opts)
	if err != nil {
		return nil, err
	}
	r.emitStage(ProgressStageDone, StagePlan)
	if r.opts.StopAfter == StagePlan {
		return r.result(StagePlan), nil
	}
	if r.canceled() {
		return nil, ErrCanceled
	}
	r.emitStage(ProgressStageStart, StageExplore)
	if err := r.explore(); err != nil {
		return nil, err
	}
	r.emitStage(ProgressStageDone, StageExplore)
	if r.opts.StopAfter == StageExplore {
		return r.result(StageExplore), nil
	}
	if r.canceled() {
		return nil, ErrCanceled
	}
	r.emitStage(ProgressStageStart, StagePromote)
	if err := r.promote(); err != nil {
		return nil, err
	}
	r.emitStage(ProgressStageDone, StagePromote)
	if r.opts.StopAfter == StagePromote {
		return r.result(StagePromote), nil
	}
	if r.canceled() {
		return nil, ErrCanceled
	}
	r.emitStage(ProgressStageStart, StageCrossMeasure)
	candidates, perCell, err := r.crossMeasure()
	if err != nil {
		return nil, err
	}
	r.emitStage(ProgressStageDone, StageCrossMeasure)
	if r.opts.StopAfter == StageCrossMeasure {
		res := r.result(StageCrossMeasure)
		res.CandidateCount = len(candidates)
		return res, nil
	}
	if r.canceled() {
		return nil, ErrCanceled
	}
	r.emitStage(ProgressStageStart, StageAggregate)
	res, err := r.aggregate(candidates, perCell)
	if err == nil {
		r.emitStage(ProgressStageDone, StageAggregate)
	}
	return res, err
}

// Report converts the result into the slambench campaign report.
func (r *Result) Report() *slambench.CampaignReport {
	rep := &slambench.CampaignReport{
		AccuracyLimit:   r.AccuracyLimit,
		Candidates:      r.CandidateCount,
		Transfer:        r.Transfer,
		SeqRenders:      r.SeqStats.Renders,
		SeqDiskHits:     r.SeqStats.DiskHits,
		SeqMemoryHits:   r.SeqStats.MemoryHits,
		SeqDegradations: r.SeqStats.Degradations,
		SeqEvictions:    r.SeqStats.Evictions,

		EvalSimulations:  r.EvalStats.Simulations,
		EvalDiskHits:     r.EvalStats.DiskHits,
		EvalPublished:    r.EvalStats.Published,
		EvalDegradations: r.EvalStats.Degradations,
		EvalEvictions:    r.EvalStats.Evictions,
		MemoHits:         r.MemoHits,
		MemoMisses:       r.MemoMisses,
	}
	if r.CacheSummary {
		rep.Caches = &slambench.CampaignCacheSummary{
			MemoHits:         r.MemoHits,
			MemoMisses:       r.MemoMisses,
			EvalSimulations:  r.EvalStats.Simulations,
			EvalDiskHits:     r.EvalStats.DiskHits,
			EvalPublished:    r.EvalStats.Published,
			EvalDegradations: r.EvalStats.Degradations,
			EvalEvictions:    r.EvalStats.Evictions,
			SeqRenders:       r.SeqStats.Renders,
			SeqDiskHits:      r.SeqStats.DiskHits,
			SeqMemoryHits:    r.SeqStats.MemoryHits,
			SeqDegradations:  r.SeqStats.Degradations,
			SeqEvictions:     r.SeqStats.Evictions,
		}
	}
	feasible := hypermapper.AccuracyLimit(r.AccuracyLimit)
	for j, c := range r.Cells {
		row := slambench.CampaignCell{
			Scenario:          c.Cell.Scenario.Name,
			Device:            c.Cell.Target.Name,
			Evaluations:       c.Evaluations,
			FullFidelityEvals: c.FullFidelityEvals,
			LowFidelityEvals:  c.LowFidelityEvals,
			FrontSize:         len(c.Front),
			Fidelity:          c.Fidelity,
			Promoted:          c.Promoted,
			Resumed:           c.Resumed,
			Owner:             c.Owner,
			SeqSource:         c.SeqSource,
			TransferBorrower:  c.TransferBorrower,
			TransferDonors:    c.TransferDonors,
			TransferSeeds:     c.TransferSeeds,
			Knowledge:         c.Knowledge,
			Failed:            c.Failed,
			FailureReason:     c.FailureReason,
			Feasible:          c.HasBestFeasible,
		}
		for _, o := range c.Front {
			row.Front = append(row.Front, slambench.CampaignFrontPoint{
				Runtime: o.M.Runtime, MaxATE: o.M.MaxATE, Power: o.M.Power,
			})
		}
		if c.HasBestFeasible {
			row.BestRuntime = c.BestFeasible.M.Runtime
			row.BestMaxATE = c.BestFeasible.M.MaxATE
			row.BestPower = c.BestFeasible.M.Power
		}
		if r.HasRobust {
			m := r.Robust.PerCell[j]
			row.RobustRuntime = m.Runtime
			row.RobustMaxATE = m.MaxATE
			row.RobustRank = r.Robust.Pick.Ranks[j]
			row.RobustFeasible = feasible(m)
		}
		rep.Cells = append(rep.Cells, row)
	}
	if r.HasRobust {
		rep.RobustConfig = FormatConfig(r.Robust.Config)
		rep.RobustWorstRank = r.Robust.Pick.WorstRank
		rep.RobustFeasibleEverywhere = r.Robust.Pick.FeasibleEverywhere
	} else {
		rep.RobustConfig = "none (no candidates)"
	}
	// Transfer-efficiency summary: the full-fidelity exploration spend of
	// warm-started borrowers against the from-scratch anchors, averaged
	// over the healthy cells of each wave. Deterministic like everything
	// above (the donor topology and every budget are pure functions of
	// the options).
	if r.Transfer {
		anchors, borrowers := 0, 0
		anchorFull, borrowerFull := 0, 0
		for _, c := range r.Cells {
			if c.Failed {
				continue
			}
			if c.TransferBorrower {
				borrowers++
				borrowerFull += c.FullFidelityEvals
				rep.TransferSeedsBorrowed += c.TransferSeeds
			} else {
				anchors++
				anchorFull += c.FullFidelityEvals
			}
		}
		rep.TransferAnchors = anchors
		rep.TransferBorrowers = borrowers
		rep.TransferAnchorFullEvals = anchorFull
		rep.TransferBorrowerFullEvals = borrowerFull
		if anchors > 0 && borrowers > 0 && anchorFull > 0 {
			perAnchor := float64(anchorFull) / float64(anchors)
			perBorrower := float64(borrowerFull) / float64(borrowers)
			rep.TransferSavingsPct = 100 * (1 - perBorrower/perAnchor)
		}
	}
	return rep
}

// FormatConfig renders a pipeline configuration compactly for reports.
func FormatConfig(cfg kfusion.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "vr=%d csr=%d mu=%.3g icp=%.1e pyr=%d/%d/%d ir=%d tr=%d",
		cfg.VolumeResolution, cfg.ComputeSizeRatio, cfg.Mu, cfg.ICPThreshold,
		cfg.PyramidIterations[0], cfg.PyramidIterations[1], cfg.PyramidIterations[2],
		cfg.IntegrationRate, cfg.TrackingRate)
	return b.String()
}
