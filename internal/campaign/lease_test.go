package campaign

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestLeaseAcquireAndContention(t *testing.T) {
	dir := t.TempDir()
	a := NewLeaseManager(dir, "a", time.Minute, nil)
	b := NewLeaseManager(dir, "b", time.Minute, nil)

	la, ok, err := a.TryAcquire("cell")
	if err != nil || !ok {
		t.Fatalf("TryAcquire = %v, %v; want acquired", ok, err)
	}
	if _, ok, err := b.TryAcquire("cell"); err != nil || ok {
		t.Fatalf("live lease taken over (ok=%v err=%v)", ok, err)
	}
	if w, expired, ok := b.Holder("cell"); !ok || w != "a" || expired {
		t.Fatalf("Holder = %q expired=%v ok=%v, want a/false/true", w, expired, ok)
	}
	if err := la.Renew(); err != nil {
		t.Fatalf("Renew: %v", err)
	}
	if err := la.Release(); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if _, _, ok := b.Holder("cell"); ok {
		t.Fatal("released lease still present")
	}
	if _, ok, err := b.TryAcquire("cell"); err != nil || !ok {
		t.Fatalf("released lease not re-acquirable (ok=%v err=%v)", ok, err)
	}
}

func TestLeaseTakeoverAfterExpiry(t *testing.T) {
	dir := t.TempDir()
	// The dead worker's clock runs an hour behind, so its heartbeat is
	// born expired under any sane TTL — the injectable-clock stand-in for
	// a SIGKILLed process.
	past := func() time.Time { return time.Now().Add(-time.Hour) }
	dead := NewLeaseManager(dir, "dead", time.Second, past)
	if _, ok, err := dead.TryAcquire("cell"); err != nil || !ok {
		t.Fatalf("dead worker could not claim (ok=%v err=%v)", ok, err)
	}
	live := NewLeaseManager(dir, "live", time.Second, nil)
	if _, ok, err := live.TryAcquire("cell"); err != nil || !ok {
		t.Fatalf("expired lease not taken over (ok=%v err=%v)", ok, err)
	}
	if w, _, ok := live.Holder("cell"); !ok || w != "live" {
		t.Fatalf("Holder after takeover = %q ok=%v, want live", w, ok)
	}
}

func TestLeaseRenewDetectsLoss(t *testing.T) {
	dir := t.TempDir()
	past := func() time.Time { return time.Now().Add(-time.Hour) }
	a := NewLeaseManager(dir, "a", time.Second, past)
	la, ok, err := a.TryAcquire("cell")
	if err != nil || !ok {
		t.Fatalf("TryAcquire = %v, %v", ok, err)
	}
	b := NewLeaseManager(dir, "b", time.Minute, nil)
	if _, ok, err := b.TryAcquire("cell"); err != nil || !ok {
		t.Fatalf("takeover failed (ok=%v err=%v)", ok, err)
	}
	if err := la.Renew(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("Renew after takeover = %v, want ErrLeaseLost", err)
	}
	// The lost holder's release must not tear down the new holder's lease.
	if err := la.Release(); err != nil {
		t.Fatalf("Release after loss: %v", err)
	}
	if w, _, ok := b.Holder("cell"); !ok || w != "b" {
		t.Fatalf("new lease removed by the lost holder (w=%q ok=%v)", w, ok)
	}
}

func TestCorruptLeaseExpires(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "cell.lease"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := NewLeaseManager(dir, "w", time.Minute, nil)
	if _, ok, err := m.TryAcquire("cell"); err != nil || !ok {
		t.Fatalf("corrupt lease wedged the cell (ok=%v err=%v)", ok, err)
	}
}

func TestLeaseFilesInvisibleToStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save("art", &cellArtifact{Scenario: "lr_kt0"}); err != nil {
		t.Fatal(err)
	}
	m := NewLeaseManager(dir, "w", time.Minute, nil)
	if _, ok, err := m.TryAcquire("art"); err != nil || !ok {
		t.Fatalf("TryAcquire = %v, %v", ok, err)
	}
	names, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "art" {
		t.Fatalf("List sees lease files: %v", names)
	}
}
