package campaign

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// simClasses is the full set of simulation classes the hooks count.
var simClasses = []string{simScreen, simFull, simLadderLow, simCross}

// referenceRun executes the shared resume-suite campaign fresh (no
// checkpoints) with instrumented simulation counts, as the ground truth
// the distributed runs are compared against.
func referenceRun(t *testing.T) (*Result, []byte, *simCounter) {
	t.Helper()
	var sims simCounter
	opts := resumeOptions(1, "")
	opts.observeSimulation = sims.hook
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, renderReport(t, res), &sims
}

// TestCooperatingWorkersByteIdentical is the distributed acceptance
// check: three cooperating workers sharing one checkpoint directory
// split the grid through leases, every worker renders the identical
// report, and the summed simulation counts equal a single-process
// run's — no cell was computed twice and none was skipped.
func TestCooperatingWorkersByteIdentical(t *testing.T) {
	_, refBytes, refSims := referenceRun(t)

	const workers = 3
	dir := t.TempDir()
	results := make([]*Result, workers)
	errs := make([]error, workers)
	sims := make([]simCounter, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			opts := resumeOptions(2, dir)
			opts.WorkerID = fmt.Sprintf("w%d", w)
			opts.observeSimulation = sims[w].hook
			results[w], errs[w] = Run(opts)
		}(w)
	}
	wg.Wait()

	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if !bytes.Equal(renderReport(t, results[w]), refBytes) {
			t.Fatalf("worker %d report diverges from single-process run", w)
		}
	}
	// Leases must have partitioned the work exactly: per class, the
	// workers' summed simulations equal the reference run's.
	for _, class := range simClasses {
		total := 0
		for w := range sims {
			total += sims[w].get(class)
		}
		if total != refSims.get(class) {
			t.Fatalf("class %s: workers simulated %d, reference %d — work lost or duplicated",
				class, total, refSims.get(class))
		}
	}
	// No lease files survive a completed campaign.
	leases, err := filepath.Glob(filepath.Join(dir, "*.lease"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 0 {
		t.Fatalf("leases leaked after completion: %v", leases)
	}
}

// TestDeadWorkerTakeover simulates a SIGKILLed peer: a lease whose
// heartbeat is an hour stale squats on a cell, and a live worker must
// reclaim it, compute the cell, and finish the campaign byte-identical
// to an undisturbed run.
func TestDeadWorkerTakeover(t *testing.T) {
	_, refBytes, refSims := referenceRun(t)

	dir := t.TempDir()
	opts := resumeOptions(1, dir)
	r, err := newRunner(opts)
	if err != nil {
		t.Fatal(err)
	}
	name0 := r.artifactName(r.cells[0], FidelityScreen)
	past := func() time.Time { return time.Now().Add(-time.Hour) }
	if _, ok, err := NewLeaseManager(dir, "dead", time.Second, past).TryAcquire(name0); err != nil || !ok {
		t.Fatalf("staging dead worker's lease: ok=%v err=%v", ok, err)
	}

	var sims simCounter
	alive := resumeOptions(1, dir)
	alive.WorkerID = "alive"
	alive.LeaseTTL = 500 * time.Millisecond
	alive.observeSimulation = sims.hook
	res, err := Run(alive)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderReport(t, res), refBytes) {
		t.Fatal("takeover run diverges from undisturbed run")
	}
	if sims.total() != refSims.total() {
		t.Fatalf("takeover run simulated %d, reference %d", sims.total(), refSims.total())
	}
	for _, c := range res.Cells {
		if c.Owner != "alive" {
			t.Fatalf("cell %s/%s owner = %q, want alive", c.Cell.Scenario.Name, c.Cell.Target.Name, c.Owner)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, name0+".lease")); !os.IsNotExist(err) {
		t.Fatalf("reclaimed lease not released (stat err %v)", err)
	}
}

// TestWorkerLoadsPeerResult covers the wait-then-load path: a live
// foreign lease holds a cell, the peer's artifact appears while this
// worker polls, and the worker must consume it — zero simulations for
// that cell — and still render the reference report.
func TestWorkerLoadsPeerResult(t *testing.T) {
	refDir := t.TempDir()
	var refSims simCounter
	refOpts := resumeOptions(1, refDir)
	refOpts.observeSimulation = refSims.hook
	ref, err := Run(refOpts)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := renderReport(t, ref)

	dir := t.TempDir()
	r, err := newRunner(resumeOptions(1, dir))
	if err != nil {
		t.Fatal(err)
	}
	name0 := r.artifactName(r.cells[0], FidelityScreen)
	// A live peer holds cell 0 (fresh heartbeat, long TTL)…
	if _, ok, err := NewLeaseManager(dir, "peer", time.Minute, nil).TryAcquire(name0); err != nil || !ok {
		t.Fatalf("staging peer lease: ok=%v err=%v", ok, err)
	}
	// …and publishes its artifact shortly after the worker starts
	// polling, exactly as a slower peer would (copy + atomic rename, the
	// same publication discipline Store.Save uses).
	go func() {
		time.Sleep(100 * time.Millisecond)
		data, err := os.ReadFile(filepath.Join(refDir, name0+".json"))
		if err != nil {
			return
		}
		tmp := filepath.Join(dir, ".tmp-peer-artifact")
		if os.WriteFile(tmp, data, 0o644) == nil {
			os.Rename(tmp, filepath.Join(dir, name0+".json"))
		}
	}()

	var mu sync.Mutex
	cell0Screens := 0
	opts := resumeOptions(2, dir)
	opts.WorkerID = "w1"
	opts.LeaseTTL = 5 * time.Second
	opts.observeSimulation = func(cell int, class string) {
		if cell == 0 && class == simScreen {
			mu.Lock()
			cell0Screens++
			mu.Unlock()
		}
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderReport(t, res), refBytes) {
		t.Fatal("worker report diverges from reference")
	}
	if cell0Screens != 0 {
		t.Fatalf("cell 0 screened %d times despite the peer publishing it", cell0Screens)
	}
	if !res.Cells[0].Resumed {
		t.Fatal("peer-published cell not marked resumed")
	}
}
