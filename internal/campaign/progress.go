package campaign

import "errors"

// ErrCanceled is returned by Run when Options.Cancel fires before the
// campaign completes. Cancellation is cooperative and checkpoint-clean:
// cells already being explored when the signal arrives run to completion
// and persist their artifacts (a half-explored cell is worthless, a
// checkpointed one resumes for free), no new cell work starts, and the
// run returns as soon as the in-flight cells have drained. With a
// checkpoint store a canceled campaign is therefore exactly a campaign
// stopped at an artifact boundary: rerunning with Resume picks up where
// it left off with zero re-simulation.
var ErrCanceled = errors.New("campaign: run canceled")

// Progress event kinds (ProgressEvent.Kind).
const (
	// ProgressStageStart marks a stage beginning; Cells carries the grid
	// size so observers can size progress bars before any cell lands.
	ProgressStageStart = "stage-start"
	// ProgressStageDone marks a stage completing (every cell of the
	// stage accounted for).
	ProgressStageDone = "stage-done"
	// ProgressCellDone marks one cell's stage artifact becoming
	// available — computed here, or observed in the checkpoint store
	// (Resumed distinguishes the two).
	ProgressCellDone = "cell-done"
)

// ProgressEvent is one stage or cell transition of a running campaign,
// delivered to Options.OnProgress. Events are execution provenance,
// like the Log stream: the set of cell events per stage is
// deterministic, their order follows scheduling. Cell events fire when
// the cell's stage artifact is observed — persisted after local
// computation, or loaded from the checkpoint store when a prior run or
// a cooperating worker produced it — so an observer tailing the events
// sees exactly the artifact history of the store.
type ProgressEvent struct {
	// Kind is one of the Progress* constants.
	Kind string `json:"kind"`
	// Stage is the stage the event belongs to.
	Stage Stage `json:"stage"`
	// Cell is the grid index for cell events, -1 for stage events.
	Cell int `json:"cell"`
	// Cells is the grid size (stage events only).
	Cells int `json:"cells,omitempty"`
	// Scenario / Device name the cell (cell events only).
	Scenario string `json:"scenario,omitempty"`
	Device   string `json:"device,omitempty"`
	// Fidelity is the artifact's fidelity for exploration cell events.
	Fidelity string `json:"fidelity,omitempty"`
	// Resumed reports the artifact was loaded from the checkpoint store
	// rather than computed by this process.
	Resumed bool `json:"resumed,omitempty"`
	// Failed reports a quarantined cell (see CellResult.Failed).
	Failed bool `json:"failed,omitempty"`
	// Owner is who produced the artifact (worker id, "local", "store").
	Owner string `json:"owner,omitempty"`
}

// emitStage delivers a stage-level progress event.
func (r *runner) emitStage(kind string, stage Stage) {
	r.emit(ProgressEvent{Kind: kind, Stage: stage, Cell: -1, Cells: len(r.cells)})
}

// emitCell delivers a cell-level progress event for an exploration
// outcome.
func (r *runner) emitCell(stage Stage, cell Cell, out *cellOutcome) {
	if out.err != nil || out.art == nil {
		return
	}
	r.emit(ProgressEvent{
		Kind:     ProgressCellDone,
		Stage:    stage,
		Cell:     cell.Index,
		Scenario: cell.Scenario.Name,
		Device:   cell.Target.Name,
		Fidelity: out.art.Fidelity,
		Resumed:  out.resumed,
		Failed:   out.art.Failed,
		Owner:    out.owner,
	})
}

// emit serialises OnProgress callbacks: cell events fire from worker
// goroutines, so a callback that is safe for a serial observer is safe
// here too (mirroring the Log contract).
func (r *runner) emit(ev ProgressEvent) {
	if r.opts.OnProgress == nil {
		return
	}
	r.progressMu.Lock()
	r.opts.OnProgress(ev)
	r.progressMu.Unlock()
}

// canceled reports whether Options.Cancel has fired. A nil channel
// never fires.
func (r *runner) canceled() bool {
	select {
	case <-r.opts.Cancel:
		return true
	default:
		return false
	}
}
