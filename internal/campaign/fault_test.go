package campaign

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"
)

// noTempFiles fails the test when the store directory holds leftover
// temp files — crash-safety debris that would accumulate forever in a
// shared directory.
func noTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("temp file leaked: %s", e.Name())
		}
	}
}

// TestFaultInjectedStoreByteIdentical runs a campaign over a store that
// throws scheduled write and read faults — a full disk mid-save, a torn
// write, an EIO mid-load — and requires the retry layer to absorb all
// of them: the report must be byte-identical to an unfaulted run and
// the store directory clean. Single worker, so the deterministic op
// indices land where the plan intends.
func TestFaultInjectedStoreByteIdentical(t *testing.T) {
	_, refBytes, _ := referenceRun(t)

	dir := t.TempDir()
	var fs *FaultStore
	opts := resumeOptions(1, dir)
	opts.Resume = true
	opts.wrapStore = func(s *Store) ArtifactStore {
		fs = NewFaultStore(s, FaultPlan{
			// Save op 1 dies before writing; its retry is op 2. Save op 3
			// tears the published artifact in half; its retry rewrites it.
			Save: map[int]FaultKind{1: FaultWriteError, 3: FaultShortWrite},
			// Load op 0 throws EIO; its retry is op 1.
			Load: map[int]FaultKind{0: FaultReadError},
		})
		return fs
	}
	opts.sleepFn = func(time.Duration) {} // recorded schedule, no real waits
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderReport(t, res), refBytes) {
		t.Fatal("faulted run diverges from unfaulted run")
	}
	if fs.Injected() != 3 {
		t.Fatalf("injected %d faults, want 3 — the schedule missed its ops", fs.Injected())
	}
	noTempFiles(t, dir)
}

// TestCorruptArtifactRecomputed flips the bytes of a checkpointed
// artifact under a resumed run: the store must miss (not error, not
// return damaged data), the campaign must recompute exactly that cell,
// and the report must come out byte-identical.
func TestCorruptArtifactRecomputed(t *testing.T) {
	dir := t.TempDir()
	first, err := Run(resumeOptions(1, dir))
	if err != nil {
		t.Fatal(err)
	}
	firstBytes := renderReport(t, first)

	var fs *FaultStore
	var sims simCounter
	opts := resumeOptions(1, dir)
	opts.Resume = true
	opts.observeSimulation = sims.hook
	opts.wrapStore = func(s *Store) ArtifactStore {
		// Load op 0 is the first cell's screening artifact: rot its bytes
		// on disk before the store reads them.
		fs = NewFaultStore(s, FaultPlan{Load: map[int]FaultKind{0: FaultCorruptRead}})
		return fs
	}
	again, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderReport(t, again), firstBytes) {
		t.Fatal("recovery from corrupt artifact diverges from original run")
	}
	if fs.Injected() != 1 {
		t.Fatalf("injected %d faults, want 1", fs.Injected())
	}
	// Exactly the corrupted cell re-simulated — at screening fidelity
	// only; every other artifact still resumed.
	if sims.get(simScreen) == 0 {
		t.Fatal("corrupt artifact was not recomputed")
	}
	if n := sims.total() - sims.get(simScreen); n != 0 {
		t.Fatalf("%d non-screening simulations on resume, want 0", n)
	}
	noTempFiles(t, dir)
}
