package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"slamgo/internal/hypermapper"
	"slamgo/internal/sharedfs"
)

// loadHit loads name and fails the test on a real I/O error; it returns
// whether the load was a hit.
func loadHit(t *testing.T, store *Store, name string, out any) bool {
	t.Helper()
	ok, err := store.Load(name, out)
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	return ok
}

func TestStoreRoundTrip(t *testing.T) {
	store, err := OpenStore(filepath.Join(t.TempDir(), "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	art := &cellArtifact{
		Scenario: "lr_kt0", Device: "odroid-xu3", Fidelity: FidelityFull,
		Observations: []hypermapper.Observation{
			{X: hypermapper.Point{1, 0.3}, M: hypermapper.Metrics{Runtime: 0.125, MaxATE: 0.0123456789012345}},
			{X: hypermapper.Point{2, 0.7}, M: hypermapper.Metrics{Failed: true}},
			{X: hypermapper.Point{3, 0.1}, M: hypermapper.Metrics{Runtime: 0.5, LowFidelity: true}},
		},
		Evaluations: 3, FullFidelityEvals: 2, LowFidelityEvals: 1,
	}
	art.Front = art.Observations[:1]
	art.BestFeasible, art.HasBestFeasible = art.Observations[0], true

	if err := store.Save("full-c000-abc", art); err != nil {
		t.Fatal(err)
	}
	var back cellArtifact
	if !loadHit(t, store, "full-c000-abc", &back) {
		t.Fatal("saved artifact not loadable")
	}
	a, _ := json.Marshal(art)
	b, _ := json.Marshal(&back)
	if string(a) != string(b) {
		t.Fatalf("artifact did not round-trip:\n%s\n%s", a, b)
	}
	names, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "full-c000-abc" {
		t.Fatalf("List = %v", names)
	}
}

// TestStoreMisses proves every data-defect shape is a miss (false, nil)
// — safe to recompute — never an error and never bad data.
func TestStoreMisses(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out cellArtifact
	if loadHit(t, store, "absent", &out) {
		t.Fatal("absent artifact loaded")
	}
	// Corrupt file: a kill mid-write (pre-rename this cannot happen, but
	// a damaged disk can) must be a miss, not an error or bad data.
	if err := os.WriteFile(filepath.Join(dir, "broken.json"), []byte("{notjson"), 0o644); err != nil {
		t.Fatal(err)
	}
	if loadHit(t, store, "broken", &out) {
		t.Fatal("corrupt artifact loaded")
	}
	// Truncated artifact: valid JSON prefix torn mid-payload (the torn
	// write FaultShortWrite simulates) must be a miss too.
	if err := store.Save("torn", &cellArtifact{Scenario: "lr_kt1"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "torn.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "torn.json"), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if loadHit(t, store, "torn", &out) {
		t.Fatal("truncated artifact loaded")
	}
	// A file copied to the wrong name must not load under that name.
	if err := store.Save("right-name", &cellArtifact{Scenario: "lr_kt0"}); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(filepath.Join(dir, "right-name.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wrong-name.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if loadHit(t, store, "wrong-name", &out) {
		t.Fatal("renamed artifact loaded under the wrong name")
	}
	// A version bump orphans old artifacts.
	env := envelope{Version: storeVersion + 1, Name: "future"}
	raw, _ := json.Marshal(env)
	if err := os.WriteFile(filepath.Join(dir, "future.json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if loadHit(t, store, "future", &out) {
		t.Fatal("artifact from a future store version loaded")
	}
}

// TestStoreLoadRealError proves an I/O fault that is not a data defect
// surfaces as an error, not a miss: a miss means "recompute", and
// recomputing over a faulting store would silently discard work.
func TestStoreLoadRealError(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A directory squatting on the artifact path: ReadFile fails with a
	// real error (EISDIR) that is not fs.ErrNotExist.
	if err := os.Mkdir(filepath.Join(dir, "blocked.json"), 0o755); err != nil {
		t.Fatal(err)
	}
	var out cellArtifact
	ok, err := store.Load("blocked", &out)
	if ok {
		t.Fatal("directory loaded as artifact")
	}
	if err == nil {
		t.Fatal("real I/O fault reported as a plain miss")
	}
}

// TestStoreSaveLeavesNoTempFiles proves both the success path and the
// marshal-failure path clean up their temp files — leaked temp files in
// a shared store directory would accumulate across worker crashes.
func TestStoreSaveLeavesNoTempFiles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save("good", &cellArtifact{Scenario: "lr_kt0"}); err != nil {
		t.Fatal(err)
	}
	if err := store.Save("bad", func() {}); err == nil { // func marshals to an error
		t.Fatal("unmarshalable payload saved")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("temp file leaked: %s", e.Name())
		}
	}
}

// TestStoreConcurrentSaveLoad hammers one name from several goroutines
// saving identical bytes while others load — the multi-process shared
// directory contract, minus the processes. Run under -race; every
// successful load must see a complete, correct artifact.
func TestStoreConcurrentSaveLoad(t *testing.T) {
	store, err := OpenStore(filepath.Join(t.TempDir(), "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	art := &cellArtifact{Scenario: "lr_kt2", Device: "odroid-xu3", Fidelity: FidelityFull, Evaluations: 7}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := store.Save("contended", art); err != nil {
					t.Errorf("Save: %v", err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				var out cellArtifact
				ok, err := store.Load("contended", &out)
				if err != nil {
					t.Errorf("Load: %v", err)
					return
				}
				if ok && (out.Scenario != "lr_kt2" || out.Evaluations != 7) {
					t.Errorf("partial artifact observed: %+v", out)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestOpenStoreRejectsEmptyDir(t *testing.T) {
	if _, err := OpenStore(""); err == nil {
		t.Fatal("empty checkpoint directory accepted")
	}
}

// TestOpenStoreSweepsDebris seeds the checkpoint directory with the
// litter a SIGKILLed worker leaves behind — an aged half-written temp
// file and a lease whose holder's heartbeat is long past — and pins
// that OpenStore removes exactly that: fresh temp files (a live
// writer's rename in flight) and real artifacts must survive the sweep.
func TestOpenStoreSweepsDebris(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save("artifact", map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}

	old := time.Now().Add(-time.Hour)
	staleTmp := filepath.Join(dir, ".tmp-artifact-12345")
	if err := os.WriteFile(staleTmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(staleTmp, old, old); err != nil {
		t.Fatal(err)
	}
	freshTmp := filepath.Join(dir, ".tmp-artifact-67890")
	if err := os.WriteFile(freshTmp, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A dead worker's lease: planted through the real lease manager with
	// a clock an hour in the past, so its embedded heartbeat is ancient.
	past := func() time.Time { return old }
	if _, ok, err := sharedfs.NewLeaseManager(dir, "dead-worker", time.Second, past).TryAcquire("cell-0"); err != nil || !ok {
		t.Fatalf("seeding dead worker's lease: ok=%v err=%v", ok, err)
	}

	if _, err := OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	for _, gone := range []string{staleTmp, filepath.Join(dir, "cell-0.lease")} {
		if _, err := os.Stat(gone); !os.IsNotExist(err) {
			t.Errorf("debris %s survived the open (stat err %v)", filepath.Base(gone), err)
		}
	}
	if _, err := os.Stat(freshTmp); err != nil {
		t.Errorf("live writer's fresh temp file was swept: %v", err)
	}
	if !loadHit(t, store, "artifact", &map[string]int{}) {
		t.Error("real artifact lost to the debris sweep")
	}
}
