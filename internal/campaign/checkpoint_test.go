package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"slamgo/internal/hypermapper"
)

func TestStoreRoundTrip(t *testing.T) {
	store, err := OpenStore(filepath.Join(t.TempDir(), "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	art := &cellArtifact{
		Scenario: "lr_kt0", Device: "odroid-xu3", Fidelity: FidelityFull,
		Observations: []hypermapper.Observation{
			{X: hypermapper.Point{1, 0.3}, M: hypermapper.Metrics{Runtime: 0.125, MaxATE: 0.0123456789012345}},
			{X: hypermapper.Point{2, 0.7}, M: hypermapper.Metrics{Failed: true}},
			{X: hypermapper.Point{3, 0.1}, M: hypermapper.Metrics{Runtime: 0.5, LowFidelity: true}},
		},
		Evaluations: 3, FullFidelityEvals: 2, LowFidelityEvals: 1,
	}
	art.Front = art.Observations[:1]
	art.BestFeasible, art.HasBestFeasible = art.Observations[0], true

	if err := store.Save("full-c000-abc", art); err != nil {
		t.Fatal(err)
	}
	var back cellArtifact
	if !store.Load("full-c000-abc", &back) {
		t.Fatal("saved artifact not loadable")
	}
	a, _ := json.Marshal(art)
	b, _ := json.Marshal(&back)
	if string(a) != string(b) {
		t.Fatalf("artifact did not round-trip:\n%s\n%s", a, b)
	}
	names, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "full-c000-abc" {
		t.Fatalf("List = %v", names)
	}
}

func TestStoreMisses(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out cellArtifact
	if store.Load("absent", &out) {
		t.Fatal("absent artifact loaded")
	}
	// Corrupt file: a kill mid-write (pre-rename this cannot happen, but
	// a damaged disk can) must be a miss, not an error or bad data.
	if err := os.WriteFile(filepath.Join(dir, "broken.json"), []byte("{notjson"), 0o644); err != nil {
		t.Fatal(err)
	}
	if store.Load("broken", &out) {
		t.Fatal("corrupt artifact loaded")
	}
	// A file copied to the wrong name must not load under that name.
	if err := store.Save("right-name", &cellArtifact{Scenario: "lr_kt0"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "right-name.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wrong-name.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if store.Load("wrong-name", &out) {
		t.Fatal("renamed artifact loaded under the wrong name")
	}
	// A version bump orphans old artifacts.
	env := envelope{Version: storeVersion + 1, Name: "future"}
	raw, _ := json.Marshal(env)
	if err := os.WriteFile(filepath.Join(dir, "future.json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if store.Load("future", &out) {
		t.Fatal("artifact from a future store version loaded")
	}
}

func TestOpenStoreRejectsEmptyDir(t *testing.T) {
	if _, err := OpenStore(""); err == nil {
		t.Fatal("empty checkpoint directory accepted")
	}
}
