package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The checkpoint store persists one JSON file per stage artifact so a
// killed campaign restarts from completed cells instead of from
// scratch. Artifact names embed a content hash of everything that
// determines the artifact's bytes (cell spec, derived seed, the
// relevant exploration options — see runner.artifactName), so a
// changed option simply misses the stale file and re-runs the work; a
// version field in the envelope invalidates artifacts across format
// changes the same way. Writes are atomic (temp file + rename), and
// Load treats every defect — absent file, version or name mismatch,
// truncated or corrupt JSON — as a miss rather than an error, because
// re-running a stage is always safe while trusting a damaged artifact
// never is.

// storeVersion is the checkpoint format version; bumping it orphans
// every existing artifact (they are treated as misses, never misread).
const storeVersion = 1

// Store is a directory of versioned campaign stage artifacts.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) a checkpoint directory.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("campaign: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: checkpoint directory: %w", err)
	}
	return &Store{dir: dir}, nil
}

// envelope wraps every artifact with its format version and its own
// name, so a file copied or renamed to the wrong key cannot be loaded
// as something it is not.
type envelope struct {
	Version int             `json:"version"`
	Name    string          `json:"name"`
	Payload json.RawMessage `json:"payload"`
}

func (s *Store) path(name string) string {
	return filepath.Join(s.dir, name+".json")
}

// Save atomically persists payload under name, replacing any previous
// artifact of that name.
func (s *Store) Save(name string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("campaign: encoding artifact %s: %w", name, err)
	}
	data, err := json.Marshal(envelope{Version: storeVersion, Name: name, Payload: raw})
	if err != nil {
		return err
	}
	tmp := s.path(name) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.path(name))
}

// Load reads the artifact saved under name into out. It returns false —
// never an error — on any miss: no such file, a version or name
// mismatch, or corrupt contents. Callers re-run the stage on a miss.
func (s *Store) Load(name string, out any) bool {
	data, err := os.ReadFile(s.path(name))
	if err != nil {
		return false
	}
	var env envelope
	if json.Unmarshal(data, &env) != nil {
		return false
	}
	if env.Version != storeVersion || env.Name != name {
		return false
	}
	return json.Unmarshal(env.Payload, out) == nil
}

// List returns the names of every artifact in the store, sorted.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		names = append(names, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(names)
	return names, nil
}
