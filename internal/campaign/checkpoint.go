package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"slamgo/internal/sharedfs"
)

// The checkpoint store persists one JSON file per stage artifact so a
// killed campaign restarts from completed cells instead of from
// scratch. Artifact names embed a content hash of everything that
// determines the artifact's bytes (cell spec, derived seed, the
// relevant exploration options — see runner.artifactName), so a
// changed option simply misses the stale file and re-runs the work; a
// version field in the envelope invalidates artifacts across format
// changes the same way. Writes are atomic (a uniquely named temp file
// + rename, so two processes saving the same artifact never trample
// each other's half-written bytes), and Load treats every data defect
// — absent file, version or name mismatch, truncated or corrupt JSON —
// as a miss rather than an error, because re-running a stage is always
// safe while trusting a damaged artifact never is. Real I/O faults
// (permission denied, an unreadable path) are reported as errors so
// callers retry instead of silently re-simulating forever.
//
// The store doubles as the coordination substrate for multi-process
// campaigns: every writer of a given artifact name produces identical
// bytes (artifacts are pure functions of their content-hashed key), so
// concurrent writers are safe — the last complete rename wins and the
// winner is indistinguishable from the loser. Work distribution on top
// of that uses sibling .lease files (see lease.go).

// storeVersion is the checkpoint format version; bumping it orphans
// every existing artifact (they are treated as misses, never misread).
const storeVersion = 1

// ArtifactStore is the store surface the campaign runner depends on.
// *Store is the real directory-backed implementation; RetryStore adds
// bounded retry-with-backoff around transient faults, and FaultStore
// injects faults for the crash-safety tests.
type ArtifactStore interface {
	// Save atomically persists payload under name.
	Save(name string, payload any) error
	// Load reads the artifact saved under name into out. The boolean
	// reports a hit; (false, nil) is a miss (no such file, version or
	// name mismatch, corrupt contents) that re-running the stage
	// repairs, while a non-nil error is a real I/O fault that retrying
	// — not re-simulating — should handle.
	Load(name string, out any) (bool, error)
	// List returns the names of every artifact in the store, sorted.
	List() ([]string, error)
}

// Store is a directory of versioned campaign stage artifacts.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) a checkpoint directory, and
// garbage-collects the debris SIGKILLed processes leave behind: stale
// ".tmp-*" files from writes that never reached their rename and
// orphaned ".lease" files whose holder died (both judged against
// sharedfs.DefaultDebrisAge, conservatively old so live writers and
// heartbeating holders are never mistaken for litter). The sweep is
// best-effort hygiene — valid artifacts are never touched, and a sweep
// failure never fails the open.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("campaign: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: checkpoint directory: %w", err)
	}
	sharedfs.SweepDebris(dir, sharedfs.DefaultDebrisAge, nil)
	return &Store{dir: dir}, nil
}

// envelope wraps every artifact with its format version and its own
// name, so a file copied or renamed to the wrong key cannot be loaded
// as something it is not.
type envelope struct {
	Version int             `json:"version"`
	Name    string          `json:"name"`
	Payload json.RawMessage `json:"payload"`
}

func (s *Store) path(name string) string {
	return filepath.Join(s.dir, name+".json")
}

// Dir returns the store's directory (lease files live next to the
// artifacts, and the fault harness damages files in place).
func (s *Store) Dir() string { return s.dir }

// Save atomically persists payload under name, replacing any previous
// artifact of that name (sharedfs.WriteFileAtomic: uniquely named temp
// file, fsync, rename — so concurrent writers, other goroutines or
// other processes sharing the directory, cannot clobber each other's
// half-written bytes; whichever rename lands last wins whole, and
// failed saves remove their temp file instead of leaking it). The
// ".tmp-" prefix keeps in-flight files out of List (no ".json" suffix)
// and visually separate from artifacts.
func (s *Store) Save(name string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("campaign: encoding artifact %s: %w", name, err)
	}
	data, err := json.Marshal(envelope{Version: storeVersion, Name: name, Payload: raw})
	if err != nil {
		return err
	}
	if err := sharedfs.WriteFileAtomic(s.dir, s.path(name), name, data); err != nil {
		return fmt.Errorf("campaign: artifact %s: %w", name, err)
	}
	return nil
}

// Load reads the artifact saved under name into out. The boolean
// reports a hit. Every data defect — no such file, a version or name
// mismatch, truncated or corrupt contents — is a miss (false, nil),
// because re-running the stage is always safe while trusting a damaged
// artifact never is. A non-nil error is a real I/O fault (permission
// denied, an unreadable path): the work is not lost, the store is
// unreachable, so callers should retry rather than re-simulate.
func (s *Store) Load(name string, out any) (bool, error) {
	data, err := os.ReadFile(s.path(name))
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("campaign: artifact %s: %w", name, err)
	}
	var env envelope
	if json.Unmarshal(data, &env) != nil {
		return false, nil
	}
	if env.Version != storeVersion || env.Name != name {
		return false, nil
	}
	return json.Unmarshal(env.Payload, out) == nil, nil
}

// List returns the names of every artifact in the store, sorted.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		names = append(names, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(names)
	return names, nil
}
