package campaign

import (
	"bytes"
	"testing"
)

// TestPanicQuarantinedCell poisons one cell's pipeline (every
// simulation in it panics) and requires the campaign to quarantine the
// cell — persisted failed artifact, failed row in the report — while
// aggregating a robust configuration from the survivors.
func TestPanicQuarantinedCell(t *testing.T) {
	const poisoned = 1
	dir := t.TempDir()
	opts := resumeOptions(2, dir)
	opts.observeSimulation = func(cell int, class string) {
		if cell == poisoned {
			panic("poisoned cell")
		}
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("poisoned campaign aborted instead of quarantining: %v", err)
	}
	for i, c := range res.Cells {
		if i == poisoned {
			if !c.Failed || c.FailureReason != "poisoned cell" {
				t.Fatalf("poisoned cell not quarantined: %+v", c)
			}
			if len(c.Front) != 0 || c.HasBestFeasible || c.Evaluations != 0 {
				t.Fatalf("quarantined cell carries results: %+v", c)
			}
			if c.Promoted {
				t.Fatal("quarantined cell promoted to full fidelity")
			}
		} else if c.Failed {
			t.Fatalf("healthy cell %d quarantined", i)
		}
	}
	if !res.HasRobust {
		t.Fatal("no robust configuration from the surviving cells")
	}
	if res.Robust.Pick.Ranks[poisoned] != 0 {
		t.Fatalf("quarantined cell ranked %d, want 0", res.Robust.Pick.Ranks[poisoned])
	}
	if !res.Robust.PerCell[poisoned].Failed {
		t.Fatal("quarantined cell's robust metrics not marked Failed")
	}
	rep := res.Report()
	if !rep.Cells[poisoned].Failed || rep.Cells[poisoned].FailureReason != "poisoned cell" {
		t.Fatalf("report row not marked failed: %+v", rep.Cells[poisoned])
	}
	if !bytes.Contains(renderReport(t, res), []byte("failed")) {
		t.Fatal("rendered report does not show the failed row")
	}

	// Resuming loads the failed artifact instead of re-detonating the
	// cell: zero simulations, byte-identical report.
	var sims simCounter
	again := resumeOptions(2, dir)
	again.Resume = true
	again.observeSimulation = sims.hook
	res2, err := Run(again)
	if err != nil {
		t.Fatal(err)
	}
	if n := sims.total(); n != 0 {
		t.Fatalf("resume of quarantined campaign ran %d simulations, want 0", n)
	}
	if !bytes.Equal(renderReport(t, res2), renderReport(t, res)) {
		t.Fatal("resumed quarantined campaign renders a different report")
	}
	if !res2.Cells[poisoned].Failed {
		t.Fatal("resumed run lost the quarantine")
	}
}

// TestCrossMeasurePanicQuarantined poisons only the cross-measurement
// class of one cell: the per-measurement quarantine must absorb each
// panic as Failed metrics (infeasible in that cell) and the campaign
// must still complete with a robust pick.
func TestCrossMeasurePanicQuarantined(t *testing.T) {
	const poisoned = 2
	opts := resumeOptions(1, "")
	opts.observeSimulation = func(cell int, class string) {
		if cell == poisoned && class == simCross {
			panic("cross poisoned")
		}
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("cross-measure panic aborted the campaign: %v", err)
	}
	if res.Cells[poisoned].Failed {
		t.Fatal("exploration quarantined for a cross-measure-only fault")
	}
	if !res.HasRobust {
		t.Fatal("no robust configuration despite healthy explorations")
	}
}

// TestAllCellsQuarantined: when every cell is poisoned the campaign
// still completes — all rows failed, no robust configuration — instead
// of crashing or hanging.
func TestAllCellsQuarantined(t *testing.T) {
	opts := resumeOptions(2, "")
	opts.observeSimulation = func(int, string) { panic("everything is broken") }
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("fully poisoned campaign errored: %v", err)
	}
	for _, c := range res.Cells {
		if !c.Failed {
			t.Fatalf("cell %s/%s not quarantined", c.Cell.Scenario.Name, c.Cell.Target.Name)
		}
	}
	if res.HasRobust {
		t.Fatal("robust configuration picked with zero surviving cells")
	}
}
