package campaign

import (
	"errors"
	"testing"
	"time"
)

// scriptedStore is an ArtifactStore whose per-call outcomes are
// scripted, for exercising the retry loop without a filesystem.
type scriptedStore struct {
	saveErrs  []error // consumed one per Save call; nil entries succeed
	loadErrs  []error
	loadOK    bool
	saveCalls int
	loadCalls int
}

func take(errs []error, call int) error {
	if call < len(errs) {
		return errs[call]
	}
	return nil
}

func (s *scriptedStore) Save(string, any) error {
	err := take(s.saveErrs, s.saveCalls)
	s.saveCalls++
	return err
}

func (s *scriptedStore) Load(string, any) (bool, error) {
	err := take(s.loadErrs, s.loadCalls)
	s.loadCalls++
	if err != nil {
		return false, err
	}
	return s.loadOK, nil
}

func (s *scriptedStore) List() ([]string, error) { return nil, nil }

// sleepRecorder captures the backoff schedule instead of sleeping.
func sleepRecorder(slept *[]time.Duration) func(time.Duration) {
	return func(d time.Duration) { *slept = append(*slept, d) }
}

func TestRetryStoreRecoversTransientFault(t *testing.T) {
	boom := errors.New("enospc")
	inner := &scriptedStore{saveErrs: []error{boom}}
	var slept []time.Duration
	rs := NewRetryStore(inner, DefaultRetryPolicy(), sleepRecorder(&slept))
	if err := rs.Save("x", nil); err != nil {
		t.Fatalf("Save after transient fault: %v", err)
	}
	if inner.saveCalls != 2 {
		t.Fatalf("saveCalls = %d, want 2", inner.saveCalls)
	}
	if len(slept) != 1 || slept[0] != 10*time.Millisecond {
		t.Fatalf("backoff = %v, want [10ms]", slept)
	}
}

func TestRetryStoreExhaustsDeterministically(t *testing.T) {
	boom := errors.New("eio")
	inner := &scriptedStore{loadErrs: []error{boom, boom, boom, boom, boom, boom}}
	var slept []time.Duration
	rs := NewRetryStore(inner, DefaultRetryPolicy(), sleepRecorder(&slept))
	if _, err := rs.Load("x", nil); !errors.Is(err, boom) {
		t.Fatalf("Load = %v, want wrapped eio", err)
	}
	if inner.loadCalls != 5 {
		t.Fatalf("loadCalls = %d, want 5 (policy attempts)", inner.loadCalls)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond, 80 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("backoff = %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("backoff = %v, want %v (the deterministic ladder)", slept, want)
		}
	}
}

func TestRetryStoreNeverRetriesMiss(t *testing.T) {
	inner := &scriptedStore{loadOK: false}
	var slept []time.Duration
	rs := NewRetryStore(inner, DefaultRetryPolicy(), sleepRecorder(&slept))
	ok, err := rs.Load("absent", nil)
	if ok || err != nil {
		t.Fatalf("Load = %v, %v; want clean miss", ok, err)
	}
	if inner.loadCalls != 1 || len(slept) != 0 {
		t.Fatalf("miss retried: %d calls, backoff %v", inner.loadCalls, slept)
	}
}

func TestRetryPolicyDelayCaps(t *testing.T) {
	p := DefaultRetryPolicy()
	if d := p.Delay(10); d != p.MaxDelay {
		t.Fatalf("Delay(10) = %v, want cap %v", d, p.MaxDelay)
	}
	if d := p.Delay(63); d != p.MaxDelay { // shift overflow must not go negative
		t.Fatalf("Delay(63) = %v, want cap %v", d, p.MaxDelay)
	}
}
