package campaign

import (
	"testing"
)

// collectEvents runs a campaign with an OnProgress observer and returns
// the delivered events in order. OnProgress callbacks are serialised by
// the runner, so a plain append is safe even with many workers.
func collectEvents(t *testing.T, opts Options) []ProgressEvent {
	t.Helper()
	var events []ProgressEvent
	opts.OnProgress = func(ev ProgressEvent) { events = append(events, ev) }
	if _, err := Run(opts); err != nil {
		t.Fatal(err)
	}
	return events
}

// stageSpan returns the indices of the stage-start/stage-done pair for
// a stage (-1 when absent).
func stageSpan(events []ProgressEvent, stage Stage) (start, done int) {
	start, done = -1, -1
	for i, ev := range events {
		if ev.Stage != stage {
			continue
		}
		switch ev.Kind {
		case ProgressStageStart:
			start = i
		case ProgressStageDone:
			done = i
		}
	}
	return start, done
}

// TestProgressEventSequence checks the observer contract on a fresh
// cell-ladder campaign: stages bracket their cells in pipeline order,
// every cell reports exactly once per stage it participates in, and
// cell metadata (grid index, scenario, device, fidelity) is populated.
func TestProgressEventSequence(t *testing.T) {
	events := collectEvents(t, resumeOptions(4, ""))
	if len(events) == 0 {
		t.Fatal("no progress events delivered")
	}

	// Plan completes first, before any other event.
	if events[0].Kind != ProgressStageDone || events[0].Stage != StagePlan {
		t.Fatalf("first event %+v, want plan stage-done", events[0])
	}
	if events[0].Cells != 4 {
		t.Fatalf("plan event reports %d cells, want 4", events[0].Cells)
	}

	// Stage brackets exist and nest in pipeline order.
	prevDone := 0
	for _, stage := range []Stage{StageExplore, StagePromote, StageCrossMeasure, StageAggregate} {
		start, done := stageSpan(events, stage)
		if start < 0 || done < 0 || start >= done {
			t.Fatalf("stage %s bracket malformed: start=%d done=%d", stage, start, done)
		}
		if start < prevDone {
			t.Fatalf("stage %s started at %d before previous stage finished at %d", stage, start, prevDone)
		}
		prevDone = done
	}

	// Cell events: all four cells screen in explore, the promoted half
	// re-explores at full fidelity, all four cross-measure — and each
	// lands inside its stage's bracket.
	counts := map[Stage]int{}
	for i, ev := range events {
		if ev.Kind != ProgressCellDone {
			continue
		}
		if ev.Cell < 0 || ev.Cell >= 4 {
			t.Fatalf("cell event with grid index %d", ev.Cell)
		}
		if ev.Scenario == "" || ev.Device == "" {
			t.Fatalf("cell event missing identity: %+v", ev)
		}
		if ev.Resumed {
			t.Fatalf("fresh run delivered a resumed cell event: %+v", ev)
		}
		start, done := stageSpan(events, ev.Stage)
		if i < start || i > done {
			t.Fatalf("cell event %d for stage %s outside its bracket [%d,%d]", i, ev.Stage, start, done)
		}
		if ev.Stage == StageExplore || ev.Stage == StagePromote {
			if ev.Fidelity == "" {
				t.Fatalf("exploration cell event missing fidelity: %+v", ev)
			}
		}
		counts[ev.Stage]++
	}
	if counts[StageExplore] != 4 {
		t.Fatalf("%d explore cell events, want 4", counts[StageExplore])
	}
	if counts[StagePromote] != 2 { // ceil(0.5 × 4) cells promoted
		t.Fatalf("%d promote cell events, want 2", counts[StagePromote])
	}
	if counts[StageCrossMeasure] != 4 {
		t.Fatalf("%d cross-measure cell events, want 4", counts[StageCrossMeasure])
	}
}

// TestProgressEventsMarkResumedArtifacts: replaying a completed
// campaign from its checkpoint store delivers the same cell events with
// Resumed set — the observer sees the artifact history, not just local
// computation.
func TestProgressEventsMarkResumedArtifacts(t *testing.T) {
	dir := t.TempDir()
	fresh := collectEvents(t, resumeOptions(1, dir))

	opts := resumeOptions(4, dir)
	opts.Resume = true
	replay := collectEvents(t, opts)

	count := func(events []ProgressEvent) int {
		n := 0
		for _, ev := range events {
			if ev.Kind == ProgressCellDone {
				n++
			}
		}
		return n
	}
	if count(replay) != count(fresh) {
		t.Fatalf("replay delivered %d cell events, fresh run %d", count(replay), count(fresh))
	}
	for _, ev := range replay {
		if ev.Kind == ProgressCellDone && !ev.Resumed {
			t.Fatalf("replayed cell event not marked resumed: %+v", ev)
		}
	}
}
