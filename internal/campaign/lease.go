package campaign

import (
	"time"

	"slamgo/internal/sharedfs"
)

// The worker-lease protocol turns a shared checkpoint directory into a
// coordination substrate: N cooperating processes (or machines over a
// shared filesystem) execute one campaign's grid together, and any of
// them can die at any instant without losing the campaign. The
// implementation lives in internal/sharedfs (it is shared with the
// rendered-sequence cache, so both coordinate identically); these
// aliases keep the campaign API and its tests stable.
//
// Leases are a work-distribution optimisation, not a correctness
// mechanism: correctness rests entirely on the artifact store (content-
// hashed names, identical bytes from every writer, atomic renames), so
// takeover races are benign double-compute. See sharedfs for the full
// protocol description.

// ErrLeaseLost reports that a renew found the lease held by another
// worker: an expired lease was taken over. The holder keeps computing —
// the write is still safe — but learns its effort may be duplicated.
var ErrLeaseLost = sharedfs.ErrLeaseLost

// LeaseManager claims, renews and releases cell leases in a store
// directory on behalf of one worker.
type LeaseManager = sharedfs.LeaseManager

// Lease is a held claim on one artifact name.
type Lease = sharedfs.Lease

// NewLeaseManager creates a manager for worker over the store directory
// dir. A lease is expired once its heartbeat is older than ttl; now nil
// means time.Now (tests inject clocks to simulate dead workers).
func NewLeaseManager(dir, worker string, ttl time.Duration, now func() time.Time) *LeaseManager {
	return sharedfs.NewLeaseManager(dir, worker, ttl, now)
}
