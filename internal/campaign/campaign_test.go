package campaign

import (
	"bytes"
	"testing"

	"slamgo/internal/core"
	"slamgo/internal/slambench"
)

func TestScenarioRegistry(t *testing.T) {
	base := core.QuickScale()
	all := Scenarios(base)
	if len(all) != 6 {
		t.Fatalf("registry has %d scenarios, want 6", len(all))
	}
	wantNames := []string{"lr_kt0", "lr_kt1", "lr_kt2", "lr_kt3", "of_kt0", "of_kt1"}
	for i, s := range all {
		if s.Name != wantNames[i] {
			t.Fatalf("scenario %d is %q, want %q", i, s.Name, wantNames[i])
		}
		if s.Scale.Width != base.Width || s.Scale.Frames != base.Frames || s.Scale.Noisy != base.Noisy {
			t.Fatalf("scenario %q did not inherit the base scale: %+v", s.Name, s.Scale)
		}
		if s.Scale.Office != (i >= 4) {
			t.Fatalf("scenario %q office flag wrong", s.Name)
		}
	}
	sel, err := SelectScenarios(base, []string{"of_kt1", "lr_kt2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0].Name != "of_kt1" || sel[1].Name != "lr_kt2" {
		t.Fatalf("selection order not preserved: %+v", sel)
	}
	if _, err := SelectScenarios(base, []string{"lr_kt9"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestGridAndTargets(t *testing.T) {
	targets, err := ResolveTargets(42, []string{"odroid-xu3", "pixel-adreno530", "desktop-gpu"})
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 3 || targets[0].Name != "odroid-xu3" || targets[1].Name != "pixel-adreno530" {
		t.Fatalf("targets: %+v", targets)
	}
	if _, err := ResolveTargets(42, []string{"nokia-3310"}); err == nil {
		t.Fatal("unknown target accepted")
	}

	cells := Grid(Scenarios(core.QuickScale())[:2], targets[:2])
	if len(cells) != 4 {
		t.Fatalf("grid size %d, want 4", len(cells))
	}
	// Scenario-major order with sequential indices.
	want := []struct{ scen, dev string }{
		{"lr_kt0", "odroid-xu3"}, {"lr_kt0", "pixel-adreno530"},
		{"lr_kt1", "odroid-xu3"}, {"lr_kt1", "pixel-adreno530"},
	}
	for i, c := range cells {
		if c.Index != i || c.Scenario.Name != want[i].scen || c.Target.Name != want[i].dev {
			t.Fatalf("cell %d: %+v", i, c)
		}
	}
}

// TestSelectionErrorPaths covers the registry/catalogue failure modes a
// campaign must reject before any simulation: unknown names (checked in
// TestScenarioRegistry/TestGridAndTargets too), empty selections and
// duplicated selections.
func TestSelectionErrorPaths(t *testing.T) {
	base := core.QuickScale()
	if _, err := SelectScenarios(base, nil); err == nil {
		t.Fatal("empty scenario selection accepted")
	}
	if _, err := SelectScenarios(base, []string{"lr_kt0", "of_kt1", "lr_kt0"}); err == nil {
		t.Fatal("duplicate scenario accepted")
	}
	if _, err := ResolveTargets(42, nil); err == nil {
		t.Fatal("empty device selection accepted")
	}
	if _, err := ResolveTargets(42, []string{"odroid-xu3", "odroid-xu3"}); err == nil {
		t.Fatal("duplicate built-in device accepted")
	}
	if _, err := ResolveTargets(42, []string{"pixel-adreno530", "pixel-adreno530"}); err == nil {
		t.Fatal("duplicate phone accepted")
	}
}

func TestGridScenarioMajorOrder(t *testing.T) {
	scen := Scenarios(core.QuickScale())[:3]
	targets, err := ResolveTargets(42, []string{"odroid-xu3", "desktop-gpu"})
	if err != nil {
		t.Fatal(err)
	}
	cells := Grid(scen, targets)
	if len(cells) != 6 {
		t.Fatalf("grid size %d, want 6", len(cells))
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d", i, c.Index)
		}
		if want := scen[i/2].Name; c.Scenario.Name != want {
			t.Fatalf("cell %d scenario %q, want %q (scenario-major order)", i, c.Scenario.Name, want)
		}
		if want := targets[i%2].Name; c.Target.Name != want {
			t.Fatalf("cell %d target %q, want %q", i, c.Target.Name, want)
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	scen, err := SelectScenarios(campaignScale(), []string{"lr_kt0"})
	if err != nil {
		t.Fatal(err)
	}
	targets, err := ResolveTargets(42, []string{"odroid-xu3"})
	if err != nil {
		t.Fatal(err)
	}
	ok := Options{Scenarios: scen, Targets: targets}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid zero-default options rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"resume without checkpoint", func(o *Options) { o.Resume = true }},
		{"unknown stop-after stage", func(o *Options) { o.StopAfter = "sideways" }},
		{"stop-after without checkpoint discards work", func(o *Options) { o.StopAfter = StageExplore }},
		{"cell promote fraction > 1", func(o *Options) { o.CellPromoteFraction = 1.5 }},
		{"negative promote fraction", func(o *Options) { o.PromoteFraction = -0.5 }},
		{"negative cell stride", func(o *Options) { o.CellStride = -2 }},
		{"negative accuracy limit", func(o *Options) { o.AccuracyLimit = -1 }},
	}
	for _, c := range cases {
		bad := ok
		c.mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
}

func TestParseStage(t *testing.T) {
	for _, s := range []string{"", "plan", "explore", "promote", "crossmeasure"} {
		if _, err := ParseStage(s); err != nil {
			t.Fatalf("ParseStage(%q): %v", s, err)
		}
	}
	for _, s := range []string{"aggregate", "Explore", "bogus"} {
		if _, err := ParseStage(s); err == nil {
			t.Fatalf("ParseStage(%q) accepted", s)
		}
	}
}

func TestRunRejectsEmptyGrid(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Fatal("empty campaign accepted")
	}
	if _, err := Run(Options{Scenarios: Scenarios(core.QuickScale())}); err == nil {
		t.Fatal("campaign without targets accepted")
	}
}

// campaignScale is the test workload: small enough that a 8-cell
// campaign stays test-suite friendly, large enough that the pipeline
// really runs.
func campaignScale() core.Scale {
	return core.Scale{Width: 96, Height: 72, Frames: 8, Noisy: false, Seed: 42}
}

// testOptions is the shared 4-scenario × 2-device campaign setup.
func testOptions(workers int) Options {
	base := campaignScale()
	scen, err := SelectScenarios(base, []string{"lr_kt0", "lr_kt1", "lr_kt3", "of_kt0"})
	if err != nil {
		panic(err)
	}
	targets, err := ResolveTargets(42, []string{"odroid-xu3", "pixel-adreno530"})
	if err != nil {
		panic(err)
	}
	return Options{
		Scenarios:          scen,
		Targets:            targets,
		RandomSamples:      5,
		ActiveIterations:   1,
		BatchPerIteration:  2,
		AccuracyLimit:      0.1, // short low-res sequences need a lenient bound
		Seed:               7,
		Workers:            workers,
		FidelityStride:     2,
		PromoteFraction:    0.5,
		MaxFrontCandidates: 1,
	}
}

// renderReport serialises a campaign result through every report writer
// so byte-identity covers the full reporting surface.
func renderReport(t *testing.T, res *Result) []byte {
	t.Helper()
	rep := res.Report()
	var buf bytes.Buffer
	if err := slambench.WriteCampaignTable(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if err := slambench.WriteCampaignCSV(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if err := slambench.WriteCampaignJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCampaignDeterministicAcrossWorkers is the acceptance check: a
// seeded 4-scenario × 2-device campaign produces a bit-identical report
// — per-cell fronts, robust configuration, every serialisation — for
// workers 1, 4 and 8 (run under -race via make race).
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	ref, err := Run(testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Cells) != 8 {
		t.Fatalf("grid has %d cells, want 8", len(ref.Cells))
	}
	// Structural sanity on the reference run before comparing bytes.
	for _, c := range ref.Cells {
		if c.Evaluations == 0 {
			t.Fatalf("cell %s/%s ran no evaluations", c.Cell.Scenario.Name, c.Cell.Target.Name)
		}
		if c.FullFidelityEvals >= c.Evaluations {
			t.Fatalf("cell %s/%s: ladder promoted everything (%d of %d)",
				c.Cell.Scenario.Name, c.Cell.Target.Name, c.FullFidelityEvals, c.Evaluations)
		}
		for _, o := range c.Front {
			if o.M.LowFidelity || o.M.Failed {
				t.Fatalf("cell %s/%s front contains a non-full measurement",
					c.Cell.Scenario.Name, c.Cell.Target.Name)
			}
		}
	}
	if !ref.HasRobust {
		t.Fatal("campaign produced no robust configuration")
	}
	if len(ref.Robust.PerCell) != len(ref.Cells) || len(ref.Robust.Pick.Ranks) != len(ref.Cells) {
		t.Fatalf("robust aggregation incomplete: %d cells, %d metrics, %d ranks",
			len(ref.Cells), len(ref.Robust.PerCell), len(ref.Robust.Pick.Ranks))
	}
	// Robust configuration: full fidelity everywhere, feasible where the
	// flag claims, and a valid pipeline configuration.
	for j, m := range ref.Robust.PerCell {
		if m.LowFidelity {
			t.Fatalf("robust metrics in cell %d are low fidelity", j)
		}
		if ref.Robust.Pick.FeasibleEverywhere && (m.Failed || m.MaxATE > ref.AccuracyLimit) {
			t.Fatalf("robust config infeasible in cell %d despite FeasibleEverywhere: %+v", j, m)
		}
	}
	if err := ref.Robust.Config.Validate(); err != nil {
		t.Fatalf("robust config invalid: %v", err)
	}
	refBytes := renderReport(t, ref)

	for _, workers := range []int{4, 8} {
		got, err := Run(testOptions(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(renderReport(t, got), refBytes) {
			t.Fatalf("workers=%d: campaign report diverges from workers=1", workers)
		}
		// The underlying data must agree too, not just its rendering.
		if got.CandidateCount != ref.CandidateCount {
			t.Fatalf("workers=%d: candidate set %d vs %d", workers, got.CandidateCount, ref.CandidateCount)
		}
		for j := range ref.Cells {
			if len(got.Cells[j].Front) != len(ref.Cells[j].Front) {
				t.Fatalf("workers=%d: cell %d front size diverges", workers, j)
			}
			for k := range ref.Cells[j].Front {
				if got.Cells[j].Front[k].M != ref.Cells[j].Front[k].M {
					t.Fatalf("workers=%d: cell %d front member %d diverges", workers, j, k)
				}
			}
		}
		if got.Robust.Pick.Index != ref.Robust.Pick.Index ||
			got.Robust.Pick.WorstRank != ref.Robust.Pick.WorstRank ||
			got.Robust.Pick.RankSum != ref.Robust.Pick.RankSum {
			t.Fatalf("workers=%d: robust pick diverges", workers)
		}
	}
}
