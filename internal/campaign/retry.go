package campaign

import (
	"fmt"
	"time"
)

// Transient store faults — a full disk that a log rotation clears, an
// NFS server blinking, an object-store 5xx behind a FUSE mount — should
// cost a campaign a few milliseconds, not a cell re-simulation or a
// crash. RetryStore wraps any ArtifactStore in a bounded
// retry-with-backoff loop. The backoff schedule is a fixed deterministic
// ladder (no jitter, no wall-clock dependence), so retrying changes
// *when* bytes land, never *which* bytes: reports stay byte-identical
// whether or not faults occurred.

// RetryPolicy bounds a retry loop: at most Attempts tries, sleeping
// BaseDelay << attempt between them, capped at MaxDelay.
type RetryPolicy struct {
	Attempts  int
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// DefaultRetryPolicy is the store policy campaigns run with: 5 attempts
// over ~150ms. Transient blips are absorbed; a genuinely broken disk
// still fails fast enough to be diagnosable.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
}

// delay is the deterministic backoff before retry attempt (1-based
// attempt already failed): BaseDelay doubled per attempt, capped.
func (p RetryPolicy) delay(attempt int) time.Duration {
	d := p.BaseDelay << (attempt - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	return d
}

// RetryStore retries transient faults of the wrapped store. Load misses
// (false, nil) are never retried — a miss means "re-run the stage", not
// "the store is down".
type RetryStore struct {
	inner  ArtifactStore
	policy RetryPolicy
	sleep  func(time.Duration)
}

// NewRetryStore wraps inner with policy; sleep nil means time.Sleep
// (tests inject a recorder to keep the suite fast).
func NewRetryStore(inner ArtifactStore, policy RetryPolicy, sleep func(time.Duration)) *RetryStore {
	if policy.Attempts < 1 {
		policy.Attempts = 1
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	return &RetryStore{inner: inner, policy: policy, sleep: sleep}
}

// retry runs op up to policy.Attempts times, backing off between tries.
func (s *RetryStore) retry(what string, op func() error) error {
	var err error
	for attempt := 1; ; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if attempt >= s.policy.Attempts {
			return fmt.Errorf("campaign: %s failed after %d attempts: %w", what, attempt, err)
		}
		s.sleep(s.policy.delay(attempt))
	}
}

func (s *RetryStore) Save(name string, payload any) error {
	return s.retry("saving "+name, func() error { return s.inner.Save(name, payload) })
}

func (s *RetryStore) Load(name string, out any) (bool, error) {
	var ok bool
	err := s.retry("loading "+name, func() error {
		var ierr error
		ok, ierr = s.inner.Load(name, out)
		return ierr
	})
	if err != nil {
		return false, err
	}
	return ok, nil
}

func (s *RetryStore) List() ([]string, error) {
	var names []string
	err := s.retry("listing artifacts", func() error {
		var ierr error
		names, ierr = s.inner.List()
		return ierr
	})
	if err != nil {
		return nil, err
	}
	return names, nil
}
