package campaign

import (
	"time"

	"slamgo/internal/sharedfs"
)

// Transient store faults — a full disk that a log rotation clears, an
// NFS server blinking, an object-store 5xx behind a FUSE mount — should
// cost a campaign a few milliseconds, not a cell re-simulation or a
// crash. RetryStore wraps any ArtifactStore in the bounded
// retry-with-backoff ladder of internal/sharedfs. The schedule is fixed
// and deterministic (no jitter, no wall-clock dependence), so retrying
// changes *when* bytes land, never *which* bytes: reports stay
// byte-identical whether or not faults occurred.

// RetryPolicy bounds a retry loop: at most Attempts tries, sleeping
// BaseDelay << attempt between them, capped at MaxDelay.
type RetryPolicy = sharedfs.RetryPolicy

// DefaultRetryPolicy is the store policy campaigns run with: 5 attempts
// over ~150ms. Transient blips are absorbed; a genuinely broken disk
// still fails fast enough to be diagnosable.
func DefaultRetryPolicy() RetryPolicy {
	return sharedfs.DefaultRetryPolicy()
}

// RetryStore retries transient faults of the wrapped store. Load misses
// (false, nil) are never retried — a miss means "re-run the stage", not
// "the store is down".
type RetryStore struct {
	inner  ArtifactStore
	policy RetryPolicy
	sleep  func(time.Duration)
}

// NewRetryStore wraps inner with policy; sleep nil means time.Sleep
// (tests inject a recorder to keep the suite fast).
func NewRetryStore(inner ArtifactStore, policy RetryPolicy, sleep func(time.Duration)) *RetryStore {
	if policy.Attempts < 1 {
		policy.Attempts = 1
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	return &RetryStore{inner: inner, policy: policy, sleep: sleep}
}

func (s *RetryStore) Save(name string, payload any) error {
	return s.policy.Retry("campaign: saving "+name, s.sleep,
		func() error { return s.inner.Save(name, payload) })
}

func (s *RetryStore) Load(name string, out any) (bool, error) {
	var ok bool
	err := s.policy.Retry("campaign: loading "+name, s.sleep, func() error {
		var ierr error
		ok, ierr = s.inner.Load(name, out)
		return ierr
	})
	if err != nil {
		return false, err
	}
	return ok, nil
}

func (s *RetryStore) List() ([]string, error) {
	var names []string
	err := s.policy.Retry("campaign: listing artifacts", s.sleep, func() error {
		var ierr error
		names, ierr = s.inner.List()
		return ierr
	})
	if err != nil {
		return nil, err
	}
	return names, nil
}
