package campaign

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"slamgo/internal/core"
	"slamgo/internal/hypermapper"
)

// transferOptions is the shared 2-scenario × 2-device transfer grid:
// anchors on the diagonal (cells 0 and 3), borrowers off it (1 and 2).
// RandomSamples 8 against the default TransferSeeds 3 gives borrowers
// 3 seeds + one extra active round (3+2·2 = 7 vs 8+1·2 = 10 evals, 30%
// savings), comfortably clearing the ≥20% acceptance bar even if
// deduplication eats an observation.
func transferOptions(workers int, transfer bool, dir string) Options {
	base := core.Scale{Width: 48, Height: 36, Frames: 5, Noisy: false, Seed: 42}
	scen, err := SelectScenarios(base, []string{"lr_kt0", "lr_kt1"})
	if err != nil {
		panic(err)
	}
	targets, err := ResolveTargets(42, []string{"odroid-xu3", "pixel-adreno530"})
	if err != nil {
		panic(err)
	}
	return Options{
		Scenarios:          scen,
		Targets:            targets,
		RandomSamples:      8,
		ActiveIterations:   1,
		BatchPerIteration:  2,
		AccuracyLimit:      0.1,
		Seed:               11,
		Workers:            workers,
		MaxFrontCandidates: 1,
		Transfer:           transfer,
		CheckpointDir:      dir,
	}
}

// TestTransferTopology pins the anchor/donor scheme as a pure function
// of the grid shape.
func TestTransferTopology(t *testing.T) {
	// 4 scenarios × 2 targets: diagonal wraps over the targets.
	anchors := anchorIndices(4, 2)
	if !reflect.DeepEqual(anchors, []int{0, 3, 4, 7}) {
		t.Fatalf("anchors = %v", anchors)
	}
	// Borrower (s0,t1)=1: same-scenario anchor 0, then same-device
	// anchors (index mod 2 == 1) ascending.
	if got := donorIndices(1, 2, anchors); !reflect.DeepEqual(got, []int{0, 3, 7}) {
		t.Fatalf("donors(1) = %v", got)
	}
	// Borrower (s2,t1)=5: same-scenario anchor 4 first, then 3 and 7.
	if got := donorIndices(5, 2, anchors); !reflect.DeepEqual(got, []int{4, 3, 7}) {
		t.Fatalf("donors(5) = %v", got)
	}
	// A single-target grid anchors every scenario at its only cell, so
	// there are no borrowers — but donorIndices still behaves.
	if got := anchorIndices(3, 1); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("1-target anchors = %v", got)
	}
}

// perCellSims counts actual pipeline simulations per (cell, class).
type perCellSims struct {
	mu     sync.Mutex
	counts map[int]map[string]int
}

func (c *perCellSims) hook(cell int, class string) {
	c.mu.Lock()
	if c.counts == nil {
		c.counts = map[int]map[string]int{}
	}
	if c.counts[cell] == nil {
		c.counts[cell] = map[string]int{}
	}
	c.counts[cell][class]++
	c.mu.Unlock()
}

func (c *perCellSims) get(cell int, class string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[cell][class]
}

// TestTransferReducesFullSims is the headline acceptance check: against
// the transfer-off baseline on the same grid, every warm-started
// borrower spends at least 20% fewer full-fidelity exploration
// simulations, anchors are untouched (bit-identical fronts), and the
// summed shared-reference hypervolume of the transfer campaign's fronts
// is equal or better.
func TestTransferReducesFullSims(t *testing.T) {
	var offSims, onSims perCellSims
	offOpts := transferOptions(2, false, "")
	offOpts.observeSimulation = offSims.hook
	off, err := Run(offOpts)
	if err != nil {
		t.Fatal(err)
	}
	onOpts := transferOptions(2, true, "")
	onOpts.observeSimulation = onSims.hook
	on, err := Run(onOpts)
	if err != nil {
		t.Fatal(err)
	}

	// Anchors (0 and 3) explore from scratch: identical artifacts.
	for _, i := range []int{0, 3} {
		if on.Cells[i].TransferBorrower || on.Cells[i].TransferSeeds != 0 {
			t.Fatalf("anchor cell %d marked as borrower: %+v", i, on.Cells[i])
		}
		if !reflect.DeepEqual(on.Cells[i].Front, off.Cells[i].Front) {
			t.Fatalf("anchor cell %d front changed under transfer", i)
		}
		if got, want := onSims.get(i, simFull), offSims.get(i, simFull); got != want {
			t.Fatalf("anchor cell %d spent %d full sims under transfer, %d without", i, got, want)
		}
	}
	// Borrowers (1 and 2) warm-start and spend ≥20% fewer full sims.
	for _, i := range []int{1, 2} {
		c := on.Cells[i]
		if !c.TransferBorrower || len(c.TransferDonors) == 0 || c.TransferSeeds == 0 {
			t.Fatalf("borrower cell %d did not warm-start: %+v", i, c)
		}
		offFull, onFull := offSims.get(i, simFull), onSims.get(i, simFull)
		if onFull > offFull*4/5 {
			t.Fatalf("borrower cell %d: %d full sims with transfer vs %d without (< 20%% reduction)",
				i, onFull, offFull)
		}
		if c.FullFidelityEvals != onFull {
			t.Fatalf("borrower cell %d reports %d full evals, instrumented %d",
				i, c.FullFidelityEvals, onFull)
		}
	}
	// Shared-reference hypervolume over all eight fronts: the transfer
	// campaign's total must be equal or better.
	var fronts [][]hypermapper.Observation
	for _, c := range off.Cells {
		fronts = append(fronts, c.Front)
	}
	for _, c := range on.Cells {
		fronts = append(fronts, c.Front)
	}
	hv := hypermapper.FrontHypervolumes(fronts, hypermapper.RuntimeAccuracy)
	offHV, onHV := 0.0, 0.0
	for i, v := range hv {
		if i < len(off.Cells) {
			offHV += v
		} else {
			onHV += v
		}
	}
	if onHV < offHV {
		t.Fatalf("transfer degraded front quality: hypervolume %g with transfer vs %g without", onHV, offHV)
	}

	// The report renders the provenance columns and efficiency summary.
	rep := renderReport(t, on)
	for _, want := range []string{"donors", "seeds", "transfer:", "transfer_borrower"} {
		if !bytes.Contains(rep, []byte(want)) {
			t.Fatalf("transfer report lacks %q", want)
		}
	}
	if bytes.Contains(renderReport(t, off), []byte("transfer")) {
		t.Fatal("transfer-off report mentions transfer")
	}
}

// TestTransferDeterministicAcrossWorkers: the two-wave schedule keeps
// the campaign's core invariant — bit-identical reports for any worker
// count (run under -race via make race).
func TestTransferDeterministicAcrossWorkers(t *testing.T) {
	ref, err := Run(transferOptions(1, true, ""))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ref.Cells {
		if c.Evaluations == 0 {
			t.Fatalf("cell %s/%s ran no evaluations", c.Cell.Scenario.Name, c.Cell.Target.Name)
		}
	}
	if !ref.HasRobust {
		t.Fatal("transfer campaign produced no robust configuration")
	}
	refBytes := renderReport(t, ref)
	for _, workers := range []int{4, 8} {
		got, err := Run(transferOptions(workers, true, ""))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(renderReport(t, got), refBytes) {
			t.Fatalf("workers=%d transfer report diverges from workers=1", workers)
		}
	}
}

// TestTransferObsLogPersistedAndResumed: with a checkpoint store the
// anchors publish obslog artifacts, and a resumed transfer campaign
// replays from artifacts alone — zero simulations, byte-identical
// report.
func TestTransferObsLogPersistedAndResumed(t *testing.T) {
	dir := t.TempDir()
	first, err := Run(transferOptions(2, true, dir))
	if err != nil {
		t.Fatal(err)
	}
	logs, err := filepath.Glob(filepath.Join(dir, "obslog-*"))
	if err != nil {
		t.Fatal(err)
	}
	// One observation log per anchor (cells 0 and 3).
	if len(logs) != 2 {
		entries, _ := os.ReadDir(dir)
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("store holds %d obslog artifacts, want 2 (dir: %s)", len(logs), strings.Join(names, ", "))
	}

	var sims simCounter
	opts := transferOptions(2, true, dir)
	opts.Resume = true
	opts.observeSimulation = sims.hook
	again, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if sims.total() != 0 {
		t.Fatalf("resumed transfer campaign re-simulated %d times", sims.total())
	}
	if !bytes.Equal(renderReport(t, again), renderReport(t, first)) {
		t.Fatal("resumed transfer report diverges from the original")
	}
}

// TestTransferQuarantinedAnchorDegrades: poisoning an anchor must not
// take its borrowers down — they lose that donor, warm-start from the
// surviving one, and the campaign still aggregates deterministically.
func TestTransferQuarantinedAnchorDegrades(t *testing.T) {
	const poisoned = 0 // anchor of scenario lr_kt0
	run := func(workers int) *Result {
		opts := transferOptions(workers, true, "")
		opts.observeSimulation = func(cell int, class string) {
			if cell == poisoned {
				panic("poisoned anchor")
			}
		}
		res, err := Run(opts)
		if err != nil {
			t.Fatalf("poisoned transfer campaign aborted: %v", err)
		}
		return res
	}
	res := run(2)
	if !res.Cells[poisoned].Failed {
		t.Fatal("poisoned anchor not quarantined")
	}
	surviving := "lr_kt1/pixel-adreno530" // the other diagonal anchor
	for _, i := range []int{1, 2} {
		c := res.Cells[i]
		if !c.TransferBorrower {
			t.Fatalf("cell %d lost its borrower role", i)
		}
		if len(c.TransferDonors) != 1 || c.TransferDonors[0] != surviving {
			t.Fatalf("cell %d donors = %v, want just %q", i, c.TransferDonors, surviving)
		}
		if c.TransferSeeds == 0 {
			t.Fatalf("cell %d borrowed no seeds from the surviving anchor", i)
		}
		if c.Failed {
			t.Fatalf("borrower cell %d quarantined by its donor's failure", i)
		}
	}
	if !bytes.Equal(renderReport(t, run(4)), renderReport(t, res)) {
		t.Fatal("degraded transfer campaign not deterministic across worker counts")
	}
}

// TestTransferCooperatingWorkers: three worker processes sharing one
// checkpoint directory run the two-wave schedule through the lease
// protocol — every worker drives wave 1 for all anchors (computing or
// loading each artifact) before its borrowers start, so all three
// render the identical report and the summed simulation counts equal a
// single-process run's (run under -race via make race).
func TestTransferCooperatingWorkers(t *testing.T) {
	var refSims simCounter
	refOpts := transferOptions(1, true, "")
	refOpts.observeSimulation = refSims.hook
	ref, err := Run(refOpts)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := renderReport(t, ref)

	const workers = 3
	dir := t.TempDir()
	results := make([]*Result, workers)
	errs := make([]error, workers)
	sims := make([]simCounter, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			opts := transferOptions(2, true, dir)
			opts.WorkerID = fmt.Sprintf("w%d", w)
			opts.observeSimulation = sims[w].hook
			results[w], errs[w] = Run(opts)
		}(w)
	}
	wg.Wait()

	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if !bytes.Equal(renderReport(t, results[w]), refBytes) {
			t.Fatalf("worker %d transfer report diverges from single-process run", w)
		}
	}
	for _, class := range simClasses {
		total := 0
		for w := range sims {
			total += sims[w].get(class)
		}
		if total != refSims.get(class) {
			t.Fatalf("workers spent %d %s simulations, single-process run %d", total, class, refSims.get(class))
		}
	}
}
