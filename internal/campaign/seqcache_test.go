package campaign

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"slamgo/internal/seqcache"
	"slamgo/internal/sharedfs"
)

// noCacheDebris fails the test if the cache directory holds leftover
// temp or lease files after a completed campaign.
func noCacheDebris(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir(%s): %v", dir, err)
	}
	for _, e := range ents {
		if sharedfs.IsTempFile(e.Name()) {
			t.Fatalf("cache leaked temp file %s", e.Name())
		}
		if filepath.Ext(e.Name()) == ".lease" {
			t.Fatalf("cache leaked lease file %s", e.Name())
		}
	}
}

// TestSeqCacheByteIdenticalAcrossWorkerCounts is the cache acceptance
// check: the 4-scenario × 2-device campaign with a shared sequence
// cache renders a byte-identical report to the uncached run for workers
// 1, 4 and 8, and across the three runs sharing one store each distinct
// sequence is rendered exactly once — not once per cell (8), not once
// per run (12).
func TestSeqCacheByteIdenticalAcrossWorkerCounts(t *testing.T) {
	ref, err := Run(testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	refBytes := renderReport(t, ref)
	if ref.SeqStats.DiskHits != 0 || ref.SeqStats.Degradations != 0 {
		t.Fatalf("uncached run touched a disk cache: %+v", ref.SeqStats)
	}

	const distinctSequences = 4 // lr_kt0, lr_kt1, lr_kt3, of_kt0
	dir := t.TempDir()
	totalRenders := 0
	for i, workers := range []int{1, 4, 8} {
		opts := testOptions(workers)
		opts.SeqCacheDir = dir
		res, err := Run(opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(renderReport(t, res), refBytes) {
			t.Fatalf("workers=%d: cached report diverges from uncached run", workers)
		}
		st := res.SeqStats
		totalRenders += st.Renders
		if st.Degradations != 0 {
			t.Fatalf("workers=%d: healthy cache degraded: %+v", workers, st)
		}
		if i == 0 && st.Renders != distinctSequences {
			t.Fatalf("first run rendered %d sequences, want %d (once per distinct scale)",
				st.Renders, distinctSequences)
		}
		if i > 0 && (st.Renders != 0 || st.DiskHits != distinctSequences) {
			t.Fatalf("run %d should have loaded everything: %+v", i, st)
		}
	}
	if totalRenders != distinctSequences {
		t.Fatalf("store saw %d renders across three runs, want %d (once per shared store)",
			totalRenders, distinctSequences)
	}
	noCacheDebris(t, dir)
}

// TestSeqCacheMultiWorkerRenderOncePerStore runs three cooperating
// worker processes (in-process) sharing one checkpoint directory AND
// one sequence cache: every worker renders the reference report, and
// the workers' summed render counters prove each distinct sequence was
// rendered exactly once per shared store, not once per process.
func TestSeqCacheMultiWorkerRenderOncePerStore(t *testing.T) {
	_, refBytes, _ := referenceRun(t)

	const workers = 3
	ckpt, cacheDir := t.TempDir(), t.TempDir()
	results := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			opts := resumeOptions(2, ckpt)
			opts.WorkerID = fmt.Sprintf("w%d", w)
			opts.SeqCacheDir = cacheDir
			results[w], errs[w] = Run(opts)
		}(w)
	}
	wg.Wait()

	renders, degradations := 0, 0
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if !bytes.Equal(renderReport(t, results[w]), refBytes) {
			t.Fatalf("worker %d report diverges from single-process uncached run", w)
		}
		renders += results[w].SeqStats.Renders
		degradations += results[w].SeqStats.Degradations
	}
	// Two distinct scales (lr_kt0, of_kt0) shared by four cells and
	// three processes: exactly two renders in the whole store.
	if renders != 2 {
		t.Fatalf("workers rendered %d sequences between them, want 2 (once per shared store)", renders)
	}
	if degradations != 0 {
		t.Fatalf("healthy shared cache degraded %d times", degradations)
	}
	noCacheDebris(t, cacheDir)
}

// TestSeqCacheFaultMatrix drives the campaign over the cache's injected
// fault scenarios: every fault completes the campaign with an unchanged
// report — degradation observable in provenance counters, never fatal,
// no leaked temp files.
func TestSeqCacheFaultMatrix(t *testing.T) {
	_, refBytes, _ := referenceRun(t)

	t.Run("corrupt artifact on read is silently re-rendered", func(t *testing.T) {
		dir := t.TempDir()
		warm := resumeOptions(1, "")
		warm.SeqCacheDir = dir
		if _, err := Run(warm); err != nil {
			t.Fatal(err)
		}
		// Single worker: one load op per distinct scenario; corrupt both.
		opts := resumeOptions(1, "")
		opts.SeqCacheDir = dir
		opts.cacheFaults = &seqcache.FaultPlan{Load: map[int]seqcache.FaultKind{
			0: seqcache.FaultCorruptRead, 1: seqcache.FaultCorruptRead,
		}}
		res, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(renderReport(t, res), refBytes) {
			t.Fatal("corrupt-read run diverges from reference")
		}
		st := res.SeqStats
		if st.Renders != 2 || st.Degradations != 0 {
			t.Fatalf("corruption is a miss, not a degradation: %+v", st)
		}
		// The re-renders repaired the store: a clean run disk-hits.
		clean := resumeOptions(1, "")
		clean.SeqCacheDir = dir
		res, err = Run(clean)
		if err != nil {
			t.Fatal(err)
		}
		if res.SeqStats.DiskHits != 2 || res.SeqStats.Renders != 0 {
			t.Fatalf("store not repaired after corrupt read: %+v", res.SeqStats)
		}
		noCacheDebris(t, dir)
	})

	t.Run("ENOSPC on save degrades to inline rendering", func(t *testing.T) {
		dir := t.TempDir()
		plan := &seqcache.FaultPlan{Save: map[int]seqcache.FaultKind{}}
		for i := 0; i < 16; i++ { // every retry attempt of both saves
			plan.Save[i] = seqcache.FaultWriteError
		}
		opts := resumeOptions(1, "")
		opts.SeqCacheDir = dir
		opts.cacheFaults = plan
		opts.sleepFn = func(time.Duration) {} // don't serve out the retry ladder for real
		res, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(renderReport(t, res), refBytes) {
			t.Fatal("full-disk run diverges from reference")
		}
		st := res.SeqStats
		if st.Renders != 2 || st.Degradations != 2 {
			t.Fatalf("full disk should degrade both sequences inline: %+v", st)
		}
		for _, c := range res.Cells {
			if c.SeqSource != string(seqcache.SourceInline) && c.SeqSource != string(seqcache.SourceMemory) {
				t.Fatalf("cell %s/%s seq source = %q, want inline or memory",
					c.Cell.Scenario.Name, c.Cell.Target.Name, c.SeqSource)
			}
		}
		noCacheDebris(t, dir)
	})

	t.Run("dead renderer's lease is taken over", func(t *testing.T) {
		dir := t.TempDir()
		opts := resumeOptions(1, "")
		opts.SeqCacheDir = dir
		opts.LeaseTTL = 500 * time.Millisecond
		// A renderer that died an hour ago still holds the first
		// scenario's sequence lease.
		key := opts.Scenarios[0].Scale.CacheKey()
		past := func() time.Time { return time.Now().Add(-time.Hour) }
		if _, ok, err := sharedfs.NewLeaseManager(dir, "dead", time.Second, past).TryAcquire(key); err != nil || !ok {
			t.Fatalf("staging dead renderer's lease: ok=%v err=%v", ok, err)
		}
		res, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(renderReport(t, res), refBytes) {
			t.Fatal("takeover run diverges from reference")
		}
		st := res.SeqStats
		if st.Renders != 2 || st.Degradations != 0 {
			t.Fatalf("takeover should render normally: %+v", st)
		}
		if _, err := os.Stat(filepath.Join(dir, key+".lease")); !os.IsNotExist(err) {
			t.Fatalf("reclaimed sequence lease not released (stat err %v)", err)
		}
		noCacheDebris(t, dir)
	})

	t.Run("unusable cache directory never fails the campaign", func(t *testing.T) {
		parent := t.TempDir()
		blocked := filepath.Join(parent, "occupied")
		if err := os.WriteFile(blocked, []byte("not a directory"), 0o644); err != nil {
			t.Fatal(err)
		}
		opts := resumeOptions(1, "")
		opts.SeqCacheDir = blocked
		res, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(renderReport(t, res), refBytes) {
			t.Fatal("broken-cache run diverges from reference")
		}
		if res.SeqStats.Degradations != 2 {
			t.Fatalf("broken cache should degrade both sequences: %+v", res.SeqStats)
		}
	})
}
