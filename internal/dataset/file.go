package dataset

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"slamgo/internal/camera"
	"slamgo/internal/imgproc"
	"slamgo/internal/math3"
)

// FileSequence streams frames from a .slam file on demand instead of
// materialising the whole sequence in memory. Frame records have a fixed
// size, so random access is a single seek.
//
// Ownership: FileSequence holds an open *os.File for its whole
// lifetime. The caller of OpenSlam owns the sequence and must Close it
// exactly once — idiomatically `defer fs.Close()` right after the open,
// so every subsequent error path releases the descriptor. Consumers the
// sequence is passed to (slambench.Runner, evaluators, Subsample views)
// treat it as read-only and never close it. Frame is safe for
// concurrent callers (an internal mutex serialises the seek+read), but
// Close must not race with in-flight Frame calls.
type FileSequence struct {
	name   string
	f      *os.File
	mu     sync.Mutex
	intr   camera.Intrinsics
	frames int
	// dataStart is the byte offset of frame 0; frameSize the record size.
	dataStart int64
	frameSize int64
}

// OpenSlam opens a .slam file for lazy frame access. The caller owns the
// returned sequence and must Close it.
func OpenSlam(path string) (*FileSequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fs := &FileSequence{name: path, f: f}
	if err := fs.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return fs, nil
}

func (fs *FileSequence) readHeader() error {
	magic := make([]byte, len(slamMagic))
	if _, err := io.ReadFull(fs.f, magic); err != nil {
		return fmt.Errorf("dataset: reading magic: %w", err)
	}
	if string(magic) != slamMagic {
		return fmt.Errorf("dataset: bad magic %q", magic)
	}
	var w32, h32, n32 uint32
	if err := binary.Read(fs.f, binary.LittleEndian, &w32); err != nil {
		return err
	}
	if err := binary.Read(fs.f, binary.LittleEndian, &h32); err != nil {
		return err
	}
	var fx, fy, cx, cy float64
	for _, p := range []*float64{&fx, &fy, &cx, &cy} {
		if err := binary.Read(fs.f, binary.LittleEndian, p); err != nil {
			return err
		}
	}
	if err := binary.Read(fs.f, binary.LittleEndian, &n32); err != nil {
		return err
	}
	w, h := int(w32), int(h32)
	if w <= 0 || h <= 0 || w*h > 1<<26 {
		return fmt.Errorf("dataset: implausible resolution %dx%d", w, h)
	}
	fs.intr = camera.Intrinsics{Width: w, Height: h, Fx: fx, Fy: fy, Cx: cx, Cy: cy}
	if err := fs.intr.Validate(); err != nil {
		return err
	}
	fs.frames = int(n32)
	pos, err := fs.f.Seek(0, io.SeekCurrent)
	if err != nil {
		return err
	}
	fs.dataStart = pos
	fs.frameSize = 8*8 + int64(w*h)*2

	// Sanity: the file must be large enough for the declared frames.
	st, err := fs.f.Stat()
	if err != nil {
		return err
	}
	if need := fs.dataStart + int64(fs.frames)*fs.frameSize; st.Size() < need {
		return fmt.Errorf("dataset: file truncated: %d bytes, need %d", st.Size(), need)
	}
	return nil
}

// Name implements Sequence.
func (fs *FileSequence) Name() string { return fs.name }

// Intrinsics implements Sequence.
func (fs *FileSequence) Intrinsics() camera.Intrinsics { return fs.intr }

// Len implements Sequence.
func (fs *FileSequence) Len() int { return fs.frames }

// Frame implements Sequence, seeking to and decoding frame i.
func (fs *FileSequence) Frame(i int) (*Frame, error) {
	if i < 0 || i >= fs.frames {
		return nil, fmt.Errorf("dataset: frame %d out of range [0,%d)", i, fs.frames)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.f.Seek(fs.dataStart+int64(i)*fs.frameSize, io.SeekStart); err != nil {
		return nil, err
	}
	var vals [8]float64
	for j := range vals {
		if err := binary.Read(fs.f, binary.LittleEndian, &vals[j]); err != nil {
			return nil, fmt.Errorf("dataset: frame %d header: %w", i, err)
		}
	}
	raw := make([]uint16, fs.intr.Width*fs.intr.Height)
	if err := binary.Read(fs.f, binary.LittleEndian, raw); err != nil {
		return nil, fmt.Errorf("dataset: frame %d depth: %w", i, err)
	}
	depth := imgproc.NewDepthMap(fs.intr.Width, fs.intr.Height)
	imgproc.MmToM(raw, depth)
	q := math3.Quat{W: vals[1], X: vals[2], Y: vals[3], Z: vals[4]}.Normalized()
	return &Frame{
		Index:       i,
		Time:        vals[0],
		Depth:       depth,
		GroundTruth: math3.SE3From(q, math3.V3(vals[5], vals[6], vals[7])),
		HasGT:       true,
	}, nil
}

// Close releases the underlying file.
func (fs *FileSequence) Close() error { return fs.f.Close() }
