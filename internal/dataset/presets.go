package dataset

import (
	"fmt"
	"math"

	"slamgo/internal/camera"
	"slamgo/internal/math3"
	"slamgo/internal/sdf"
	"slamgo/internal/synth"
)

// PresetOptions scale the built-in sequences so tests, examples and the
// full benchmark harness can trade fidelity for wall-clock time.
type PresetOptions struct {
	// Width/Height of the rendered frames (default 320×240).
	Width, Height int
	// Frames in the sequence (default 120).
	Frames int
	// FPS of the virtual sensor (default 30).
	FPS float64
	// Noisy applies the Kinect noise model (default true via NewPreset*).
	Noisy bool
	// Seed for the noise stream.
	Seed int64
	// WithRGB also renders shaded colour frames (for the GUI panes).
	WithRGB bool
}

// DefaultPresetOptions returns the standard evaluation scale: QVGA at
// 30 FPS with sensor noise — small enough for pure-Go experiments, large
// enough to expose the paper's accuracy/performance trade-offs.
func DefaultPresetOptions() PresetOptions {
	return PresetOptions{Width: 320, Height: 240, Frames: 120, FPS: 30, Noisy: true, Seed: 42}
}

// TestPresetOptions returns a fast low-resolution profile for unit tests.
func TestPresetOptions() PresetOptions {
	return PresetOptions{Width: 80, Height: 60, Frames: 12, FPS: 30, Noisy: false, Seed: 42}
}

func (o PresetOptions) fill() PresetOptions {
	if o.Width == 0 {
		o.Width = 320
	}
	if o.Height == 0 {
		o.Height = 240
	}
	if o.Frames == 0 {
		o.Frames = 120
	}
	if o.FPS == 0 {
		o.FPS = 30
	}
	return o
}

func (o PresetOptions) noise() synth.NoiseModel {
	if o.Noisy {
		return synth.KinectNoise()
	}
	return synth.NoNoise()
}

// LivingRoomKT builds the four built-in living-room sequences, analogues
// of ICL-NUIM's lr/kt0..kt3 trajectories:
//
//	kt0: gentle quarter orbit around the room centre,
//	kt1: wider half orbit sweeping the sofa and table,
//	kt2: waypoint path dollying towards the shelf,
//	kt3: slow orbit with height change (the hardest for drift).
func LivingRoomKT(kt int, opts PresetOptions) (*MemorySequence, error) {
	opts = opts.fill()
	in := camera.Kinect640().ScaledTo(opts.Width, opts.Height)
	var traj []synth.TimedPose
	switch kt {
	case 0:
		traj = synth.Orbit(math3.V3(0, 0.7, -0.6), 1.6, 1.4, math.Pi/3, math.Pi/2, opts.Frames, opts.FPS)
	case 1:
		traj = synth.Orbit(math3.V3(-0.4, 0.6, -0.2), 1.9, 1.5, math.Pi/6, math.Pi, opts.Frames, opts.FPS)
	case 2:
		eyes := []math3.Vec3{
			{X: -0.8, Y: 1.4, Z: 1.6},
			{X: 0.2, Y: 1.3, Z: 0.8},
			{X: 0.9, Y: 1.2, Z: -0.2},
		}
		targets := []math3.Vec3{
			{X: 0.5, Y: 0.8, Z: -1.6},
			{X: 1.0, Y: 0.9, Z: -2.0},
			{X: 1.6, Y: 0.9, Z: -2.3},
		}
		traj = synth.Waypoints(eyes, targets, opts.Frames, opts.FPS)
	case 3:
		n := opts.Frames
		traj = synth.Orbit(math3.V3(0, 0.8, -0.4), 1.7, 1.2, -math.Pi/4, 2*math.Pi/3, n, opts.FPS)
		// Add a slow vertical bob to stress rotation estimation.
		for i := range traj {
			u := float64(i) / float64(max(n-1, 1))
			eye := traj[i].Pose.T
			eye.Y += 0.25 * math.Sin(2*math.Pi*u)
			traj[i].Pose = synth.LookAt(eye, math3.V3(0, 0.8, -0.4))
		}
	default:
		return nil, fmt.Errorf("dataset: unknown kt sequence %d (want 0-3)", kt)
	}
	return Generate(SynthConfig{
		Name:       fmt.Sprintf("lr_kt%d_syn", kt),
		Scene:      sdf.LivingRoom(),
		Trajectory: traj,
		Intrinsics: in,
		Noise:      opts.noise(),
		Seed:       opts.Seed,
		WithRGB:    opts.WithRGB,
	})
}

// OfficeKT builds the office-room sequences (the ICL-NUIM "office"
// analogue): kt0 orbits the desks, kt1 dollies along the room towards
// the bookshelf.
func OfficeKT(kt int, opts PresetOptions) (*MemorySequence, error) {
	opts = opts.fill()
	in := camera.Kinect640().ScaledTo(opts.Width, opts.Height)
	var traj []synth.TimedPose
	switch kt {
	case 0:
		traj = synth.Orbit(math3.V3(0, 0.8, -1.4), 1.8, 1.5, math.Pi/4, 2*math.Pi/3, opts.Frames, opts.FPS)
	case 1:
		eyes := []math3.Vec3{
			{X: 1.6, Y: 1.4, Z: 1.6},
			{X: 0.2, Y: 1.3, Z: 0.9},
			{X: -1.0, Y: 1.2, Z: 0.6},
		}
		targets := []math3.Vec3{
			{X: -0.5, Y: 0.9, Z: -2.0},
			{X: -1.5, Y: 1.0, Z: -0.5},
			{X: -2.3, Y: 1.0, Z: 0.8},
		}
		traj = synth.Waypoints(eyes, targets, opts.Frames, opts.FPS)
	default:
		return nil, fmt.Errorf("dataset: unknown office sequence %d (want 0-1)", kt)
	}
	return Generate(SynthConfig{
		Name:       fmt.Sprintf("of_kt%d_syn", kt),
		Scene:      sdf.Office(),
		Trajectory: traj,
		Intrinsics: in,
		Noise:      opts.noise(),
		Seed:       opts.Seed,
		WithRGB:    opts.WithRGB,
	})
}
