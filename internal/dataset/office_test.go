package dataset

import (
	"testing"

	"slamgo/internal/math3"
	"slamgo/internal/sdf"
)

func TestOfficePresets(t *testing.T) {
	opts := TestPresetOptions()
	opts.Frames = 20
	for kt := 0; kt <= 1; kt++ {
		seq, err := OfficeKT(kt, opts)
		if err != nil {
			t.Fatalf("office kt%d: %v", kt, err)
		}
		f, err := seq.Frame(0)
		if err != nil {
			t.Fatal(err)
		}
		if f.Depth.ValidFraction() < 0.5 {
			t.Fatalf("office kt%d barely visible: %v", kt, f.Depth.ValidFraction())
		}
		poses, _, err := GroundTruth(seq)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(poses); i++ {
			rel := poses[i-1].Inverse().Mul(poses[i])
			if rel.TranslationNorm() > 0.4 {
				t.Fatalf("office kt%d step %d too large: %v", kt, i, rel.TranslationNorm())
			}
		}
	}
	if _, err := OfficeKT(5, opts); err == nil {
		t.Fatal("office kt5 accepted")
	}
}

func TestOfficeSceneGeometry(t *testing.T) {
	scene := sdf.Office()
	// Desk top is solid, open space above it is free.
	if d := scene.Distance(math3.V3(-1.1, 0.73, -2.0)); d >= 0 {
		t.Fatalf("desk top should be solid: %v", d)
	}
	if d := scene.Distance(math3.V3(0, 1.5, 0.5)); d <= 0 {
		t.Fatalf("room centre should be free: %v", d)
	}
	// Monitor slab is thin but solid.
	if d := scene.Distance(math3.V3(1.1, 1.05, -2.25)); d >= 0 {
		t.Fatalf("monitor should be solid: %v", d)
	}
}
