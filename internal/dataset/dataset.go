// Package dataset defines the RGB-D sequence abstraction SLAMBench-style
// benchmarking consumes, in-memory synthetic sequences rendered from SDF
// scenes (the ICL-NUIM analogue), and serialisation: a compact binary
// ".slam" frame format plus TUM-format trajectory I/O.
package dataset

import (
	"fmt"
	"math/rand"

	"slamgo/internal/camera"
	"slamgo/internal/imgproc"
	"slamgo/internal/math3"
	"slamgo/internal/sdf"
	"slamgo/internal/synth"
)

// Frame is one RGB-D sample with its timestamp and (when known) ground
// truth pose.
type Frame struct {
	Index       int
	Time        float64
	Depth       *imgproc.DepthMap
	RGB         *imgproc.RGB // may be nil; the SLAM pipeline only needs depth
	GroundTruth math3.SE3
	HasGT       bool
}

// Sequence is a finite RGB-D stream with known intrinsics.
//
// Ownership: implementations backed by OS resources (FileSequence is
// the only one today) also implement io.Closer, and whoever opened the
// sequence owns that Close — callers that only *consume* a Sequence
// (runners, evaluators, stride views like slambench.Subsample) must
// never close it. Openers should defer Close immediately after a
// successful open so every error path releases the file. In-memory
// implementations (MemorySequence, synthetic renders) hold no resources
// and need no cleanup.
type Sequence interface {
	// Name identifies the sequence (e.g. "lr_kt0_syn").
	Name() string
	// Intrinsics of every frame.
	Intrinsics() camera.Intrinsics
	// Len is the number of frames.
	Len() int
	// Frame returns frame i. Implementations may render lazily.
	Frame(i int) (*Frame, error)
}

// GroundTruth extracts the ground-truth trajectory of a sequence, when
// every frame carries one.
func GroundTruth(s Sequence) ([]math3.SE3, []float64, error) {
	poses := make([]math3.SE3, s.Len())
	times := make([]float64, s.Len())
	for i := 0; i < s.Len(); i++ {
		f, err := s.Frame(i)
		if err != nil {
			return nil, nil, err
		}
		if !f.HasGT {
			return nil, nil, fmt.Errorf("dataset: frame %d has no ground truth", i)
		}
		poses[i] = f.GroundTruth
		times[i] = f.Time
	}
	return poses, times, nil
}

// MemorySequence holds fully materialised frames.
type MemorySequence struct {
	SeqName string
	Intr    camera.Intrinsics
	Frames  []*Frame
}

// Name implements Sequence.
func (m *MemorySequence) Name() string { return m.SeqName }

// Intrinsics implements Sequence.
func (m *MemorySequence) Intrinsics() camera.Intrinsics { return m.Intr }

// Len implements Sequence.
func (m *MemorySequence) Len() int { return len(m.Frames) }

// Frame implements Sequence.
func (m *MemorySequence) Frame(i int) (*Frame, error) {
	if i < 0 || i >= len(m.Frames) {
		return nil, fmt.Errorf("dataset: frame %d out of range [0,%d)", i, len(m.Frames))
	}
	return m.Frames[i], nil
}

// SynthConfig parameterises synthetic sequence generation.
type SynthConfig struct {
	// Name labels the sequence.
	Name string
	// Scene is the SDF world to render (default: sdf.LivingRoom).
	Scene sdf.Field
	// Trajectory supplies the ground-truth camera path.
	Trajectory []synth.TimedPose
	// Intrinsics of the virtual sensor (default Kinect640 scaled).
	Intrinsics camera.Intrinsics
	// Noise perturbs rendered depth; use synth.NoNoise() for clean data.
	Noise synth.NoiseModel
	// Seed drives the noise; the same seed reproduces the same frames.
	Seed int64
	// WithRGB also renders shaded colour frames (slower; only needed for
	// the GUI panes).
	WithRGB bool
}

// Generate renders a synthetic sequence into memory.
func Generate(cfg SynthConfig) (*MemorySequence, error) {
	if cfg.Scene == nil {
		cfg.Scene = sdf.LivingRoom()
	}
	if len(cfg.Trajectory) == 0 {
		return nil, fmt.Errorf("dataset: empty trajectory")
	}
	if cfg.Intrinsics.Width == 0 {
		cfg.Intrinsics = camera.Kinect640()
	}
	if err := cfg.Intrinsics.Validate(); err != nil {
		return nil, err
	}
	r := synth.NewRenderer(cfg.Scene)
	rng := rand.New(rand.NewSource(cfg.Seed))
	seq := &MemorySequence{SeqName: cfg.Name, Intr: cfg.Intrinsics}
	for i, tp := range cfg.Trajectory {
		depth := r.RenderDepth(tp.Pose, cfg.Intrinsics)
		cfg.Noise.Apply(depth, rng)
		f := &Frame{
			Index:       i,
			Time:        tp.Time,
			Depth:       depth,
			GroundTruth: tp.Pose,
			HasGT:       true,
		}
		if cfg.WithRGB {
			f.RGB = r.RenderRGB(tp.Pose, cfg.Intrinsics)
		}
		seq.Frames = append(seq.Frames, f)
	}
	return seq, nil
}
