package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"slamgo/internal/camera"
	"slamgo/internal/math3"
	"slamgo/internal/sdf"
	"slamgo/internal/synth"
	"slamgo/internal/trajectory"
)

func smallSeq(t *testing.T) *MemorySequence {
	t.Helper()
	seq, err := LivingRoomKT(0, TestPresetOptions())
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestGenerateProducesFrames(t *testing.T) {
	seq := smallSeq(t)
	if seq.Len() != 12 {
		t.Fatalf("frames = %d", seq.Len())
	}
	if seq.Name() != "lr_kt0_syn" {
		t.Fatalf("name = %q", seq.Name())
	}
	for i := 0; i < seq.Len(); i++ {
		f, err := seq.Frame(i)
		if err != nil {
			t.Fatal(err)
		}
		if f.Index != i || !f.HasGT {
			t.Fatalf("frame %d metadata wrong: %+v", i, f)
		}
		if f.Depth.ValidFraction() < 0.8 {
			t.Fatalf("frame %d mostly invalid: %v", i, f.Depth.ValidFraction())
		}
	}
	if _, err := seq.Frame(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := seq.Frame(99); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(SynthConfig{}); err == nil {
		t.Fatal("empty trajectory accepted")
	}
}

func TestGroundTruthExtraction(t *testing.T) {
	seq := smallSeq(t)
	poses, times, err := GroundTruth(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(poses) != seq.Len() || len(times) != seq.Len() {
		t.Fatal("length mismatch")
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatal("times not increasing")
		}
	}
	// Missing ground truth is an error.
	seq.Frames[3].HasGT = false
	if _, _, err := GroundTruth(seq); err == nil {
		t.Fatal("missing GT accepted")
	}
}

func TestAllPresetsGenerate(t *testing.T) {
	// The presets cover a fixed arc, so per-step motion scales with
	// 1/frames; use enough frames for a trackable step size.
	opts := TestPresetOptions()
	opts.Frames = 36
	for kt := 0; kt <= 3; kt++ {
		seq, err := LivingRoomKT(kt, opts)
		if err != nil {
			t.Fatalf("kt%d: %v", kt, err)
		}
		f, err := seq.Frame(0)
		if err != nil {
			t.Fatalf("kt%d frame: %v", kt, err)
		}
		if f.Depth.ValidFraction() < 0.5 {
			t.Fatalf("kt%d: scene barely visible (%v)", kt, f.Depth.ValidFraction())
		}
		// Inter-frame motion must be trackable.
		poses, _, _ := GroundTruth(seq)
		for i := 1; i < len(poses); i++ {
			rel := poses[i-1].Inverse().Mul(poses[i])
			if rel.TranslationNorm() > 0.35 || rel.RotationAngle() > 0.35 {
				t.Fatalf("kt%d: step %d too large (%v m, %v rad)",
					kt, i, rel.TranslationNorm(), rel.RotationAngle())
			}
		}
	}
	if _, err := LivingRoomKT(7, TestPresetOptions()); err == nil {
		t.Fatal("kt7 accepted")
	}
}

func TestPresetNoiseDeterminism(t *testing.T) {
	opts := TestPresetOptions()
	opts.Noisy = true
	opts.Frames = 3
	a, err := LivingRoomKT(0, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LivingRoomKT(0, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Frames {
		fa, fb := a.Frames[i], b.Frames[i]
		for j := range fa.Depth.Pix {
			if fa.Depth.Pix[j] != fb.Depth.Pix[j] {
				t.Fatal("same seed produced different frames")
			}
		}
	}
}

func TestSlamRoundtrip(t *testing.T) {
	seq := smallSeq(t)
	var buf bytes.Buffer
	if err := WriteSlam(&buf, seq); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSlam(&buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != seq.Len() {
		t.Fatalf("frame count %d vs %d", got.Len(), seq.Len())
	}
	if got.Intrinsics() != seq.Intrinsics() {
		t.Fatalf("intrinsics %v vs %v", got.Intrinsics(), seq.Intrinsics())
	}
	for i := 0; i < seq.Len(); i++ {
		fa, _ := seq.Frame(i)
		fb, _ := got.Frame(i)
		if math.Abs(fa.Time-fb.Time) > 1e-12 {
			t.Fatalf("frame %d time %v vs %v", i, fa.Time, fb.Time)
		}
		// Depth roundtrips through mm quantisation: ≤ 0.5 mm error.
		for j := range fa.Depth.Pix {
			d := float64(fa.Depth.Pix[j] - fb.Depth.Pix[j])
			if math.Abs(d) > 6e-4 {
				t.Fatalf("frame %d pix %d depth %v vs %v", i, j, fa.Depth.Pix[j], fb.Depth.Pix[j])
			}
		}
		if !fb.GroundTruth.ApproxEq(fa.GroundTruth, 1e-9) {
			t.Fatalf("frame %d pose mismatch", i)
		}
	}
}

func TestReadSlamRejectsGarbage(t *testing.T) {
	if _, err := ReadSlam(strings.NewReader("not a slam file at all"), "x"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadSlam(strings.NewReader(""), "x"); err == nil {
		t.Fatal("empty stream accepted")
	}
	// Truncated stream: valid header then nothing.
	seq := smallSeq(t)
	var buf bytes.Buffer
	if err := WriteSlam(&buf, seq); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadSlam(bytes.NewReader(trunc), "x"); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestTUMRoundtrip(t *testing.T) {
	tr := &trajectory.Trajectory{}
	traj := synth.Orbit(math3.V3(0, 1, 0), 2, 1.5, 0, math.Pi, 10, 30)
	for _, tp := range traj {
		tr.Append(tp.Time, tp.Pose)
	}
	var buf bytes.Buffer
	if err := WriteTUM(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTUM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("length %d vs %d", got.Len(), tr.Len())
	}
	for i := range tr.Poses {
		a, b := tr.Poses[i], got.Poses[i]
		if math.Abs(a.Time-b.Time) > 1e-6 {
			t.Fatal("time mismatch")
		}
		if !b.T.T.ApproxEq(a.T.T, 1e-5) {
			t.Fatal("translation mismatch")
		}
		if b.T.Quat().AngleTo(a.T.Quat()) > 1e-4 {
			t.Fatal("rotation mismatch")
		}
	}
}

func TestReadTUMSkipsCommentsAndRejectsBadLines(t *testing.T) {
	good := "# comment\n\n0.0 1 2 3 0 0 0 1\n"
	tr, err := ReadTUM(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || !tr.Poses[0].T.T.ApproxEq(math3.V3(1, 2, 3), 1e-12) {
		t.Fatalf("parsed %+v", tr)
	}
	if _, err := ReadTUM(strings.NewReader("1 2 3\n")); err == nil {
		t.Fatal("short line accepted")
	}
	if _, err := ReadTUM(strings.NewReader("a b c d e f g h\n")); err == nil {
		t.Fatal("non-numeric accepted")
	}
}

func TestGenerateCleanSequenceTracksScene(t *testing.T) {
	// A clean sequence around SimpleRoom has frame depth equal to the
	// re-rendered depth (determinism check at the dataset level).
	in := TestPresetOptions()
	traj := synth.Orbit(math3.V3(0, 0.5, -0.5), 1.2, 1.2, 0.5, 0.6, 3, 30)
	seq, err := Generate(SynthConfig{
		Name:       "simple",
		Scene:      sdf.SimpleRoom(),
		Trajectory: traj,
		Intrinsics: smallIntrinsics(in.Width, in.Height),
		Noise:      synth.NoNoise(),
	})
	if err != nil {
		t.Fatal(err)
	}
	r := synth.NewRenderer(sdf.SimpleRoom())
	for i, f := range seq.Frames {
		want := r.RenderDepth(traj[i].Pose, seq.Intr)
		for j := range want.Pix {
			if want.Pix[j] != f.Depth.Pix[j] {
				t.Fatalf("frame %d pixel %d differs", i, j)
			}
		}
	}
}

func smallIntrinsics(w, h int) camera.Intrinsics {
	return camera.Kinect640().ScaledTo(w, h)
}
