package dataset

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func writeTempSlam(t *testing.T) (string, *MemorySequence) {
	t.Helper()
	seq := smallSeq(t)
	path := filepath.Join(t.TempDir(), "seq.slam")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSlam(f, seq); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, seq
}

func TestFileSequenceMatchesMemory(t *testing.T) {
	path, seq := writeTempSlam(t)
	fs, err := OpenSlam(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	if fs.Len() != seq.Len() {
		t.Fatalf("len %d vs %d", fs.Len(), seq.Len())
	}
	if fs.Intrinsics() != seq.Intrinsics() {
		t.Fatal("intrinsics mismatch")
	}
	// Random access, including out of order.
	for _, i := range []int{5, 0, 11, 3, 5} {
		fa, err := fs.Frame(i)
		if err != nil {
			t.Fatal(err)
		}
		fb, _ := seq.Frame(i)
		if math.Abs(fa.Time-fb.Time) > 1e-12 {
			t.Fatalf("frame %d time mismatch", i)
		}
		if !fa.GroundTruth.ApproxEq(fb.GroundTruth, 1e-9) {
			t.Fatalf("frame %d pose mismatch", i)
		}
		for j := range fa.Depth.Pix {
			if math.Abs(float64(fa.Depth.Pix[j]-fb.Depth.Pix[j])) > 6e-4 {
				t.Fatalf("frame %d pixel %d mismatch", i, j)
			}
		}
	}
	if _, err := fs.Frame(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := fs.Frame(99); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestFileSequenceConcurrentAccess(t *testing.T) {
	path, _ := writeTempSlam(t)
	fs, err := OpenSlam(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 20; i++ {
				if _, err := fs.Frame((g + i) % fs.Len()); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestOpenSlamRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "nope.slam")
	if _, err := OpenSlam(missing); err == nil {
		t.Fatal("missing file accepted")
	}
	garbage := filepath.Join(dir, "garbage.slam")
	if err := os.WriteFile(garbage, []byte("not a slam file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSlam(garbage); err == nil {
		t.Fatal("garbage accepted")
	}

	// Truncated: valid header, missing frames.
	path, _ := writeTempSlam(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.slam")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSlam(trunc); err == nil {
		t.Fatal("truncated file accepted")
	}
}
