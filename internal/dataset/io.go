package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"slamgo/internal/camera"
	"slamgo/internal/imgproc"
	"slamgo/internal/math3"
	"slamgo/internal/trajectory"
)

// The .slam binary format stores a full sequence (intrinsics, per-frame
// depth as uint16 millimetres, ground-truth poses) in one stream:
//
//	magic "SLAMGO01" | u32 width | u32 height | f64 fx fy cx cy | u32 n
//	then per frame: f64 time | f64 qw qx qy qz tx ty tz | u16 depth[w*h]
//
// Depth is quantised to millimetres exactly as a real Kinect delivers it,
// so reading a .slam file exercises the same mm→m conversion path as live
// sensor input.

const slamMagic = "SLAMGO01"

// WriteSlam serialises a sequence.
func WriteSlam(w io.Writer, s Sequence) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(slamMagic); err != nil {
		return err
	}
	in := s.Intrinsics()
	for _, v := range []uint32{uint32(in.Width), uint32(in.Height)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, v := range []float64{in.Fx, in.Fy, in.Cx, in.Cy} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(s.Len())); err != nil {
		return err
	}
	buf := make([]uint16, in.Width*in.Height)
	for i := 0; i < s.Len(); i++ {
		f, err := s.Frame(i)
		if err != nil {
			return err
		}
		q := f.GroundTruth.Quat()
		t := f.GroundTruth.T
		vals := []float64{f.Time, q.W, q.X, q.Y, q.Z, t.X, t.Y, t.Z}
		for _, v := range vals {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		for j, d := range f.Depth.Pix {
			mm := d * 1000
			switch {
			case mm <= 0:
				buf[j] = 0
			case mm > 65535:
				buf[j] = 65535
			default:
				buf[j] = uint16(mm + 0.5)
			}
		}
		if err := binary.Write(bw, binary.LittleEndian, buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSlam parses a .slam stream into a memory sequence named name.
func ReadSlam(r io.Reader, name string) (*MemorySequence, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(slamMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if string(magic) != slamMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic)
	}
	var w32, h32, n32 uint32
	if err := binary.Read(br, binary.LittleEndian, &w32); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &h32); err != nil {
		return nil, err
	}
	var fx, fy, cx, cy float64
	for _, p := range []*float64{&fx, &fy, &cx, &cy} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if err := binary.Read(br, binary.LittleEndian, &n32); err != nil {
		return nil, err
	}
	w, h, n := int(w32), int(h32), int(n32)
	if w <= 0 || h <= 0 || w*h > 1<<26 {
		return nil, fmt.Errorf("dataset: implausible resolution %dx%d", w, h)
	}
	in := camera.Intrinsics{Width: w, Height: h, Fx: fx, Fy: fy, Cx: cx, Cy: cy}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	seq := &MemorySequence{SeqName: name, Intr: in}
	raw := make([]uint16, w*h)
	for i := 0; i < n; i++ {
		var vals [8]float64
		for j := range vals {
			if err := binary.Read(br, binary.LittleEndian, &vals[j]); err != nil {
				return nil, fmt.Errorf("dataset: frame %d header: %w", i, err)
			}
		}
		if err := binary.Read(br, binary.LittleEndian, raw); err != nil {
			return nil, fmt.Errorf("dataset: frame %d depth: %w", i, err)
		}
		depth := imgproc.NewDepthMap(w, h)
		imgproc.MmToM(raw, depth)
		q := math3.Quat{W: vals[1], X: vals[2], Y: vals[3], Z: vals[4]}.Normalized()
		seq.Frames = append(seq.Frames, &Frame{
			Index:       i,
			Time:        vals[0],
			Depth:       depth,
			GroundTruth: math3.SE3From(q, math3.V3(vals[5], vals[6], vals[7])),
			HasGT:       true,
		})
	}
	return seq, nil
}

// WriteTUM writes a trajectory in the TUM RGB-D benchmark text format:
// "timestamp tx ty tz qx qy qz qw" per line.
func WriteTUM(w io.Writer, tr *trajectory.Trajectory) error {
	bw := bufio.NewWriter(w)
	for _, p := range tr.Poses {
		q := p.T.Quat()
		t := p.T.T
		if _, err := fmt.Fprintf(bw, "%.6f %.6f %.6f %.6f %.6f %.6f %.6f %.6f\n",
			p.Time, t.X, t.Y, t.Z, q.X, q.Y, q.Z, q.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTUM parses a TUM-format trajectory. Lines starting with '#' and
// blank lines are skipped.
func ReadTUM(r io.Reader) (*trajectory.Trajectory, error) {
	tr := &trajectory.Trajectory{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 8 {
			return nil, fmt.Errorf("dataset: TUM line %d has %d fields, want 8", lineNo, len(fields))
		}
		var v [8]float64
		for i, f := range fields {
			x, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: TUM line %d field %d: %w", lineNo, i, err)
			}
			v[i] = x
		}
		q := math3.Quat{W: v[7], X: v[4], Y: v[5], Z: v[6]}.Normalized()
		tr.Append(v[0], math3.SE3From(q, math3.V3(v[1], v[2], v[3])))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}
