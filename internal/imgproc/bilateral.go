package imgproc

import (
	"math"
	"sync"

	"slamgo/internal/parallel"
)

// spatialKey identifies one precomputed spatial Gaussian kernel.
type spatialKey struct {
	radius int
	sigma  float64
}

// spatialKernels caches the (2r+1)² spatial Gaussian per (radius, sigma).
// The DSE evaluates thousands of configurations that share a handful of
// kernel shapes, so the exp() table is computed once per shape instead of
// once per frame.
var spatialKernels sync.Map

func spatialKernel(radius int, sigma float64) []float64 {
	key := spatialKey{radius, sigma}
	if k, ok := spatialKernels.Load(key); ok {
		return k.([]float64)
	}
	size := 2*radius + 1
	k := make([]float64, size*size)
	inv2ss := 1 / (2 * sigma * sigma)
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			d2 := float64(dx*dx + dy*dy)
			k[(dy+radius)*size+(dx+radius)] = math.Exp(-d2 * inv2ss)
		}
	}
	actual, _ := spatialKernels.LoadOrStore(key, k)
	return actual.([]float64)
}

// BilateralFilter applies the edge-preserving bilateral filter KinectFusion
// uses to denoise raw depth before tracking. spatialSigma is in pixels,
// rangeSigma in metres, radius in pixels (the kernel is (2r+1)²).
//
// Invalid pixels neither contribute nor receive values. The returned Cost
// reflects the per-pixel kernel evaluation work, which scales with the
// kernel area — exactly the knob the paper's DSE explores indirectly via
// the compute-size ratio.
func BilateralFilter(src *DepthMap, radius int, spatialSigma, rangeSigma float64) (*DepthMap, Cost) {
	dst := NewDepthMap(src.Width, src.Height)
	return dst, BilateralFilterInto(dst, src, radius, spatialSigma, rangeSigma)
}

// BilateralFilterInto is the allocation-free variant: it writes the
// filtered depth into dst (same dimensions as src, every pixel is
// overwritten), evaluating rows in parallel. Reductions are merged in a
// fixed chunk order, so the output and cost are identical for any
// worker count.
func BilateralFilterInto(dst, src *DepthMap, radius int, spatialSigma, rangeSigma float64) Cost {
	if radius < 0 {
		radius = 0
	}
	if radius == 0 {
		copy(dst.Pix, src.Pix)
		return Cost{Ops: int64(len(src.Pix)), Bytes: int64(len(src.Pix) * 8)}
	}

	size := 2*radius + 1
	spatial := spatialKernel(radius, spatialSigma)
	inv2rs := 1 / (2 * rangeSigma * rangeSigma)

	ops := parallel.Reduce(src.Height, 0, func(ylo, yhi int) int64 {
		var ops int64
		for y := ylo; y < yhi; y++ {
			for x := 0; x < src.Width; x++ {
				center := src.At(x, y)
				if center <= 0 {
					dst.Set(x, y, 0)
					continue
				}
				var sum, wsum float64
				for dy := -radius; dy <= radius; dy++ {
					yy := y + dy
					if yy < 0 || yy >= src.Height {
						continue
					}
					for dx := -radius; dx <= radius; dx++ {
						xx := x + dx
						if xx < 0 || xx >= src.Width {
							continue
						}
						v := src.At(xx, yy)
						if v <= 0 {
							continue
						}
						diff := float64(v - center)
						w := spatial[(dy+radius)*size+(dx+radius)] * math.Exp(-diff*diff*inv2rs)
						sum += w * float64(v)
						wsum += w
						ops += 6
					}
				}
				if wsum > 0 {
					dst.Set(x, y, float32(sum/wsum))
				} else {
					dst.Set(x, y, 0)
				}
			}
		}
		return ops
	}, func(acc *int64, p int64) { *acc += p })
	return Cost{Ops: ops, Bytes: int64(src.Width * src.Height * 4 * (size*size + 1))}
}

// Pyramid holds the multi-resolution depth, vertex and normal maps the ICP
// tracker consumes. Level 0 is the finest.
type Pyramid struct {
	Depth    []*DepthMap
	Vertices []*VertexMap
	Normals  []*NormalMap
}

// Levels returns the number of pyramid levels.
func (p *Pyramid) Levels() int { return len(p.Depth) }

// BuildDepthPyramid constructs an n-level depth pyramid via validity-aware
// half-sampling with the given discontinuity band (metres).
func BuildDepthPyramid(base *DepthMap, levels int, band float32) ([]*DepthMap, Cost) {
	return BuildDepthPyramidPooled(nil, base, levels, band)
}

// BuildDepthPyramidPooled is BuildDepthPyramid drawing the coarser levels
// from pool (nil pool allocates fresh maps). out[0] aliases base.
func BuildDepthPyramidPooled(pool *BufferPool, base *DepthMap, levels int, band float32) ([]*DepthMap, Cost) {
	if levels < 1 {
		levels = 1
	}
	out := make([]*DepthMap, levels)
	out[0] = base
	var cost Cost
	for l := 1; l < levels; l++ {
		src := out[l-1]
		var d *DepthMap
		if pool != nil {
			d = pool.Depth(src.Width/2, src.Height/2)
		} else {
			d = NewDepthMap(src.Width/2, src.Height/2)
		}
		cost.Add(HalfSampleDepthInto(d, src, band))
		out[l] = d
	}
	return out, cost
}
