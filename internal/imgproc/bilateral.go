package imgproc

import "math"

// BilateralFilter applies the edge-preserving bilateral filter KinectFusion
// uses to denoise raw depth before tracking. spatialSigma is in pixels,
// rangeSigma in metres, radius in pixels (the kernel is (2r+1)²).
//
// Invalid pixels neither contribute nor receive values. The returned Cost
// reflects the per-pixel kernel evaluation work, which scales with the
// kernel area — exactly the knob the paper's DSE explores indirectly via
// the compute-size ratio.
func BilateralFilter(src *DepthMap, radius int, spatialSigma, rangeSigma float64) (*DepthMap, Cost) {
	if radius < 0 {
		radius = 0
	}
	dst := NewDepthMap(src.Width, src.Height)
	if radius == 0 {
		copy(dst.Pix, src.Pix)
		return dst, Cost{Ops: int64(len(src.Pix)), Bytes: int64(len(src.Pix) * 8)}
	}

	// Precompute the spatial Gaussian.
	size := 2*radius + 1
	spatial := make([]float64, size*size)
	inv2ss := 1 / (2 * spatialSigma * spatialSigma)
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			d2 := float64(dx*dx + dy*dy)
			spatial[(dy+radius)*size+(dx+radius)] = math.Exp(-d2 * inv2ss)
		}
	}
	inv2rs := 1 / (2 * rangeSigma * rangeSigma)

	var ops int64
	for y := 0; y < src.Height; y++ {
		for x := 0; x < src.Width; x++ {
			center := src.At(x, y)
			if center <= 0 {
				continue
			}
			var sum, wsum float64
			for dy := -radius; dy <= radius; dy++ {
				yy := y + dy
				if yy < 0 || yy >= src.Height {
					continue
				}
				for dx := -radius; dx <= radius; dx++ {
					xx := x + dx
					if xx < 0 || xx >= src.Width {
						continue
					}
					v := src.At(xx, yy)
					if v <= 0 {
						continue
					}
					diff := float64(v - center)
					w := spatial[(dy+radius)*size+(dx+radius)] * math.Exp(-diff*diff*inv2rs)
					sum += w * float64(v)
					wsum += w
					ops += 6
				}
			}
			if wsum > 0 {
				dst.Set(x, y, float32(sum/wsum))
			}
		}
	}
	return dst, Cost{Ops: ops, Bytes: int64(src.Width * src.Height * 4 * (size*size + 1))}
}

// Pyramid holds the multi-resolution depth, vertex and normal maps the ICP
// tracker consumes. Level 0 is the finest.
type Pyramid struct {
	Depth    []*DepthMap
	Vertices []*VertexMap
	Normals  []*NormalMap
}

// Levels returns the number of pyramid levels.
func (p *Pyramid) Levels() int { return len(p.Depth) }

// BuildDepthPyramid constructs an n-level depth pyramid via validity-aware
// half-sampling with the given discontinuity band (metres).
func BuildDepthPyramid(base *DepthMap, levels int, band float32) ([]*DepthMap, Cost) {
	if levels < 1 {
		levels = 1
	}
	out := make([]*DepthMap, levels)
	out[0] = base
	var cost Cost
	for l := 1; l < levels; l++ {
		d, c := HalfSampleDepth(out[l-1], band)
		out[l] = d
		cost.Add(c)
	}
	return out, cost
}
