package imgproc

import "sync"

// dim keys pooled buffers by their pixel dimensions.
type dim struct{ w, h int }

// BufferPool recycles the dense per-frame maps of the front-end —
// depth maps, vertex maps and normal maps — so the pipeline's steady
// state allocates nothing per frame. It is backed by one sync.Pool per
// size class, so buffers survive across frames but are still released
// under memory pressure.
//
// Vertex and normal maps come back all-invalid (mask cleared) — the
// precondition RaycastInto needs. Depth maps come back with stale
// pixels: every depth consumer is an Into-kernel that overwrites its
// whole destination, so clearing them would be a pure memset tax on the
// per-frame hot path. Returning a buffer with Put* while anything still
// reads it is a use-after-free in spirit; the pipeline returns buffers
// only once a frame is fully processed. The zero value is ready to use,
// and all methods are safe for concurrent callers.
type BufferPool struct {
	mu     sync.Mutex
	depth  map[dim]*sync.Pool
	vertex map[dim]*sync.Pool
}

func (p *BufferPool) class(m *map[dim]*sync.Pool, w, h int, fresh func() any) *sync.Pool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if *m == nil {
		*m = map[dim]*sync.Pool{}
	}
	k := dim{w, h}
	sp := (*m)[k]
	if sp == nil {
		sp = &sync.Pool{New: fresh}
		(*m)[k] = sp
	}
	return sp
}

// Depth returns a w×h depth map that may hold stale pixels; pass it
// only to kernels that overwrite every destination pixel (all the
// *Into kernels do).
func (p *BufferPool) Depth(w, h int) *DepthMap {
	sp := p.class(&p.depth, w, h, func() any { return NewDepthMap(w, h) })
	return sp.Get().(*DepthMap)
}

// PutDepth recycles a depth map obtained from Depth.
func (p *BufferPool) PutDepth(d *DepthMap) {
	if d == nil {
		return
	}
	sp := p.class(&p.depth, d.Width, d.Height, func() any { return NewDepthMap(d.Width, d.Height) })
	sp.Put(d)
}

// Vertex returns an all-invalid w×h vertex map. Stale point data may
// remain behind cleared mask bits; every read path is mask-gated, so it
// is unobservable.
func (p *BufferPool) Vertex(w, h int) *VertexMap {
	sp := p.class(&p.vertex, w, h, func() any { return NewVertexMap(w, h) })
	m := sp.Get().(*VertexMap)
	clear(m.Mask)
	return m
}

// PutVertex recycles a vertex (or normal) map obtained from this pool.
func (p *BufferPool) PutVertex(m *VertexMap) {
	if m == nil {
		return
	}
	sp := p.class(&p.vertex, m.Width, m.Height, func() any { return NewVertexMap(m.Width, m.Height) })
	sp.Put(m)
}

// Normal returns an all-invalid w×h normal map (NormalMap aliases
// VertexMap, so normals share the vertex size classes).
func (p *BufferPool) Normal(w, h int) *NormalMap { return p.Vertex(w, h) }

// PutNormal recycles a normal map.
func (p *BufferPool) PutNormal(m *NormalMap) { p.PutVertex(m) }
