package imgproc

import (
	"math"
	"math/rand"
	"testing"
)

func TestBilateralConstantImageUnchanged(t *testing.T) {
	src := NewDepthMap(16, 16)
	for i := range src.Pix {
		src.Pix[i] = 3
	}
	dst, cost := BilateralFilter(src, 2, 4, 0.1)
	for i, v := range dst.Pix {
		if math.Abs(float64(v-3)) > 1e-6 {
			t.Fatalf("pixel %d drifted: %v", i, v)
		}
	}
	if cost.Ops <= 0 {
		t.Fatal("no cost recorded")
	}
}

func TestBilateralRadiusZeroCopies(t *testing.T) {
	src := NewDepthMap(4, 4)
	src.Set(2, 2, 1.5)
	dst, _ := BilateralFilter(src, 0, 1, 0.1)
	if dst.At(2, 2) != 1.5 || dst.At(0, 0) != 0 {
		t.Fatal("radius 0 should copy")
	}
}

func TestBilateralDenoisesButKeepsEdges(t *testing.T) {
	// Step edge at x=8: left plane z=1, right plane z=2, plus noise.
	r := rand.New(rand.NewSource(2))
	src := NewDepthMap(16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			base := float32(1.0)
			if x >= 8 {
				base = 2.0
			}
			src.Set(x, y, base+float32(r.NormFloat64())*0.005)
		}
	}
	dst, _ := BilateralFilter(src, 2, 2, 0.05)

	// Noise on the flat region must shrink.
	varOf := func(d *DepthMap, x0, x1 int) float64 {
		var sum, sum2 float64
		n := 0
		for y := 2; y < 14; y++ {
			for x := x0; x < x1; x++ {
				v := float64(d.At(x, y))
				sum += v
				sum2 += v * v
				n++
			}
		}
		mean := sum / float64(n)
		return sum2/float64(n) - mean*mean
	}
	if varOf(dst, 2, 6) >= varOf(src, 2, 6) {
		t.Fatal("filter did not reduce noise variance")
	}
	// The edge must remain sharp: pixel at x=7 stays near 1, x=8 near 2.
	if math.Abs(float64(dst.At(7, 8))-1) > 0.05 {
		t.Fatalf("left of edge moved: %v", dst.At(7, 8))
	}
	if math.Abs(float64(dst.At(8, 8))-2) > 0.05 {
		t.Fatalf("right of edge moved: %v", dst.At(8, 8))
	}
}

func TestBilateralSkipsInvalid(t *testing.T) {
	src := NewDepthMap(8, 8)
	src.Set(4, 4, 2)
	// Lone valid pixel surrounded by invalid ones keeps its value and
	// invalid pixels stay invalid.
	dst, _ := BilateralFilter(src, 2, 2, 0.1)
	if math.Abs(float64(dst.At(4, 4))-2) > 1e-6 {
		t.Fatalf("lone pixel changed: %v", dst.At(4, 4))
	}
	if dst.At(0, 0) != 0 {
		t.Fatal("invalid pixel gained a value")
	}
}

func TestBilateralCostGrowsWithRadius(t *testing.T) {
	src := NewDepthMap(32, 32)
	for i := range src.Pix {
		src.Pix[i] = 1
	}
	_, c1 := BilateralFilter(src, 1, 2, 0.1)
	_, c3 := BilateralFilter(src, 3, 2, 0.1)
	if c3.Ops <= c1.Ops {
		t.Fatalf("cost should grow with radius: r1=%d r3=%d", c1.Ops, c3.Ops)
	}
}

func TestBuildDepthPyramid(t *testing.T) {
	base := NewDepthMap(64, 48)
	for i := range base.Pix {
		base.Pix[i] = 2
	}
	pyr, cost := BuildDepthPyramid(base, 3, 0.1)
	if len(pyr) != 3 {
		t.Fatalf("levels = %d", len(pyr))
	}
	if pyr[0] != base {
		t.Fatal("level 0 must alias the base")
	}
	if pyr[1].Width != 32 || pyr[2].Width != 16 {
		t.Fatalf("pyramid widths: %d, %d", pyr[1].Width, pyr[2].Width)
	}
	if pyr[2].At(8, 6) != 2 {
		t.Fatalf("coarse value: %v", pyr[2].At(8, 6))
	}
	if cost.Ops <= 0 {
		t.Fatal("no cost")
	}
	// Degenerate level count clamps to 1.
	pyr1, _ := BuildDepthPyramid(base, 0, 0.1)
	if len(pyr1) != 1 {
		t.Fatalf("clamped levels = %d", len(pyr1))
	}
}
