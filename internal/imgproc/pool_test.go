package imgproc

import (
	"math/rand"
	"testing"

	"slamgo/internal/math3"
)

func TestBufferPoolReturnsClearedBuffers(t *testing.T) {
	var pool BufferPool

	// Depth maps are recycled dirty by contract (every consumer
	// overwrites all pixels); only the shape must hold.
	d := pool.Depth(8, 6)
	for i := range d.Pix {
		d.Pix[i] = 3.5
	}
	pool.PutDepth(d)
	if d2 := pool.Depth(8, 6); d2.Width != 8 || d2.Height != 6 || len(d2.Pix) != 48 {
		t.Fatalf("recycled depth has wrong shape %dx%d", d2.Width, d2.Height)
	}

	m := pool.Vertex(8, 6)
	m.Set(3, 2, math3.V3(1, 2, 3))
	pool.PutVertex(m)
	m2 := pool.Vertex(8, 6)
	if n := m2.ValidCount(); n != 0 {
		t.Fatalf("recycled vertex map has %d valid pixels", n)
	}

	// Distinct size classes never hand back the wrong shape.
	small := pool.Depth(4, 3)
	if small.Width != 4 || small.Height != 3 || len(small.Pix) != 12 {
		t.Fatalf("wrong buffer shape %dx%d", small.Width, small.Height)
	}

	// Nil puts are no-ops (first raycast has no previous reference).
	pool.PutDepth(nil)
	pool.PutVertex(nil)
	pool.PutNormal(nil)
}

// TestIntoVariantsMatchAllocating feeds the Into-kernels dirty recycled
// buffers and checks they produce exactly what the allocating versions
// produce from scratch — the zero-allocation pipeline must not leak
// stale data between frames.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const w, h = 31, 22
	src := NewDepthMap(w, h)
	for i := range src.Pix {
		if rng.Float64() < 0.8 {
			src.Pix[i] = 0.5 + 3*rng.Float32()
		}
	}

	dirtyDepth := func(w, h int) *DepthMap {
		d := NewDepthMap(w, h)
		for i := range d.Pix {
			d.Pix[i] = 99
		}
		return d
	}

	// Bilateral.
	want, wantCost := BilateralFilter(src, 2, 4.0, 0.1)
	got := dirtyDepth(w, h)
	gotCost := BilateralFilterInto(got, src, 2, 4.0, 0.1)
	if wantCost != gotCost {
		t.Fatalf("bilateral cost %+v != %+v", gotCost, wantCost)
	}
	for i := range want.Pix {
		if want.Pix[i] != got.Pix[i] {
			t.Fatalf("bilateral pixel %d: into %v, allocating %v", i, got.Pix[i], want.Pix[i])
		}
	}

	// Half-sampling.
	wantHalf, _ := HalfSampleDepth(src, 0.1)
	gotHalf := dirtyDepth(w/2, h/2)
	HalfSampleDepthInto(gotHalf, src, 0.1)
	for i := range wantHalf.Pix {
		if wantHalf.Pix[i] != gotHalf.Pix[i] {
			t.Fatalf("halfsample pixel %d differs", i)
		}
	}

	// Vertex + normal maps, through dirty recycled maps.
	back := func(u, v, z float64) math3.Vec3 { return math3.V3(u*z, v*z, z) }
	wantVM, _ := DepthToVertexMap(src, back)
	gotVM := NewVertexMap(w, h)
	for i := range gotVM.Mask {
		gotVM.Mask[i] = true
		gotVM.Points[i] = math3.V3(9, 9, 9)
	}
	DepthToVertexMapInto(gotVM, src, back)
	for i := range wantVM.Mask {
		if wantVM.Mask[i] != gotVM.Mask[i] {
			t.Fatalf("vertex mask %d differs", i)
		}
		if wantVM.Mask[i] && wantVM.Points[i] != gotVM.Points[i] {
			t.Fatalf("vertex point %d differs", i)
		}
	}

	wantNM, _ := VertexToNormalMap(wantVM)
	gotNM := NewNormalMap(w, h)
	for i := range gotNM.Mask {
		gotNM.Mask[i] = true
		gotNM.Points[i] = math3.V3(9, 9, 9)
	}
	VertexToNormalMapInto(gotNM, gotVM)
	for i := range wantNM.Mask {
		if wantNM.Mask[i] != gotNM.Mask[i] {
			t.Fatalf("normal mask %d differs", i)
		}
		if wantNM.Mask[i] && wantNM.Points[i] != gotNM.Points[i] {
			t.Fatalf("normal %d differs", i)
		}
	}
}

// TestBilateralSteadyStateAllocs is the headline allocation claim: with
// a pooled destination the filter allocates nothing per frame.
func TestBilateralSteadyStateAllocs(t *testing.T) {
	src := NewDepthMap(64, 48)
	for i := range src.Pix {
		src.Pix[i] = 1.5
	}
	var pool BufferPool
	// Warm the pool and the spatial-kernel cache.
	d := pool.Depth(64, 48)
	BilateralFilterInto(d, src, 2, 4.0, 0.1)
	pool.PutDepth(d)

	allocs := testing.AllocsPerRun(20, func() {
		d := pool.Depth(64, 48)
		BilateralFilterInto(d, src, 2, 4.0, 0.1)
		pool.PutDepth(d)
	})
	// A handful of allocations remain for the worker goroutines of the
	// parallel row loop; the per-pixel buffers are gone.
	if allocs > 12 {
		t.Fatalf("bilateral steady state allocates %.0f objects/frame", allocs)
	}
}
