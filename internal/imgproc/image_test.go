package imgproc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"slamgo/internal/camera"
	"slamgo/internal/math3"
)

func TestDepthMapBasics(t *testing.T) {
	d := NewDepthMap(4, 3)
	if d.Valid(1, 1) {
		t.Fatal("fresh map has valid pixels")
	}
	d.Set(1, 1, 2.5)
	if d.At(1, 1) != 2.5 || !d.Valid(1, 1) {
		t.Fatal("set/get failed")
	}
	c := d.Clone()
	c.Set(1, 1, 9)
	if d.At(1, 1) != 2.5 {
		t.Fatal("clone aliases source")
	}
	if got := d.ValidFraction(); math.Abs(got-1.0/12.0) > 1e-12 {
		t.Fatalf("ValidFraction = %v", got)
	}
}

func TestDepthMapMinMax(t *testing.T) {
	d := NewDepthMap(3, 1)
	min, max := d.MinMax()
	if min != 0 || max != 0 {
		t.Fatal("empty map min/max should be 0")
	}
	d.Set(0, 0, 3)
	d.Set(2, 0, 1.5)
	min, max = d.MinMax()
	if min != 1.5 || max != 3 {
		t.Fatalf("min=%v max=%v", min, max)
	}
}

func TestRGBSetAt(t *testing.T) {
	im := NewRGB(2, 2)
	im.Set(1, 0, 10, 20, 30)
	r, g, b := im.At(1, 0)
	if r != 10 || g != 20 || b != 30 {
		t.Fatalf("got %d %d %d", r, g, b)
	}
	r, g, b = im.At(0, 1)
	if r != 0 || g != 0 || b != 0 {
		t.Fatal("untouched pixel not black")
	}
}

func TestVertexMapValidity(t *testing.T) {
	vm := NewVertexMap(3, 3)
	if vm.ValidCount() != 0 {
		t.Fatal("fresh map has valid pixels")
	}
	vm.Set(1, 2, math3.V3(1, 2, 3))
	p, ok := vm.At(1, 2)
	if !ok || p != math3.V3(1, 2, 3) {
		t.Fatal("set/get failed")
	}
	vm.Invalidate(1, 2)
	if _, ok := vm.At(1, 2); ok {
		t.Fatal("invalidate failed")
	}
}

func TestMmToM(t *testing.T) {
	raw := []uint16{0, 1000, 2500, 65535}
	d := NewDepthMap(4, 1)
	cost := MmToM(raw, d)
	want := []float32{0, 1, 2.5, 65.535}
	for i, w := range want {
		if math.Abs(float64(d.Pix[i]-w)) > 1e-6 {
			t.Fatalf("pix[%d] = %v want %v", i, d.Pix[i], w)
		}
	}
	if cost.Ops <= 0 || cost.Bytes <= 0 {
		t.Fatal("cost not recorded")
	}
}

func TestMmToMSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on size mismatch")
		}
	}()
	MmToM([]uint16{1, 2}, NewDepthMap(3, 1))
}

func TestHalfSampleDepth(t *testing.T) {
	src := NewDepthMap(4, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			src.Set(x, y, 2.0)
		}
	}
	dst, cost := HalfSampleDepth(src, 0.1)
	if dst.Width != 2 || dst.Height != 2 {
		t.Fatalf("size %dx%d", dst.Width, dst.Height)
	}
	for y := 0; y < 2; y++ {
		for x := 0; x < 2; x++ {
			if math.Abs(float64(dst.At(x, y)-2.0)) > 1e-6 {
				t.Fatalf("constant image changed: %v", dst.At(x, y))
			}
		}
	}
	if cost.Ops <= 0 {
		t.Fatal("no cost recorded")
	}
}

func TestHalfSampleRespectsDiscontinuity(t *testing.T) {
	src := NewDepthMap(2, 2)
	src.Set(0, 0, 1.0) // reference
	src.Set(1, 0, 5.0) // far outlier across an edge
	src.Set(0, 1, 1.02)
	src.Set(1, 1, 0.98)
	dst, _ := HalfSampleDepth(src, 0.2)
	got := float64(dst.At(0, 0))
	if math.Abs(got-1.0) > 0.05 {
		t.Fatalf("outlier leaked into average: %v", got)
	}
}

func TestHalfSampleInvalidBlock(t *testing.T) {
	src := NewDepthMap(2, 2) // all invalid
	dst, _ := HalfSampleDepth(src, 0.1)
	if dst.At(0, 0) != 0 {
		t.Fatal("invalid block produced a depth")
	}
}

func TestDepthToVertexMapAndBack(t *testing.T) {
	in := camera.Kinect640().ScaledTo(32, 24)
	d := NewDepthMap(32, 24)
	r := rand.New(rand.NewSource(1))
	for y := 0; y < 24; y++ {
		for x := 0; x < 32; x++ {
			if r.Float64() < 0.1 {
				continue // leave some holes
			}
			d.Set(x, y, 1+float32(r.Float64()*3))
		}
	}
	vm, cost := DepthToVertexMap(d, in.BackProject)
	if cost.Ops <= 0 {
		t.Fatal("no cost")
	}
	for y := 0; y < 24; y++ {
		for x := 0; x < 32; x++ {
			p, ok := vm.At(x, y)
			if d.Valid(x, y) != ok {
				t.Fatal("validity mismatch")
			}
			if !ok {
				continue
			}
			if math.Abs(p.Z-float64(d.At(x, y))) > 1e-6 {
				t.Fatalf("Z mismatch at (%d,%d): %v vs %v", x, y, p.Z, d.At(x, y))
			}
			// Note: the visibility flag may be false for border pixels
			// due to floating-point jitter, so only coordinates are
			// checked here.
			uv, _ := in.Project(p)
			if math.Abs(uv.X-float64(x)) > 1e-6 || math.Abs(uv.Y-float64(y)) > 1e-6 {
				t.Fatalf("reprojection mismatch at (%d,%d): %v", x, y, uv)
			}
		}
	}
}

func TestVertexToNormalMapPlane(t *testing.T) {
	// A fronto-parallel plane at z=2 must give normals ≈ (0,0,-1)
	// (pointing back at the camera).
	in := camera.Kinect640().ScaledTo(32, 24)
	d := NewDepthMap(32, 24)
	for i := range d.Pix {
		d.Pix[i] = 2
	}
	vm, _ := DepthToVertexMap(d, in.BackProject)
	nm, cost := VertexToNormalMap(vm)
	if cost.Ops <= 0 {
		t.Fatal("no cost")
	}
	n, ok := nm.At(16, 12)
	if !ok {
		t.Fatal("centre normal invalid")
	}
	if !n.ApproxEq(math3.V3(0, 0, -1), 1e-6) {
		t.Fatalf("plane normal = %v", n)
	}
	// Border pixels have no normal.
	if _, ok := nm.At(0, 0); ok {
		t.Fatal("border normal should be invalid")
	}
}

func TestNormalsAreUnit(t *testing.T) {
	in := camera.Kinect640().ScaledTo(64, 48)
	d := NewDepthMap(64, 48)
	r := rand.New(rand.NewSource(9))
	for y := 0; y < 48; y++ {
		for x := 0; x < 64; x++ {
			// Smooth slanted surface with mild noise.
			d.Set(x, y, float32(1.5+0.01*float64(x)+0.005*float64(y)+r.Float64()*1e-4))
		}
	}
	vm, _ := DepthToVertexMap(d, in.BackProject)
	nm, _ := VertexToNormalMap(vm)
	checked := 0
	for y := 1; y < 47; y++ {
		for x := 1; x < 63; x++ {
			n, ok := nm.At(x, y)
			if !ok {
				continue
			}
			if math.Abs(n.Norm()-1) > 1e-9 {
				t.Fatalf("normal not unit at (%d,%d): %v", x, y, n)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no normals computed")
	}
}

func TestCostAdd(t *testing.T) {
	c := Cost{Ops: 1, Bytes: 2}
	c.Add(Cost{Ops: 10, Bytes: 20})
	if c.Ops != 11 || c.Bytes != 22 {
		t.Fatalf("cost add: %+v", c)
	}
	if c.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestQuickHalfSamplePreservesRange(t *testing.T) {
	// Half-sampled valid depths stay within [min, max] of the source.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := NewDepthMap(8, 8)
		for i := range src.Pix {
			if r.Float64() < 0.2 {
				continue
			}
			src.Pix[i] = 0.5 + float32(r.Float64())*4
		}
		min, max := src.MinMax()
		dst, _ := HalfSampleDepth(src, 10)
		for _, v := range dst.Pix {
			if v <= 0 {
				continue
			}
			if v < min-1e-6 || v > max+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
