package imgproc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"slamgo/internal/math3"
)

func randomSparseDepth(r *rand.Rand, w, h int) *DepthMap {
	d := NewDepthMap(w, h)
	for i := range d.Pix {
		if r.Float64() < 0.3 {
			continue
		}
		d.Pix[i] = 0.5 + float32(r.Float64())*4
	}
	return d
}

func TestQuickBilateralPreservesValidityMask(t *testing.T) {
	// The filter never invents measurements and never discards them.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := randomSparseDepth(r, 16, 12)
		dst, _ := BilateralFilter(src, 1+r.Intn(3), 1+r.Float64()*4, 0.01+r.Float64()*0.3)
		for i := range src.Pix {
			if (src.Pix[i] > 0) != (dst.Pix[i] > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBilateralBounded(t *testing.T) {
	// Output depths stay within the global [min, max] of the input
	// (weighted averages cannot extrapolate).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := randomSparseDepth(r, 16, 12)
		min, max := src.MinMax()
		dst, _ := BilateralFilter(src, 2, 3, 0.2)
		for _, v := range dst.Pix {
			if v <= 0 {
				continue
			}
			if v < min-1e-6 || v > max+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPyramidLevelsHalve(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := randomSparseDepth(r, 32, 24)
		pyr, _ := BuildDepthPyramid(src, 3, 0.1)
		return pyr[1].Width == 16 && pyr[1].Height == 12 &&
			pyr[2].Width == 8 && pyr[2].Height == 6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickVertexMapValidityMatchesDepth(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := randomSparseDepth(r, 10, 8)
		vm, _ := DepthToVertexMap(src, func(u, v, d float64) math3.Vec3 {
			return math3.V3(u, v, d)
		})
		for y := 0; y < src.Height; y++ {
			for x := 0; x < src.Width; x++ {
				_, ok := vm.At(x, y)
				if ok != src.Valid(x, y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
