// Package imgproc provides the dense image containers and low-level
// kernels of the KinectFusion front-end: depth maps, RGB images, vertex
// and normal maps, bilateral filtering and pyramid construction.
//
// Kernels report their arithmetic cost (see the Cost type) so the device
// performance/power model can convert algorithmic work into simulated
// latency and energy for hardware we do not physically have.
package imgproc

import (
	"fmt"

	"slamgo/internal/math3"
)

// DepthMap is a dense float32 depth image in metres. Zero or negative
// values mean "no measurement" (the Kinect convention).
type DepthMap struct {
	Width, Height int
	Pix           []float32
}

// NewDepthMap allocates a zeroed depth map.
func NewDepthMap(w, h int) *DepthMap {
	return &DepthMap{Width: w, Height: h, Pix: make([]float32, w*h)}
}

// At returns the depth at (x, y).
func (d *DepthMap) At(x, y int) float32 { return d.Pix[y*d.Width+x] }

// Set stores depth v at (x, y).
func (d *DepthMap) Set(x, y int, v float32) { d.Pix[y*d.Width+x] = v }

// Valid reports whether the pixel holds a usable measurement.
func (d *DepthMap) Valid(x, y int) bool { return d.At(x, y) > 0 }

// Clone returns a deep copy.
func (d *DepthMap) Clone() *DepthMap {
	out := NewDepthMap(d.Width, d.Height)
	copy(out.Pix, d.Pix)
	return out
}

// ValidFraction returns the fraction of pixels holding a measurement.
func (d *DepthMap) ValidFraction() float64 {
	n := 0
	for _, v := range d.Pix {
		if v > 0 {
			n++
		}
	}
	if len(d.Pix) == 0 {
		return 0
	}
	return float64(n) / float64(len(d.Pix))
}

// MinMax returns the smallest and largest valid depth, or (0,0) when the
// map holds no valid pixels.
func (d *DepthMap) MinMax() (min, max float32) {
	first := true
	for _, v := range d.Pix {
		if v <= 0 {
			continue
		}
		if first {
			min, max = v, v
			first = false
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// RGB is an 8-bit three-channel colour image.
type RGB struct {
	Width, Height int
	Pix           []uint8 // len = 3*Width*Height, interleaved RGB
}

// NewRGB allocates a black image.
func NewRGB(w, h int) *RGB {
	return &RGB{Width: w, Height: h, Pix: make([]uint8, 3*w*h)}
}

// At returns the colour at (x, y).
func (im *RGB) At(x, y int) (r, g, b uint8) {
	i := 3 * (y*im.Width + x)
	return im.Pix[i], im.Pix[i+1], im.Pix[i+2]
}

// Set stores a colour at (x, y).
func (im *RGB) Set(x, y int, r, g, b uint8) {
	i := 3 * (y*im.Width + x)
	im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
}

// VertexMap stores one camera-frame 3D point per pixel. Invalid pixels
// hold the zero vector with Valid=false.
type VertexMap struct {
	Width, Height int
	Points        []math3.Vec3
	Mask          []bool
}

// NewVertexMap allocates an all-invalid vertex map.
func NewVertexMap(w, h int) *VertexMap {
	return &VertexMap{
		Width: w, Height: h,
		Points: make([]math3.Vec3, w*h),
		Mask:   make([]bool, w*h),
	}
}

// At returns the point and validity at (x, y).
func (m *VertexMap) At(x, y int) (math3.Vec3, bool) {
	i := y*m.Width + x
	return m.Points[i], m.Mask[i]
}

// Set stores a valid point at (x, y).
func (m *VertexMap) Set(x, y int, p math3.Vec3) {
	i := y*m.Width + x
	m.Points[i] = p
	m.Mask[i] = true
}

// Invalidate marks (x, y) as holding no data.
func (m *VertexMap) Invalidate(x, y int) {
	i := y*m.Width + x
	m.Points[i] = math3.Vec3{}
	m.Mask[i] = false
}

// ValidCount returns the number of valid pixels.
func (m *VertexMap) ValidCount() int {
	n := 0
	for _, ok := range m.Mask {
		if ok {
			n++
		}
	}
	return n
}

// NormalMap stores one unit normal per pixel, mirroring VertexMap layout.
type NormalMap = VertexMap

// NewNormalMap allocates an all-invalid normal map.
func NewNormalMap(w, h int) *NormalMap { return NewVertexMap(w, h) }

// Cost records the arithmetic work a kernel performed: floating-point
// operations and bytes moved. The device model consumes these.
type Cost struct {
	Ops   int64
	Bytes int64
}

// Add accumulates another cost.
func (c *Cost) Add(o Cost) {
	c.Ops += o.Ops
	c.Bytes += o.Bytes
}

// String implements fmt.Stringer.
func (c Cost) String() string {
	return fmt.Sprintf("Cost{%.2f Mops, %.2f MB}", float64(c.Ops)/1e6, float64(c.Bytes)/1e6)
}

// MmToM converts a raw millimetre depth image (as delivered by a Kinect
// sensor) to metres in place and reports the kernel cost.
func MmToM(raw []uint16, out *DepthMap) Cost {
	n := len(out.Pix)
	if len(raw) != n {
		panic(fmt.Sprintf("imgproc: MmToM size mismatch %d vs %d", len(raw), n))
	}
	for i, v := range raw {
		out.Pix[i] = float32(v) / 1000
	}
	return Cost{Ops: int64(n), Bytes: int64(n * 6)}
}

// HalfSampleDepth downsamples a depth map by 2× using a validity-aware
// box filter: only valid pixels within a depth band around the block's
// reference value contribute (this mirrors KinectFusion's half-sampling
// kernel, which avoids averaging across depth discontinuities).
func HalfSampleDepth(src *DepthMap, band float32) (*DepthMap, Cost) {
	dst := NewDepthMap(src.Width/2, src.Height/2)
	return dst, HalfSampleDepthInto(dst, src, band)
}

// HalfSampleDepthInto is the allocation-free variant: dst must be half
// src's size and every dst pixel is overwritten.
func HalfSampleDepthInto(dst, src *DepthMap, band float32) Cost {
	w, h := dst.Width, dst.Height
	var ops int64
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			ref := src.At(2*x, 2*y)
			var sum float32
			var cnt int
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					v := src.At(2*x+dx, 2*y+dy)
					if v <= 0 {
						continue
					}
					if ref > 0 && absf32(v-ref) > band {
						continue
					}
					sum += v
					cnt++
				}
			}
			if cnt > 0 {
				dst.Set(x, y, sum/float32(cnt))
			} else {
				dst.Set(x, y, 0)
			}
			ops += 8
		}
	}
	return Cost{Ops: ops, Bytes: int64(w * h * 4 * 5)}
}

func absf32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// DepthToVertexMap back-projects every valid depth pixel into a
// camera-frame point cloud.
func DepthToVertexMap(d *DepthMap, backProject func(u, v, depth float64) math3.Vec3) (*VertexMap, Cost) {
	vm := NewVertexMap(d.Width, d.Height)
	return vm, DepthToVertexMapInto(vm, d, backProject)
}

// DepthToVertexMapInto is the allocation-free variant: every vm pixel is
// overwritten (set or invalidated), so vm may hold stale data.
func DepthToVertexMapInto(vm *VertexMap, d *DepthMap, backProject func(u, v, depth float64) math3.Vec3) Cost {
	for y := 0; y < d.Height; y++ {
		for x := 0; x < d.Width; x++ {
			z := d.At(x, y)
			if z <= 0 {
				vm.Mask[y*vm.Width+x] = false
				continue
			}
			vm.Set(x, y, backProject(float64(x), float64(y), float64(z)))
		}
	}
	return Cost{
		Ops:   int64(d.Width * d.Height * 6),
		Bytes: int64(d.Width * d.Height * (4 + 24)),
	}
}

// VertexToNormalMap computes per-pixel normals from central differences
// of the vertex map (the standard KinectFusion normal kernel). Normals
// point towards the camera (-Z half-space).
func VertexToNormalMap(vm *VertexMap) (*NormalMap, Cost) {
	nm := NewNormalMap(vm.Width, vm.Height)
	return nm, VertexToNormalMapInto(nm, vm)
}

// VertexToNormalMapInto is the allocation-free variant: every nm pixel is
// overwritten (set or invalidated), so nm may hold stale data.
func VertexToNormalMapInto(nm *NormalMap, vm *VertexMap) Cost {
	for y := 0; y < vm.Height; y++ {
		for x := 0; x < vm.Width; x++ {
			i := y*nm.Width + x
			if x == 0 || y == 0 || x == vm.Width-1 || y == vm.Height-1 {
				nm.Mask[i] = false
				continue
			}
			c, ok := vm.At(x, y)
			if !ok {
				nm.Mask[i] = false
				continue
			}
			r, okR := vm.At(x+1, y)
			l, okL := vm.At(x-1, y)
			d, okD := vm.At(x, y+1)
			u, okU := vm.At(x, y-1)
			if !okR || !okL || !okD || !okU {
				nm.Mask[i] = false
				continue
			}
			n := r.Sub(l).Cross(d.Sub(u))
			if n.Norm() < 1e-12 {
				nm.Mask[i] = false
				continue
			}
			n = n.Normalized()
			// Orient towards the viewer.
			if n.Dot(c) > 0 {
				n = n.Neg()
			}
			nm.Set(x, y, n)
		}
	}
	return Cost{
		Ops:   int64(vm.Width * vm.Height * 30),
		Bytes: int64(vm.Width * vm.Height * 24 * 5),
	}
}
