package device

import (
	"math"
	"testing"

	"slamgo/internal/imgproc"
)

func TestProfileValidate(t *testing.T) {
	if err := OdroidXU3().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DesktopGPU().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Profile{Name: "x"}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero profile accepted")
	}
	bad2 := OdroidXU3()
	bad2.DynamicWatts = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero dynamic watts accepted")
	}
}

func TestLatencyRoofline(t *testing.T) {
	m := NewModel(Profile{
		Name: "toy", GopsPeak: 1, BandwidthGBs: 1,
		StaticWatts: 0.1, DynamicWatts: 1,
	})
	// Compute-bound: 2 Gop at 1 Gop/s with negligible bytes → 2 s.
	lat := m.Latency(imgproc.Cost{Ops: 2e9, Bytes: 1})
	if math.Abs(lat-2) > 1e-9 {
		t.Fatalf("compute-bound latency %v", lat)
	}
	// Memory-bound: 3 GB at 1 GB/s with negligible ops → 3 s.
	lat = m.Latency(imgproc.Cost{Ops: 1, Bytes: 3e9})
	if math.Abs(lat-3) > 1e-9 {
		t.Fatalf("memory-bound latency %v", lat)
	}
}

func TestEnergyScalesWithVoltage(t *testing.T) {
	p := OdroidXU3()
	nominal := NewModel(p)
	low, err := nominal.AtPoint("low")
	if err != nil {
		t.Fatal(err)
	}
	c := imgproc.Cost{Ops: 1e9, Bytes: 1e6}
	eN := nominal.Energy(c)
	eL := low.Energy(c)
	// The low point takes longer but burns less energy overall because
	// dynamic power drops with f·V².
	if eL >= eN {
		t.Fatalf("low OPP should save energy: %v vs %v", eL, eN)
	}
	if low.Latency(c) <= nominal.Latency(c) {
		t.Fatal("low OPP should be slower")
	}
}

func TestAtPointUnknown(t *testing.T) {
	m := NewModel(OdroidXU3())
	if _, err := m.AtPoint("warp9"); err == nil {
		t.Fatal("unknown point accepted")
	}
	pts := m.Points()
	if len(pts) != 4 || pts[0] != "perf" {
		t.Fatalf("points %v", pts)
	}
}

func TestExecuteFrameDeadline(t *testing.T) {
	m := NewModel(Profile{
		Name: "toy", GopsPeak: 1, BandwidthGBs: 100,
		StaticWatts: 0.5, DynamicWatts: 2,
	})
	period := 1.0 / 30
	// Light frame: 10 Mop → 10 ms < 33 ms.
	light := m.ExecuteFrame(imgproc.Cost{Ops: 1e7}, period)
	if !light.MetDeadline {
		t.Fatalf("light frame missed deadline: %+v", light)
	}
	// Power must be below full tilt thanks to race-to-idle.
	if light.Power >= 2.5 || light.Power <= 0.5 {
		t.Fatalf("light frame power %v out of (0.5, 2.5)", light.Power)
	}
	// Heavy frame: 100 Mop → 100 ms > 33 ms.
	heavy := m.ExecuteFrame(imgproc.Cost{Ops: 1e8}, period)
	if heavy.MetDeadline {
		t.Fatal("heavy frame met deadline")
	}
	// At full utilisation power approaches static+dynamic.
	if math.Abs(heavy.Power-2.5) > 0.2 {
		t.Fatalf("heavy frame power %v, want ≈2.5", heavy.Power)
	}
	if heavy.Latency <= light.Latency {
		t.Fatal("heavy frame not slower")
	}
}

func TestExecuteFrameEnergyAccountsIdle(t *testing.T) {
	m := NewModel(Profile{
		Name: "toy", GopsPeak: 1, BandwidthGBs: 100,
		StaticWatts: 1, DynamicWatts: 1,
	})
	period := 0.1
	// Zero-work frame: energy ≈ static × period.
	st := m.ExecuteFrame(imgproc.Cost{}, period)
	if math.Abs(st.Energy-0.1) > 1e-9 {
		t.Fatalf("idle energy %v", st.Energy)
	}
	if math.Abs(st.Power-1) > 1e-9 {
		t.Fatalf("idle power %v", st.Power)
	}
}

func TestFrameOverheadDominatesTinyFrames(t *testing.T) {
	p := OdroidXU3()
	m := NewModel(p)
	tiny := m.ExecuteFrame(imgproc.Cost{Ops: 1000}, 1.0/30)
	if tiny.Latency < p.FrameOverheadSec {
		t.Fatalf("overhead not applied: %v", tiny.Latency)
	}
}

func TestFPS(t *testing.T) {
	if got := FPS(0.05); math.Abs(got-20) > 1e-9 {
		t.Fatalf("FPS %v", got)
	}
	if FPS(0) != 0 {
		t.Fatal("FPS(0) should be 0")
	}
}

func TestXU3DefaultVsTunedShape(t *testing.T) {
	// Calibration guard: a default-config-sized frame (≈270 Mop /
	// 190 MB) must be far from real-time, a tuned-sized frame (≈15 Mop /
	// 15 MB) must be comfortably real-time at the nominal point.
	m := NewModel(OdroidXU3())
	defaultCost := imgproc.Cost{Ops: 270e6, Bytes: 190e6}
	tunedCost := imgproc.Cost{Ops: 15e6, Bytes: 15e6}
	fDefault := FPS(m.ExecuteFrame(defaultCost, 1.0/30).Latency)
	fTuned := FPS(m.ExecuteFrame(tunedCost, 1.0/30).Latency)
	if fDefault > 15 {
		t.Fatalf("default config too fast on XU3 model: %v FPS", fDefault)
	}
	if fTuned < 30 {
		t.Fatalf("tuned config below real time on XU3 model: %v FPS", fTuned)
	}
}
