// Package device models the execution targets the paper measures on but
// we do not physically have: the ODROID-XU3 embedded board (Exynos 5422
// big.LITTLE + Mali GPU with on-board power sensors) and a population of
// mobile-phone SoCs.
//
// The model is a calibrated roofline: each pipeline kernel reports the
// arithmetic operations it performed and the bytes it moved
// (imgproc.Cost); a device profile converts that into simulated latency
// (compute- or bandwidth-bound, whichever dominates) and energy (static
// power × time + per-op and per-byte switching energy). DVFS operating
// points scale throughput linearly with frequency and dynamic power with
// f·V², the standard CMOS approximation.
//
// Absolute numbers are not the goal — relative time/power across
// algorithmic configurations is, and those ratios are preserved because
// every configuration's op/byte counts flow through the same profile.
package device

import (
	"fmt"
	"math"

	"slamgo/internal/imgproc"
)

// OperatingPoint is one DVFS state.
type OperatingPoint struct {
	// Name labels the point (e.g. "1.8GHz@1.1V").
	Name string
	// FreqScale multiplies the profile's peak throughput (1.0 = nominal).
	FreqScale float64
	// VoltScale multiplies the nominal voltage (dynamic power ∝ f·V²).
	VoltScale float64
}

// Profile describes one execution target at its nominal operating point.
type Profile struct {
	// Name identifies the device (e.g. "odroid-xu3").
	Name string
	// GopsPeak is the effective compute throughput in Gop/s — already
	// discounted for achievable (not theoretical) utilisation.
	GopsPeak float64
	// BandwidthGBs is the achievable memory bandwidth in GB/s.
	BandwidthGBs float64
	// StaticWatts is the always-on power draw (rails, DRAM refresh, OS).
	StaticWatts float64
	// DynamicWatts is the additional draw at 100% utilisation, nominal
	// operating point.
	DynamicWatts float64
	// Points are the available DVFS states; empty means nominal only.
	Points []OperatingPoint
	// Year is the device's market year (used by the phone catalogue).
	Year int
	// FrameOverheadSec is a fixed per-frame dispatch/driver overhead —
	// the dominant term on phones once kernels get cheap, and the reason
	// tuned-configuration speed-ups vary so widely across devices
	// (Figure 3 of the paper).
	FrameOverheadSec float64
}

// Validate reports non-physical profiles.
func (p Profile) Validate() error {
	if p.GopsPeak <= 0 || p.BandwidthGBs <= 0 {
		return fmt.Errorf("device %q: non-positive throughput", p.Name)
	}
	if p.StaticWatts < 0 || p.DynamicWatts <= 0 {
		return fmt.Errorf("device %q: non-physical power", p.Name)
	}
	return nil
}

// Model is a profile pinned to one operating point, ready to execute
// kernel costs.
type Model struct {
	Profile Profile
	Point   OperatingPoint
}

// NewModel pins profile to its nominal operating point.
func NewModel(p Profile) *Model {
	return &Model{Profile: p, Point: OperatingPoint{Name: "nominal", FreqScale: 1, VoltScale: 1}}
}

// AtPoint returns a copy of the model at the named operating point.
func (m *Model) AtPoint(name string) (*Model, error) {
	for _, op := range m.Profile.Points {
		if op.Name == name {
			return &Model{Profile: m.Profile, Point: op}, nil
		}
	}
	return nil, fmt.Errorf("device %q: unknown operating point %q", m.Profile.Name, name)
}

// Points lists the profile's operating-point names.
func (m *Model) Points() []string {
	out := make([]string, len(m.Profile.Points))
	for i, op := range m.Profile.Points {
		out[i] = op.Name
	}
	return out
}

// Latency returns the simulated execution time of a kernel cost.
func (m *Model) Latency(c imgproc.Cost) float64 {
	gops := m.Profile.GopsPeak * m.Point.FreqScale
	bw := m.Profile.BandwidthGBs // memory clock modelled as DVFS-independent
	tCompute := float64(c.Ops) / (gops * 1e9)
	tMemory := float64(c.Bytes) / (bw * 1e9)
	return math.Max(tCompute, tMemory)
}

// Energy returns the simulated energy (joules) to execute cost c,
// assuming the device races to idle afterwards.
func (m *Model) Energy(c imgproc.Cost) float64 {
	t := m.Latency(c)
	dyn := m.Profile.DynamicWatts * m.Point.FreqScale * m.Point.VoltScale * m.Point.VoltScale
	return (m.Profile.StaticWatts + dyn) * t
}

// FrameStats describes one frame executed under a real-time period.
type FrameStats struct {
	// Latency is the busy time of the frame (seconds).
	Latency float64
	// Energy spent on the frame, including idle static power until the
	// period deadline when the frame finishes early (joules).
	Energy float64
	// Power is Energy divided by the accounting window (watts).
	Power float64
	// MetDeadline reports whether Latency ≤ period.
	MetDeadline bool
}

// ExecuteFrame runs a frame's total cost against a sensor period (e.g.
// 1/30 s). If the frame finishes early the device idles (static power
// only) for the remainder — the race-to-idle policy embedded systems use;
// if it overruns, the accounting window stretches to the busy time.
func (m *Model) ExecuteFrame(c imgproc.Cost, period float64) FrameStats {
	lat := m.Latency(c) + m.Profile.FrameOverheadSec
	busyEnergy := m.Energy(c) + m.Profile.FrameOverheadSec*m.Profile.StaticWatts
	window := period
	if lat > period || period <= 0 {
		window = lat
	}
	idle := (window - lat) * m.Profile.StaticWatts
	e := busyEnergy + idle
	power := 0.0
	if window > 0 {
		power = e / window
	}
	return FrameStats{
		Latency:     lat,
		Energy:      e,
		Power:       power,
		MetDeadline: lat <= period,
	}
}

// FPS converts a per-frame latency into achievable frame rate.
func FPS(latency float64) float64 {
	if latency <= 0 {
		return 0
	}
	return 1 / latency
}
