package device

import (
	"math/rand"
	"testing"
	"testing/quick"

	"slamgo/internal/imgproc"
)

func randomProfile(r *rand.Rand) Profile {
	return Profile{
		Name:             "rnd",
		GopsPeak:         0.1 + r.Float64()*10,
		BandwidthGBs:     0.5 + r.Float64()*20,
		StaticWatts:      r.Float64(),
		DynamicWatts:     0.5 + r.Float64()*5,
		FrameOverheadSec: r.Float64() * 0.02,
	}
}

func TestQuickLatencyMonotoneInWork(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewModel(randomProfile(r))
		ops := int64(r.Intn(1e9) + 1)
		bytes := int64(r.Intn(1e9) + 1)
		base := m.Latency(imgproc.Cost{Ops: ops, Bytes: bytes})
		moreOps := m.Latency(imgproc.Cost{Ops: ops * 2, Bytes: bytes})
		moreBytes := m.Latency(imgproc.Cost{Ops: ops, Bytes: bytes * 2})
		return moreOps >= base && moreBytes >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEnergyNonNegativeAndMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewModel(randomProfile(r))
		ops := int64(r.Intn(1e8) + 1)
		c1 := imgproc.Cost{Ops: ops, Bytes: ops}
		c2 := imgproc.Cost{Ops: ops * 3, Bytes: ops * 3}
		e1, e2 := m.Energy(c1), m.Energy(c2)
		return e1 >= 0 && e2 >= e1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExecuteFrameInvariants(t *testing.T) {
	// Power is always between static and static+dynamic; energy equals
	// power × window; deadline flag is consistent with latency.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomProfile(r)
		m := NewModel(p)
		c := imgproc.Cost{Ops: int64(r.Intn(5e8)), Bytes: int64(r.Intn(5e8))}
		period := 1.0 / 30
		st := m.ExecuteFrame(c, period)
		if st.Latency < p.FrameOverheadSec {
			return false
		}
		if st.MetDeadline != (st.Latency <= period) {
			return false
		}
		maxPower := p.StaticWatts + p.DynamicWatts + 1e-9
		if st.Power < p.StaticWatts-1e-9 || st.Power > maxPower {
			return false
		}
		return st.Energy >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOperatingPointsOrderedTradeoff(t *testing.T) {
	// Across the XU3's DVFS ladder, lower points are slower but burn
	// less energy for the same work.
	m := NewModel(OdroidXU3())
	c := imgproc.Cost{Ops: 2e8, Bytes: 1e8}
	var prevLat, prevEnergy float64
	for i, name := range m.Points() {
		mp, err := m.AtPoint(name)
		if err != nil {
			t.Fatal(err)
		}
		lat := mp.Latency(c)
		e := mp.Energy(c)
		if i > 0 {
			if lat <= prevLat {
				t.Fatalf("%s not slower than previous point", name)
			}
			if e >= prevEnergy {
				t.Fatalf("%s not lower energy than previous point", name)
			}
		}
		prevLat, prevEnergy = lat, e
	}
}
