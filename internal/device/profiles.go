package device

// OdroidXU3 models the paper's embedded target: an Exynos 5422 with a
// Cortex-A15 quad, Cortex-A7 quad and Mali-T628 MP6 GPU, with the
// on-board INA231 power rails. Throughput and power are *effective*
// figures calibrated so the stock KinectFusion configuration lands in the
// few-FPS regime the paper reports for this board, with full-tilt power
// in the 4-5 W envelope the INA sensors measure.
func OdroidXU3() Profile {
	return Profile{
		Name:         "odroid-xu3",
		GopsPeak:     1.6,
		BandwidthGBs: 4.0,
		StaticWatts:  0.35,
		DynamicWatts: 4.5,
		Year:         2014,
		// Per-frame fixed cost: camera acquisition, OpenCL kernel
		// dispatch and host↔GPU traffic on the Exynos. This floor is
		// what kept the paper's best configurations in the tens of FPS
		// rather than hundreds.
		FrameOverheadSec: 0.008,
		Points: []OperatingPoint{
			{Name: "perf", FreqScale: 1.0, VoltScale: 1.0},
			{Name: "balanced", FreqScale: 0.7, VoltScale: 0.85},
			{Name: "low", FreqScale: 0.5, VoltScale: 0.75},
			{Name: "powersave", FreqScale: 0.35, VoltScale: 0.7},
		},
	}
}

// DesktopGPU models the workstation-class comparator (a TITAN-era CUDA
// card): roughly 40× the embedded board's throughput at 50× its power.
// It exists to reproduce the methodology point that raw desktop speed
// comes at two orders of magnitude more energy per frame.
func DesktopGPU() Profile {
	return Profile{
		Name:             "desktop-gpu",
		GopsPeak:         65,
		BandwidthGBs:     180,
		StaticWatts:      35,
		DynamicWatts:     180,
		Year:             2015,
		FrameOverheadSec: 0.0004,
		Points: []OperatingPoint{
			{Name: "perf", FreqScale: 1.0, VoltScale: 1.0},
		},
	}
}
