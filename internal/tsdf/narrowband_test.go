package tsdf

import (
	"testing"

	"slamgo/internal/math3"
)

// Regression test for the narrow-band raycast interplay discovered while
// reproducing the paper's DSE: when mu is on the order of the voxel size
// (e.g. the stock mu=0.1 m on a 64³ volume over 5+ m), the fully-observed
// shell around the surface is thinner than one trilinear cell, so a
// strict all-corners-observed sampler makes surfaces invisible. The
// relaxed sampler must keep them raycastable.
func TestRaycastSurvivesNarrowTruncationBand(t *testing.T) {
	in := testCam()
	v := New(48, 5.0, math3.V3(-2.5, -2.5, -1))
	voxel := v.VoxelSize() // ≈ 0.104 m
	mu := voxel * 1.0      // deliberately narrow band

	v.Integrate(flatWall(in, 2.0), math3.SE3Identity(), in, mu, 100)
	res := v.Raycast(math3.SE3Identity(), in, mu, 0.3, 6)
	frac := float64(res.Vertices.ValidCount()) / float64(in.Pixels())
	if frac < 0.5 {
		t.Fatalf("narrow band made the wall invisible: %.2f of pixels hit", frac)
	}
	// Hits land on the wall.
	p, ok := res.Vertices.At(in.Width/2, in.Height/2)
	if !ok {
		t.Fatal("centre ray missed")
	}
	if p.Z < 1.8 || p.Z > 2.2 {
		t.Fatalf("hit depth %v, want ≈2", p.Z)
	}
}

func TestStrictInterpStillStrict(t *testing.T) {
	// The strict sampler keeps its all-corners semantics (integration
	// and tests depend on it): in the same narrow-band volume it fails
	// right at the surface where the relaxed sampler succeeds.
	in := testCam()
	v := New(48, 5.0, math3.V3(-2.5, -2.5, -1))
	mu := v.VoxelSize()
	v.Integrate(flatWall(in, 2.0), math3.SE3Identity(), in, mu, 100)

	// Probe into and beyond the band behind the surface, where corners
	// progressively drop out of observation.
	strictOK, relaxedOK := 0, 0
	for dz := 0.0; dz <= 0.30; dz += 0.005 {
		p := math3.V3(0, 0, 2.0+dz)
		if _, ok := v.Interp(p); ok {
			strictOK++
		}
		if _, ok := v.SampleRelaxed(p); ok {
			relaxedOK++
		}
	}
	if relaxedOK <= strictOK {
		t.Fatalf("relaxed (%d) should cover more of the band than strict (%d)", relaxedOK, strictOK)
	}
}
