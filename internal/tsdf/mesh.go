package tsdf

import (
	"bufio"
	"fmt"
	"io"

	"slamgo/internal/math3"
)

// Triangle is one mesh face in world coordinates.
type Triangle struct {
	A, B, C math3.Vec3
}

// Mesh is an indexed-free triangle soup extracted from the volume.
type Mesh struct {
	Triangles []Triangle
}

// ExtractMesh polygonises the zero isosurface using marching tetrahedra
// (each voxel cube is split into six tetrahedra; no lookup tables
// needed). Only cells where every corner has been observed contribute.
func (v *Volume) ExtractMesh() *Mesh {
	m := &Mesh{}
	// The six tetrahedra of a cube, as corner indices of the unit cube
	// (x + 2y + 4z encoding).
	tets := [6][4]int{
		{0, 5, 1, 6},
		{0, 1, 3, 6},
		{0, 3, 2, 6},
		{0, 2, 6, 4},
		{5, 0, 4, 6},
		{5, 4, 7, 6}, // note: consistent winding is not required downstream
	}
	corner := func(x, y, z, c int) (int, int, int) {
		return x + (c & 1), y + ((c >> 1) & 1), z + ((c >> 2) & 1)
	}
	for z := 0; z < v.Res-1; z++ {
		for y := 0; y < v.Res-1; y++ {
			for x := 0; x < v.Res-1; x++ {
				var vals [8]float64
				var pts [8]math3.Vec3
				observed := true
				for c := 0; c < 8; c++ {
					cx, cy, cz := corner(x, y, z, c)
					d, w := v.At(cx, cy, cz)
					if w <= 0 {
						observed = false
						break
					}
					vals[c] = float64(d)
					pts[c] = v.VoxelCenter(cx, cy, cz)
				}
				if !observed {
					continue
				}
				// Quick reject: all corners same sign.
				allPos, allNeg := true, true
				for c := 0; c < 8; c++ {
					if vals[c] > 0 {
						allNeg = false
					} else {
						allPos = false
					}
				}
				if allPos || allNeg {
					continue
				}
				for _, tet := range tets {
					m.polygoniseTet(
						pts[tet[0]], pts[tet[1]], pts[tet[2]], pts[tet[3]],
						vals[tet[0]], vals[tet[1]], vals[tet[2]], vals[tet[3]],
					)
				}
			}
		}
	}
	return m
}

// polygoniseTet emits 0-2 triangles for one tetrahedron.
func (m *Mesh) polygoniseTet(p0, p1, p2, p3 math3.Vec3, v0, v1, v2, v3 float64) {
	inside := 0
	var code int
	if v0 <= 0 {
		inside++
		code |= 1
	}
	if v1 <= 0 {
		inside++
		code |= 2
	}
	if v2 <= 0 {
		inside++
		code |= 4
	}
	if v3 <= 0 {
		inside++
		code |= 8
	}
	if inside == 0 || inside == 4 {
		return
	}
	edge := func(pa, pb math3.Vec3, va, vb float64) math3.Vec3 {
		t := va / (va - vb)
		return pa.Lerp(pb, t)
	}
	p := [4]math3.Vec3{p0, p1, p2, p3}
	v := [4]float64{v0, v1, v2, v3}
	// Collect the indices inside/outside.
	var in, out []int
	for i := 0; i < 4; i++ {
		if v[i] <= 0 {
			in = append(in, i)
		} else {
			out = append(out, i)
		}
	}
	switch len(in) {
	case 1:
		a := edge(p[in[0]], p[out[0]], v[in[0]], v[out[0]])
		b := edge(p[in[0]], p[out[1]], v[in[0]], v[out[1]])
		c := edge(p[in[0]], p[out[2]], v[in[0]], v[out[2]])
		m.Triangles = append(m.Triangles, Triangle{a, b, c})
	case 3:
		a := edge(p[out[0]], p[in[0]], v[out[0]], v[in[0]])
		b := edge(p[out[0]], p[in[1]], v[out[0]], v[in[1]])
		c := edge(p[out[0]], p[in[2]], v[out[0]], v[in[2]])
		m.Triangles = append(m.Triangles, Triangle{a, b, c})
	case 2:
		// Quad split into two triangles.
		a := edge(p[in[0]], p[out[0]], v[in[0]], v[out[0]])
		b := edge(p[in[0]], p[out[1]], v[in[0]], v[out[1]])
		c := edge(p[in[1]], p[out[0]], v[in[1]], v[out[0]])
		d := edge(p[in[1]], p[out[1]], v[in[1]], v[out[1]])
		m.Triangles = append(m.Triangles, Triangle{a, b, c}, Triangle{b, d, c})
	}
}

// WriteOBJ serialises the mesh in Wavefront OBJ format.
func (m *Mesh) WriteOBJ(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, t := range m.Triangles {
		for _, p := range []math3.Vec3{t.A, t.B, t.C} {
			if _, err := fmt.Fprintf(bw, "v %.6f %.6f %.6f\n", p.X, p.Y, p.Z); err != nil {
				return err
			}
		}
	}
	for i := range m.Triangles {
		base := 3*i + 1
		if _, err := fmt.Fprintf(bw, "f %d %d %d\n", base, base+1, base+2); err != nil {
			return err
		}
	}
	return bw.Flush()
}
