package tsdf

import (
	"math"

	"slamgo/internal/camera"
	"slamgo/internal/imgproc"
	"slamgo/internal/math3"
	"slamgo/internal/parallel"
)

// RaycastResult holds the world-frame vertex and normal maps produced by
// ray-casting the volume, plus the kernel cost.
type RaycastResult struct {
	Vertices *imgproc.VertexMap
	Normals  *imgproc.NormalMap
	Cost     imgproc.Cost
	// pooled marks results whose maps came from the package buffer pool
	// (Raycast); Release only recycles those.
	pooled bool
}

// raycastPool recycles the output maps of the convenience Raycast entry
// point, so repeated standalone raycasts (benchmarks, mesh previews)
// reach the same steady-state zero-allocation behaviour as the
// pipeline's RaycastInto + imgproc.BufferPool pairing.
var raycastPool imgproc.BufferPool

// Release returns the result's maps to the raycast buffer pool and
// clears them, so releasing the same result twice is safe (only copies
// of the struct can defeat the latch — release through one variable).
// It is a no-op for results produced by RaycastInto, whose buffers
// belong to the caller. After Release the maps must not be read again.
func (r *RaycastResult) Release() {
	if !r.pooled {
		return
	}
	r.pooled = false
	raycastPool.PutVertex(r.Vertices)
	raycastPool.PutNormal(r.Normals)
	r.Vertices = nil
	r.Normals = nil
}

// Raycast extracts the implicit surface visible from the camera at pose
// (camera-to-world). It marches each pixel's ray with coarse steps while
// far from the surface (the TSDF magnitude bounds how far the surface can
// be) and refines the zero crossing by linear interpolation, exactly as
// KinectFusion's raycaster does.
//
// near and far clip the march range (metres); mu is the truncation band
// used during integration (sets the safe step length). The output maps
// come from a pooled allocator: call Release on the result when done
// with them to make follow-up raycasts allocation-free (skipping
// Release is safe — the maps simply fall back to the garbage
// collector).
func (v *Volume) Raycast(pose math3.SE3, in camera.Intrinsics, mu, near, far float64) RaycastResult {
	verts := raycastPool.Vertex(in.Width, in.Height)
	norms := raycastPool.Normal(in.Width, in.Height)
	res := v.RaycastInto(verts, norms, pose, in, mu, near, far)
	res.pooled = true
	return res
}

// RaycastInto is the allocation-free variant: it marches into
// caller-provided maps, which must be all-invalid (freshly allocated or
// drawn from an imgproc.BufferPool). Rays are marched in parallel with
// the per-worker step counts merged in a fixed chunk order, so the
// result is identical for any worker count.
func (v *Volume) RaycastInto(verts *imgproc.VertexMap, norms *imgproc.NormalMap, pose math3.SE3, in camera.Intrinsics, mu, near, far float64) RaycastResult {
	if mu <= 0 {
		mu = v.VoxelSize() * 4
	}
	coarse := math.Max(0.75*mu, v.VoxelSize())
	fine := v.VoxelSize() * 0.5

	steps := parallel.Reduce(in.Height, 0, func(ylo, yhi int) int64 {
		var localSteps int64
		for y := ylo; y < yhi; y++ {
			for x := 0; x < in.Width; x++ {
				dir := in.Ray(float64(x), float64(y))
				wdir := pose.ApplyDir(dir)
				hit, ok, n := v.marchRay(pose.T, wdir, coarse, fine, near, far)
				localSteps += n
				if !ok {
					continue
				}
				p := pose.T.Add(wdir.Scale(hit))
				g, gok := v.Gradient(p)
				if !gok {
					continue
				}
				verts.Set(x, y, p)
				norms.Set(x, y, g)
			}
		}
		return localSteps
	}, func(acc *int64, p int64) { *acc += p })

	return RaycastResult{
		Vertices: verts,
		Normals:  norms,
		Cost: imgproc.Cost{
			Ops:   steps * 30, // trilinear sample + advance per step
			Bytes: steps * 32,
		},
	}
}

// marchRay walks one ray and returns the refined hit distance. The third
// return value is the number of samples taken (for cost accounting).
func (v *Volume) marchRay(o, d math3.Vec3, coarse, fine, near, far float64) (float64, bool, int64) {
	t := near
	var steps int64
	prevT := t
	prevVal := math.NaN()
	for t < far {
		steps++
		p := o.Add(d.Scale(t))
		val, ok := v.SampleRelaxed(p)
		if !ok {
			// Outside observed space: step coarsely.
			prevVal = math.NaN()
			prevT = t
			t += coarse
			continue
		}
		if val <= 0 {
			// Crossed the surface. Refine between prevT and t.
			if !math.IsNaN(prevVal) && prevVal > 0 {
				// Linear interpolation of the zero crossing.
				frac := prevVal / (prevVal - val)
				return prevT + frac*(t-prevT), true, steps
			}
			return t, true, steps
		}
		prevVal = val
		prevT = t
		// Safe skip: the surface is at least val·mu away, but never step
		// below the fine step near the surface.
		step := val * coarse / 0.75
		if step < fine {
			step = fine
		}
		t += step
	}
	return 0, false, steps
}
