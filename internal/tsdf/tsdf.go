// Package tsdf implements the dense truncated signed-distance-function
// volume at the heart of KinectFusion: depth-image integration, trilinear
// sampling, surface ray-casting and mesh extraction.
//
// The volume is a cube of Res³ voxels spanning Size metres, positioned by
// Origin (the world coordinate of the corner of voxel (0,0,0)). Each voxel
// stores a TSDF value normalised to [-1, 1] (distance divided by the
// truncation band mu) and an integration weight.
package tsdf

import (
	"fmt"
	"math"

	"slamgo/internal/camera"
	"slamgo/internal/imgproc"
	"slamgo/internal/math3"
	"slamgo/internal/parallel"
)

// Volume is the dense TSDF grid.
type Volume struct {
	Res    int        // voxels per side
	Size   float64    // metres per side
	Origin math3.Vec3 // world position of the min corner

	// D holds normalised TSDF values in [-1,1]; W holds weights. Both are
	// indexed [z*Res*Res + y*Res + x].
	D []float32
	W []float32
}

// New allocates a volume of res³ voxels spanning size metres with its min
// corner at origin. All voxels start at TSDF=1 (free/unknown) with zero
// weight.
func New(res int, size float64, origin math3.Vec3) *Volume {
	if res < 2 {
		panic(fmt.Sprintf("tsdf: resolution %d too small", res))
	}
	n := res * res * res
	v := &Volume{
		Res: res, Size: size, Origin: origin,
		D: make([]float32, n),
		W: make([]float32, n),
	}
	for i := range v.D {
		v.D[i] = 1
	}
	return v
}

// VoxelSize returns the edge length of one voxel in metres.
func (v *Volume) VoxelSize() float64 { return v.Size / float64(v.Res) }

// Reset returns every voxel to the unobserved state.
func (v *Volume) Reset() {
	for i := range v.D {
		v.D[i] = 1
		v.W[i] = 0
	}
}

// index returns the linear index for voxel (x,y,z); callers guarantee
// bounds.
func (v *Volume) index(x, y, z int) int { return (z*v.Res+y)*v.Res + x }

// At returns the stored TSDF value and weight at voxel coordinates.
func (v *Volume) At(x, y, z int) (d, w float32) {
	i := v.index(x, y, z)
	return v.D[i], v.W[i]
}

// setAt stores a TSDF/weight pair (test helper and integration inner
// loop).
func (v *Volume) setAt(x, y, z int, d, w float32) {
	i := v.index(x, y, z)
	v.D[i] = d
	v.W[i] = w
}

// VoxelCenter returns the world coordinate of the centre of voxel (x,y,z).
func (v *Volume) VoxelCenter(x, y, z int) math3.Vec3 {
	s := v.VoxelSize()
	return v.Origin.Add(math3.V3(
		(float64(x)+0.5)*s,
		(float64(y)+0.5)*s,
		(float64(z)+0.5)*s,
	))
}

// Contains reports whether world point p falls inside the volume cube.
func (v *Volume) Contains(p math3.Vec3) bool {
	q := p.Sub(v.Origin)
	return q.X >= 0 && q.Y >= 0 && q.Z >= 0 &&
		q.X < v.Size && q.Y < v.Size && q.Z < v.Size
}

// Interp samples the TSDF at world point p by trilinear interpolation.
// ok is false when p lies outside the interpolable interior or touches
// unobserved voxels (weight 0).
func (v *Volume) Interp(p math3.Vec3) (val float64, ok bool) {
	s := v.VoxelSize()
	g := p.Sub(v.Origin).Scale(1 / s).Sub(math3.Splat3(0.5))
	x0 := int(math.Floor(g.X))
	y0 := int(math.Floor(g.Y))
	z0 := int(math.Floor(g.Z))
	if x0 < 0 || y0 < 0 || z0 < 0 || x0+1 >= v.Res || y0+1 >= v.Res || z0+1 >= v.Res {
		return 0, false
	}
	fx := g.X - float64(x0)
	fy := g.Y - float64(y0)
	fz := g.Z - float64(z0)

	var acc float64
	for dz := 0; dz < 2; dz++ {
		wz := fz
		if dz == 0 {
			wz = 1 - fz
		}
		for dy := 0; dy < 2; dy++ {
			wy := fy
			if dy == 0 {
				wy = 1 - fy
			}
			for dx := 0; dx < 2; dx++ {
				wx := fx
				if dx == 0 {
					wx = 1 - fx
				}
				i := v.index(x0+dx, y0+dy, z0+dz)
				if v.W[i] <= 0 {
					return 0, false
				}
				acc += float64(v.D[i]) * wx * wy * wz
			}
		}
	}
	return acc, true
}

// SampleRelaxed samples the TSDF at p tolerating partially observed
// neighbourhoods: observed corners are combined with renormalised
// trilinear weights. This is what the ray-caster uses — with a narrow
// truncation band (mu on the order of the voxel size) the fully-observed
// shell around the surface can be thinner than one voxel, and the strict
// Interp would make the surface invisible. ok is false when the observed
// corner weight mass is too small to trust.
func (v *Volume) SampleRelaxed(p math3.Vec3) (val float64, ok bool) {
	s := v.VoxelSize()
	g := p.Sub(v.Origin).Scale(1 / s).Sub(math3.Splat3(0.5))
	x0 := int(math.Floor(g.X))
	y0 := int(math.Floor(g.Y))
	z0 := int(math.Floor(g.Z))
	if x0 < 0 || y0 < 0 || z0 < 0 || x0+1 >= v.Res || y0+1 >= v.Res || z0+1 >= v.Res {
		return 0, false
	}
	fx := g.X - float64(x0)
	fy := g.Y - float64(y0)
	fz := g.Z - float64(z0)

	var acc, wsum float64
	for dz := 0; dz < 2; dz++ {
		wz := fz
		if dz == 0 {
			wz = 1 - fz
		}
		for dy := 0; dy < 2; dy++ {
			wy := fy
			if dy == 0 {
				wy = 1 - fy
			}
			for dx := 0; dx < 2; dx++ {
				wx := fx
				if dx == 0 {
					wx = 1 - fx
				}
				i := v.index(x0+dx, y0+dy, z0+dz)
				if v.W[i] <= 0 {
					continue
				}
				w := wx * wy * wz
				acc += float64(v.D[i]) * w
				wsum += w
			}
		}
	}
	if wsum < 0.25 {
		return 0, false
	}
	return acc / wsum, true
}

// Gradient estimates the TSDF spatial gradient at p via central
// differences of trilinear samples; used for surface normals.
func (v *Volume) Gradient(p math3.Vec3) (math3.Vec3, bool) {
	h := v.VoxelSize()
	xp, ok1 := v.SampleRelaxed(p.Add(math3.V3(h, 0, 0)))
	xm, ok2 := v.SampleRelaxed(p.Sub(math3.V3(h, 0, 0)))
	yp, ok3 := v.SampleRelaxed(p.Add(math3.V3(0, h, 0)))
	ym, ok4 := v.SampleRelaxed(p.Sub(math3.V3(0, h, 0)))
	zp, ok5 := v.SampleRelaxed(p.Add(math3.V3(0, 0, h)))
	zm, ok6 := v.SampleRelaxed(p.Sub(math3.V3(0, 0, h)))
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6) {
		return math3.Vec3{}, false
	}
	g := math3.V3(xp-xm, yp-ym, zp-zm)
	if g.Norm() < 1e-12 {
		return math3.Vec3{}, false
	}
	return g.Normalized(), true
}

// Integrate fuses one depth image into the volume.
//
// pose is camera-to-world; mu is the truncation band in metres; maxWeight
// caps the running average so the map can adapt to drift. The returned
// cost counts the per-voxel projection work, which is what makes volume
// resolution the paper's dominant performance parameter.
func (v *Volume) Integrate(depth *imgproc.DepthMap, pose math3.SE3, in camera.Intrinsics, mu float64, maxWeight float32) imgproc.Cost {
	if mu <= 0 {
		mu = v.VoxelSize() * 4
	}
	worldToCam := pose.Inverse()
	s := v.VoxelSize()

	parallel.For(v.Res, 0, func(zlo, zhi int) {
		for z := zlo; z < zhi; z++ {
			for y := 0; y < v.Res; y++ {
				// Walk one x-row; the camera-frame point advances by a
				// constant delta per step, saving a full transform.
				base := v.Origin.Add(math3.V3(0.5*s, (float64(y)+0.5)*s, (float64(z)+0.5)*s))
				pc := worldToCam.Apply(base)
				dx := worldToCam.R.Col(0).Scale(s)
				for x := 0; x < v.Res; x++ {
					if x > 0 {
						pc = pc.Add(dx)
					}
					if pc.Z <= 1e-6 {
						continue
					}
					u := in.Fx*pc.X/pc.Z + in.Cx
					vv := in.Fy*pc.Y/pc.Z + in.Cy
					ui := int(u + 0.5)
					vi := int(vv + 0.5)
					if ui < 0 || vi < 0 || ui >= in.Width || vi >= in.Height {
						continue
					}
					zm := depth.At(ui, vi)
					if zm <= 0 {
						continue
					}
					// Signed distance along the ray, projected on Z.
					sdfVal := float64(zm) - pc.Z
					if sdfVal < -mu {
						continue // behind the surface: occluded, skip
					}
					t := math3.Clamp(sdfVal/mu, -1, 1)
					i := (z*v.Res+y)*v.Res + x
					wOld := v.W[i]
					wNew := wOld + 1
					v.D[i] = float32((float64(v.D[i])*float64(wOld) + t) / float64(wNew))
					if wNew > maxWeight {
						wNew = maxWeight
					}
					v.W[i] = wNew
				}
			}
		}
	})

	n := int64(v.Res) * int64(v.Res) * int64(v.Res)
	return imgproc.Cost{Ops: n * 14, Bytes: n * 10}
}
