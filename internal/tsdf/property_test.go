package tsdf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"slamgo/internal/camera"
	"slamgo/internal/imgproc"
	"slamgo/internal/math3"
)

// randomDepth renders a random fronto-parallel-ish depth field.
func randomDepth(rng *rand.Rand, in camera.Intrinsics) *imgproc.DepthMap {
	d := imgproc.NewDepthMap(in.Width, in.Height)
	base := 1 + rng.Float64()*1.5
	for y := 0; y < in.Height; y++ {
		for x := 0; x < in.Width; x++ {
			if rng.Float64() < 0.05 {
				continue // holes
			}
			d.Set(x, y, float32(base+0.1*rng.Float64()))
		}
	}
	return d
}

func TestQuickTSDFValuesBounded(t *testing.T) {
	in := camera.Kinect640().ScaledTo(40, 30)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := New(24, 2.5, math3.V3(-1.25, -1.25, 0.25))
		for k := 0; k < 3; k++ {
			v.Integrate(randomDepth(rng, in), math3.SE3Identity(), in, 0.1+rng.Float64()*0.2, 50)
		}
		for i := range v.D {
			if v.D[i] < -1 || v.D[i] > 1 {
				return false
			}
			if v.W[i] < 0 || v.W[i] > 50 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWeightsMonotone(t *testing.T) {
	// Integration never decreases any voxel weight.
	in := camera.Kinect640().ScaledTo(40, 30)
	rng := rand.New(rand.NewSource(5))
	v := New(24, 2.5, math3.V3(-1.25, -1.25, 0.25))
	prev := make([]float32, len(v.W))
	for k := 0; k < 5; k++ {
		copy(prev, v.W)
		v.Integrate(randomDepth(rng, in), math3.SE3Identity(), in, 0.15, 100)
		for i := range v.W {
			if v.W[i] < prev[i] {
				t.Fatalf("weight decreased at %d: %v → %v", i, prev[i], v.W[i])
			}
		}
	}
}

func TestSampleRelaxedAgreesWithInterp(t *testing.T) {
	// Wherever the strict interpolation succeeds, the relaxed sampler
	// must return exactly the same value.
	in := camera.Kinect640().ScaledTo(60, 45)
	rng := rand.New(rand.NewSource(7))
	v := New(32, 2.5, math3.V3(-1.25, -1.25, 0.25))
	v.Integrate(randomDepth(rng, in), math3.SE3Identity(), in, 0.2, 100)
	checked := 0
	for i := 0; i < 3000; i++ {
		p := math3.V3(
			rng.Float64()*2.5-1.25,
			rng.Float64()*2.5-1.25,
			0.25+rng.Float64()*2.5,
		)
		strict, okS := v.Interp(p)
		relaxed, okR := v.SampleRelaxed(p)
		if !okS {
			continue
		}
		if !okR {
			t.Fatalf("relaxed failed where strict succeeded at %v", p)
		}
		if diff := strict - relaxed; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("mismatch at %v: %v vs %v", p, strict, relaxed)
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("too few interpolable samples: %d", checked)
	}
}

func TestSampleRelaxedOutsideVolume(t *testing.T) {
	v := New(16, 1, math3.Vec3{})
	if _, ok := v.SampleRelaxed(math3.V3(5, 5, 5)); ok {
		t.Fatal("sample outside volume succeeded")
	}
	if _, ok := v.SampleRelaxed(math3.V3(0.5, 0.5, 0.5)); ok {
		t.Fatal("sample in unobserved volume succeeded")
	}
}

func TestQuickMeshVerticesNearSurfaceBand(t *testing.T) {
	// Every extracted triangle vertex must lie strictly inside the
	// volume and within the truncation band of the observed surface.
	in := camera.Kinect640().ScaledTo(40, 30)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := New(24, 2.5, math3.V3(-1.25, -1.25, 0.25))
		v.Integrate(randomDepth(rng, in), math3.SE3Identity(), in, 0.2, 100)
		mesh := v.ExtractMesh()
		for _, tri := range mesh.Triangles {
			for _, p := range []math3.Vec3{tri.A, tri.B, tri.C} {
				if !v.Contains(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
