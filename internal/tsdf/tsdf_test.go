package tsdf

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"slamgo/internal/camera"
	"slamgo/internal/imgproc"
	"slamgo/internal/math3"
	"slamgo/internal/synth"
)

func testCam() camera.Intrinsics { return camera.Kinect640().ScaledTo(80, 60) }

// flatWall renders a fronto-parallel wall at depth z from the camera.
func flatWall(in camera.Intrinsics, z float32) *imgproc.DepthMap {
	d := imgproc.NewDepthMap(in.Width, in.Height)
	for i := range d.Pix {
		d.Pix[i] = z
	}
	return d
}

// testVolume builds a 2 m cube centred on (0,0,1.5) in front of an
// identity camera.
func testVolume(res int) *Volume {
	return New(res, 2, math3.V3(-1, -1, 0.5))
}

func TestNewVolumeState(t *testing.T) {
	v := testVolume(16)
	if v.VoxelSize() != 2.0/16 {
		t.Fatalf("voxel size %v", v.VoxelSize())
	}
	d, w := v.At(3, 5, 7)
	if d != 1 || w != 0 {
		t.Fatalf("fresh voxel (%v,%v)", d, w)
	}
	if !v.Contains(math3.V3(0, 0, 1.5)) {
		t.Fatal("centre not contained")
	}
	if v.Contains(math3.V3(0, 0, 3.5)) {
		t.Fatal("outside point contained")
	}
}

func TestNewPanicsOnTinyRes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for res=1")
		}
	}()
	New(1, 1, math3.Vec3{})
}

func TestIntegrateWallSigns(t *testing.T) {
	in := testCam()
	v := testVolume(32)
	pose := math3.SE3Identity()
	cost := v.Integrate(flatWall(in, 1.5), pose, in, 0.2, 100)
	if cost.Ops <= 0 {
		t.Fatal("no cost")
	}
	// Voxel in front of the wall (z≈1.1): positive TSDF (free space).
	probe := func(p math3.Vec3) float64 {
		val, ok := v.Interp(p)
		if !ok {
			t.Fatalf("probe at %v not observed", p)
		}
		return val
	}
	if got := probe(math3.V3(0, 0, 1.2)); got <= 0.5 {
		t.Fatalf("free space TSDF = %v, want ≈1", got)
	}
	// Just behind the wall inside the truncation band: negative.
	if got := probe(math3.V3(0, 0, 1.6)); got >= 0 {
		t.Fatalf("behind-surface TSDF = %v, want <0", got)
	}
	// At the wall: near zero.
	if got := probe(math3.V3(0, 0, 1.5)); math.Abs(got) > 0.35 {
		t.Fatalf("surface TSDF = %v, want ≈0", got)
	}
}

func TestIntegrateSkipsOccluded(t *testing.T) {
	in := testCam()
	v := testVolume(32)
	v.Integrate(flatWall(in, 1.0), math3.SE3Identity(), in, 0.1, 100)
	// Far behind the wall (z=1.4, > mu beyond): unobserved.
	if _, ok := v.Interp(math3.V3(0, 0, 1.45)); ok {
		t.Fatal("occluded region was integrated")
	}
}

func TestIntegrateWeightCap(t *testing.T) {
	in := testCam()
	v := testVolume(16)
	for i := 0; i < 10; i++ {
		v.Integrate(flatWall(in, 1.5), math3.SE3Identity(), in, 0.3, 4)
	}
	maxW := float32(0)
	for _, w := range v.W {
		if w > maxW {
			maxW = w
		}
	}
	if maxW > 4 {
		t.Fatalf("weight exceeded cap: %v", maxW)
	}
	if maxW < 4 {
		t.Fatalf("weights never reached cap: %v", maxW)
	}
}

func TestIntegrateAveragesNoise(t *testing.T) {
	in := testCam()
	va := testVolume(32)
	// Two observations at slightly different depths average out.
	va.Integrate(flatWall(in, 1.45), math3.SE3Identity(), in, 0.3, 100)
	va.Integrate(flatWall(in, 1.55), math3.SE3Identity(), in, 0.3, 100)
	got, ok := va.Interp(math3.V3(0, 0, 1.5))
	if !ok {
		t.Fatal("not observed")
	}
	if math.Abs(got) > 0.2 {
		t.Fatalf("averaged surface TSDF = %v, want ≈0", got)
	}
}

func TestInterpOutsideVolume(t *testing.T) {
	v := testVolume(16)
	if _, ok := v.Interp(math3.V3(10, 0, 0)); ok {
		t.Fatal("interp outside volume succeeded")
	}
	if _, ok := v.Interp(math3.V3(0, 0, 1.5)); ok {
		t.Fatal("interp on unobserved volume succeeded")
	}
}

func TestGradientPointsAwayFromSurface(t *testing.T) {
	in := testCam()
	v := testVolume(32)
	v.Integrate(flatWall(in, 1.5), math3.SE3Identity(), in, 0.3, 100)
	g, ok := v.Gradient(math3.V3(0, 0, 1.5))
	if !ok {
		t.Fatal("gradient unavailable at surface")
	}
	// TSDF decreases with z (free in front, solid behind), so the
	// gradient points towards -z — the outward surface normal.
	if !g.ApproxEq(math3.V3(0, 0, -1), 0.1) {
		t.Fatalf("gradient %v, want ≈(0,0,-1)", g)
	}
}

func TestRaycastRecoversWall(t *testing.T) {
	in := testCam()
	v := testVolume(64)
	v.Integrate(flatWall(in, 1.5), math3.SE3Identity(), in, 0.15, 100)
	res := v.Raycast(math3.SE3Identity(), in, 0.15, 0.3, 3)
	if res.Cost.Ops <= 0 {
		t.Fatal("no raycast cost")
	}
	hits := 0
	for y := 10; y < 50; y++ {
		for x := 10; x < 70; x++ {
			p, ok := res.Vertices.At(x, y)
			if !ok {
				continue
			}
			hits++
			if math.Abs(p.Z-1.5) > 0.05 {
				t.Fatalf("surface at (%d,%d) z=%v, want 1.5", x, y, p.Z)
			}
			n, ok := res.Normals.At(x, y)
			if !ok {
				t.Fatalf("vertex without normal at (%d,%d)", x, y)
			}
			if !n.ApproxEq(math3.V3(0, 0, -1), 0.15) {
				t.Fatalf("normal %v at (%d,%d)", n, x, y)
			}
		}
	}
	if hits < 2000 {
		t.Fatalf("too few raycast hits: %d", hits)
	}
}

func TestRaycastMissesEmptyVolume(t *testing.T) {
	in := testCam()
	v := testVolume(32)
	res := v.Raycast(math3.SE3Identity(), in, 0.1, 0.3, 3)
	if res.Vertices.ValidCount() != 0 {
		t.Fatalf("raycast on empty volume hit %d pixels", res.Vertices.ValidCount())
	}
}

func TestRaycastFromSyntheticScene(t *testing.T) {
	// End-to-end: render a synthetic sphere scene, integrate it, raycast
	// back and compare depth against the original rendering.
	in := testCam()
	scene := synth.NewRenderer(sphereScene{})
	pose := math3.SE3Identity()
	depth := scene.RenderDepth(pose, in)

	v := New(64, 2, math3.V3(-1, -1, 1))
	v.Integrate(depth, pose, in, 0.1, 100)
	res := v.Raycast(pose, in, 0.1, 0.5, 3)

	cx, cy := in.Width/2, in.Height/2
	p, ok := res.Vertices.At(cx, cy)
	if !ok {
		t.Fatal("centre pixel missed")
	}
	want := float64(depth.At(cx, cy))
	if math.Abs(p.Z-want) > 0.05 {
		t.Fatalf("centre depth %v want %v", p.Z, want)
	}
}

// sphereScene is a minimal sdf.Field for the round-trip test.
type sphereScene struct{}

func (sphereScene) Distance(p math3.Vec3) float64 {
	return p.Sub(math3.V3(0, 0, 2)).Norm() - 0.5
}

func TestResetClearsVolume(t *testing.T) {
	in := testCam()
	v := testVolume(16)
	v.Integrate(flatWall(in, 1.5), math3.SE3Identity(), in, 0.3, 100)
	v.Reset()
	for i := range v.D {
		if v.D[i] != 1 || v.W[i] != 0 {
			t.Fatal("reset incomplete")
		}
	}
}

func TestVoxelCenterRoundtrip(t *testing.T) {
	v := testVolume(16)
	c := v.VoxelCenter(3, 7, 11)
	// The centre of voxel (3,7,11) must be contained and map back.
	if !v.Contains(c) {
		t.Fatal("voxel centre outside volume")
	}
	s := v.VoxelSize()
	g := c.Sub(v.Origin).Scale(1 / s)
	if int(g.X) != 3 || int(g.Y) != 7 || int(g.Z) != 11 {
		t.Fatalf("roundtrip voxel (%v)", g)
	}
}

func TestExtractMeshWall(t *testing.T) {
	in := testCam()
	v := testVolume(32)
	v.Integrate(flatWall(in, 1.5), math3.SE3Identity(), in, 0.3, 100)
	m := v.ExtractMesh()
	if len(m.Triangles) == 0 {
		t.Fatal("no triangles extracted")
	}
	// All triangle vertices must lie near the wall plane z=1.5.
	for _, tri := range m.Triangles {
		for _, p := range []math3.Vec3{tri.A, tri.B, tri.C} {
			if math.Abs(p.Z-1.5) > 0.2 {
				t.Fatalf("mesh vertex far from surface: %v", p)
			}
		}
	}
}

func TestExtractMeshEmpty(t *testing.T) {
	v := testVolume(8)
	if m := v.ExtractMesh(); len(m.Triangles) != 0 {
		t.Fatalf("empty volume produced %d triangles", len(m.Triangles))
	}
}

func TestWriteOBJ(t *testing.T) {
	m := &Mesh{Triangles: []Triangle{{
		A: math3.V3(0, 0, 0), B: math3.V3(1, 0, 0), C: math3.V3(0, 1, 0),
	}}}
	var buf bytes.Buffer
	if err := m.WriteOBJ(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "v 0.000000 0.000000 0.000000") {
		t.Fatalf("missing vertex line:\n%s", s)
	}
	if !strings.Contains(s, "f 1 2 3") {
		t.Fatalf("missing face line:\n%s", s)
	}
}
