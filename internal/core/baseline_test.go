package core

import "testing"

func TestRunBaseline(t *testing.T) {
	scale := QuickScale()
	scale.Frames = 12
	res, err := RunBaseline(scale, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.KFusion) != 1 || len(res.Odometry) != 1 {
		t.Fatalf("summaries: kf=%d odo=%d", len(res.KFusion), len(res.Odometry))
	}
	kf, odo := res.KFusion[0], res.Odometry[0]
	if kf.TrackedFraction < 0.9 {
		t.Fatalf("kfusion lost tracking: %v", kf.TrackedFraction)
	}
	if odo.TrackedFraction < 0.9 {
		t.Fatalf("odometry lost tracking: %v", odo.TrackedFraction)
	}
	// The odometry baseline carries no mapping cost, so it must be
	// cheaper per frame on the device model.
	if odo.SimMeanLatency >= kf.SimMeanLatency {
		t.Fatalf("odometry (%v) not cheaper than kfusion (%v)",
			odo.SimMeanLatency, kf.SimMeanLatency)
	}
}

func TestRunBaselineBadSequence(t *testing.T) {
	scale := QuickScale()
	if _, err := RunBaseline(scale, 9); err == nil {
		t.Fatal("invalid kt accepted")
	}
}
