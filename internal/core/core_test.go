package core

import (
	"strings"
	"testing"

	"slamgo/internal/device"
	"slamgo/internal/hypermapper"
	"slamgo/internal/kfusion"
)

func TestDSESpaceValid(t *testing.T) {
	s := DSESpace()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"volume_resolution", "compute_size_ratio", "mu_distance",
		"icp_threshold", "pyramid_iter_l0", "integration_rate", "tracking_rate",
	} {
		if s.Index(name) < 0 {
			t.Fatalf("space missing %q", name)
		}
	}
}

func TestDefaultPointRoundtrips(t *testing.T) {
	s := DSESpace()
	pt := DefaultPoint(s)
	cfg, err := ConfigFromPoint(s, pt)
	if err != nil {
		t.Fatal(err)
	}
	def := kfusion.DefaultConfig()
	if cfg.VolumeResolution != def.VolumeResolution ||
		cfg.ComputeSizeRatio != def.ComputeSizeRatio ||
		cfg.Mu != def.Mu ||
		cfg.PyramidIterations != def.PyramidIterations ||
		cfg.IntegrationRate != def.IntegrationRate {
		t.Fatalf("default point decoded to %+v", cfg)
	}
}

func TestConfigFromPointValidation(t *testing.T) {
	s := DSESpace()
	if _, err := ConfigFromPoint(s, hypermapper.Point{1}); err == nil {
		t.Fatal("short point accepted")
	}
	// All-zero pyramid iterations are repaired, not rejected.
	pt := DefaultPoint(s)
	pt[s.Index("pyramid_iter_l0")] = 0
	pt[s.Index("pyramid_iter_l1")] = 0
	pt[s.Index("pyramid_iter_l2")] = 0
	cfg, err := ConfigFromPoint(s, pt)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PyramidIterations == [3]int{0, 0, 0} {
		t.Fatal("zero pyramid not repaired")
	}
}

func TestEvaluateQuickScale(t *testing.T) {
	seq, err := QuickScale().Sequence()
	if err != nil {
		t.Fatal(err)
	}
	model := device.NewModel(device.OdroidXU3())
	cfg := kfusion.DefaultConfig()
	cfg.VolumeResolution = 64 // keep the test fast
	m := Evaluate(seq, model, cfg)
	if m.Failed {
		t.Fatal("default-ish config failed on clean sequence")
	}
	if m.Runtime <= 0 || m.Power <= 0 || m.Energy <= 0 {
		t.Fatalf("metrics not populated: %+v", m)
	}
	if m.MaxATE <= 0 || m.MaxATE > 0.5 {
		t.Fatalf("implausible ATE: %v", m.MaxATE)
	}
}

func TestEvaluatorRejectsBadPoints(t *testing.T) {
	s := DSESpace()
	seq, err := QuickScale().Sequence()
	if err != nil {
		t.Fatal(err)
	}
	eval := NewEvaluator(s, seq, device.NewModel(device.OdroidXU3()))
	m := eval(hypermapper.Point{1, 2})
	if !m.Failed {
		t.Fatal("malformed point did not fail")
	}
}

func TestVolumeResolutionTradeoffShape(t *testing.T) {
	// The paper's central premise: bigger volume → slower, more accurate
	// (or at least not less accurate); smaller volume → faster.
	seq, err := QuickScale().Sequence()
	if err != nil {
		t.Fatal(err)
	}
	model := device.NewModel(device.OdroidXU3())
	at := func(res int) hypermapper.Metrics {
		cfg := kfusion.DefaultConfig()
		cfg.VolumeResolution = res
		return Evaluate(seq, model, cfg)
	}
	small, large := at(64), at(192)
	if small.Failed || large.Failed {
		t.Fatalf("runs failed: %+v %+v", small, large)
	}
	if large.Runtime <= small.Runtime*2 {
		t.Fatalf("192³ (%.4fs) not ≫ 64³ (%.4fs)", large.Runtime, small.Runtime)
	}
	if large.Power <= small.Power {
		t.Fatalf("larger volume should draw more power: %v vs %v", large.Power, small.Power)
	}
}

func TestComputeSizeRatioTradeoffShape(t *testing.T) {
	seq, err := QuickScale().Sequence()
	if err != nil {
		t.Fatal(err)
	}
	model := device.NewModel(device.OdroidXU3())
	at := func(csr int) hypermapper.Metrics {
		cfg := kfusion.DefaultConfig()
		cfg.VolumeResolution = 64
		cfg.ComputeSizeRatio = csr
		return Evaluate(seq, model, cfg)
	}
	fine, coarse := at(1), at(4)
	if fine.Failed {
		t.Fatalf("csr=1 failed: %+v", fine)
	}
	if !coarse.Failed && coarse.Runtime >= fine.Runtime {
		t.Fatalf("coarser input should be faster: %v vs %v", coarse.Runtime, fine.Runtime)
	}
}

func TestRunFig1(t *testing.T) {
	scale := QuickScale()
	res, err := RunFig1(scale)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.Frames != scale.Frames {
		t.Fatalf("frames %d", s.Frames)
	}
	if s.TrackedFraction < 0.9 {
		t.Fatalf("default config lost tracking: %v", s.TrackedFraction)
	}
	if !strings.Contains(s.Device, "odroid-xu3") {
		t.Fatalf("device %q", s.Device)
	}
	if s.SimFPS <= 0 {
		t.Fatal("no simulated FPS")
	}
}
