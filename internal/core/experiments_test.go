package core

import (
	"testing"

	"slamgo/internal/hypermapper"
	"slamgo/internal/kfusion"
)

// fig2Quick runs a small but real DSE (shared across the experiment
// tests to amortise its cost).
func fig2Quick(t *testing.T) *Fig2Result {
	t.Helper()
	opts := DefaultFig2Options()
	opts.Scale = QuickScale()
	opts.RandomSamples = 8
	opts.ActiveIterations = 2
	opts.BatchPerIteration = 2
	opts.AccuracyLimit = 0.08 // quick-scale sequences are short; be lenient
	res, err := RunFig2(opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFig2AndHeadlineAndFig3(t *testing.T) {
	fig2 := fig2Quick(t)

	// --- Fig 2 structural checks.
	if len(fig2.Active.Observations) < 8 {
		t.Fatalf("too few observations: %d", len(fig2.Active.Observations))
	}
	if len(fig2.RandomOnly) != len(fig2.Active.Observations) {
		t.Fatalf("random baseline budget mismatch: %d vs %d",
			len(fig2.RandomOnly), len(fig2.Active.Observations))
	}
	// Without the ladder every observation is a full run, and the
	// baseline budget matches it.
	if fig2.ActiveFullEvals != len(fig2.Active.Observations) ||
		fig2.BaselineBudget != len(fig2.RandomOnly) || fig2.ActiveLowEvals != 0 {
		t.Fatalf("full-fidelity accounting off without ladder: full=%d low=%d budget=%d",
			fig2.ActiveFullEvals, fig2.ActiveLowEvals, fig2.BaselineBudget)
	}
	if fig2.DefaultMetrics.Failed {
		t.Fatal("default configuration failed")
	}
	if len(fig2.Active.Front) == 0 {
		t.Fatal("empty Pareto front")
	}
	if len(fig2.Knowledge) == 0 {
		t.Fatal("no knowledge rules extracted")
	}
	if !fig2.HasBestFeasible {
		t.Fatal("no feasible configuration found")
	}
	if len(fig2.RuntimeImportance) != len(fig2.Space.Params) {
		t.Fatalf("runtime importance incomplete: %v", fig2.RuntimeImportance)
	}
	var impSum float64
	for _, v := range fig2.RuntimeImportance {
		impSum += v
	}
	if impSum < 0.99 || impSum > 1.01 {
		t.Fatalf("importance not normalised: %v", impSum)
	}
	if fig2.BestFeasible.M.MaxATE > fig2.AccuracyLimit {
		t.Fatalf("best feasible violates limit: %v", fig2.BestFeasible.M.MaxATE)
	}

	// --- Headline: tuned must be faster than default, and accurate.
	head, err := RunHeadline(fig2, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if head.Speedup <= 1 {
		t.Fatalf("tuned configuration not faster than default: speedup %v", head.Speedup)
	}
	if head.PowerReduction <= 1 {
		t.Fatalf("tuned configuration not lower power: reduction %v", head.PowerReduction)
	}
	if head.TunedPerf.MaxATE > fig2.AccuracyLimit {
		t.Fatalf("tuned config inaccurate: %v", head.TunedPerf.MaxATE)
	}

	// --- Fig 3: phone sweep over the tuned configuration.
	fig3, err := RunFig3(head.TunedConfig, QuickScale(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig3.Phones) != 83 {
		t.Fatalf("phone count %d", len(fig3.Phones))
	}
	if fig3.Min < 0.5 {
		t.Fatalf("implausible minimum speedup %v", fig3.Min)
	}
	if fig3.Max <= fig3.Min {
		t.Fatal("no speedup spread across devices")
	}
	if fig3.Mean <= 1 {
		t.Fatalf("mean speedup %v — tuning should help on average", fig3.Mean)
	}
	// The distribution must actually vary (the whole point of Figure 3).
	if fig3.Max/fig3.Min < 1.5 {
		t.Fatalf("speedup spread too narrow: [%v, %v]", fig3.Min, fig3.Max)
	}
}

// TestFig2LadderBaselineBudget pins the same-budget fairness of the
// random baseline under the multi-fidelity ladder: the baseline must
// consume exactly as many full-fidelity simulations as the active run
// spent, not one per observation (observations include cheap screening
// runs, so the old accounting inflated the baseline's budget).
func TestFig2LadderBaselineBudget(t *testing.T) {
	opts := DefaultFig2Options()
	opts.Scale = QuickScale()
	opts.RandomSamples = 8
	opts.ActiveIterations = 2
	opts.BatchPerIteration = 2
	opts.AccuracyLimit = 0.08
	opts.FidelityStride = 2
	opts.PromoteFraction = 0.25
	res, err := RunFig2(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActiveLowEvals == 0 {
		t.Fatal("ladder ran no low-fidelity screening runs")
	}
	// The ladder promotes a fraction of each batch: the full-fidelity
	// spend must be strictly below the observation count, or screening
	// saved nothing.
	if res.ActiveFullEvals >= len(res.Active.Observations) {
		t.Fatalf("full-fidelity evals %d not below observation count %d",
			res.ActiveFullEvals, len(res.Active.Observations))
	}
	if res.BaselineBudget != res.ActiveFullEvals {
		t.Fatalf("baseline budget %d != active full-fidelity evals %d",
			res.BaselineBudget, res.ActiveFullEvals)
	}
	if len(res.RandomOnly) != res.BaselineBudget {
		t.Fatalf("baseline ran %d evaluations, budget is %d",
			len(res.RandomOnly), res.BaselineBudget)
	}
	for i, o := range res.RandomOnly {
		if o.M.LowFidelity {
			t.Fatalf("baseline observation %d is low fidelity", i)
		}
	}
}

func TestRunHeadlineRequiresFeasible(t *testing.T) {
	fig2 := &Fig2Result{AccuracyLimit: 0.05}
	if _, err := RunHeadline(fig2, QuickScale()); err == nil {
		t.Fatal("headline without feasible config accepted")
	}
}

func TestRunFig3RejectsEmptySequence(t *testing.T) {
	bad := QuickScale()
	bad.KT = 9
	if _, err := RunFig3(kfusion.DefaultConfig(), bad, 1); err == nil {
		t.Fatal("invalid scale accepted")
	}
}

func TestFig2OptionsDefaults(t *testing.T) {
	opts := DefaultFig2Options()
	if opts.AccuracyLimit != 0.05 {
		t.Fatalf("accuracy limit %v", opts.AccuracyLimit)
	}
	if opts.Scale.Frames == 0 || opts.RandomSamples == 0 {
		t.Fatal("incomplete defaults")
	}
}

var _ = hypermapper.RuntimeAccuracy
