package core

import (
	"slamgo/internal/dataset"
	"slamgo/internal/device"
	"slamgo/internal/kfusion"
	"slamgo/internal/odometry"
	"slamgo/internal/slambench"
)

// BaselineResult is the E6 cross-algorithm comparison: KinectFusion's
// model-based tracking against frame-to-frame ICP odometry on the same
// sequences — the "comparison across algorithms" role of SLAMBench.
type BaselineResult struct {
	KFusion  []*slambench.Summary
	Odometry []*slambench.Summary
}

// RunBaseline benchmarks both systems over the given kt sequences at the
// scale. Empty kts defaults to {0}.
func RunBaseline(scale Scale, kts ...int) (*BaselineResult, error) {
	if len(kts) == 0 {
		kts = []int{0}
	}
	model := device.NewModel(device.OdroidXU3())
	runner := &slambench.Runner{Model: model}

	var seqs []dataset.Sequence
	for _, kt := range kts {
		s := scale
		s.KT = kt
		seq, err := s.Sequence()
		if err != nil {
			return nil, err
		}
		seqs = append(seqs, seq)
	}

	res := &BaselineResult{}
	suiteKF := &slambench.Suite{
		Runner: runner,
		Systems: []slambench.SuiteEntry{{
			Name: "kfusion",
			Make: func(seq dataset.Sequence) slambench.System {
				return slambench.NewKFusion(kfusion.DefaultConfig(), seq)
			},
		}},
	}
	kf, err := suiteKF.Run(seqs...)
	if err != nil {
		return nil, err
	}
	res.KFusion = kf

	suiteOdo := &slambench.Suite{
		Runner: runner,
		Systems: []slambench.SuiteEntry{{
			Name: "odometry",
			Make: func(seq dataset.Sequence) slambench.System {
				return slambench.NewOdometry(odometry.DefaultConfig(), seq)
			},
		}},
	}
	odo, err := suiteOdo.Run(seqs...)
	if err != nil {
		return nil, err
	}
	res.Odometry = odo
	return res, nil
}
