package core

import (
	"errors"
	"fmt"
	"math/rand"

	"slamgo/internal/device"
	"slamgo/internal/kfusion"
	"slamgo/internal/phones"
	"slamgo/internal/rf"
	"slamgo/internal/slambench"
)

// The paper closes with its plan to "train a decision machine for mobile
// phones" from the crowdsourced data: a model that, given a device,
// recommends the KinectFusion configuration to run. This file implements
// that future-work item over the simulated phone catalogue.

// CandidateConfig is one configuration the decision machine may
// recommend, with a short display name.
type CandidateConfig struct {
	Name   string
	Config kfusion.Config
}

// DefaultCandidates spans the quality/cost ladder the DSE typically
// surfaces: from "maximum quality" (the stock configuration) down to a
// minimal mapping load for entry-level hardware.
func DefaultCandidates() []CandidateConfig {
	mk := func(name string, vr, csr, ir int) CandidateConfig {
		cfg := kfusion.DefaultConfig()
		cfg.VolumeResolution = vr
		cfg.ComputeSizeRatio = csr
		cfg.IntegrationRate = ir
		return CandidateConfig{Name: name, Config: cfg}
	}
	return []CandidateConfig{
		mk("quality", 256, 2, 1),
		mk("balanced", 128, 2, 2),
		mk("fast", 128, 4, 2),
		mk("minimal", 64, 4, 3),
	}
}

// DeviceChoice records the recommendation for one device.
type DeviceChoice struct {
	Device string
	Year   int
	// Choice indexes the candidate list; -1 when no candidate sustains
	// tracking-quality requirements on the device.
	Choice int
	// FPS of the chosen configuration on the device.
	FPS float64
}

// DecisionMachine is the trained recommender plus its training data.
type DecisionMachine struct {
	Candidates []CandidateConfig
	// MaxATE of each candidate (device-independent, measured once).
	CandidateATE []float64
	Choices      []DeviceChoice
	// Tree maps device features to a candidate index.
	Tree *rf.ClassificationTree
	// Rules are the tree's readable decision rules over device features.
	Rules []rf.Rule
	// TrainAccuracy is the tree's accuracy on the catalogue itself.
	TrainAccuracy float64
}

// deviceFeatures extracts the feature vector the tree learns over.
func deviceFeatures(p device.Profile) []float64 {
	return []float64{p.GopsPeak, p.BandwidthGBs, p.FrameOverheadSec * 1000, float64(p.Year)}
}

// deviceFeatureNames matches deviceFeatures.
func deviceFeatureNames() []string {
	return []string{"gops", "bandwidth_gbs", "overhead_ms", "year"}
}

// RunDecisionMachine measures each candidate once (accuracy and per-frame
// costs are device-independent), picks the best candidate per phone
// (fastest meeting the accuracy limit, preferring the highest-quality
// config that still sustains the sensor rate), and fits a decision tree
// over device features.
func RunDecisionMachine(candidates []CandidateConfig, scale Scale, ateLimit float64, seed int64) (*DecisionMachine, error) {
	if len(candidates) < 2 {
		return nil, errors.New("core: decision machine needs ≥2 candidates")
	}
	if ateLimit <= 0 {
		ateLimit = 0.05
	}
	seq, err := scale.Sequence()
	if err != nil {
		return nil, err
	}

	dm := &DecisionMachine{Candidates: candidates}

	// Measure every candidate once on the neutral harness.
	type measured struct {
		records []slambench.FrameRecord
		ate     float64
		ok      bool
	}
	ms := make([]measured, len(candidates))
	for i, c := range candidates {
		sys := slambench.NewKFusion(c.Config, seq)
		sum, err := (&slambench.Runner{}).Run(sys, seq)
		if err != nil {
			return nil, fmt.Errorf("core: candidate %q: %w", c.Name, err)
		}
		ms[i] = measured{
			records: sum.Records,
			ate:     sum.ATE.Max,
			ok:      sum.TrackedFraction >= 0.5 && sum.ATE.Max <= ateLimit,
		}
		dm.CandidateATE = append(dm.CandidateATE, sum.ATE.Max)
	}

	// Per-device choice: among accuracy-feasible candidates, prefer the
	// highest-quality one that sustains 30 FPS; if none does, take the
	// fastest feasible one.
	var X [][]float64
	var y []int
	classNames := make([]string, len(candidates))
	for i, c := range candidates {
		classNames[i] = c.Name
	}
	for _, p := range phones.Catalogue(seed) {
		m := device.NewModel(p)
		best := -1
		bestFPS := 0.0
		// Candidates are ordered from highest to lowest quality.
		for i := range candidates {
			if !ms[i].ok {
				continue
			}
			lat := meanLatency(m, ms[i].records)
			if lat <= 0 {
				continue
			}
			fps := 1 / lat
			if fps >= 30 {
				best = i
				bestFPS = fps
				break // highest-quality real-time candidate wins
			}
			if fps > bestFPS {
				best = i
				bestFPS = fps
			}
		}
		dm.Choices = append(dm.Choices, DeviceChoice{
			Device: p.Name, Year: p.Year, Choice: best, FPS: bestFPS,
		})
		if best >= 0 {
			X = append(X, deviceFeatures(p))
			y = append(y, best)
		}
	}
	if len(X) < 10 {
		return nil, errors.New("core: too few devices with a feasible candidate")
	}

	tree, err := rf.FitClassification(X, y, classNames,
		rf.TreeConfig{MaxDepth: 3, MinLeaf: 3}, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	dm.Tree = tree
	dm.Rules = tree.Rules(deviceFeatureNames())
	dm.TrainAccuracy = tree.Accuracy(X, y)
	return dm, nil
}

// Recommend returns the candidate index for an arbitrary device profile.
func (dm *DecisionMachine) Recommend(p device.Profile) int {
	return dm.Tree.Predict(deviceFeatures(p))
}
