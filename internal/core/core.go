// Package core wires the whole reproduction together: it defines the
// paper's design space over KinectFusion's algorithmic parameters, the
// evaluator that runs the real pipeline on the modelled device, and one
// entry point per figure/claim of the paper:
//
//   - Fig1: run the default configuration and collect the GUI metrics.
//   - Fig2: random sampling + active learning over the design space
//     (left pane: runtime-vs-MaxATE scatter) and decision-tree knowledge
//     extraction (right pane).
//   - Headline: default vs tuned configuration on the ODROID-XU3 model —
//     the 4.8× execution-time and 2.8× power improvements.
//   - Fig3: the tuned configuration replayed across the 83-phone
//     catalogue, reported as per-device speed-ups.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"

	"slamgo/internal/dataset"
	"slamgo/internal/device"
	"slamgo/internal/hypermapper"
	"slamgo/internal/kfusion"
	"slamgo/internal/slambench"
)

// Scale fixes the evaluation workload. The paper uses ICL-NUIM 640×480
// sequences; pure-Go experiments default to QVGA with fewer frames, which
// preserves every trade-off shape while keeping wall-clock reasonable.
type Scale struct {
	Width, Height int
	Frames        int
	Noisy         bool
	Seed          int64
	KT            int // which kt trajectory (living room 0-3, office 0-1)
	// Office selects the office-room scene instead of the living room.
	Office bool
}

// DefaultScale is the standard experiment workload.
func DefaultScale() Scale {
	return Scale{Width: 320, Height: 240, Frames: 40, Noisy: true, Seed: 42, KT: 0}
}

// QuickScale is a reduced workload for tests and benchmarks.
func QuickScale() Scale {
	return Scale{Width: 160, Height: 120, Frames: 16, Noisy: false, Seed: 42, KT: 0}
}

// CacheKey is the canonical content address of the Scale's rendered
// sequence: a hash of every input that determines the frames — scene,
// trajectory, resolution, frame count, noise and seed, plus the FPS
// Sequence hard-codes and a render-semantics version to bump whenever
// the renderer's output changes for identical inputs. Two Scales with
// equal keys render bit-identical sequences (the determinism regression
// test pins this), which is what lets the rendered-sequence cache share
// one artifact across cells, stages and cooperating processes.
func (s Scale) CacheKey() string {
	h := sha256.New()
	scene := "livingroom"
	if s.Office {
		scene = "office"
	}
	fmt.Fprintf(h, "render-v1|scene=%s|kt=%d|w=%d|h=%d|frames=%d|fps=30|noisy=%t|seed=%d",
		scene, s.KT, s.Width, s.Height, s.Frames, s.Noisy, s.Seed)
	return "seq-" + hex.EncodeToString(h.Sum(nil))[:24]
}

// Sequence renders the scale's synthetic sequence.
func (s Scale) Sequence() (*dataset.MemorySequence, error) {
	opts := dataset.PresetOptions{
		Width: s.Width, Height: s.Height, Frames: s.Frames,
		FPS: 30, Noisy: s.Noisy, Seed: s.Seed,
	}
	if s.Office {
		return dataset.OfficeKT(s.KT, opts)
	}
	return dataset.LivingRoomKT(s.KT, opts)
}

// DSESpace returns the algorithmic parameter space of the paper's
// design-space exploration (PACT'16 / iWAPT'17 parameters).
func DSESpace() *hypermapper.Space {
	return &hypermapper.Space{Params: []hypermapper.Parameter{
		{Name: "volume_resolution", Kind: hypermapper.Ordinal,
			Choices: []float64{64, 96, 128, 192, 256}},
		{Name: "compute_size_ratio", Kind: hypermapper.Ordinal,
			Choices: []float64{1, 2, 4, 8}},
		{Name: "mu_distance", Kind: hypermapper.Ordinal,
			Choices: []float64{0.025, 0.05, 0.1, 0.2, 0.3}},
		{Name: "icp_threshold", Kind: hypermapper.Ordinal,
			Choices: []float64{1e-6, 1e-5, 1e-4, 1e-3}},
		{Name: "pyramid_iter_l0", Kind: hypermapper.Integer, Min: 0, Max: 10},
		{Name: "pyramid_iter_l1", Kind: hypermapper.Integer, Min: 0, Max: 5},
		{Name: "pyramid_iter_l2", Kind: hypermapper.Integer, Min: 0, Max: 4},
		{Name: "integration_rate", Kind: hypermapper.Ordinal,
			Choices: []float64{1, 2, 3, 5, 8}},
		{Name: "tracking_rate", Kind: hypermapper.Ordinal,
			Choices: []float64{1, 2, 5}},
	}}
}

// ConfigFromPoint maps a design-space point onto a pipeline Config,
// starting from the default configuration.
func ConfigFromPoint(space *hypermapper.Space, pt hypermapper.Point) (kfusion.Config, error) {
	cfg := kfusion.DefaultConfig()
	get := func(name string) (float64, error) {
		i := space.Index(name)
		if i < 0 || i >= len(pt) {
			return 0, fmt.Errorf("core: point missing parameter %q", name)
		}
		return pt[i], nil
	}
	var err error
	read := func(name string) float64 {
		v, e := get(name)
		if e != nil && err == nil {
			err = e
		}
		return v
	}
	cfg.VolumeResolution = int(read("volume_resolution"))
	cfg.ComputeSizeRatio = int(read("compute_size_ratio"))
	cfg.Mu = read("mu_distance")
	cfg.ICPThreshold = read("icp_threshold")
	cfg.PyramidIterations = [3]int{
		int(read("pyramid_iter_l0")),
		int(read("pyramid_iter_l1")),
		int(read("pyramid_iter_l2")),
	}
	cfg.IntegrationRate = int(read("integration_rate"))
	cfg.TrackingRate = int(read("tracking_rate"))
	if err != nil {
		return kfusion.Config{}, err
	}
	// A point with all pyramid levels disabled is representable in the
	// space but meaningless: give it the minimal tracker.
	if cfg.PyramidIterations == [3]int{0, 0, 0} {
		cfg.PyramidIterations = [3]int{1, 0, 0}
	}
	return cfg, cfg.Validate()
}

// DefaultPoint encodes the stock KinectFusion configuration as a design
// point (the "default configuration" marker of Figure 2).
func DefaultPoint(space *hypermapper.Space) hypermapper.Point {
	def := kfusion.DefaultConfig()
	pt := make(hypermapper.Point, len(space.Params))
	set := func(name string, v float64) {
		if i := space.Index(name); i >= 0 {
			pt[i] = v
		}
	}
	set("volume_resolution", float64(def.VolumeResolution))
	set("compute_size_ratio", float64(def.ComputeSizeRatio))
	set("mu_distance", def.Mu)
	set("icp_threshold", def.ICPThreshold)
	set("pyramid_iter_l0", float64(def.PyramidIterations[0]))
	set("pyramid_iter_l1", float64(def.PyramidIterations[1]))
	set("pyramid_iter_l2", float64(def.PyramidIterations[2]))
	set("integration_rate", float64(def.IntegrationRate))
	set("tracking_rate", float64(def.TrackingRate))
	return pt
}

// Evaluate runs one configuration over a sequence on the modelled device
// and returns the DSE metrics. Runs that lose tracking on most frames
// are flagged Failed (the paper's DSE similarly discards broken runs).
func Evaluate(seq dataset.Sequence, model *device.Model, cfg kfusion.Config) hypermapper.Metrics {
	sys := slambench.NewKFusion(cfg, seq)
	runner := &slambench.Runner{Model: model}
	sum, err := runner.Run(sys, seq)
	if err != nil {
		return hypermapper.Metrics{Failed: true}
	}
	m := hypermapper.Metrics{
		Runtime: sum.SimMeanLatency,
		MaxATE:  sum.ATE.Max,
		Power:   sum.SimMeanPower,
		Energy:  sum.SimTotalEnergy,
	}
	if sum.TrackedFraction < 0.5 {
		m.Failed = true
	}
	return m
}

// NewEvaluator binds a sequence and device model into a hypermapper
// Evaluator over the DSE space.
func NewEvaluator(space *hypermapper.Space, seq dataset.Sequence, model *device.Model) hypermapper.Evaluator {
	return func(pt hypermapper.Point) hypermapper.Metrics {
		cfg, err := ConfigFromPoint(space, pt)
		if err != nil {
			return hypermapper.Metrics{Failed: true}
		}
		return Evaluate(seq, model, cfg)
	}
}

// FidelityOptions configure the multi-fidelity evaluation ladder.
type FidelityOptions struct {
	// Stride subsamples the sequence for the low-fidelity pass; values
	// ≤ 1 disable the ladder (every evaluation runs at full fidelity).
	Stride int
	// PromoteFraction is the share of each batch promoted to a
	// full-fidelity run (default 0.25).
	PromoteFraction float64
	// AccuracyLimit, when > 0, makes the promotion ranking
	// constraint-aware: candidates whose low-fidelity max ATE exceeds
	// the limit rank behind every feasible one.
	AccuracyLimit float64
	// Workers bounds the ladder's evaluation parallelism.
	Workers int
	// WrapEval, when non-nil, wraps each rung's base evaluator before
	// it is memoized — fidelity is "full" or "low". The campaign
	// engine's simulation-counting instrumentation plugs in here;
	// because the wrap sits under the memo, cache hits never pass
	// through it.
	WrapEval func(fidelity string, eval hypermapper.Evaluator) hypermapper.Evaluator
	// Memo, when non-nil, constructs each rung's memo evaluator from
	// its (already wrapped) base evaluator — fidelity is "full" or
	// "low". The campaign engine plugs in here to back both rungs with
	// the persistent evaluation store (a full-fidelity rung keyed at
	// stride 1, a low rung at the ladder's stride); nil gets a plain
	// in-memory hypermapper.NewMemoEvaluator.
	Memo func(fidelity string, eval hypermapper.Evaluator) *hypermapper.MemoEvaluator
}

// FidelityRank is the constraint-aware promotion ranking of the
// multi-fidelity ladder (lower is more promising): failed runs rank
// last, candidates whose low-fidelity max ATE exceeds the limit rank
// behind every feasible one (closest to the bound first), and feasible
// candidates rank by runtime. It is shared by the intra-cell ladder
// (NewMultiFidelityEvaluator) and the campaign engine's cell
// explorations so both promote identically.
func FidelityRank(limit float64) func(hypermapper.Metrics) float64 {
	return func(m hypermapper.Metrics) float64 {
		switch {
		case m.Failed:
			return math.Inf(1)
		case m.MaxATE > limit:
			// Infeasible at low fidelity: rank behind every feasible
			// candidate, closest to the bound first.
			return 1e6 + (m.MaxATE - limit)
		default:
			return m.Runtime
		}
	}
}

// NewMultiFidelityEvaluator builds the evaluation ladder over the DSE
// space: a memoized low-fidelity evaluator on the stride-subsampled
// sequence screens every candidate, and a memoized full-fidelity
// evaluator measures only the promoted share of each batch. Both memos
// are content-addressed on the encoded point, so no configuration is
// ever simulated twice at the same fidelity. The returned MultiFidelity
// plugs into hypermapper.OptimizerConfig.BatchEval; full is the
// memoized full-fidelity evaluator for point queries (default marker,
// random baselines) that should share the cache.
func NewMultiFidelityEvaluator(space *hypermapper.Space, seq dataset.Sequence, model *device.Model, opts FidelityOptions) (ladder *hypermapper.MultiFidelity, full hypermapper.Evaluator) {
	highBase := NewEvaluator(space, seq, model)
	lowBase := NewEvaluator(space, slambench.Subsample(seq, opts.Stride), model)
	if opts.WrapEval != nil {
		highBase = opts.WrapEval("full", highBase)
		lowBase = opts.WrapEval("low", lowBase)
	}
	newMemo := opts.Memo
	if newMemo == nil {
		newMemo = func(_ string, eval hypermapper.Evaluator) *hypermapper.MemoEvaluator {
			return hypermapper.NewMemoEvaluator(eval)
		}
	}
	high := newMemo("full", highBase)
	low := newMemo("low", lowBase)
	var rank func(hypermapper.Metrics) float64
	if opts.AccuracyLimit > 0 {
		rank = FidelityRank(opts.AccuracyLimit)
	}
	return &hypermapper.MultiFidelity{
		Low:             low.Evaluate,
		High:            high.Evaluate,
		PromoteFraction: opts.PromoteFraction,
		Rank:            rank,
		Workers:         opts.Workers,
	}, high.Evaluate
}
