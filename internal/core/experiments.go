package core

import (
	"fmt"
	"math"
	"sort"

	"slamgo/internal/dataset"
	"slamgo/internal/device"
	"slamgo/internal/hypermapper"
	"slamgo/internal/kfusion"
	"slamgo/internal/parallel"
	"slamgo/internal/phones"
	"slamgo/internal/rf"
	"slamgo/internal/slambench"
)

// Fig1Result is the default-configuration run with the GUI metrics
// (Figure 1's live read-outs).
type Fig1Result struct {
	Summary *slambench.Summary
}

// RunFig1 benchmarks the default configuration on the scale's sequence
// over the XU3 model.
func RunFig1(scale Scale) (*Fig1Result, error) {
	seq, err := scale.Sequence()
	if err != nil {
		return nil, err
	}
	model := device.NewModel(device.OdroidXU3())
	runner := &slambench.Runner{Model: model}
	sum, err := runner.Run(slambench.NewKFusion(kfusion.DefaultConfig(), seq), seq)
	if err != nil {
		return nil, err
	}
	return &Fig1Result{Summary: sum}, nil
}

// Fig2Options parameterise the DSE experiment.
type Fig2Options struct {
	Scale Scale
	// RandomSamples / ActiveIterations / BatchPerIteration follow the
	// optimizer; zero values use small defaults suited to the scale.
	RandomSamples     int
	ActiveIterations  int
	BatchPerIteration int
	// AccuracyLimit is the feasibility bound (paper: 0.05 m).
	AccuracyLimit float64
	Seed          int64
	// Workers bounds how many configurations are evaluated concurrently
	// (and the parallelism of surrogate fitting); 0 means GOMAXPROCS.
	// The exploration result is identical for any value.
	Workers int
	// FidelityStride > 1 enables the multi-fidelity evaluation ladder:
	// candidates are screened on a sequence subsampled by this stride
	// and only the most promising share of each batch is promoted to a
	// full-fidelity run.
	FidelityStride int
	// PromoteFraction is the promoted share per batch (default 0.25).
	PromoteFraction float64
	Log             func(string)
}

// DefaultFig2Options returns the standard experiment setup.
func DefaultFig2Options() Fig2Options {
	return Fig2Options{
		Scale:             DefaultScale(),
		RandomSamples:     20,
		ActiveIterations:  5,
		BatchPerIteration: 4,
		AccuracyLimit:     0.05,
		Seed:              1,
	}
}

// Fig2Result carries both panes of Figure 2.
type Fig2Result struct {
	Space *hypermapper.Space
	// Active is the random+active exploration (the paper's method).
	Active *hypermapper.Result
	// RandomOnly is the same budget spent purely at random (baseline).
	RandomOnly []hypermapper.Observation
	// DefaultMetrics is the stock configuration's measurement (the
	// "default configuration" marker in the scatter).
	DefaultMetrics hypermapper.Metrics
	// BestFeasible is the fastest configuration meeting the accuracy
	// limit found by the active run.
	BestFeasible    hypermapper.Observation
	HasBestFeasible bool
	// ActiveFullEvals is the number of full-fidelity simulations the
	// active run actually spent (with the multi-fidelity ladder this is
	// the promoted count, not the observation count — low-fidelity
	// screening runs are cheaper by the stride and budgeted separately).
	ActiveFullEvals int
	// ActiveLowEvals is the number of low-fidelity screening runs (0
	// without the ladder).
	ActiveLowEvals int
	// BaselineBudget is the full-fidelity simulation budget granted to
	// the random baseline — equal to ActiveFullEvals, so the comparison
	// is same-cost.
	BaselineBudget int
	// Knowledge is the decision tree + extracted rules (right pane).
	Knowledge []rf.Rule
	Tree      *rf.ClassificationTree
	// RuntimeImportance and ATEImportance are per-parameter sensitivity
	// scores (mean decrease in impurity of a forest fit on each
	// objective) — the "which knobs matter" analysis HyperMapper reports.
	RuntimeImportance map[string]float64
	ATEImportance     map[string]float64
	// AccuracyLimit echoes the option used.
	AccuracyLimit float64
}

// RunFig2 executes the full DSE experiment.
func RunFig2(opts Fig2Options) (*Fig2Result, error) {
	if opts.AccuracyLimit <= 0 {
		opts.AccuracyLimit = 0.05
	}
	seq, err := opts.Scale.Sequence()
	if err != nil {
		return nil, err
	}
	model := device.NewModel(device.OdroidXU3())
	space := DSESpace()

	// Every full-fidelity measurement flows through one content-addressed
	// memo, so a configuration re-sampled anywhere in the experiment —
	// active batches, the random-only baseline, the default marker — is
	// simulated exactly once.
	var eval hypermapper.Evaluator
	var ladder *hypermapper.MultiFidelity
	if opts.FidelityStride > 1 {
		ladder, eval = NewMultiFidelityEvaluator(space, seq, model, FidelityOptions{
			Stride:          opts.FidelityStride,
			PromoteFraction: opts.PromoteFraction,
			AccuracyLimit:   opts.AccuracyLimit,
			Workers:         opts.Workers,
		})
	} else {
		eval = hypermapper.NewMemoEvaluator(NewEvaluator(space, seq, model)).Evaluate
	}

	cfg := hypermapper.DefaultOptimizerConfig()
	if opts.RandomSamples > 0 {
		cfg.RandomSamples = opts.RandomSamples
	}
	if opts.ActiveIterations > 0 {
		cfg.ActiveIterations = opts.ActiveIterations
	}
	if opts.BatchPerIteration > 0 {
		cfg.BatchPerIteration = opts.BatchPerIteration
	}
	cfg.Seed = opts.Seed
	cfg.Log = opts.Log
	cfg.Workers = opts.Workers
	cfg.ConstraintObjective = 1 // MaxATE
	cfg.ConstraintLimit = opts.AccuracyLimit
	if ladder != nil {
		cfg.BatchEval = ladder
	}

	active, err := hypermapper.Optimize(space, eval, cfg)
	if err != nil {
		return nil, err
	}

	res := &Fig2Result{
		Space:         space,
		Active:        active,
		AccuracyLimit: opts.AccuracyLimit,
	}

	// Same-budget random baseline, evaluated on the same worker pool.
	// The budget is denominated in *full-fidelity simulations actually
	// spent*: without the ladder that is every observation, but with it
	// only the promoted share of each batch ran the full sequence —
	// counting observations would hand the baseline a full run for every
	// cheap screening run and silently inflate its budget.
	budget := len(active.Observations)
	if ladder != nil {
		low, high := ladder.Stats()
		res.ActiveLowEvals = low
		budget = high
	}
	if budget < 1 {
		budget = 1
	}
	res.ActiveFullEvals = budget
	res.BaselineBudget = budget
	rng := newRng(opts.Seed + 7777)
	randomPts := space.SampleN(budget, rng)
	pe := hypermapper.ParallelEvaluator{Eval: eval, Workers: opts.Workers}
	for i, m := range pe.EvalAll(randomPts) {
		res.RandomOnly = append(res.RandomOnly, hypermapper.Observation{X: randomPts[i], M: m})
	}

	// Default configuration marker.
	res.DefaultMetrics = eval(DefaultPoint(space))

	// Best feasible configuration.
	best, ok := hypermapper.Best(active.Observations,
		hypermapper.AccuracyLimit(opts.AccuracyLimit),
		func(m hypermapper.Metrics) float64 { return m.Runtime })
	res.BestFeasible = best
	res.HasBestFeasible = ok

	// Knowledge extraction over everything evaluated at full fidelity.
	// Low-fidelity screening runs are surrogate fuel only: PaperClasses
	// labels use absolute FPS/ATE thresholds, so subsampled metrics
	// would systematically mislabel the rules (and skew importance).
	var all []hypermapper.Observation
	for _, o := range append(append([]hypermapper.Observation(nil), active.Observations...), res.RandomOnly...) {
		if !o.M.LowFidelity {
			all = append(all, o)
		}
	}
	label, names := hypermapper.PaperClasses(opts.AccuracyLimit, 30, 3.0)
	tree, rules, err := hypermapper.Knowledge(space, all, label, names, 3)
	if err == nil {
		res.Tree = tree
		res.Knowledge = rules
	}

	// Parameter sensitivity from forests fit on each objective.
	res.RuntimeImportance = parameterImportance(space, all, func(m hypermapper.Metrics) float64 { return m.Runtime })
	res.ATEImportance = parameterImportance(space, all, func(m hypermapper.Metrics) float64 { return m.MaxATE })
	return res, nil
}

// parameterImportance fits a forest on one objective over the evaluated
// points and returns the named mean-decrease-in-impurity scores.
func parameterImportance(space *hypermapper.Space, obs []hypermapper.Observation, key func(hypermapper.Metrics) float64) map[string]float64 {
	var X [][]float64
	var y []float64
	for _, o := range obs {
		if o.M.Failed || o.M.LowFidelity {
			continue
		}
		X = append(X, o.X)
		y = append(y, key(o.M))
	}
	if len(X) < 10 {
		return nil
	}
	cfg := rf.DefaultForestConfig()
	cfg.Tree.MTry = len(space.Params)
	f, err := rf.FitForest(X, y, cfg)
	if err != nil {
		return nil
	}
	out := map[string]float64{}
	for i, v := range f.Importance() {
		out[space.Params[i].Name] = v
	}
	return out
}

// HeadlineResult quantifies the paper's headline claim on the XU3 model.
type HeadlineResult struct {
	// Default is the stock configuration at the nominal operating point.
	Default hypermapper.Metrics
	// TunedPerf is the best feasible configuration at the nominal point.
	TunedPerf hypermapper.Metrics
	// TunedLowPower is the same configuration at the lowest operating
	// point that still meets real time (the paper's ~1 W story); falls
	// back to nominal when no point qualifies.
	TunedLowPower      hypermapper.Metrics
	TunedPoint         string
	Speedup            float64
	PowerReduction     float64
	TunedConfig        kfusion.Config
	TunedFPS           float64
	TunedMeetsRealTime bool
}

// RunHeadline derives the headline numbers from a Fig2 exploration.
func RunHeadline(fig2 *Fig2Result, scale Scale) (*HeadlineResult, error) {
	if !fig2.HasBestFeasible {
		return nil, fmt.Errorf("core: exploration found no configuration with max ATE ≤ %.3f", fig2.AccuracyLimit)
	}
	seq, err := scale.Sequence()
	if err != nil {
		return nil, err
	}
	tunedCfg, err := ConfigFromPoint(fig2.Space, fig2.BestFeasible.X)
	if err != nil {
		return nil, err
	}
	defCfg := kfusion.DefaultConfig()

	nominal := device.NewModel(device.OdroidXU3())
	res := &HeadlineResult{
		Default:     Evaluate(seq, nominal, defCfg),
		TunedPerf:   Evaluate(seq, nominal, tunedCfg),
		TunedConfig: tunedCfg,
		TunedPoint:  "nominal",
	}
	res.TunedLowPower = res.TunedPerf

	// Sweep operating points from slowest to fastest; keep the lowest-
	// power one that still sustains the sensor rate and accuracy.
	type cand struct {
		name string
		m    hypermapper.Metrics
	}
	var feasible []cand
	for _, opName := range nominal.Points() {
		m, err := nominal.AtPoint(opName)
		if err != nil {
			continue
		}
		met := Evaluate(seq, m, tunedCfg)
		if met.Failed || met.MaxATE > fig2.AccuracyLimit {
			continue
		}
		if met.Runtime > 0 && 1/met.Runtime >= 30 {
			feasible = append(feasible, cand{opName, met})
		}
	}
	sort.Slice(feasible, func(i, j int) bool { return feasible[i].m.Power < feasible[j].m.Power })
	if len(feasible) > 0 {
		res.TunedLowPower = feasible[0].m
		res.TunedPoint = feasible[0].name
	}

	if res.TunedPerf.Runtime > 0 {
		res.Speedup = res.Default.Runtime / res.TunedPerf.Runtime
	}
	if res.TunedLowPower.Power > 0 {
		res.PowerReduction = res.Default.Power / res.TunedLowPower.Power
	}
	if res.TunedLowPower.Runtime > 0 {
		res.TunedFPS = 1 / res.TunedLowPower.Runtime
		res.TunedMeetsRealTime = res.TunedFPS >= 30
	}
	return res, nil
}

// PhoneSpeedup is one bar of Figure 3.
type PhoneSpeedup struct {
	Device  string
	Year    int
	Speedup float64
	// DefaultFPS and TunedFPS are the simulated frame rates.
	DefaultFPS, TunedFPS float64
}

// Fig3Result is the full phone-sweep outcome.
type Fig3Result struct {
	Phones                 []PhoneSpeedup
	Mean, Median, Min, Max float64
}

// RunFig3 replays the default and tuned configurations across the
// 83-phone catalogue. Per-frame kernel costs are measured once per
// configuration (they are device-independent); each phone model then
// converts them to latency.
func RunFig3(tuned kfusion.Config, scale Scale, seed int64) (*Fig3Result, error) {
	seq, err := scale.Sequence()
	if err != nil {
		return nil, err
	}
	defCosts, err := frameCosts(seq, kfusion.DefaultConfig())
	if err != nil {
		return nil, err
	}
	tunedCosts, err := frameCosts(seq, tuned)
	if err != nil {
		return nil, err
	}

	res := &Fig3Result{Min: math.Inf(1), Max: math.Inf(-1)}
	// Each phone's replay is independent: fan the catalogue out across
	// the worker pool and aggregate in catalogue order.
	perPhone := parallel.MapOrdered(0, phones.Catalogue(seed), func(_ int, p device.Profile) PhoneSpeedup {
		m := device.NewModel(p)
		d := meanLatency(m, defCosts)
		t := meanLatency(m, tunedCosts)
		if t <= 0 {
			return PhoneSpeedup{}
		}
		return PhoneSpeedup{
			Device:     p.Name,
			Year:       p.Year,
			Speedup:    d / t,
			DefaultFPS: 1 / d,
			TunedFPS:   1 / t,
		}
	})
	var speeds []float64
	for _, ps := range perPhone {
		if ps.Speedup <= 0 {
			continue
		}
		res.Phones = append(res.Phones, ps)
		speeds = append(speeds, ps.Speedup)
		if ps.Speedup < res.Min {
			res.Min = ps.Speedup
		}
		if ps.Speedup > res.Max {
			res.Max = ps.Speedup
		}
	}
	if len(speeds) == 0 {
		return nil, fmt.Errorf("core: phone sweep produced no results")
	}
	sort.Float64s(speeds)
	for _, s := range speeds {
		res.Mean += s
	}
	res.Mean /= float64(len(speeds))
	res.Median = speeds[len(speeds)/2]
	return res, nil
}

// frameCosts runs one configuration over the sequence and returns the
// per-frame arithmetic costs.
func frameCosts(seq dataset.Sequence, cfg kfusion.Config) ([]slambench.FrameRecord, error) {
	sys := slambench.NewKFusion(cfg, seq)
	runner := &slambench.Runner{}
	sum, err := runner.Run(sys, seq)
	if err != nil {
		return nil, err
	}
	return sum.Records, nil
}

func meanLatency(m *device.Model, records []slambench.FrameRecord) float64 {
	if len(records) == 0 {
		return 0
	}
	total := 0.0
	for _, r := range records {
		total += m.ExecuteFrame(r.Cost, 1.0/30).Latency
	}
	return total / float64(len(records))
}
