package core

import "math/rand"

// newRng builds a deterministic rand source for experiment baselines.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
