package core

import (
	"crypto/sha256"
	"runtime"
	"testing"

	"slamgo/internal/seqcache"
)

// renderDigest renders the scale and hashes the frames through the
// cache's canonical byte serialisation (raw float32 depth, raw float64
// poses — nothing quantised), so two digests are equal exactly when the
// renders are bit-identical.
func renderDigest(t *testing.T, s Scale) [sha256.Size]byte {
	t.Helper()
	seq, err := s.Sequence()
	if err != nil {
		t.Fatalf("Sequence(%+v): %v", s, err)
	}
	return sha256.Sum256(seqcache.Encode("digest", seq))
}

// TestSequenceRenderDeterministic is the regression test the
// rendered-sequence cache's correctness rests on: Scale.Sequence must
// render bit-identical frames on every call and under any degree of
// parallelism, or cached and uncached campaigns would diverge in their
// last floating-point bits. It pins clean and noisy scales on both
// scenes (the noise path is seeded, the render path is parallel over
// rows — both must be schedule-independent).
func TestSequenceRenderDeterministic(t *testing.T) {
	scales := []Scale{
		{Width: 64, Height: 48, Frames: 3, Noisy: false, Seed: 42, KT: 1},
		{Width: 64, Height: 48, Frames: 3, Noisy: true, Seed: 7, KT: 0},
		{Width: 64, Height: 48, Frames: 3, Noisy: true, Seed: 7, KT: 0, Office: true},
	}
	for _, s := range scales {
		first := renderDigest(t, s)
		if second := renderDigest(t, s); second != first {
			t.Fatalf("scale %+v: repeated renders differ", s)
		}
		// Serialise the scheduler: row-parallel rendering and seeded
		// noise must not depend on how many frames render concurrently.
		prev := runtime.GOMAXPROCS(1)
		serial := renderDigest(t, s)
		runtime.GOMAXPROCS(prev)
		if serial != first {
			t.Fatalf("scale %+v: render differs between GOMAXPROCS=1 and %d", s, prev)
		}
	}
}

// TestCacheKeyCoversEveryRenderInput pins that the cache key separates
// every Scale field that changes the rendered frames: two scales whose
// keys collide would silently share one cache artifact.
func TestCacheKeyCoversEveryRenderInput(t *testing.T) {
	base := Scale{Width: 64, Height: 48, Frames: 3, Noisy: false, Seed: 42, KT: 0}
	variants := map[string]Scale{}
	for name, mut := range map[string]func(*Scale){
		"width":  func(s *Scale) { s.Width = 65 },
		"height": func(s *Scale) { s.Height = 49 },
		"frames": func(s *Scale) { s.Frames = 4 },
		"noisy":  func(s *Scale) { s.Noisy = true },
		"seed":   func(s *Scale) { s.Seed = 43 },
		"kt":     func(s *Scale) { s.KT = 1 },
		"office": func(s *Scale) { s.Office = true },
	} {
		v := base
		mut(&v)
		variants[name] = v
	}
	baseKey := base.CacheKey()
	if baseKey != base.CacheKey() {
		t.Fatal("CacheKey is not stable")
	}
	seen := map[string]string{baseKey: "base"}
	for name, v := range variants {
		k := v.CacheKey()
		if prev, dup := seen[k]; dup {
			t.Fatalf("scales %q and %q share cache key %s", name, prev, k)
		}
		seen[k] = name
	}
}
