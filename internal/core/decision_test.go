package core

import (
	"testing"

	"slamgo/internal/device"
	"slamgo/internal/phones"
)

func TestRunDecisionMachine(t *testing.T) {
	scale := QuickScale()
	scale.Frames = 12
	dm, err := RunDecisionMachine(DefaultCandidates(), scale, 0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(dm.Choices) != phones.CatalogueSize {
		t.Fatalf("choices %d", len(dm.Choices))
	}
	if len(dm.Rules) == 0 {
		t.Fatal("no rules")
	}
	if dm.TrainAccuracy < 0.6 {
		t.Fatalf("decision tree accuracy %v", dm.TrainAccuracy)
	}

	// Flagships get richer configurations than entry-level hardware.
	choiceOf := func(name string) int {
		for _, c := range dm.Choices {
			if c.Device == name {
				return c.Choice
			}
		}
		t.Fatalf("device %s missing", name)
		return -1
	}
	slow := choiceOf("galaxy-s3-mali400")
	fast := choiceOf("pixel2-adreno540")
	if slow < 0 || fast < 0 {
		t.Fatalf("no feasible candidate: slow=%d fast=%d", slow, fast)
	}
	// Candidates are ordered quality→minimal, so the flagship's index
	// must not be worse (larger) than the 2012 phone's.
	if fast > slow {
		t.Fatalf("flagship recommended lower quality (%d) than entry phone (%d)", fast, slow)
	}

	// The recommender generalises to an unseen profile: something
	// desktop-class must get the highest-quality feasible config class.
	rec := dm.Recommend(device.DesktopGPU())
	if rec < 0 || rec >= len(dm.Candidates) {
		t.Fatalf("recommendation out of range: %d", rec)
	}
	if rec > fast {
		t.Fatalf("desktop (%d) recommended lower quality than a flagship (%d)", rec, fast)
	}
}

func TestRunDecisionMachineValidation(t *testing.T) {
	if _, err := RunDecisionMachine(nil, QuickScale(), 0.05, 1); err == nil {
		t.Fatal("no candidates accepted")
	}
	if _, err := RunDecisionMachine(DefaultCandidates()[:1], QuickScale(), 0.05, 1); err == nil {
		t.Fatal("single candidate accepted")
	}
}
