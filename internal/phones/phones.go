// Package phones provides the 83-device catalogue standing in for the
// paper's crowdsourced Android population (Figure 3). The paper gathered
// KinectFusion timings from 83 market smartphones and tablets via a Play
// Store app; we cannot crowdsource, so we synthesise a population of
// device profiles whose capability spread matches the 2012-2017 mobile
// SoC landscape:
//
//   - effective GPU throughput from ~0.2 Gop/s (2012 entry level) to
//     ~10 Gop/s (2017 flagship),
//   - memory bandwidth from ~1 to ~25 GB/s,
//   - per-frame driver/dispatch overhead from 1 to 25 ms (the dominant
//     source of cross-device speed-up variance once kernels get cheap),
//   - full-tilt power between 1.5 and 6 W.
//
// A handful of named anchors (well-known SoCs) pin the distribution; the
// rest are drawn reproducibly around year-class medians.
package phones

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"slamgo/internal/device"
)

// CatalogueSize is the number of devices in the paper's Figure 3.
const CatalogueSize = 83

// anchor devices pin the capability range to recognisable hardware.
var anchors = []device.Profile{
	{Name: "galaxy-s3-mali400", Year: 2012, GopsPeak: 0.25, BandwidthGBs: 1.6, StaticWatts: 0.25, DynamicWatts: 2.0, FrameOverheadSec: 0.022},
	{Name: "nexus-4-adreno320", Year: 2013, GopsPeak: 0.5, BandwidthGBs: 2.1, StaticWatts: 0.3, DynamicWatts: 2.4, FrameOverheadSec: 0.016},
	{Name: "galaxy-s5-adreno330", Year: 2014, GopsPeak: 1.1, BandwidthGBs: 3.6, StaticWatts: 0.3, DynamicWatts: 2.8, FrameOverheadSec: 0.011},
	{Name: "note4-mali-t760", Year: 2014, GopsPeak: 1.4, BandwidthGBs: 4.2, StaticWatts: 0.35, DynamicWatts: 3.2, FrameOverheadSec: 0.010},
	{Name: "nexus-6p-adreno430", Year: 2015, GopsPeak: 2.4, BandwidthGBs: 6.5, StaticWatts: 0.4, DynamicWatts: 3.8, FrameOverheadSec: 0.007},
	{Name: "galaxy-s7-mali-t880", Year: 2016, GopsPeak: 4.2, BandwidthGBs: 11.0, StaticWatts: 0.4, DynamicWatts: 4.2, FrameOverheadSec: 0.005},
	{Name: "pixel-adreno530", Year: 2016, GopsPeak: 4.8, BandwidthGBs: 12.5, StaticWatts: 0.45, DynamicWatts: 4.5, FrameOverheadSec: 0.004},
	{Name: "galaxy-s8-mali-g71", Year: 2017, GopsPeak: 7.5, BandwidthGBs: 18.0, StaticWatts: 0.45, DynamicWatts: 5.0, FrameOverheadSec: 0.003},
	{Name: "pixel2-adreno540", Year: 2017, GopsPeak: 9.0, BandwidthGBs: 22.0, StaticWatts: 0.5, DynamicWatts: 5.2, FrameOverheadSec: 0.003},
}

// yearClass summarises the median capability of one market year.
type yearClass struct {
	year     int
	gops     float64
	bw       float64
	overhead float64
	dynWatts float64
	share    float64 // fraction of the installed base
}

var classes = []yearClass{
	{2012, 0.3, 1.8, 0.020, 2.0, 0.10},
	{2013, 0.6, 2.5, 0.015, 2.4, 0.15},
	{2014, 1.2, 4.0, 0.011, 2.9, 0.20},
	{2015, 2.2, 6.5, 0.008, 3.6, 0.22},
	{2016, 4.0, 11.0, 0.005, 4.3, 0.20},
	{2017, 7.0, 18.0, 0.003, 5.0, 0.13},
}

// Catalogue generates the deterministic 83-device population for seed.
// The same seed always yields the same catalogue; anchors are always
// included.
func Catalogue(seed int64) []device.Profile {
	rng := rand.New(rand.NewSource(seed))
	out := append([]device.Profile(nil), anchors...)
	idx := 0
	for len(out) < CatalogueSize {
		// Pick a year class by share.
		r := rng.Float64()
		cls := classes[len(classes)-1]
		acc := 0.0
		for _, c := range classes {
			acc += c.share
			if r <= acc {
				cls = c
				break
			}
		}
		// Log-normal spread around the class median keeps the tail of
		// slow devices the crowdsourced data showed.
		spread := math.Exp(rng.NormFloat64() * 0.45)
		bwSpread := math.Exp(rng.NormFloat64() * 0.30)
		ovSpread := math.Exp(rng.NormFloat64() * 0.40)
		idx++
		p := device.Profile{
			Name:             fmt.Sprintf("phone-%d-%02d", cls.year, idx),
			Year:             cls.year,
			GopsPeak:         clampF(cls.gops*spread, 0.15, 12),
			BandwidthGBs:     clampF(cls.bw*bwSpread, 0.8, 28),
			StaticWatts:      0.25 + 0.05*rng.Float64(),
			DynamicWatts:     clampF(cls.dynWatts*math.Exp(rng.NormFloat64()*0.2), 1.2, 6.5),
			FrameOverheadSec: clampF(cls.overhead*ovSpread, 0.001, 0.035),
		}
		out = append(out, p)
	}
	// Stable, human-friendly order: by year then name.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Year != out[j].Year {
			return out[i].Year < out[j].Year
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ByName picks named profiles out of the seed's catalogue (the anchors
// are always present whatever the seed; generated names follow the
// phone-<year>-<nn> scheme), preserving the requested order — the
// device-target selection hook of cross-device DSE campaigns.
func ByName(seed int64, names ...string) ([]device.Profile, error) {
	cat := Catalogue(seed)
	byName := make(map[string]device.Profile, len(cat))
	for _, p := range cat {
		byName[p.Name] = p
	}
	out := make([]device.Profile, 0, len(names))
	for _, n := range names {
		p, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("phones: no device %q in the seed-%d catalogue", n, seed)
		}
		out = append(out, p)
	}
	return out, nil
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
