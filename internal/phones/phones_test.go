package phones

import (
	"testing"

	"slamgo/internal/imgproc"

	"slamgo/internal/device"
)

func TestCatalogueSizeAndDeterminism(t *testing.T) {
	a := Catalogue(1)
	b := Catalogue(1)
	if len(a) != CatalogueSize {
		t.Fatalf("size %d", len(a))
	}
	eq := func(x, y device.Profile) bool {
		return x.Name == y.Name && x.GopsPeak == y.GopsPeak &&
			x.BandwidthGBs == y.BandwidthGBs && x.DynamicWatts == y.DynamicWatts &&
			x.FrameOverheadSec == y.FrameOverheadSec
	}
	for i := range a {
		if !eq(a[i], b[i]) {
			t.Fatalf("catalogue not deterministic at %d", i)
		}
	}
	c := Catalogue(2)
	diff := false
	for i := range a {
		if !eq(a[i], c[i]) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical catalogues")
	}
}

func TestCatalogueAllValid(t *testing.T) {
	for _, p := range Catalogue(7) {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if p.Year < 2012 || p.Year > 2017 {
			t.Fatalf("%s: year %d", p.Name, p.Year)
		}
		if p.FrameOverheadSec <= 0 || p.FrameOverheadSec > 0.04 {
			t.Fatalf("%s: overhead %v", p.Name, p.FrameOverheadSec)
		}
	}
}

func TestCatalogueIncludesAnchors(t *testing.T) {
	names := map[string]bool{}
	for _, p := range Catalogue(3) {
		names[p.Name] = true
	}
	for _, a := range anchors {
		if !names[a.Name] {
			t.Fatalf("anchor %s missing", a.Name)
		}
	}
}

func TestCatalogueSpansCapabilityRange(t *testing.T) {
	cat := Catalogue(42)
	minG, maxG := cat[0].GopsPeak, cat[0].GopsPeak
	for _, p := range cat {
		if p.GopsPeak < minG {
			minG = p.GopsPeak
		}
		if p.GopsPeak > maxG {
			maxG = p.GopsPeak
		}
	}
	if maxG/minG < 10 {
		t.Fatalf("capability spread too narrow: %v to %v", minG, maxG)
	}
}

func TestCatalogueSortedByYear(t *testing.T) {
	cat := Catalogue(5)
	for i := 1; i < len(cat); i++ {
		if cat[i].Year < cat[i-1].Year {
			t.Fatal("catalogue not sorted by year")
		}
	}
}

func TestFlagshipsBeatEntryLevel(t *testing.T) {
	cat := Catalogue(11)
	cost := imgproc.Cost{Ops: 50e6, Bytes: 30e6}
	var old2012, new2017 float64
	var n12, n17 int
	for _, p := range cat {
		lat := device.NewModel(p).Latency(cost)
		switch p.Year {
		case 2012:
			old2012 += lat
			n12++
		case 2017:
			new2017 += lat
			n17++
		}
	}
	if n12 == 0 || n17 == 0 {
		t.Fatal("catalogue missing year classes")
	}
	if new2017/float64(n17) >= old2012/float64(n12) {
		t.Fatal("2017 phones not faster than 2012 phones on average")
	}
}

func TestByName(t *testing.T) {
	got, err := ByName(1, "pixel-adreno530", "galaxy-s3-mali400")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "pixel-adreno530" || got[1].Name != "galaxy-s3-mali400" {
		t.Fatalf("wrong picks: %+v", got)
	}
	// Anchors resolve for any seed.
	if _, err := ByName(99, "pixel-adreno530"); err != nil {
		t.Fatalf("anchor missing under another seed: %v", err)
	}
	if _, err := ByName(1, "no-such-device"); err == nil {
		t.Fatal("unknown device accepted")
	}
}
