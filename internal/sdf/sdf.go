// Package sdf implements analytic signed-distance fields: the geometric
// substrate from which slamgo renders its synthetic RGB-D sequences.
//
// The paper evaluates on ICL-NUIM, itself a *synthetic* dataset rendered
// from a 3D living-room model. We reproduce the same idea: a scene is a
// CSG tree of signed-distance primitives; the renderer in package synth
// sphere-traces camera rays against it to produce depth images with an
// exactly known ground-truth trajectory.
package sdf

import (
	"math"

	"slamgo/internal/math3"
)

// Field is a signed-distance field: negative inside, positive outside,
// zero on the surface. Distance must be a lower bound on the true
// Euclidean distance for sphere tracing to be correct (all primitives and
// combinators in this package satisfy that, except Intersect/Subtract
// which are conservative bounds as usual for CSG).
type Field interface {
	// Distance returns the signed distance from p to the surface.
	Distance(p math3.Vec3) float64
}

// Colored optionally attaches a surface colour to a field. Fields that do
// not implement it render mid-grey.
type Colored interface {
	Field
	// Color returns the RGB albedo (each in [0,1]) at surface point p.
	Color(p math3.Vec3) math3.Vec3
}

// Normal estimates the outward surface normal at p via central
// differences with step h.
func Normal(f Field, p math3.Vec3, h float64) math3.Vec3 {
	dx := f.Distance(p.Add(math3.V3(h, 0, 0))) - f.Distance(p.Sub(math3.V3(h, 0, 0)))
	dy := f.Distance(p.Add(math3.V3(0, h, 0))) - f.Distance(p.Sub(math3.V3(0, h, 0)))
	dz := f.Distance(p.Add(math3.V3(0, 0, h))) - f.Distance(p.Sub(math3.V3(0, 0, h)))
	return math3.V3(dx, dy, dz).Normalized()
}

// Sphere is a ball centred at C with radius R.
type Sphere struct {
	C math3.Vec3
	R float64
	// Albedo is the surface colour; the zero value renders grey.
	Albedo math3.Vec3
}

// Distance implements Field.
func (s Sphere) Distance(p math3.Vec3) float64 { return p.Sub(s.C).Norm() - s.R }

// Color implements Colored.
func (s Sphere) Color(math3.Vec3) math3.Vec3 { return defaultColor(s.Albedo) }

// Box is an axis-aligned box centred at C with half-extents H.
type Box struct {
	C, H   math3.Vec3
	Albedo math3.Vec3
}

// Distance implements Field.
func (b Box) Distance(p math3.Vec3) float64 {
	q := p.Sub(b.C).Abs().Sub(b.H)
	outside := q.Max(math3.Vec3{}).Norm()
	inside := math.Min(q.MaxComponent(), 0)
	return outside + inside
}

// Color implements Colored.
func (b Box) Color(math3.Vec3) math3.Vec3 { return defaultColor(b.Albedo) }

// Plane is the half-space below N·p = D (N must be unit).
type Plane struct {
	N      math3.Vec3
	D      float64
	Albedo math3.Vec3
}

// Distance implements Field.
func (pl Plane) Distance(p math3.Vec3) float64 { return pl.N.Dot(p) - pl.D }

// Color implements Colored.
func (pl Plane) Color(p math3.Vec3) math3.Vec3 {
	if pl.Albedo != (math3.Vec3{}) {
		return pl.Albedo
	}
	// Checkerboard so planes carry visual texture in rendered frames.
	cx := int(math.Floor(p.X * 2))
	cz := int(math.Floor(p.Z * 2))
	if (cx+cz)%2 == 0 {
		return math3.V3(0.65, 0.65, 0.65)
	}
	return math3.V3(0.45, 0.45, 0.45)
}

// Cylinder is an infinite cylinder along axis A through point C with
// radius R, capped to height H (half-height) when H > 0.
type Cylinder struct {
	C      math3.Vec3
	A      math3.Vec3 // unit axis
	R      float64
	H      float64 // half-height; <=0 means infinite
	Albedo math3.Vec3
}

// Distance implements Field.
func (c Cylinder) Distance(p math3.Vec3) float64 {
	d := p.Sub(c.C)
	along := d.Dot(c.A)
	radial := d.Sub(c.A.Scale(along)).Norm() - c.R
	if c.H <= 0 {
		return radial
	}
	dy := math.Abs(along) - c.H
	outR := math.Max(radial, 0)
	outY := math.Max(dy, 0)
	outside := math.Hypot(outR, outY)
	inside := math.Min(math.Max(radial, dy), 0)
	return outside + inside
}

// Color implements Colored.
func (c Cylinder) Color(math3.Vec3) math3.Vec3 { return defaultColor(c.Albedo) }

// Torus lies in the plane through C with main radius R and tube radius r,
// around the Y axis.
type Torus struct {
	C      math3.Vec3
	R, Rt  float64
	Albedo math3.Vec3
}

// Distance implements Field.
func (t Torus) Distance(p math3.Vec3) float64 {
	d := p.Sub(t.C)
	q := math.Hypot(d.X, d.Z) - t.R
	return math.Hypot(q, d.Y) - t.Rt
}

// Color implements Colored.
func (t Torus) Color(math3.Vec3) math3.Vec3 { return defaultColor(t.Albedo) }

func defaultColor(albedo math3.Vec3) math3.Vec3 {
	if albedo == (math3.Vec3{}) {
		return math3.V3(0.5, 0.5, 0.5)
	}
	return albedo
}

// Union is the CSG union of fields (minimum distance).
type Union struct {
	Fields []Field
}

// NewUnion builds a union of the given fields.
func NewUnion(fs ...Field) *Union { return &Union{Fields: fs} }

// Add appends a field to the union.
func (u *Union) Add(f Field) { u.Fields = append(u.Fields, f) }

// Distance implements Field.
func (u *Union) Distance(p math3.Vec3) float64 {
	best := math.Inf(1)
	for _, f := range u.Fields {
		if d := f.Distance(p); d < best {
			best = d
		}
	}
	return best
}

// Color implements Colored, returning the colour of the nearest member.
func (u *Union) Color(p math3.Vec3) math3.Vec3 {
	best := math.Inf(1)
	color := math3.V3(0.5, 0.5, 0.5)
	for _, f := range u.Fields {
		if d := f.Distance(p); d < best {
			best = d
			if c, ok := f.(Colored); ok {
				color = c.Color(p)
			} else {
				color = math3.V3(0.5, 0.5, 0.5)
			}
		}
	}
	return color
}

// Subtract carves B out of A (max(a, -b)).
type Subtract struct {
	A, B Field
}

// Distance implements Field.
func (s Subtract) Distance(p math3.Vec3) float64 {
	return math.Max(s.A.Distance(p), -s.B.Distance(p))
}

// Color implements Colored (colour of A).
func (s Subtract) Color(p math3.Vec3) math3.Vec3 {
	if c, ok := s.A.(Colored); ok {
		return c.Color(p)
	}
	return math3.V3(0.5, 0.5, 0.5)
}

// Intersect keeps the overlap of A and B (max distance).
type Intersect struct {
	A, B Field
}

// Distance implements Field.
func (s Intersect) Distance(p math3.Vec3) float64 {
	return math.Max(s.A.Distance(p), s.B.Distance(p))
}

// Translated shifts a field by Offset.
type Translated struct {
	F      Field
	Offset math3.Vec3
}

// Distance implements Field.
func (t Translated) Distance(p math3.Vec3) float64 {
	return t.F.Distance(p.Sub(t.Offset))
}

// Color implements Colored.
func (t Translated) Color(p math3.Vec3) math3.Vec3 {
	if c, ok := t.F.(Colored); ok {
		return c.Color(p.Sub(t.Offset))
	}
	return math3.V3(0.5, 0.5, 0.5)
}

// Rotated applies rotation R about the origin to a field.
type Rotated struct {
	F Field
	R math3.Mat3
}

// Distance implements Field.
func (r Rotated) Distance(p math3.Vec3) float64 {
	return r.F.Distance(r.R.Transpose().MulVec(p))
}

// Color implements Colored.
func (r Rotated) Color(p math3.Vec3) math3.Vec3 {
	if c, ok := r.F.(Colored); ok {
		return c.Color(r.R.Transpose().MulVec(p))
	}
	return math3.V3(0.5, 0.5, 0.5)
}
