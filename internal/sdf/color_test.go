package sdf

import (
	"math"
	"testing"

	"slamgo/internal/math3"
)

func TestColorMethods(t *testing.T) {
	red := math3.V3(1, 0, 0)
	cases := []struct {
		name string
		c    Colored
		p    math3.Vec3
		want math3.Vec3
	}{
		{"box", Box{H: math3.V3(1, 1, 1), Albedo: red}, math3.Vec3{}, red},
		{"box-default", Box{H: math3.V3(1, 1, 1)}, math3.Vec3{}, math3.V3(0.5, 0.5, 0.5)},
		{"sphere", Sphere{R: 1, Albedo: red}, math3.Vec3{}, red},
		{"cylinder", Cylinder{A: math3.V3(0, 1, 0), R: 1, Albedo: red}, math3.Vec3{}, red},
		{"torus", Torus{R: 1, Rt: 0.2, Albedo: red}, math3.Vec3{}, red},
		{"subtract", Subtract{A: Sphere{R: 1, Albedo: red}, B: Sphere{R: 0.5}}, math3.Vec3{}, red},
		{"rotated", Rotated{F: Sphere{R: 1, Albedo: red}, R: math3.Identity3()}, math3.Vec3{}, red},
	}
	for _, tc := range cases {
		if got := tc.c.Color(tc.p); got != tc.want {
			t.Errorf("%s: color %v want %v", tc.name, got, tc.want)
		}
	}
}

func TestColorFallbacksForUncoloredFields(t *testing.T) {
	grey := math3.V3(0.5, 0.5, 0.5)
	// Wrapping an uncolored field yields the grey default.
	plain := Intersect{A: Sphere{R: 1}, B: Sphere{R: 1}}
	if got := (Subtract{A: plain, B: Sphere{R: 0.2}}).Color(math3.Vec3{}); got != grey {
		t.Fatalf("subtract fallback %v", got)
	}
	if got := (Translated{F: plain}).Color(math3.Vec3{}); got != grey {
		t.Fatalf("translated fallback %v", got)
	}
	if got := (Rotated{F: plain, R: math3.Identity3()}).Color(math3.Vec3{}); got != grey {
		t.Fatalf("rotated fallback %v", got)
	}
	u := NewUnion(plain)
	if got := u.Color(math3.Vec3{}); got != grey {
		t.Fatalf("union fallback %v", got)
	}
}

func TestOfficeSceneShape(t *testing.T) {
	scene := Office()
	// Enclosed like the living room: free in the middle, solid outside.
	if d := scene.Distance(math3.V3(0, 1.3, 0.5)); d <= 0 {
		t.Fatalf("office centre not free: %v", d)
	}
	if d := scene.Distance(math3.V3(0, -5, 0)); d >= 0 {
		t.Fatalf("below office floor not solid: %v", d)
	}
	// 1-Lipschitz (sphere-tracing soundness) on a coarse probe grid.
	for x := -2.0; x <= 2.0; x += 0.8 {
		for z := -2.0; z <= 2.0; z += 0.8 {
			p := math3.V3(x, 1.0, z)
			q := p.Add(math3.V3(0.05, 0.05, 0.05))
			dd := math.Abs(scene.Distance(p) - scene.Distance(q))
			if dd > p.Dist(q)+1e-9 {
				t.Fatalf("Lipschitz violated near %v", p)
			}
		}
	}
	// The office differs from the living room (distinct datasets).
	lr := LivingRoom()
	same := true
	for _, p := range []math3.Vec3{
		{X: -1.1, Y: 0.73, Z: -2.0},
		{X: 0.25, Y: 0.87, Z: -1.05},
		{X: 2.2, Y: 0.55, Z: 0.3},
	} {
		if math.Abs(scene.Distance(p)-lr.Distance(p)) > 1e-6 {
			same = false
		}
	}
	if same {
		t.Fatal("office indistinguishable from living room at probe points")
	}
}
