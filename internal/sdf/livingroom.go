package sdf

import "slamgo/internal/math3"

// LivingRoom builds the reference indoor scene used throughout slamgo —
// the analogue of the ICL-NUIM "living room" model. The room is roughly
// 5 m × 2.5 m × 5 m with the floor at y=0 (the camera convention is +Y
// down is NOT used for the world; the world is y-up and the camera
// trajectory handles orientation).
//
// The scene contains the structures a dense SLAM tracker needs to lock
// onto: large planar regions (floor, walls, ceiling), mid-scale furniture
// (table, sofa, shelf) and small high-curvature objects (lamp, ball,
// torus ornament) that expose accuracy differences between
// configurations.
func LivingRoom() *Union {
	grey := math3.V3(0.55, 0.55, 0.55)
	wood := math3.V3(0.55, 0.38, 0.20)
	red := math3.V3(0.70, 0.20, 0.18)
	blue := math3.V3(0.20, 0.30, 0.65)
	green := math3.V3(0.25, 0.55, 0.25)
	cream := math3.V3(0.80, 0.76, 0.66)

	room := NewUnion()

	// Shell: floor (y=0, checkerboard), ceiling (y=2.5), four walls.
	room.Add(Plane{N: math3.V3(0, 1, 0), D: 0})                                    // floor
	room.Add(Plane{N: math3.V3(0, -1, 0), D: -2.5, Albedo: cream})                 // ceiling
	room.Add(Plane{N: math3.V3(1, 0, 0), D: -2.5, Albedo: cream})                  // left wall x=-2.5
	room.Add(Plane{N: math3.V3(-1, 0, 0), D: -2.5, Albedo: cream})                 // right wall x=+2.5
	room.Add(Plane{N: math3.V3(0, 0, 1), D: -2.5, Albedo: grey})                   // back wall z=-2.5
	room.Add(Plane{N: math3.V3(0, 0, -1), D: -2.5, Albedo: math3.V3(.7, .7, .68)}) // front wall z=+2.5

	// Table: top slab + four legs.
	room.Add(Box{C: math3.V3(0.0, 0.72, -1.0), H: math3.V3(0.6, 0.03, 0.4), Albedo: wood})
	for _, dx := range []float64{-0.55, 0.55} {
		for _, dz := range []float64{-0.35, 0.35} {
			room.Add(Box{
				C:      math3.V3(dx, 0.345, -1.0+dz),
				H:      math3.V3(0.03, 0.345, 0.03),
				Albedo: wood,
			})
		}
	}

	// Sofa against the left wall: seat, backrest, two armrests.
	room.Add(Box{C: math3.V3(-2.05, 0.25, 0.4), H: math3.V3(0.40, 0.25, 0.8), Albedo: red})
	room.Add(Box{C: math3.V3(-2.35, 0.65, 0.4), H: math3.V3(0.10, 0.35, 0.8), Albedo: red})
	room.Add(Box{C: math3.V3(-2.05, 0.60, -0.45), H: math3.V3(0.40, 0.12, 0.08), Albedo: red})
	room.Add(Box{C: math3.V3(-2.05, 0.60, 1.25), H: math3.V3(0.40, 0.12, 0.08), Albedo: red})

	// Shelf unit on the back wall.
	room.Add(Box{C: math3.V3(1.6, 0.9, -2.3), H: math3.V3(0.5, 0.9, 0.15), Albedo: wood})
	room.Add(Box{C: math3.V3(1.6, 1.25, -2.12), H: math3.V3(0.45, 0.02, 0.05), Albedo: cream})

	// Small objects: ball on the table, torus ornament, standing lamp.
	room.Add(Sphere{C: math3.V3(0.25, 0.87, -1.05), R: 0.12, Albedo: blue})
	room.Add(Torus{C: math3.V3(-0.3, 0.79, -0.85), R: 0.09, Rt: 0.03, Albedo: green})
	room.Add(Cylinder{
		C: math3.V3(2.1, 0.8, 1.8), A: math3.V3(0, 1, 0),
		R: 0.04, H: 0.8, Albedo: grey,
	})
	room.Add(Sphere{C: math3.V3(2.1, 1.75, 1.8), R: 0.18, Albedo: cream})

	// A floor rug modelled as a very flat box (adds a depth step the
	// bilateral filter and TSDF must preserve).
	room.Add(Box{C: math3.V3(0, 0.01, 0.3), H: math3.V3(1.0, 0.012, 0.7), Albedo: blue})

	return room
}

// SimpleRoom is a minimal fast scene for unit tests: a box room with one
// sphere and one box inside. Cheap enough to ray-march at full frame rate
// inside `go test`.
func SimpleRoom() *Union {
	u := NewUnion()
	u.Add(Plane{N: math3.V3(0, 1, 0), D: 0})
	u.Add(Plane{N: math3.V3(0, -1, 0), D: -2.5})
	u.Add(Plane{N: math3.V3(1, 0, 0), D: -2.0})
	u.Add(Plane{N: math3.V3(-1, 0, 0), D: -2.0})
	u.Add(Plane{N: math3.V3(0, 0, 1), D: -2.0})
	u.Add(Plane{N: math3.V3(0, 0, -1), D: -2.0})
	u.Add(Sphere{C: math3.V3(0.3, 0.5, -0.6), R: 0.3, Albedo: math3.V3(0.2, 0.4, 0.8)})
	u.Add(Box{C: math3.V3(-0.6, 0.25, -0.8), H: math3.V3(0.25, 0.25, 0.25), Albedo: math3.V3(0.8, 0.3, 0.2)})
	return u
}
