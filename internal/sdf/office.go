package sdf

import "slamgo/internal/math3"

// Office builds the second reference scene — the analogue of ICL-NUIM's
// "office room" model. Compared to the living room it is more cluttered
// with planar desk surfaces and thin structures (monitor, shelf boards,
// chair legs), which stress the bilateral filter's edge preservation and
// the TSDF's thin-surface reconstruction.
func Office() *Union {
	grey := math3.V3(0.55, 0.55, 0.55)
	dark := math3.V3(0.25, 0.25, 0.28)
	wood := math3.V3(0.45, 0.33, 0.22)
	white := math3.V3(0.85, 0.85, 0.82)
	blue := math3.V3(0.25, 0.35, 0.60)

	room := NewUnion()

	// Shell: 5 m × 2.6 m × 5 m.
	room.Add(Plane{N: math3.V3(0, 1, 0), D: 0})
	room.Add(Plane{N: math3.V3(0, -1, 0), D: -2.6, Albedo: white})
	room.Add(Plane{N: math3.V3(1, 0, 0), D: -2.5, Albedo: white})
	room.Add(Plane{N: math3.V3(-1, 0, 0), D: -2.5, Albedo: white})
	room.Add(Plane{N: math3.V3(0, 0, 1), D: -2.5, Albedo: grey})
	room.Add(Plane{N: math3.V3(0, 0, -1), D: -2.5, Albedo: grey})

	// Two desks along the back wall.
	for _, cx := range []float64{-1.1, 1.1} {
		room.Add(Box{C: math3.V3(cx, 0.73, -2.0), H: math3.V3(0.8, 0.02, 0.4), Albedo: wood})
		for _, dx := range []float64{-0.75, 0.75} {
			room.Add(Box{C: math3.V3(cx+dx, 0.355, -2.0), H: math3.V3(0.03, 0.355, 0.38), Albedo: dark})
		}
		// Monitor: thin slab on a stand.
		room.Add(Box{C: math3.V3(cx, 1.05, -2.25), H: math3.V3(0.28, 0.17, 0.015), Albedo: dark})
		room.Add(Box{C: math3.V3(cx, 0.82, -2.25), H: math3.V3(0.04, 0.07, 0.04), Albedo: dark})
	}

	// Office chairs: seat + backrest + column.
	for _, cx := range []float64{-1.1, 1.1} {
		room.Add(Box{C: math3.V3(cx, 0.46, -1.25), H: math3.V3(0.24, 0.03, 0.24), Albedo: blue})
		room.Add(Box{C: math3.V3(cx, 0.80, -1.02), H: math3.V3(0.24, 0.28, 0.03), Albedo: blue})
		room.Add(Cylinder{C: math3.V3(cx, 0.25, -1.25), A: math3.V3(0, 1, 0), R: 0.03, H: 0.2, Albedo: dark})
	}

	// Bookshelf on the left wall with three boards.
	room.Add(Box{C: math3.V3(-2.35, 1.0, 0.8), H: math3.V3(0.15, 1.0, 0.5), Albedo: wood})
	for _, by := range []float64{0.6, 1.1, 1.6} {
		room.Add(Box{C: math3.V3(-2.22, by, 0.8), H: math3.V3(0.02, 0.015, 0.45), Albedo: white})
	}

	// A filing cabinet and a waste bin.
	room.Add(Box{C: math3.V3(2.2, 0.55, 0.3), H: math3.V3(0.25, 0.55, 0.3), Albedo: grey})
	room.Add(Cylinder{C: math3.V3(1.9, 0.18, -1.0), A: math3.V3(0, 1, 0), R: 0.14, H: 0.18, Albedo: dark})

	// Ceiling lamp (sphere) for a distinctive landmark.
	room.Add(Sphere{C: math3.V3(0, 2.35, 0), R: 0.15, Albedo: white})

	return room
}
