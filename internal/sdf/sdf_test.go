package sdf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"slamgo/internal/math3"
)

func TestSphereDistance(t *testing.T) {
	s := Sphere{C: math3.V3(1, 0, 0), R: 2}
	if got := s.Distance(math3.V3(1, 0, 0)); math.Abs(got+2) > 1e-12 {
		t.Fatalf("centre distance %v", got)
	}
	if got := s.Distance(math3.V3(4, 0, 0)); math.Abs(got-1) > 1e-12 {
		t.Fatalf("outside distance %v", got)
	}
	if got := s.Distance(math3.V3(3, 0, 0)); math.Abs(got) > 1e-12 {
		t.Fatalf("surface distance %v", got)
	}
}

func TestBoxDistance(t *testing.T) {
	b := Box{C: math3.Vec3{}, H: math3.V3(1, 1, 1)}
	if got := b.Distance(math3.V3(3, 0, 0)); math.Abs(got-2) > 1e-12 {
		t.Fatalf("face distance %v", got)
	}
	// Corner distance.
	want := math.Sqrt(3)
	if got := b.Distance(math3.V3(2, 2, 2)); math.Abs(got-want) > 1e-12 {
		t.Fatalf("corner distance %v want %v", got, want)
	}
	if got := b.Distance(math3.Vec3{}); math.Abs(got+1) > 1e-12 {
		t.Fatalf("inside distance %v", got)
	}
}

func TestPlaneDistance(t *testing.T) {
	p := Plane{N: math3.V3(0, 1, 0), D: 0}
	if got := p.Distance(math3.V3(5, 2, -3)); math.Abs(got-2) > 1e-12 {
		t.Fatalf("above %v", got)
	}
	if got := p.Distance(math3.V3(0, -1, 0)); math.Abs(got+1) > 1e-12 {
		t.Fatalf("below %v", got)
	}
}

func TestCylinderDistance(t *testing.T) {
	c := Cylinder{C: math3.Vec3{}, A: math3.V3(0, 1, 0), R: 1, H: 0}
	if got := c.Distance(math3.V3(3, 100, 0)); math.Abs(got-2) > 1e-12 {
		t.Fatalf("infinite cyl %v", got)
	}
	capped := Cylinder{C: math3.Vec3{}, A: math3.V3(0, 1, 0), R: 1, H: 1}
	if got := capped.Distance(math3.V3(0, 3, 0)); math.Abs(got-2) > 1e-12 {
		t.Fatalf("cap distance %v", got)
	}
	if got := capped.Distance(math3.Vec3{}); got >= 0 {
		t.Fatalf("inside capped %v", got)
	}
}

func TestTorusDistance(t *testing.T) {
	tor := Torus{C: math3.Vec3{}, R: 2, Rt: 0.5}
	// Point on the main circle is inside the tube by Rt.
	if got := tor.Distance(math3.V3(2, 0, 0)); math.Abs(got+0.5) > 1e-12 {
		t.Fatalf("ring centre %v", got)
	}
	if got := tor.Distance(math3.V3(2.5, 0, 0)); math.Abs(got) > 1e-12 {
		t.Fatalf("outer surface %v", got)
	}
}

func TestUnionTakesMin(t *testing.T) {
	u := NewUnion(
		Sphere{C: math3.V3(0, 0, 0), R: 1},
		Sphere{C: math3.V3(10, 0, 0), R: 1},
	)
	got := u.Distance(math3.V3(2, 0, 0))
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("union distance %v", got)
	}
}

func TestSubtractCarves(t *testing.T) {
	s := Subtract{
		A: Box{C: math3.Vec3{}, H: math3.V3(1, 1, 1)},
		B: Sphere{C: math3.Vec3{}, R: 0.5},
	}
	// Centre is inside the carved hole → positive (outside the solid).
	if got := s.Distance(math3.Vec3{}); got <= 0 {
		t.Fatalf("carved centre should be outside: %v", got)
	}
	// Near a box corner we are still inside the solid.
	if got := s.Distance(math3.V3(0.9, 0.9, 0.9)); got >= 0 {
		t.Fatalf("corner should remain solid: %v", got)
	}
}

func TestIntersect(t *testing.T) {
	i := Intersect{
		A: Sphere{C: math3.V3(-0.5, 0, 0), R: 1},
		B: Sphere{C: math3.V3(0.5, 0, 0), R: 1},
	}
	if got := i.Distance(math3.Vec3{}); got >= 0 {
		t.Fatalf("lens interior should be inside: %v", got)
	}
	if got := i.Distance(math3.V3(-1.2, 0, 0)); got <= 0 {
		t.Fatalf("outside B should be outside intersection: %v", got)
	}
}

func TestTranslatedRotated(t *testing.T) {
	s := Sphere{C: math3.Vec3{}, R: 1, Albedo: math3.V3(1, 0, 0)}
	tr := Translated{F: s, Offset: math3.V3(5, 0, 0)}
	if got := tr.Distance(math3.V3(5, 0, 0)); math.Abs(got+1) > 1e-12 {
		t.Fatalf("translated centre %v", got)
	}
	if c := tr.Color(math3.V3(5, 0, 0)); c != math3.V3(1, 0, 0) {
		t.Fatalf("translated color %v", c)
	}

	b := Box{C: math3.Vec3{}, H: math3.V3(2, 0.1, 0.1)}
	rot := Rotated{F: b, R: math3.QuatFromAxisAngle(math3.V3(0, 0, 1), math.Pi/2).Mat3()}
	// The long axis is now Y.
	if got := rot.Distance(math3.V3(0, 1.9, 0)); got >= 0.01 {
		t.Fatalf("rotated box should contain (0,1.9,0): %v", got)
	}
	if got := rot.Distance(math3.V3(1.9, 0, 0)); got <= 0 {
		t.Fatalf("rotated box should not contain (1.9,0,0): %v", got)
	}
}

func TestNormalPointsOutward(t *testing.T) {
	s := Sphere{C: math3.Vec3{}, R: 1}
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		dir := math3.V3(r.NormFloat64(), r.NormFloat64(), r.NormFloat64()).Normalized()
		if dir.Norm() < 0.5 {
			continue
		}
		p := dir // on surface
		n := Normal(s, p, 1e-5)
		if n.Dot(dir) < 0.999 {
			t.Fatalf("normal %v misaligned with radial %v", n, dir)
		}
	}
}

func TestNormalOnBoxFace(t *testing.T) {
	b := Box{C: math3.Vec3{}, H: math3.V3(1, 1, 1)}
	n := Normal(b, math3.V3(1, 0.2, -0.3), 1e-5)
	if !n.ApproxEq(math3.V3(1, 0, 0), 1e-4) {
		t.Fatalf("face normal %v", n)
	}
}

// Sphere-tracing soundness: |∇d| ≤ 1 means distance differences are
// bounded by point distances (1-Lipschitz). Verify on the living room.
func TestQuickLipschitz(t *testing.T) {
	scene := LivingRoom()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := math3.V3(r.Float64()*5-2.5, r.Float64()*2.5, r.Float64()*5-2.5)
		q := p.Add(math3.V3(r.NormFloat64(), r.NormFloat64(), r.NormFloat64()).Scale(0.1))
		dd := math.Abs(scene.Distance(p) - scene.Distance(q))
		return dd <= p.Dist(q)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLivingRoomEnclosed(t *testing.T) {
	scene := LivingRoom()
	// The room centre is in free space.
	centre := math3.V3(0, 1.3, 0.8)
	if d := scene.Distance(centre); d <= 0 {
		t.Fatalf("room centre not in free space: %v", d)
	}
	// Far outside the shell we are inside some wall half-space (negative).
	if d := scene.Distance(math3.V3(0, -10, 0)); d >= 0 {
		t.Fatalf("below floor should be solid: %v", d)
	}
	// Table top is solid.
	if d := scene.Distance(math3.V3(0, 0.72, -1.0)); d >= 0 {
		t.Fatalf("table top should be solid: %v", d)
	}
}

func TestSimpleRoomObjects(t *testing.T) {
	scene := SimpleRoom()
	if d := scene.Distance(math3.V3(0.3, 0.5, -0.6)); d >= 0 {
		t.Fatalf("sphere centre should be solid: %v", d)
	}
	if d := scene.Distance(math3.V3(0, 1.5, 1.0)); d <= 0 {
		t.Fatalf("air should be free: %v", d)
	}
}

func TestUnionColorPicksNearest(t *testing.T) {
	u := NewUnion(
		Sphere{C: math3.V3(0, 0, 0), R: 1, Albedo: math3.V3(1, 0, 0)},
		Sphere{C: math3.V3(10, 0, 0), R: 1, Albedo: math3.V3(0, 1, 0)},
	)
	if c := u.Color(math3.V3(1, 0, 0)); c != math3.V3(1, 0, 0) {
		t.Fatalf("near red sphere got %v", c)
	}
	if c := u.Color(math3.V3(9, 0, 0)); c != math3.V3(0, 1, 0) {
		t.Fatalf("near green sphere got %v", c)
	}
}

func TestPlaneCheckerboardColor(t *testing.T) {
	p := Plane{N: math3.V3(0, 1, 0), D: 0}
	c1 := p.Color(math3.V3(0.1, 0, 0.1))
	c2 := p.Color(math3.V3(0.6, 0, 0.1))
	if c1 == c2 {
		t.Fatal("checkerboard should alternate")
	}
	solid := Plane{N: math3.V3(0, 1, 0), D: 0, Albedo: math3.V3(1, 1, 0)}
	if solid.Color(math3.V3(5, 0, 5)) != math3.V3(1, 1, 0) {
		t.Fatal("explicit albedo ignored")
	}
}

func TestDefaultColor(t *testing.T) {
	s := Sphere{C: math3.Vec3{}, R: 1}
	if c := s.Color(math3.Vec3{}); c != math3.V3(0.5, 0.5, 0.5) {
		t.Fatalf("default colour %v", c)
	}
}
