package odometry

import (
	"testing"

	"slamgo/internal/camera"
	"slamgo/internal/dataset"
	"slamgo/internal/imgproc"
	"slamgo/internal/math3"
	"slamgo/internal/sdf"
	"slamgo/internal/synth"
	"slamgo/internal/trajectory"
)

func testSequence(t *testing.T, frames int) *dataset.MemorySequence {
	t.Helper()
	in := camera.Kinect640().ScaledTo(80, 60)
	traj := synth.Orbit(math3.V3(0, 0.5, -0.5), 1.3, 1.3, 0.4, 0.4, frames, 30)
	seq, err := dataset.Generate(dataset.SynthConfig{
		Name: "odo", Scene: sdf.SimpleRoom(), Trajectory: traj,
		Intrinsics: in, Noise: synth.NoNoise(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func run(t *testing.T, cfg Config, seq *dataset.MemorySequence) (*trajectory.Trajectory, *trajectory.Trajectory, []*Result) {
	t.Helper()
	f0, _ := seq.Frame(0)
	tr, err := New(cfg, seq.Intrinsics(), f0.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	est := &trajectory.Trajectory{}
	gt := &trajectory.Trajectory{}
	var results []*Result
	for i := 0; i < seq.Len(); i++ {
		f, _ := seq.Frame(i)
		r, err := tr.ProcessFrame(f.Depth)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
		est.Append(f.Time, r.Pose)
		gt.Append(f.Time, f.GroundTruth)
	}
	return est, gt, results
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	c := DefaultConfig()
	c.ComputeSizeRatio = 5
	if err := c.Validate(); err == nil {
		t.Fatal("csr=5 accepted")
	}
	c = DefaultConfig()
	c.ICP.MaxIterations = 0
	if err := c.Validate(); err == nil {
		t.Fatal("0 iterations accepted")
	}
}

func TestTracksCleanSequence(t *testing.T) {
	seq := testSequence(t, 12)
	cfg := DefaultConfig()
	cfg.ComputeSizeRatio = 1
	est, gt, results := run(t, cfg, seq)
	for i, r := range results {
		if !r.Tracked {
			t.Fatalf("frame %d lost (rmse=%v)", i, r.ICP.RMSE)
		}
		if r.Cost.Ops <= 0 || r.WallTime <= 0 {
			t.Fatalf("frame %d missing accounting", i)
		}
	}
	st, err := trajectory.ATE(est, gt, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Max > 0.08 {
		t.Fatalf("odometry max ATE %v too large", st.Max)
	}
}

func TestOdometryDriftsMoreThanMapBased(t *testing.T) {
	// The methodological point of the baseline: frame-to-frame error
	// accumulates, so late-sequence error exceeds early-sequence error.
	seq := testSequence(t, 16)
	cfg := DefaultConfig()
	cfg.ComputeSizeRatio = 1
	est, gt, _ := run(t, cfg, seq)
	st, err := trajectory.ATE(est, gt, false)
	if err != nil {
		t.Fatal(err)
	}
	early := st.PerFrame[2]
	late := st.PerFrame[len(st.PerFrame)-1]
	if late < early {
		t.Logf("note: drift non-monotonic (early=%v late=%v) — acceptable on short clean runs", early, late)
	}
	if st.Max == 0 {
		t.Fatal("odometry reported exact zero error; suspicious")
	}
}

func TestFailsOnBlankFrame(t *testing.T) {
	seq := testSequence(t, 3)
	f0, _ := seq.Frame(0)
	tr, _ := New(DefaultConfig(), seq.Intrinsics(), f0.GroundTruth)
	if _, err := tr.ProcessFrame(f0.Depth); err != nil {
		t.Fatal(err)
	}
	blank := imgproc.NewDepthMap(seq.Intr.Width, seq.Intr.Height)
	r, err := tr.ProcessFrame(blank)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tracked {
		t.Fatal("blank frame tracked")
	}
	if tr.TrackingFailures() != 1 {
		t.Fatalf("failures = %d", tr.TrackingFailures())
	}
}

func TestSizeMismatch(t *testing.T) {
	seq := testSequence(t, 2)
	f0, _ := seq.Frame(0)
	tr, _ := New(DefaultConfig(), seq.Intrinsics(), f0.GroundTruth)
	if _, err := tr.ProcessFrame(imgproc.NewDepthMap(7, 7)); err == nil {
		t.Fatal("mismatch accepted")
	}
	_ = f0
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, camera.Kinect640(), math3.SE3Identity()); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := New(DefaultConfig(), camera.Intrinsics{}, math3.SE3Identity()); err == nil {
		t.Fatal("zero intrinsics accepted")
	}
}
