// Package odometry implements the baseline comparator used by the
// SLAMBench methodology experiments: frame-to-frame ICP visual odometry
// with no map. Each frame registers against the previous frame only, so
// drift accumulates — the classic accuracy floor that model-based
// tracking (KinectFusion) is measured against.
package odometry

import (
	"fmt"
	"time"

	"slamgo/internal/camera"
	"slamgo/internal/icp"
	"slamgo/internal/imgproc"
	"slamgo/internal/math3"
)

// Config controls the odometry tracker.
type Config struct {
	// ComputeSizeRatio downsamples input like KinectFusion's ratio.
	ComputeSizeRatio int
	// BilateralRadius denoises input depth (0 disables).
	BilateralRadius       int
	BilateralSpatialSigma float64
	BilateralRangeSigma   float64
	// ICP solve parameters.
	ICP icp.Params
	// PyramidDiscontinuity is the half-sampling depth band (metres).
	PyramidDiscontinuity float32
}

// DefaultConfig matches the KinectFusion front end for a fair comparison.
func DefaultConfig() Config {
	p := icp.DefaultParams()
	p.MaxIterations = 15
	return Config{
		ComputeSizeRatio:      2,
		BilateralRadius:       2,
		BilateralSpatialSigma: 4,
		BilateralRangeSigma:   0.1,
		ICP:                   p,
		PyramidDiscontinuity:  0.1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch c.ComputeSizeRatio {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("odometry: compute size ratio %d not in {1,2,4,8}", c.ComputeSizeRatio)
	}
	if c.ICP.MaxIterations < 1 {
		return fmt.Errorf("odometry: ICP iterations %d must be ≥1", c.ICP.MaxIterations)
	}
	return nil
}

// Result reports one tracked frame.
type Result struct {
	Index    int
	Pose     math3.SE3
	Tracked  bool
	ICP      icp.Result
	Cost     imgproc.Cost
	WallTime time.Duration
}

// Tracker is the stateful frame-to-frame odometry estimator.
type Tracker struct {
	cfg      Config
	inFull   camera.Intrinsics
	in       camera.Intrinsics
	pose     math3.SE3
	haveRef  bool
	ref      icp.Reference
	frameNo  int
	failures int
}

// New builds a tracker starting at initialPose.
func New(cfg Config, sensor camera.Intrinsics, initialPose math3.SE3) (*Tracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := sensor.Validate(); err != nil {
		return nil, err
	}
	return &Tracker{
		cfg:    cfg,
		inFull: sensor,
		in:     sensor.ScaledTo(sensor.Width/cfg.ComputeSizeRatio, sensor.Height/cfg.ComputeSizeRatio),
		pose:   initialPose,
	}, nil
}

// Pose returns the current camera-to-world estimate.
func (t *Tracker) Pose() math3.SE3 { return t.pose }

// TrackingFailures counts rejected frames.
func (t *Tracker) TrackingFailures() int { return t.failures }

// ProcessFrame registers one depth frame against the previous one.
func (t *Tracker) ProcessFrame(depth *imgproc.DepthMap) (*Result, error) {
	if depth.Width != t.inFull.Width || depth.Height != t.inFull.Height {
		return nil, fmt.Errorf("odometry: frame is %dx%d, sensor is %dx%d",
			depth.Width, depth.Height, t.inFull.Width, t.inFull.Height)
	}
	start := time.Now()
	res := &Result{Index: t.frameNo}

	work := depth
	for r := t.cfg.ComputeSizeRatio; r > 1; r /= 2 {
		var c imgproc.Cost
		work, c = imgproc.HalfSampleDepth(work, t.cfg.PyramidDiscontinuity)
		res.Cost.Add(c)
	}
	filtered, c := imgproc.BilateralFilter(work, t.cfg.BilateralRadius,
		t.cfg.BilateralSpatialSigma, t.cfg.BilateralRangeSigma)
	res.Cost.Add(c)
	vm, c1 := imgproc.DepthToVertexMap(filtered, t.in.BackProject)
	nm, c2 := imgproc.VertexToNormalMap(vm)
	res.Cost.Add(c1)
	res.Cost.Add(c2)

	if t.haveRef {
		r := icp.Solve(t.ref, icp.Frame{Vertices: vm, Normals: nm}, t.pose, t.cfg.ICP)
		res.Cost.Add(r.Cost)
		res.ICP = r
		minInliers := t.in.Pixels() / 10
		if r.RMSE <= 0.05 && r.Inliers >= minInliers {
			res.Tracked = true
			t.pose = r.Pose
		} else {
			t.failures++
		}
	} else {
		res.Tracked = true
	}
	res.Pose = t.pose

	// The current frame, lifted to world with the (possibly updated)
	// pose, becomes the next reference.
	wv := imgproc.NewVertexMap(vm.Width, vm.Height)
	wn := imgproc.NewNormalMap(nm.Width, nm.Height)
	for y := 0; y < vm.Height; y++ {
		for x := 0; x < vm.Width; x++ {
			if p, ok := vm.At(x, y); ok {
				wv.Set(x, y, t.pose.Apply(p))
			}
			if n, ok := nm.At(x, y); ok {
				wn.Set(x, y, t.pose.ApplyDir(n))
			}
		}
	}
	res.Cost.Add(imgproc.Cost{
		Ops:   int64(vm.Width * vm.Height * 36),
		Bytes: int64(vm.Width * vm.Height * 96),
	})
	t.ref = icp.Reference{Vertices: wv, Normals: wn, Pose: t.pose, Intr: t.in}
	t.haveRef = true
	t.frameNo++
	res.WallTime = time.Since(start)
	return res, nil
}
