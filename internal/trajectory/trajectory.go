// Package trajectory provides pose-trajectory containers and the accuracy
// metrics SLAMBench reports: absolute trajectory error (ATE, following the
// ICL-NUIM/TUM methodology) and relative pose error (RPE), with optional
// rigid alignment via the Umeyama closed-form solution.
package trajectory

import (
	"errors"
	"math"
	"sort"

	"slamgo/internal/math3"
)

// Pose is a timestamped camera-to-world transform.
type Pose struct {
	Time float64
	T    math3.SE3
}

// Trajectory is a time-ordered pose sequence.
type Trajectory struct {
	Poses []Pose
}

// Append adds a pose, keeping timestamps non-decreasing (out-of-order
// appends are inserted in place).
func (tr *Trajectory) Append(time float64, pose math3.SE3) {
	p := Pose{Time: time, T: pose}
	n := len(tr.Poses)
	if n == 0 || tr.Poses[n-1].Time <= time {
		tr.Poses = append(tr.Poses, p)
		return
	}
	i := sort.Search(n, func(i int) bool { return tr.Poses[i].Time > time })
	tr.Poses = append(tr.Poses, Pose{})
	copy(tr.Poses[i+1:], tr.Poses[i:])
	tr.Poses[i] = p
}

// Len returns the number of poses.
func (tr *Trajectory) Len() int { return len(tr.Poses) }

// Positions extracts the translation of each pose.
func (tr *Trajectory) Positions() []math3.Vec3 {
	out := make([]math3.Vec3, len(tr.Poses))
	for i, p := range tr.Poses {
		out[i] = p.T.T
	}
	return out
}

// At interpolates the pose at an arbitrary time (linear translation,
// slerp rotation). Times outside the range clamp to the endpoints.
func (tr *Trajectory) At(time float64) (math3.SE3, error) {
	n := len(tr.Poses)
	if n == 0 {
		return math3.SE3{}, errors.New("trajectory: empty")
	}
	if time <= tr.Poses[0].Time {
		return tr.Poses[0].T, nil
	}
	if time >= tr.Poses[n-1].Time {
		return tr.Poses[n-1].T, nil
	}
	i := sort.Search(n, func(i int) bool { return tr.Poses[i].Time >= time })
	a, b := tr.Poses[i-1], tr.Poses[i]
	span := b.Time - a.Time
	if span <= 0 {
		return a.T, nil
	}
	u := (time - a.Time) / span
	q := a.T.Quat().Slerp(b.T.Quat(), u)
	t := a.T.T.Lerp(b.T.T, u)
	return math3.SE3From(q, t), nil
}

// Length returns the total path length (metres).
func (tr *Trajectory) Length() float64 {
	sum := 0.0
	for i := 1; i < len(tr.Poses); i++ {
		sum += tr.Poses[i].T.T.Dist(tr.Poses[i-1].T.T)
	}
	return sum
}

// ATEStats summarises per-frame absolute trajectory errors.
type ATEStats struct {
	RMSE, Mean, Median, Max float64
	// PerFrame holds each frame's translational error (metres).
	PerFrame []float64
}

// ATE computes absolute trajectory error between an estimate and ground
// truth with matched indices (frame i ↔ frame i). When align is true the
// estimate is first rigidly aligned to the ground truth (Umeyama, no
// scale), as the TUM benchmark does; SLAMBench's default compares in the
// shared initial frame, i.e. align=false.
func ATE(estimate, groundTruth *Trajectory, align bool) (ATEStats, error) {
	n := len(estimate.Poses)
	if n == 0 || n != len(groundTruth.Poses) {
		return ATEStats{}, errors.New("trajectory: ATE needs equal-length non-empty trajectories")
	}
	est := estimate.Positions()
	gt := groundTruth.Positions()
	if align {
		tf, err := Umeyama(est, gt)
		if err != nil {
			return ATEStats{}, err
		}
		for i := range est {
			est[i] = tf.Apply(est[i])
		}
	}
	stats := ATEStats{PerFrame: make([]float64, n)}
	var sum, sum2 float64
	for i := range est {
		e := est[i].Dist(gt[i])
		stats.PerFrame[i] = e
		sum += e
		sum2 += e * e
		if e > stats.Max {
			stats.Max = e
		}
	}
	stats.Mean = sum / float64(n)
	stats.RMSE = math.Sqrt(sum2 / float64(n))
	sorted := append([]float64(nil), stats.PerFrame...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		stats.Median = sorted[n/2]
	} else {
		stats.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return stats, nil
}

// RPEStats summarises relative pose errors over a fixed frame delta.
type RPEStats struct {
	TransRMSE float64 // metres
	RotRMSE   float64 // radians
	Count     int
}

// RPE computes the relative pose error with frame spacing delta, the
// drift metric of the TUM benchmark.
func RPE(estimate, groundTruth *Trajectory, delta int) (RPEStats, error) {
	n := len(estimate.Poses)
	if n != len(groundTruth.Poses) {
		return RPEStats{}, errors.New("trajectory: RPE needs equal-length trajectories")
	}
	if delta < 1 || n <= delta {
		return RPEStats{}, errors.New("trajectory: RPE delta out of range")
	}
	var st, sr float64
	count := 0
	for i := 0; i+delta < n; i++ {
		relEst := estimate.Poses[i].T.Inverse().Mul(estimate.Poses[i+delta].T)
		relGT := groundTruth.Poses[i].T.Inverse().Mul(groundTruth.Poses[i+delta].T)
		err := relGT.Inverse().Mul(relEst)
		st += err.TranslationNorm() * err.TranslationNorm()
		sr += err.RotationAngle() * err.RotationAngle()
		count++
	}
	return RPEStats{
		TransRMSE: math.Sqrt(st / float64(count)),
		RotRMSE:   math.Sqrt(sr / float64(count)),
		Count:     count,
	}, nil
}

// UmeyamaScaled computes the similarity transform that best maps src
// points onto dst in least squares: dst ≈ s·R·src + t. Monocular SLAM
// evaluation needs the scale estimate; RGB-D evaluation fixes s=1 (use
// Umeyama).
func UmeyamaScaled(src, dst []math3.Vec3) (math3.SE3, float64, error) {
	tf, err := Umeyama(src, dst)
	if err != nil {
		return math3.SE3{}, 0, err
	}
	// With R known, the least-squares scale is cov(dst,R·src)/var(src).
	n := float64(len(src))
	var muS, muD math3.Vec3
	for i := range src {
		muS = muS.Add(src[i])
		muD = muD.Add(dst[i])
	}
	muS = muS.Scale(1 / n)
	muD = muD.Scale(1 / n)
	var num, den float64
	for i := range src {
		rs := tf.R.MulVec(src[i].Sub(muS))
		num += rs.Dot(dst[i].Sub(muD))
		den += src[i].Sub(muS).Norm2()
	}
	if den < 1e-15 {
		return math3.SE3{}, 0, errors.New("trajectory: degenerate point set for scale")
	}
	s := num / den
	t := muD.Sub(tf.R.MulVec(muS).Scale(s))
	return math3.SE3{R: tf.R, T: t}, s, nil
}

// Umeyama computes the rigid transform (no scale) that best maps src
// points onto dst in least squares: dst ≈ R·src + t.
func Umeyama(src, dst []math3.Vec3) (math3.SE3, error) {
	if len(src) != len(dst) || len(src) < 3 {
		return math3.SE3{}, errors.New("trajectory: Umeyama needs ≥3 matched points")
	}
	n := float64(len(src))
	var muS, muD math3.Vec3
	for i := range src {
		muS = muS.Add(src[i])
		muD = muD.Add(dst[i])
	}
	muS = muS.Scale(1 / n)
	muD = muD.Scale(1 / n)

	var cov math3.Mat3
	for i := range src {
		cov = cov.Add(math3.Outer(dst[i].Sub(muD), src[i].Sub(muS)))
	}
	cov = cov.Scale(1 / n)

	R := math3.NearestRotation(cov)
	t := muD.Sub(R.MulVec(muS))
	return math3.SE3{R: R, T: t}, nil
}
