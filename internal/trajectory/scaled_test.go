package trajectory

import (
	"math"
	"math/rand"
	"testing"

	"slamgo/internal/math3"
)

func TestUmeyamaScaledRecoversSimilarity(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		R := math3.QuatFromAxisAngle(
			math3.V3(r.NormFloat64(), r.NormFloat64(), r.NormFloat64()), r.Float64()*2,
		).Mat3()
		scale := 0.5 + r.Float64()*2
		tv := math3.V3(r.Float64()*4-2, r.Float64()*4-2, r.Float64()*4-2)

		src := make([]math3.Vec3, 30)
		dst := make([]math3.Vec3, 30)
		for i := range src {
			src[i] = math3.V3(r.Float64()*4-2, r.Float64()*4-2, r.Float64()*4-2)
			dst[i] = R.MulVec(src[i]).Scale(scale).Add(tv)
		}
		tf, s, err := UmeyamaScaled(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s-scale) > 1e-6 {
			t.Fatalf("scale %v want %v", s, scale)
		}
		// Check the full map on a held-out point.
		p := math3.V3(r.Float64(), r.Float64(), r.Float64())
		want := R.MulVec(p).Scale(scale).Add(tv)
		got := tf.R.MulVec(p).Scale(s).Add(tf.T)
		if !got.ApproxEq(want, 1e-6) {
			t.Fatalf("similarity map mismatch: %v vs %v", got, want)
		}
	}
}

func TestUmeyamaScaledUnitScaleMatchesRigid(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	tfTrue := math3.SE3{
		R: math3.QuatFromAxisAngle(math3.V3(0, 0, 1), 0.7).Mat3(),
		T: math3.V3(1, 2, 3),
	}
	src := make([]math3.Vec3, 20)
	dst := make([]math3.Vec3, 20)
	for i := range src {
		src[i] = math3.V3(r.Float64()*4-2, r.Float64()*4-2, r.Float64()*4-2)
		dst[i] = tfTrue.Apply(src[i])
	}
	_, s, err := UmeyamaScaled(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("rigid data estimated scale %v", s)
	}
}

func TestUmeyamaScaledDegenerate(t *testing.T) {
	pts := []math3.Vec3{{}, {}}
	if _, _, err := UmeyamaScaled(pts, pts); err == nil {
		t.Fatal("degenerate accepted")
	}
	same := []math3.Vec3{{X: 1, Y: 1, Z: 1}, {X: 1, Y: 1, Z: 1}, {X: 1, Y: 1, Z: 1}}
	if _, _, err := UmeyamaScaled(same, same); err == nil {
		t.Fatal("zero-variance set accepted")
	}
}
