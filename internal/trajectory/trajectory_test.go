package trajectory

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"slamgo/internal/math3"
)

func line(n int, step math3.Vec3) *Trajectory {
	tr := &Trajectory{}
	for i := 0; i < n; i++ {
		tr.Append(float64(i), math3.SE3{R: math3.Identity3(), T: step.Scale(float64(i))})
	}
	return tr
}

func TestAppendKeepsOrder(t *testing.T) {
	tr := &Trajectory{}
	tr.Append(2, math3.SE3Identity())
	tr.Append(1, math3.SE3Identity())
	tr.Append(3, math3.SE3Identity())
	if tr.Len() != 3 {
		t.Fatalf("len %d", tr.Len())
	}
	for i := 1; i < tr.Len(); i++ {
		if tr.Poses[i].Time < tr.Poses[i-1].Time {
			t.Fatal("timestamps out of order")
		}
	}
}

func TestAtInterpolates(t *testing.T) {
	tr := line(3, math3.V3(1, 0, 0))
	p, err := tr.At(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !p.T.ApproxEq(math3.V3(0.5, 0, 0), 1e-9) {
		t.Fatalf("interp position %v", p.T)
	}
	// Clamping.
	p, _ = tr.At(-5)
	if !p.T.ApproxEq(math3.V3(0, 0, 0), 1e-12) {
		t.Fatal("no clamp at start")
	}
	p, _ = tr.At(99)
	if !p.T.ApproxEq(math3.V3(2, 0, 0), 1e-12) {
		t.Fatal("no clamp at end")
	}
	empty := &Trajectory{}
	if _, err := empty.At(0); err == nil {
		t.Fatal("empty trajectory interpolated")
	}
}

func TestAtSlerpsRotation(t *testing.T) {
	tr := &Trajectory{}
	tr.Append(0, math3.SE3Identity())
	tr.Append(1, math3.SE3From(math3.QuatFromAxisAngle(math3.V3(0, 0, 1), math.Pi/2), math3.Vec3{}))
	p, _ := tr.At(0.5)
	got := p.ApplyDir(math3.V3(1, 0, 0))
	want := math3.QuatFromAxisAngle(math3.V3(0, 0, 1), math.Pi/4).Rotate(math3.V3(1, 0, 0))
	if !got.ApproxEq(want, 1e-9) {
		t.Fatalf("midpoint rotation %v want %v", got, want)
	}
}

func TestLength(t *testing.T) {
	tr := line(5, math3.V3(0, 0, 2))
	if math.Abs(tr.Length()-8) > 1e-12 {
		t.Fatalf("length %v", tr.Length())
	}
}

func TestATEIdentical(t *testing.T) {
	tr := line(10, math3.V3(0.1, 0, 0))
	st, err := ATE(tr, tr, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.RMSE != 0 || st.Max != 0 || st.Mean != 0 || st.Median != 0 {
		t.Fatalf("identical trajectories have error: %+v", st)
	}
}

func TestATEConstantOffset(t *testing.T) {
	gt := line(10, math3.V3(0.1, 0, 0))
	est := &Trajectory{}
	for _, p := range gt.Poses {
		shifted := p.T
		shifted.T = shifted.T.Add(math3.V3(0, 0.05, 0))
		est.Append(p.Time, shifted)
	}
	st, err := ATE(est, gt, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.RMSE-0.05) > 1e-9 || math.Abs(st.Max-0.05) > 1e-9 {
		t.Fatalf("offset ATE: %+v", st)
	}
	// With alignment the offset disappears.
	st2, err := ATE(est, gt, true)
	if err != nil {
		t.Fatal(err)
	}
	if st2.RMSE > 1e-9 {
		t.Fatalf("aligned ATE should vanish: %+v", st2)
	}
}

func TestATEMismatchedLengths(t *testing.T) {
	a := line(5, math3.V3(1, 0, 0))
	b := line(6, math3.V3(1, 0, 0))
	if _, err := ATE(a, b, false); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	empty := &Trajectory{}
	if _, err := ATE(empty, empty, false); err == nil {
		t.Fatal("empty trajectories accepted")
	}
}

func TestATEMedianEvenOdd(t *testing.T) {
	gt := line(4, math3.V3(1, 0, 0))
	est := &Trajectory{}
	offsets := []float64{0, 0.1, 0.2, 0.3}
	for i, p := range gt.Poses {
		s := p.T
		s.T = s.T.Add(math3.V3(0, offsets[i], 0))
		est.Append(p.Time, s)
	}
	st, _ := ATE(est, gt, false)
	if math.Abs(st.Median-0.15) > 1e-9 {
		t.Fatalf("even median %v", st.Median)
	}
	if math.Abs(st.Max-0.3) > 1e-9 {
		t.Fatalf("max %v", st.Max)
	}
}

func TestRPEDetectsDrift(t *testing.T) {
	gt := line(20, math3.V3(0.1, 0, 0))
	// Estimate drifts: each step is 0.11 instead of 0.10.
	est := line(20, math3.V3(0.11, 0, 0))
	st, err := RPE(est, gt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.TransRMSE-0.01) > 1e-9 {
		t.Fatalf("per-frame drift %v want 0.01", st.TransRMSE)
	}
	if st.RotRMSE > 1e-9 {
		t.Fatalf("no rotation drift expected: %v", st.RotRMSE)
	}
	if st.Count != 19 {
		t.Fatalf("count %d", st.Count)
	}
}

func TestRPEDeltaValidation(t *testing.T) {
	tr := line(5, math3.V3(1, 0, 0))
	if _, err := RPE(tr, tr, 0); err == nil {
		t.Fatal("delta 0 accepted")
	}
	if _, err := RPE(tr, tr, 5); err == nil {
		t.Fatal("delta ≥ n accepted")
	}
	if _, err := RPE(tr, line(6, math3.V3(1, 0, 0)), 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestUmeyamaRecoversTransform(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		R := math3.QuatFromAxisAngle(
			math3.V3(r.NormFloat64(), r.NormFloat64(), r.NormFloat64()),
			r.Float64()*2,
		).Mat3()
		tv := math3.V3(r.Float64()*4-2, r.Float64()*4-2, r.Float64()*4-2)
		tf := math3.SE3{R: R, T: tv}
		src := make([]math3.Vec3, 20)
		dst := make([]math3.Vec3, 20)
		for i := range src {
			src[i] = math3.V3(r.Float64()*4-2, r.Float64()*4-2, r.Float64()*4-2)
			dst[i] = tf.Apply(src[i])
		}
		got, err := Umeyama(src, dst)
		if err != nil {
			return false
		}
		return got.ApproxEq(tf, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUmeyamaTooFewPoints(t *testing.T) {
	pts := []math3.Vec3{{}, {X: 1}}
	if _, err := Umeyama(pts, pts); err == nil {
		t.Fatal("2 points accepted")
	}
}

func TestUmeyamaWithNoise(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	tf := math3.SE3{
		R: math3.QuatFromAxisAngle(math3.V3(0, 1, 0), 0.4).Mat3(),
		T: math3.V3(1, -0.5, 2),
	}
	src := make([]math3.Vec3, 100)
	dst := make([]math3.Vec3, 100)
	for i := range src {
		src[i] = math3.V3(r.Float64()*4-2, r.Float64()*4-2, r.Float64()*4-2)
		noise := math3.V3(r.NormFloat64(), r.NormFloat64(), r.NormFloat64()).Scale(0.01)
		dst[i] = tf.Apply(src[i]).Add(noise)
	}
	got, err := Umeyama(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEq(tf, 0.02) {
		t.Fatalf("noisy Umeyama strayed:\n%v\nvs\n%v", got, tf)
	}
}
