package camera

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"slamgo/internal/math3"
)

func TestProjectBackProjectRoundtrip(t *testing.T) {
	in := Kinect640()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		u := r.Float64() * float64(in.Width-1)
		v := r.Float64() * float64(in.Height-1)
		d := 0.5 + r.Float64()*4
		p := in.BackProject(u, v, d)
		uv, ok := in.Project(p)
		return ok &&
			math.Abs(uv.X-u) < 1e-9 &&
			math.Abs(uv.Y-v) < 1e-9 &&
			math.Abs(p.Z-d) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProjectBehindCamera(t *testing.T) {
	in := Kinect640()
	if _, ok := in.Project(math3.V3(0, 0, -1)); ok {
		t.Fatal("point behind camera projected")
	}
	if _, ok := in.Project(math3.V3(0, 0, 0)); ok {
		t.Fatal("point at origin projected")
	}
}

func TestProjectOutOfBounds(t *testing.T) {
	in := Kinect640()
	// A point far off-axis lands outside the image.
	if _, ok := in.Project(math3.V3(100, 0, 1)); ok {
		t.Fatal("off-image point reported in-bounds")
	}
}

func TestPrincipalPointProjectsToCentre(t *testing.T) {
	in := Kinect640()
	uv, ok := in.Project(math3.V3(0, 0, 2))
	if !ok {
		t.Fatal("centre point rejected")
	}
	if math.Abs(uv.X-in.Cx) > 1e-12 || math.Abs(uv.Y-in.Cy) > 1e-12 {
		t.Fatalf("centre projects to %v, want (%v,%v)", uv, in.Cx, in.Cy)
	}
}

func TestScaledToPreservesRays(t *testing.T) {
	in := Kinect640()
	half := in.ScaledTo(320, 240)
	if half.Width != 320 || half.Height != 240 {
		t.Fatalf("scaled resolution %dx%d", half.Width, half.Height)
	}
	// The ray through the image centre must be preserved.
	r1 := in.Ray(in.Cx, in.Cy)
	r2 := half.Ray(half.Cx, half.Cy)
	if !r1.ApproxEq(r2, 1e-9) {
		t.Fatalf("centre rays differ: %v vs %v", r1, r2)
	}
	// Field of view at the left edge should be (nearly) preserved.
	e1 := in.Ray(-0.5, in.Cy)
	e2 := half.Ray(-0.5, half.Cy)
	if math.Abs(e1.Dot(e2)-1) > 1e-4 {
		t.Fatalf("edge rays diverge: %v vs %v", e1, e2)
	}
}

func TestDownsample(t *testing.T) {
	in := Kinect640()
	d2 := in.Downsample(2)
	if d2.Width != 160 || d2.Height != 120 {
		t.Fatalf("downsample(2): %dx%d", d2.Width, d2.Height)
	}
	if d2.Fx >= in.Fx {
		t.Fatal("focal length should shrink when downsampling")
	}
	if in.Downsample(0) != in {
		t.Fatal("downsample(0) changed intrinsics")
	}
}

func TestRayIsUnitAndForward(t *testing.T) {
	in := Kinect640()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		u := r.Float64() * float64(in.Width-1)
		v := r.Float64() * float64(in.Height-1)
		ray := in.Ray(u, v)
		if math.Abs(ray.Norm()-1) > 1e-12 {
			t.Fatalf("ray not unit: %v", ray)
		}
		if ray.Z <= 0 {
			t.Fatalf("ray not forward: %v", ray)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := Kinect640().Validate(); err != nil {
		t.Fatalf("valid intrinsics rejected: %v", err)
	}
	bad := Intrinsics{Width: 0, Height: 480, Fx: 500, Fy: 500}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero width accepted")
	}
	bad2 := Intrinsics{Width: 640, Height: 480, Fx: 0, Fy: 500}
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero focal accepted")
	}
}

func TestPixelsAndAspect(t *testing.T) {
	in := Kinect640()
	if in.Pixels() != 640*480 {
		t.Fatalf("Pixels = %d", in.Pixels())
	}
	if math.Abs(in.AspectRatio()-4.0/3.0) > 1e-12 {
		t.Fatalf("AspectRatio = %v", in.AspectRatio())
	}
}
