// Package camera models the pinhole RGB-D camera used by the synthetic
// dataset generator and the KinectFusion pipeline. Intrinsics follow the
// standard computer-vision convention: +Z forward, +X right, +Y down, with
// pixel (u,v) mapping through (fx, fy, cx, cy).
package camera

import (
	"fmt"

	"slamgo/internal/math3"
)

// Intrinsics holds a pinhole camera model for a specific image resolution.
type Intrinsics struct {
	Width, Height  int
	Fx, Fy, Cx, Cy float64
}

// Kinect640 returns the canonical Kinect/ICL-NUIM intrinsics at 640×480,
// the resolution SLAMBench's datasets use.
func Kinect640() Intrinsics {
	return Intrinsics{
		Width: 640, Height: 480,
		Fx: 481.2, Fy: 480.0, Cx: 319.5, Cy: 239.5,
	}
}

// ScaledTo returns the intrinsics rescaled for a different resolution,
// preserving the field of view. This is how the "compute size ratio"
// parameter downsamples the input, and how pyramid levels derive their
// projection.
func (in Intrinsics) ScaledTo(width, height int) Intrinsics {
	sx := float64(width) / float64(in.Width)
	sy := float64(height) / float64(in.Height)
	return Intrinsics{
		Width: width, Height: height,
		Fx: in.Fx * sx, Fy: in.Fy * sy,
		// The ½-pixel offset keeps the principal point on the same optical
		// ray after scaling.
		Cx: (in.Cx+0.5)*sx - 0.5,
		Cy: (in.Cy+0.5)*sy - 0.5,
	}
}

// Downsample halves the resolution n times (pyramid construction).
func (in Intrinsics) Downsample(n int) Intrinsics {
	out := in
	for i := 0; i < n; i++ {
		out = out.ScaledTo(out.Width/2, out.Height/2)
	}
	return out
}

// Project maps a camera-frame 3D point to pixel coordinates. The boolean
// reports whether the point is in front of the camera and inside the
// image bounds.
func (in Intrinsics) Project(p math3.Vec3) (math3.Vec2, bool) {
	if p.Z <= 1e-9 {
		return math3.Vec2{}, false
	}
	u := in.Fx*p.X/p.Z + in.Cx
	v := in.Fy*p.Y/p.Z + in.Cy
	ok := u >= 0 && v >= 0 && u <= float64(in.Width-1) && v <= float64(in.Height-1)
	return math3.V2(u, v), ok
}

// BackProject maps pixel (u,v) at depth d (metres along +Z) to a
// camera-frame 3D point.
func (in Intrinsics) BackProject(u, v, d float64) math3.Vec3 {
	return math3.V3(
		(u-in.Cx)/in.Fx*d,
		(v-in.Cy)/in.Fy*d,
		d,
	)
}

// Ray returns the unit direction through pixel (u,v) in the camera frame.
func (in Intrinsics) Ray(u, v float64) math3.Vec3 {
	return in.BackProject(u, v, 1).Normalized()
}

// Pixels returns Width·Height.
func (in Intrinsics) Pixels() int { return in.Width * in.Height }

// AspectRatio returns Width/Height.
func (in Intrinsics) AspectRatio() float64 {
	return float64(in.Width) / float64(in.Height)
}

// Validate reports a descriptive error for non-physical intrinsics.
func (in Intrinsics) Validate() error {
	if in.Width <= 0 || in.Height <= 0 {
		return fmt.Errorf("camera: non-positive resolution %dx%d", in.Width, in.Height)
	}
	if in.Fx <= 0 || in.Fy <= 0 {
		return fmt.Errorf("camera: non-positive focal length (%g, %g)", in.Fx, in.Fy)
	}
	return nil
}

// String implements fmt.Stringer.
func (in Intrinsics) String() string {
	return fmt.Sprintf("Intrinsics{%dx%d fx=%.1f fy=%.1f cx=%.1f cy=%.1f}",
		in.Width, in.Height, in.Fx, in.Fy, in.Cx, in.Cy)
}
