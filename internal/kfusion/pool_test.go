package kfusion

import (
	"testing"

	"slamgo/internal/dataset"
)

// TestPipelineDeterministicWithPooledBuffers runs the same sequence
// through two pipelines and demands bit-identical trajectories: the
// recycled buffers must behave exactly like fresh allocations, and the
// chunk-ordered kernel reductions must not depend on scheduling.
func TestPipelineDeterministicWithPooledBuffers(t *testing.T) {
	seq, err := dataset.LivingRoomKT(0, dataset.PresetOptions{
		Width: 160, Height: 120, Frames: 8, FPS: 30, Noisy: true, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.VolumeResolution = 64
	cfg.ComputeSizeRatio = 2

	run := func() []FrameResult {
		f0, _ := seq.Frame(0)
		p, err := New(cfg, seq.Intrinsics(), f0.GroundTruth)
		if err != nil {
			t.Fatal(err)
		}
		var out []FrameResult
		for i := 0; i < seq.Len(); i++ {
			f, _ := seq.Frame(i)
			r, err := p.ProcessFrame(f.Depth)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, *r)
		}
		return out
	}

	a, b := run(), run()
	for i := range a {
		if a[i].Pose != b[i].Pose {
			t.Fatalf("frame %d: pose diverges between identical runs", i)
		}
		if a[i].Tracked != b[i].Tracked || a[i].Integrated != b[i].Integrated {
			t.Fatalf("frame %d: control flow diverges between identical runs", i)
		}
		if a[i].KernelCosts != b[i].KernelCosts {
			t.Fatalf("frame %d: kernel costs diverge between identical runs", i)
		}
	}
}
