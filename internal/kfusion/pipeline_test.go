package kfusion

import (
	"math"
	"testing"

	"slamgo/internal/camera"
	"slamgo/internal/dataset"
	"slamgo/internal/imgproc"
	"slamgo/internal/math3"
	"slamgo/internal/sdf"
	"slamgo/internal/synth"
	"slamgo/internal/trajectory"
)

// testConfig returns a configuration small enough for fast unit tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.ComputeSizeRatio = 1
	cfg.VolumeResolution = 64
	cfg.VolumeSize = 4.5
	cfg.VolumeCenter = math3.V3(0, 1.1, 0)
	cfg.Mu = 0.15
	cfg.BilateralRadius = 1
	return cfg
}

// testSequence renders a short clean orbit in the SimpleRoom scene.
func testSequence(t *testing.T, frames int) *dataset.MemorySequence {
	t.Helper()
	in := camera.Kinect640().ScaledTo(80, 60)
	traj := synth.Orbit(math3.V3(0, 0.5, -0.5), 1.3, 1.3, 0.4, 0.5, frames, 30)
	seq, err := dataset.Generate(dataset.SynthConfig{
		Name:       "simple_orbit",
		Scene:      sdf.SimpleRoom(),
		Trajectory: traj,
		Intrinsics: in,
		Noise:      synth.NoNoise(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

// runPipeline processes a whole sequence and returns estimated and
// ground-truth trajectories.
func runPipeline(t *testing.T, cfg Config, seq *dataset.MemorySequence) (est, gt *trajectory.Trajectory, results []*FrameResult) {
	t.Helper()
	f0, _ := seq.Frame(0)
	p, err := New(cfg, seq.Intrinsics(), f0.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	est = &trajectory.Trajectory{}
	gt = &trajectory.Trajectory{}
	for i := 0; i < seq.Len(); i++ {
		f, _ := seq.Frame(i)
		r, err := p.ProcessFrame(f.Depth)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
		est.Append(f.Time, r.Pose)
		gt.Append(f.Time, f.GroundTruth)
	}
	return est, gt, results
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.ComputeSizeRatio = 3 },
		func(c *Config) { c.VolumeResolution = 8 },
		func(c *Config) { c.VolumeSize = 0 },
		func(c *Config) { c.Mu = -1 },
		func(c *Config) { c.ICPThreshold = -1 },
		func(c *Config) { c.PyramidIterations = [3]int{0, 0, 0} },
		func(c *Config) { c.PyramidIterations = [3]int{-1, 5, 4} },
		func(c *Config) { c.IntegrationRate = 0 },
		func(c *Config) { c.TrackingRate = 0 },
		func(c *Config) { c.RenderingRate = 0 },
		func(c *Config) { c.MaxWeight = 0 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestPyramidLevels(t *testing.T) {
	c := DefaultConfig()
	if c.pyramidLevels() != 3 {
		t.Fatalf("default levels %d", c.pyramidLevels())
	}
	c.PyramidIterations = [3]int{10, 0, 0}
	if c.pyramidLevels() != 1 {
		t.Fatalf("single level %d", c.pyramidLevels())
	}
	c.PyramidIterations = [3]int{10, 0, 4}
	if c.pyramidLevels() != 3 {
		t.Fatalf("sparse levels %d", c.pyramidLevels())
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	in := camera.Kinect640()
	if _, err := New(Config{}, in, math3.SE3Identity()); err == nil {
		t.Fatal("zero config accepted")
	}
	cfg := DefaultConfig()
	bad := camera.Intrinsics{}
	if _, err := New(cfg, bad, math3.SE3Identity()); err == nil {
		t.Fatal("zero intrinsics accepted")
	}
	cfg.ComputeSizeRatio = 8
	tiny := camera.Kinect640().ScaledTo(32, 24)
	if _, err := New(cfg, tiny, math3.SE3Identity()); err == nil {
		t.Fatal("sub-8px compute resolution accepted")
	}
}

func TestPipelineTracksCleanSequence(t *testing.T) {
	seq := testSequence(t, 15)
	est, gt, results := runPipeline(t, testConfig(), seq)

	for i, r := range results {
		if !r.Tracked {
			t.Fatalf("frame %d lost tracking (rmse=%v inliers=%d)", i, r.ICP.RMSE, r.ICP.Inliers)
		}
	}
	st, err := trajectory.ATE(est, gt, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Max > 0.05 {
		t.Fatalf("max ATE %v m too large for clean sequence", st.Max)
	}
}

func TestPipelineFrameMetadata(t *testing.T) {
	seq := testSequence(t, 4)
	_, _, results := runPipeline(t, testConfig(), seq)

	r0 := results[0]
	if r0.Attempted {
		t.Fatal("first frame should not attempt ICP")
	}
	if !r0.Integrated {
		t.Fatal("first frame must integrate")
	}
	if r0.KernelCosts[KernelIntegrate].Ops <= 0 {
		t.Fatal("integration cost missing")
	}
	if r0.KernelCosts[KernelRaycast].Ops <= 0 {
		t.Fatal("raycast cost missing")
	}
	if r0.KernelCosts[KernelPreprocess].Ops <= 0 {
		t.Fatal("preprocess cost missing")
	}
	r1 := results[1]
	if !r1.Attempted || r1.KernelCosts[KernelTrack].Ops <= 0 {
		t.Fatal("second frame should track")
	}
	if r1.TotalCost().Ops <= r1.KernelCosts[KernelTrack].Ops {
		t.Fatal("total cost should include all kernels")
	}
	if r1.TotalTime() <= 0 {
		t.Fatal("wall time missing")
	}
}

func TestTrackingRateSkipsFrames(t *testing.T) {
	seq := testSequence(t, 8)
	cfg := testConfig()
	cfg.TrackingRate = 2
	_, _, results := runPipeline(t, cfg, seq)
	for i, r := range results {
		if i == 0 {
			continue
		}
		wantAttempt := i%2 == 0
		if r.Attempted != wantAttempt {
			t.Fatalf("frame %d attempted=%v want %v", i, r.Attempted, wantAttempt)
		}
	}
}

func TestIntegrationRateSkipsFrames(t *testing.T) {
	seq := testSequence(t, 8)
	cfg := testConfig()
	cfg.IntegrationRate = 3
	_, _, results := runPipeline(t, cfg, seq)
	for i, r := range results {
		wantIntegrate := i%3 == 0
		if r.Integrated != wantIntegrate {
			t.Fatalf("frame %d integrated=%v want %v", i, r.Integrated, wantIntegrate)
		}
	}
}

func TestComputeSizeRatioShrinksWork(t *testing.T) {
	in := camera.Kinect640().ScaledTo(160, 120)
	traj := synth.Orbit(math3.V3(0, 0.5, -0.5), 1.3, 1.3, 0.4, 0.1, 2, 30)
	seq, err := dataset.Generate(dataset.SynthConfig{
		Name: "csr", Scene: sdf.SimpleRoom(), Trajectory: traj,
		Intrinsics: in, Noise: synth.NoNoise(),
	})
	if err != nil {
		t.Fatal(err)
	}
	costAt := func(ratio int) int64 {
		cfg := testConfig()
		cfg.ComputeSizeRatio = ratio
		_, _, results := runPipeline(t, cfg, &dataset.MemorySequence{
			SeqName: seq.SeqName, Intr: seq.Intr, Frames: seq.Frames,
		})
		return results[1].KernelCosts[KernelTrack].Ops +
			results[1].KernelCosts[KernelPreprocess].Ops
	}
	c1, c4 := costAt(1), costAt(4)
	if c4*4 > c1 {
		t.Fatalf("ratio 4 should cut front-end cost ≥4×: %d vs %d", c1, c4)
	}
}

func TestVolumeResolutionScalesIntegrationCost(t *testing.T) {
	seq := testSequence(t, 2)
	costAt := func(res int) int64 {
		cfg := testConfig()
		cfg.VolumeResolution = res
		_, _, results := runPipeline(t, cfg, seq)
		return results[0].KernelCosts[KernelIntegrate].Ops
	}
	c64, c128 := costAt(64), costAt(128)
	if c128 < c64*7 {
		t.Fatalf("doubling resolution should ≈8× integration: %d vs %d", c64, c128)
	}
}

func TestTrackingFailureOnBlankFrame(t *testing.T) {
	seq := testSequence(t, 3)
	f0, _ := seq.Frame(0)
	p, err := New(testConfig(), seq.Intrinsics(), f0.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ProcessFrame(f0.Depth); err != nil {
		t.Fatal(err)
	}
	poseBefore := p.Pose()
	blank := imgproc.NewDepthMap(seq.Intr.Width, seq.Intr.Height)
	r, err := p.ProcessFrame(blank)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tracked {
		t.Fatal("blank frame reported as tracked")
	}
	if r.Integrated {
		t.Fatal("blank frame must not be integrated")
	}
	if p.TrackingFailures() != 1 {
		t.Fatalf("failures = %d", p.TrackingFailures())
	}
	if !p.Pose().ApproxEq(poseBefore, 1e-12) {
		t.Fatal("failed frame moved the pose")
	}
}

func TestProcessFrameSizeMismatch(t *testing.T) {
	seq := testSequence(t, 2)
	f0, _ := seq.Frame(0)
	p, _ := New(testConfig(), seq.Intrinsics(), f0.GroundTruth)
	wrong := imgproc.NewDepthMap(10, 10)
	if _, err := p.ProcessFrame(wrong); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestRenderingRateDefersRaycast(t *testing.T) {
	seq := testSequence(t, 6)
	cfg := testConfig()
	cfg.RenderingRate = 3
	_, _, results := runPipeline(t, cfg, seq)
	raycasts := 0
	for _, r := range results {
		if r.KernelCosts[KernelRaycast].Ops > 0 {
			raycasts++
		}
	}
	// Frame 0 raycasts (bootstrap); afterwards every 3rd integration.
	if raycasts >= len(results) {
		t.Fatalf("rendering rate ignored: %d raycasts in %d frames", raycasts, len(results))
	}
	if raycasts == 0 {
		t.Fatal("no raycasts at all")
	}
}

func TestMeshExportFromPipeline(t *testing.T) {
	seq := testSequence(t, 5)
	cfg := testConfig()
	_, _, _ = runPipelineKeep(t, cfg, seq, func(p *Pipeline) {
		m := p.Volume().ExtractMesh()
		if len(m.Triangles) == 0 {
			t.Fatal("reconstruction produced no surface")
		}
		// The floor (y≈0) must be part of the reconstruction.
		foundFloor := false
		for _, tri := range m.Triangles {
			if math.Abs(tri.A.Y) < 0.1 {
				foundFloor = true
				break
			}
		}
		if !foundFloor {
			t.Fatal("floor missing from reconstruction")
		}
	})
}

// runPipelineKeep is runPipeline plus a callback with the final pipeline.
func runPipelineKeep(t *testing.T, cfg Config, seq *dataset.MemorySequence, fn func(*Pipeline)) (est, gt *trajectory.Trajectory, results []*FrameResult) {
	t.Helper()
	f0, _ := seq.Frame(0)
	p, err := New(cfg, seq.Intrinsics(), f0.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	est = &trajectory.Trajectory{}
	gt = &trajectory.Trajectory{}
	for i := 0; i < seq.Len(); i++ {
		f, _ := seq.Frame(i)
		r, err := p.ProcessFrame(f.Depth)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
		est.Append(f.Time, r.Pose)
		gt.Append(f.Time, f.GroundTruth)
	}
	fn(p)
	return est, gt, results
}

func TestKernelString(t *testing.T) {
	names := map[Kernel]string{
		KernelPreprocess: "preprocess",
		KernelTrack:      "track",
		KernelIntegrate:  "integrate",
		KernelRaycast:    "raycast",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d → %q want %q", k, k.String(), want)
		}
	}
	if Kernel(99).String() == "" {
		t.Fatal("unknown kernel has empty name")
	}
}
