package kfusion

import (
	"fmt"
	"time"

	"slamgo/internal/camera"
	"slamgo/internal/icp"
	"slamgo/internal/imgproc"
	"slamgo/internal/math3"
	"slamgo/internal/tsdf"
)

// Kernel identifies one pipeline stage for cost accounting.
type Kernel int

// Pipeline stages, in execution order.
const (
	KernelPreprocess Kernel = iota
	KernelTrack
	KernelIntegrate
	KernelRaycast
	kernelCount
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case KernelPreprocess:
		return "preprocess"
	case KernelTrack:
		return "track"
	case KernelIntegrate:
		return "integrate"
	case KernelRaycast:
		return "raycast"
	}
	return fmt.Sprintf("kernel(%d)", int(k))
}

// FrameResult reports everything the benchmarking harness needs about one
// processed frame.
type FrameResult struct {
	Index   int
	Pose    math3.SE3
	Tracked bool
	// Attempted is false when the tracking rate skipped this frame.
	Attempted bool
	// Integrated records whether the frame was fused into the volume.
	Integrated bool
	// ICP carries the tracker diagnostics of the last (finest) level.
	ICP icp.Result
	// KernelCosts holds the per-stage arithmetic cost.
	KernelCosts [4]imgproc.Cost
	// KernelTimes holds the per-stage wall-clock time of this process.
	KernelTimes [4]time.Duration
}

// TotalCost sums the per-kernel costs.
func (r *FrameResult) TotalCost() imgproc.Cost {
	var c imgproc.Cost
	for _, k := range r.KernelCosts {
		c.Add(k)
	}
	return c
}

// TotalTime sums the per-kernel wall times.
func (r *FrameResult) TotalTime() time.Duration {
	var t time.Duration
	for _, k := range r.KernelTimes {
		t += k
	}
	return t
}

// Pipeline is the stateful KinectFusion system.
type Pipeline struct {
	cfg     Config
	inFull  camera.Intrinsics // sensor resolution
	in      camera.Intrinsics // compute resolution (after size ratio)
	volume  *tsdf.Volume
	pose    math3.SE3
	hasRef  bool
	ref     icp.Reference
	frameNo int
	// integratedSinceRaycast counts integrations since the last model
	// raycast, for the rendering-rate knob.
	integratedSinceRaycast int
	failures               int
}

// New builds a pipeline for a sensor with the given intrinsics, starting
// from initialPose (camera-to-world of the first frame).
func New(cfg Config, sensor camera.Intrinsics, initialPose math3.SE3) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := sensor.Validate(); err != nil {
		return nil, err
	}
	compute := sensor.ScaledTo(
		sensor.Width/cfg.ComputeSizeRatio,
		sensor.Height/cfg.ComputeSizeRatio,
	)
	if compute.Width < 8 || compute.Height < 8 {
		return nil, fmt.Errorf("kfusion: compute resolution %dx%d too small", compute.Width, compute.Height)
	}
	origin := cfg.VolumeCenter.Sub(math3.Splat3(cfg.VolumeSize / 2))
	p := &Pipeline{
		cfg:    cfg,
		inFull: sensor,
		in:     compute,
		volume: tsdf.New(cfg.VolumeResolution, cfg.VolumeSize, origin),
		pose:   initialPose,
	}
	return p, nil
}

// Config returns the active configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Pose returns the current camera-to-world estimate.
func (p *Pipeline) Pose() math3.SE3 { return p.pose }

// Volume exposes the reconstruction for rendering and mesh export.
func (p *Pipeline) Volume() *tsdf.Volume { return p.volume }

// ComputeIntrinsics returns the post-downsampling intrinsics.
func (p *Pipeline) ComputeIntrinsics() camera.Intrinsics { return p.in }

// TrackingFailures counts frames whose ICP was rejected.
func (p *Pipeline) TrackingFailures() int { return p.failures }

// Reference returns the current model raycast (world-frame vertex and
// normal maps) used as the tracking reference, and whether one exists
// yet. The GUI renders this as its 3D model pane.
func (p *Pipeline) Reference() (icp.Reference, bool) { return p.ref, p.hasRef }

// ProcessFrame runs the full pipeline on one depth image (at sensor
// resolution) and returns the per-frame result.
func (p *Pipeline) ProcessFrame(depth *imgproc.DepthMap) (*FrameResult, error) {
	if depth.Width != p.inFull.Width || depth.Height != p.inFull.Height {
		return nil, fmt.Errorf("kfusion: frame is %dx%d, sensor is %dx%d",
			depth.Width, depth.Height, p.inFull.Width, p.inFull.Height)
	}
	res := &FrameResult{Index: p.frameNo}

	// --- Preprocess: downsample, denoise, pyramid, vertex/normal maps.
	t0 := time.Now()
	pyr, cost := p.preprocess(depth)
	res.KernelCosts[KernelPreprocess] = cost
	res.KernelTimes[KernelPreprocess] = time.Since(t0)

	first := p.frameNo == 0

	// --- Track.
	if !first && p.hasRef && p.frameNo%p.cfg.TrackingRate == 0 {
		res.Attempted = true
		t0 = time.Now()
		tracked, icpRes, cost := p.track(pyr)
		res.KernelCosts[KernelTrack] = cost
		res.KernelTimes[KernelTrack] = time.Since(t0)
		res.ICP = icpRes
		res.Tracked = tracked
		if tracked {
			p.pose = icpRes.Pose
		} else {
			p.failures++
		}
	} else if first || p.hasRef {
		// First frame (defines the map) or a frame skipped by the
		// tracking rate (pose deliberately reused): not lost. A frame
		// with no model reference at all stays untracked.
		res.Tracked = true
	}
	res.Pose = p.pose

	// --- Integrate.
	shouldIntegrate := p.frameNo%p.cfg.IntegrationRate == 0 && (res.Tracked || first)
	if shouldIntegrate {
		t0 = time.Now()
		c := p.volume.Integrate(pyr.Depth[0], p.pose, p.in, p.cfg.Mu, p.cfg.MaxWeight)
		res.KernelCosts[KernelIntegrate] = c
		res.KernelTimes[KernelIntegrate] = time.Since(t0)
		res.Integrated = true
		p.integratedSinceRaycast++
	}

	// --- Raycast the model to refresh the tracking reference.
	if res.Integrated && (p.integratedSinceRaycast >= p.cfg.RenderingRate || !p.hasRef) {
		t0 = time.Now()
		rc := p.volume.Raycast(p.pose, p.in, p.cfg.Mu, 0.1, p.cfg.VolumeSize*1.8)
		res.KernelCosts[KernelRaycast] = rc.Cost
		res.KernelTimes[KernelRaycast] = time.Since(t0)
		p.ref = icp.Reference{
			Vertices: rc.Vertices,
			Normals:  rc.Normals,
			Pose:     p.pose,
			Intr:     p.in,
		}
		p.hasRef = true
		p.integratedSinceRaycast = 0
	}

	p.frameNo++
	return res, nil
}

// preprocessed holds the multi-scale maps of the current frame.
type preprocessed struct {
	Depth    []*imgproc.DepthMap
	Vertices []*imgproc.VertexMap
	Normals  []*imgproc.NormalMap
	Intr     []camera.Intrinsics
}

func (p *Pipeline) preprocess(depth *imgproc.DepthMap) (*preprocessed, imgproc.Cost) {
	var total imgproc.Cost

	// Downsample to compute resolution (ratio is a power of two).
	work := depth
	for r := p.cfg.ComputeSizeRatio; r > 1; r /= 2 {
		var c imgproc.Cost
		work, c = imgproc.HalfSampleDepth(work, p.cfg.PyramidDiscontinuity)
		total.Add(c)
	}

	// Bilateral denoise at compute resolution.
	filtered, c := imgproc.BilateralFilter(
		work, p.cfg.BilateralRadius, p.cfg.BilateralSpatialSigma, p.cfg.BilateralRangeSigma,
	)
	total.Add(c)

	levels := p.cfg.pyramidLevels()
	depths, c := imgproc.BuildDepthPyramid(filtered, levels, p.cfg.PyramidDiscontinuity)
	total.Add(c)

	pp := &preprocessed{Depth: depths}
	for l, d := range depths {
		in := p.in.Downsample(l)
		vm, c1 := imgproc.DepthToVertexMap(d, in.BackProject)
		nm, c2 := imgproc.VertexToNormalMap(vm)
		total.Add(c1)
		total.Add(c2)
		pp.Vertices = append(pp.Vertices, vm)
		pp.Normals = append(pp.Normals, nm)
		pp.Intr = append(pp.Intr, in)
	}
	return pp, total
}

// track runs coarse-to-fine ICP against the model reference.
func (p *Pipeline) track(pyr *preprocessed) (bool, icp.Result, imgproc.Cost) {
	var total imgproc.Cost
	pose := p.pose
	var last icp.Result
	ran := false
	for level := len(pyr.Depth) - 1; level >= 0; level-- {
		iters := p.cfg.PyramidIterations[level]
		if iters <= 0 {
			continue
		}
		params := icp.Params{
			MaxIterations:        iters,
			ConvergenceThreshold: p.cfg.ICPThreshold,
			DistThreshold:        p.cfg.ICPDistThreshold,
			NormalThreshold:      p.cfg.ICPNormalThreshold,
			Damping:              1e-6,
		}
		frame := icp.Frame{Vertices: pyr.Vertices[level], Normals: pyr.Normals[level]}
		r := icp.Solve(p.ref, frame, pose, params)
		total.Add(r.Cost)
		pose = r.Pose
		last = r
		ran = true
	}
	if !ran {
		return false, last, total
	}

	// Quality gate: reject divergent or under-constrained tracks.
	finest := pyr.Vertices[0]
	minInliers := int(p.cfg.MinInlierFraction * float64(finest.Width*finest.Height))
	if last.RMSE > p.cfg.TrackRMSEThreshold || last.Inliers < minInliers {
		return false, last, total
	}
	return true, last, total
}
