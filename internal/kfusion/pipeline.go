package kfusion

import (
	"fmt"
	"time"

	"slamgo/internal/camera"
	"slamgo/internal/icp"
	"slamgo/internal/imgproc"
	"slamgo/internal/math3"
	"slamgo/internal/tsdf"
)

// Kernel identifies one pipeline stage for cost accounting.
type Kernel int

// Pipeline stages, in execution order.
const (
	KernelPreprocess Kernel = iota
	KernelTrack
	KernelIntegrate
	KernelRaycast
	kernelCount
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case KernelPreprocess:
		return "preprocess"
	case KernelTrack:
		return "track"
	case KernelIntegrate:
		return "integrate"
	case KernelRaycast:
		return "raycast"
	}
	return fmt.Sprintf("kernel(%d)", int(k))
}

// FrameResult reports everything the benchmarking harness needs about one
// processed frame.
type FrameResult struct {
	Index   int
	Pose    math3.SE3
	Tracked bool
	// Attempted is false when the tracking rate skipped this frame.
	Attempted bool
	// Integrated records whether the frame was fused into the volume.
	Integrated bool
	// ICP carries the tracker diagnostics of the last (finest) level.
	ICP icp.Result
	// KernelCosts holds the per-stage arithmetic cost.
	KernelCosts [4]imgproc.Cost
	// KernelTimes holds the per-stage wall-clock time of this process.
	KernelTimes [4]time.Duration
}

// TotalCost sums the per-kernel costs.
func (r *FrameResult) TotalCost() imgproc.Cost {
	var c imgproc.Cost
	for _, k := range r.KernelCosts {
		c.Add(k)
	}
	return c
}

// TotalTime sums the per-kernel wall times.
func (r *FrameResult) TotalTime() time.Duration {
	var t time.Duration
	for _, k := range r.KernelTimes {
		t += k
	}
	return t
}

// Pipeline is the stateful KinectFusion system.
type Pipeline struct {
	cfg     Config
	inFull  camera.Intrinsics // sensor resolution
	in      camera.Intrinsics // compute resolution (after size ratio)
	volume  *tsdf.Volume
	pose    math3.SE3
	hasRef  bool
	ref     icp.Reference
	frameNo int
	// pool recycles every per-frame map (pyramid depths, vertex/normal
	// maps, raycast buffers) so the steady state allocates nothing.
	pool imgproc.BufferPool
	// integratedSinceRaycast counts integrations since the last model
	// raycast, for the rendering-rate knob.
	integratedSinceRaycast int
	failures               int
}

// New builds a pipeline for a sensor with the given intrinsics, starting
// from initialPose (camera-to-world of the first frame).
func New(cfg Config, sensor camera.Intrinsics, initialPose math3.SE3) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := sensor.Validate(); err != nil {
		return nil, err
	}
	compute := sensor.ScaledTo(
		sensor.Width/cfg.ComputeSizeRatio,
		sensor.Height/cfg.ComputeSizeRatio,
	)
	if compute.Width < 8 || compute.Height < 8 {
		return nil, fmt.Errorf("kfusion: compute resolution %dx%d too small", compute.Width, compute.Height)
	}
	origin := cfg.VolumeCenter.Sub(math3.Splat3(cfg.VolumeSize / 2))
	p := &Pipeline{
		cfg:    cfg,
		inFull: sensor,
		in:     compute,
		volume: tsdf.New(cfg.VolumeResolution, cfg.VolumeSize, origin),
		pose:   initialPose,
	}
	return p, nil
}

// Config returns the active configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Pose returns the current camera-to-world estimate.
func (p *Pipeline) Pose() math3.SE3 { return p.pose }

// Volume exposes the reconstruction for rendering and mesh export.
func (p *Pipeline) Volume() *tsdf.Volume { return p.volume }

// ComputeIntrinsics returns the post-downsampling intrinsics.
func (p *Pipeline) ComputeIntrinsics() camera.Intrinsics { return p.in }

// TrackingFailures counts frames whose ICP was rejected.
func (p *Pipeline) TrackingFailures() int { return p.failures }

// Reference returns the current model raycast (world-frame vertex and
// normal maps) used as the tracking reference, and whether one exists
// yet. The GUI renders this as its 3D model pane.
//
// The returned maps are owned by the pipeline's buffer pool: they stay
// valid until the next ProcessFrame call, which may recycle them. Hold
// them across frames only via a deep copy.
func (p *Pipeline) Reference() (icp.Reference, bool) { return p.ref, p.hasRef }

// ProcessFrame runs the full pipeline on one depth image (at sensor
// resolution) and returns the per-frame result.
func (p *Pipeline) ProcessFrame(depth *imgproc.DepthMap) (*FrameResult, error) {
	if depth.Width != p.inFull.Width || depth.Height != p.inFull.Height {
		return nil, fmt.Errorf("kfusion: frame is %dx%d, sensor is %dx%d",
			depth.Width, depth.Height, p.inFull.Width, p.inFull.Height)
	}
	res := &FrameResult{Index: p.frameNo}

	// --- Preprocess: downsample, denoise, pyramid, vertex/normal maps.
	// Every map lives in the buffer pool and is recycled once the frame
	// is done.
	t0 := time.Now()
	pyr, cost := p.preprocess(depth)
	defer p.release(pyr)
	res.KernelCosts[KernelPreprocess] = cost
	res.KernelTimes[KernelPreprocess] = time.Since(t0)

	first := p.frameNo == 0

	// --- Track.
	if !first && p.hasRef && p.frameNo%p.cfg.TrackingRate == 0 {
		res.Attempted = true
		t0 = time.Now()
		tracked, icpRes, cost := p.track(pyr)
		res.KernelCosts[KernelTrack] = cost
		res.KernelTimes[KernelTrack] = time.Since(t0)
		res.ICP = icpRes
		res.Tracked = tracked
		if tracked {
			p.pose = icpRes.Pose
		} else {
			p.failures++
		}
	} else if first || p.hasRef {
		// First frame (defines the map) or a frame skipped by the
		// tracking rate (pose deliberately reused): not lost. A frame
		// with no model reference at all stays untracked.
		res.Tracked = true
	}
	res.Pose = p.pose

	// --- Integrate.
	shouldIntegrate := p.frameNo%p.cfg.IntegrationRate == 0 && (res.Tracked || first)
	if shouldIntegrate {
		t0 = time.Now()
		c := p.volume.Integrate(pyr.Depth[0], p.pose, p.in, p.cfg.Mu, p.cfg.MaxWeight)
		res.KernelCosts[KernelIntegrate] = c
		res.KernelTimes[KernelIntegrate] = time.Since(t0)
		res.Integrated = true
		p.integratedSinceRaycast++
	}

	// --- Raycast the model to refresh the tracking reference.
	if res.Integrated && (p.integratedSinceRaycast >= p.cfg.RenderingRate || !p.hasRef) {
		t0 = time.Now()
		// Recycle the outgoing reference maps (nil on the first raycast)
		// and march into fresh pool buffers — steady state ping-pongs
		// between the same two map pairs.
		p.pool.PutVertex(p.ref.Vertices)
		p.pool.PutNormal(p.ref.Normals)
		verts := p.pool.Vertex(p.in.Width, p.in.Height)
		norms := p.pool.Normal(p.in.Width, p.in.Height)
		rc := p.volume.RaycastInto(verts, norms, p.pose, p.in, p.cfg.Mu, 0.1, p.cfg.VolumeSize*1.8)
		res.KernelCosts[KernelRaycast] = rc.Cost
		res.KernelTimes[KernelRaycast] = time.Since(t0)
		p.ref = icp.Reference{
			Vertices: rc.Vertices,
			Normals:  rc.Normals,
			Pose:     p.pose,
			Intr:     p.in,
		}
		p.hasRef = true
		p.integratedSinceRaycast = 0
	}

	p.frameNo++
	return res, nil
}

// preprocessed holds the multi-scale maps of the current frame.
type preprocessed struct {
	Depth    []*imgproc.DepthMap
	Vertices []*imgproc.VertexMap
	Normals  []*imgproc.NormalMap
	Intr     []camera.Intrinsics
}

func (p *Pipeline) preprocess(depth *imgproc.DepthMap) (*preprocessed, imgproc.Cost) {
	var total imgproc.Cost

	// Downsample to compute resolution (ratio is a power of two). The
	// caller's input map is only ever read; intermediates come from the
	// pool and go straight back.
	work := depth
	for r := p.cfg.ComputeSizeRatio; r > 1; r /= 2 {
		half := p.pool.Depth(work.Width/2, work.Height/2)
		total.Add(imgproc.HalfSampleDepthInto(half, work, p.cfg.PyramidDiscontinuity))
		if work != depth {
			p.pool.PutDepth(work)
		}
		work = half
	}

	// Bilateral denoise at compute resolution.
	filtered := p.pool.Depth(work.Width, work.Height)
	total.Add(imgproc.BilateralFilterInto(
		filtered, work, p.cfg.BilateralRadius, p.cfg.BilateralSpatialSigma, p.cfg.BilateralRangeSigma,
	))
	if work != depth {
		p.pool.PutDepth(work)
	}

	levels := p.cfg.pyramidLevels()
	depths, c := imgproc.BuildDepthPyramidPooled(&p.pool, filtered, levels, p.cfg.PyramidDiscontinuity)
	total.Add(c)

	pp := &preprocessed{Depth: depths}
	for l, d := range depths {
		in := p.in.Downsample(l)
		vm := p.pool.Vertex(d.Width, d.Height)
		total.Add(imgproc.DepthToVertexMapInto(vm, d, in.BackProject))
		nm := p.pool.Normal(d.Width, d.Height)
		total.Add(imgproc.VertexToNormalMapInto(nm, vm))
		pp.Vertices = append(pp.Vertices, vm)
		pp.Normals = append(pp.Normals, nm)
		pp.Intr = append(pp.Intr, in)
	}
	return pp, total
}

// release returns one frame's scratch maps to the pool. The pyramid's
// depth maps all originate from the pool (level 0 is the bilateral
// output, never the caller's input), as do the vertex and normal maps.
func (p *Pipeline) release(pp *preprocessed) {
	for _, d := range pp.Depth {
		p.pool.PutDepth(d)
	}
	for _, m := range pp.Vertices {
		p.pool.PutVertex(m)
	}
	for _, m := range pp.Normals {
		p.pool.PutNormal(m)
	}
}

// track runs coarse-to-fine ICP against the model reference.
func (p *Pipeline) track(pyr *preprocessed) (bool, icp.Result, imgproc.Cost) {
	var total imgproc.Cost
	pose := p.pose
	var last icp.Result
	ran := false
	for level := len(pyr.Depth) - 1; level >= 0; level-- {
		iters := p.cfg.PyramidIterations[level]
		if iters <= 0 {
			continue
		}
		params := icp.Params{
			MaxIterations:        iters,
			ConvergenceThreshold: p.cfg.ICPThreshold,
			DistThreshold:        p.cfg.ICPDistThreshold,
			NormalThreshold:      p.cfg.ICPNormalThreshold,
			Damping:              1e-6,
		}
		frame := icp.Frame{Vertices: pyr.Vertices[level], Normals: pyr.Normals[level]}
		r := icp.Solve(p.ref, frame, pose, params)
		total.Add(r.Cost)
		pose = r.Pose
		last = r
		ran = true
	}
	if !ran {
		return false, last, total
	}

	// Quality gate: reject divergent or under-constrained tracks.
	finest := pyr.Vertices[0]
	minInliers := int(p.cfg.MinInlierFraction * float64(finest.Width*finest.Height))
	if last.RMSE > p.cfg.TrackRMSEThreshold || last.Inliers < minInliers {
		return false, last, total
	}
	return true, last, total
}
