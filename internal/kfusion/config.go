// Package kfusion implements the complete KinectFusion dense SLAM
// pipeline (Newcombe et al., ISMAR 2011) in pure Go: depth preprocessing,
// multi-scale point-to-plane ICP tracking against a ray-cast model, TSDF
// volumetric integration and surface ray-casting.
//
// The Config type exposes exactly the algorithmic parameter space the
// paper's HyperMapper design-space exploration tunes: volume resolution,
// compute-size ratio, mu distance, ICP convergence threshold, per-level
// pyramid iterations, and integration/tracking/rendering rates.
package kfusion

import (
	"fmt"

	"slamgo/internal/math3"
)

// Config is the full algorithmic configuration of the pipeline.
type Config struct {
	// ComputeSizeRatio divides the input resolution before any
	// processing (1, 2, 4 or 8). Higher ratios are dramatically faster
	// and less accurate — one axis of the paper's trade-off.
	ComputeSizeRatio int

	// VolumeResolution is the TSDF grid resolution per side (voxels).
	VolumeResolution int

	// VolumeSize is the TSDF cube edge length in metres.
	VolumeSize float64

	// VolumeCenter positions the reconstruction cube in the world.
	VolumeCenter math3.Vec3

	// Mu is the TSDF truncation band in metres.
	Mu float64

	// ICPThreshold is the convergence threshold on the pose-update twist
	// norm (the DSE's "icp threshold" parameter).
	ICPThreshold float64

	// PyramidIterations holds the maximum ICP iterations per pyramid
	// level, finest first (KinectFusion default {10, 5, 4}).
	PyramidIterations [3]int

	// IntegrationRate integrates every Nth frame (1 = every frame).
	IntegrationRate int

	// TrackingRate tracks every Nth frame; untracked frames reuse the
	// previous pose (1 = every frame).
	TrackingRate int

	// RenderingRate re-raycasts the model reference every Nth integrated
	// frame (1 = every frame).
	RenderingRate int

	// BilateralRadius is the denoising kernel radius in pixels; 0
	// disables filtering.
	BilateralRadius int
	// BilateralSpatialSigma is the spatial Gaussian σ (pixels).
	BilateralSpatialSigma float64
	// BilateralRangeSigma is the range Gaussian σ (metres).
	BilateralRangeSigma float64

	// ICPDistThreshold gates correspondences by distance (metres).
	ICPDistThreshold float64
	// ICPNormalThreshold gates correspondences by normal angle (radians).
	ICPNormalThreshold float64

	// MaxWeight caps TSDF integration weights.
	MaxWeight float32

	// TrackRMSEThreshold declares tracking failure above this residual.
	TrackRMSEThreshold float64
	// MinInlierFraction declares tracking failure when fewer than this
	// fraction of pixels found correspondences.
	MinInlierFraction float64

	// PyramidDiscontinuity is the depth band for validity-aware
	// half-sampling (metres).
	PyramidDiscontinuity float32
}

// DefaultConfig mirrors the stock KinectFusion configuration SLAMBench
// ships (its "default" point in Figure 2): 256³ volume, compute ratio 2,
// mu 0.1, pyramid {10,5,4}, integrate every frame.
func DefaultConfig() Config {
	return Config{
		ComputeSizeRatio:      2,
		VolumeResolution:      256,
		VolumeSize:            5.6,
		VolumeCenter:          math3.V3(0, 1.3, 0),
		Mu:                    0.1,
		ICPThreshold:          1e-5,
		PyramidIterations:     [3]int{10, 5, 4},
		IntegrationRate:       1,
		TrackingRate:          1,
		RenderingRate:         1,
		BilateralRadius:       2,
		BilateralSpatialSigma: 4.0,
		BilateralRangeSigma:   0.1,
		ICPDistThreshold:      0.1,
		ICPNormalThreshold:    0.8,
		MaxWeight:             100,
		TrackRMSEThreshold:    0.05,
		MinInlierFraction:     0.10,
		PyramidDiscontinuity:  0.1,
	}
}

// Validate reports descriptive errors for out-of-domain configurations.
func (c Config) Validate() error {
	switch c.ComputeSizeRatio {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("kfusion: compute size ratio %d not in {1,2,4,8}", c.ComputeSizeRatio)
	}
	if c.VolumeResolution < 16 || c.VolumeResolution > 1024 {
		return fmt.Errorf("kfusion: volume resolution %d out of [16,1024]", c.VolumeResolution)
	}
	if c.VolumeSize <= 0 {
		return fmt.Errorf("kfusion: volume size %g must be positive", c.VolumeSize)
	}
	if c.Mu <= 0 {
		return fmt.Errorf("kfusion: mu %g must be positive", c.Mu)
	}
	if c.ICPThreshold < 0 {
		return fmt.Errorf("kfusion: ICP threshold %g must be non-negative", c.ICPThreshold)
	}
	for i, it := range c.PyramidIterations {
		if it < 0 || it > 100 {
			return fmt.Errorf("kfusion: pyramid iterations[%d]=%d out of [0,100]", i, it)
		}
	}
	if c.PyramidIterations[0]+c.PyramidIterations[1]+c.PyramidIterations[2] == 0 {
		return fmt.Errorf("kfusion: all pyramid levels disabled")
	}
	if c.IntegrationRate < 1 {
		return fmt.Errorf("kfusion: integration rate %d must be ≥1", c.IntegrationRate)
	}
	if c.TrackingRate < 1 {
		return fmt.Errorf("kfusion: tracking rate %d must be ≥1", c.TrackingRate)
	}
	if c.RenderingRate < 1 {
		return fmt.Errorf("kfusion: rendering rate %d must be ≥1", c.RenderingRate)
	}
	if c.MaxWeight <= 0 {
		return fmt.Errorf("kfusion: max weight %g must be positive", c.MaxWeight)
	}
	return nil
}

// pyramidLevels returns how many pyramid levels carry iterations.
func (c Config) pyramidLevels() int {
	levels := 0
	for i, it := range c.PyramidIterations {
		if it > 0 {
			levels = i + 1
		}
	}
	if levels == 0 {
		levels = 1
	}
	return levels
}
