package parallel

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestChunkBoundsCoverExactly(t *testing.T) {
	for _, n := range []int{1, 2, 3, 63, 64, 65, 100, 1000, 4096} {
		nc := chunkCount(n)
		covered := 0
		prevHi := 0
		for c := 0; c < nc; c++ {
			lo, hi := chunkBounds(n, nc, c)
			if lo != prevHi {
				t.Fatalf("n=%d chunk %d starts at %d, want %d", n, c, lo, prevHi)
			}
			if hi <= lo {
				t.Fatalf("n=%d chunk %d empty [%d,%d)", n, c, lo, hi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != n || prevHi != n {
			t.Fatalf("n=%d covered %d ending at %d", n, covered, prevHi)
		}
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		const n = 1337
		var hits [n]atomic.Int32
		For(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	called := false
	For(0, 4, func(lo, hi int) { called = true })
	For(-3, 4, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
}

// TestReduceDeterministicAcrossWorkers is the core contract: a
// floating-point sum must be bit-identical for every worker count
// because chunk boundaries and merge order depend only on n.
func TestReduceDeterministicAcrossWorkers(t *testing.T) {
	const n = 10007
	vals := make([]float64, n)
	for i := range vals {
		// Values at wildly different magnitudes so association order
		// actually matters.
		vals[i] = math.Pow(10, float64(i%30)-15) * float64(1+i%7)
	}
	sum := func(workers int) float64 {
		return Reduce(n, workers, func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += vals[i]
			}
			return s
		}, func(acc *float64, p float64) { *acc += p })
	}
	want := sum(1)
	for _, w := range []int{2, 3, 4, 8, 16, 64} {
		if got := sum(w); got != want {
			t.Fatalf("workers=%d sum %v != workers=1 sum %v", w, got, want)
		}
	}
}

func TestReduceEmpty(t *testing.T) {
	got := Reduce(0, 4, func(lo, hi int) int { return 1 }, func(a *int, b int) { *a += b })
	if got != 0 {
		t.Fatalf("empty reduce = %d", got)
	}
}

func TestMapOrderedPreservesOrder(t *testing.T) {
	items := make([]int, 513)
	for i := range items {
		items[i] = i * 3
	}
	for _, workers := range []int{1, 2, 8, 100} {
		out := MapOrdered(workers, items, func(i, v int) int { return v + i })
		for i, v := range out {
			if v != i*4 {
				t.Fatalf("workers=%d out[%d]=%d want %d", workers, i, v, i*4)
			}
		}
	}
	if MapOrdered(4, []int(nil), func(i, v int) int { return v }) != nil {
		t.Fatal("nil items should map to nil")
	}
}

func TestWorkersKnob(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit worker count ignored")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("defaulted worker count < 1")
	}
}

func BenchmarkReduceSum(b *testing.B) {
	b.ReportAllocs()
	const n = 1 << 16
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Reduce(n, 0, func(lo, hi int) float64 {
			s := 0.0
			for j := lo; j < hi; j++ {
				s += vals[j]
			}
			return s
		}, func(acc *float64, p float64) { *acc += p })
	}
}
