package parallel

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestChunkBoundsCoverExactly(t *testing.T) {
	for _, n := range []int{1, 2, 3, 63, 64, 65, 100, 1000, 4096} {
		nc := chunkCount(n)
		covered := 0
		prevHi := 0
		for c := 0; c < nc; c++ {
			lo, hi := chunkBounds(n, nc, c)
			if lo != prevHi {
				t.Fatalf("n=%d chunk %d starts at %d, want %d", n, c, lo, prevHi)
			}
			if hi <= lo {
				t.Fatalf("n=%d chunk %d empty [%d,%d)", n, c, lo, hi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != n || prevHi != n {
			t.Fatalf("n=%d covered %d ending at %d", n, covered, prevHi)
		}
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		const n = 1337
		var hits [n]atomic.Int32
		For(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	called := false
	For(0, 4, func(lo, hi int) { called = true })
	For(-3, 4, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
}

// TestReduceDeterministicAcrossWorkers is the core contract: a
// floating-point sum must be bit-identical for every worker count
// because chunk boundaries and merge order depend only on n.
func TestReduceDeterministicAcrossWorkers(t *testing.T) {
	const n = 10007
	vals := make([]float64, n)
	for i := range vals {
		// Values at wildly different magnitudes so association order
		// actually matters.
		vals[i] = math.Pow(10, float64(i%30)-15) * float64(1+i%7)
	}
	sum := func(workers int) float64 {
		return Reduce(n, workers, func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += vals[i]
			}
			return s
		}, func(acc *float64, p float64) { *acc += p })
	}
	want := sum(1)
	for _, w := range []int{2, 3, 4, 8, 16, 64} {
		if got := sum(w); got != want {
			t.Fatalf("workers=%d sum %v != workers=1 sum %v", w, got, want)
		}
	}
}

func TestReduceEmpty(t *testing.T) {
	got := Reduce(0, 4, func(lo, hi int) int { return 1 }, func(a *int, b int) { *a += b })
	if got != 0 {
		t.Fatalf("empty reduce = %d", got)
	}
}

func TestMapOrderedPreservesOrder(t *testing.T) {
	items := make([]int, 513)
	for i := range items {
		items[i] = i * 3
	}
	for _, workers := range []int{1, 2, 8, 100} {
		out := MapOrdered(workers, items, func(i, v int) int { return v + i })
		for i, v := range out {
			if v != i*4 {
				t.Fatalf("workers=%d out[%d]=%d want %d", workers, i, v, i*4)
			}
		}
	}
	if MapOrdered(4, []int(nil), func(i, v int) int { return v }) != nil {
		t.Fatal("nil items should map to nil")
	}
}

// recoverTaskPanic runs f expecting it to panic with a *TaskPanic and
// returns it; the test fails if f returns normally or panics with
// anything else.
func recoverTaskPanic(t *testing.T, f func()) *TaskPanic {
	t.Helper()
	var tp *TaskPanic
	func() {
		defer func() {
			p := recover()
			if p == nil {
				t.Fatal("no panic surfaced")
			}
			var ok bool
			if tp, ok = p.(*TaskPanic); !ok {
				t.Fatalf("panic value %T, want *TaskPanic", p)
			}
		}()
		f()
	}()
	return tp
}

// TestMapOrderedContainsPanics: a panicking task must not kill the
// process from a pool goroutine; it surfaces on the caller as a
// recoverable *TaskPanic carrying the original value.
func TestMapOrderedContainsPanics(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, workers := range []int{1, 2, 8} {
		tp := recoverTaskPanic(t, func() {
			MapOrdered(workers, items, func(i, v int) int {
				if v == 3 {
					panic("poisoned item")
				}
				return v
			})
		})
		if tp.Index != 3 || tp.Unwrap() != "poisoned item" {
			t.Fatalf("workers=%d: TaskPanic{Index: %d, Value: %v}", workers, tp.Index, tp.Value)
		}
		if len(tp.Stack) == 0 {
			t.Fatalf("workers=%d: TaskPanic has no stack", workers)
		}
	}
}

// TestPanicChoiceDeterministic: with several panicking tasks the
// lowest index surfaces, whatever the worker count or scheduling.
func TestPanicChoiceDeterministic(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 4, 16} {
		for run := 0; run < 3; run++ {
			tp := recoverTaskPanic(t, func() {
				MapOrdered(workers, items, func(i, v int) int {
					if v == 11 || v == 40 || v == 63 {
						panic(v)
					}
					return v
				})
			})
			if tp.Index != 11 || tp.Unwrap() != 11 {
				t.Fatalf("workers=%d run=%d: surfaced task %d (%v), want 11",
					workers, run, tp.Index, tp.Value)
			}
		}
	}
}

// TestForAndReduceContainPanics covers the chunked entry points; the
// chunk index (not the item index) identifies the failing task.
func TestForAndReduceContainPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		tp := recoverTaskPanic(t, func() {
			For(100, workers, func(lo, hi int) {
				if lo <= 42 && 42 < hi {
					panic("for-boom")
				}
			})
		})
		if tp.Unwrap() != "for-boom" {
			t.Fatalf("For workers=%d: %v", workers, tp.Value)
		}
		tp = recoverTaskPanic(t, func() {
			Reduce(100, workers, func(lo, hi int) int {
				if lo == 0 {
					panic("reduce-boom")
				}
				return hi - lo
			}, func(a *int, b int) { *a += b })
		})
		if tp.Index != 0 || tp.Unwrap() != "reduce-boom" {
			t.Fatalf("Reduce workers=%d: TaskPanic{Index: %d, Value: %v}", workers, tp.Index, tp.Value)
		}
	}
}

// TestNestedPanicUnwraps: a panic crossing two parallel regions is
// wrapped once per level and Unwrap reaches the root value.
func TestNestedPanicUnwraps(t *testing.T) {
	tp := recoverTaskPanic(t, func() {
		MapOrdered(2, []int{0, 1}, func(i, v int) int {
			if v == 1 {
				MapOrdered(2, []int{0, 1}, func(j, w int) int {
					panic("root cause")
				})
			}
			return v
		})
	})
	if tp.Unwrap() != "root cause" {
		t.Fatalf("nested unwrap = %v", tp.Unwrap())
	}
	if _, ok := tp.Value.(*TaskPanic); !ok {
		t.Fatalf("outer TaskPanic.Value is %T, want nested *TaskPanic", tp.Value)
	}
}

func TestWorkersKnob(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit worker count ignored")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("defaulted worker count < 1")
	}
}

func BenchmarkReduceSum(b *testing.B) {
	b.ReportAllocs()
	const n = 1 << 16
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Reduce(n, 0, func(lo, hi int) float64 {
			s := 0.0
			for j := lo; j < hi; j++ {
				s += vals[j]
			}
			return s
		}, func(acc *float64, p float64) { *acc += p })
	}
}
