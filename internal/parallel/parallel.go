// Package parallel is the shared concurrency substrate of the
// reproduction: a bounded worker pool over contiguous index chunks, a
// deterministic chunked map-reduce, and an ordered map for expensive
// uneven tasks (DSE evaluations, forest fitting).
//
// Determinism is the design constraint that shapes everything here. The
// DSE must produce byte-identical results for any worker count, and the
// frame kernels reduce floating-point sums whose value depends on
// association order. Both are solved the same way: work is split into
// chunks whose boundaries depend only on the problem size n — never on
// the worker count — and per-chunk partial results are merged serially
// in ascending chunk order. Workers race only over *which* chunk they
// pull next (an atomic counter), not over where chunk boundaries fall or
// the order partials combine, so ICP normal equations, raycast step
// counts and surrogate predictions are bit-identical whether the host
// has 1 core or 64.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxChunks bounds how finely an index range is split. More chunks than
// workers gives the atomic-counter scheduler room to balance uneven
// work (rays that march far, rows dense with correspondences) without
// making per-chunk partials costly to merge.
const maxChunks = 64

// active counts workers currently running across all parallel regions.
// Nested parallelism (a ParallelEvaluator fanning out SLAM evaluations
// whose kernels themselves call Reduce) would otherwise oversubscribe
// the CPU with Workers × GOMAXPROCS runnable goroutines; capWorkers
// gives inner regions only the cores the outer region left idle. This
// is pure scheduling backpressure — chunk boundaries and merge order
// never depend on it, so results are unaffected.
var active atomic.Int64

// capWorkers shrinks a requested worker count to the idle core budget.
// Top-level regions (no other region running) get what they asked for;
// nested regions get at most the cores the enclosing regions left idle,
// always at least one.
func capWorkers(w int) int {
	a := int(active.Load())
	if a == 0 {
		return w
	}
	idle := runtime.GOMAXPROCS(0) - a
	if w > idle {
		w = idle
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Workers resolves a worker-count knob: n ≥ 1 is used as-is, anything
// else (the zero value of a config field) means GOMAXPROCS.
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// chunkCount splits n items into a chunk count that depends only on n.
func chunkCount(n int) int {
	if n < maxChunks {
		return n
	}
	return maxChunks
}

// For runs body over [0,n) split into contiguous chunks scheduled across
// at most workers goroutines (workers ≤ 0 means GOMAXPROCS). Chunk
// boundaries depend only on n, so any chunk-local side effects land
// identically regardless of worker count. body must not touch the same
// memory from two different chunks, and its effects must not depend on
// how the range is subdivided (with one worker the whole range may
// arrive as a single call) — per-chunk accumulators belong in Reduce.
func For(n, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	nc := chunkCount(n)
	w := Workers(workers)
	if w > nc {
		w = nc
	}
	w = capWorkers(w)
	if w <= 1 {
		body(0, n)
		return
	}
	active.Add(int64(w))
	defer active.Add(-int64(w))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nc {
					return
				}
				lo, hi := chunkBounds(n, nc, c)
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// chunkBounds returns the half-open range of chunk c of nc chunks over n.
func chunkBounds(n, nc, c int) (lo, hi int) {
	size := n / nc
	rem := n % nc
	// The first rem chunks carry one extra item.
	if c < rem {
		lo = c * (size + 1)
		hi = lo + size + 1
		return lo, hi
	}
	lo = rem*(size+1) + (c-rem)*size
	return lo, lo + size
}

// Reduce computes a per-chunk partial with body and folds the partials
// with merge in ascending chunk order. Because the chunking depends only
// on n, the fold is associated identically for every worker count —
// floating-point reductions (ICP normal equations, cost sums) come out
// bit-exact no matter the parallelism.
func Reduce[A any](n, workers int, body func(lo, hi int) A, merge func(*A, A)) A {
	var zero A
	if n <= 0 {
		return zero
	}
	nc := chunkCount(n)
	w := Workers(workers)
	if w > nc {
		w = nc
	}
	w = capWorkers(w)
	if w <= 1 {
		// Same chunking as the parallel path so the fold associates
		// identically — workers=1 is the reference everything must match.
		lo, hi := chunkBounds(n, nc, 0)
		acc := body(lo, hi)
		for c := 1; c < nc; c++ {
			lo, hi = chunkBounds(n, nc, c)
			merge(&acc, body(lo, hi))
		}
		return acc
	}
	active.Add(int64(w))
	defer active.Add(-int64(w))
	partials := make([]A, nc)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nc {
					return
				}
				lo, hi := chunkBounds(n, nc, c)
				partials[c] = body(lo, hi)
			}
		}()
	}
	wg.Wait()
	acc := partials[0]
	for c := 1; c < nc; c++ {
		merge(&acc, partials[c])
	}
	return acc
}

// MapOrdered applies fn to every item on a bounded pool and returns the
// results in input order. Items are claimed one at a time from an atomic
// counter, which keeps long tasks (a slow SLAM evaluation, a deep tree)
// from serialising behind short ones. fn receives the item index so
// callers can derive per-item deterministic state (e.g. seeds).
func MapOrdered[T, R any](workers int, items []T, fn func(i int, item T) R) []R {
	n := len(items)
	if n == 0 {
		return nil
	}
	out := make([]R, n)
	w := Workers(workers)
	if w > n {
		w = n
	}
	w = capWorkers(w)
	if w <= 1 {
		for i, it := range items {
			out[i] = fn(i, it)
		}
		return out
	}
	active.Add(int64(w))
	defer active.Add(-int64(w))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i, items[i])
			}
		}()
	}
	wg.Wait()
	return out
}
