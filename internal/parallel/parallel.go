// Package parallel is the shared concurrency substrate of the
// reproduction: a bounded worker pool over contiguous index chunks, a
// deterministic chunked map-reduce, and an ordered map for expensive
// uneven tasks (DSE evaluations, forest fitting).
//
// Determinism is the design constraint that shapes everything here. The
// DSE must produce byte-identical results for any worker count, and the
// frame kernels reduce floating-point sums whose value depends on
// association order. Both are solved the same way: work is split into
// chunks whose boundaries depend only on the problem size n — never on
// the worker count — and per-chunk partial results are merged serially
// in ascending chunk order. Workers race only over *which* chunk they
// pull next (an atomic counter), not over where chunk boundaries fall or
// the order partials combine, so ICP normal equations, raycast step
// counts and surrogate predictions are bit-identical whether the host
// has 1 core or 64.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// TaskPanic is the value re-raised on the calling goroutine when a task
// body panics inside a parallel region. A panic on a pool goroutine
// would otherwise kill the whole process with no recovery point; the
// pool instead records it, lets the surviving workers drain, and
// panics on the caller — where a defer can contain the damage to the
// one task that misbehaved (the campaign engine quarantines a
// panicking cell this way). When several tasks panic, the one with the
// lowest chunk/item index wins, so which panic surfaces does not
// depend on the worker count.
type TaskPanic struct {
	// Index is the chunk (For/Reduce) or item (MapOrdered) the panic
	// came from.
	Index int
	// Value is the original panic value. Nested parallel regions wrap
	// panics once per level; unwrap through Value to reach the root.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (p *TaskPanic) String() string {
	return fmt.Sprintf("parallel: task %d panicked: %v", p.Index, p.Value)
}

// Unwrap returns the root panic value beneath any chain of TaskPanics
// (one per nested parallel region the panic crossed).
func (p *TaskPanic) Unwrap() any {
	v := p.Value
	for {
		tp, ok := v.(*TaskPanic)
		if !ok {
			return v
		}
		v = tp.Value
	}
}

// panicTrap records the lowest-index panic of a parallel region. The
// tripped flag lets workers stop claiming new chunks once a panic is
// pending — the region is going to re-panic anyway, so starting more
// work only wastes cycles.
type panicTrap struct {
	mu      sync.Mutex
	tripped atomic.Bool
	p       *TaskPanic
}

func (t *panicTrap) record(index int, v any) {
	stack := debug.Stack()
	t.mu.Lock()
	if t.p == nil || index < t.p.Index {
		t.p = &TaskPanic{Index: index, Value: v, Stack: stack}
	}
	t.mu.Unlock()
	t.tripped.Store(true)
}

// run executes f for task index, converting a panic into a record.
func (t *panicTrap) run(index int, f func()) {
	defer func() {
		if v := recover(); v != nil {
			t.record(index, v)
		}
	}()
	f()
}

// rethrow re-raises the recorded panic, if any, on the caller.
func (t *panicTrap) rethrow() {
	if t.p != nil {
		panic(t.p)
	}
}

// maxChunks bounds how finely an index range is split. More chunks than
// workers gives the atomic-counter scheduler room to balance uneven
// work (rays that march far, rows dense with correspondences) without
// making per-chunk partials costly to merge.
const maxChunks = 64

// active counts workers currently running across all parallel regions.
// Nested parallelism (a ParallelEvaluator fanning out SLAM evaluations
// whose kernels themselves call Reduce) would otherwise oversubscribe
// the CPU with Workers × GOMAXPROCS runnable goroutines; capWorkers
// gives inner regions only the cores the outer region left idle. This
// is pure scheduling backpressure — chunk boundaries and merge order
// never depend on it, so results are unaffected.
var active atomic.Int64

// capWorkers shrinks a requested worker count to the idle core budget.
// Top-level regions (no other region running) get what they asked for;
// nested regions get at most the cores the enclosing regions left idle,
// always at least one.
func capWorkers(w int) int {
	a := int(active.Load())
	if a == 0 {
		return w
	}
	idle := runtime.GOMAXPROCS(0) - a
	if w > idle {
		w = idle
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Workers resolves a worker-count knob: n ≥ 1 is used as-is, anything
// else (the zero value of a config field) means GOMAXPROCS.
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// chunkCount splits n items into a chunk count that depends only on n.
func chunkCount(n int) int {
	if n < maxChunks {
		return n
	}
	return maxChunks
}

// For runs body over [0,n) split into contiguous chunks scheduled across
// at most workers goroutines (workers ≤ 0 means GOMAXPROCS). Chunk
// boundaries depend only on n, so any chunk-local side effects land
// identically regardless of worker count. body must not touch the same
// memory from two different chunks, and its effects must not depend on
// how the range is subdivided (with one worker the whole range may
// arrive as a single call) — per-chunk accumulators belong in Reduce.
// A panicking body does not kill the process: the panic is re-raised on
// the caller as a *TaskPanic (see its doc), which a caller-side defer
// can recover.
func For(n, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	nc := chunkCount(n)
	w := Workers(workers)
	if w > nc {
		w = nc
	}
	w = capWorkers(w)
	var trap panicTrap
	if w <= 1 {
		trap.run(0, func() { body(0, n) })
		trap.rethrow()
		return
	}
	active.Add(int64(w))
	defer active.Add(-int64(w))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for !trap.tripped.Load() {
				c := int(next.Add(1)) - 1
				if c >= nc {
					return
				}
				lo, hi := chunkBounds(n, nc, c)
				trap.run(c, func() { body(lo, hi) })
			}
		}()
	}
	wg.Wait()
	trap.rethrow()
}

// chunkBounds returns the half-open range of chunk c of nc chunks over n.
func chunkBounds(n, nc, c int) (lo, hi int) {
	size := n / nc
	rem := n % nc
	// The first rem chunks carry one extra item.
	if c < rem {
		lo = c * (size + 1)
		hi = lo + size + 1
		return lo, hi
	}
	lo = rem*(size+1) + (c-rem)*size
	return lo, lo + size
}

// Reduce computes a per-chunk partial with body and folds the partials
// with merge in ascending chunk order. Because the chunking depends only
// on n, the fold is associated identically for every worker count —
// floating-point reductions (ICP normal equations, cost sums) come out
// bit-exact no matter the parallelism.
func Reduce[A any](n, workers int, body func(lo, hi int) A, merge func(*A, A)) A {
	var zero A
	if n <= 0 {
		return zero
	}
	nc := chunkCount(n)
	w := Workers(workers)
	if w > nc {
		w = nc
	}
	w = capWorkers(w)
	var trap panicTrap
	if w <= 1 {
		// Same chunking as the parallel path so the fold associates
		// identically — workers=1 is the reference everything must match.
		var acc A
		for c := 0; c < nc && !trap.tripped.Load(); c++ {
			lo, hi := chunkBounds(n, nc, c)
			trap.run(c, func() {
				part := body(lo, hi)
				if c == 0 {
					acc = part
				} else {
					merge(&acc, part)
				}
			})
		}
		trap.rethrow()
		return acc
	}
	active.Add(int64(w))
	defer active.Add(-int64(w))
	partials := make([]A, nc)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for !trap.tripped.Load() {
				c := int(next.Add(1)) - 1
				if c >= nc {
					return
				}
				lo, hi := chunkBounds(n, nc, c)
				trap.run(c, func() { partials[c] = body(lo, hi) })
			}
		}()
	}
	wg.Wait()
	trap.rethrow()
	acc := partials[0]
	for c := 1; c < nc; c++ {
		merge(&acc, partials[c])
	}
	return acc
}

// MapOrdered applies fn to every item on a bounded pool and returns the
// results in input order. Items are claimed one at a time from an atomic
// counter, which keeps long tasks (a slow SLAM evaluation, a deep tree)
// from serialising behind short ones. fn receives the item index so
// callers can derive per-item deterministic state (e.g. seeds). A
// panicking fn is contained and re-raised on the caller as a
// *TaskPanic (lowest item index wins), recoverable by a caller-side
// defer.
func MapOrdered[T, R any](workers int, items []T, fn func(i int, item T) R) []R {
	n := len(items)
	if n == 0 {
		return nil
	}
	out := make([]R, n)
	w := Workers(workers)
	if w > n {
		w = n
	}
	w = capWorkers(w)
	var trap panicTrap
	if w <= 1 {
		for i := 0; i < n && !trap.tripped.Load(); i++ {
			trap.run(i, func() { out[i] = fn(i, items[i]) })
		}
		trap.rethrow()
		return out
	}
	active.Add(int64(w))
	defer active.Add(-int64(w))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for !trap.tripped.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				trap.run(i, func() { out[i] = fn(i, items[i]) })
			}
		}()
	}
	wg.Wait()
	trap.rethrow()
	return out
}
