package slambench

import (
	"encoding/json"
	"io"
)

// jsonSummary is the stable external schema for machine consumption of a
// run summary (plotting scripts, dashboards). Per-frame records are
// included without kernel maps to keep files compact.
type jsonSummary struct {
	System          string  `json:"system"`
	Sequence        string  `json:"sequence"`
	Frames          int     `json:"frames"`
	TrackedFraction float64 `json:"tracked_fraction"`

	ATEMax   float64 `json:"ate_max_m"`
	ATERmse  float64 `json:"ate_rmse_m"`
	ATEMean  float64 `json:"ate_mean_m"`
	RPETrans float64 `json:"rpe_trans_rmse_m"`
	RPERot   float64 `json:"rpe_rot_rmse_rad"`

	WallFPS float64 `json:"wall_fps"`

	Device       string  `json:"device,omitempty"`
	SimFPS       float64 `json:"sim_fps,omitempty"`
	SimMeanPower float64 `json:"sim_mean_power_w,omitempty"`
	SimEnergy    float64 `json:"sim_total_energy_j,omitempty"`
	RealTime     bool    `json:"real_time"`

	Frames2 []jsonFrame `json:"per_frame"`
}

type jsonFrame struct {
	Index      int     `json:"i"`
	Time       float64 `json:"t"`
	Tracked    bool    `json:"tracked"`
	ATE        float64 `json:"ate_m"`
	WallMs     float64 `json:"wall_ms"`
	Ops        int64   `json:"ops"`
	Bytes      int64   `json:"bytes"`
	SimLatency float64 `json:"sim_latency_s,omitempty"`
	SimPower   float64 `json:"sim_power_w,omitempty"`
}

// WriteJSON serialises a summary in the stable JSON schema.
func WriteJSON(w io.Writer, s *Summary) error {
	out := jsonSummary{
		System:          s.System,
		Sequence:        s.Sequence,
		Frames:          s.Frames,
		TrackedFraction: s.TrackedFraction,
		ATEMax:          s.ATE.Max,
		ATERmse:         s.ATE.RMSE,
		ATEMean:         s.ATE.Mean,
		RPETrans:        s.RPE.TransRMSE,
		RPERot:          s.RPE.RotRMSE,
		WallFPS:         s.WallFPS,
		Device:          s.Device,
		SimFPS:          s.SimFPS,
		SimMeanPower:    s.SimMeanPower,
		SimEnergy:       s.SimTotalEnergy,
		RealTime:        s.MeetsRealTime(),
	}
	for _, r := range s.Records {
		out.Frames2 = append(out.Frames2, jsonFrame{
			Index:      r.Index,
			Time:       r.Time,
			Tracked:    r.Tracked,
			ATE:        r.ATE,
			WallMs:     float64(r.WallTime.Microseconds()) / 1000,
			Ops:        r.Cost.Ops,
			Bytes:      r.Cost.Bytes,
			SimLatency: r.SimLatency,
			SimPower:   r.SimPower,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
