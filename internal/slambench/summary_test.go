package slambench

import (
	"testing"
	"time"

	"slamgo/internal/device"
	"slamgo/internal/odometry"
)

func TestMeetsRealTime(t *testing.T) {
	s := &Summary{SimFPS: 35}
	if !s.MeetsRealTime() {
		t.Fatal("35 FPS not real-time")
	}
	s.SimFPS = 12
	if s.MeetsRealTime() {
		t.Fatal("12 FPS reported real-time")
	}
}

func TestRunnerSensorFPSAffectsDeadlines(t *testing.T) {
	seq := testSeq(t, 6)
	model := device.NewModel(device.OdroidXU3())
	cfg := testKFConfig()

	runAt := func(fps float64) *Summary {
		r := &Runner{Model: model, SensorFPS: fps}
		sum, err := r.Run(NewKFusion(cfg, seq), seq)
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	// The same workload meets more deadlines at a slower sensor rate.
	slow := runAt(5)
	fast := runAt(120)
	if slow.SimRealTimeFraction < fast.SimRealTimeFraction {
		t.Fatalf("deadline fractions inverted: %v at 5 Hz vs %v at 120 Hz",
			slow.SimRealTimeFraction, fast.SimRealTimeFraction)
	}
	// Mean latency is rate-independent.
	if slow.SimMeanLatency != fast.SimMeanLatency {
		t.Fatal("latency depends on sensor rate")
	}
}

func TestRunnerRecordsPerFrameFields(t *testing.T) {
	seq := testSeq(t, 5)
	r := &Runner{Model: device.NewModel(device.OdroidXU3())}
	sum, err := r.Run(NewKFusion(testKFConfig(), seq), seq)
	if err != nil {
		t.Fatal(err)
	}
	var lastTime float64 = -1
	for i, rec := range sum.Records {
		if rec.Index != i {
			t.Fatalf("record %d has index %d", i, rec.Index)
		}
		if rec.Time <= lastTime {
			t.Fatal("record times not increasing")
		}
		lastTime = rec.Time
		if rec.WallTime <= 0 || rec.WallTime > time.Minute {
			t.Fatalf("implausible wall time %v", rec.WallTime)
		}
		if rec.SimLatency <= 0 || rec.SimEnergy <= 0 {
			t.Fatalf("record %d missing device results", i)
		}
		if rec.Cost.Ops <= 0 {
			t.Fatalf("record %d missing cost", i)
		}
		if len(rec.KernelCosts) == 0 {
			t.Fatalf("record %d missing kernel costs", i)
		}
	}
}

func TestOdometryRecordsATE(t *testing.T) {
	seq := testSeq(t, 6)
	cfg := odometry.DefaultConfig()
	cfg.ComputeSizeRatio = 1
	sum, err := (&Runner{}).Run(NewOdometry(cfg, seq), seq)
	if err != nil {
		t.Fatal(err)
	}
	// Per-frame ATE populated (zero only plausibly at frame 0).
	nonzero := 0
	for _, rec := range sum.Records {
		if rec.ATE > 0 {
			nonzero++
		}
	}
	if nonzero < len(sum.Records)/2 {
		t.Fatalf("per-frame ATE mostly zero (%d/%d)", nonzero, len(sum.Records))
	}
}
