package slambench

import (
	"fmt"

	"slamgo/internal/camera"
	"slamgo/internal/dataset"
)

// Subsampled is a stride view over a sequence: its frame i is frame
// stride·i of the base sequence, timestamps and ground truth included.
// It is the low-fidelity workload of the multi-fidelity evaluation
// ladder — a configuration that tracks a 4×-subsampled sequence sees
// 4× the inter-frame motion on a quarter of the frames, so it costs a
// quarter of a full run while still separating robust configurations
// from fragile ones. The view shares the base sequence's frames and is
// safe for concurrent readers whenever the base is.
type Subsampled struct {
	Base   dataset.Sequence
	Stride int
}

// Subsample wraps base in a stride view; stride ≤ 1 returns base
// unchanged.
func Subsample(base dataset.Sequence, stride int) dataset.Sequence {
	if stride <= 1 {
		return base
	}
	return &Subsampled{Base: base, Stride: stride}
}

// Name implements dataset.Sequence.
func (s *Subsampled) Name() string {
	return fmt.Sprintf("%s~1/%d", s.Base.Name(), s.Stride)
}

// Intrinsics implements dataset.Sequence.
func (s *Subsampled) Intrinsics() camera.Intrinsics { return s.Base.Intrinsics() }

// Len implements dataset.Sequence.
func (s *Subsampled) Len() int {
	return (s.Base.Len() + s.Stride - 1) / s.Stride
}

// Frame implements dataset.Sequence.
func (s *Subsampled) Frame(i int) (*dataset.Frame, error) {
	if i < 0 || i >= s.Len() {
		return nil, fmt.Errorf("dataset: frame %d out of range [0,%d)", i, s.Len())
	}
	return s.Base.Frame(i * s.Stride)
}
