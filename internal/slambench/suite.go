package slambench

import (
	"fmt"
	"io"

	"slamgo/internal/dataset"
)

// SuiteEntry pairs a named system factory with nothing else; the factory
// is invoked per sequence because SLAM systems are stateful.
type SuiteEntry struct {
	Name string
	// Make builds a fresh system for a sequence.
	Make func(seq dataset.Sequence) System
}

// Suite runs every system over every sequence — the "comparison across
// algorithms, implementations and datasets" role of SLAMBench.
type Suite struct {
	Runner  *Runner
	Systems []SuiteEntry
}

// Run executes the full cross product and returns summaries in
// (system-major, sequence-minor) order.
func (s *Suite) Run(seqs ...dataset.Sequence) ([]*Summary, error) {
	if s.Runner == nil {
		s.Runner = &Runner{}
	}
	if len(s.Systems) == 0 {
		return nil, fmt.Errorf("slambench: suite has no systems")
	}
	if len(seqs) == 0 {
		return nil, fmt.Errorf("slambench: suite has no sequences")
	}
	var out []*Summary
	for _, entry := range s.Systems {
		for _, seq := range seqs {
			sum, err := s.Runner.Run(entry.Make(seq), seq)
			if err != nil {
				return nil, fmt.Errorf("slambench: %s on %s: %w", entry.Name, seq.Name(), err)
			}
			out = append(out, sum)
		}
	}
	return out, nil
}

// RunAndReport runs the suite and writes the comparison table.
func (s *Suite) RunAndReport(w io.Writer, seqs ...dataset.Sequence) ([]*Summary, error) {
	sums, err := s.Run(seqs...)
	if err != nil {
		return nil, err
	}
	return sums, WriteTable(w, sums...)
}
