package slambench

import (
	"fmt"

	"slamgo/internal/dataset"
	"slamgo/internal/imgproc"
	"slamgo/internal/kfusion"
	"slamgo/internal/math3"
	"slamgo/internal/odometry"
)

// KFusionSystem adapts the KinectFusion pipeline to the harness.
type KFusionSystem struct {
	cfg      kfusion.Config
	pipeline *kfusion.Pipeline
	seqIntr  func() (*kfusion.Pipeline, error)
}

// NewKFusion prepares a KinectFusion system for a given sequence. The
// pipeline is created lazily on the first frame so the initial pose can
// come from the frame's ground truth (the SLAMBench convention: all
// systems start from the dataset's first pose).
func NewKFusion(cfg kfusion.Config, seq dataset.Sequence) *KFusionSystem {
	s := &KFusionSystem{cfg: cfg}
	s.seqIntr = func() (*kfusion.Pipeline, error) {
		f0, err := seq.Frame(0)
		if err != nil {
			return nil, err
		}
		init := math3.SE3Identity()
		if f0.HasGT {
			init = f0.GroundTruth
		}
		return kfusion.New(cfg, seq.Intrinsics(), init)
	}
	return s
}

// Name implements System.
func (s *KFusionSystem) Name() string {
	return fmt.Sprintf("kfusion[vr=%d csr=%d mu=%.3f]",
		s.cfg.VolumeResolution, s.cfg.ComputeSizeRatio, s.cfg.Mu)
}

// Pipeline exposes the underlying pipeline after the first frame (nil
// before), for mesh export and inspection.
func (s *KFusionSystem) Pipeline() *kfusion.Pipeline { return s.pipeline }

// Process implements System.
func (s *KFusionSystem) Process(f *dataset.Frame) (FrameOutput, error) {
	if s.pipeline == nil {
		p, err := s.seqIntr()
		if err != nil {
			return FrameOutput{}, err
		}
		s.pipeline = p
	}
	r, err := s.pipeline.ProcessFrame(f.Depth)
	if err != nil {
		return FrameOutput{}, err
	}
	kc := make(map[string]imgproc.Cost, 4)
	for k := kfusion.KernelPreprocess; k <= kfusion.KernelRaycast; k++ {
		kc[k.String()] = r.KernelCosts[k]
	}
	return FrameOutput{
		Pose:        r.Pose,
		Tracked:     r.Tracked,
		Cost:        r.TotalCost(),
		KernelCosts: kc,
	}, nil
}

// OdometrySystem adapts the frame-to-frame baseline to the harness.
type OdometrySystem struct {
	cfg     odometry.Config
	tracker *odometry.Tracker
	mk      func() (*odometry.Tracker, error)
}

// NewOdometry prepares the odometry baseline for a sequence.
func NewOdometry(cfg odometry.Config, seq dataset.Sequence) *OdometrySystem {
	s := &OdometrySystem{cfg: cfg}
	s.mk = func() (*odometry.Tracker, error) {
		f0, err := seq.Frame(0)
		if err != nil {
			return nil, err
		}
		init := math3.SE3Identity()
		if f0.HasGT {
			init = f0.GroundTruth
		}
		return odometry.New(cfg, seq.Intrinsics(), init)
	}
	return s
}

// Name implements System.
func (s *OdometrySystem) Name() string {
	return fmt.Sprintf("odometry[csr=%d]", s.cfg.ComputeSizeRatio)
}

// Process implements System.
func (s *OdometrySystem) Process(f *dataset.Frame) (FrameOutput, error) {
	if s.tracker == nil {
		tr, err := s.mk()
		if err != nil {
			return FrameOutput{}, err
		}
		s.tracker = tr
	}
	r, err := s.tracker.ProcessFrame(f.Depth)
	if err != nil {
		return FrameOutput{}, err
	}
	return FrameOutput{
		Pose:    r.Pose,
		Tracked: r.Tracked,
		Cost:    r.Cost,
		KernelCosts: map[string]imgproc.Cost{
			"odometry": r.Cost,
		},
	}, nil
}
