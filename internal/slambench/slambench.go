// Package slambench is the benchmarking harness of the reproduction — the
// analogue of the SLAMBench framework the paper describes. It runs any
// SLAM system over any dataset sequence while jointly collecting the three
// metric families of the paper:
//
//   - speed: wall-clock per frame (this process) and simulated per-frame
//     latency/FPS on a modelled device,
//   - accuracy: absolute trajectory error against the sequence's ground
//     truth (max/mean/RMSE, the "Max ATE" of Figure 2),
//   - power: simulated per-frame energy and average power on the modelled
//     device.
package slambench

import (
	"errors"
	"fmt"
	"time"

	"slamgo/internal/dataset"
	"slamgo/internal/device"
	"slamgo/internal/imgproc"
	"slamgo/internal/math3"
	"slamgo/internal/trajectory"
)

// FrameOutput is what a System reports per processed frame.
type FrameOutput struct {
	Pose    math3.SE3
	Tracked bool
	// Cost is the frame's total arithmetic cost for the device model.
	Cost imgproc.Cost
	// KernelCosts optionally breaks Cost down by stage name.
	KernelCosts map[string]imgproc.Cost
}

// System is a SLAM algorithm under benchmark.
type System interface {
	// Name identifies the algorithm (+configuration summary).
	Name() string
	// Process consumes one frame and returns the current pose estimate.
	Process(f *dataset.Frame) (FrameOutput, error)
}

// FrameRecord is one frame's full measurement row.
type FrameRecord struct {
	Index    int
	Time     float64
	Tracked  bool
	Pose     math3.SE3
	ATE      float64
	WallTime time.Duration
	Cost     imgproc.Cost
	// Device-model results (zero when no model configured).
	SimLatency  float64
	SimEnergy   float64
	SimPower    float64
	KernelCosts map[string]imgproc.Cost
}

// Summary aggregates a full run, mirroring the read-outs of the
// SLAMBench GUI (Figure 1) and the axes of Figure 2.
type Summary struct {
	System   string
	Sequence string
	Frames   int

	// Accuracy.
	ATE             trajectory.ATEStats
	RPE             trajectory.RPEStats
	TrackedFraction float64

	// Speed (wall clock of this process).
	WallMeanFrame time.Duration
	WallFPS       float64

	// Speed and power on the simulated device.
	Device              string
	SimMeanLatency      float64
	SimFPS              float64
	SimMeanPower        float64
	SimTotalEnergy      float64
	SimRealTimeFraction float64

	Records []FrameRecord
}

// MeetsRealTime reports whether the simulated device sustained the
// sensor rate (30 FPS by convention).
func (s *Summary) MeetsRealTime() bool { return s.SimFPS >= 30 }

// Runner executes systems over sequences.
type Runner struct {
	// Model is the simulated execution target; nil collects wall-clock
	// and accuracy only.
	Model *device.Model
	// SensorFPS is the dataset frame rate used for the real-time period
	// (default 30).
	SensorFPS float64
	// PerFrame, when non-nil, observes every frame record as it is
	// produced (the GUI hook).
	PerFrame func(FrameRecord)
}

// Run benchmarks one system over one sequence.
func (r *Runner) Run(sys System, seq dataset.Sequence) (*Summary, error) {
	if sys == nil || seq == nil {
		return nil, errors.New("slambench: nil system or sequence")
	}
	fps := r.SensorFPS
	if fps <= 0 {
		fps = 30
	}
	period := 1 / fps

	est := &trajectory.Trajectory{}
	gt := &trajectory.Trajectory{}
	sum := &Summary{System: sys.Name(), Sequence: seq.Name(), Frames: seq.Len()}
	if r.Model != nil {
		sum.Device = r.Model.Profile.Name + "/" + r.Model.Point.Name
	}

	tracked := 0
	var wallTotal time.Duration
	var simLatTotal, simEnergyTotal float64
	rtFrames := 0

	for i := 0; i < seq.Len(); i++ {
		f, err := seq.Frame(i)
		if err != nil {
			return nil, fmt.Errorf("slambench: frame %d: %w", i, err)
		}
		start := time.Now()
		out, err := sys.Process(f)
		if err != nil {
			return nil, fmt.Errorf("slambench: %s frame %d: %w", sys.Name(), i, err)
		}
		wall := time.Since(start)
		wallTotal += wall

		rec := FrameRecord{
			Index:       i,
			Time:        f.Time,
			Tracked:     out.Tracked,
			Pose:        out.Pose,
			WallTime:    wall,
			Cost:        out.Cost,
			KernelCosts: out.KernelCosts,
		}
		if out.Tracked {
			tracked++
		}
		if f.HasGT {
			rec.ATE = out.Pose.T.Dist(f.GroundTruth.T)
			est.Append(f.Time, out.Pose)
			gt.Append(f.Time, f.GroundTruth)
		}
		if r.Model != nil {
			st := r.Model.ExecuteFrame(out.Cost, period)
			rec.SimLatency = st.Latency
			rec.SimEnergy = st.Energy
			rec.SimPower = st.Power
			simLatTotal += st.Latency
			simEnergyTotal += st.Energy
			if st.MetDeadline {
				rtFrames++
			}
		}
		if r.PerFrame != nil {
			r.PerFrame(rec)
		}
		sum.Records = append(sum.Records, rec)
	}

	n := seq.Len()
	if n == 0 {
		return nil, errors.New("slambench: empty sequence")
	}
	sum.TrackedFraction = float64(tracked) / float64(n)
	sum.WallMeanFrame = wallTotal / time.Duration(n)
	if wallTotal > 0 {
		sum.WallFPS = float64(n) / wallTotal.Seconds()
	}

	if est.Len() >= 2 {
		ate, err := trajectory.ATE(est, gt, false)
		if err != nil {
			return nil, err
		}
		sum.ATE = ate
		if est.Len() > 5 {
			rpe, err := trajectory.RPE(est, gt, 1)
			if err == nil {
				sum.RPE = rpe
			}
		}
	}

	if r.Model != nil {
		sum.SimMeanLatency = simLatTotal / float64(n)
		if sum.SimMeanLatency > 0 {
			sum.SimFPS = 1 / sum.SimMeanLatency
		}
		sum.SimTotalEnergy = simEnergyTotal
		// Average power over the whole run: energy / max(walltime, n·period).
		runSeconds := float64(n) * period
		if simLatTotal > runSeconds {
			runSeconds = simLatTotal
		}
		sum.SimMeanPower = simEnergyTotal / runSeconds
		sum.SimRealTimeFraction = float64(rtFrames) / float64(n)
	}
	return sum, nil
}
