package slambench

import (
	"bytes"
	"encoding/json"
	"testing"

	"slamgo/internal/device"
)

func TestWriteJSON(t *testing.T) {
	seq := testSeq(t, 5)
	r := &Runner{Model: device.NewModel(device.OdroidXU3())}
	sum, err := r.Run(NewKFusion(testKFConfig(), seq), seq)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sum); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, key := range []string{"system", "sequence", "ate_max_m", "sim_fps", "per_frame"} {
		if _, ok := parsed[key]; !ok {
			t.Fatalf("key %q missing:\n%s", key, buf.String())
		}
	}
	frames, ok := parsed["per_frame"].([]any)
	if !ok || len(frames) != 5 {
		t.Fatalf("per_frame wrong: %v", parsed["per_frame"])
	}
	f0, ok := frames[0].(map[string]any)
	if !ok {
		t.Fatal("frame 0 not an object")
	}
	if f0["tracked"] != true {
		t.Fatalf("frame 0 tracked: %v", f0["tracked"])
	}
	if f0["ops"].(float64) <= 0 {
		t.Fatal("frame 0 ops missing")
	}
}
