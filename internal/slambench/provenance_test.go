package slambench

import (
	"bytes"
	"strings"
	"testing"
)

// TestWriteCampaignProvenanceSeqCache pins the sequence-cache columns of
// the provenance table — and that they stay OUT of the deterministic
// report writers: provenance (who rendered what, which process hit the
// cache) varies by scheduling, so the table/CSV/JSON bytes must be
// identical whether or not the cache did anything.
func TestWriteCampaignProvenanceSeqCache(t *testing.T) {
	r := testCampaignReport()
	r.Cells[0].SeqSource = "cache"
	r.Cells[1].SeqSource = "inline"
	r.SeqRenders, r.SeqDiskHits, r.SeqMemoryHits, r.SeqDegradations, r.SeqEvictions = 2, 1, 5, 1, 3

	var buf bytes.Buffer
	if err := WriteCampaignProvenance(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"seq", "cache", "inline",
		"seqcache: renders=2 disk-hits=1 memory-hits=5 degradations=1 evictions=3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("provenance missing %q:\n%s", want, out)
		}
	}

	// The deterministic writers must be byte-identical with and without
	// the execution-provenance fields populated.
	render := func(rep *CampaignReport) []byte {
		var b bytes.Buffer
		if err := WriteCampaignTable(&b, rep); err != nil {
			t.Fatal(err)
		}
		if err := WriteCampaignCSV(&b, rep); err != nil {
			t.Fatal(err)
		}
		if err := WriteCampaignJSON(&b, rep); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	if !bytes.Equal(render(r), render(testCampaignReport())) {
		t.Fatal("seq provenance leaked into the deterministic report surface")
	}
}
