package slambench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// WriteTable prints one or more run summaries as an aligned comparison
// table — the textual equivalent of the SLAMBench GUI read-outs.
func WriteTable(w io.Writer, sums ...*Summary) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "system\tsequence\tframes\ttracked\tmaxATE(m)\trmseATE(m)\twallFPS\tsimFPS\tsimW\tdevice")
	for _, s := range sums {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.0f%%\t%.4f\t%.4f\t%.1f\t%.1f\t%.2f\t%s\n",
			s.System, s.Sequence, s.Frames, s.TrackedFraction*100,
			s.ATE.Max, s.ATE.RMSE, s.WallFPS, s.SimFPS, s.SimMeanPower, s.Device)
	}
	return tw.Flush()
}

// WriteCSV emits the per-frame records of a summary as CSV, one row per
// frame, suitable for external plotting of the paper's figures.
func WriteCSV(w io.Writer, s *Summary) error {
	if _, err := fmt.Fprintln(w, "frame,time,tracked,ate,wall_ms,ops,bytes,sim_latency_ms,sim_energy_j,sim_power_w"); err != nil {
		return err
	}
	for _, r := range s.Records {
		tracked := 0
		if r.Tracked {
			tracked = 1
		}
		if _, err := fmt.Fprintf(w, "%d,%.6f,%d,%.6f,%.3f,%d,%d,%.3f,%.6f,%.3f\n",
			r.Index, r.Time, tracked, r.ATE,
			float64(r.WallTime.Microseconds())/1000,
			r.Cost.Ops, r.Cost.Bytes,
			r.SimLatency*1000, r.SimEnergy, r.SimPower); err != nil {
			return err
		}
	}
	return nil
}

// KernelBreakdown aggregates per-kernel cost shares over a run and
// renders them as a table — the profiling view SLAMBench exposes for
// co-design studies.
func KernelBreakdown(w io.Writer, s *Summary) error {
	totals := map[string]int64{}
	var grand int64
	for _, r := range s.Records {
		for k, c := range r.KernelCosts {
			totals[k] += c.Ops
			grand += c.Ops
		}
	}
	if grand == 0 {
		_, err := fmt.Fprintln(w, "no kernel costs recorded")
		return err
	}
	// Stable order: sort keys.
	keys := make([]string, 0, len(totals))
	for k := range totals {
		keys = append(keys, k)
	}
	sortStrings(keys)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "kernel\tGops\tshare")
	for _, k := range keys {
		fmt.Fprintf(tw, "%s\t%.2f\t%.1f%%\n",
			k, float64(totals[k])/1e9, 100*float64(totals[k])/float64(grand))
	}
	return tw.Flush()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// FormatSummary renders a human-readable multi-line report of one run.
func FormatSummary(s *Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "system:    %s\n", s.System)
	fmt.Fprintf(&b, "sequence:  %s (%d frames)\n", s.Sequence, s.Frames)
	fmt.Fprintf(&b, "tracked:   %.1f%%\n", s.TrackedFraction*100)
	fmt.Fprintf(&b, "accuracy:  max ATE %.4f m | RMSE %.4f m | mean %.4f m\n",
		s.ATE.Max, s.ATE.RMSE, s.ATE.Mean)
	fmt.Fprintf(&b, "speed:     %.1f FPS wall (%.1f ms/frame)\n",
		s.WallFPS, float64(s.WallMeanFrame.Microseconds())/1000)
	if s.Device != "" {
		rt := "no"
		if s.MeetsRealTime() {
			rt = "yes"
		}
		fmt.Fprintf(&b, "device:    %s → %.1f FPS | %.2f W | %.2f J total | real-time: %s\n",
			s.Device, s.SimFPS, s.SimMeanPower, s.SimTotalEnergy, rt)
	}
	return b.String()
}
