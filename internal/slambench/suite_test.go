package slambench

import (
	"bytes"
	"strings"
	"testing"

	"slamgo/internal/dataset"
	"slamgo/internal/odometry"
	"slamgo/internal/sdf"
)

func TestSuiteCrossProduct(t *testing.T) {
	seqA := testSeq(t, 6)
	seqB := testSeq(t, 5)
	seqB.SeqName = "bench_seq_b"

	suite := &Suite{
		Systems: []SuiteEntry{
			{Name: "kfusion", Make: func(s dataset.Sequence) System {
				return NewKFusion(testKFConfig(), s)
			}},
			{Name: "odometry", Make: func(s dataset.Sequence) System {
				cfg := odometry.DefaultConfig()
				cfg.ComputeSizeRatio = 1
				return NewOdometry(cfg, s)
			}},
		},
	}
	var buf bytes.Buffer
	sums, err := suite.RunAndReport(&buf, seqA, seqB)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 4 {
		t.Fatalf("summaries = %d", len(sums))
	}
	table := buf.String()
	if !strings.Contains(table, "bench_seq_b") || !strings.Contains(table, "odometry") {
		t.Fatalf("table incomplete:\n%s", table)
	}
}

func TestSuiteValidation(t *testing.T) {
	s := &Suite{}
	if _, err := s.Run(testSeq(t, 2)); err == nil {
		t.Fatal("empty suite accepted")
	}
	s.Systems = []SuiteEntry{{Name: "x", Make: func(seq dataset.Sequence) System {
		return NewKFusion(testKFConfig(), seq)
	}}}
	if _, err := s.Run(); err == nil {
		t.Fatal("no sequences accepted")
	}
}

func TestReconstructionError(t *testing.T) {
	// Build a reconstruction of the simple room and compare against the
	// true scene SDF.
	seq := testSeq(t, 8)
	sys := NewKFusion(testKFConfig(), seq)
	if _, err := (&Runner{}).Run(sys, seq); err != nil {
		t.Fatal(err)
	}
	mesh := sys.Pipeline().Volume().ExtractMesh()
	if len(mesh.Triangles) == 0 {
		t.Fatal("no mesh")
	}
	scene := sdf.SimpleRoom()
	st, err := ReconstructionError(mesh, scene, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Vertices == 0 {
		t.Fatal("no samples")
	}
	// The surface must be reconstructed to within a few voxels
	// (voxel ≈ 7 cm at 64³ over 4.5 m).
	if st.Median > 0.08 {
		t.Fatalf("median surface error %v m", st.Median)
	}
	if st.Mean <= 0 || st.Max < st.Median || st.P95 < st.Median {
		t.Fatalf("inconsistent stats: %+v", st)
	}
}

func TestReconstructionErrorValidation(t *testing.T) {
	scene := sdf.SimpleRoom()
	if _, err := ReconstructionError(nil, scene, 0); err == nil {
		t.Fatal("nil mesh accepted")
	}
}

func TestReconstructionSamplingBound(t *testing.T) {
	seq := testSeq(t, 4)
	sys := NewKFusion(testKFConfig(), seq)
	if _, err := (&Runner{}).Run(sys, seq); err != nil {
		t.Fatal(err)
	}
	mesh := sys.Pipeline().Volume().ExtractMesh()
	scene := sdf.SimpleRoom()
	st, err := ReconstructionError(mesh, scene, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st.Vertices > 350 { // stride rounding gives some slack
		t.Fatalf("sampling bound ignored: %d", st.Vertices)
	}
}
