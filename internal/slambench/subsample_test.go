package slambench

import (
	"strings"
	"testing"

	"slamgo/internal/dataset"
)

func TestSubsampleView(t *testing.T) {
	seq, err := dataset.LivingRoomKT(0, dataset.PresetOptions{
		Width: 40, Height: 30, Frames: 10, FPS: 30, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	if got := Subsample(seq, 1); got != dataset.Sequence(seq) {
		t.Fatal("stride 1 should return the base sequence")
	}
	if got := Subsample(seq, 0); got != dataset.Sequence(seq) {
		t.Fatal("stride 0 should return the base sequence")
	}

	sub := Subsample(seq, 3)
	if sub.Len() != 4 { // frames 0, 3, 6, 9
		t.Fatalf("len %d, want 4", sub.Len())
	}
	if sub.Intrinsics() != seq.Intrinsics() {
		t.Fatal("intrinsics changed")
	}
	if !strings.Contains(sub.Name(), seq.Name()) {
		t.Fatalf("name %q should embed base name", sub.Name())
	}
	for i := 0; i < sub.Len(); i++ {
		f, err := sub.Frame(i)
		if err != nil {
			t.Fatal(err)
		}
		base, _ := seq.Frame(3 * i)
		if f != base {
			t.Fatalf("view frame %d is not base frame %d", i, 3*i)
		}
	}
	if _, err := sub.Frame(4); err == nil {
		t.Fatal("out-of-range frame accepted")
	}
	if _, err := sub.Frame(-1); err == nil {
		t.Fatal("negative frame accepted")
	}
}
