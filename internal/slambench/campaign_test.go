package slambench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func testCampaignReport() *CampaignReport {
	return &CampaignReport{
		AccuracyLimit: 0.05,
		Cells: []CampaignCell{
			{
				Scenario: "lr_kt0", Device: "odroid-xu3",
				Evaluations: 8, FullFidelityEvals: 4, FrontSize: 2,
				Front: []CampaignFrontPoint{
					{Runtime: 0.02, MaxATE: 0.01, Power: 2.5},
					{Runtime: 0.04, MaxATE: 0.005, Power: 2.1},
				},
				Feasible: true, BestRuntime: 0.02, BestMaxATE: 0.01, BestPower: 2.5,
				RobustRuntime: 0.025, RobustMaxATE: 0.012, RobustRank: 2, RobustFeasible: true,
			},
			{
				Scenario: "of_kt1", Device: "pixel-adreno530",
				Evaluations: 8, FullFidelityEvals: 4, FrontSize: 1,
				Feasible:      false,
				RobustRuntime: 0.03, RobustMaxATE: 0.02, RobustRank: 1, RobustFeasible: true,
			},
		},
		Candidates:               5,
		RobustConfig:             "vr=96 csr=2",
		RobustWorstRank:          2,
		RobustFeasibleEverywhere: true,
	}
}

func TestWriteCampaignTable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCampaignTable(&buf, testCampaignReport()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"lr_kt0", "of_kt1", "pixel-adreno530", "50.0", "vr=96 csr=2", "worst rank 2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	// An infeasible cell renders a dash, not a zero frame rate.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "of_kt1") && !strings.Contains(line, "-") {
			t.Fatalf("infeasible cell row has no dash: %q", line)
		}
	}
}

func TestWriteCampaignCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCampaignCSV(&buf, testCampaignReport()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows:\n%s", len(lines), buf.String())
	}
	if cols := strings.Count(lines[0], ","); strings.Count(lines[1], ",") != cols || strings.Count(lines[2], ",") != cols {
		t.Fatalf("ragged CSV:\n%s", buf.String())
	}
}

func TestWriteCampaignJSON(t *testing.T) {
	var buf bytes.Buffer
	rep := testCampaignReport()
	if err := WriteCampaignJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back CampaignReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != 2 || back.Cells[0].Scenario != "lr_kt0" ||
		len(back.Cells[0].Front) != 2 || back.RobustConfig != rep.RobustConfig {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}
	// Serialisation must be deterministic byte for byte.
	var buf2 bytes.Buffer
	if err := WriteCampaignJSON(&buf2, rep); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("JSON serialisation not deterministic")
	}
}
