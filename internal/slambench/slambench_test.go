package slambench

import (
	"bytes"
	"strings"
	"testing"

	"slamgo/internal/camera"
	"slamgo/internal/dataset"
	"slamgo/internal/device"
	"slamgo/internal/kfusion"
	"slamgo/internal/math3"
	"slamgo/internal/odometry"
	"slamgo/internal/sdf"
	"slamgo/internal/synth"
)

func testSeq(t *testing.T, frames int) *dataset.MemorySequence {
	t.Helper()
	in := camera.Kinect640().ScaledTo(80, 60)
	traj := synth.Orbit(math3.V3(0, 0.5, -0.5), 1.3, 1.3, 0.4, 0.5, frames, 30)
	seq, err := dataset.Generate(dataset.SynthConfig{
		Name: "bench_seq", Scene: sdf.SimpleRoom(), Trajectory: traj,
		Intrinsics: in, Noise: synth.NoNoise(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func testKFConfig() kfusion.Config {
	cfg := kfusion.DefaultConfig()
	cfg.ComputeSizeRatio = 1
	cfg.VolumeResolution = 64
	cfg.VolumeSize = 4.5
	cfg.VolumeCenter = math3.V3(0, 1.1, 0)
	cfg.Mu = 0.15
	cfg.BilateralRadius = 1
	return cfg
}

func TestRunnerKFusionEndToEnd(t *testing.T) {
	seq := testSeq(t, 10)
	sys := NewKFusion(testKFConfig(), seq)
	model := device.NewModel(device.OdroidXU3())
	var seen int
	r := &Runner{Model: model, PerFrame: func(FrameRecord) { seen++ }}
	sum, err := r.Run(sys, seq)
	if err != nil {
		t.Fatal(err)
	}
	if seen != 10 || sum.Frames != 10 || len(sum.Records) != 10 {
		t.Fatalf("frame accounting wrong: seen=%d frames=%d", seen, sum.Frames)
	}
	if sum.TrackedFraction < 0.99 {
		t.Fatalf("tracking lost: %v", sum.TrackedFraction)
	}
	if sum.ATE.Max > 0.05 {
		t.Fatalf("max ATE %v", sum.ATE.Max)
	}
	if sum.WallFPS <= 0 || sum.WallMeanFrame <= 0 {
		t.Fatal("wall metrics missing")
	}
	if sum.SimFPS <= 0 || sum.SimMeanPower <= 0 || sum.SimTotalEnergy <= 0 {
		t.Fatalf("device metrics missing: %+v", sum)
	}
	if sum.Device != "odroid-xu3/nominal" {
		t.Fatalf("device label %q", sum.Device)
	}
	if sys.Pipeline() == nil {
		t.Fatal("pipeline not constructed")
	}
}

func TestRunnerOdometry(t *testing.T) {
	seq := testSeq(t, 8)
	cfg := odometry.DefaultConfig()
	cfg.ComputeSizeRatio = 1
	sys := NewOdometry(cfg, seq)
	r := &Runner{}
	sum, err := r.Run(sys, seq)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TrackedFraction < 0.99 {
		t.Fatalf("odometry lost tracking: %v", sum.TrackedFraction)
	}
	if sum.SimFPS != 0 {
		t.Fatal("device metrics without a model")
	}
	if !strings.HasPrefix(sum.System, "odometry[") {
		t.Fatalf("system name %q", sum.System)
	}
}

func TestRunnerNilArgs(t *testing.T) {
	r := &Runner{}
	if _, err := r.Run(nil, nil); err == nil {
		t.Fatal("nil args accepted")
	}
}

func TestKFusionBeatsOdometryOnDrift(t *testing.T) {
	// The methodology claim behind SLAMBench's cross-algorithm
	// comparison: model-based tracking drifts less than frame-to-frame.
	seq := testSeq(t, 14)
	r := &Runner{}
	kf, err := r.Run(NewKFusion(testKFConfig(), seq), seq)
	if err != nil {
		t.Fatal(err)
	}
	cfg := odometry.DefaultConfig()
	cfg.ComputeSizeRatio = 1
	od, err := r.Run(NewOdometry(cfg, seq), seq)
	if err != nil {
		t.Fatal(err)
	}
	if kf.ATE.RMSE > od.ATE.RMSE*1.5 {
		t.Fatalf("kfusion (%v) much worse than odometry (%v)", kf.ATE.RMSE, od.ATE.RMSE)
	}
}

func TestWriteTableAndCSV(t *testing.T) {
	seq := testSeq(t, 4)
	r := &Runner{Model: device.NewModel(device.OdroidXU3())}
	sum, err := r.Run(NewKFusion(testKFConfig(), seq), seq)
	if err != nil {
		t.Fatal(err)
	}
	var tbl bytes.Buffer
	if err := WriteTable(&tbl, sum); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "kfusion") || !strings.Contains(tbl.String(), "maxATE") {
		t.Fatalf("table missing content:\n%s", tbl.String())
	}

	var csv bytes.Buffer
	if err := WriteCSV(&csv, sum); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 5 { // header + 4 frames
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "frame,time,tracked") {
		t.Fatalf("csv header %q", lines[0])
	}

	var kb bytes.Buffer
	if err := KernelBreakdown(&kb, sum); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"preprocess", "track", "integrate", "raycast"} {
		if !strings.Contains(kb.String(), k) {
			t.Fatalf("breakdown missing %s:\n%s", k, kb.String())
		}
	}

	if !strings.Contains(FormatSummary(sum), "accuracy:") {
		t.Fatal("FormatSummary missing accuracy line")
	}
}

func TestKernelBreakdownEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := KernelBreakdown(&buf, &Summary{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no kernel costs") {
		t.Fatal("empty breakdown not reported")
	}
}
