package slambench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// CampaignCell is one scenario × device row of a campaign report: the
// summary of a full DSE run on that workload/target combination plus
// the robust configuration's standing when replayed in the cell.
type CampaignCell struct {
	// Scenario names the workload cell (scene, trajectory, resolution,
	// noise — e.g. "lr_kt2").
	Scenario string `json:"scenario"`
	// Device names the execution target the cell was tuned for.
	Device string `json:"device"`
	// Evaluations is the number of configurations the cell's exploration
	// observed (screening runs included).
	Evaluations int `json:"evaluations"`
	// FullFidelityEvals is the number of full-sequence simulations the
	// exploration spent (the campaign's robust aggregation phase
	// cross-measures candidates on top of this).
	FullFidelityEvals int `json:"full_fidelity_evals"`
	// LowFidelityEvals is the number of reduced-workload simulations the
	// exploration spent — cell-ladder screening runs and intra-cell
	// ladder screening runs alike.
	LowFidelityEvals int `json:"low_fidelity_evals,omitempty"`
	// FrontSize is the cell's Pareto-front cardinality.
	FrontSize int `json:"front_size"`
	// Fidelity is the fidelity the cell's reported exploration ran at:
	// "full", or "screen" for an unpromoted cell of the campaign's
	// cell-level multi-fidelity ladder. Deterministic (the promotion
	// policy is a pure function of the seeded exploration), so it is
	// part of every report format.
	Fidelity string `json:"fidelity,omitempty"`
	// Promoted reports that the cell-level ladder promoted this cell
	// from screening to full-fidelity exploration.
	Promoted bool `json:"promoted,omitempty"`
	// Resumed reports that the cell was loaded from a checkpoint store
	// instead of being explored in this run. Execution provenance — it
	// differs between a fresh and a resumed run of the same campaign —
	// so it is excluded from the deterministic report writers and
	// rendered only by WriteCampaignProvenance.
	Resumed bool `json:"-"`
	// Owner names who produced the cell's artifact this run: a worker id
	// (or "local") when computed in-process, "store" when loaded from a
	// checkpoint. Execution provenance like Resumed — different workers
	// of the same campaign report different owners — so it is rendered
	// only by WriteCampaignProvenance.
	Owner string `json:"-"`
	// SeqSource reports where the cell's rendered sequence came from:
	// "render" (rendered here and published to the sequence cache),
	// "cache" (verified disk hit), "memory" (in-process reuse), "inline"
	// (cache degraded; rendered uncached) or "" (the cell was resumed
	// and never needed its sequence). Execution provenance like Resumed
	// — it depends on which process rendered first — so it is rendered
	// only by WriteCampaignProvenance.
	SeqSource string `json:"-"`
	// TransferBorrower marks a cell the campaign's transfer schedule
	// warm-started from donor cells; TransferDonors names those donors
	// ("scenario/device") and TransferSeeds counts the distinct donor
	// configurations its seeding borrowed. Deterministic (the donor
	// topology is a pure function of the campaign options), rendered by
	// the table and CSV writers only when the report's Transfer flag is
	// set — and omitted from the JSON otherwise — so transfer-off
	// reports keep their byte surface.
	TransferBorrower bool     `json:"transfer_borrower,omitempty"`
	TransferDonors   []string `json:"transfer_donors,omitempty"`
	TransferSeeds    int      `json:"transfer_seeds,omitempty"`
	// Knowledge holds the cell's extracted decision rules (rendered
	// rf.Rule strings) when the campaign ran with knowledge extraction
	// enabled; JSON only.
	Knowledge []string `json:"knowledge,omitempty"`
	// Failed reports that the cell's exploration panicked and was
	// quarantined: it has no front or best configuration and the robust
	// aggregation ranked the surviving cells only. Deterministic for a
	// given seed and options, so it is part of every report format
	// (omitempty keeps healthy campaigns' reports byte-identical to
	// pre-quarantine ones).
	Failed bool `json:"failed,omitempty"`
	// FailureReason is the quarantined panic value, when Failed.
	FailureReason string `json:"failure_reason,omitempty"`
	// Front lists the cell's Pareto-front measurements, runtime
	// ascending (rendered in the JSON report; the table shows the size).
	Front []CampaignFrontPoint `json:"front,omitempty"`
	// Feasible reports whether any configuration met the accuracy limit.
	Feasible bool `json:"feasible"`
	// BestRuntime/BestMaxATE/BestPower describe the cell's own best
	// feasible configuration (zero when Feasible is false).
	BestRuntime float64 `json:"best_runtime,omitempty"`
	BestMaxATE  float64 `json:"best_max_ate,omitempty"`
	BestPower   float64 `json:"best_power,omitempty"`
	// RobustRuntime/RobustMaxATE are the cross-scenario robust
	// configuration's full-fidelity measurements in this cell.
	RobustRuntime float64 `json:"robust_runtime"`
	RobustMaxATE  float64 `json:"robust_max_ate"`
	// RobustRank is the robust configuration's rank among the candidate
	// set within this cell (1 = fastest feasible candidate).
	RobustRank int `json:"robust_rank"`
	// RobustFeasible reports whether the robust configuration met the
	// accuracy limit in this cell.
	RobustFeasible bool `json:"robust_feasible"`
}

// CampaignFrontPoint is one Pareto-front measurement of a campaign cell.
type CampaignFrontPoint struct {
	Runtime float64 `json:"runtime"`
	MaxATE  float64 `json:"max_ate"`
	Power   float64 `json:"power"`
}

// CampaignReport aggregates a cross-scene / cross-device DSE campaign:
// one row per cell plus the rank-aggregated robust configuration.
type CampaignReport struct {
	// AccuracyLimit is the feasibility bound shared by every cell.
	AccuracyLimit float64 `json:"accuracy_limit"`
	// Cells are the per-cell results in registry order.
	Cells []CampaignCell `json:"cells"`
	// Candidates is the size of the cross-cell candidate set the robust
	// configuration was selected from.
	Candidates int `json:"candidates"`
	// RobustConfig renders the winning configuration's parameters.
	RobustConfig string `json:"robust_config"`
	// RobustWorstRank is the winner's worst per-cell rank (the
	// best-worst-case criterion it minimises).
	RobustWorstRank int `json:"robust_worst_rank"`
	// RobustFeasibleEverywhere reports whether the winner met the
	// accuracy limit in every cell.
	RobustFeasibleEverywhere bool `json:"robust_feasible_everywhere"`
	// Transfer reports that the campaign ran with cross-cell transfer
	// learning; the fields below summarise its efficiency (all zero and
	// omitted otherwise, keeping transfer-off reports byte-identical to
	// pre-transfer ones). Anchor cells explored from scratch, borrower
	// cells warm-started from them; the eval counters are full-fidelity
	// exploration spend summed over the healthy cells of each wave, and
	// SavingsPct compares the per-cell averages.
	Transfer                  bool    `json:"transfer,omitempty"`
	TransferAnchors           int     `json:"transfer_anchors,omitempty"`
	TransferBorrowers         int     `json:"transfer_borrowers,omitempty"`
	TransferSeedsBorrowed     int     `json:"transfer_seeds_borrowed,omitempty"`
	TransferAnchorFullEvals   int     `json:"transfer_anchor_full_evals,omitempty"`
	TransferBorrowerFullEvals int     `json:"transfer_borrower_full_evals,omitempty"`
	TransferSavingsPct        float64 `json:"transfer_savings_pct,omitempty"`
	// SeqRenders / SeqDiskHits / SeqMemoryHits / SeqDegradations /
	// SeqEvictions are this process's rendered-sequence cache counters.
	// Renders counts actual renderer invocations, so summing SeqRenders
	// over every cooperating process proves each distinct sequence was
	// rendered exactly once per shared store. Execution provenance —
	// the split between render, disk hit and memory hit depends on which
	// process got to each sequence first — so the counters are excluded
	// from the deterministic report writers and rendered only by
	// WriteCampaignProvenance.
	SeqRenders      int `json:"-"`
	SeqDiskHits     int `json:"-"`
	SeqMemoryHits   int `json:"-"`
	SeqDegradations int `json:"-"`
	SeqEvictions    int `json:"-"`
	// EvalSimulations / EvalDiskHits / EvalPublished / EvalDegradations
	// / EvalEvictions are this process's persistent evaluation-store
	// counters. Simulations counts actual pipeline simulations issued
	// through the store, so summing EvalSimulations over every
	// cooperating process proves each distinct (configuration, sequence,
	// device, fidelity) was simulated exactly once per shared store — and
	// a warm re-run reporting EvalSimulations == 0 performed none at all.
	// Execution provenance like the sequence-cache counters (a warm store
	// answers from disk what a cold one simulates), so they are excluded
	// from the deterministic report writers and rendered by
	// WriteCampaignProvenance — and, opt-in, by the Caches JSON summary.
	EvalSimulations  int `json:"-"`
	EvalDiskHits     int `json:"-"`
	EvalPublished    int `json:"-"`
	EvalDegradations int `json:"-"`
	EvalEvictions    int `json:"-"`
	// MemoHits / MemoMisses aggregate the in-memory memoization layer
	// over every evaluator the campaign built. Execution provenance like
	// the store counters (concurrent first sightings of a key coalesce).
	MemoHits   int `json:"-"`
	MemoMisses int `json:"-"`
	// Caches, when non-nil, renders the full cache-counter summary into
	// the JSON report (campaign.Options.CacheStats opts in). Nil by
	// default — the counters differ between cold, warm and multi-worker
	// runs of one campaign, and the default JSON surface must stay
	// byte-identical across all of them.
	Caches *CampaignCacheSummary `json:"caches,omitempty"`
}

// CampaignCacheSummary is the opt-in JSON rendering of a campaign's
// cache counters: the in-memory memo layer, the persistent evaluation
// store and the rendered-sequence cache.
type CampaignCacheSummary struct {
	MemoHits         int `json:"memo_hits"`
	MemoMisses       int `json:"memo_misses"`
	EvalSimulations  int `json:"eval_simulations"`
	EvalDiskHits     int `json:"eval_disk_hits"`
	EvalPublished    int `json:"eval_published"`
	EvalDegradations int `json:"eval_degradations"`
	EvalEvictions    int `json:"eval_evictions"`
	SeqRenders       int `json:"seq_renders"`
	SeqDiskHits      int `json:"seq_disk_hits"`
	SeqMemoryHits    int `json:"seq_memory_hits"`
	SeqDegradations  int `json:"seq_degradations"`
	SeqEvictions     int `json:"seq_evictions"`
}

// WriteCampaignTable renders the report as an aligned table — the
// campaign analogue of WriteTable.
func WriteCampaignTable(w io.Writer, r *CampaignReport) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := "scenario\tdevice\tfid\tevals\tfull\tfront\tbestFPS\tbestATE(m)\trobustFPS\trobustATE(m)\trobustRank\trobustOK"
	if r.Transfer {
		header += "\tdonors\tseeds"
	}
	fmt.Fprintln(tw, header)
	for _, c := range r.Cells {
		best := "-"
		bestATE := "-"
		if c.Feasible {
			best = fmt.Sprintf("%.1f", fps(c.BestRuntime))
			bestATE = fmt.Sprintf("%.4f", c.BestMaxATE)
		}
		fid := c.Fidelity
		if fid == "" {
			fid = "-"
		}
		if c.Failed {
			// A quarantined cell renders a recognisable row instead of
			// zeros masquerading as measurements.
			fid = "failed"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%d\t%s\t%s\t%.1f\t%.4f\t%d\t%v",
			c.Scenario, c.Device, fid, c.Evaluations, c.FullFidelityEvals, c.FrontSize,
			best, bestATE, fps(c.RobustRuntime), c.RobustMaxATE, c.RobustRank, c.RobustFeasible)
		if r.Transfer {
			donors := "-" // anchor: explored from scratch
			if c.TransferBorrower {
				donors = strings.Join(c.TransferDonors, "+")
				if donors == "" {
					donors = "degraded" // every donor unusable; explored from scratch
				}
			}
			fmt.Fprintf(tw, "\t%s\t%d", donors, c.TransferSeeds)
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\nrobust configuration (of %d candidates, worst rank %d, feasible everywhere: %v):\n  %s\n",
		r.Candidates, r.RobustWorstRank, r.RobustFeasibleEverywhere, r.RobustConfig); err != nil {
		return err
	}
	if r.Transfer {
		if _, err := fmt.Fprintf(w, "transfer: %d anchors (%d full-fidelity evals), %d borrowers (%d full-fidelity evals, %d seeds borrowed), savings %.1f%% per cell\n",
			r.TransferAnchors, r.TransferAnchorFullEvals, r.TransferBorrowers,
			r.TransferBorrowerFullEvals, r.TransferSeedsBorrowed, r.TransferSavingsPct); err != nil {
			return err
		}
	}
	return nil
}

// WriteCampaignCSV emits one row per cell, suitable for external
// plotting of cross-scenario comparisons.
func WriteCampaignCSV(w io.Writer, r *CampaignReport) error {
	header := "scenario,device,fidelity,promoted,failed,evaluations,full_fidelity,low_fidelity,front_size,feasible,best_runtime,best_max_ate,best_power,robust_runtime,robust_max_ate,robust_rank,robust_feasible"
	if r.Transfer {
		// Transfer provenance columns appear only in transfer campaigns,
		// keeping transfer-off CSVs byte-identical to pre-transfer ones.
		header += ",transfer_borrower,transfer_donors,transfer_seeds"
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, c := range r.Cells {
		feas, rfeas, prom, failed := 0, 0, 0, 0
		if c.Feasible {
			feas = 1
		}
		if c.RobustFeasible {
			rfeas = 1
		}
		if c.Promoted {
			prom = 1
		}
		if c.Failed {
			failed = 1
		}
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%d,%d",
			c.Scenario, c.Device, c.Fidelity, prom, failed, c.Evaluations, c.FullFidelityEvals,
			c.LowFidelityEvals, c.FrontSize,
			feas, c.BestRuntime, c.BestMaxATE, c.BestPower,
			c.RobustRuntime, c.RobustMaxATE, c.RobustRank, rfeas); err != nil {
			return err
		}
		if r.Transfer {
			borrower := 0
			if c.TransferBorrower {
				borrower = 1
			}
			// Donors are ";"-joined: the labels contain "/" but never ","
			// or ";", so the column stays a single CSV field.
			if _, err := fmt.Fprintf(w, ",%d,%s,%d",
				borrower, strings.Join(c.TransferDonors, ";"), c.TransferSeeds); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteCampaignProvenance renders the execution-provenance table of a
// checkpointed campaign: per cell, the fidelity its reported results
// were explored at, whether the cell-level ladder promoted it, whether
// it was resumed from a checkpoint rather than explored in this run,
// who produced the artifact (a worker id, "local", or "store"), and
// whether the cell was quarantined. Resumption and ownership depend on
// how the run was interrupted and which worker won which lease, so
// this table is deliberately separate from the deterministic report
// writers (CLIs send it to stderr, keeping the report byte-comparable
// across fresh, resumed and multi-worker runs).
func WriteCampaignProvenance(w io.Writer, r *CampaignReport) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tdevice\tfid\tpromoted\tresumed\towner\tseq\tfailed\tevals\tfull\tlow")
	for _, c := range r.Cells {
		fid := c.Fidelity
		if fid == "" {
			fid = "-"
		}
		owner := c.Owner
		if owner == "" {
			owner = "-"
		}
		seq := c.SeqSource
		if seq == "" {
			seq = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%v\t%v\t%s\t%s\t%v\t%d\t%d\t%d\n",
			c.Scenario, c.Device, fid, c.Promoted, c.Resumed, owner, seq, c.Failed,
			c.Evaluations, c.FullFidelityEvals, c.LowFidelityEvals)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "seqcache: renders=%d disk-hits=%d memory-hits=%d degradations=%d evictions=%d\n",
		r.SeqRenders, r.SeqDiskHits, r.SeqMemoryHits, r.SeqDegradations, r.SeqEvictions); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "evalstore: simulations=%d disk-hits=%d published=%d degradations=%d evictions=%d\n",
		r.EvalSimulations, r.EvalDiskHits, r.EvalPublished, r.EvalDegradations, r.EvalEvictions); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "memo: hits=%d misses=%d\n", r.MemoHits, r.MemoMisses)
	return err
}

// WriteCampaignJSON emits the whole report as indented JSON (field
// order is fixed by the struct, so the bytes are deterministic).
func WriteCampaignJSON(w io.Writer, r *CampaignReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// fps converts a per-frame latency to a frame rate (0 stays 0).
func fps(runtime float64) float64 {
	if runtime <= 0 {
		return 0
	}
	return 1 / runtime
}
