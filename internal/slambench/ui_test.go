package slambench

import (
	"bytes"
	"strings"
	"testing"

	"slamgo/internal/imgproc"
	"slamgo/internal/math3"
)

func gradientDepth(w, h int) *imgproc.DepthMap {
	d := imgproc.NewDepthMap(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d.Set(x, y, 1+float32(x)*0.1)
		}
	}
	return d
}

func TestDepthToRGBRamp(t *testing.T) {
	d := gradientDepth(16, 8)
	img := DepthToRGB(d)
	// Near pixels blue-dominant, far pixels red-dominant.
	r0, _, b0 := img.At(0, 4)
	r1, _, b1 := img.At(15, 4)
	if b0 <= r0 {
		t.Fatalf("near pixel not blue: r=%d b=%d", r0, b0)
	}
	if r1 <= b1 {
		t.Fatalf("far pixel not red: r=%d b=%d", r1, b1)
	}
	// Invalid pixels stay black.
	d2 := imgproc.NewDepthMap(4, 4)
	img2 := DepthToRGB(d2)
	r, g, b := img2.At(2, 2)
	if r != 0 || g != 0 || b != 0 {
		t.Fatal("invalid pixel coloured")
	}
}

func TestNormalsToRGBShading(t *testing.T) {
	nm := imgproc.NewNormalMap(4, 4)
	// Light travels along +Z (a headlight at the camera); a surface
	// facing the camera has normal -Z and is fully lit.
	nm.Set(1, 1, math3.V3(0, 0, -1))
	img := NormalsToRGB(nm, math3.V3(0, 0, 1))
	// Lit pixel bright, invalid pixel dim.
	lr, _, _ := img.At(1, 1)
	ir, _, _ := img.At(0, 0)
	if lr < 200 {
		t.Fatalf("lit pixel %d", lr)
	}
	if ir > 40 {
		t.Fatalf("background pixel %d", ir)
	}
}

func TestTrackStatusToRGB(t *testing.T) {
	vm := imgproc.NewVertexMap(4, 4)
	vm.Set(1, 1, math3.V3(1, 2, 3))
	ok := TrackStatusToRGB(vm, true)
	r, g, _ := ok.At(1, 1)
	if g <= r {
		t.Fatal("tracked pixel not green")
	}
	bad := TrackStatusToRGB(vm, false)
	r, g, _ = bad.At(1, 1)
	if r <= g/2 {
		t.Fatal("lost pixel not warning-coloured")
	}
	r, g, _ = ok.At(0, 0)
	if r <= g {
		t.Fatal("invalid pixel not red-dominant")
	}
}

func TestMosaic(t *testing.T) {
	a := imgproc.NewRGB(4, 2)
	a.Set(0, 0, 255, 0, 0)
	b := imgproc.NewRGB(4, 2)
	b.Set(0, 0, 0, 255, 0)
	m, err := Mosaic(a, b, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Width != 8 || m.Height != 4 {
		t.Fatalf("mosaic size %dx%d", m.Width, m.Height)
	}
	r, _, _ := m.At(0, 0)
	if r != 255 {
		t.Fatal("pane 0 misplaced")
	}
	_, g, _ := m.At(4, 0)
	if g != 255 {
		t.Fatal("pane 1 misplaced")
	}

	// Mismatched sizes rejected.
	c := imgproc.NewRGB(3, 3)
	if _, err := Mosaic(a, c); err == nil {
		t.Fatal("mismatched panes accepted")
	}
	if _, err := Mosaic(); err == nil {
		t.Fatal("zero panes accepted")
	}
	var nilPane *imgproc.RGB
	if _, err := Mosaic(nilPane); err == nil {
		t.Fatal("all-nil panes accepted")
	}
}

func TestWritePPM(t *testing.T) {
	img := imgproc.NewRGB(2, 2)
	img.Set(0, 0, 1, 2, 3)
	var buf bytes.Buffer
	if err := WritePPM(&buf, img); err != nil {
		t.Fatal(err)
	}
	s := buf.Bytes()
	if !bytes.HasPrefix(s, []byte("P6\n2 2\n255\n")) {
		t.Fatalf("ppm header: %q", s[:12])
	}
	if len(s) != len("P6\n2 2\n255\n")+12 {
		t.Fatalf("ppm size %d", len(s))
	}
}

func TestASCIIRender(t *testing.T) {
	img := imgproc.NewRGB(40, 20)
	for y := 0; y < 20; y++ {
		for x := 20; x < 40; x++ {
			img.Set(x, y, 255, 255, 255)
		}
	}
	s := ASCIIRender(img, 20)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("too few rows: %q", s)
	}
	row := lines[0]
	if row[0] != ' ' {
		t.Fatalf("dark half not blank: %q", row)
	}
	if row[len(row)-1] != '@' {
		t.Fatalf("bright half not dense: %q", row)
	}
	// Degenerate cols clamp.
	if ASCIIRender(img, 0) == "" {
		t.Fatal("clamped render empty")
	}
}
