package slambench

import (
	"errors"
	"math"
	"sort"

	"slamgo/internal/math3"
	"slamgo/internal/sdf"
	"slamgo/internal/tsdf"
)

// ReconstructionStats quantifies how well the reconstructed surface
// matches the known scene geometry — SLAMBench's "accuracy of the
// generated 3D model in the context of a known ground truth". Because
// our datasets are rendered from analytic SDF scenes, the ground-truth
// surface distance of any reconstructed point is exact: |scene.Distance|.
type ReconstructionStats struct {
	// Mean/RMSE/Median/P95/Max of the absolute surface distance (metres)
	// over all mesh vertices.
	Mean, RMSE, Median, P95, Max float64
	// Vertices is the number of samples measured.
	Vertices int
}

// ReconstructionError measures a reconstructed mesh against the true
// scene. maxSamples bounds the work on very dense meshes (0 = all).
func ReconstructionError(mesh *tsdf.Mesh, scene sdf.Field, maxSamples int) (ReconstructionStats, error) {
	if mesh == nil || len(mesh.Triangles) == 0 {
		return ReconstructionStats{}, errors.New("slambench: empty mesh")
	}
	if scene == nil {
		return ReconstructionStats{}, errors.New("slambench: nil scene")
	}
	total := len(mesh.Triangles) * 3
	stride := 1
	if maxSamples > 0 && total > maxSamples {
		stride = total / maxSamples
	}
	var dists []float64
	var sum, sum2 float64
	idx := 0
	for _, tri := range mesh.Triangles {
		for _, p := range [...]math3.Vec3{tri.A, tri.B, tri.C} {
			idx++
			if idx%stride != 0 {
				continue
			}
			d := math.Abs(scene.Distance(p))
			dists = append(dists, d)
			sum += d
			sum2 += d * d
		}
	}
	if len(dists) == 0 {
		return ReconstructionStats{}, errors.New("slambench: no samples taken")
	}
	n := float64(len(dists))
	sort.Float64s(dists)
	st := ReconstructionStats{
		Mean:     sum / n,
		RMSE:     math.Sqrt(sum2 / n),
		Median:   dists[len(dists)/2],
		P95:      dists[min(len(dists)-1, len(dists)*95/100)],
		Max:      dists[len(dists)-1],
		Vertices: len(dists),
	}
	return st, nil
}
