package slambench

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"

	"slamgo/internal/imgproc"
	"slamgo/internal/math3"
)

// This file implements the Figure 1 analogue: the SLAMBench GUI shows
// four panes (RGB input, depth input, per-pixel tracking status, and the
// ray-cast 3D model) plus live metric read-outs. Without a display we
// render the same panes to PPM images and ASCII art.

// DepthToRGB maps a depth image to a blue-near/red-far colour ramp;
// invalid pixels are black.
func DepthToRGB(d *imgproc.DepthMap) *imgproc.RGB {
	img := imgproc.NewRGB(d.Width, d.Height)
	min, max := d.MinMax()
	span := float64(max - min)
	if span <= 0 {
		span = 1
	}
	for y := 0; y < d.Height; y++ {
		for x := 0; x < d.Width; x++ {
			v := d.At(x, y)
			if v <= 0 {
				continue
			}
			t := float64(v-min) / span
			r := uint8(math3.Clamp(t, 0, 1) * 255)
			b := uint8(math3.Clamp(1-t, 0, 1) * 255)
			g := uint8(math3.Clamp(1-math.Abs(2*t-1), 0, 1) * 180)
			img.Set(x, y, r, g, b)
		}
	}
	return img
}

// NormalsToRGB shades a world-frame normal map with a fixed headlight,
// the way the GUI displays the ray-cast model surface.
func NormalsToRGB(normals *imgproc.NormalMap, light math3.Vec3) *imgproc.RGB {
	img := imgproc.NewRGB(normals.Width, normals.Height)
	l := light.Normalized().Neg()
	for y := 0; y < normals.Height; y++ {
		for x := 0; x < normals.Width; x++ {
			n, ok := normals.At(x, y)
			if !ok {
				img.Set(x, y, 15, 15, 25)
				continue
			}
			shade := 0.2 + 0.8*math.Max(0, n.Dot(l))
			g := uint8(math3.Clamp(shade, 0, 1) * 255)
			img.Set(x, y, g, g, g)
		}
	}
	return img
}

// TrackStatusToRGB renders per-pixel tracking state: green where the
// frame had valid geometry, dark red where it did not (the GUI's
// bottom-left pane).
func TrackStatusToRGB(vertices *imgproc.VertexMap, tracked bool) *imgproc.RGB {
	img := imgproc.NewRGB(vertices.Width, vertices.Height)
	for y := 0; y < vertices.Height; y++ {
		for x := 0; x < vertices.Width; x++ {
			if _, ok := vertices.At(x, y); ok {
				if tracked {
					img.Set(x, y, 30, 200, 60)
				} else {
					img.Set(x, y, 220, 180, 40)
				}
			} else {
				img.Set(x, y, 90, 20, 20)
			}
		}
	}
	return img
}

// Mosaic tiles up to four equally sized panes into a 2×2 sheet. Nil
// panes render black. Panes of differing sizes are rejected.
func Mosaic(panes ...*imgproc.RGB) (*imgproc.RGB, error) {
	if len(panes) == 0 || len(panes) > 4 {
		return nil, fmt.Errorf("slambench: mosaic needs 1-4 panes, got %d", len(panes))
	}
	var w, h int
	for _, p := range panes {
		if p == nil {
			continue
		}
		if w == 0 {
			w, h = p.Width, p.Height
		} else if p.Width != w || p.Height != h {
			return nil, fmt.Errorf("slambench: mosaic pane size %dx%d ≠ %dx%d",
				p.Width, p.Height, w, h)
		}
	}
	if w == 0 {
		return nil, fmt.Errorf("slambench: all mosaic panes nil")
	}
	out := imgproc.NewRGB(w*2, h*2)
	offsets := [4][2]int{{0, 0}, {w, 0}, {0, h}, {w, h}}
	for i, p := range panes {
		if p == nil {
			continue
		}
		ox, oy := offsets[i][0], offsets[i][1]
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				r, g, b := p.At(x, y)
				out.Set(ox+x, oy+y, r, g, b)
			}
		}
	}
	return out, nil
}

// WritePPM serialises an RGB image as binary PPM (P6).
func WritePPM(w io.Writer, img *imgproc.RGB) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", img.Width, img.Height); err != nil {
		return err
	}
	if _, err := bw.Write(img.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// asciiRamp orders glyphs from dark to bright.
const asciiRamp = " .:-=+*#%@"

// ASCIIRender downsamples an RGB image to a text mosaic of the given
// character width (terminal preview of any pane).
func ASCIIRender(img *imgproc.RGB, cols int) string {
	if cols < 2 {
		cols = 2
	}
	if cols > img.Width {
		cols = img.Width
	}
	// Terminal cells are ~2× taller than wide.
	rows := img.Height * cols / img.Width / 2
	if rows < 1 {
		rows = 1
	}
	var b strings.Builder
	for ry := 0; ry < rows; ry++ {
		for rx := 0; rx < cols; rx++ {
			x0 := rx * img.Width / cols
			x1 := (rx + 1) * img.Width / cols
			y0 := ry * img.Height / rows
			y1 := (ry + 1) * img.Height / rows
			var sum, n int
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					r, g, bl := img.At(x, y)
					sum += int(r) + int(g) + int(bl)
					n++
				}
			}
			if n == 0 {
				n = 1
			}
			lum := sum / (3 * n)
			idx := lum * (len(asciiRamp) - 1) / 255
			b.WriteByte(asciiRamp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
