package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"slamgo/internal/campaign"
	"slamgo/internal/core"
)

// CampaignSpec is the wire form of a campaign submission. Fields mirror
// the cmd/experiments campaign flags one-for-one, and Normalize fills
// the same defaults the CLI flags declare, so a spec submitted over
// HTTP resolves to exactly the options a CLI invocation with the same
// values would build — the foundation of the served-report /
// CLI-report byte-identity guarantee.
//
// Zero-valued numeric fields take the CLI default (seed 1, 20 random
// samples, 5 active iterations, batch 4, promote fractions 0.25/0.5);
// pass -1 to request a true zero where that is meaningful
// (active_iterations, fidelity strides, transfer seeds).
type CampaignSpec struct {
	// Scenarios and Devices name the campaign grid (empty = the CLI
	// defaults: all six scenarios × odroid-xu3,pixel-adreno530).
	Scenarios []string `json:"scenarios,omitempty"`
	Devices   []string `json:"devices,omitempty"`
	// Quick selects the reduced workload scale (and the CLI's matching
	// 0.08 accuracy limit).
	Quick bool `json:"quick,omitempty"`
	// Seed is the experiment seed (0 = CLI default 1).
	Seed int64 `json:"seed,omitempty"`
	// Exploration budget per cell.
	RandomSamples     int `json:"random_samples,omitempty"`
	ActiveIterations  int `json:"active_iterations,omitempty"`
	BatchPerIteration int `json:"batch_per_iteration,omitempty"`
	// Workers is the parallel evaluation worker count (0 = all CPUs).
	// Reports are bit-identical for any value, so Workers is excluded
	// from the job identity: resubmitting a spec with a different
	// worker count joins the existing job.
	Workers int `json:"workers,omitempty"`
	// Intra-cell multi-fidelity ladder.
	FidelityStride  int     `json:"fidelity_stride,omitempty"`
	PromoteFraction float64 `json:"promote_fraction,omitempty"`
	// Cell-level multi-fidelity ladder.
	CellStride          int     `json:"cell_stride,omitempty"`
	CellPromoteFraction float64 `json:"cell_promote_fraction,omitempty"`
	// Cross-cell transfer learning.
	Transfer      bool `json:"transfer,omitempty"`
	TransferSeeds int  `json:"transfer_seeds,omitempty"`
	// Knowledge adds per-cell decision rules to the JSON report.
	Knowledge bool `json:"knowledge,omitempty"`
}

// defaultDevices is the cmd/experiments -campaign-devices default.
var defaultDevices = []string{"odroid-xu3", "pixel-adreno530"}

// defaultScenarioNames enumerates the full scenario registry (the CLI
// runs all six when -campaign-scenes is empty). Names are
// scale-independent.
func defaultScenarioNames() []string {
	all := campaign.Scenarios(core.QuickScale())
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	return names
}

// norm maps the wire encoding of an optional numeric field onto its
// resolved value: 0 means the CLI default, -1 means a true zero.
func norm(v, def int) int {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	}
	return v
}

// Normalize fills CLI-default values in place, making specs canonical:
// two submissions describing the same campaign normalize to identical
// structs and therefore identical job IDs.
func (s *CampaignSpec) Normalize() {
	if len(s.Scenarios) == 0 {
		s.Scenarios = defaultScenarioNames()
	}
	if len(s.Devices) == 0 {
		s.Devices = append([]string(nil), defaultDevices...)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	s.RandomSamples = norm(s.RandomSamples, 20)
	s.ActiveIterations = norm(s.ActiveIterations, 5)
	s.BatchPerIteration = norm(s.BatchPerIteration, 4)
	if s.Workers < 0 {
		s.Workers = 0
	}
	s.FidelityStride = norm(s.FidelityStride, 0)
	if s.PromoteFraction == 0 {
		s.PromoteFraction = 0.25
	} else if s.PromoteFraction < 0 {
		s.PromoteFraction = 0
	}
	s.CellStride = norm(s.CellStride, 0)
	if s.CellPromoteFraction == 0 {
		s.CellPromoteFraction = 0.5
	} else if s.CellPromoteFraction < 0 {
		s.CellPromoteFraction = 0
	}
	s.TransferSeeds = norm(s.TransferSeeds, 0)
}

// ID derives the job identity: the first 16 hex digits of the SHA-256
// of the normalized spec's canonical JSON, with Workers zeroed first —
// worker count never changes campaign results (the determinism
// invariant), so it must not change job identity either.
func (s CampaignSpec) ID() string {
	s.Workers = 0
	b, err := json.Marshal(s)
	if err != nil {
		// A CampaignSpec is plain data; Marshal cannot fail.
		panic(fmt.Sprintf("serve: marshal spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// Options resolves the (normalized) spec into validated campaign
// options, mirroring the cmd/experiments flag mapping exactly. The
// returned options carry no execution plumbing — the job manager adds
// checkpoint directory, caches, cancellation and progress hooks.
// Every validation failure surfaces here, before any job directory is
// created or any simulation runs.
func (s CampaignSpec) Options() (campaign.Options, error) {
	scale := core.DefaultScale()
	if s.Quick {
		scale = core.QuickScale()
	}
	opts := campaign.Options{
		RandomSamples:       s.RandomSamples,
		ActiveIterations:    s.ActiveIterations,
		BatchPerIteration:   s.BatchPerIteration,
		Seed:                s.Seed,
		Workers:             s.Workers,
		FidelityStride:      s.FidelityStride,
		PromoteFraction:     s.PromoteFraction,
		CellStride:          s.CellStride,
		CellPromoteFraction: s.CellPromoteFraction,
		Transfer:            s.Transfer,
		TransferSeeds:       s.TransferSeeds,
		Knowledge:           s.Knowledge,
	}
	if s.Quick {
		opts.AccuracyLimit = 0.08
	}
	var err error
	if opts.Scenarios, err = campaign.SelectScenarios(scale, s.Scenarios); err != nil {
		return campaign.Options{}, err
	}
	if opts.Targets, err = campaign.ResolveTargets(s.Seed, s.Devices); err != nil {
		return campaign.Options{}, err
	}
	if err := opts.Validate(); err != nil {
		return campaign.Options{}, err
	}
	return opts, nil
}
