package serve

import (
	"testing"
)

func TestSpecNormalizeFillsCLIDefaults(t *testing.T) {
	var s CampaignSpec
	s.Normalize()
	if len(s.Scenarios) != 6 {
		t.Fatalf("default scenarios: %v", s.Scenarios)
	}
	if len(s.Devices) != 2 || s.Devices[0] != "odroid-xu3" || s.Devices[1] != "pixel-adreno530" {
		t.Fatalf("default devices: %v", s.Devices)
	}
	if s.Seed != 1 || s.RandomSamples != 20 || s.ActiveIterations != 5 || s.BatchPerIteration != 4 {
		t.Fatalf("default budget: %+v", s)
	}
	if s.PromoteFraction != 0.25 || s.CellPromoteFraction != 0.5 {
		t.Fatalf("default fractions: %+v", s)
	}
	// Normalization is idempotent: canonical specs stay canonical.
	id := s.ID()
	s.Normalize()
	if s.ID() != id {
		t.Fatal("normalization is not idempotent")
	}
}

func TestSpecNegativeMeansZero(t *testing.T) {
	s := CampaignSpec{ActiveIterations: -1, FidelityStride: -1, TransferSeeds: -1}
	s.Normalize()
	if s.ActiveIterations != 0 || s.FidelityStride != 0 || s.TransferSeeds != 0 {
		t.Fatalf("-1 did not normalize to zero: %+v", s)
	}
}

func TestSpecIDExcludesWorkers(t *testing.T) {
	a := CampaignSpec{Scenarios: []string{"lr_kt0"}, Devices: []string{"odroid-xu3"}, Workers: 1}
	b := CampaignSpec{Scenarios: []string{"lr_kt0"}, Devices: []string{"odroid-xu3"}, Workers: 8}
	a.Normalize()
	b.Normalize()
	if a.ID() != b.ID() {
		t.Fatal("worker count changed job identity")
	}
	c := a
	c.Seed = 2
	if c.ID() == a.ID() {
		t.Fatal("seed change did not change job identity")
	}
	// Equivalent submissions — explicit defaults vs omitted fields —
	// normalize to the same identity.
	d := CampaignSpec{Scenarios: []string{"lr_kt0"}, Devices: []string{"odroid-xu3"},
		Seed: 1, RandomSamples: 20, ActiveIterations: 5, BatchPerIteration: 4,
		PromoteFraction: 0.25, CellPromoteFraction: 0.5}
	d.Normalize()
	if d.ID() != a.ID() {
		t.Fatal("explicit CLI defaults produced a different identity than omitted fields")
	}
}

func TestSpecOptionsValidation(t *testing.T) {
	good := CampaignSpec{Quick: true, Scenarios: []string{"lr_kt0"}, Devices: []string{"odroid-xu3"}}
	good.Normalize()
	opts, err := good.Options()
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if opts.AccuracyLimit != 0.08 {
		t.Fatalf("quick spec accuracy limit %g, want the CLI's 0.08", opts.AccuracyLimit)
	}
	if len(opts.Scenarios) != 1 || len(opts.Targets) != 1 {
		t.Fatalf("resolved grid %dx%d", len(opts.Scenarios), len(opts.Targets))
	}

	bad := []CampaignSpec{
		{Scenarios: []string{"lr_kt9"}},                              // unknown scenario
		{Devices: []string{"nokia-3310"}},                            // unknown device
		{Scenarios: []string{"lr_kt0", "lr_kt0"}},                    // duplicate scenario
		{PromoteFraction: 1.5},                                       // fraction out of range
		{CellPromoteFraction: 2},                                     // fraction out of range
		{TransferSeeds: 2, Transfer: true},                           // below surrogate minimum
		{Scenarios: []string{"lr_kt0"}, Devices: []string{"odroid-xu3", "odroid-xu3"}}, // duplicate device
	}
	for i, s := range bad {
		s.Normalize()
		if _, err := s.Options(); err == nil {
			t.Fatalf("bad spec %d accepted: %+v", i, s)
		}
	}
}
