// Package serve implements the campaign service: a production-grade
// HTTP front-end over the staged campaign engine. It contains the
// frozen zero-allocation router, the job manager that runs campaigns
// as long-lived resumable jobs over a shared evaluation store and
// sequence cache, the SSE progress stream, graceful drain, and
// append-formatted access logging. cmd/dseserve is the binary shell
// around this package; cmd/dsesoak the load client.
package serve

import (
	"net/http"
	"strings"
)

// Handler is a route endpoint. param carries the route's single path
// parameter ({id} routes) or the matched subtree remainder (/* routes),
// always as a substring of the request path — the router never
// allocates on the match path.
type Handler func(w http.ResponseWriter, r *http.Request, param string)

// route is one frozen routing table entry. Exactly one of the shapes
// applies: literal (prefix only), parameterised (prefix + one
// non-empty, slash-free segment + suffix) or subtree (prefix + rest).
type route struct {
	method  string
	prefix  string
	suffix  string
	param   bool
	subtree bool
	h       Handler
}

// Router is a frozen linear-scan request router. Routes are registered
// at construction (Handle panics on malformed patterns — routing is
// program structure, not input) and matching is allocation-free: the
// table is scanned in registration order and parameters are returned
// as substrings of the request path. The table is small enough that a
// linear scan beats any tree once branch prediction warms up.
type Router struct {
	routes []route
}

// Handle registers a route. Patterns are a literal path ("/healthz"),
// a path with exactly one "{param}" segment ("/campaigns/{id}/report"),
// or a subtree prefix ending in "/*" ("/debug/pprof/*").
func (rt *Router) Handle(method, pattern string, h Handler) {
	if method == "" || pattern == "" || pattern[0] != '/' || h == nil {
		panic("serve: malformed route registration")
	}
	if rest, ok := strings.CutSuffix(pattern, "/*"); ok {
		if strings.Contains(rest, "{") {
			panic("serve: subtree route cannot also carry a parameter: " + pattern)
		}
		rt.routes = append(rt.routes, route{method: method, prefix: rest + "/", subtree: true, h: h})
		return
	}
	open := strings.IndexByte(pattern, '{')
	if open < 0 {
		rt.routes = append(rt.routes, route{method: method, prefix: pattern, h: h})
		return
	}
	closing := strings.IndexByte(pattern, '}')
	if closing < open || strings.IndexByte(pattern[closing:], '{') >= 0 {
		panic("serve: route pattern needs exactly one {param}: " + pattern)
	}
	rt.routes = append(rt.routes, route{
		method: method,
		prefix: pattern[:open],
		suffix: pattern[closing+1:],
		param:  true,
		h:      h,
	})
}

// match resolves a request to its handler and path parameter. The
// status is http.StatusOK on a match, StatusMethodNotAllowed when the
// path exists under a different method, StatusNotFound otherwise.
func (rt *Router) match(method, path string) (Handler, string, int) {
	status := http.StatusNotFound
	for i := range rt.routes {
		r := &rt.routes[i]
		var p string
		switch {
		case r.subtree:
			if !strings.HasPrefix(path, r.prefix) {
				continue
			}
			p = path[len(r.prefix):]
		case r.param:
			if len(path) <= len(r.prefix)+len(r.suffix) ||
				path[:len(r.prefix)] != r.prefix ||
				path[len(path)-len(r.suffix):] != r.suffix {
				continue
			}
			p = path[len(r.prefix) : len(path)-len(r.suffix)]
			if strings.IndexByte(p, '/') >= 0 {
				continue
			}
		default:
			if path != r.prefix {
				continue
			}
		}
		if r.method != method {
			status = http.StatusMethodNotAllowed
			continue
		}
		return r.h, p, http.StatusOK
	}
	return nil, "", status
}
