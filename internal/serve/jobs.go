package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"slamgo/internal/campaign"
	"slamgo/internal/sharedfs"
	"slamgo/internal/slambench"
)

// Job states. A job is terminal in StateDone, StateFailed and
// StateCanceled. StateInterrupted means this process drained with the
// job mid-run: its runner has exited, and the next boot re-enqueues
// the job as pending to resume from its checkpoint store.
const (
	StatePending     = "pending"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCanceled    = "canceled"
	StateInterrupted = "interrupted"
)

// ErrDraining rejects submissions during graceful shutdown.
var ErrDraining = errors.New("serve: draining, not accepting new campaigns")

// Job directory artifacts under <data>/jobs/<id>/.
const (
	specFile     = "spec.json"
	storeDir     = "store"
	reportJSON   = "report.json"
	reportCSV    = "report.csv"
	reportTable  = "report.txt"
	canceledFile = "canceled"
	failedFile   = "failed"
)

// Job is one served campaign: a spec, its private checkpoint store,
// and the in-memory execution state the handlers read. Every byte the
// steady-state handlers serve (status JSON, report renderings) is
// cached here and re-rendered only on state transitions, which is what
// makes the request path allocation-free.
type Job struct {
	id   string
	dir  string
	spec CampaignSpec

	// cancel is the cooperative stop signal threaded into the campaign
	// run. User cancellation writes the canceled marker before closing;
	// drain closes without a marker, so the next boot resumes the job.
	cancel     chan struct{}
	cancelOnce sync.Once

	mu        sync.Mutex
	state     string
	stage     string
	cells     int
	stageDone int // cell events observed in the current stage
	cellEvent int // cell events observed over the whole run
	errMsg    string
	evalSims  int
	evalHits  int

	status  []byte   // cached status JSON, re-rendered on every change
	frames  [][]byte // rendered SSE frames, append-only
	changed chan struct{}
	done    chan struct{}

	repJSON  []byte
	repCSV   []byte
	repTable []byte
}

func newJob(id, dir string, spec CampaignSpec, state string) *Job {
	j := &Job{
		id:      id,
		dir:     dir,
		spec:    spec,
		state:   state,
		cancel:  make(chan struct{}),
		changed: make(chan struct{}),
		done:    make(chan struct{}),
	}
	j.renderStatusLocked()
	return j
}

// ID returns the job identity (CampaignSpec.ID of its spec).
func (j *Job) ID() string { return j.id }

// State returns the job's current lifecycle state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// StatusJSON returns the cached status rendering. The slice is
// immutable once returned — a change renders a fresh one.
func (j *Job) StatusJSON() []byte {
	j.mu.Lock()
	b := j.status
	j.mu.Unlock()
	return b
}

// Report returns the cached report rendering for a format ("json",
// "csv" or "table") and whether the job has one (only done jobs do).
func (j *Job) Report(format string) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var b []byte
	switch format {
	case "json":
		b = j.repJSON
	case "csv":
		b = j.repCSV
	case "table":
		b = j.repTable
	}
	return b, b != nil
}

// framesFrom returns the SSE frames not yet seen by a follower, the
// channel that signals the next change, and whether the job is
// terminal. Frames are append-only and individually immutable, so the
// returned slice is safe to iterate outside the lock.
func (j *Job) framesFrom(n int) ([][]byte, <-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var fresh [][]byte
	if n < len(j.frames) {
		fresh = j.frames[n:]
	}
	return fresh, j.changed, endedState(j.state)
}

func terminalState(s string) bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// endedState additionally includes StateInterrupted: the job is not
// permanently finished (the next boot resumes it), but no further
// events can happen in THIS process — its runner has exited — so
// followers and Done() waiters must unblock.
func endedState(s string) bool {
	return terminalState(s) || s == StateInterrupted
}

// jobStatus is the wire form of GET /campaigns/{id}.
type jobStatus struct {
	ID             string        `json:"id"`
	State          string        `json:"state"`
	Stage          string        `json:"stage,omitempty"`
	Cells          int           `json:"cells,omitempty"`
	StageCellsDone int           `json:"stage_cells_done"`
	CellEvents     int           `json:"cell_events"`
	Error          string        `json:"error,omitempty"`
	EvalSims       int           `json:"eval_simulations"`
	EvalDiskHits   int           `json:"eval_disk_hits"`
	Spec           *CampaignSpec `json:"spec,omitempty"`
}

// renderStatusLocked refreshes the cached status JSON; callers hold mu.
func (j *Job) renderStatusLocked() {
	st := jobStatus{
		ID:             j.id,
		State:          j.state,
		Stage:          j.stage,
		Cells:          j.cells,
		StageCellsDone: j.stageDone,
		CellEvents:     j.cellEvent,
		Error:          j.errMsg,
		EvalSims:       j.evalSims,
		EvalDiskHits:   j.evalHits,
		Spec:           &j.spec,
	}
	b, err := json.Marshal(st)
	if err != nil {
		b = []byte(`{"id":"` + j.id + `","state":"` + j.state + `"}`)
	}
	j.status = append(b, '\n')
}

// broadcastLocked wakes every follower; callers hold mu.
func (j *Job) broadcastLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// appendFrameLocked renders one SSE frame and appends it to the replay
// log; callers hold mu.
func (j *Job) appendFrameLocked(event string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	var buf bytes.Buffer
	buf.Grow(len(event) + len(data) + 16)
	buf.WriteString("event: ")
	buf.WriteString(event)
	buf.WriteString("\ndata: ")
	buf.Write(data)
	buf.WriteString("\n\n")
	j.frames = append(j.frames, buf.Bytes())
}

// observe is the campaign.Options.OnProgress hook: it folds stage and
// cell transitions into the cached status and the SSE replay log. The
// campaign serialises OnProgress calls, so mu ordering is simple.
func (j *Job) observe(ev campaign.ProgressEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch ev.Kind {
	case campaign.ProgressStageStart:
		j.stage = string(ev.Stage)
		j.cells = ev.Cells
		j.stageDone = 0
	case campaign.ProgressStageDone:
		j.stage = string(ev.Stage)
		j.cells = ev.Cells
	case campaign.ProgressCellDone:
		j.stageDone++
		j.cellEvent++
	}
	j.appendFrameLocked("progress", ev)
	j.renderStatusLocked()
	j.broadcastLocked()
}

// transition moves the job to a new state, refreshes the cached
// status, logs an SSE state frame and, for ended states, closes Done
// so followers and the drain path unblock.
func (j *Job) transition(state, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminalState(j.state) {
		return
	}
	j.state = state
	j.errMsg = errMsg
	j.renderStatusLocked()
	j.appendFrameLocked("state", jobStatus{ID: j.id, State: state, Error: errMsg,
		StageCellsDone: j.stageDone, CellEvents: j.cellEvent,
		EvalSims: j.evalSims, EvalDiskHits: j.evalHits})
	j.broadcastLocked()
	if endedState(state) {
		close(j.done)
	}
}

// requestCancel fires the cooperative stop signal once.
func (j *Job) requestCancel() {
	j.cancelOnce.Do(func() { close(j.cancel) })
}

// Manager owns the job set: the bounded runner pool, the shared
// evaluation store and sequence cache directories every job points at,
// and the boot-time resume scan. One Manager serves one data
// directory; a process restart with the same directory picks every
// interrupted job back up from its checkpoint store.
type Manager struct {
	dataDir string
	jobsDir string
	evalDir string
	seqDir  string
	slots   chan struct{}
	logf    func(format string, args ...any)

	mu       sync.Mutex
	jobs     map[string]*Job
	draining bool
	wg       sync.WaitGroup
}

// NewManager prepares a manager over a data directory. maxConcurrent
// bounds how many campaigns run simultaneously (queued jobs wait in
// submission order on the pool semaphore); logf receives operational
// logging (nil discards it).
func NewManager(dataDir string, maxConcurrent int, logf func(format string, args ...any)) (*Manager, error) {
	if maxConcurrent <= 0 {
		maxConcurrent = 1
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	m := &Manager{
		dataDir: dataDir,
		jobsDir: filepath.Join(dataDir, "jobs"),
		evalDir: filepath.Join(dataDir, "evalcache"),
		seqDir:  filepath.Join(dataDir, "seqcache"),
		slots:   make(chan struct{}, maxConcurrent),
		logf:    logf,
		jobs:    make(map[string]*Job),
	}
	if err := os.MkdirAll(m.jobsDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	return m, nil
}

// Resume scans the jobs directory and reconstructs every job a
// previous process left behind: done/failed/canceled jobs are loaded
// as terminal records (their cached reports served from disk), and
// jobs interrupted mid-run re-enter the queue and resume from their
// checkpoint stores. Returns how many jobs re-entered the queue.
func (m *Manager) Resume() (int, error) {
	entries, err := os.ReadDir(m.jobsDir)
	if err != nil {
		return 0, fmt.Errorf("serve: %w", err)
	}
	resumed := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		dir := filepath.Join(m.jobsDir, id)
		raw, err := os.ReadFile(filepath.Join(dir, specFile))
		if err != nil {
			m.logf("job %s: skipping: %v", id, err)
			continue
		}
		var spec CampaignSpec
		if err := json.Unmarshal(raw, &spec); err != nil {
			m.logf("job %s: skipping: %v", id, err)
			continue
		}
		switch {
		case fileExists(filepath.Join(dir, canceledFile)):
			// A user-canceled job stays canceled across restarts; only an
			// explicit resubmission revives it.
			j := newJob(id, dir, spec, StateCanceled)
			j.requestCancel()
			close(j.done)
			m.jobs[id] = j
		case fileExists(filepath.Join(dir, failedFile)):
			msg, _ := os.ReadFile(filepath.Join(dir, failedFile))
			j := newJob(id, dir, spec, StateFailed)
			j.errMsg = string(bytes.TrimSpace(msg))
			j.renderStatusLocked()
			j.requestCancel()
			close(j.done)
			m.jobs[id] = j
		case m.loadDone(id, dir, spec):
			// loadDone installed the job.
		default:
			// Interrupted mid-run: back to pending, resuming from the
			// checkpoint store when a pool slot frees up.
			j := newJob(id, dir, spec, StatePending)
			m.jobs[id] = j
			m.enqueue(j)
			resumed++
			m.logf("job %s: resuming from checkpoint", id)
		}
	}
	return resumed, nil
}

// loadDone installs a completed job from its persisted reports,
// reporting whether it did.
func (m *Manager) loadDone(id, dir string, spec CampaignSpec) bool {
	js, err1 := os.ReadFile(filepath.Join(dir, reportJSON))
	cs, err2 := os.ReadFile(filepath.Join(dir, reportCSV))
	tb, err3 := os.ReadFile(filepath.Join(dir, reportTable))
	if err1 != nil || err2 != nil || err3 != nil {
		return false
	}
	j := newJob(id, dir, spec, StateDone)
	j.repJSON, j.repCSV, j.repTable = js, cs, tb
	j.renderStatusLocked()
	j.appendFrameLocked("state", jobStatus{ID: id, State: StateDone})
	close(j.done)
	m.jobs[id] = j
	return true
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// Submit validates a spec and installs (or joins) its job. The spec is
// normalized and fully validated — scenario and device names, budget
// sanity, option consistency — before any directory is created or any
// simulation runs; a malformed submission leaves no trace. Submission
// is idempotent: a spec resolving to an existing live job returns that
// job (created=false). A previously canceled job is revived by
// resubmission.
func (m *Manager) Submit(spec CampaignSpec) (job *Job, created bool, err error) {
	spec.Normalize()
	if _, err := spec.Options(); err != nil {
		return nil, false, err
	}
	id := spec.ID()

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, false, ErrDraining
	}
	if existing, ok := m.jobs[id]; ok {
		if existing.State() != StateCanceled {
			return existing, false, nil
		}
		// Revive: clear the marker so the new incarnation is not
		// misclassified on the next boot, then fall through to enqueue a
		// fresh job over the same directory (its checkpointed artifacts
		// are still there, so the revived run resumes for free).
		if err := os.Remove(filepath.Join(m.jobsDir, id, canceledFile)); err != nil && !os.IsNotExist(err) {
			return nil, false, fmt.Errorf("serve: revive %s: %w", id, err)
		}
	}
	dir := filepath.Join(m.jobsDir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, false, fmt.Errorf("serve: %w", err)
	}
	raw, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return nil, false, fmt.Errorf("serve: %w", err)
	}
	if err := sharedfs.WriteFileAtomic(dir, filepath.Join(dir, specFile), "serve spec", append(raw, '\n')); err != nil {
		return nil, false, err
	}
	j := newJob(id, dir, spec, StatePending)
	m.jobs[id] = j
	m.enqueue(j)
	return j, true, nil
}

// enqueue starts the job's runner goroutine; callers hold m.mu (or are
// still single-threaded in Resume).
func (m *Manager) enqueue(j *Job) {
	m.wg.Add(1)
	go m.run(j)
}

// run executes one job through the bounded pool.
func (m *Manager) run(j *Job) {
	defer m.wg.Done()
	select {
	case m.slots <- struct{}{}:
		defer func() { <-m.slots }()
	case <-j.cancel:
		// Canceled (or drained) while still queued: nothing ran, nothing
		// to checkpoint.
		j.transition(m.cancelState(j), "")
		return
	}
	select {
	case <-j.cancel:
		j.transition(m.cancelState(j), "")
		return
	default:
	}
	j.transition(StateRunning, "")

	opts, err := j.spec.Options()
	if err != nil {
		// Validated at submission; reaching this means the spec file was
		// edited out from under us.
		m.failJob(j, err)
		return
	}
	opts.CheckpointDir = filepath.Join(j.dir, storeDir)
	opts.Resume = true
	opts.WorkerID = "dseserve"
	opts.EvalCacheDir = m.evalDir
	opts.SeqCacheDir = m.seqDir
	opts.Cancel = j.cancel
	opts.OnProgress = j.observe
	opts.Log = func(msg string) { m.logf("job %s: %s", j.id, msg) }

	res, err := campaign.Run(opts)
	switch {
	case errors.Is(err, campaign.ErrCanceled):
		m.logf("job %s: %s", j.id, m.cancelState(j))
		j.transition(m.cancelState(j), "")
	case err != nil:
		m.failJob(j, err)
	default:
		m.finishJob(j, res)
	}
}

// cancelState distinguishes user cancellation (marker on disk — stays
// canceled across restarts) from drain interruption (no marker — the
// next boot resumes the job).
func (m *Manager) cancelState(j *Job) string {
	if fileExists(filepath.Join(j.dir, canceledFile)) {
		return StateCanceled
	}
	return StateInterrupted
}

func (m *Manager) failJob(j *Job, err error) {
	m.logf("job %s: failed: %v", j.id, err)
	if werr := sharedfs.WriteFileAtomic(j.dir, filepath.Join(j.dir, failedFile), "serve failure", []byte(err.Error()+"\n")); werr != nil {
		m.logf("job %s: recording failure: %v", j.id, werr)
	}
	j.transition(StateFailed, err.Error())
}

// finishJob renders every report format once, persists them atomically
// (done-ness on disk is exactly "all three reports exist"), and caches
// the bytes for allocation-free serving.
func (m *Manager) finishJob(j *Job, res *campaign.Result) {
	rep := res.Report()
	var js, cs, tb bytes.Buffer
	if err := slambench.WriteCampaignJSON(&js, rep); err != nil {
		m.failJob(j, err)
		return
	}
	if err := slambench.WriteCampaignCSV(&cs, rep); err != nil {
		m.failJob(j, err)
		return
	}
	if err := slambench.WriteCampaignTable(&tb, rep); err != nil {
		m.failJob(j, err)
		return
	}
	for _, f := range []struct {
		name string
		data []byte
	}{
		{reportTable, tb.Bytes()},
		{reportCSV, cs.Bytes()},
		{reportJSON, js.Bytes()}, // JSON last: its presence completes the done predicate
	} {
		if err := sharedfs.WriteFileAtomic(j.dir, filepath.Join(j.dir, f.name), "serve report", f.data); err != nil {
			m.failJob(j, err)
			return
		}
	}
	j.mu.Lock()
	j.repJSON, j.repCSV, j.repTable = js.Bytes(), cs.Bytes(), tb.Bytes()
	j.evalSims, j.evalHits = rep.EvalSimulations, rep.EvalDiskHits
	j.mu.Unlock()
	m.logf("job %s: done (evalstore simulations=%d disk-hits=%d)", j.id, rep.EvalSimulations, rep.EvalDiskHits)
	j.transition(StateDone, "")
}

// Get returns a job by ID (nil when unknown).
func (m *Manager) Get(id string) *Job {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	return j
}

// Draining reports whether a drain is underway.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	d := m.draining
	m.mu.Unlock()
	return d
}

// Cancel requests user cancellation of a job: the marker is written
// first (so a crash between marker and signal still reads as a user
// cancel), then the cooperative stop signal fires. In-flight cells
// finish and checkpoint; the job lands in StateCanceled and is never
// auto-resumed. Canceling a terminal job is a no-op reporting the
// terminal state.
func (m *Manager) Cancel(id string) (string, error) {
	j := m.Get(id)
	if j == nil {
		return "", fmt.Errorf("serve: unknown campaign %q", id)
	}
	if s := j.State(); terminalState(s) {
		return s, nil
	}
	if err := sharedfs.WriteFileAtomic(j.dir, filepath.Join(j.dir, canceledFile), "serve cancel", []byte("canceled by request\n")); err != nil {
		return "", err
	}
	j.requestCancel()
	return j.State(), nil
}

// Drain gracefully stops the manager: new submissions are refused,
// every queued or running job receives the cooperative stop signal
// (without a canceled marker, so the next boot resumes them), and the
// call blocks until all runner goroutines have checkpointed and
// exited. Idempotent.
func (m *Manager) Drain() {
	m.mu.Lock()
	m.draining = true
	for _, j := range m.jobs {
		if !terminalState(j.State()) {
			j.requestCancel()
		}
	}
	m.mu.Unlock()
	m.wg.Wait()
}

// Jobs snapshots the current job set (for health reporting).
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	out := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j)
	}
	m.mu.Unlock()
	return out
}
