package serve

import (
	"net/http"
	"time"
)

// sseHeartbeat keeps idle event streams alive through proxies and
// detects dead clients between campaign events.
const sseHeartbeat = 15 * time.Second

var heartbeatFrame = []byte(": heartbeat\n\n")

// handleEvents streams a job's progress as Server-Sent Events: the
// full replay of frames observed so far (a late subscriber sees the
// whole history), then live frames as the campaign produces them. The
// stream ends when the job reaches a terminal state — a frame
// announcing that state is always the last one — so a drain completes
// as soon as its jobs have checkpointed: every follower's job goes
// terminal (interrupted), every stream closes, and http.Server.
// Shutdown returns.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, id string) {
	j := s.m.Get(id)
	if j == nil {
		jsonError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	h := w.Header()
	h["Content-Type"] = ctStream
	h["Cache-Control"] = noCache
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)

	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	sent := 0
	for {
		frames, changed, terminal := j.framesFrom(sent)
		for _, f := range frames {
			if _, err := w.Write(f); err != nil {
				return
			}
			sent++
		}
		if err := rc.Flush(); err != nil {
			return
		}
		if terminal {
			// framesFrom snapshots frames and terminal under one lock, and
			// the terminal transition appends its state frame under that
			// same lock, so once terminal is observed the replay above
			// already delivered the final frame.
			return
		}
		select {
		case <-changed:
		case <-heartbeat.C:
			if _, err := w.Write(heartbeatFrame); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
