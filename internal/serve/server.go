package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// maxSpecBytes bounds a campaign submission body. Specs are a few
// hundred bytes; anything near the limit is abuse, not a campaign.
const maxSpecBytes = 1 << 20

// Preallocated header values: assigning a package-level slice into the
// header map keeps the steady-state handlers allocation-free.
var (
	ctJSON   = []string{"application/json; charset=utf-8"}
	ctCSV    = []string{"text/csv; charset=utf-8"}
	ctText   = []string{"text/plain; charset=utf-8"}
	ctStream = []string{"text/event-stream"}
	noCache  = []string{"no-cache"}
)

// Server is the campaign service's HTTP surface: the frozen router,
// the job manager behind it, and the access logger. It implements
// http.Handler; cmd/dseserve wraps it in an http.Server with
// production timeouts.
type Server struct {
	m      *Manager
	router Router
	access *accessLogger
}

// NewServer wires the route table. accessOut receives one structured
// line per request (nil disables access logging).
func NewServer(m *Manager, accessOut io.Writer) *Server {
	s := &Server{m: m, access: newAccessLogger(accessOut)}
	s.router.Handle(http.MethodGet, "/healthz", s.handleHealthz)
	s.router.Handle(http.MethodPost, "/campaigns", s.handleSubmit)
	s.router.Handle(http.MethodGet, "/campaigns/{id}", s.handleStatus)
	s.router.Handle(http.MethodGet, "/campaigns/{id}/report", s.handleReport)
	s.router.Handle(http.MethodGet, "/campaigns/{id}/events", s.handleEvents)
	s.router.Handle(http.MethodPost, "/campaigns/{id}/cancel", s.handleCancel)
	s.router.Handle(http.MethodGet, "/debug/pprof", s.handlePprof)
	s.router.Handle(http.MethodGet, "/debug/pprof/*", s.handlePprof)
	return s
}

// ServeHTTP is the request hot path: match, dispatch, log. Everything
// it touches per request — the pooled status-capturing writer, the
// router match, the cached status/report bytes, the appended log line
// — stays off the allocator in steady state (enforced by the
// BenchmarkKernel_Serve* benchmarks at the repo root).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := getStatusWriter(w)
	h, param, code := s.router.match(r.Method, r.URL.Path)
	if h == nil {
		if code == http.StatusMethodNotAllowed {
			http.Error(sw, "method not allowed", http.StatusMethodNotAllowed)
		} else {
			http.Error(sw, "not found", http.StatusNotFound)
		}
	} else {
		h(sw, r, param)
	}
	s.access.log(start, r.Method, r.URL.Path, r.URL.RawQuery, sw.code, sw.bytes)
	putStatusWriter(sw)
}

// jsonError writes a small JSON error payload (error paths may
// allocate; only the steady-state read paths are allocation-free).
func jsonError(w http.ResponseWriter, code int, msg string) {
	w.Header()["Content-Type"] = ctJSON
	w.WriteHeader(code)
	body, err := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	if err != nil {
		return
	}
	w.Write(append(body, '\n'))
}

// handleSubmit accepts a campaign spec, validates it completely before
// any job state exists, and installs (or joins) its job. 201 created,
// 200 joined an existing job, 400 invalid, 503 draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request, _ string) {
	if s.m.Draining() {
		jsonError(w, http.StatusServiceUnavailable, ErrDraining.Error())
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxSpecBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec CampaignSpec
	if err := dec.Decode(&spec); err != nil {
		jsonError(w, http.StatusBadRequest, "invalid spec: "+err.Error())
		return
	}
	if dec.More() {
		jsonError(w, http.StatusBadRequest, "invalid spec: trailing data after JSON object")
		return
	}
	job, created, err := s.m.Submit(spec)
	switch {
	case errors.Is(err, ErrDraining):
		jsonError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header()["Content-Type"] = ctJSON
	if created {
		w.WriteHeader(http.StatusCreated)
	}
	w.Write(job.StatusJSON())
}

// handleStatus serves the cached status bytes — the zero-allocation
// steady-state read path.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request, id string) {
	j := s.m.Get(id)
	if j == nil {
		jsonError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	h := w.Header()
	h["Content-Type"] = ctJSON
	h["Cache-Control"] = noCache
	w.Write(j.StatusJSON())
}

// handleReport serves a completed job's cached report rendering. The
// format comes from the raw query string, compared literally so the
// hot path never parses url.Values: "", "format=json", "format=csv" or
// "format=table".
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request, id string) {
	j := s.m.Get(id)
	if j == nil {
		jsonError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	var format string
	var ct []string
	switch r.URL.RawQuery {
	case "", "format=json":
		format, ct = "json", ctJSON
	case "format=csv":
		format, ct = "csv", ctCSV
	case "format=table":
		format, ct = "table", ctText
	default:
		jsonError(w, http.StatusBadRequest, "unknown report format (want format=json, format=csv or format=table)")
		return
	}
	body, ok := j.Report(format)
	if !ok {
		jsonError(w, http.StatusConflict, "campaign not done")
		return
	}
	w.Header()["Content-Type"] = ct
	w.Write(body)
}

// handleCancel requests user cancellation: in-flight cells finish and
// checkpoint, the job lands canceled and is never auto-resumed
// (resubmitting the spec revives it, reusing the checkpointed work).
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request, id string) {
	state, err := s.m.Cancel(id)
	if err != nil {
		jsonError(w, http.StatusNotFound, err.Error())
		return
	}
	w.Header()["Content-Type"] = ctJSON
	fmt.Fprintf(w, "{\"id\":%q,\"state\":%q}\n", id, state)
}

// healthStatus is the wire form of GET /healthz.
type healthStatus struct {
	Status     string         `json:"status"`
	Draining   bool           `json:"draining"`
	Jobs       map[string]int `json:"jobs"`
	Goroutines int            `json:"goroutines"`
	HeapAlloc  uint64         `json:"heap_alloc_bytes"`
	HeapSys    uint64         `json:"heap_sys_bytes"`
}

// handleHealthz reports liveness, job-state counts and heap size (the
// soak client's memory-ceiling probe).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request, _ string) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := healthStatus{
		Status:     "ok",
		Draining:   s.m.Draining(),
		Jobs:       map[string]int{},
		Goroutines: runtime.NumGoroutine(),
		HeapAlloc:  ms.HeapAlloc,
		HeapSys:    ms.HeapSys,
	}
	for _, j := range s.m.Jobs() {
		st.Jobs[j.State()]++
	}
	w.Header()["Content-Type"] = ctJSON
	body, err := json.Marshal(st)
	if err != nil {
		return
	}
	w.Write(append(body, '\n'))
}

// handlePprof dispatches the standard pprof surface under
// /debug/pprof/. The named endpoints get their dedicated handlers;
// everything else (including the index and named profiles) goes to
// Index, which routes on the URL path.
func (s *Server) handlePprof(w http.ResponseWriter, r *http.Request, rest string) {
	switch rest {
	case "cmdline":
		pprof.Cmdline(w, r)
	case "profile":
		pprof.Profile(w, r)
	case "symbol":
		pprof.Symbol(w, r)
	case "trace":
		pprof.Trace(w, r)
	default:
		pprof.Index(w, r)
	}
}
