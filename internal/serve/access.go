package serve

import (
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// accessLogger emits one structured key=value line per request. The
// line is assembled by appending into a buffer reused under the lock
// and written with a single Write, so steady-state logging allocates
// nothing and lines from concurrent requests never interleave.
type accessLogger struct {
	mu  sync.Mutex
	out io.Writer
	buf []byte
}

func newAccessLogger(out io.Writer) *accessLogger {
	if out == nil {
		return nil
	}
	return &accessLogger{out: out, buf: make([]byte, 0, 256)}
}

// log records one completed request. A nil logger discards.
func (l *accessLogger) log(start time.Time, method, path, query string, status int, bytes int64) {
	if l == nil {
		return
	}
	dur := time.Since(start)
	l.mu.Lock()
	b := l.buf[:0]
	b = append(b, "time="...)
	b = start.AppendFormat(b, time.RFC3339)
	b = append(b, " method="...)
	b = append(b, method...)
	b = append(b, " path="...)
	b = append(b, path...)
	if query != "" {
		b = append(b, '?')
		b = append(b, query...)
	}
	b = append(b, " status="...)
	b = strconv.AppendInt(b, int64(status), 10)
	b = append(b, " bytes="...)
	b = strconv.AppendInt(b, bytes, 10)
	b = append(b, " dur_us="...)
	b = strconv.AppendInt(b, dur.Microseconds(), 10)
	b = append(b, '\n')
	l.out.Write(b)
	l.buf = b[:0]
	l.mu.Unlock()
}

// statusWriter wraps the ResponseWriter to capture the status code and
// byte count for the access log. Instances are pooled: the wrapper is
// the only per-request object the hot path needs, and the pool keeps
// it off the allocator.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

var statusWriterPool = sync.Pool{New: func() any { return new(statusWriter) }}

func getStatusWriter(w http.ResponseWriter) *statusWriter {
	sw := statusWriterPool.Get().(*statusWriter)
	sw.ResponseWriter = w
	sw.code = 0
	sw.bytes = 0
	return sw
}

func putStatusWriter(sw *statusWriter) {
	sw.ResponseWriter = nil
	statusWriterPool.Put(sw)
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Unwrap lets http.ResponseController reach the underlying writer
// (the SSE handler flushes through it).
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
