package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"slamgo/internal/campaign"
	"slamgo/internal/slambench"
)

// tinySpec is the smallest real campaign: one quick cell with a
// minimal exploration budget (~seconds). Shared by the fixture.
func tinySpec() CampaignSpec {
	return CampaignSpec{
		Quick: true, Scenarios: []string{"lr_kt0"}, Devices: []string{"odroid-xu3"},
		RandomSamples: 4, ActiveIterations: 1, BatchPerIteration: 2,
	}
}

// pairSpec is a two-cell serial campaign (Workers 1), sized so a drain
// or cancel lands mid-run with high margin.
func pairSpec() CampaignSpec {
	return CampaignSpec{
		Quick: true, Scenarios: []string{"lr_kt0", "of_kt0"}, Devices: []string{"odroid-xu3"},
		RandomSamples: 4, ActiveIterations: 1, BatchPerIteration: 2, Workers: 1,
	}
}

// fixture runs the tiny campaign once through a real Manager; every
// steady-state test (parity, zero-alloc, SSE replay) reuses the
// completed job instead of paying for its own campaign.
var fixture struct {
	once sync.Once
	dir  string
	m    *Manager
	srv  *Server
	job  *Job
	err  error
}

func fixtureServer(t *testing.T) (*Server, *Manager, *Job) {
	t.Helper()
	fixture.once.Do(func() {
		dir, err := os.MkdirTemp("", "serve-fixture-")
		if err != nil {
			fixture.err = err
			return
		}
		fixture.dir = dir
		m, err := NewManager(dir, 2, nil)
		if err != nil {
			fixture.err = err
			return
		}
		job, created, err := m.Submit(tinySpec())
		if err != nil {
			fixture.err = err
			return
		}
		if !created {
			fixture.err = fmt.Errorf("fresh manager reported an existing job")
			return
		}
		if err := waitTerminal(job, 5*time.Minute); err != nil {
			fixture.err = err
			return
		}
		if s := job.State(); s != StateDone {
			fixture.err = fmt.Errorf("fixture job ended %s", s)
			return
		}
		fixture.m = m
		fixture.srv = NewServer(m, io.Discard)
		fixture.job = job
	})
	if fixture.err != nil {
		t.Fatalf("fixture: %v", fixture.err)
	}
	return fixture.srv, fixture.m, fixture.job
}

func TestMain(m *testing.M) {
	code := m.Run()
	if fixture.dir != "" {
		os.RemoveAll(fixture.dir)
	}
	os.Exit(code)
}

func waitTerminal(j *Job, timeout time.Duration) error {
	select {
	case <-j.Done():
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("job %s still %s after %s", j.ID(), j.State(), timeout)
	}
}

// status parses a job's cached status JSON.
func status(t *testing.T, j *Job) jobStatus {
	t.Helper()
	var st jobStatus
	if err := json.Unmarshal(j.StatusJSON(), &st); err != nil {
		t.Fatalf("status JSON: %v", err)
	}
	return st
}

// directReference runs the spec's campaign directly — no manager, no
// checkpoint, no caches, no leases — and renders it through the same
// writers the CLI uses.
func directReference(t *testing.T, spec CampaignSpec) (jsonB, csvB, tableB []byte) {
	t.Helper()
	spec.Normalize()
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	var js, cs, tb bytes.Buffer
	if err := slambench.WriteCampaignJSON(&js, rep); err != nil {
		t.Fatal(err)
	}
	if err := slambench.WriteCampaignCSV(&cs, rep); err != nil {
		t.Fatal(err)
	}
	if err := slambench.WriteCampaignTable(&tb, rep); err != nil {
		t.Fatal(err)
	}
	return js.Bytes(), cs.Bytes(), tb.Bytes()
}

// get dispatches one request through the server and returns the
// recorded response.
func get(srv *Server, method, target string, body io.Reader) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(method, target, body))
	return rec
}

// TestServedReportMatchesDirectRun is the parity acceptance check at
// the package level (scripts/serve-smoke.sh repeats it against the
// real CLI over a real socket): every report format served over HTTP
// is byte-identical to the same campaign run directly, without any of
// the service's checkpoint/cache/lease plumbing.
func TestServedReportMatchesDirectRun(t *testing.T) {
	srv, _, job := fixtureServer(t)
	refJSON, refCSV, refTable := directReference(t, tinySpec())

	for _, c := range []struct {
		query string
		want  []byte
	}{
		{"", refJSON},
		{"?format=json", refJSON},
		{"?format=csv", refCSV},
		{"?format=table", refTable},
	} {
		rec := get(srv, http.MethodGet, "/campaigns/"+job.ID()+"/report"+c.query, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("report%s: HTTP %d", c.query, rec.Code)
		}
		if !bytes.Equal(rec.Body.Bytes(), c.want) {
			t.Fatalf("report%s diverges from the direct run", c.query)
		}
	}
}

// TestServedDeterministicAcrossWorkers: the same spec served with a
// different worker count (in a separate manager — worker count does
// not change job identity) renders bit-identical reports.
func TestServedDeterministicAcrossWorkers(t *testing.T) {
	_, _, refJob := fixtureServer(t)
	refReport, _ := refJob.Report("json")

	spec := tinySpec()
	spec.Workers = 4
	m, err := NewManager(t.TempDir(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	job, _, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID() != refJob.ID() {
		t.Fatalf("worker count changed job identity: %s vs %s", job.ID(), refJob.ID())
	}
	if err := waitTerminal(job, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	got, ok := job.Report("json")
	if !ok {
		t.Fatalf("job ended %s", job.State())
	}
	if !bytes.Equal(got, refReport) {
		t.Fatal("served report diverges across worker counts")
	}
}

func TestStatusAndHealthEndpoints(t *testing.T) {
	srv, _, job := fixtureServer(t)

	rec := get(srv, http.MethodGet, "/campaigns/"+job.ID(), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status: HTTP %d", rec.Code)
	}
	var st jobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.ID != job.ID() || st.State != StateDone {
		t.Fatalf("status: %+v", st)
	}
	if st.EvalSims == 0 {
		t.Fatal("cold campaign reported zero evaluation-store simulations")
	}
	if st.Spec == nil || st.Spec.Scenarios[0] != "lr_kt0" {
		t.Fatalf("status spec missing: %+v", st)
	}

	rec = get(srv, http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", rec.Code)
	}
	var h healthStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Jobs[StateDone] == 0 || h.HeapAlloc == 0 {
		t.Fatalf("healthz: %+v", h)
	}
}

// nullResponseWriter is the benchmark/allocation-test sink: a reusable
// writer whose header map persists across requests, so steady-state
// header assignment stays allocation-free exactly as it does on a
// kept-alive connection.
type nullResponseWriter struct {
	h http.Header
}

func (w *nullResponseWriter) Header() http.Header         { return w.h }
func (w *nullResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nullResponseWriter) WriteHeader(int)             {}

// TestSteadyStateRequestsDoNotAllocate enforces the zero-allocation
// service guarantee in-process (the root BenchmarkKernel_Serve*
// benchmarks report the same number to the perf gate): serving status
// and reports for a completed job — including route matching, the
// pooled response wrapper and the access-log line — allocates nothing.
func TestSteadyStateRequestsDoNotAllocate(t *testing.T) {
	_, m, job := fixtureServer(t)
	srv := NewServer(m, io.Discard) // access logging on: it must be free too

	w := &nullResponseWriter{h: make(http.Header)}
	reqStatus := httptest.NewRequest(http.MethodGet, "/campaigns/"+job.ID(), nil)
	reqReport := httptest.NewRequest(http.MethodGet, "/campaigns/"+job.ID()+"/report?format=json", nil)
	reqTable := httptest.NewRequest(http.MethodGet, "/campaigns/"+job.ID()+"/report?format=table", nil)

	// Warm the pools and header map once.
	srv.ServeHTTP(w, reqStatus)
	srv.ServeHTTP(w, reqReport)
	srv.ServeHTTP(w, reqTable)

	n := testing.AllocsPerRun(500, func() {
		srv.ServeHTTP(w, reqStatus)
		srv.ServeHTTP(w, reqReport)
		srv.ServeHTTP(w, reqTable)
	})
	if n != 0 {
		t.Fatalf("steady-state request path allocates %.2f objects per 3 requests, want 0", n)
	}
}

// TestSSEReplayOfCompletedJob: a late subscriber to a finished job
// receives the whole frame history and a final state frame, then the
// stream ends immediately.
func TestSSEReplayOfCompletedJob(t *testing.T) {
	srv, _, job := fixtureServer(t)
	rec := get(srv, http.MethodGet, "/campaigns/"+job.ID()+"/events", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("events: HTTP %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "event: progress") {
		t.Fatal("replay contains no progress frames")
	}
	frames := strings.Split(strings.TrimSuffix(body, "\n\n"), "\n\n")
	last := frames[len(frames)-1]
	if !strings.Contains(last, "event: state") || !strings.Contains(last, `"state":"done"`) {
		t.Fatalf("last frame is not the done state: %q", last)
	}
}

// TestDrainCheckpointsInFlightAndResumes is the graceful-shutdown
// acceptance check: a drain mid-campaign finishes and checkpoints the
// in-flight cell, ends the SSE stream, leaks no goroutines, and a new
// manager over the same data directory resumes the job to a report
// byte-identical to an uninterrupted served run — with strictly fewer
// evaluation-store simulations, proving the checkpointed work was
// reused, not redone.
func TestDrainCheckpointsInFlightAndResumes(t *testing.T) {
	// Uninterrupted reference through its own manager.
	mRef, err := NewManager(t.TempDir(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	refJob, _, err := mRef.Submit(pairSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := waitTerminal(refJob, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	refReport, ok := refJob.Report("json")
	if !ok {
		t.Fatalf("reference job ended %s", refJob.State())
	}
	refSims := status(t, refJob).EvalSims
	if refSims == 0 {
		t.Fatal("reference run reported zero simulations")
	}

	baseline := runtime.NumGoroutine()

	dir := t.TempDir()
	m1, err := NewManager(dir, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := NewServer(m1, io.Discard)
	ts := httptest.NewServer(srv1)
	defer ts.Close()

	job, _, err := m1.Submit(pairSpec())
	if err != nil {
		t.Fatal(err)
	}

	// A live SSE subscriber: it must observe the interruption and its
	// stream must end when the drain lands.
	sseDone := make(chan string, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/campaigns/" + job.ID() + "/events")
		if err != nil {
			sseDone <- "request failed: " + err.Error()
			return
		}
		defer resp.Body.Close()
		var lastState string
		scanner := bufio.NewScanner(resp.Body)
		for scanner.Scan() {
			line := scanner.Text()
			if strings.HasPrefix(line, "data: ") && strings.Contains(line, `"state":"`) {
				lastState = line
			}
		}
		sseDone <- lastState
	}()

	// Wait until the first cell has really completed, then drain while
	// the second is in flight.
	deadline := time.Now().Add(2 * time.Minute)
	for status(t, job).CellEvents == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no cell completed; job %s", job.State())
		}
		time.Sleep(50 * time.Millisecond)
	}
	m1.Drain()
	if s := job.State(); s != StateInterrupted {
		t.Fatalf("drained job state %s, want %s", s, StateInterrupted)
	}
	if _, ok := job.Report("json"); ok {
		t.Fatal("interrupted job serves a report")
	}

	// Submissions are refused while draining.
	if _, _, err := m1.Submit(tinySpec()); err != ErrDraining {
		t.Fatalf("submit during drain: %v", err)
	}

	// The SSE stream ended with the interruption.
	select {
	case last := <-sseDone:
		if !strings.Contains(last, `"state":"interrupted"`) {
			t.Fatalf("SSE stream ended on %q, want the interrupted state frame", last)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SSE stream did not end after drain")
	}
	ts.Close()

	// No leaked goroutines once the drain returns (the checkpointing
	// runner, lease heartbeats and SSE handler are all gone).
	waitGoroutines(t, baseline)

	// A new manager over the same directory resumes and completes.
	m2, err := NewManager(dir, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := m2.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("resumed %d jobs, want 1", resumed)
	}
	job2 := m2.Get(job.ID())
	if job2 == nil {
		t.Fatal("resumed job not found")
	}
	if err := waitTerminal(job2, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	got, ok := job2.Report("json")
	if !ok {
		t.Fatalf("resumed job ended %s: %s", job2.State(), job2.StatusJSON())
	}
	if !bytes.Equal(got, refReport) {
		t.Fatal("resumed report diverges from the uninterrupted served run")
	}
	if resumedSims := status(t, job2).EvalSims; resumedSims >= refSims {
		t.Fatalf("resume re-simulated: %d simulations, uninterrupted run needed %d", resumedSims, refSims)
	}
	m2.Drain()
	waitGoroutines(t, baseline)
}

// waitGoroutines polls until the goroutine count returns to the
// baseline (plus scheduler slack), failing after a generous grace
// period — the in-process leak check behind the drain guarantee.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d, baseline %d\n%s", runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestCancelEndpointQuarantinesAndRevives: POST /cancel lands the job
// in the canceled state with its marker on disk, the report surface
// answers 409, a restart does NOT resume it — and resubmitting the
// same spec revives it, reusing the checkpointed artifacts.
func TestCancelEndpointQuarantinesAndRevives(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(m, io.Discard)
	spec := pairSpec()
	spec.Seed = 3 // distinct identity from the drain test's campaign
	job, _, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	rec := get(srv, http.MethodPost, "/campaigns/"+job.ID()+"/cancel", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel: HTTP %d: %s", rec.Code, rec.Body)
	}
	if err := waitTerminal(job, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	if s := job.State(); s != StateCanceled {
		t.Fatalf("canceled job state %s", s)
	}
	if rec := get(srv, http.MethodGet, "/campaigns/"+job.ID()+"/report", nil); rec.Code != http.StatusConflict {
		t.Fatalf("report of canceled job: HTTP %d, want 409", rec.Code)
	}
	// Canceling again is an idempotent no-op.
	if rec := get(srv, http.MethodPost, "/campaigns/"+job.ID()+"/cancel", nil); rec.Code != http.StatusOK {
		t.Fatalf("re-cancel: HTTP %d", rec.Code)
	}

	// A restart does not auto-resume a user-canceled job.
	m2, err := NewManager(dir, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resumed, err := m2.Resume(); err != nil || resumed != 0 {
		t.Fatalf("restart resumed %d canceled jobs (err %v), want 0", resumed, err)
	}
	if j2 := m2.Get(job.ID()); j2 == nil || j2.State() != StateCanceled {
		t.Fatal("canceled job not restored as canceled after restart")
	}

	// Resubmission revives it on the original manager.
	revived, created, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !created || revived == job {
		t.Fatal("resubmission did not revive the canceled job")
	}
	if err := waitTerminal(revived, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, ok := revived.Report("json"); !ok {
		t.Fatalf("revived job ended %s", revived.State())
	}
	if fileExists(filepath.Join(dir, "jobs", job.ID(), canceledFile)) {
		t.Fatal("canceled marker survived the revival")
	}
	m.Drain()
	m2.Drain()
}

// TestMalformedSubmissionsRejectedBeforeAnySimulation: every invalid
// submission fails with 400 and leaves no job state behind — no
// directory, no checkpoint, no simulation.
func TestMalformedSubmissionsRejectedBeforeAnySimulation(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(m, io.Discard)

	bad := []string{
		`{bad json`,
		`{"unknown_field":1}`,
		`{"scenarios":["lr_kt9"]}`,
		`{"devices":["nokia-3310"]}`,
		`{"promote_fraction":1.5}`,
		`{"scenarios":["lr_kt0","lr_kt0"]}`,
		`{"quick":true}{"quick":true}`,
	}
	for _, body := range bad {
		rec := get(srv, http.MethodPost, "/campaigns", strings.NewReader(body))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("submission %q: HTTP %d, want 400", body, rec.Code)
		}
	}
	entries, err := os.ReadDir(filepath.Join(dir, "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("rejected submissions left %d job directories", len(entries))
	}

	// Routing hygiene: wrong method and unknown targets.
	if rec := get(srv, http.MethodGet, "/campaigns", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /campaigns: HTTP %d, want 405", rec.Code)
	}
	if rec := get(srv, http.MethodGet, "/campaigns/deadbeefdeadbeef", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown campaign: HTTP %d, want 404", rec.Code)
	}
	if rec := get(srv, http.MethodPost, "/campaigns/deadbeefdeadbeef/cancel", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("cancel of unknown campaign: HTTP %d, want 404", rec.Code)
	}
	if rec := get(srv, http.MethodGet, "/nope", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown path: HTTP %d, want 404", rec.Code)
	}
}
