package serve

import (
	"net/http"
	"testing"
)

func testRouter() *Router {
	rt := &Router{}
	mark := func(name string) Handler {
		return func(w http.ResponseWriter, r *http.Request, param string) {}
	}
	rt.Handle(http.MethodGet, "/healthz", mark("healthz"))
	rt.Handle(http.MethodPost, "/campaigns", mark("submit"))
	rt.Handle(http.MethodGet, "/campaigns/{id}", mark("status"))
	rt.Handle(http.MethodGet, "/campaigns/{id}/report", mark("report"))
	rt.Handle(http.MethodPost, "/campaigns/{id}/cancel", mark("cancel"))
	rt.Handle(http.MethodGet, "/debug/pprof/*", mark("pprof"))
	return rt
}

func TestRouterMatch(t *testing.T) {
	rt := testRouter()
	cases := []struct {
		method, path string
		status       int
		param        string
	}{
		{"GET", "/healthz", 200, ""},
		{"POST", "/campaigns", 200, ""},
		{"GET", "/campaigns/abc123", 200, "abc123"},
		{"GET", "/campaigns/abc123/report", 200, "abc123"},
		{"POST", "/campaigns/abc123/cancel", 200, "abc123"},
		{"GET", "/debug/pprof/", 200, ""},
		{"GET", "/debug/pprof/heap", 200, "heap"},
		{"GET", "/debug/pprof/goroutine", 200, "goroutine"},
		{"GET", "/campaigns/abc/123/report", 404, ""},   // param may not span segments
		{"GET", "/campaigns//report", 404, ""},          // empty param never matches
		{"DELETE", "/campaigns/abc123", 405, ""},
		{"GET", "/campaigns", 405, ""},
		{"POST", "/healthz", 405, ""},
		{"GET", "/nope", 404, ""},
		{"GET", "/", 404, ""},
	}
	for _, c := range cases {
		h, param, status := rt.match(c.method, c.path)
		if status != c.status {
			t.Fatalf("%s %s: status %d, want %d", c.method, c.path, status, c.status)
		}
		if c.status == 200 {
			if h == nil {
				t.Fatalf("%s %s: matched but no handler", c.method, c.path)
			}
			if param != c.param {
				t.Fatalf("%s %s: param %q, want %q", c.method, c.path, param, c.param)
			}
		} else if h != nil {
			t.Fatalf("%s %s: unexpected handler", c.method, c.path)
		}
	}
}

func TestRouterMatchDoesNotAllocate(t *testing.T) {
	rt := testRouter()
	paths := []string{"/healthz", "/campaigns/abc123", "/campaigns/abc123/report", "/debug/pprof/heap"}
	n := testing.AllocsPerRun(1000, func() {
		for _, p := range paths {
			if _, _, status := rt.match(http.MethodGet, p); status == 0 {
				t.Fatal("impossible")
			}
		}
	})
	if n != 0 {
		t.Fatalf("router match allocates %.1f objects per run, want 0", n)
	}
}

func TestRouterRejectsMalformedPatterns(t *testing.T) {
	for _, pattern := range []string{"", "campaigns", "/a/{x}/{y}", "/a/{x}/*"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("pattern %q accepted", pattern)
				}
			}()
			rt := &Router{}
			rt.Handle(http.MethodGet, pattern, func(http.ResponseWriter, *http.Request, string) {})
		}()
	}
}
