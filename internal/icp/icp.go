// Package icp implements the projective-data-association point-to-plane
// iterative-closest-point tracker used by KinectFusion to register each
// incoming depth frame against the ray-cast model surface.
//
// The solver minimises Σ ((T·p - q)·n)² over small rigid updates T=exp(ξ),
// where p are points from the current frame, q/n are the model vertex and
// normal found by projecting T·p into the reference camera. Residuals are
// gated by distance and normal-angle thresholds, and the normal equations
// are accumulated in parallel.
package icp

import (
	"math"

	"slamgo/internal/camera"
	"slamgo/internal/imgproc"
	"slamgo/internal/math3"
	"slamgo/internal/parallel"
)

// Params controls one ICP solve.
type Params struct {
	// MaxIterations bounds the Gauss-Newton iterations.
	MaxIterations int
	// ConvergenceThreshold stops iterating when the update twist norm
	// falls below it (the paper's "ICP threshold" DSE parameter).
	ConvergenceThreshold float64
	// DistThreshold rejects correspondences farther apart than this
	// (metres).
	DistThreshold float64
	// NormalThreshold rejects correspondences whose normals disagree by
	// more than this angle (radians).
	NormalThreshold float64
	// Damping is added to the normal-equation diagonal (Levenberg).
	Damping float64
	// PointToPoint switches the residual from point-to-plane (the
	// KinectFusion formulation) to classic point-to-point — the ablation
	// baseline: on indoor scenes dominated by planes it converges
	// markedly slower because sliding along a plane is penalised.
	PointToPoint bool
}

// DefaultParams mirrors KinectFusion's tracker settings.
func DefaultParams() Params {
	return Params{
		MaxIterations:        10,
		ConvergenceThreshold: 1e-5,
		DistThreshold:        0.1,
		NormalThreshold:      0.8,
		Damping:              1e-6,
	}
}

// Reference is the model side of the registration: world-frame vertex and
// normal maps ray-cast from the volume at refPose (camera-to-world), with
// the intrinsics used to project correspondences.
type Reference struct {
	Vertices *imgproc.VertexMap
	Normals  *imgproc.NormalMap
	Pose     math3.SE3
	Intr     camera.Intrinsics
}

// Frame is the data side: camera-frame vertex and normal maps of the
// incoming depth image.
type Frame struct {
	Vertices *imgproc.VertexMap
	Normals  *imgproc.NormalMap
}

// Result reports the outcome of a Solve.
type Result struct {
	// Pose is the refined camera-to-world transform of the frame.
	Pose math3.SE3
	// Iterations actually executed.
	Iterations int
	// Inliers is the correspondence count of the final iteration.
	Inliers int
	// RMSE is the final root-mean-square point-to-plane residual (metres).
	RMSE float64
	// Converged records whether the update dropped below the threshold.
	Converged bool
	// Cost accumulates the arithmetic work across all iterations.
	Cost imgproc.Cost
}

// Solve registers frame against ref starting from initPose
// (camera-to-world estimate for the frame).
func Solve(ref Reference, frame Frame, initPose math3.SE3, p Params) Result {
	pose := initPose
	res := Result{Pose: pose}
	if p.MaxIterations < 1 {
		p.MaxIterations = 1
	}

	worldToRef := ref.Pose.Inverse()
	for it := 0; it < p.MaxIterations; it++ {
		sys, cost := accumulate(ref, frame, pose, worldToRef, p)
		res.Cost.Add(cost)
		res.Iterations = it + 1
		res.Inliers = sys.Count
		if p.PointToPoint {
			// Point-to-point contributes three rows per correspondence.
			res.Inliers = sys.Count / 3
		}
		if sys.Count < 6 {
			// Not enough constraints: give up, tracking has failed.
			res.RMSE = math.Inf(1)
			return res
		}
		res.RMSE = math.Sqrt(sys.Error / float64(sys.Count))

		xi, err := sys.Solve(p.Damping)
		if err != nil {
			return res
		}
		update := math3.ExpSE3(xi)
		pose = update.Mul(pose).Orthonormalized()
		res.Pose = pose

		norm := 0.0
		for _, v := range xi {
			norm += v * v
		}
		if math.Sqrt(norm) < p.ConvergenceThreshold {
			res.Converged = true
			break
		}
	}
	return res
}

// partial is one chunk's share of the normal equations.
type partial struct {
	sys     math3.Sym6
	visited int64
}

// accumulate builds the normal equations for the current pose estimate,
// sharding image rows across CPUs. Chunk boundaries and the merge order
// of the per-chunk partial sums depend only on the image height, so the
// accumulated system — and therefore the solved pose — is bit-identical
// for any worker count.
func accumulate(ref Reference, frame Frame, pose math3.SE3, worldToRef math3.SE3, p Params) (*math3.Sym6, imgproc.Cost) {
	h := frame.Vertices.Height
	w := frame.Vertices.Width
	cosThresh := math.Cos(p.NormalThreshold)

	total := parallel.Reduce(h, 0, func(ylo, yhi int) partial {
		var pt partial
		sys := &pt.sys
		for y := ylo; y < yhi; y++ {
			for x := 0; x < w; x++ {
				pt.visited++
				pv, ok := frame.Vertices.At(x, y)
				if !ok {
					continue
				}
				nv, ok := frame.Normals.At(x, y)
				if !ok {
					continue
				}
				// Current estimate: frame point/normal in world.
				pw := pose.Apply(pv)
				nw := pose.ApplyDir(nv)

				// Project into the reference camera.
				pr := worldToRef.Apply(pw)
				uv, vis := ref.Intr.Project(pr)
				if !vis {
					continue
				}
				u := int(uv.X + 0.5)
				v := int(uv.Y + 0.5)
				if u < 0 || v < 0 || u >= ref.Vertices.Width || v >= ref.Vertices.Height {
					continue
				}
				qw, ok := ref.Vertices.At(u, v)
				if !ok {
					continue
				}
				qn, ok := ref.Normals.At(u, v)
				if !ok {
					continue
				}
				diff := qw.Sub(pw)
				if diff.Norm() > p.DistThreshold {
					continue
				}
				if nw.Dot(qn) < cosThresh {
					continue
				}
				if p.PointToPoint {
					// Three residual rows, one per component of
					// e = q - T·p, with ∂(T·p)/∂ξ = [I | -[T·p]ₓ].
					sys.AddRow([6]float64{1, 0, 0, 0, pw.Z, -pw.Y}, diff.X)
					sys.AddRow([6]float64{0, 1, 0, -pw.Z, 0, pw.X}, diff.Y)
					sys.AddRow([6]float64{0, 0, 1, pw.Y, -pw.X, 0}, diff.Z)
					continue
				}
				// Point-to-plane residual and Jacobian w.r.t. the
				// twist (v, ω) applied on the left of the pose.
				e := diff.Dot(qn)
				cross := pw.Cross(qn)
				row := [6]float64{qn.X, qn.Y, qn.Z, cross.X, cross.Y, cross.Z}
				sys.AddRow(row, e)
			}
		}
		return pt
	}, func(acc *partial, o partial) {
		acc.sys.Merge(&o.sys)
		acc.visited += o.visited
	})

	return &total.sys, imgproc.Cost{
		Ops:   total.visited*40 + int64(total.sys.Count)*60,
		Bytes: total.visited * 56,
	}
}
