package icp

import (
	"testing"

	"slamgo/internal/camera"
	"slamgo/internal/math3"
)

func TestPointToPointRecoversOffset(t *testing.T) {
	in := camera.Kinect640().ScaledTo(120, 90)
	pose := testPose()
	vm, nm := buildMaps(t, pose, in)
	wv, wn := toWorld(vm, nm, pose)

	perturb := math3.ExpSE3([6]float64{0.02, -0.01, 0.015, 0.01, -0.015, 0.01})
	init := perturb.Mul(pose)

	p := DefaultParams()
	p.PointToPoint = true
	p.MaxIterations = 30
	ref := Reference{Vertices: wv, Normals: wn, Pose: pose, Intr: in}
	res := Solve(ref, Frame{Vertices: vm, Normals: nm}, init, p)

	rel := pose.Inverse().Mul(res.Pose)
	if rel.TranslationNorm() > 0.01 {
		t.Fatalf("point-to-point translation error %v", rel.TranslationNorm())
	}
	if res.Inliers < 500 {
		t.Fatalf("inliers %d (should be per-correspondence, not per-row)", res.Inliers)
	}
}

func TestPointToPlaneConvergesFasterOnPlanarScene(t *testing.T) {
	// The design-choice ablation: with a fixed small iteration budget,
	// point-to-plane reaches a better pose than point-to-point on an
	// indoor (plane-dominated) scene — the reason KinectFusion uses it.
	in := camera.Kinect640().ScaledTo(120, 90)
	pose := testPose()
	vm, nm := buildMaps(t, pose, in)
	wv, wn := toWorld(vm, nm, pose)
	perturb := math3.ExpSE3([6]float64{0.03, -0.02, 0.02, 0.02, -0.01, 0.015})
	init := perturb.Mul(pose)
	ref := Reference{Vertices: wv, Normals: wn, Pose: pose, Intr: in}

	errAfter := func(p2p bool) float64 {
		p := DefaultParams()
		p.PointToPoint = p2p
		p.MaxIterations = 3
		p.ConvergenceThreshold = 0
		res := Solve(ref, Frame{Vertices: vm, Normals: nm}, init, p)
		rel := pose.Inverse().Mul(res.Pose)
		return rel.TranslationNorm() + rel.RotationAngle()
	}
	plane := errAfter(false)
	point := errAfter(true)
	if plane >= point {
		t.Fatalf("point-to-plane (%v) should converge faster than point-to-point (%v)", plane, point)
	}
}
