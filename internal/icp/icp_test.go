package icp

import (
	"math"
	"testing"

	"slamgo/internal/camera"
	"slamgo/internal/imgproc"
	"slamgo/internal/math3"
	"slamgo/internal/sdf"
	"slamgo/internal/synth"
)

// buildMaps renders the SimpleRoom scene from a pose and converts the
// depth into camera-frame vertex/normal maps.
func buildMaps(t *testing.T, pose math3.SE3, in camera.Intrinsics) (*imgproc.VertexMap, *imgproc.NormalMap) {
	t.Helper()
	r := synth.NewRenderer(sdf.SimpleRoom())
	depth := r.RenderDepth(pose, in)
	if depth.ValidFraction() < 0.8 {
		t.Fatalf("scene mostly invisible: %v", depth.ValidFraction())
	}
	vm, _ := imgproc.DepthToVertexMap(depth, in.BackProject)
	nm, _ := imgproc.VertexToNormalMap(vm)
	return vm, nm
}

// toWorld transforms camera-frame maps into world-frame reference maps.
func toWorld(vm *imgproc.VertexMap, nm *imgproc.NormalMap, pose math3.SE3) (*imgproc.VertexMap, *imgproc.NormalMap) {
	wv := imgproc.NewVertexMap(vm.Width, vm.Height)
	wn := imgproc.NewNormalMap(nm.Width, nm.Height)
	for y := 0; y < vm.Height; y++ {
		for x := 0; x < vm.Width; x++ {
			if p, ok := vm.At(x, y); ok {
				wv.Set(x, y, pose.Apply(p))
			}
			if n, ok := nm.At(x, y); ok {
				wn.Set(x, y, pose.ApplyDir(n))
			}
		}
	}
	return wv, wn
}

func testPose() math3.SE3 {
	return synth.LookAt(math3.V3(1.0, 1.2, 1.2), math3.V3(-0.1, 0.4, -0.7))
}

func TestSolveIdentityStaysPut(t *testing.T) {
	in := camera.Kinect640().ScaledTo(80, 60)
	pose := testPose()
	vm, nm := buildMaps(t, pose, in)
	wv, wn := toWorld(vm, nm, pose)

	ref := Reference{Vertices: wv, Normals: wn, Pose: pose, Intr: in}
	frame := Frame{Vertices: vm, Normals: nm}
	res := Solve(ref, frame, pose, DefaultParams())

	if !res.Converged {
		t.Fatalf("identity solve did not converge: %+v", res)
	}
	if res.RMSE > 1e-4 {
		t.Fatalf("identity RMSE %v", res.RMSE)
	}
	rel := pose.Inverse().Mul(res.Pose)
	if rel.TranslationNorm() > 1e-5 || rel.RotationAngle() > 1e-5 {
		t.Fatalf("identity solve moved the pose: %v", rel)
	}
	if res.Cost.Ops <= 0 {
		t.Fatal("no cost recorded")
	}
}

func TestSolveRecoversSmallOffset(t *testing.T) {
	in := camera.Kinect640().ScaledTo(160, 120)
	pose := testPose()
	vm, nm := buildMaps(t, pose, in)
	wv, wn := toWorld(vm, nm, pose)

	// Perturb the initial estimate by a couple of centimetres + ~1.5°.
	perturb := math3.ExpSE3([6]float64{0.02, -0.015, 0.01, 0.015, -0.01, 0.02})
	init := perturb.Mul(pose)

	ref := Reference{Vertices: wv, Normals: wn, Pose: pose, Intr: in}
	frame := Frame{Vertices: vm, Normals: nm}
	p := DefaultParams()
	p.MaxIterations = 20
	res := Solve(ref, frame, init, p)

	rel := pose.Inverse().Mul(res.Pose)
	if rel.TranslationNorm() > 5e-3 {
		t.Fatalf("translation error %v m after ICP (res=%+v)", rel.TranslationNorm(), res)
	}
	if rel.RotationAngle() > 0.01 {
		t.Fatalf("rotation error %v rad after ICP", rel.RotationAngle())
	}
	if res.Inliers < 1000 {
		t.Fatalf("too few inliers: %d", res.Inliers)
	}
}

func TestSolveImprovesWithIterations(t *testing.T) {
	in := camera.Kinect640().ScaledTo(80, 60)
	pose := testPose()
	vm, nm := buildMaps(t, pose, in)
	wv, wn := toWorld(vm, nm, pose)
	perturb := math3.ExpSE3([6]float64{0.03, 0, -0.02, 0, 0.02, 0})
	init := perturb.Mul(pose)

	ref := Reference{Vertices: wv, Normals: wn, Pose: pose, Intr: in}
	frame := Frame{Vertices: vm, Normals: nm}

	errAfter := func(iters int) float64 {
		p := DefaultParams()
		p.MaxIterations = iters
		p.ConvergenceThreshold = 0 // force all iterations
		res := Solve(ref, frame, init, p)
		return pose.Inverse().Mul(res.Pose).TranslationNorm()
	}
	e1, e10 := errAfter(1), errAfter(10)
	if e10 >= e1 {
		t.Fatalf("more iterations did not help: e1=%v e10=%v", e1, e10)
	}
}

func TestSolveFailsOnEmptyFrame(t *testing.T) {
	in := camera.Kinect640().ScaledTo(40, 30)
	pose := testPose()
	vm, nm := buildMaps(t, pose, in)
	wv, wn := toWorld(vm, nm, pose)
	ref := Reference{Vertices: wv, Normals: wn, Pose: pose, Intr: in}
	empty := Frame{
		Vertices: imgproc.NewVertexMap(40, 30),
		Normals:  imgproc.NewNormalMap(40, 30),
	}
	res := Solve(ref, empty, pose, DefaultParams())
	if !math.IsInf(res.RMSE, 1) {
		t.Fatalf("empty frame should fail tracking: %+v", res)
	}
	if res.Inliers != 0 {
		t.Fatalf("inliers on empty frame: %d", res.Inliers)
	}
}

func TestSolveRejectsFarCorrespondences(t *testing.T) {
	in := camera.Kinect640().ScaledTo(80, 60)
	pose := testPose()
	vm, nm := buildMaps(t, pose, in)
	wv, wn := toWorld(vm, nm, pose)

	// Translate the initial guess by far more than the distance
	// threshold. Correspondences sliding along large planes can survive
	// the Euclidean gate, but the inlier count must collapse relative to
	// a well-initialised solve.
	ref := Reference{Vertices: wv, Normals: wn, Pose: pose, Intr: in}
	p := DefaultParams()
	p.DistThreshold = 0.05
	p.MaxIterations = 1
	p.ConvergenceThreshold = 0
	good := Solve(ref, Frame{Vertices: vm, Normals: nm}, pose, p)

	far := math3.SE3{R: math3.Identity3(), T: math3.V3(1.0, 0, 0)}
	bad := Solve(ref, Frame{Vertices: vm, Normals: nm}, far.Mul(pose), p)
	if bad.Inliers*2 > good.Inliers {
		t.Fatalf("distance gate ineffective: %d inliers far vs %d aligned",
			bad.Inliers, good.Inliers)
	}
}

func TestDefaultParamsSane(t *testing.T) {
	p := DefaultParams()
	if p.MaxIterations <= 0 || p.DistThreshold <= 0 || p.ConvergenceThreshold <= 0 {
		t.Fatalf("bad defaults: %+v", p)
	}
}
