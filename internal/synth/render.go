// Package synth renders synthetic RGB-D sequences from analytic SDF
// scenes. It stands in for the ICL-NUIM dataset used by the paper: both
// are rendered from a known 3D model along a known camera trajectory, so
// trajectory error (ATE) can be computed against exact ground truth.
//
// The package provides a sphere-tracing renderer, a Kinect-style depth
// noise model and trajectory scripting helpers.
package synth

import (
	"math"
	"runtime"
	"sync"

	"slamgo/internal/camera"
	"slamgo/internal/imgproc"
	"slamgo/internal/math3"
	"slamgo/internal/sdf"
)

// Renderer sphere-traces camera rays against an SDF scene.
type Renderer struct {
	Scene sdf.Field
	// MaxDist is the far clip in metres (default 10).
	MaxDist float64
	// MaxSteps bounds the sphere-tracing iterations per ray (default 192).
	MaxSteps int
	// Eps is the surface-hit tolerance in metres (default 1e-4).
	Eps float64
	// Light is the directional light used for shading RGB output.
	Light math3.Vec3
}

// NewRenderer returns a renderer with sensible defaults for indoor scenes.
func NewRenderer(scene sdf.Field) *Renderer {
	return &Renderer{
		Scene:    scene,
		MaxDist:  10,
		MaxSteps: 192,
		Eps:      1e-4,
		Light:    math3.V3(-0.4, -1, -0.3).Normalized(),
	}
}

// TraceRay marches a single ray from origin o along unit direction d and
// returns the hit distance. ok is false when the ray escapes MaxDist or
// runs out of steps.
func (r *Renderer) TraceRay(o, d math3.Vec3) (t float64, ok bool) {
	t = 0.0
	for i := 0; i < r.MaxSteps; i++ {
		p := o.Add(d.Scale(t))
		dist := r.Scene.Distance(p)
		if dist < r.Eps {
			return t, true
		}
		t += dist
		if t > r.MaxDist {
			return 0, false
		}
	}
	return 0, false
}

// RenderDepth produces a perfect (noise-free) depth map of the scene from
// camera pose (camera-to-world) with the given intrinsics. Depth is the
// +Z distance in the camera frame, matching Kinect output.
func (r *Renderer) RenderDepth(pose math3.SE3, in camera.Intrinsics) *imgproc.DepthMap {
	depth := imgproc.NewDepthMap(in.Width, in.Height)
	parallelRows(in.Height, func(y int) {
		for x := 0; x < in.Width; x++ {
			dir := in.Ray(float64(x), float64(y))
			wdir := pose.ApplyDir(dir)
			t, ok := r.TraceRay(pose.T, wdir)
			if !ok {
				continue
			}
			// Convert ray length to +Z depth.
			z := t * dir.Z
			if z > 0 {
				depth.Set(x, y, float32(z))
			}
		}
	})
	return depth
}

// RenderRGB produces a shaded colour image (Lambertian + ambient) for the
// GUI panes and examples. It is not used by the SLAM pipeline itself.
func (r *Renderer) RenderRGB(pose math3.SE3, in camera.Intrinsics) *imgproc.RGB {
	img := imgproc.NewRGB(in.Width, in.Height)
	parallelRows(in.Height, func(y int) {
		for x := 0; x < in.Width; x++ {
			dir := in.Ray(float64(x), float64(y))
			wdir := pose.ApplyDir(dir)
			t, ok := r.TraceRay(pose.T, wdir)
			if !ok {
				img.Set(x, y, 20, 20, 30) // void
				continue
			}
			p := pose.T.Add(wdir.Scale(t))
			n := sdf.Normal(r.Scene, p, 1e-4)
			lambert := math.Max(0, n.Dot(r.Light.Neg()))
			shade := 0.25 + 0.75*lambert
			albedo := math3.V3(0.5, 0.5, 0.5)
			if c, okc := r.Scene.(sdf.Colored); okc {
				albedo = c.Color(p)
			}
			img.Set(x, y,
				uint8(math3.Clamp(albedo.X*shade, 0, 1)*255),
				uint8(math3.Clamp(albedo.Y*shade, 0, 1)*255),
				uint8(math3.Clamp(albedo.Z*shade, 0, 1)*255),
			)
		}
	})
	return img
}

// parallelRows splits row indices [0,h) across NumCPU workers.
func parallelRows(h int, fn func(y int)) {
	workers := runtime.NumCPU()
	if workers > h {
		workers = h
	}
	if workers <= 1 {
		for y := 0; y < h; y++ {
			fn(y)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (h + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > h {
			hi = h
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for y := lo; y < hi; y++ {
				fn(y)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// LookAt builds a camera-to-world pose at eye looking towards target,
// with the camera's +X right, +Y down, +Z forward convention and the
// world's +Y as "up".
func LookAt(eye, target math3.Vec3) math3.SE3 {
	up := math3.V3(0, 1, 0)
	f := target.Sub(eye).Normalized()
	r := f.Cross(up)
	if r.Norm() < 1e-9 {
		// Looking straight up/down: pick an arbitrary horizontal right.
		r = math3.V3(1, 0, 0)
	}
	r = r.Normalized()
	d := f.Cross(r) // camera "down" completes the right-handed frame
	return math3.SE3{R: math3.Mat3FromCols(r, d, f), T: eye}
}
