package synth

import (
	"math"
	"math/rand"
	"testing"

	"slamgo/internal/camera"
	"slamgo/internal/imgproc"
	"slamgo/internal/math3"
	"slamgo/internal/sdf"
)

func testIntrinsics() camera.Intrinsics {
	return camera.Kinect640().ScaledTo(80, 60)
}

func TestTraceRayHitsSphere(t *testing.T) {
	scene := sdf.Sphere{C: math3.V3(0, 0, 5), R: 1}
	r := NewRenderer(scene)
	d, ok := r.TraceRay(math3.Vec3{}, math3.V3(0, 0, 1))
	if !ok {
		t.Fatal("ray missed sphere dead ahead")
	}
	if math.Abs(d-4) > 1e-3 {
		t.Fatalf("hit distance %v, want 4", d)
	}
	// A ray pointing away escapes.
	if _, ok := r.TraceRay(math3.Vec3{}, math3.V3(0, 0, -1)); ok {
		t.Fatal("ray pointing away hit something")
	}
}

func TestRenderDepthPlane(t *testing.T) {
	// Camera at origin of an empty half-space world looking at a wall
	// 3 m ahead (plane z=3 in world, normal -z).
	scene := sdf.Plane{N: math3.V3(0, 0, -1), D: -3}
	r := NewRenderer(scene)
	in := testIntrinsics()
	pose := math3.SE3Identity() // camera +Z is world +Z here
	d := r.RenderDepth(pose, in)
	// Depth (+Z distance) must be 3 at every pixel, not the slant range.
	for _, xy := range [][2]int{{40, 30}, {0, 0}, {79, 59}, {10, 50}} {
		got := float64(d.At(xy[0], xy[1]))
		if math.Abs(got-3) > 2e-3 {
			t.Fatalf("depth at %v = %v, want 3", xy, got)
		}
	}
}

func TestRenderDepthMatchesAnalyticSphere(t *testing.T) {
	scene := sdf.Sphere{C: math3.V3(0, 0, 4), R: 1}
	r := NewRenderer(scene)
	in := testIntrinsics()
	d := r.RenderDepth(math3.SE3Identity(), in)
	// Central pixel: depth = 3.
	cx, cy := in.Width/2, in.Height/2
	if math.Abs(float64(d.At(cx, cy))-3) > 5e-3 {
		t.Fatalf("centre depth %v", d.At(cx, cy))
	}
	// Corner pixels miss the sphere entirely.
	if d.At(0, 0) != 0 {
		t.Fatalf("corner should miss: %v", d.At(0, 0))
	}
}

func TestLookAtFrameProperties(t *testing.T) {
	eye := math3.V3(2, 1.5, 2)
	target := math3.V3(0, 1, 0)
	pose := LookAt(eye, target)
	if !pose.R.IsRotation(1e-9) {
		t.Fatal("LookAt R is not a rotation")
	}
	if !pose.T.ApproxEq(eye, 1e-12) {
		t.Fatal("LookAt T != eye")
	}
	// Camera +Z (forward) points at the target.
	f := pose.ApplyDir(math3.V3(0, 0, 1))
	want := target.Sub(eye).Normalized()
	if !f.ApproxEq(want, 1e-9) {
		t.Fatalf("forward %v want %v", f, want)
	}
	// Camera +Y (down) has negative world-Y component.
	down := pose.ApplyDir(math3.V3(0, 1, 0))
	if down.Y >= 0 {
		t.Fatalf("camera down points up: %v", down)
	}
}

func TestLookAtDegenerateVertical(t *testing.T) {
	pose := LookAt(math3.V3(0, 5, 0), math3.V3(0, 0, 0))
	if !pose.R.IsRotation(1e-9) {
		t.Fatal("vertical LookAt not a rotation")
	}
}

func TestRenderedSceneVisibleFromOrbit(t *testing.T) {
	scene := sdf.SimpleRoom()
	r := NewRenderer(scene)
	in := testIntrinsics()
	traj := Orbit(math3.V3(0, 0.5, -0.5), 1.2, 1.2, math.Pi/4, math.Pi/2, 5, 30)
	for i, tp := range traj {
		d := r.RenderDepth(tp.Pose, in)
		if f := d.ValidFraction(); f < 0.9 {
			t.Fatalf("frame %d: only %.2f of pixels valid", i, f)
		}
		min, max := d.MinMax()
		if min <= 0 || max > 10 {
			t.Fatalf("frame %d: depth range [%v, %v]", i, min, max)
		}
	}
}

func TestRenderRGBShadesScene(t *testing.T) {
	scene := sdf.SimpleRoom()
	r := NewRenderer(scene)
	in := testIntrinsics()
	pose := LookAt(math3.V3(0, 1.2, 1.5), math3.V3(0, 0.4, -0.6))
	img := r.RenderRGB(pose, in)
	// The image must not be uniform: count distinct colours.
	seen := map[[3]uint8]bool{}
	for y := 0; y < in.Height; y++ {
		for x := 0; x < in.Width; x++ {
			cr, cg, cb := img.At(x, y)
			seen[[3]uint8{cr, cg, cb}] = true
		}
	}
	if len(seen) < 10 {
		t.Fatalf("RGB render too uniform: %d distinct colours", len(seen))
	}
}

func TestOrbitTrajectory(t *testing.T) {
	target := math3.V3(0, 1, 0)
	traj := Orbit(target, 2, 1.5, 0, math.Pi, 10, 30)
	if len(traj) != 10 {
		t.Fatalf("frames = %d", len(traj))
	}
	for i, tp := range traj {
		// Eye stays on the orbit cylinder.
		dx := tp.Pose.T.X - target.X
		dz := tp.Pose.T.Z - target.Z
		if math.Abs(math.Hypot(dx, dz)-2) > 1e-9 {
			t.Fatalf("frame %d off orbit radius", i)
		}
		if math.Abs(tp.Pose.T.Y-1.5) > 1e-12 {
			t.Fatalf("frame %d off height", i)
		}
		if i > 0 && tp.Time <= traj[i-1].Time {
			t.Fatal("timestamps not increasing")
		}
	}
	// Timestamps follow the frame rate.
	if math.Abs(traj[1].Time-1.0/30) > 1e-12 {
		t.Fatalf("frame period %v", traj[1].Time)
	}
	if Orbit(target, 1, 1, 0, 1, 0, 30) != nil {
		t.Fatal("n=0 should return nil")
	}
}

func TestWaypointsTrajectory(t *testing.T) {
	eyes := []math3.Vec3{{X: 0, Y: 1, Z: 2}, {X: 1, Y: 1, Z: 1}, {X: 2, Y: 1.2, Z: 0}}
	targets := []math3.Vec3{{}, {X: 0.5}, {X: 1}}
	traj := Waypoints(eyes, targets, 20, 30)
	if len(traj) != 20 {
		t.Fatalf("frames = %d", len(traj))
	}
	// Endpoints interpolate the first and last waypoints.
	if !traj[0].Pose.T.ApproxEq(eyes[0], 1e-9) {
		t.Fatalf("start %v", traj[0].Pose.T)
	}
	if !traj[19].Pose.T.ApproxEq(eyes[2], 1e-9) {
		t.Fatalf("end %v", traj[19].Pose.T)
	}
	// Mismatched inputs return nil.
	if Waypoints(eyes[:1], targets[:1], 5, 30) != nil {
		t.Fatal("single waypoint accepted")
	}
}

func TestMaxStepSmallForDenseTrajectory(t *testing.T) {
	traj := Orbit(math3.V3(0, 1, 0), 2, 1.5, 0, math.Pi/2, 60, 30)
	mt, mr := MaxStep(traj)
	if mt > 0.06 || mr > 0.06 {
		t.Fatalf("steps too large for ICP: trans=%v rot=%v", mt, mr)
	}
}

func TestNoiseModelStatistics(t *testing.T) {
	d := imgproc.NewDepthMap(100, 100)
	for i := range d.Pix {
		d.Pix[i] = 2
	}
	nm := NoiseModel{SigmaZ: 1.425e-3, MinDepth: 0.4, MaxDepth: 8}
	rng := rand.New(rand.NewSource(42))
	nm.Apply(d, rng)
	var sum, sum2 float64
	n := 0
	for _, v := range d.Pix {
		if v <= 0 {
			continue
		}
		sum += float64(v)
		sum2 += float64(v) * float64(v)
		n++
	}
	mean := sum / float64(n)
	std := math.Sqrt(sum2/float64(n) - mean*mean)
	wantStd := 1.425e-3 * 4 // σ·z² at z=2
	if math.Abs(mean-2) > 1e-3 {
		t.Fatalf("noise biased: mean %v", mean)
	}
	if math.Abs(std-wantStd) > wantStd/3 {
		t.Fatalf("noise σ %v, want ≈%v", std, wantStd)
	}
}

func TestNoiseModelRangeGateAndDropout(t *testing.T) {
	d := imgproc.NewDepthMap(10, 10)
	d.Set(0, 0, 0.1) // below min range
	d.Set(1, 0, 20)  // beyond max range
	d.Set(2, 0, 2)   // valid
	nm := NoiseModel{MinDepth: 0.4, MaxDepth: 8}
	nm.Apply(d, rand.New(rand.NewSource(1)))
	if d.At(0, 0) != 0 || d.At(1, 0) != 0 {
		t.Fatal("range gate failed")
	}
	if d.At(2, 0) == 0 {
		t.Fatal("valid pixel dropped without dropout")
	}

	// Full dropout kills everything.
	d2 := imgproc.NewDepthMap(10, 10)
	for i := range d2.Pix {
		d2.Pix[i] = 2
	}
	nm2 := NoiseModel{MinDepth: 0.4, MaxDepth: 8, Dropout: 1}
	nm2.Apply(d2, rand.New(rand.NewSource(1)))
	if d2.ValidFraction() != 0 {
		t.Fatal("dropout=1 left valid pixels")
	}
}

func TestNoiseQuantisation(t *testing.T) {
	d := imgproc.NewDepthMap(1, 1)
	d.Set(0, 0, 2.0)
	nm := NoiseModel{QuantZ: 2.85e-3, MinDepth: 0.4, MaxDepth: 8}
	nm.Apply(d, rand.New(rand.NewSource(1)))
	z := float64(d.At(0, 0))
	step := 2.85e-3 * 4
	// The quantised value sits on a multiple of ~step (computed at the
	// perturbed z, so allow one step of slack).
	ratio := z / step
	if math.Abs(ratio-math.Round(ratio)) > 0.2 {
		t.Fatalf("z=%v not quantised to step %v", z, step)
	}
}

func TestNoNoisePassThrough(t *testing.T) {
	d := imgproc.NewDepthMap(4, 4)
	d.Set(1, 1, 3.5)
	orig := d.Clone()
	NoNoise().Apply(d, rand.New(rand.NewSource(1)))
	for i := range d.Pix {
		if d.Pix[i] != orig.Pix[i] {
			t.Fatal("NoNoise changed pixels")
		}
	}
}

func TestDeterministicNoise(t *testing.T) {
	mk := func() *imgproc.DepthMap {
		d := imgproc.NewDepthMap(32, 32)
		for i := range d.Pix {
			d.Pix[i] = 1.5
		}
		KinectNoise().Apply(d, rand.New(rand.NewSource(7)))
		return d
	}
	a, b := mk(), mk()
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("noise not reproducible with same seed")
		}
	}
}
