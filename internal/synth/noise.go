package synth

import (
	"math"
	"math/rand"

	"slamgo/internal/imgproc"
)

// NoiseModel perturbs perfect rendered depth the way a structured-light
// RGB-D sensor (Kinect v1) does:
//
//   - axial Gaussian noise whose σ grows quadratically with depth
//     (Khoshelham & Elberink's classic model: σ_z ≈ 1.425e-3 · z²),
//   - disparity quantisation (depth resolution also ∝ z²),
//   - a valid range gate [MinDepth, MaxDepth],
//   - random pixel dropout (speckle failures).
//
// All randomness flows through an explicit *rand.Rand so sequences are
// reproducible.
type NoiseModel struct {
	// SigmaZ scales the quadratic axial noise: σ(z) = SigmaZ·z².
	SigmaZ float64
	// QuantZ scales the quantisation step: Δ(z) = QuantZ·z².
	QuantZ float64
	// MinDepth and MaxDepth bound the sensor's valid range (metres).
	MinDepth, MaxDepth float64
	// Dropout is the per-pixel probability of losing the measurement.
	Dropout float64
}

// KinectNoise returns the default Kinect v1 noise parameters.
func KinectNoise() NoiseModel {
	return NoiseModel{
		SigmaZ:   1.425e-3,
		QuantZ:   2.85e-3,
		MinDepth: 0.4,
		MaxDepth: 8.0,
		Dropout:  0.01,
	}
}

// NoNoise returns a pass-through model (range gate only, disabled).
func NoNoise() NoiseModel {
	return NoiseModel{MinDepth: 0, MaxDepth: math.Inf(1)}
}

// Apply perturbs the depth map in place using rng.
func (n NoiseModel) Apply(d *imgproc.DepthMap, rng *rand.Rand) {
	for i, v := range d.Pix {
		if v <= 0 {
			continue
		}
		z := float64(v)
		if z < n.MinDepth || z > n.MaxDepth {
			d.Pix[i] = 0
			continue
		}
		if n.Dropout > 0 && rng.Float64() < n.Dropout {
			d.Pix[i] = 0
			continue
		}
		if n.SigmaZ > 0 {
			z += rng.NormFloat64() * n.SigmaZ * z * z
		}
		if n.QuantZ > 0 {
			step := n.QuantZ * z * z
			if step > 0 {
				z = math.Round(z/step) * step
			}
		}
		if z <= 0 {
			d.Pix[i] = 0
			continue
		}
		d.Pix[i] = float32(z)
	}
}
