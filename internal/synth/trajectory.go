package synth

import (
	"math"

	"slamgo/internal/math3"
)

// TimedPose is a ground-truth camera pose with its timestamp.
type TimedPose struct {
	Time float64 // seconds
	Pose math3.SE3
}

// Orbit generates a smooth circular trajectory around a look-at target —
// the canonical "scanning an object/room" motion of ICL-NUIM's kt
// sequences. The camera orbits at the given radius and height, covering
// arc radians over n frames at the given frame rate.
func Orbit(target math3.Vec3, radius, height, startAngle, arc float64, n int, fps float64) []TimedPose {
	if n < 1 {
		return nil
	}
	out := make([]TimedPose, n)
	for i := 0; i < n; i++ {
		var u float64
		if n > 1 {
			u = float64(i) / float64(n-1)
		}
		a := startAngle + arc*u
		eye := math3.V3(
			target.X+radius*math.Cos(a),
			height,
			target.Z+radius*math.Sin(a),
		)
		out[i] = TimedPose{
			Time: float64(i) / fps,
			Pose: LookAt(eye, target),
		}
	}
	return out
}

// Waypoints generates a trajectory through a sequence of (eye, target)
// pairs using Catmull-Rom interpolation of the eye positions and linear
// interpolation of the targets, sampled at n frames.
func Waypoints(eyes, targets []math3.Vec3, n int, fps float64) []TimedPose {
	if len(eyes) < 2 || len(eyes) != len(targets) || n < 1 {
		return nil
	}
	out := make([]TimedPose, n)
	segs := len(eyes) - 1
	for i := 0; i < n; i++ {
		var u float64
		if n > 1 {
			u = float64(i) / float64(n-1)
		}
		s := u * float64(segs)
		k := int(s)
		if k >= segs {
			k = segs - 1
		}
		t := s - float64(k)
		eye := catmullRom(
			eyeAt(eyes, k-1), eyes[k], eyes[k+1], eyeAt(eyes, k+2), t,
		)
		target := targets[k].Lerp(targets[k+1], t)
		out[i] = TimedPose{
			Time: float64(i) / fps,
			Pose: LookAt(eye, target),
		}
	}
	return out
}

func eyeAt(eyes []math3.Vec3, i int) math3.Vec3 {
	if i < 0 {
		return eyes[0].Add(eyes[0].Sub(eyes[1]))
	}
	if i >= len(eyes) {
		last := len(eyes) - 1
		return eyes[last].Add(eyes[last].Sub(eyes[last-1]))
	}
	return eyes[i]
}

func catmullRom(p0, p1, p2, p3 math3.Vec3, t float64) math3.Vec3 {
	t2 := t * t
	t3 := t2 * t
	a := p1.Scale(2)
	b := p2.Sub(p0).Scale(t)
	c := p0.Scale(2).Sub(p1.Scale(5)).Add(p2.Scale(4)).Sub(p3).Scale(t2)
	d := p1.Scale(3).Sub(p0).Sub(p2.Scale(3)).Add(p3).Scale(t3)
	return a.Add(b).Add(c).Add(d).Scale(0.5)
}

// MaxStep returns the largest inter-frame translation and rotation
// (radians) along a trajectory — a sanity metric: frame-to-frame ICP
// needs small steps to converge.
func MaxStep(traj []TimedPose) (maxTrans, maxRot float64) {
	for i := 1; i < len(traj); i++ {
		rel := traj[i-1].Pose.Inverse().Mul(traj[i].Pose)
		if tn := rel.TranslationNorm(); tn > maxTrans {
			maxTrans = tn
		}
		if ra := rel.RotationAngle(); ra > maxRot {
			maxRot = ra
		}
	}
	return maxTrans, maxRot
}
