package seqcache

import (
	"bytes"
	"crypto/sha256"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"slamgo/internal/camera"
	"slamgo/internal/dataset"
	"slamgo/internal/imgproc"
	"slamgo/internal/math3"
	"slamgo/internal/sharedfs"
)

// testSeq builds a small synthetic sequence exercising every format
// branch: ground truth on/off, RGB on/off, distinct float payloads.
func testSeq(name string, frames int) *dataset.MemorySequence {
	seq := &dataset.MemorySequence{
		SeqName: name,
		Intr:    camera.Intrinsics{Width: 4, Height: 3, Fx: 481.2, Fy: 480, Cx: 1.5, Cy: 1.25},
	}
	for i := 0; i < frames; i++ {
		f := &dataset.Frame{Index: i, Time: float64(i) / 30}
		f.Depth = &imgproc.DepthMap{Width: 4, Height: 3, Pix: make([]float32, 12)}
		for p := range f.Depth.Pix {
			f.Depth.Pix[p] = float32(i)*0.125 + float32(p)*0.0625
		}
		if i%2 == 0 {
			f.HasGT = true
			f.GroundTruth = math3.SE3{
				R: math3.Mat3{M: [3][3]float64{{1, 0, 0}, {0, 0.8, -0.6}, {0, 0.6, 0.8}}},
				T: math3.Vec3{X: 0.1 * float64(i), Y: -0.2, Z: 1.5},
			}
		}
		if i%3 == 0 {
			f.RGB = &imgproc.RGB{Width: 4, Height: 3, Pix: bytes.Repeat([]byte{byte(i)}, 36)}
		}
		seq.Frames = append(seq.Frames, f)
	}
	return seq
}

// renderer returns a RenderFunc serving seq and counting invocations.
func renderer(seq *dataset.MemorySequence, calls *int) RenderFunc {
	return func() (*dataset.MemorySequence, error) {
		*calls++
		return seq, nil
	}
}

// open builds a disk cache over dir with fast test plumbing.
func open(t *testing.T, dir string, mut func(*Options)) *Cache {
	t.Helper()
	opts := Options{
		Dir:      dir,
		Worker:   "tester",
		LeaseTTL: time.Minute,
		Sleep:    func(time.Duration) {},
		Log:      t.Logf,
	}
	if mut != nil {
		mut(&opts)
	}
	return New(opts)
}

// noDebris fails the test if the cache directory leaked temp files.
func noDebris(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range ents {
		if sharedfs.IsTempFile(e.Name()) {
			t.Fatalf("leaked temp file %s", e.Name())
		}
	}
}

func TestEncodeDecodeRoundtripBitExact(t *testing.T) {
	seq := testSeq("lr_kt0_syn", 7)
	data := Encode("seq-roundtrip", seq)
	key, got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if key != "seq-roundtrip" {
		t.Fatalf("key = %q", key)
	}
	if !reflect.DeepEqual(seq, got) {
		t.Fatalf("decoded sequence differs from encoded one")
	}
	// Encoding is a pure function: two encodes are byte-identical (this
	// is what makes concurrent cache writers benign).
	if !bytes.Equal(data, Encode("seq-roundtrip", seq)) {
		t.Fatalf("Encode is not deterministic")
	}
}

func TestDecodeRejectsEveryDefect(t *testing.T) {
	seq := testSeq("s", 3)
	good := Encode("k", seq)
	damage := map[string][]byte{
		"empty":     {},
		"truncated": good[:len(good)/2],
		"bit flip":  append(append([]byte{}, good[:100]...), append([]byte{good[100] ^ 0x01}, good[101:]...)...),
		"trailing":  append(append([]byte{}, good...), 0),
	}
	for name, data := range damage {
		if _, _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted damaged artifact", name)
		}
	}
	// A version bump orphans old artifacts (checksum re-stamped so only
	// the version check can reject it).
	v := append([]byte{}, good[:len(good)-checksumSize]...)
	v[len(formatMagic)]++ // first byte of the little-endian version
	if _, _, err := Decode(Encode("k", seq)); err != nil {
		t.Fatalf("control: %v", err)
	}
	sum := sha256.Sum256(v)
	if _, _, err := Decode(append(v, sum[:]...)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version mismatch not rejected: %v", err)
	}
}

func TestRenderOncePerStoreAcrossCacheInstances(t *testing.T) {
	dir := t.TempDir()
	seq := testSeq("s", 5)
	calls := 0

	c1 := open(t, dir, nil)
	got, src, err := c1.Sequence("seq-a", renderer(seq, &calls))
	if err != nil || src != SourceRender {
		t.Fatalf("first acquire = %v, %v; want render", src, err)
	}
	if !reflect.DeepEqual(got, seq) {
		t.Fatalf("rendered sequence mangled")
	}
	if _, src, _ = c1.Sequence("seq-a", renderer(seq, &calls)); src != SourceMemory {
		t.Fatalf("repeat acquire = %v, want memory", src)
	}

	// A second cache instance (a new process) loads the artifact.
	c2 := open(t, dir, nil)
	got2, src, err := c2.Sequence("seq-a", renderer(seq, &calls))
	if err != nil || src != SourceDisk {
		t.Fatalf("cross-process acquire = %v, %v; want disk hit", src, err)
	}
	if !reflect.DeepEqual(got2, seq) {
		t.Fatalf("loaded sequence differs from rendered one")
	}
	if calls != 1 {
		t.Fatalf("renderer called %d times, want 1 (render once per shared store)", calls)
	}
	s1, s2 := c1.Stats(), c2.Stats()
	if s1.Renders != 1 || s1.MemoryHits != 1 || s2.DiskHits != 1 || s1.Degradations+s2.Degradations != 0 {
		t.Fatalf("stats = %+v / %+v", s1, s2)
	}
	noDebris(t, dir)
}

func TestCorruptArtifactSilentlyReRenderedAndRepaired(t *testing.T) {
	dir := t.TempDir()
	seq := testSeq("s", 4)
	calls := 0
	open(t, dir, nil).Sequence("seq-a", renderer(seq, &calls))

	// Bit-rot the artifact in place.
	path := filepath.Join(dir, "seq-a.seq")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	data[len(data)/2] ^= 0x5a
	os.WriteFile(path, data, 0o644)

	c := open(t, dir, nil)
	got, src, err := c.Sequence("seq-a", renderer(seq, &calls))
	if err != nil || src != SourceRender {
		t.Fatalf("corrupt acquire = %v, %v; want silent re-render", src, err)
	}
	if !reflect.DeepEqual(got, seq) || calls != 2 {
		t.Fatalf("re-render wrong (calls=%d)", calls)
	}
	if st := c.Stats(); st.Degradations != 0 {
		t.Fatalf("corruption counted as degradation: %+v (it is a plain miss)", st)
	}
	// The re-render repaired the artifact: a third instance disk-hits.
	if _, src, _ = open(t, dir, nil).Sequence("seq-a", renderer(seq, &calls)); src != SourceDisk {
		t.Fatalf("post-repair acquire = %v, want disk hit", src)
	}
	noDebris(t, dir)
}

func TestMisfiledArtifactIsAMiss(t *testing.T) {
	dir := t.TempDir()
	seq := testSeq("s", 3)
	calls := 0
	open(t, dir, nil).Sequence("seq-a", renderer(seq, &calls))
	data, _ := os.ReadFile(filepath.Join(dir, "seq-a.seq"))
	os.WriteFile(filepath.Join(dir, "seq-b.seq"), data, 0o644)

	if _, src, _ := open(t, dir, nil).Sequence("seq-b", renderer(seq, &calls)); src != SourceRender {
		t.Fatalf("misfiled acquire = %v, want re-render", src)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestSaveENOSPCDegradesInline(t *testing.T) {
	dir := t.TempDir()
	seq := testSeq("s", 3)
	calls := 0
	c := open(t, dir, nil)
	// Every retry attempt hits the full disk.
	plan := FaultPlan{Save: map[int]FaultKind{}}
	for i := 0; i < 8; i++ {
		plan.Save[i] = FaultWriteError
	}
	c.InjectFaults(plan)
	got, src, err := c.Sequence("seq-a", renderer(seq, &calls))
	if err != nil || src != SourceInline {
		t.Fatalf("ENOSPC acquire = %v, %v; want inline degradation", src, err)
	}
	if !reflect.DeepEqual(got, seq) || calls != 1 {
		t.Fatalf("inline sequence wrong (calls=%d)", calls)
	}
	st := c.Stats()
	if st.Renders != 1 || st.Degradations != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if c.Injected() == 0 {
		t.Fatalf("fault plan never fired")
	}
	noDebris(t, dir)
}

func TestTransientShortWriteRetriesToSuccess(t *testing.T) {
	dir := t.TempDir()
	seq := testSeq("s", 3)
	calls := 0
	c := open(t, dir, nil)
	c.InjectFaults(FaultPlan{Save: map[int]FaultKind{0: FaultShortWrite}})
	if _, src, err := c.Sequence("seq-a", renderer(seq, &calls)); err != nil || src != SourceRender {
		t.Fatalf("acquire = %v, %v; want render (retry healed the torn write)", src, err)
	}
	// The retried save replaced the torn file whole.
	if _, src, _ := open(t, dir, nil).Sequence("seq-a", renderer(seq, &calls)); src != SourceDisk {
		t.Fatalf("post-retry artifact unreadable")
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	noDebris(t, dir)
}

func TestReadErrorDegradesInline(t *testing.T) {
	dir := t.TempDir()
	seq := testSeq("s", 3)
	calls := 0
	open(t, dir, nil).Sequence("seq-a", renderer(seq, &calls))

	c := open(t, dir, nil)
	plan := FaultPlan{Load: map[int]FaultKind{}}
	for i := 0; i < 8; i++ {
		plan.Load[i] = FaultReadError
	}
	c.InjectFaults(plan)
	got, src, err := c.Sequence("seq-a", renderer(seq, &calls))
	if err != nil || src != SourceInline {
		t.Fatalf("EIO acquire = %v, %v; want inline degradation", src, err)
	}
	if !reflect.DeepEqual(got, seq) || calls != 2 {
		t.Fatalf("inline sequence wrong (calls=%d)", calls)
	}
	if st := c.Stats(); st.Degradations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInjectedCorruptReadIsAMissNotADegradation(t *testing.T) {
	dir := t.TempDir()
	seq := testSeq("s", 3)
	calls := 0
	open(t, dir, nil).Sequence("seq-a", renderer(seq, &calls))

	c := open(t, dir, nil)
	c.InjectFaults(FaultPlan{Load: map[int]FaultKind{0: FaultCorruptRead}})
	if _, src, err := c.Sequence("seq-a", renderer(seq, &calls)); err != nil || src != SourceRender {
		t.Fatalf("corrupt-read acquire = %v, %v; want silent re-render", src, err)
	}
	if st := c.Stats(); st.Degradations != 0 || st.Renders != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeadRendererLeaseTakeover(t *testing.T) {
	dir := t.TempDir()
	seq := testSeq("s", 3)
	calls := 0

	// A renderer that died an hour ago still holds the key's lease.
	past := func() time.Time { return time.Now().Add(-time.Hour) }
	dead := sharedfs.NewLeaseManager(dir, "dead-renderer", time.Minute, past)
	if _, ok, err := dead.TryAcquire("seq-a"); !ok || err != nil {
		t.Fatalf("planting stale lease: %v", err)
	}

	c := open(t, dir, func(o *Options) { o.LeaseTTL = 50 * time.Millisecond })
	got, src, err := c.Sequence("seq-a", renderer(seq, &calls))
	if err != nil || src != SourceRender {
		t.Fatalf("takeover acquire = %v, %v; want render", src, err)
	}
	if !reflect.DeepEqual(got, seq) || calls != 1 {
		t.Fatalf("takeover render wrong (calls=%d)", calls)
	}
	// The takeover released the lease after publishing.
	if _, _, ok := c.leases.Holder("seq-a"); ok {
		t.Fatalf("lease not released after takeover render")
	}
	noDebris(t, dir)
}

func TestLiveHolderPublicationArrivesDuringPoll(t *testing.T) {
	dir := t.TempDir()
	seq := testSeq("s", 3)
	calls := 0

	peer := sharedfs.NewLeaseManager(dir, "peer", time.Hour, nil)
	if _, ok, err := peer.TryAcquire("seq-a"); !ok || err != nil {
		t.Fatalf("planting live lease: %v", err)
	}
	// The peer "publishes" while we sleep on its lease.
	published := false
	c := open(t, dir, func(o *Options) {
		o.LeaseTTL = time.Hour
		o.Sleep = func(time.Duration) {
			if !published {
				published = true
				os.WriteFile(filepath.Join(dir, "seq-a.seq"), Encode("seq-a", seq), 0o644)
			}
		}
	})
	got, src, err := c.Sequence("seq-a", renderer(seq, &calls))
	if err != nil || src != SourceDisk {
		t.Fatalf("waiting acquire = %v, %v; want disk hit from peer", src, err)
	}
	if !reflect.DeepEqual(got, seq) || calls != 0 {
		t.Fatalf("peer's frames not used (calls=%d)", calls)
	}
}

func TestWedgedHolderBoundedThenInline(t *testing.T) {
	dir := t.TempDir()
	seq := testSeq("s", 3)
	calls := 0

	// A holder that heartbeats forever but never publishes: TTL never
	// expires, nothing to load. The poll budget must bound the wait.
	peer := sharedfs.NewLeaseManager(dir, "wedged", time.Hour, nil)
	if _, ok, err := peer.TryAcquire("seq-a"); !ok || err != nil {
		t.Fatalf("planting wedged lease: %v", err)
	}
	c := open(t, dir, func(o *Options) { o.LeaseTTL = time.Hour })
	got, src, err := c.Sequence("seq-a", renderer(seq, &calls))
	if err != nil || src != SourceInline {
		t.Fatalf("wedged acquire = %v, %v; want inline degradation", src, err)
	}
	if !reflect.DeepEqual(got, seq) || calls != 1 {
		t.Fatalf("inline render wrong (calls=%d)", calls)
	}
	if st := c.Stats(); st.Degradations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEvictionIsDeterministicAndSparesNewestWrite(t *testing.T) {
	dir := t.TempDir()
	seq := testSeq("s", 4)
	one := len(Encode("seq-a", seq))
	calls := 0
	// Budget for about two artifacts: publishing the third must evict
	// exactly one, and in lexicographic order with the fresh write
	// exempt that is always "seq-a".
	c := open(t, dir, func(o *Options) { o.MaxBytes = int64(2*one + one/2) })
	for _, key := range []string{"seq-a", "seq-b", "seq-c"} {
		if _, _, err := c.Sequence(key, renderer(seq, &calls)); err != nil {
			t.Fatalf("acquire %s: %v", key, err)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (stats %+v)", st.Evictions, st)
	}
	if _, err := os.Stat(filepath.Join(dir, "seq-a.seq")); !os.IsNotExist(err) {
		t.Fatalf("seq-a should have been evicted (lexicographic order)")
	}
	for _, key := range []string{"seq-b", "seq-c"} {
		if _, err := os.Stat(filepath.Join(dir, key+".seq")); err != nil {
			t.Fatalf("%s should have survived: %v", key, err)
		}
	}
	// An evicted artifact is a plain miss for the next process.
	if _, src, _ := open(t, dir, nil).Sequence("seq-a", renderer(seq, &calls)); src != SourceRender {
		t.Fatalf("evicted acquire = %v, want re-render", src)
	}
}

func TestDebrisSweptOnOpen(t *testing.T) {
	dir := t.TempDir()
	old := time.Now().Add(-time.Hour)
	tmp := filepath.Join(dir, ".tmp-seq-a-zzz")
	os.WriteFile(tmp, []byte("half a frame"), 0o644)
	os.Chtimes(tmp, old, old)
	dead := sharedfs.NewLeaseManager(dir, "dead", time.Minute, func() time.Time { return old })
	dead.TryAcquire("seq-a")

	open(t, dir, nil)
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived open")
	}
	if _, err := os.Stat(filepath.Join(dir, "seq-a.lease")); !os.IsNotExist(err) {
		t.Fatalf("orphaned lease survived open")
	}
}

func TestUnusableDirectoryDegradesEverything(t *testing.T) {
	// A file where the directory should be: MkdirAll fails, the cache
	// opens broken, every acquisition renders inline.
	parent := t.TempDir()
	blocked := filepath.Join(parent, "occupied")
	os.WriteFile(blocked, []byte("not a directory"), 0o644)
	seq := testSeq("s", 3)
	calls := 0
	c := open(t, blocked, nil)
	got, src, err := c.Sequence("seq-a", renderer(seq, &calls))
	if err != nil || src != SourceInline {
		t.Fatalf("broken-dir acquire = %v, %v; want inline", src, err)
	}
	if !reflect.DeepEqual(got, seq) || calls != 1 {
		t.Fatalf("inline render wrong")
	}
	if st := c.Stats(); st.Degradations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMemoryOnlyMode(t *testing.T) {
	seq := testSeq("s", 3)
	calls := 0
	c := New(Options{Log: func(string, ...any) {}})
	if _, src, err := c.Sequence("seq-a", renderer(seq, &calls)); err != nil || src != SourceRender {
		t.Fatalf("memory-only first acquire = %v, %v", src, err)
	}
	if _, src, _ := c.Sequence("seq-a", renderer(seq, &calls)); src != SourceMemory {
		t.Fatalf("memory-only repeat not memoised")
	}
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
	if st := c.Stats(); st.Degradations != 0 {
		t.Fatalf("memory-only mode counted degradations: %+v", st)
	}
}

func TestConcurrentAcquisitionsSingleFlight(t *testing.T) {
	dir := t.TempDir()
	seq := testSeq("s", 5)
	var mu chan struct{} = make(chan struct{}) // closed when render ran
	c := open(t, dir, nil)
	var calls int32
	render := func() (*dataset.MemorySequence, error) {
		select {
		case <-mu:
			t.Error("renderer entered twice")
		default:
			close(mu)
		}
		calls++
		time.Sleep(10 * time.Millisecond) // widen the race window
		return seq, nil
	}
	done := make(chan Source, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, src, err := c.Sequence("seq-a", render)
			if err != nil {
				t.Errorf("concurrent acquire: %v", err)
			}
			done <- src
		}()
	}
	renders := 0
	for i := 0; i < 8; i++ {
		if <-done == SourceRender {
			renders++
		}
	}
	if renders != 1 {
		t.Fatalf("%d goroutines rendered, want exactly 1", renders)
	}
	if st := c.Stats(); st.Renders != 1 || st.MemoryHits != 7 {
		t.Fatalf("stats = %+v", st)
	}
}
