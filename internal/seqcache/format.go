package seqcache

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"math"

	"slamgo/internal/camera"
	"slamgo/internal/dataset"
	"slamgo/internal/imgproc"
	"slamgo/internal/math3"
)

// The cache artifact format. The existing ".slam" sequence format is
// deliberately lossy — depth is quantised to millimetre uint16, poses
// round-trip through quaternions — which is fine for dataset exchange
// but fatal here: a cache hit must be *byte-identical* to a fresh
// render, or cached and uncached campaigns diverge in their last
// floating-point bits and the reports stop matching. So cache entries
// serialise raw: float32 depth bits, the full 3×3 rotation matrix and
// translation as float64 bits, nothing quantised, nothing derived.
//
// Layout (all little-endian):
//
//	magic "SQC1" | u32 version | u32 len(key) | key
//	u32 len(name) | name
//	u32 width | u32 height | f64 fx fy cx cy        (intrinsics)
//	u32 frame count
//	per frame:
//	  i64 index | f64 time | u8 flags (1 GT, 2 depth, 4 RGB)
//	  [flags&1] 9×f64 rotation (row major) | 3×f64 translation
//	  [flags&2] u32 dw | u32 dh | dw*dh × f32 depth
//	  [flags&4] u32 rw | u32 rh | 3*rw*rh × u8 RGB
//	sha256 of everything above (32 bytes)
//
// The embedded key makes a file copied or renamed to the wrong cache
// slot unloadable as something it is not (same trick as the checkpoint
// store's envelope); the trailing checksum catches truncation, torn
// writes and bit rot. Decode treats *every* defect as data damage — the
// caller maps that to a miss and re-renders, because re-rendering is
// always safe while trusting a damaged frame never is.

const (
	formatMagic   = "SQC1"
	formatVersion = 1

	flagGT    = 1
	flagDepth = 2
	flagRGB   = 4

	checksumSize = 32

	// Sanity caps applied before any allocation during decode, so a
	// corrupt length field costs an error, not an OOM.
	maxStringLen = 1 << 12
	maxFrames    = 1 << 21
	maxImageDim  = 1 << 15
)

// Encode serialises a rendered sequence as a cache artifact keyed by
// key. Encoding is a pure function of its inputs — every process
// rendering the same key produces identical bytes, which is what makes
// concurrent cache writers benign (last atomic rename wins, the winner
// indistinguishable from the loser).
func Encode(key string, seq *dataset.MemorySequence) []byte {
	e := &encoder{}
	e.bytes([]byte(formatMagic))
	e.u32(formatVersion)
	e.str(key)
	e.str(seq.SeqName)
	e.u32(uint32(seq.Intr.Width))
	e.u32(uint32(seq.Intr.Height))
	e.f64(seq.Intr.Fx)
	e.f64(seq.Intr.Fy)
	e.f64(seq.Intr.Cx)
	e.f64(seq.Intr.Cy)
	e.u32(uint32(len(seq.Frames)))
	for _, f := range seq.Frames {
		e.i64(int64(f.Index))
		e.f64(f.Time)
		var flags uint8
		if f.HasGT {
			flags |= flagGT
		}
		if f.Depth != nil {
			flags |= flagDepth
		}
		if f.RGB != nil {
			flags |= flagRGB
		}
		e.u8(flags)
		if f.HasGT {
			for r := 0; r < 3; r++ {
				for c := 0; c < 3; c++ {
					e.f64(f.GroundTruth.R.M[r][c])
				}
			}
			e.f64(f.GroundTruth.T.X)
			e.f64(f.GroundTruth.T.Y)
			e.f64(f.GroundTruth.T.Z)
		}
		if f.Depth != nil {
			e.u32(uint32(f.Depth.Width))
			e.u32(uint32(f.Depth.Height))
			e.f32s(f.Depth.Pix)
		}
		if f.RGB != nil {
			e.u32(uint32(f.RGB.Width))
			e.u32(uint32(f.RGB.Height))
			e.bytes(f.RGB.Pix)
		}
	}
	sum := sha256.Sum256(e.buf)
	e.bytes(sum[:])
	return e.buf
}

// Decode parses a cache artifact, verifying the checksum first and
// every structural invariant after. The returned key is the one the
// artifact was encoded under; callers must check it against the slot
// they loaded from. Any error means the bytes cannot be trusted — the
// caller should treat the file as a miss, never as an I/O fault.
func Decode(data []byte) (key string, seq *dataset.MemorySequence, err error) {
	if len(data) < len(formatMagic)+4+checksumSize {
		return "", nil, fmt.Errorf("seqcache: artifact truncated (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-checksumSize], data[len(data)-checksumSize:]
	sum := sha256.Sum256(body)
	if subtle.ConstantTimeCompare(sum[:], tail) != 1 {
		return "", nil, fmt.Errorf("seqcache: artifact checksum mismatch")
	}
	d := &decoder{data: body}
	if string(d.take(len(formatMagic))) != formatMagic {
		return "", nil, fmt.Errorf("seqcache: bad artifact magic")
	}
	if v := d.u32(); v != formatVersion {
		return "", nil, fmt.Errorf("seqcache: artifact version %d, want %d", v, formatVersion)
	}
	key = d.str()
	seq = &dataset.MemorySequence{SeqName: d.str()}
	seq.Intr = camera.Intrinsics{
		Width: int(d.u32()), Height: int(d.u32()),
		Fx: d.f64(), Fy: d.f64(), Cx: d.f64(), Cy: d.f64(),
	}
	n := d.u32()
	if n > maxFrames {
		return "", nil, fmt.Errorf("seqcache: implausible frame count %d", n)
	}
	if d.err == nil {
		seq.Frames = make([]*dataset.Frame, 0, n)
	}
	for i := uint32(0); i < n && d.err == nil; i++ {
		f := &dataset.Frame{Index: int(d.i64()), Time: d.f64()}
		flags := d.u8()
		if flags&flagGT != 0 {
			f.HasGT = true
			var se3 math3.SE3
			for r := 0; r < 3; r++ {
				for c := 0; c < 3; c++ {
					se3.R.M[r][c] = d.f64()
				}
			}
			se3.T.X, se3.T.Y, se3.T.Z = d.f64(), d.f64(), d.f64()
			f.GroundTruth = se3
		}
		if flags&flagDepth != 0 {
			w, h := d.u32(), d.u32()
			if w > maxImageDim || h > maxImageDim {
				return "", nil, fmt.Errorf("seqcache: implausible depth size %dx%d", w, h)
			}
			f.Depth = &imgproc.DepthMap{Width: int(w), Height: int(h), Pix: d.f32s(int(w) * int(h))}
		}
		if flags&flagRGB != 0 {
			w, h := d.u32(), d.u32()
			if w > maxImageDim || h > maxImageDim {
				return "", nil, fmt.Errorf("seqcache: implausible rgb size %dx%d", w, h)
			}
			pix := d.take(3 * int(w) * int(h))
			f.RGB = &imgproc.RGB{Width: int(w), Height: int(h), Pix: append([]uint8(nil), pix...)}
		}
		seq.Frames = append(seq.Frames, f)
	}
	if d.err != nil {
		return "", nil, d.err
	}
	if d.off != len(d.data) {
		return "", nil, fmt.Errorf("seqcache: %d trailing bytes after last frame", len(d.data)-d.off)
	}
	return key, seq, nil
}

// encoder appends little-endian primitives to a growing buffer.
type encoder struct{ buf []byte }

func (e *encoder) bytes(b []byte) { e.buf = append(e.buf, b...) }
func (e *encoder) u8(v uint8)     { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32)   { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) i64(v int64)    { e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v)) }
func (e *encoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *encoder) f32s(v []float32) {
	for _, x := range v {
		e.buf = binary.LittleEndian.AppendUint32(e.buf, math.Float32bits(x))
	}
}
func (e *encoder) str(s string) {
	if len(s) > maxStringLen {
		s = s[:maxStringLen] // never produce an artifact Decode rejects
	}
	e.u32(uint32(len(s)))
	e.bytes([]byte(s))
}

// decoder reads little-endian primitives with a sticky error; after the
// first bounds violation every read returns zero values, so the decode
// loop needs no per-field error plumbing.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.data) {
		d.err = fmt.Errorf("seqcache: artifact truncated at offset %d", d.off)
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) i64() int64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (d *decoder) f64() float64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (d *decoder) f32s(n int) []float32 {
	b := d.take(4 * n)
	if b == nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func (d *decoder) str() string {
	n := d.u32()
	if n > maxStringLen {
		d.err = fmt.Errorf("seqcache: implausible string length %d", n)
		return ""
	}
	return string(d.take(int(n)))
}
