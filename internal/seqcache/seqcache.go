// Package seqcache is the fault-tolerant content-addressed cache of
// rendered synthetic sequences. Rendering a sequence (ray-marching an
// SDF scene along a trajectory) dwarfs the cost of reading it back, and
// a campaign grid re-renders the same few sequences once per scenario
// cell, once per cooperating process, once per stage. The cache keys
// each rendered sequence by a canonical content hash of everything that
// determines its frames (see core.Scale.CacheKey), so all cells, stages
// and worker processes sharing a cache directory render each distinct
// sequence exactly once and load it everywhere else.
//
// The design inherits the campaign checkpoint store's crash-safety
// contract wholesale (both are built on internal/sharedfs):
//
//   - Writes are atomic (temp file + fsync + rename) and every writer
//     of a key produces identical bytes, so concurrent writers — racing
//     goroutines or racing processes — are benign: the last complete
//     rename wins and the winner is indistinguishable from the loser.
//   - Every artifact embeds its key and a sha256 checksum; a load
//     verifies both. Any defect — absent, truncated, torn, bit-rotted,
//     version-mismatched, misfiled — is a miss that re-rendering
//     repairs, never an error and never bad frames.
//   - Real I/O faults ride the bounded deterministic retry ladder.
//   - Concurrent renders of one key are single-flighted twice: an
//     in-process per-key lock, and across processes the worker-lease
//     protocol (heartbeat + TTL takeover, so a SIGKILLed renderer's
//     key is taken over instead of wedging the campaign).
//
// Every cache failure mode degrades to inline rendering: an unwritable
// directory, an unreadable artifact after retries, an ENOSPC save, a
// wedged lease — each is logged, counted in Stats.Degradations, and
// answered by calling the renderer directly. The cache can lose every
// byte it owns and the campaign still completes with an identical
// report, just slower. No cache failure is ever fatal.
package seqcache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"slamgo/internal/dataset"
	"slamgo/internal/sharedfs"
)

// Source reports where a Sequence call's frames came from; campaign
// provenance surfaces it per cell.
type Source string

const (
	// SourceMemory is an in-process reuse of a sequence this cache
	// already holds materialised.
	SourceMemory Source = "memory"
	// SourceDisk is a verified disk hit: another process (or a previous
	// run) rendered the sequence and this call loaded it.
	SourceDisk Source = "cache"
	// SourceRender means this call rendered the sequence and published
	// it to the cache.
	SourceRender Source = "render"
	// SourceInline means the cache degraded: the sequence was rendered
	// inline because some cache layer failed (unwritable directory,
	// unreadable artifact, failed save, wedged lease). Correct but
	// uncached.
	SourceInline Source = "inline"
)

// Stats counts cache activity since New. Renders counts renderer
// invocations that published (or tried to publish) to the cache;
// Degradations counts inline fallbacks — the acceptance number for
// "each distinct sequence rendered exactly once per shared store" is
// the sum of Renders over every cooperating process.
type Stats struct {
	Renders      int `json:"renders"`
	DiskHits     int `json:"disk_hits"`
	MemoryHits   int `json:"memory_hits"`
	Degradations int `json:"degradations"`
	Evictions    int `json:"evictions"`
}

// RenderFunc produces the sequence for a key when the cache cannot.
type RenderFunc func() (*dataset.MemorySequence, error)

// Options configures a cache.
type Options struct {
	// Dir is the shared cache directory; empty means memory-only (the
	// cache still single-flights and memoises in-process, nothing
	// touches disk).
	Dir string
	// Worker identifies this process in lease files. Defaults to
	// "pid<pid>" — lease contents never influence results, so a
	// non-deterministic default is safe.
	Worker string
	// LeaseTTL bounds how long a dead renderer can block a key before
	// takeover. Default 10s.
	LeaseTTL time.Duration
	// MaxBytes bounds the on-disk size; 0 means unbounded. Enforced
	// after each save by deterministic eviction (lexicographic key
	// order, newest write exempt), so cooperating processes evict
	// identically.
	MaxBytes int64
	// Retry is the transient-fault ladder; zero value means
	// sharedfs.DefaultRetryPolicy.
	Retry sharedfs.RetryPolicy
	// Log (may be nil) receives degradation and hygiene messages.
	Log func(format string, args ...any)
	// Sleep (nil = time.Sleep) paces retries and lease polls; tests
	// inject a no-op to stay fast.
	Sleep func(time.Duration)
	// Now (nil = time.Now) is the lease clock; tests inject it to
	// simulate dead renderers.
	Now func() time.Time
}

// maxLeasePolls bounds how long a Sequence call waits on another
// worker's live lease before degrading to inline rendering: a holder
// that heartbeats forever without ever publishing (wedged, not dead —
// TTL takeover never triggers) must not wedge this process too. At the
// poll ladder's 200ms cap this is ~2 minutes of real waiting.
const maxLeasePolls = 600

// Cache is a content-addressed rendered-sequence cache. Safe for
// concurrent use by any number of goroutines; any number of processes
// may share its directory.
type Cache struct {
	dir      string
	maxBytes int64
	ttl      time.Duration
	retry    sharedfs.RetryPolicy
	logf     func(format string, args ...any)
	sleep    func(time.Duration)
	leases   *sharedfs.LeaseManager
	faults   faultInjector

	mu      sync.Mutex
	broken  bool // directory unusable: every miss degrades to inline
	entries map[string]*entry
	stats   Stats
}

// entry single-flights one key in-process: the per-entry lock serialises
// concurrent Sequence calls for the key (first caller renders or loads,
// the rest reuse), while distinct keys proceed in parallel.
type entry struct {
	mu  sync.Mutex
	seq *dataset.MemorySequence
}

// New opens (creating if needed) a cache over opts.Dir, sweeping the
// debris dead renderers leave behind (stale temp files, orphaned
// leases). New never fails: an unusable directory is a degraded cache,
// not a broken campaign — every subsequent miss renders inline.
func New(opts Options) *Cache {
	if opts.Worker == "" {
		opts.Worker = fmt.Sprintf("pid%d", os.Getpid())
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 10 * time.Second
	}
	if opts.Retry == (sharedfs.RetryPolicy{}) {
		opts.Retry = sharedfs.DefaultRetryPolicy()
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c := &Cache{
		dir:      opts.Dir,
		maxBytes: opts.MaxBytes,
		ttl:      opts.LeaseTTL,
		retry:    opts.Retry,
		logf:     logf,
		sleep:    opts.Sleep,
		entries:  map[string]*entry{},
	}
	if c.dir != "" {
		if err := os.MkdirAll(c.dir, 0o755); err != nil {
			c.logf("seqcache: %v (cache disabled, rendering inline)", err)
			c.broken = true
			return c
		}
		sharedfs.SweepDebris(c.dir, sharedfs.DefaultDebrisAge, opts.Now)
		c.leases = sharedfs.NewLeaseManager(c.dir, opts.Worker, opts.LeaseTTL, opts.Now)
	}
	return c
}

// Dir returns the cache directory ("" in memory-only mode).
func (c *Cache) Dir() string { return c.dir }

// Path returns where key's artifact lives (test and tooling surface —
// the fault suite and the smoke test damage files in place).
func (c *Cache) Path(key string) string { return filepath.Join(c.dir, key+".seq") }

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// InjectFaults arms the fault plan (crash-safety tests only).
func (c *Cache) InjectFaults(plan FaultPlan) { c.faults.plan = plan }

// Injected reports how many injected faults have fired — tests assert
// it to prove the schedule actually exercised the recovery paths.
func (c *Cache) Injected() int {
	c.faults.mu.Lock()
	defer c.faults.mu.Unlock()
	return c.faults.injected
}

// bump mutates the stats under the cache lock.
func (c *Cache) bump(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// entryFor returns (creating if needed) key's single-flight slot.
func (c *Cache) entryFor(key string) *entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		e = &entry{}
		c.entries[key] = e
	}
	return e
}

// Sequence returns the rendered sequence for key, rendering via render
// on a miss. The degradation ladder, in order: in-process memory hit →
// verified disk hit → lease-coordinated render-and-publish → inline
// render (cache failed; logged and counted, never fatal). The returned
// sequence is shared and must be treated as immutable — every consumer
// in this repo already treats sequences as read-only.
//
// The only non-nil error Sequence can return is the renderer's own:
// cache faults degrade, but if the sequence cannot be *rendered* the
// infrastructure is broken and the caller must know.
func (c *Cache) Sequence(key string, render RenderFunc) (*dataset.MemorySequence, Source, error) {
	e := c.entryFor(key)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.seq != nil {
		c.bump(func(s *Stats) { s.MemoryHits++ })
		return e.seq, SourceMemory, nil
	}
	seq, src, err := c.acquire(key, render)
	if err != nil {
		return nil, src, err
	}
	e.seq = seq
	return seq, src, nil
}

// acquire produces key's sequence from disk, a coordinated render, or
// an inline fallback. Runs under the key's entry lock.
func (c *Cache) acquire(key string, render RenderFunc) (*dataset.MemorySequence, Source, error) {
	c.mu.Lock()
	broken := c.broken
	c.mu.Unlock()
	if c.dir == "" {
		// Memory-only mode: a render here is the cache working as
		// configured, not a degradation.
		seq, err := render()
		if err != nil {
			return nil, SourceRender, err
		}
		c.bump(func(s *Stats) { s.Renders++ })
		return seq, SourceRender, nil
	}
	if broken {
		return c.inline(key, render, "cache directory unusable")
	}
	if seq, hit, err := c.load(key); hit {
		c.bump(func(s *Stats) { s.DiskHits++ })
		return seq, SourceDisk, nil
	} else if err != nil {
		return c.inline(key, render, fmt.Sprintf("load failed: %v", err))
	}
	if c.leases == nil {
		return c.renderAndPublish(key, render)
	}
	// Cross-process single-flight: claim the key's lease and render, or
	// watch a live holder until its artifact appears / its lease expires
	// (TTL takeover of dead renderers). A holder that never publishes
	// and never dies is bounded by maxLeasePolls → inline degradation.
	backoff := sharedfs.NewPollBackoff()
	for polls := 0; ; polls++ {
		lease, acquired, err := c.leases.TryAcquire(key)
		if err != nil {
			return c.inline(key, render, fmt.Sprintf("lease failed: %v", err))
		}
		if acquired {
			stop := sharedfs.Heartbeat(lease, c.ttl, c.logf)
			seq, src, rerr := c.renderAndPublish(key, render)
			stop()
			return seq, src, rerr
		}
		if polls >= maxLeasePolls {
			return c.inline(key, render, "renderer holding the lease never published")
		}
		c.sleep(backoff.Next())
		if seq, hit, err := c.load(key); hit {
			c.bump(func(s *Stats) { s.DiskHits++ })
			return seq, SourceDisk, nil
		} else if err != nil {
			return c.inline(key, render, fmt.Sprintf("load failed: %v", err))
		}
	}
}

// inline is the bottom of the degradation ladder: render without the
// cache, log why, count it. Never fatal — the only error out of here is
// the renderer's own.
func (c *Cache) inline(key string, render RenderFunc, why string) (*dataset.MemorySequence, Source, error) {
	c.logf("seqcache: %s: %s; degrading to inline render", key, why)
	seq, err := render()
	if err != nil {
		return nil, SourceInline, err
	}
	c.bump(func(s *Stats) { s.Renders++; s.Degradations++ })
	return seq, SourceInline, nil
}

// renderAndPublish renders key and publishes the artifact. A failed
// publish degrades (the freshly rendered frames are still returned —
// only the *cache* failed) rather than failing the caller.
func (c *Cache) renderAndPublish(key string, render RenderFunc) (*dataset.MemorySequence, Source, error) {
	seq, err := render()
	if err != nil {
		return nil, SourceRender, err
	}
	c.bump(func(s *Stats) { s.Renders++ })
	if err := c.save(key, seq); err != nil {
		c.logf("seqcache: %s: save failed: %v; sequence served inline", key, err)
		c.bump(func(s *Stats) { s.Degradations++ })
		return seq, SourceInline, nil
	}
	c.evict(key)
	return seq, SourceRender, nil
}

// save publishes key's artifact atomically, riding the retry ladder
// over transient faults. Each attempt is one fault-plan op.
func (c *Cache) save(key string, seq *dataset.MemorySequence) error {
	data := Encode(key, seq)
	path := c.Path(key)
	return c.retry.Retry("seqcache: saving "+key, c.sleep, func() error {
		write := func() error { return sharedfs.WriteFileAtomic(c.dir, path, key, data) }
		if fired, ferr := c.faults.saveFault(path, write); fired {
			return ferr
		}
		return write()
	})
}

// load reads and verifies key's artifact. hit=false with nil error is a
// clean miss (absent or damaged — damage is logged and re-rendering
// repairs it); a non-nil error is a real I/O fault that survived the
// retry ladder, which callers answer with inline degradation. Each
// attempt is one fault-plan op; misses are never retried.
func (c *Cache) load(key string) (seq *dataset.MemorySequence, hit bool, err error) {
	path := c.Path(key)
	err = c.retry.Retry("seqcache: loading "+key, c.sleep, func() error {
		seq, hit = nil, false
		if ferr := c.faults.loadFault(path); ferr != nil {
			return ferr
		}
		data, rerr := os.ReadFile(path)
		if errors.Is(rerr, os.ErrNotExist) {
			return nil
		}
		if rerr != nil {
			return rerr
		}
		gotKey, s, derr := Decode(data)
		if derr != nil {
			c.logf("seqcache: %s: %v; treating as miss, will re-render", key, derr)
			return nil
		}
		if gotKey != key {
			c.logf("seqcache: %s: artifact is keyed %s (misfiled); treating as miss", key, gotKey)
			return nil
		}
		seq, hit = s, true
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	return seq, hit, nil
}

// evict enforces MaxBytes after a save: walk the directory's artifacts
// in lexicographic key order — a pure function of the directory
// contents, so every cooperating process evicts identically — removing
// until under budget. The just-published key is exempt (evicting what
// the caller is about to use would thrash). Best-effort: eviction I/O
// faults are logged, never propagated, and an evicted artifact another
// process still wanted is just a future miss.
func (c *Cache) evict(just string) {
	if c.maxBytes <= 0 {
		return
	}
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		c.logf("seqcache: evict: %v", err)
		return
	}
	type art struct {
		key  string
		size int64
	}
	var arts []art
	var total int64
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".seq") {
			continue
		}
		info, ierr := e.Info()
		if ierr != nil {
			continue
		}
		arts = append(arts, art{key: strings.TrimSuffix(name, ".seq"), size: info.Size()})
		total += info.Size()
	}
	if total <= c.maxBytes {
		return
	}
	sort.Slice(arts, func(i, j int) bool { return arts[i].key < arts[j].key })
	for _, a := range arts {
		if total <= c.maxBytes {
			return
		}
		if a.key == just {
			continue
		}
		if rerr := os.Remove(c.Path(a.key)); rerr != nil {
			c.logf("seqcache: evict %s: %v", a.key, rerr)
			continue
		}
		total -= a.size
		c.bump(func(s *Stats) { s.Evictions++ })
		c.logf("seqcache: evicted %s (%d bytes) to stay under %d", a.key, a.size, c.maxBytes)
	}
}
