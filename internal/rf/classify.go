package rf

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// ClassificationTree is a Gini-impurity CART classifier. Its main job in
// slamgo is knowledge extraction: shallow trees over DSE samples whose
// root-to-leaf paths become the parameter rules of Figure 2 (right).
type ClassificationTree struct {
	root    *node
	classes []string
	dims    int
}

// FitClassification trains a classifier on X (n×d) and integer labels
// y (n) indexing into classNames.
func FitClassification(X [][]float64, y []int, classNames []string, cfg TreeConfig, rng *rand.Rand) (*ClassificationTree, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, errors.New("rf: empty or mismatched training data")
	}
	for i, c := range y {
		if c < 0 || c >= len(classNames) {
			return nil, fmt.Errorf("rf: label %d of sample %d out of range", c, i)
		}
	}
	if cfg.MaxDepth < 1 {
		cfg.MaxDepth = 1
	}
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	t := &ClassificationTree{classes: classNames, dims: len(X[0])}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.grow(X, y, idx, 0, cfg, rng)
	return t, nil
}

func classCounts(y []int, idx []int, k int) []int {
	counts := make([]int, k)
	for _, i := range idx {
		counts[y[i]]++
	}
	return counts
}

func gini(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		g -= p * p
	}
	return g
}

func majority(counts []int) int {
	best, bi := -1, 0
	for i, c := range counts {
		if c > best {
			best, bi = c, i
		}
	}
	return bi
}

func (t *ClassificationTree) grow(X [][]float64, y []int, idx []int, depth int, cfg TreeConfig, rng *rand.Rand) *node {
	counts := classCounts(y, idx, len(t.classes))
	g := gini(counts, len(idx))
	n := &node{samples: len(idx), value: float64(majority(counts)), impurity: g, mass: g * float64(len(idx))}
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf || g < 1e-12 {
		n.leaf = true
		return n
	}

	feats := make([]int, t.dims)
	for i := range feats {
		feats[i] = i
	}
	if cfg.MTry > 0 && cfg.MTry < t.dims && rng != nil {
		rng.Shuffle(len(feats), func(i, j int) { feats[i], feats[j] = feats[j], feats[i] })
		feats = feats[:cfg.MTry]
	}

	bestScore := g
	bestFeat := -1
	var bestThresh float64
	var bestLeft, bestRight []int
	for _, f := range feats {
		sorted := append([]int(nil), idx...)
		sort.Slice(sorted, func(a, b int) bool { return X[sorted[a]][f] < X[sorted[b]][f] })
		leftCounts := make([]int, len(t.classes))
		rightCounts := append([]int(nil), counts...)
		for k := 0; k < len(sorted)-1; k++ {
			c := y[sorted[k]]
			leftCounts[c]++
			rightCounts[c]--
			if k+1 < cfg.MinLeaf || len(sorted)-k-1 < cfg.MinLeaf {
				continue
			}
			if X[sorted[k]][f] == X[sorted[k+1]][f] {
				continue
			}
			nl, nr := k+1, len(sorted)-k-1
			score := (float64(nl)*gini(leftCounts, nl) + float64(nr)*gini(rightCounts, nr)) / float64(len(sorted))
			if score < bestScore-1e-12 {
				bestScore = score
				bestFeat = f
				bestThresh = (X[sorted[k]][f] + X[sorted[k+1]][f]) / 2
				bestLeft = append([]int(nil), sorted[:k+1]...)
				bestRight = append([]int(nil), sorted[k+1:]...)
			}
		}
	}
	if bestFeat < 0 {
		n.leaf = true
		return n
	}
	n.feature = bestFeat
	n.threshold = bestThresh
	n.left = t.grow(X, y, bestLeft, depth+1, cfg, rng)
	n.right = t.grow(X, y, bestRight, depth+1, cfg, rng)
	return n
}

// Predict returns the class index for x.
func (t *ClassificationTree) Predict(x []float64) int {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return int(n.value)
}

// PredictName returns the class name for x.
func (t *ClassificationTree) PredictName(x []float64) string {
	return t.classes[t.Predict(x)]
}

// Accuracy computes the fraction of correct predictions.
func (t *ClassificationTree) Accuracy(X [][]float64, y []int) float64 {
	if len(X) == 0 {
		return 0
	}
	ok := 0
	for i, x := range X {
		if t.Predict(x) == y[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(X))
}

// Rule is one root-to-leaf path: the conjunction of conditions leading to
// a predicted class — the "knowledge" the paper extracts from the DSE.
type Rule struct {
	Conditions []string
	Class      string
	Support    int
	// Purity is 1 - Gini of the leaf.
	Purity float64
}

// String implements fmt.Stringer.
func (r Rule) String() string {
	cond := strings.Join(r.Conditions, " ∧ ")
	if cond == "" {
		cond = "(always)"
	}
	return fmt.Sprintf("%s → %s (n=%d, purity %.2f)", cond, r.Class, r.Support, r.Purity)
}

// Rules extracts all leaf rules using the provided feature names.
func (t *ClassificationTree) Rules(featureNames []string) []Rule {
	var out []Rule
	var walk func(n *node, conds []string)
	walk = func(n *node, conds []string) {
		if n.leaf {
			out = append(out, Rule{
				Conditions: append([]string(nil), conds...),
				Class:      t.classes[int(n.value)],
				Support:    n.samples,
				Purity:     1 - n.impurity,
			})
			return
		}
		name := fmt.Sprintf("f%d", n.feature)
		if n.feature < len(featureNames) {
			name = featureNames[n.feature]
		}
		walk(n.left, append(conds, fmt.Sprintf("%s ≤ %.4g", name, n.threshold)))
		walk(n.right, append(conds, fmt.Sprintf("%s > %.4g", name, n.threshold)))
	}
	walk(t.root, nil)
	return out
}
