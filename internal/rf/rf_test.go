package rf

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// makeRegression builds y = 3x0 - 2x1 + noise.
func makeRegression(n int, seed int64, noise float64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64()}
		y[i] = 3*X[i][0] - 2*X[i][1] + rng.NormFloat64()*noise
	}
	return X, y
}

func TestRegressionTreeFitsStep(t *testing.T) {
	// A step function is exactly representable by one split.
	X := [][]float64{{1}, {2}, {3}, {10}, {11}, {12}}
	y := []float64{5, 5, 5, 9, 9, 9}
	tr, err := FitRegression(X, y, TreeConfig{MaxDepth: 3, MinLeaf: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{2.5}); got != 5 {
		t.Fatalf("left leaf %v", got)
	}
	if got := tr.Predict([]float64{11.5}); got != 9 {
		t.Fatalf("right leaf %v", got)
	}
}

func TestRegressionTreeDepthLimit(t *testing.T) {
	X, y := makeRegression(200, 1, 0)
	tr, err := FitRegression(X, y, TreeConfig{MaxDepth: 3, MinLeaf: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(); d > 4 {
		t.Fatalf("depth %d exceeds limit", d)
	}
	if s := tr.String(); !strings.Contains(s, "≤") {
		t.Fatalf("tree render: %q", s)
	}
}

func TestRegressionTreeMinLeaf(t *testing.T) {
	X, y := makeRegression(50, 3, 0)
	tr, err := FitRegression(X, y, TreeConfig{MaxDepth: 20, MinLeaf: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Count leaves with fewer than MinLeaf samples.
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			if n.samples < 10 {
				t.Fatalf("leaf with %d < 10 samples", n.samples)
			}
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(tr.root)
}

func TestRegressionTreeValidation(t *testing.T) {
	if _, err := FitRegression(nil, nil, DefaultTreeConfig(), nil); err == nil {
		t.Fatal("empty data accepted")
	}
	if _, err := FitRegression([][]float64{{1}}, []float64{1, 2}, DefaultTreeConfig(), nil); err == nil {
		t.Fatal("mismatched data accepted")
	}
	if _, err := FitRegression([][]float64{{1}, {1, 2}}, []float64{1, 2}, DefaultTreeConfig(), nil); err == nil {
		t.Fatal("ragged rows accepted")
	}
}

func TestRegressionTreeConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{7, 7, 7}
	tr, err := FitRegression(X, y, DefaultTreeConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Predict([]float64{99}) != 7 {
		t.Fatal("constant target mispredicted")
	}
	if tr.Depth() != 1 {
		t.Fatalf("constant tree depth %d", tr.Depth())
	}
}

func TestForestLearnsLinearTrend(t *testing.T) {
	X, y := makeRegression(400, 7, 0.5)
	Xtest, ytest := makeRegression(100, 8, 0.5)
	f, err := FitForest(X, y, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2 := f.R2Score(Xtest, ytest)
	if r2 < 0.9 {
		t.Fatalf("forest R² = %v, want ≥0.9", r2)
	}
	if f.Trees() != DefaultForestConfig().Trees {
		t.Fatalf("trees %d", f.Trees())
	}
	if f.Dims() != 3 {
		t.Fatalf("dims %d", f.Dims())
	}
}

func TestForestUncertaintyHigherOffDistribution(t *testing.T) {
	X, y := makeRegression(300, 9, 0.2)
	f, err := FitForest(X, y, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, stdIn := f.PredictWithStd([]float64{5, 5, 0.5})
	_, stdOut := f.PredictWithStd([]float64{50, -40, 9})
	if stdOut < stdIn {
		t.Fatalf("extrapolation not more uncertain: in=%v out=%v", stdIn, stdOut)
	}
}

func TestForestDeterministicSeed(t *testing.T) {
	X, y := makeRegression(100, 11, 0.3)
	f1, _ := FitForest(X, y, DefaultForestConfig())
	f2, _ := FitForest(X, y, DefaultForestConfig())
	probe := []float64{3, 4, 0.2}
	if f1.Predict(probe) != f2.Predict(probe) {
		t.Fatal("same seed, different forest")
	}
	cfg := DefaultForestConfig()
	cfg.Seed = 99
	f3, _ := FitForest(X, y, cfg)
	if f1.Predict(probe) == f3.Predict(probe) {
		t.Log("note: different seeds agreed exactly (possible but unlikely)")
	}
}

func TestForestValidation(t *testing.T) {
	if _, err := FitForest(nil, nil, DefaultForestConfig()); err == nil {
		t.Fatal("empty data accepted")
	}
}

func TestR2EdgeCases(t *testing.T) {
	X, y := makeRegression(50, 13, 0)
	f, _ := FitForest(X, y, DefaultForestConfig())
	if !math.IsNaN(f.R2Score(nil, nil)) {
		t.Fatal("empty R² not NaN")
	}
}

func TestClassificationTreeXORish(t *testing.T) {
	// Two thresholds on two features — needs depth 2.
	var X [][]float64
	var y []int
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 400; i++ {
		a, b := rng.Float64(), rng.Float64()
		cls := 0
		if a > 0.5 && b > 0.5 {
			cls = 1
		}
		X = append(X, []float64{a, b})
		y = append(y, cls)
	}
	tr, err := FitClassification(X, y, []string{"no", "yes"}, TreeConfig{MaxDepth: 3, MinLeaf: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if acc := tr.Accuracy(X, y); acc < 0.95 {
		t.Fatalf("training accuracy %v", acc)
	}
	if tr.PredictName([]float64{0.9, 0.9}) != "yes" {
		t.Fatal("corner misclassified")
	}
	if tr.PredictName([]float64{0.1, 0.9}) != "no" {
		t.Fatal("edge misclassified")
	}
}

func TestClassificationValidation(t *testing.T) {
	if _, err := FitClassification(nil, nil, nil, DefaultTreeConfig(), nil); err == nil {
		t.Fatal("empty data accepted")
	}
	X := [][]float64{{1}}
	if _, err := FitClassification(X, []int{5}, []string{"a"}, DefaultTreeConfig(), nil); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

func TestRulesExtraction(t *testing.T) {
	X := [][]float64{{1, 0}, {2, 0}, {3, 0}, {10, 0}, {11, 0}, {12, 0}}
	y := []int{0, 0, 0, 1, 1, 1}
	tr, err := FitClassification(X, y, []string{"slow", "fast"}, TreeConfig{MaxDepth: 2, MinLeaf: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rules := tr.Rules([]string{"volume_resolution", "mu"})
	if len(rules) != 2 {
		t.Fatalf("rules = %d: %v", len(rules), rules)
	}
	joined := ""
	for _, r := range rules {
		joined += r.String() + "\n"
	}
	if !strings.Contains(joined, "volume_resolution ≤") {
		t.Fatalf("rules missing named condition:\n%s", joined)
	}
	if !strings.Contains(joined, "→ fast") || !strings.Contains(joined, "→ slow") {
		t.Fatalf("rules missing classes:\n%s", joined)
	}
	for _, r := range rules {
		if r.Support <= 0 || r.Purity < 0.99 {
			t.Fatalf("rule stats wrong: %+v", r)
		}
	}
}

func TestRuleStringEmpty(t *testing.T) {
	r := Rule{Class: "fast", Support: 3, Purity: 1}
	if !strings.Contains(r.String(), "(always)") {
		t.Fatalf("empty-condition rule: %s", r.String())
	}
}

func TestClassTreePureNodeStops(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []int{0, 0, 0}
	tr, err := FitClassification(X, y, []string{"a", "b"}, DefaultTreeConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.root.leaf {
		t.Fatal("pure node split anyway")
	}
}

func TestForestMTryRandomisation(t *testing.T) {
	// With MTry=1 on 3 features, trees must differ (feature sampling).
	X, y := makeRegression(200, 17, 0.1)
	cfg := ForestConfig{Trees: 10, Tree: TreeConfig{MaxDepth: 6, MinLeaf: 2, MTry: 1}, Seed: 3}
	f, err := FitForest(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{5, 5, 0.5}
	_, std := f.PredictWithStd(probe)
	if std == 0 {
		t.Fatal("MTry=1 ensemble has zero disagreement; suspicious")
	}
}
