package rf

import (
	"math"
	"math/rand"
	"testing"
)

func TestRegressionImportanceFindsSignal(t *testing.T) {
	// y depends strongly on feature 0, weakly on 1, not at all on 2.
	rng := rand.New(rand.NewSource(3))
	var X [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		row := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		X = append(X, row)
		y = append(y, 5*row[0]+0.5*row[1]+rng.NormFloat64()*0.1)
	}
	tr, err := FitRegression(X, y, TreeConfig{MaxDepth: 10, MinLeaf: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	imp := tr.Importance()
	if len(imp) != 3 {
		t.Fatalf("dims %d", len(imp))
	}
	if imp[0] < imp[1] || imp[1] < imp[2] {
		t.Fatalf("importance ordering wrong: %v", imp)
	}
	if imp[0] < 0.7 {
		t.Fatalf("dominant feature under-weighted: %v", imp)
	}
	sum := imp[0] + imp[1] + imp[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("not normalised: %v", sum)
	}
}

func TestForestImportanceStable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var X [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		row := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		X = append(X, row)
		y = append(y, 3*row[2]+rng.NormFloat64()*0.05)
	}
	f, err := FitForest(X, y, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	imp := f.Importance()
	best := 0
	for i := range imp {
		if imp[i] > imp[best] {
			best = i
		}
	}
	if best != 2 {
		t.Fatalf("forest importance picked feature %d: %v", best, imp)
	}
}

func TestClassificationImportance(t *testing.T) {
	// Class determined by feature 1 only.
	var X [][]float64
	var y []int
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		row := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		X = append(X, row)
		cls := 0
		if row[1] > 0.5 {
			cls = 1
		}
		y = append(y, cls)
	}
	tr, err := FitClassification(X, y, []string{"a", "b"}, TreeConfig{MaxDepth: 4, MinLeaf: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	imp := tr.Importance()
	if imp[1] < 0.9 {
		t.Fatalf("deciding feature under-weighted: %v", imp)
	}
}

func TestImportanceLeafOnlyTree(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}}
	y := []float64{7, 7}
	tr, err := FitRegression(X, y, DefaultTreeConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	imp := tr.Importance()
	for _, v := range imp {
		if v != 0 {
			t.Fatalf("leaf-only tree has importance: %v", imp)
		}
	}
}
