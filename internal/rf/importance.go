package rf

// Feature importance: the mean-decrease-in-impurity measure random
// forests provide for free, which HyperMapper surfaces as parameter
// sensitivity ("which knobs matter").

// Importance returns the per-feature impurity decrease of one tree,
// normalised to sum to 1 (all zeros when the tree is a single leaf).
func (t *RegressionTree) Importance() []float64 {
	imp := make([]float64, t.features)
	accumulateImportance(t.root, imp)
	return normalise(imp)
}

// Importance averages the normalised importances over the ensemble.
func (f *Forest) Importance() []float64 {
	total := make([]float64, f.dims)
	for _, t := range f.trees {
		for i, v := range t.Importance() {
			total[i] += v
		}
	}
	return normalise(total)
}

// Importance for a classification tree (Gini decrease).
func (t *ClassificationTree) Importance() []float64 {
	imp := make([]float64, t.dims)
	accumulateImportance(t.root, imp)
	return normalise(imp)
}

// accumulateImportance adds each split's weighted impurity decrease to
// its feature's tally.
func accumulateImportance(n *node, imp []float64) {
	if n == nil || n.leaf {
		return
	}
	// Weighted impurity decrease: parent − (left + right) over the
	// sample-weighted impurity mass stored at build time.
	parent := n.mass
	children := childMass(n.left) + childMass(n.right)
	if d := parent - children; d > 0 {
		imp[n.feature] += d
	}
	accumulateImportance(n.left, imp)
	accumulateImportance(n.right, imp)
}

func childMass(n *node) float64 {
	if n == nil {
		return 0
	}
	return n.mass
}

func normalise(v []float64) []float64 {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if sum <= 0 {
		return v
	}
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x / sum
	}
	return out
}
