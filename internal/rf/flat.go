package rf

import (
	"fmt"
	"math"

	"slamgo/internal/parallel"
)

// FlatForest is a structure-of-arrays compilation of a fitted Forest.
// Every node of every tree lives in one set of contiguous slices
// (feature/threshold/left/right/value), with leaves folded into the same
// arrays (feature < 0 marks a leaf whose prediction sits in value). The
// pointer-chasing ensemble walk of Forest.PredictWithStd becomes an
// index walk over flat memory, which is both cache-friendly and
// allocation-free — the inference engine the DSE candidate scorer runs
// on. Compile one with Forest.Flatten; the flat form is immutable and
// safe for concurrent readers. The predictors walk the packed mirror;
// the SoA slices are retained as the canonical, introspectable layout
// (what a serialiser or column-vectorised scorer would consume), at a
// few hundred bytes per surrogate-sized tree.
type FlatForest struct {
	dims      int
	roots     []int32 // root node index per tree
	feature   []int32 // split feature, or -1 for a leaf
	threshold []float64
	left      []int32
	right     []int32
	value     []float64 // leaf prediction (internal nodes unused)
	// packed is the walk-optimised mirror of the SoA arrays: one 16-byte
	// record per node, leaf values folded into the threshold slot and
	// the left child implicit (preorder emission puts it at index+1), so
	// a descent step touches a single cache line instead of four arrays.
	packed []flatNode
}

// flatNode is the packed walk record. feat < 0 marks a leaf whose
// prediction lives in thr; otherwise thr is the split threshold, the
// left child is the next record and right is explicit.
type flatNode struct {
	feat  int32
	right int32
	thr   float64
}

// Flatten compiles the forest into its structure-of-arrays form. The
// compiled predictor reproduces Forest.Predict/PredictWithStd
// bit-identically: the same leaves are reached and the ensemble moments
// accumulate in the same tree order.
func (f *Forest) Flatten() *FlatForest {
	ff := &FlatForest{dims: f.dims, roots: make([]int32, 0, len(f.trees))}
	for _, t := range f.trees {
		ff.roots = append(ff.roots, int32(len(ff.feature)))
		ff.emit(t.root)
	}
	ff.packed = make([]flatNode, len(ff.feature))
	for i := range ff.packed {
		nd := flatNode{feat: ff.feature[i], right: ff.right[i], thr: ff.threshold[i]}
		if nd.feat < 0 {
			nd.thr = ff.value[i]
		}
		ff.packed[i] = nd
	}
	return ff
}

// emit appends n's subtree in preorder and returns its node index.
func (ff *FlatForest) emit(n *node) int32 {
	i := int32(len(ff.feature))
	if n.leaf {
		ff.feature = append(ff.feature, -1)
		ff.threshold = append(ff.threshold, 0)
		ff.left = append(ff.left, -1)
		ff.right = append(ff.right, -1)
		ff.value = append(ff.value, n.value)
		return i
	}
	ff.feature = append(ff.feature, int32(n.feature))
	ff.threshold = append(ff.threshold, n.threshold)
	ff.left = append(ff.left, 0)
	ff.right = append(ff.right, 0)
	ff.value = append(ff.value, 0)
	ff.left[i] = ff.emit(n.left)
	ff.right[i] = ff.emit(n.right)
	return i
}

// Trees returns the ensemble size.
func (ff *FlatForest) Trees() int { return len(ff.roots) }

// Dims returns the feature dimensionality.
func (ff *FlatForest) Dims() int { return ff.dims }

// Nodes returns the total node count across the ensemble.
func (ff *FlatForest) Nodes() int { return len(ff.feature) }

// walk descends one tree from root r and returns the leaf value for x.
// All predictors walk the packed mirror; the SoA slices are the
// canonical layout it is derived from.
func (ff *FlatForest) walk(r int32, x []float64) float64 {
	nodes := ff.packed
	nd := nodes[r]
	for nd.feat >= 0 {
		if x[nd.feat] <= nd.thr {
			r++ // preorder: the left child is the next record
		} else {
			r = nd.right
		}
		nd = nodes[r]
	}
	return nd.thr
}

// Predict returns the ensemble mean for one feature vector.
func (ff *FlatForest) Predict(x []float64) float64 {
	m, _ := ff.PredictWithStd(x)
	return m
}

// PredictWithStd returns the ensemble mean and standard deviation for
// one feature vector, bit-identical to Forest.PredictWithStd.
func (ff *FlatForest) PredictWithStd(x []float64) (mean, std float64) {
	var s, s2 float64
	for _, r := range ff.roots {
		v := ff.walk(r, x)
		s += v
		s2 += v * v
	}
	n := float64(len(ff.roots))
	mean = s / n
	variance := s2/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance)
}

// PredictInto fills out[i] with the ensemble mean of row i of the
// row-major matrix X (len(out) rows × Dims columns). It allocates
// nothing.
func (ff *FlatForest) PredictInto(X []float64, out []float64) {
	ff.checkMatrix(X, len(out))
	d := ff.dims
	for i := range out {
		row := X[i*d : (i+1)*d]
		var s float64
		for _, r := range ff.roots {
			s += ff.walk(r, row)
		}
		out[i] = s / float64(len(ff.roots))
	}
}

// PredictWithStdInto fills mean[i] and std[i] for row i of the
// row-major matrix X. len(std) must equal len(mean). It allocates
// nothing, and each row matches PredictWithStd bit-identically.
func (ff *FlatForest) PredictWithStdInto(X []float64, mean, std []float64) {
	if len(std) != len(mean) {
		panic(fmt.Sprintf("rf: mean/std length mismatch %d != %d", len(mean), len(std)))
	}
	ff.checkMatrix(X, len(mean))
	ff.predictRange(X, mean, std, 0, len(mean))
}

// PredictBatch scores the whole row-major matrix X across the worker
// pool (workers ≤ 0 means GOMAXPROCS), filling mean and std per row.
// Rows are independent and chunk boundaries depend only on the row
// count, so the output is bit-identical for any worker count.
func (ff *FlatForest) PredictBatch(X []float64, mean, std []float64, workers int) {
	if len(std) != len(mean) {
		panic(fmt.Sprintf("rf: mean/std length mismatch %d != %d", len(mean), len(std)))
	}
	ff.checkMatrix(X, len(mean))
	parallel.For(len(mean), workers, func(lo, hi int) {
		ff.predictRange(X, mean, std, lo, hi)
	})
}

// predictRange scores rows [lo,hi) with the same moment accumulation as
// PredictWithStd. The loop is tree-outer: each tree's flat nodes stay
// hot in cache while it sweeps every row, and mean/std double as the
// per-row Σv and Σv² accumulators, so per-row values still add in tree
// order — bit-identical to the scalar path — without scratch memory.
func (ff *FlatForest) predictRange(X []float64, mean, std []float64, lo, hi int) {
	d := ff.dims
	nodes := ff.packed
	for i := lo; i < hi; i++ {
		mean[i] = 0
		std[i] = 0
	}
	for _, r := range ff.roots {
		for i := lo; i < hi; i++ {
			base := i * d
			j := r
			nd := nodes[j]
			for nd.feat >= 0 {
				if X[base+int(nd.feat)] <= nd.thr {
					j++ // preorder: the left child is the next record
				} else {
					j = nd.right
				}
				nd = nodes[j]
			}
			v := nd.thr // leaf prediction folded into the threshold slot
			mean[i] += v
			std[i] += v * v
		}
	}
	n := float64(len(ff.roots))
	for i := lo; i < hi; i++ {
		m := mean[i] / n
		variance := std[i]/n - m*m
		if variance < 0 {
			variance = 0
		}
		mean[i] = m
		std[i] = math.Sqrt(variance)
	}
}

func (ff *FlatForest) checkMatrix(X []float64, rows int) {
	if len(X) != rows*ff.dims {
		panic(fmt.Sprintf("rf: matrix size %d != %d rows × %d dims", len(X), rows, ff.dims))
	}
}
